#include "net/node.hpp"

#include <cassert>
#include <utility>

namespace rica::net {

Node::Node(NodeId id, sim::Simulator& sim, channel::ChannelModel& channel,
           mac::CommonChannelMac& common_mac, stats::MetricsCollector& metrics,
           const mac::LinkConfig& link_cfg, sim::RandomStream rng)
    : id_(id),
      sim_(sim),
      channel_(channel),
      common_mac_(common_mac),
      metrics_(metrics),
      rng_(std::move(rng)),
      links_(id, sim, channel, metrics, link_cfg) {
  links_.set_deliver([this](DataPacket pkt, NodeId to) {
    if (peer_delivery_) peer_delivery_(to, std::move(pkt), id_);
  });
  links_.set_on_break([this](NodeId neighbor,
                             std::vector<DataPacket> stranded) {
    if (protocol_) protocol_->on_link_break(neighbor, std::move(stranded));
  });
  links_.set_on_drop([this](const DataPacket& pkt, stats::DropReason reason) {
    metrics_.on_dropped(pkt, reason);
    trace_packet("dropped", pkt, -1, stats::to_string(reason));
  });
}

void Node::trace_packet(std::string_view stage, const DataPacket& pkt,
                        std::int64_t peer, std::string_view detail) {
  auto& tracer = metrics_.tracer();
  if (!tracer.packet_on()) return;
  tracer.packet(obs::PacketTrace{stage, sim_.now(), pkt.flow, pkt.seq, id_,
                                 pkt.src, pkt.dst, peer, pkt.hops,
                                 pkt.size_bytes, detail});
}

void Node::set_protocol(std::unique_ptr<routing::Protocol> protocol) {
  protocol_ = std::move(protocol);
}

void Node::start() {
  assert(protocol_ && "protocol must be installed before start()");
  common_mac_.register_node(id_, [this](const ControlPacket& pkt,
                                        NodeId from) {
    protocol_->on_control(pkt, from);
  });
  protocol_->start();
}

void Node::originate(DataPacket pkt) {
  metrics_.on_generated(pkt);
  trace_packet("generated", pkt, -1);
  protocol_->handle_data(std::move(pkt), id_);
}

void Node::receive_data(DataPacket pkt, NodeId from) {
  if (pkt.dst != id_) trace_packet("forwarded", pkt, from);
  protocol_->handle_data(std::move(pkt), from);
}

void Node::send_control(ControlPacket pkt) {
  common_mac_.send(id_, std::move(pkt));
}

std::optional<channel::CsiClass> Node::link_csi(NodeId neighbor) {
  return channel_.csi(id_, neighbor, sim_.now());
}

std::vector<NodeId> Node::neighbors_in_range() {
  return channel_.neighbors_of(id_, sim_.now());
}

void Node::forward_data(DataPacket pkt, NodeId next_hop) {
  links_.enqueue(std::move(pkt), next_hop);
}

void Node::deliver_local(const DataPacket& pkt) {
  assert(pkt.dst == id_ && "deliver_local on a transit packet");
  metrics_.on_delivered(pkt, sim_.now());
  trace_packet("delivered", pkt, -1);
  if (delivery_observer_) delivery_observer_(pkt);
}

void Node::drop_data(const DataPacket& pkt, stats::DropReason reason) {
  metrics_.on_dropped(pkt, reason);
  trace_packet("dropped", pkt, -1, stats::to_string(reason));
}

std::vector<DataPacket> Node::drain_queue(NodeId neighbor) {
  return links_.drain(neighbor);
}

std::size_t Node::buffered_count() const { return links_.buffered(); }

void Node::count(const std::string& name, std::uint64_t by) {
  metrics_.inc(name, by);
}

void Node::trace_route(std::string_view stage, NodeId src, NodeId dst,
                       std::uint32_t bid, double metric,
                       std::string_view detail) {
  // Central discovery-failure tally: every protocol's failure record
  // funnels through here, so the discovery-storm watchdog needs no
  // per-protocol counter.  Counted before the trace gate — the watchdog
  // works with tracing off.
  if (stage == "discovery_failed") metrics_.count_discovery_failure();
  auto& tracer = metrics_.tracer();
  if (!tracer.route_on()) return;
  tracer.route(obs::RouteTrace{stage, sim_.now(), id_, src, dst, bid, metric,
                               protocol_ ? protocol_->name()
                                         : std::string_view{},
                               detail});
}

}  // namespace rica::net
