#include "net/wire.hpp"

#include <algorithm>
#include <bit>
#include <cstddef>

namespace rica::net::wire {

namespace {

// -- shared field helpers ----------------------------------------------------

/// Writes a node address, rejecting ids that cannot exist (>= 2^24; see
/// net::kMaxNodes).  `allow_broadcast` admits kBroadcastId (the `to` field
/// of broadcast control frames); payload fields always name real terminals.
void put_node(ByteWriter& w, NodeId id, bool allow_broadcast = false) {
  if (id >= kMaxNodes && !(allow_broadcast && id == kBroadcastId)) {
    throw WireError("node id " + std::to_string(id) +
                        " exceeds the 2^24 address space",
                    w.written());
  }
  w.u32(id);
}

[[nodiscard]] NodeId get_node(ByteReader& r, bool allow_broadcast = false) {
  const std::size_t at = r.offset();
  const NodeId id = r.u32();
  if (id >= kMaxNodes && !(allow_broadcast && id == kBroadcastId)) {
    throw WireError("node id " + std::to_string(id) +
                        " exceeds the 2^24 address space",
                    at);
  }
  return id;
}

[[nodiscard]] channel::CsiClass get_csi(ByteReader& r) {
  const std::size_t at = r.offset();
  const std::uint8_t raw = r.u8();
  if (raw > static_cast<std::uint8_t>(channel::CsiClass::D)) {
    throw WireError("CSI class " + std::to_string(raw) + " out of range", at);
  }
  return static_cast<channel::CsiClass>(raw);
}

// -- per-type bodies ---------------------------------------------------------
//
// One encode/decode pair per ControlPayload alternative.  Field order is
// the struct declaration order; kControlBodyBytes in the header is the
// byte-count contract these functions must realize (check_wire_invariants
// proves it).

void put_body(ByteWriter& w, const RreqMsg& m) {
  put_node(w, m.src);
  put_node(w, m.dst);
  w.u32(m.bid);
  w.f64(m.csi_hops);
  w.u16(m.topo_hops);
}
void get_body(ByteReader& r, RreqMsg& m) {
  m.src = get_node(r);
  m.dst = get_node(r);
  m.bid = r.u32();
  m.csi_hops = r.f64();
  m.topo_hops = r.u16();
}

void put_body(ByteWriter& w, const RrepMsg& m) {
  put_node(w, m.src);
  put_node(w, m.dst);
  w.u32(m.bid);
  w.f64(m.csi_hops);
  w.u16(m.topo_hops);
}
void get_body(ByteReader& r, RrepMsg& m) {
  m.src = get_node(r);
  m.dst = get_node(r);
  m.bid = r.u32();
  m.csi_hops = r.f64();
  m.topo_hops = r.u16();
}

void put_body(ByteWriter& w, const CsiCheckMsg& m) {
  put_node(w, m.src);
  put_node(w, m.dst);
  w.u32(m.bid);
  w.f64(m.csi_hops);
  w.u16(m.topo_hops);
  w.i16(m.ttl);
  put_node(w, m.received_from);
}
void get_body(ByteReader& r, CsiCheckMsg& m) {
  m.src = get_node(r);
  m.dst = get_node(r);
  m.bid = r.u32();
  m.csi_hops = r.f64();
  m.topo_hops = r.u16();
  m.ttl = r.i16();
  m.received_from = get_node(r);
}

void put_body(ByteWriter& w, const RupdMsg& m) {
  put_node(w, m.src);
  put_node(w, m.dst);
}
void get_body(ByteReader& r, RupdMsg& m) {
  m.src = get_node(r);
  m.dst = get_node(r);
}

void put_body(ByteWriter& w, const ReerMsg& m) {
  put_node(w, m.src);
  put_node(w, m.dst);
  put_node(w, m.reporter);
}
void get_body(ByteReader& r, ReerMsg& m) {
  m.src = get_node(r);
  m.dst = get_node(r);
  m.reporter = get_node(r);
}

void put_body(ByteWriter& w, const BgcaLqMsg& m) {
  put_node(w, m.origin);
  put_node(w, m.src);
  put_node(w, m.dst);
  w.u32(m.bid);
  w.i16(m.ttl);
  w.f64(m.csi_hops);
  w.u16(m.topo_hops);
  w.u16(m.origin_hops_to_dst);
}
void get_body(ByteReader& r, BgcaLqMsg& m) {
  m.origin = get_node(r);
  m.src = get_node(r);
  m.dst = get_node(r);
  m.bid = r.u32();
  m.ttl = r.i16();
  m.csi_hops = r.f64();
  m.topo_hops = r.u16();
  m.origin_hops_to_dst = r.u16();
}

void put_body(ByteWriter& w, const BgcaLqReplyMsg& m) {
  put_node(w, m.origin);
  put_node(w, m.src);
  put_node(w, m.dst);
  w.u32(m.bid);
  w.f64(m.csi_hops);
  w.u16(m.join_hops_to_dst);
  put_node(w, m.join);
}
void get_body(ByteReader& r, BgcaLqReplyMsg& m) {
  m.origin = get_node(r);
  m.src = get_node(r);
  m.dst = get_node(r);
  m.bid = r.u32();
  m.csi_hops = r.f64();
  m.join_hops_to_dst = r.u16();
  m.join = get_node(r);
}

void put_body(ByteWriter& w, const AbrBeaconMsg& m) {
  put_node(w, m.origin);
}
void get_body(ByteReader& r, AbrBeaconMsg& m) {
  m.origin = get_node(r);
}

void put_body(ByteWriter& w, const AbrBqMsg& m) {
  put_node(w, m.src);
  put_node(w, m.dst);
  w.u32(m.bid);
  w.u32(m.tick_sum);
  w.u32(m.load_sum);
  w.u16(m.topo_hops);
}
void get_body(ByteReader& r, AbrBqMsg& m) {
  m.src = get_node(r);
  m.dst = get_node(r);
  m.bid = r.u32();
  m.tick_sum = r.u32();
  m.load_sum = r.u32();
  m.topo_hops = r.u16();
}

void put_body(ByteWriter& w, const AbrReplyMsg& m) {
  put_node(w, m.src);
  put_node(w, m.dst);
  w.u32(m.bid);
  w.u16(m.topo_hops);
}
void get_body(ByteReader& r, AbrReplyMsg& m) {
  m.src = get_node(r);
  m.dst = get_node(r);
  m.bid = r.u32();
  m.topo_hops = r.u16();
}

void put_body(ByteWriter& w, const AbrLqMsg& m) {
  put_node(w, m.origin);
  put_node(w, m.src);
  put_node(w, m.dst);
  w.u32(m.bid);
  w.i16(m.ttl);
  w.u16(m.topo_hops);
  w.u16(m.origin_hops_to_dst);
}
void get_body(ByteReader& r, AbrLqMsg& m) {
  m.origin = get_node(r);
  m.src = get_node(r);
  m.dst = get_node(r);
  m.bid = r.u32();
  m.ttl = r.i16();
  m.topo_hops = r.u16();
  m.origin_hops_to_dst = r.u16();
}

void put_body(ByteWriter& w, const AbrLqReplyMsg& m) {
  put_node(w, m.origin);
  put_node(w, m.src);
  put_node(w, m.dst);
  w.u32(m.bid);
  w.u16(m.join_hops_to_dst);
  put_node(w, m.join);
}
void get_body(ByteReader& r, AbrLqReplyMsg& m) {
  m.origin = get_node(r);
  m.src = get_node(r);
  m.dst = get_node(r);
  m.bid = r.u32();
  m.join_hops_to_dst = r.u16();
  m.join = get_node(r);
}

void put_body(ByteWriter& w, const AbrRnMsg& m) {
  put_node(w, m.src);
  put_node(w, m.dst);
  put_node(w, m.reporter);
}
void get_body(ByteReader& r, AbrRnMsg& m) {
  m.src = get_node(r);
  m.dst = get_node(r);
  m.reporter = get_node(r);
}

void put_body(ByteWriter& w, const AodvRreqMsg& m) {
  put_node(w, m.src);
  put_node(w, m.dst);
  w.u32(m.bid);
  w.u16(m.hops);
}
void get_body(ByteReader& r, AodvRreqMsg& m) {
  m.src = get_node(r);
  m.dst = get_node(r);
  m.bid = r.u32();
  m.hops = r.u16();
}

void put_body(ByteWriter& w, const AodvRrepMsg& m) {
  put_node(w, m.src);
  put_node(w, m.dst);
  w.u32(m.bid);
  w.u16(m.hops);
}
void get_body(ByteReader& r, AodvRrepMsg& m) {
  m.src = get_node(r);
  m.dst = get_node(r);
  m.bid = r.u32();
  m.hops = r.u16();
}

void put_body(ByteWriter& w, const AodvRerrMsg& m) {
  put_node(w, m.src);
  put_node(w, m.dst);
  put_node(w, m.reporter);
}
void get_body(ByteReader& r, AodvRerrMsg& m) {
  m.src = get_node(r);
  m.dst = get_node(r);
  m.reporter = get_node(r);
}

void put_body(ByteWriter& w, const LsuMsg& m) {
  put_node(w, m.origin);
  w.u32(m.seq);
  w.u16(static_cast<std::uint16_t>(m.links.size()));
  for (const auto& [neighbor, csi] : m.links) {
    put_node(w, neighbor);
    w.u8(static_cast<std::uint8_t>(csi));
  }
}
void get_body(ByteReader& r, LsuMsg& m) {
  m.origin = get_node(r);
  m.seq = r.u32();
  const std::size_t count = r.u16();
  // The declared adjacency count must exactly match the bytes on the wire;
  // a short frame throws inside the loop, a long one in expect_end().
  m.links.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId neighbor = get_node(r);
    m.links.emplace_back(neighbor, get_csi(r));
  }
}

}  // namespace

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::uint16_t encoded_control_size(const ControlPayload& payload) {
  std::size_t raw = kControlHeaderBytes + kControlBodyBytes[payload.index()];
  if (const auto* lsu = std::get_if<LsuMsg>(&payload)) {
    raw += kLsuLinkBytes * lsu->links.size();
  }
  // The wire-size field is u16.  A dense large-scale adjacency row can in
  // principle name 13 105+ neighbours and overflow it; that used to be a
  // Release-mode-vanishing assert followed by a clamp that silently
  // under-charged airtime.  It is a hard error now — an emitter with a row
  // that big must split it across frames.
  if (raw > 0xFFFF) {
    throw WireError("LSU frame of " + std::to_string(raw) +
                        " bytes overflows the u16 wire-size field "
                        "(split the adjacency row across frames)",
                    raw);
  }
  return static_cast<std::uint16_t>(raw);
}

std::size_t encode_control(const ControlPacket& pkt,
                           std::vector<std::uint8_t>& out) {
  // Size first: the LSU overflow check must fire before any bytes land.
  const std::uint16_t size = encoded_control_size(pkt.payload);
  ByteWriter w(out);
  w.u8(control_tag(pkt.payload.index()));
  put_node(w, pkt.to, /*allow_broadcast=*/true);
  std::visit([&w](const auto& body) { put_body(w, body); }, pkt.payload);
  // Defensive cross-check: a serializer drifting from the size table is a
  // programming error the invariant checker also catches at startup.
  if (w.written() != size) {
    throw WireError("encoder produced " + std::to_string(w.written()) +
                        " bytes, size table says " + std::to_string(size),
                    w.written());
  }
  return w.written();
}

namespace {

/// Default-constructs the alternative at runtime index `index` and decodes
/// the body into it.  Compile-time unrolled over the variant.
template <std::size_t I = 0>
[[nodiscard]] ControlPayload decode_body(std::size_t index, ByteReader& r) {
  if constexpr (I < std::variant_size_v<ControlPayload>) {
    if (index == I) {
      std::variant_alternative_t<I, ControlPayload> body;
      get_body(r, body);
      return body;
    }
    return decode_body<I + 1>(index, r);
  } else {
    throw WireError("unreachable control tag dispatch", r.offset());
  }
}

}  // namespace

ControlPacket decode_control(const std::uint8_t* data, std::size_t size) {
  if (size > 0xFFFF) {
    throw WireError("frame of " + std::to_string(size) +
                        " bytes overflows the u16 wire-size field",
                    size);
  }
  ByteReader r(data, size);
  const std::uint8_t tag = r.u8();
  if (tag < kControlTagBase ||
      tag >= control_tag(std::variant_size_v<ControlPayload>)) {
    throw WireError("bad control type tag 0x" + std::to_string(tag), 0);
  }
  ControlPacket pkt;
  pkt.to = get_node(r, /*allow_broadcast=*/true);
  pkt.payload = decode_body(static_cast<std::size_t>(tag - kControlTagBase), r);
  r.expect_end();
  pkt.size_bytes = static_cast<std::uint16_t>(size);
  return pkt;
}

std::size_t encode_data_header(const DataPacket& pkt,
                               std::vector<std::uint8_t>& out) {
  if (pkt.gen_time.nanos() < 0) {
    throw WireError("negative generation timestamp " +
                        std::to_string(pkt.gen_time.nanos()) + " ns",
                    0);
  }
  ByteWriter w(out);
  w.u8(kDataFrameTag);
  w.u8(pkt.route_update ? 0x01 : 0x00);
  w.u32(pkt.flow);
  put_node(w, pkt.src);
  put_node(w, pkt.dst);
  w.u32(pkt.seq);
  w.i64(pkt.gen_time.nanos());
  w.u16(pkt.size_bytes);
  w.u16(pkt.hops);
  if (w.written() != kDataHeaderBytes) {
    throw WireError("data header encoder produced " +
                        std::to_string(w.written()) + " bytes, expected " +
                        std::to_string(kDataHeaderBytes),
                    w.written());
  }
  return w.written();
}

DataPacket decode_data_header(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size);
  const std::size_t tag_at = r.offset();
  const std::uint8_t tag = r.u8();
  if (tag != kDataFrameTag) {
    throw WireError("bad data type tag 0x" + std::to_string(tag), tag_at);
  }
  const std::size_t flags_at = r.offset();
  const std::uint8_t flags = r.u8();
  if ((flags & ~0x01u) != 0) {
    throw WireError("unknown flag bits 0x" + std::to_string(flags), flags_at);
  }
  DataPacket pkt;
  pkt.route_update = (flags & 0x01u) != 0;
  pkt.flow = r.u32();
  pkt.src = get_node(r);
  pkt.dst = get_node(r);
  pkt.seq = r.u32();
  const std::size_t t_at = r.offset();
  const std::int64_t gen_ns = r.i64();
  if (gen_ns < 0) {
    throw WireError("negative generation timestamp " + std::to_string(gen_ns) +
                        " ns",
                    t_at);
  }
  pkt.gen_time = sim::Time{gen_ns};
  pkt.size_bytes = r.u16();
  pkt.hops = r.u16();
  // A frame is either the bare header (how the simulator passes it around)
  // or header + exactly the declared payload; anything else is malformed.
  if (r.remaining() != 0 && r.remaining() != pkt.size_bytes) {
    throw WireError("frame carries " + std::to_string(r.remaining()) +
                        " payload byte(s), header declares " +
                        std::to_string(pkt.size_bytes),
                    r.offset());
  }
  return pkt;
}

namespace {

template <std::size_t I = 0>
void check_alternatives(std::uint16_t& min_seen) {
  if constexpr (I < std::variant_size_v<ControlPayload>) {
    using Alt = std::variant_alternative_t<I, ControlPayload>;
    ControlPacket pkt;
    pkt.payload = Alt{};
    std::vector<std::uint8_t> buf;
    const std::size_t encoded = encode_control(pkt, buf);
    const std::size_t expected = kControlHeaderBytes + kControlBodyBytes[I];
    const auto sized = encoded_control_size(pkt.payload);
    if (encoded != expected || sized != expected) {
      throw std::logic_error(
          "wire: codec for ControlPayload alternative " + std::to_string(I) +
          " emits " + std::to_string(encoded) + " bytes (sizes as " +
          std::to_string(sized) + "), kControlBodyBytes expects " +
          std::to_string(expected));
    }
    if (decode_control(buf).payload.index() != I) {
      throw std::logic_error(
          "wire: round trip of ControlPayload alternative " +
          std::to_string(I) + " changed the message type");
    }
    min_seen = std::min(min_seen, static_cast<std::uint16_t>(encoded));
    check_alternatives<I + 1>(min_seen);
  }
}

}  // namespace

void check_wire_invariants() {
  std::uint16_t min_seen = 0xFFFF;
  check_alternatives(min_seen);
  if (min_seen != kMinControlBytes) {
    throw std::logic_error(
        "wire: smallest encodable control frame is " +
        std::to_string(min_seen) + " bytes but kMinControlBytes — the "
        "sharded kernel's lookahead floor — is " +
        std::to_string(kMinControlBytes));
  }
  std::vector<std::uint8_t> buf;
  const std::size_t header = encode_data_header(DataPacket{}, buf);
  if (header != kDataHeaderBytes) {
    throw std::logic_error("wire: data header encodes to " +
                           std::to_string(header) + " bytes, expected " +
                           std::to_string(kDataHeaderBytes));
  }
}

}  // namespace rica::net::wire

namespace rica::net {

ControlPacket make_control(NodeId to, ControlPayload payload) {
  ControlPacket pkt;
  pkt.to = to;
  pkt.size_bytes = wire::encoded_control_size(payload);
  pkt.payload = std::move(payload);
  return pkt;
}

}  // namespace rica::net
