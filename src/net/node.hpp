// A mobile terminal: glues the routing protocol to the common-channel MAC
// and the per-link data plane, and implements the ProtocolHost services.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "channel/channel_model.hpp"
#include "mac/common_channel.hpp"
#include "mac/link_transmitter.hpp"
#include "net/packet.hpp"
#include "routing/protocol.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "stats/metrics.hpp"

namespace rica::net {

/// One terminal of the ad hoc network.
class Node final : public routing::ProtocolHost {
 public:
  /// Hands a successfully received data packet to the peer node.
  using PeerDeliveryFn = std::function<void(NodeId to, DataPacket, NodeId from)>;
  /// Observes every packet delivered to its final destination (closed-loop
  /// traffic feedback; see Network::set_delivery_observer).
  using DeliveryObserverFn = std::function<void(const DataPacket&)>;

  Node(NodeId id, sim::Simulator& sim, channel::ChannelModel& channel,
       mac::CommonChannelMac& common_mac, stats::MetricsCollector& metrics,
       const mac::LinkConfig& link_cfg, sim::RandomStream rng);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Installs the routing protocol (must precede start()).
  void set_protocol(std::unique_ptr<routing::Protocol> protocol);
  [[nodiscard]] routing::Protocol& protocol() { return *protocol_; }

  /// Wires delivery of data packets into peer nodes (set by Network).
  void set_peer_delivery(PeerDeliveryFn fn) { peer_delivery_ = std::move(fn); }

  /// Observes final deliveries at this node (set by Network; at most one).
  void set_delivery_observer(DeliveryObserverFn fn) {
    delivery_observer_ = std::move(fn);
  }

  /// Starts the protocol (registers MAC handler, arms timers).
  void start();

  /// A locally generated application packet enters the stack.
  void originate(DataPacket pkt);

  /// A data packet arrived over a link from `from`.
  void receive_data(DataPacket pkt, NodeId from);

  /// Peak live entries in this node's data-queue pool (observability).
  [[nodiscard]] std::size_t pool_high_water() const {
    return links_.pool_high_water();
  }

  /// Encoded data-frame header bits this node has put on the air.
  [[nodiscard]] std::uint64_t data_header_bits() const {
    return links_.data_header_bits();
  }

  /// Max open-addressing occupancy across this node's link table and the
  /// protocol's routing tables (observability).
  [[nodiscard]] double table_load() const {
    const double protocol = protocol_ ? protocol_->table_load() : 0.0;
    return protocol > links_.table_load() ? protocol : links_.table_load();
  }

  // -- ProtocolHost ----------------------------------------------------------
  [[nodiscard]] NodeId id() const override { return id_; }
  sim::Simulator& simulator() override { return sim_; }
  sim::RandomStream& protocol_rng() override { return rng_; }
  void send_control(ControlPacket pkt) override;
  std::optional<channel::CsiClass> link_csi(NodeId neighbor) override;
  std::vector<NodeId> neighbors_in_range() override;
  void forward_data(DataPacket pkt, NodeId next_hop) override;
  void deliver_local(const DataPacket& pkt) override;
  void drop_data(const DataPacket& pkt, stats::DropReason reason) override;
  std::vector<DataPacket> drain_queue(NodeId neighbor) override;
  [[nodiscard]] std::size_t buffered_count() const override;
  void count(const std::string& name, std::uint64_t by = 1) override;
  void trace_route(std::string_view stage, NodeId src, NodeId dst,
                   std::uint32_t bid = 0, double metric = 0.0,
                   std::string_view detail = {}) override;

 private:
  /// Packet-lifecycle trace emission (no-op with no sink attached).
  void trace_packet(std::string_view stage, const DataPacket& pkt,
                    std::int64_t peer, std::string_view detail = {});

  NodeId id_;
  sim::Simulator& sim_;
  channel::ChannelModel& channel_;
  mac::CommonChannelMac& common_mac_;
  stats::MetricsCollector& metrics_;
  sim::RandomStream rng_;
  mac::LinkTransmitter links_;
  std::unique_ptr<routing::Protocol> protocol_;
  PeerDeliveryFn peer_delivery_;
  DeliveryObserverFn delivery_observer_;
};

}  // namespace rica::net
