// Packet formats for the data plane and for every protocol's control plane.
//
// These are simulation-level descriptions of the paper's packets: each struct
// carries the fields §II enumerates plus the byte size that is charged to the
// common channel (routing overhead is accounted per transmission, exactly as
// in §III-A).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <variant>
#include <vector>

#include "channel/csi.hpp"
#include "sim/time.hpp"

namespace rica::net {

using NodeId = std::uint32_t;

/// Destination id meaning "all nodes in range" on the common channel.
inline constexpr NodeId kBroadcastId = 0xFFFFFFFFu;

/// Terminal population ceiling: node ids must fit 24 bits.  The routing
/// history tables pack (terminal, counter) keys into 64-bit integers
/// (util/flat_table.hpp) and the wire codecs reject wider addresses
/// (net/wire.hpp) — kBroadcastId is the one legal wider value, and only in
/// a frame's `to` field.
inline constexpr std::size_t kMaxNodes = std::size_t{1} << 24;

/// A (source, destination) pair key for per-flow protocol state.
using FlowKey = std::uint64_t;
[[nodiscard]] constexpr FlowKey flow_key(NodeId src, NodeId dst) {
  return (static_cast<FlowKey>(src) << 32) | dst;
}
[[nodiscard]] constexpr NodeId flow_src(FlowKey k) {
  return static_cast<NodeId>(k >> 32);
}
[[nodiscard]] constexpr NodeId flow_dst(FlowKey k) {
  return static_cast<NodeId>(k & 0xFFFFFFFFu);
}

/// An application data packet (512 B in the paper).  The bookkeeping fields
/// (`hops`, `tput_sum_bps`) are write-only metadata used by the metrics of
/// Fig. 5; protocols never read them.
struct DataPacket {
  std::uint32_t flow = 0;        ///< flow index (traffic-generator assigned)
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t seq = 0;         ///< per-flow sequence number
  sim::Time gen_time{};          ///< generation instant at the source
  std::uint16_t size_bytes = 512;
  bool route_update = false;     ///< RICA: first packet on a freshly switched
                                 ///< route carries the update flag (§II-C)
  std::uint16_t hops = 0;        ///< topological hops traversed so far
  double tput_sum_bps = 0.0;     ///< sum of link throughputs traversed

  friend bool operator==(const DataPacket&, const DataPacket&) = default;

  [[nodiscard]] FlowKey key() const { return flow_key(src, dst); }
};

// ---------------------------------------------------------------------------
// Control messages.  One struct per message type; grouped by protocol.
// ---------------------------------------------------------------------------

/// RICA / BGCA route request (§II-B): CSI-based hop count accumulates as the
/// flood spreads; `topo_hops` counts physical hops for TTL bookkeeping.
struct RreqMsg {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t bid = 0;  ///< broadcast id; (src,dst,bid) identifies a RREQ
  double csi_hops = 0.0;
  std::uint16_t topo_hops = 0;

  friend bool operator==(const RreqMsg&, const RreqMsg&) = default;
};

/// RICA / BGCA route reply, unicast hop-by-hop along stored upstreams.
struct RrepMsg {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t bid = 0;
  double csi_hops = 0.0;
  std::uint16_t topo_hops = 0;     ///< hops from the destination so far

  friend bool operator==(const RrepMsg&, const RrepMsg&) = default;
};

/// RICA CSI-checking packet (§II-C), broadcast by the destination with a TTL
/// bounding the flood to the neighbourhood of the current route.
struct CsiCheckMsg {
  NodeId src = 0;            ///< the data source the check is aimed at
  NodeId dst = 0;            ///< the destination that originated the check
  std::uint32_t bid = 0;
  double csi_hops = 0.0;     ///< CSI distance accumulated from the destination
  std::uint16_t topo_hops = 0;
  std::int16_t ttl = 0;
  NodeId received_from = 0;  ///< §II-C: the rebroadcaster names the terminal
                             ///< it got the packet from, so that terminal can
                             ///< overhear and arm its PN detection window

  friend bool operator==(const CsiCheckMsg&, const CsiCheckMsg&) = default;
};

/// RICA route update, unicast from the source to its new first hop (§II-C).
struct RupdMsg {
  NodeId src = 0;
  NodeId dst = 0;

  friend bool operator==(const RupdMsg&, const RupdMsg&) = default;
};

/// RICA / BGCA route error, unicast upstream (§II-D).
struct ReerMsg {
  NodeId src = 0;
  NodeId dst = 0;
  NodeId reporter = 0;  ///< terminal that observed the break

  friend bool operator==(const ReerMsg&, const ReerMsg&) = default;
};

/// BGCA local query: TTL-bounded search for a partial route from `origin`
/// back to the flow's live downstream path (or the destination).
struct BgcaLqMsg {
  NodeId origin = 0;
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t bid = 0;
  std::int16_t ttl = 0;
  double csi_hops = 0.0;
  std::uint16_t topo_hops = 0;
  std::uint16_t origin_hops_to_dst = 0;  ///< loop guard for join eligibility

  friend bool operator==(const BgcaLqMsg&, const BgcaLqMsg&) = default;
};

/// BGCA local-query reply, unicast back along the LQ reverse path.
struct BgcaLqReplyMsg {
  NodeId origin = 0;
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t bid = 0;
  double csi_hops = 0.0;
  std::uint16_t join_hops_to_dst = 0;
  NodeId join = 0;  ///< the on-path terminal that answered

  friend bool operator==(const BgcaLqReplyMsg&, const BgcaLqReplyMsg&) =
      default;
};

/// ABR periodic beacon; drives associativity ticks.
struct AbrBeaconMsg {
  NodeId origin = 0;

  friend bool operator==(const AbrBeaconMsg&, const AbrBeaconMsg&) = default;
};

/// ABR broadcast query: accumulates aggregate stability and load.
struct AbrBqMsg {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t bid = 0;
  std::uint32_t tick_sum = 0;  ///< aggregate associativity over the path
  std::uint32_t load_sum = 0;  ///< sum of buffered packets at relays
  std::uint16_t topo_hops = 0;

  friend bool operator==(const AbrBqMsg&, const AbrBqMsg&) = default;
};

/// ABR route reply, unicast along the reverse path of the chosen BQ copy.
struct AbrReplyMsg {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t bid = 0;
  std::uint16_t topo_hops = 0;

  friend bool operator==(const AbrReplyMsg&, const AbrReplyMsg&) = default;
};

/// ABR localized query for route repair (TTL-bounded).
struct AbrLqMsg {
  NodeId origin = 0;
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t bid = 0;
  std::int16_t ttl = 0;
  std::uint16_t topo_hops = 0;
  std::uint16_t origin_hops_to_dst = 0;

  friend bool operator==(const AbrLqMsg&, const AbrLqMsg&) = default;
};

/// ABR localized-query reply.
struct AbrLqReplyMsg {
  NodeId origin = 0;
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t bid = 0;
  std::uint16_t join_hops_to_dst = 0;
  NodeId join = 0;

  friend bool operator==(const AbrLqReplyMsg&, const AbrLqReplyMsg&) = default;
};

/// ABR route notification: repair failed, backtrack one hop toward source.
struct AbrRnMsg {
  NodeId src = 0;
  NodeId dst = 0;
  NodeId reporter = 0;

  friend bool operator==(const AbrRnMsg&, const AbrRnMsg&) = default;
};

/// AODV route request (paper's comparator: topological hop metric).
struct AodvRreqMsg {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t bid = 0;
  std::uint16_t hops = 0;

  friend bool operator==(const AodvRreqMsg&, const AodvRreqMsg&) = default;
};

/// AODV route reply; the destination answers only the first RREQ copy.
struct AodvRrepMsg {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t bid = 0;
  std::uint16_t hops = 0;

  friend bool operator==(const AodvRrepMsg&, const AodvRrepMsg&) = default;
};

/// AODV route error, unicast toward the source.
struct AodvRerrMsg {
  NodeId src = 0;
  NodeId dst = 0;
  NodeId reporter = 0;

  friend bool operator==(const AodvRerrMsg&, const AodvRerrMsg&) = default;
};

/// Link-state update: one origin's full adjacency row (neighbour, CSI class).
struct LsuMsg {
  NodeId origin = 0;
  std::uint32_t seq = 0;
  std::vector<std::pair<NodeId, channel::CsiClass>> links;

  friend bool operator==(const LsuMsg&, const LsuMsg&) = default;
};

using ControlPayload =
    std::variant<RreqMsg, RrepMsg, CsiCheckMsg, RupdMsg, ReerMsg, BgcaLqMsg,
                 BgcaLqReplyMsg, AbrBeaconMsg, AbrBqMsg, AbrReplyMsg, AbrLqMsg,
                 AbrLqReplyMsg, AbrRnMsg, AodvRreqMsg, AodvRrepMsg,
                 AodvRerrMsg, LsuMsg>;

/// A control packet on the common channel.
struct ControlPacket {
  NodeId to = kBroadcastId;  ///< kBroadcastId or a unicast neighbour
  std::uint16_t size_bytes = 0;
  ControlPayload payload;
};

/// Builds a control packet with its exact encoded wire size stamped in —
/// `size_bytes` is what the codec in net/wire.hpp serializes this payload
/// to, byte for byte, and is what the MAC charges as airtime.  Defined in
/// wire.cpp.  Throws wire::WireError when an LsuMsg adjacency row is too
/// dense for the u16 wire-size field (the emitter must split the row).
[[nodiscard]] ControlPacket make_control(NodeId to, ControlPayload payload);

}  // namespace rica::net
