#include "net/network.hpp"

namespace rica::net {

Network::Network(const NetworkConfig& cfg)
    : cfg_(cfg),
      sim_(cfg.event_backend),
      rng_(cfg.seed),
      mobility_(cfg.num_nodes, cfg.mobility, rng_),
      channel_(cfg.channel, mobility_, rng_),
      common_mac_(sim_, channel_, rng_, metrics_, cfg.common_mac) {
  nodes_.reserve(cfg.num_nodes);
  for (std::size_t i = 0; i < cfg.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(
        static_cast<NodeId>(i), sim_, channel_, common_mac_, metrics_,
        cfg.link, rng_.stream("protocol", i)));
  }
  for (auto& node : nodes_) {
    node->set_peer_delivery([this](NodeId to, DataPacket pkt, NodeId from) {
      nodes_.at(to)->receive_data(std::move(pkt), from);
    });
  }
}

void Network::start() {
  for (auto& node : nodes_) node->start();
}

void Network::set_delivery_observer(Node::DeliveryObserverFn fn) {
  for (auto& node : nodes_) node->set_delivery_observer(fn);
}

}  // namespace rica::net
