#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "channel/lookahead.hpp"
#include "net/packet.hpp"
#include "net/wire.hpp"
#include "sim/sharding.hpp"

namespace rica::net {

namespace {
// Runs before any heavy member construction: cfg_ is the first member, so
// validating inside its initializer rejects oversized populations (and
// malformed shard requests) before mobility/channel state is allocated.
const NetworkConfig& validate(const NetworkConfig& cfg) {
  // The wire layout constants back both airtime accounting and the sharded
  // lookahead floor; refuse to build any network if they drifted from the
  // live encoders.
  wire::check_wire_invariants();
  if (cfg.num_nodes > kMaxNodes) {
    throw std::invalid_argument(
        "NetworkConfig.num_nodes = " + std::to_string(cfg.num_nodes) +
        " exceeds the 2^24 node-id limit (routing history keys pack the "
        "origin id into 24 bits)");
  }
  if (cfg.kernel.shards > sim::Simulator::kMaxShards) {
    throw std::invalid_argument(
        "NetworkConfig.kernel.shards = " + std::to_string(cfg.kernel.shards) +
        " exceeds the kernel's " +
        std::to_string(sim::Simulator::kMaxShards) +
        "-shard limit (shard ids ride in the top EventId bits)");
  }
  if (cfg.kernel.shards > 1) {
    const std::size_t cols =
        sim::grid_columns(cfg.mobility.field.width, cfg.channel.range_m);
    if (cfg.kernel.shards > cols) {
      throw std::invalid_argument(
          "NetworkConfig.kernel.shards = " +
          std::to_string(cfg.kernel.shards) + " exceeds the " +
          std::to_string(cols) + " grid column(s) a " +
          std::to_string(cfg.mobility.field.width) + " m field holds at " +
          std::to_string(cfg.channel.range_m) +
          " m range (shards stripe whole columns)");
    }
  }
  return cfg;
}
}  // namespace

Network::Network(const NetworkConfig& cfg)
    : cfg_(validate(cfg)),
      rng_(cfg.seed),
      mobility_(cfg.num_nodes, cfg.mobility, rng_),
      channel_(cfg.channel, mobility_, rng_),
      common_mac_(sim_, channel_, rng_, metrics_, cfg.common_mac) {
  // Shard the kernel before anything can schedule: stripe the arena along
  // the neighbor grid's columns from the t = 0 positions, and derive the
  // conservative window from the channel/MAC minimum turnaround unless the
  // caller pinned one.  shards <= 1 keeps the serial engine bit-for-bit.
  if (cfg.kernel.shards > 1) {
    std::vector<double> xs(cfg.num_nodes, 0.0);
    {
      std::vector<mobility::Vec2> pos;
      mobility_.snapshot(sim::Time::zero(), pos);
      for (std::size_t i = 0; i < pos.size(); ++i) xs[i] = pos[i].x;
    }
    sim::Time window = cfg.kernel.window;
    if (window <= sim::Time::zero()) {
      window = channel::conservative_lookahead(
                   cfg.common_mac.rate_bps, cfg.common_mac.backoff_min,
                   wire::kMinControlBytes, mobility_.max_speed_mps())
                   .window;
    }
    sim_.configure_shards(
        sim::stripe_shards(xs, cfg.mobility.field.width, cfg.channel.range_m,
                           cfg.kernel.shards),
        cfg.kernel.shards, window, cfg.kernel.threads);
  }
  nodes_.reserve(cfg.num_nodes);
  for (std::size_t i = 0; i < cfg.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(
        static_cast<NodeId>(i), sim_, channel_, common_mac_, metrics_,
        cfg.link, rng_.stream("protocol", i)));
  }
  for (auto& node : nodes_) {
    node->set_peer_delivery([this](NodeId to, DataPacket pkt, NodeId from) {
      nodes_.at(to)->receive_data(std::move(pkt), from);
    });
  }

  // One registration per statistic: the harness snapshots this registry
  // into MetricsSummary::stats, which is where the summary's typed kernel
  // fields and the sweep's fold rules read from.  Counters sum across
  // trials; gauges keep the per-trial maximum.
  registry_.counter_fn("kernel.events_executed", [this] {
    return static_cast<double>(sim_.events_executed());
  });
  registry_.counter_fn("kernel.batched_fires", [this] {
    return static_cast<double>(sim_.batched_fires());
  });
  registry_.counter_fn("kernel.heap_fallbacks", [this] {
    return static_cast<double>(sim_.heap_fallbacks());
  });
  registry_.gauge_fn("kernel.peak_pending", [this] {
    return static_cast<double>(sim_.peak_pending_events());
  });
  registry_.gauge_fn("kernel.slab_high_water", [this] {
    return static_cast<double>(sim_.slab_high_water());
  });
  registry_.gauge_fn("stack.pool_high_water", [this] {
    return static_cast<double>(pool_high_water());
  });
  registry_.gauge_fn("stack.table_load", [this] { return table_load(); });
  registry_.gauge_fn("stack.buffered_packets", [this] {
    return static_cast<double>(buffered_packets());
  });
  // Byte-exact overhead accounting (net/wire.hpp): control frames as
  // bytes-on-air (what fig. 4 compares), and the encoded data-frame header
  // bytes charged on top of every data payload.
  registry_.counter_fn("net.control_bytes_on_air",
                       [this] { return metrics_.control_bits() / 8.0; });
  registry_.counter_fn("net.data_header_bytes", [this] {
    std::uint64_t bits = 0;
    for (const auto& n : nodes_) bits += n->data_header_bits();
    return static_cast<double>(bits) / 8.0;
  });
  // Sharded-kernel telemetry: all zero on the serial engine, and the
  // per-shard counters only exist when the kernel is actually sharded (so
  // serial snapshots keep their pre-sharding shape).
  registry_.counter_fn("kernel.windows", [this] {
    return static_cast<double>(sim_.windows());
  });
  registry_.counter_fn("kernel.staged_events", [this] {
    return static_cast<double>(sim_.staged_events());
  });
  registry_.counter_fn("kernel.cross_shard_sends", [this] {
    return static_cast<double>(sim_.cross_shard_sends());
  });
  registry_.counter_fn("kernel.sync_crossings", [this] {
    return static_cast<double>(sim_.sync_crossings());
  });
  if (sim_.sharded()) {
    registry_.gauge_fn("kernel.shards", [this] {
      return static_cast<double>(sim_.num_shards());
    });
    for (std::uint32_t s = 0; s < sim_.num_shards(); ++s) {
      registry_.counter_fn("kernel.shard" + std::to_string(s) + ".events",
                           [this, s] {
                             return static_cast<double>(sim_.shard_events(s));
                           });
      // Staging utilization: the share of all fired events that this
      // shard fired — balanced sharding reads ~1/num_shards per shard.
      registry_.gauge_fn(
          "kernel.shard" + std::to_string(s) + ".staging_util", [this, s] {
            const auto total = sim_.events_executed();
            return total == 0 ? 0.0 :
                                static_cast<double>(sim_.shard_events(s)) /
                                    static_cast<double>(total);
          });
    }
    // Lookahead efficiency: events the parallel staging phase pre-sorted
    // per conservative window — the payoff of the lookahead horizon.
    registry_.gauge_fn("kernel.lookahead_efficiency", [this] {
      const auto w = sim_.windows();
      return w == 0 ? 0.0 : static_cast<double>(sim_.staged_events()) /
                                static_cast<double>(w);
    });
    // Per-window staged-event distribution, fed from the kernel's window
    // hook (a plain callback: the kernel stays obs-free).
    auto& staged_hist = registry_.histogram("kernel.staged_per_window");
    sim_.set_window_hook([&staged_hist](std::uint64_t staged) {
      staged_hist.record(static_cast<std::int64_t>(staged));
    });
  }
}

std::size_t Network::pool_high_water() const {
  std::size_t hw = common_mac_.pool_high_water();
  for (const auto& n : nodes_) hw = std::max(hw, n->pool_high_water());
  return hw;
}

double Network::table_load() const {
  double lf = 0.0;
  for (const auto& n : nodes_) lf = std::max(lf, n->table_load());
  return lf;
}

std::uint64_t Network::buffered_packets() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) total += n->buffered_count();
  return total;
}

void Network::start() {
  for (auto& node : nodes_) {
    // Seed each node's protocol timer chain into its home shard: periodic
    // beacons/updates re-arm from their own callbacks, so the whole chain
    // inherits the shard it starts in.
    sim::ShardScope scope(sim_, sim_.shard_of_node(node->id()),
                          sim::ShardScope::Kind::kHoming);
    node->start();
  }
}

void Network::set_delivery_observer(Node::DeliveryObserverFn fn) {
  for (auto& node : nodes_) node->set_delivery_observer(fn);
}

}  // namespace rica::net
