#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace rica::net {

namespace {
// Runs before any heavy member construction: cfg_ is the first member, so
// validating inside its initializer rejects oversized populations before
// mobility/channel state is allocated.
const NetworkConfig& validate(const NetworkConfig& cfg) {
  if (cfg.num_nodes > kMaxNodes) {
    throw std::invalid_argument(
        "NetworkConfig.num_nodes = " + std::to_string(cfg.num_nodes) +
        " exceeds the 2^24 node-id limit (routing history keys pack the "
        "origin id into 24 bits)");
  }
  return cfg;
}
}  // namespace

Network::Network(const NetworkConfig& cfg)
    : cfg_(validate(cfg)),
      rng_(cfg.seed),
      mobility_(cfg.num_nodes, cfg.mobility, rng_),
      channel_(cfg.channel, mobility_, rng_),
      common_mac_(sim_, channel_, rng_, metrics_, cfg.common_mac) {
  nodes_.reserve(cfg.num_nodes);
  for (std::size_t i = 0; i < cfg.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(
        static_cast<NodeId>(i), sim_, channel_, common_mac_, metrics_,
        cfg.link, rng_.stream("protocol", i)));
  }
  for (auto& node : nodes_) {
    node->set_peer_delivery([this](NodeId to, DataPacket pkt, NodeId from) {
      nodes_.at(to)->receive_data(std::move(pkt), from);
    });
  }

  // One registration per statistic: the harness snapshots this registry
  // into MetricsSummary::stats, which is where the summary's typed kernel
  // fields and the sweep's fold rules read from.  Counters sum across
  // trials; gauges keep the per-trial maximum.
  registry_.counter_fn("kernel.events_executed", [this] {
    return static_cast<double>(sim_.events_executed());
  });
  registry_.counter_fn("kernel.batched_fires", [this] {
    return static_cast<double>(sim_.batched_fires());
  });
  registry_.counter_fn("kernel.heap_fallbacks", [this] {
    return static_cast<double>(sim_.heap_fallbacks());
  });
  registry_.gauge_fn("kernel.peak_pending", [this] {
    return static_cast<double>(sim_.peak_pending_events());
  });
  registry_.gauge_fn("kernel.slab_high_water", [this] {
    return static_cast<double>(sim_.slab_high_water());
  });
  registry_.gauge_fn("stack.pool_high_water", [this] {
    return static_cast<double>(pool_high_water());
  });
  registry_.gauge_fn("stack.table_load", [this] { return table_load(); });
  registry_.gauge_fn("stack.buffered_packets", [this] {
    return static_cast<double>(buffered_packets());
  });
}

std::size_t Network::pool_high_water() const {
  std::size_t hw = common_mac_.pool_high_water();
  for (const auto& n : nodes_) hw = std::max(hw, n->pool_high_water());
  return hw;
}

double Network::table_load() const {
  double lf = 0.0;
  for (const auto& n : nodes_) lf = std::max(lf, n->table_load());
  return lf;
}

std::uint64_t Network::buffered_packets() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) total += n->buffered_count();
  return total;
}

void Network::start() {
  for (auto& node : nodes_) node->start();
}

void Network::set_delivery_observer(Node::DeliveryObserverFn fn) {
  for (auto& node : nodes_) node->set_delivery_observer(fn);
}

}  // namespace rica::net
