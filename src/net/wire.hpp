// Wire-format codecs: the packed big-endian byte layout of every frame the
// stack puts on the air, with exact byte accounting.
//
// Packets used to be in-memory structs whose airtime was charged from
// hand-estimated constants; this layer replaces the estimates with real
// serializers (in the spirit of mesh firmwares' packed base-header +
// per-type extension-header layouts), so the MAC charges airtime from
// *encoded* bytes and the paper's fig. 4 control-overhead comparison is
// byte-exact on the air.
//
// Frame layout (all multi-byte fields big-endian / network order):
//
//   control frame  = u8 type tag | u32 to | per-type body
//   data frame     = u8 type tag | u8 flags | u32 flow | u32 src | u32 dst
//                    | u32 seq | u64 gen_time_ns | u16 payload_bytes
//                    | u16 hops  (then payload_bytes of application data)
//
// Node addresses ride as u32 but must fit 24 bits (net::kMaxNodes); the
// only legal wider value is kBroadcastId in the `to` field.  Doubles
// (CSI hop distances) ride as their IEEE-754 bit pattern, so round-trips
// are bit-exact.
//
// Error discipline mirrors the trace parser's (mobility/trace.hpp): every
// malformed, truncated, or trailing input throws a typed `WireError`
// carrying the byte offset of the violation — never a silent clamp or a
// Release-mode-vanishing assert.  The encoder enforces the same contracts
// (an LsuMsg whose row would overflow the u16 size field throws instead of
// truncating, the bug the old Sizer hid behind a debug-only assert).
//
// The sharded kernel's conservative-lookahead floor is derived *here*:
// `kMinControlBytes` is the minimum over every codec's smallest frame,
// checked against the live encoders by check_wire_invariants() at network
// construction, so the floor can never drift from what the codecs emit
// (it used to be a hand-synced constant in packet.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "net/packet.hpp"

namespace rica::net::wire {

/// Typed decode/encode failure with the byte offset where it was detected
/// (the reader position for truncation/garbage, the frame length for
/// oversize rejections).  what() carries "wire: <reason> at byte <offset>".
class WireError : public std::runtime_error {
 public:
  WireError(const std::string& reason, std::size_t offset)
      : std::runtime_error("wire: " + reason + " at byte " +
                           std::to_string(offset)),
        offset_(offset) {}

  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// Appends big-endian fields to a caller-owned buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out)
      : out_(out), base_(out.size()) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void i16(std::int16_t v) { u16(static_cast<std::uint16_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);  ///< IEEE-754 bit pattern, bit-exact round trip

  /// Bytes appended since construction.
  [[nodiscard]] std::size_t written() const { return out_.size() - base_; }

 private:
  std::vector<std::uint8_t>& out_;
  std::size_t base_;
};

/// Bounds-checked big-endian reader: every underrun throws WireError with
/// the offset where the frame ran out.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  [[nodiscard]] std::uint16_t u16() {
    need(2);
    const auto v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  [[nodiscard]] std::uint32_t u32() {
    const auto hi = static_cast<std::uint32_t>(u16());
    return (hi << 16) | u16();
  }
  [[nodiscard]] std::uint64_t u64() {
    const auto hi = static_cast<std::uint64_t>(u32());
    return (hi << 32) | u32();
  }
  [[nodiscard]] std::int16_t i16() {
    return static_cast<std::int16_t>(u16());
  }
  [[nodiscard]] std::int64_t i64() {
    return static_cast<std::int64_t>(u64());
  }
  [[nodiscard]] double f64();

  [[nodiscard]] std::size_t offset() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

  /// Throws unless the whole frame was consumed (trailing garbage is a
  /// malformed frame, not padding).
  void expect_end() const {
    if (pos_ != size_) {
      throw WireError(std::to_string(size_ - pos_) + " trailing byte(s)",
                      pos_);
    }
  }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n) {
      throw WireError("truncated frame (need " + std::to_string(n) +
                          " more byte(s) of " + std::to_string(size_) + ")",
                      pos_);
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Frame type tags and layout constants.
// ---------------------------------------------------------------------------

/// Data-frame type tag; control tags follow at kControlTagBase + variant
/// index.  Tag 0 is deliberately unassigned so an all-zero buffer is
/// malformed.
inline constexpr std::uint8_t kDataFrameTag = 0x01;
inline constexpr std::uint8_t kControlTagBase = 0x02;

[[nodiscard]] constexpr std::uint8_t control_tag(std::size_t variant_index) {
  return static_cast<std::uint8_t>(kControlTagBase + variant_index);
}

/// Every frame starts with the tag byte; control frames add the u32 `to`
/// link address (a node id, or kBroadcastId for broadcasts).
inline constexpr std::uint16_t kControlHeaderBytes = 5;

/// Encoded data-frame header: tag, flags, flow, src, dst, seq, gen_time,
/// payload length, hops = 1+1+4+4+4+4+8+2+2.  Charged on every data
/// transmission in addition to the payload (`DataPacket::size_bytes`).
inline constexpr std::uint16_t kDataHeaderBytes = 30;

/// One LsuMsg adjacency entry: u32 neighbour id + u8 CSI class.
inline constexpr std::uint16_t kLsuLinkBytes = 5;

/// Fixed body bytes of each ControlPayload alternative, indexed by variant
/// index (the LsuMsg entry is its zero-link body: origin, seq, link count).
/// The serializers in wire.cpp are the source of truth; these constants
/// exist so the lookahead floor below is a compile-time value, and
/// check_wire_invariants() proves they match the live encoders.
inline constexpr std::array<std::uint16_t, 17> kControlBodyBytes = {
    22,  // RreqMsg:        src, dst, bid, csi_hops f64, topo_hops u16
    22,  // RrepMsg:        src, dst, bid, csi_hops f64, topo_hops u16
    28,  // CsiCheckMsg:    + ttl i16, received_from u32
    8,   // RupdMsg:        src, dst
    12,  // ReerMsg:        src, dst, reporter
    30,  // BgcaLqMsg:      origin..bid, ttl, csi_hops, 2x u16 hops
    30,  // BgcaLqReplyMsg: origin..bid, csi_hops, join_hops u16, join u32
    4,   // AbrBeaconMsg:   origin
    22,  // AbrBqMsg:       src, dst, bid, tick_sum, load_sum, topo_hops u16
    14,  // AbrReplyMsg:    src, dst, bid, topo_hops u16
    22,  // AbrLqMsg:       origin..bid, ttl i16, 2x u16 hops
    22,  // AbrLqReplyMsg:  origin..bid, join_hops u16, join u32
    12,  // AbrRnMsg:       src, dst, reporter
    14,  // AodvRreqMsg:    src, dst, bid, hops u16
    14,  // AodvRrepMsg:    src, dst, bid, hops u16
    12,  // AodvRerrMsg:    src, dst, reporter
    10,  // LsuMsg:         origin, seq, link count u16 (+ 5 per link)
};
static_assert(kControlBodyBytes.size() == std::variant_size_v<ControlPayload>,
              "one body-size entry per ControlPayload alternative");

namespace detail {
[[nodiscard]] constexpr std::uint16_t min_body_bytes() {
  std::uint16_t m = kControlBodyBytes[0];
  for (const auto b : kControlBodyBytes) m = b < m ? b : m;
  return m;
}
}  // namespace detail

/// Smallest control frame any codec emits (the ABR beacon: header + u32
/// origin).  This is the sharded kernel's lookahead floor — no transmission
/// can complete, and therefore no cross-shard causal effect can land, in
/// less than this frame's airtime plus the MAC's minimum backoff
/// (channel/lookahead.hpp).  Derived from the codec table above and
/// cross-checked against the live encoders by check_wire_invariants(), so
/// a codec change that shrinks any frame is a build/startup error, never a
/// silently unsound lookahead window.
inline constexpr std::uint16_t kMinControlBytes =
    kControlHeaderBytes + detail::min_body_bytes();
static_assert(kMinControlBytes == 9, "ABR beacon: 5-byte header + u32 origin");

// ---------------------------------------------------------------------------
// Codecs.
// ---------------------------------------------------------------------------

/// Exact encoded size of a control frame carrying `payload` (header
/// included) — what make_control stamps into ControlPacket::size_bytes and
/// the MAC charges as airtime.  Throws WireError when an LsuMsg row is too
/// dense for the u16 wire-size field (13 105+ links); the caller must
/// split the row, not truncate it.
[[nodiscard]] std::uint16_t encoded_control_size(const ControlPayload& payload);

/// Serializes a control packet (header + payload) onto `out`, returning
/// the bytes appended (== encoded_control_size of the payload).  Throws
/// WireError on out-of-range node ids (>= 2^24, except a broadcast `to`)
/// and on LsuMsg size overflow.
std::size_t encode_control(const ControlPacket& pkt,
                           std::vector<std::uint8_t>& out);

/// Parses a control frame.  The returned packet's size_bytes is the exact
/// frame length.  Throws WireError on a bad type tag, truncation, trailing
/// bytes, out-of-range node ids, a bad CSI class, or an LsuMsg whose link
/// count disagrees with the frame length.
[[nodiscard]] ControlPacket decode_control(const std::uint8_t* data,
                                           std::size_t size);
[[nodiscard]] inline ControlPacket decode_control(
    const std::vector<std::uint8_t>& buf) {
  return decode_control(buf.data(), buf.size());
}

/// Serializes the data-frame header (kDataHeaderBytes bytes; the payload
/// itself is synthetic in simulation, so only its length rides along).
/// `tput_sum_bps` is simulator-side metrics bookkeeping and never touches
/// the wire.  Returns bytes appended.  Throws WireError on out-of-range
/// node ids or a negative generation timestamp.
std::size_t encode_data_header(const DataPacket& pkt,
                               std::vector<std::uint8_t>& out);

/// Parses a data-frame header (tolerates — and ignores — payload bytes
/// after the header, which is how a frame arrives).  The returned packet
/// has tput_sum_bps == 0 (not a wire field).  Throws WireError on a bad
/// tag, truncation, unknown flag bits, out-of-range ids, or a negative
/// timestamp.
[[nodiscard]] DataPacket decode_data_header(const std::uint8_t* data,
                                            std::size_t size);
[[nodiscard]] inline DataPacket decode_data_header(
    const std::vector<std::uint8_t>& buf) {
  return decode_data_header(buf.data(), buf.size());
}

/// Startup cross-check of the layout constants against the live encoders:
/// every default-constructed ControlPayload alternative must encode to
/// exactly kControlHeaderBytes + kControlBodyBytes[index] bytes, the
/// minimum over them must equal kMinControlBytes, and the data header must
/// encode to kDataHeaderBytes.  Throws std::logic_error naming the
/// offending type on any drift — the lookahead floor and airtime
/// accounting both lean on these constants.  Called by the Network
/// constructor, so no simulation can run with a drifted table.
void check_wire_invariants();

}  // namespace rica::net::wire
