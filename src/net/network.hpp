// Assembles a complete simulated ad hoc network: simulator, mobility,
// channel, common-channel MAC, metrics, and one Node per terminal.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "channel/channel_model.hpp"
#include "mac/common_channel.hpp"
#include "mac/link_transmitter.hpp"
#include "mobility/mobility_model.hpp"
#include "net/node.hpp"
#include "obs/registry.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "stats/metrics.hpp"

namespace rica::net {

/// Everything needed to instantiate a network.
struct NetworkConfig {
  std::size_t num_nodes = 50;
  mobility::MobilityConfig mobility{};  ///< model + field/speed/pause/params
  channel::ChannelConfig channel{};
  mac::CommonChannelConfig common_mac{};
  mac::LinkConfig link{};
  std::uint64_t seed = 1;
  /// Sharded-kernel knobs.  shards > 1 splits the arena into grid-column
  /// stripes (from the t = 0 positions) with one event wheel each, staged
  /// on `threads` workers behind the channel-derived conservative window
  /// (kernel.window zero derives it; see channel/lookahead.hpp).  The
  /// defaults keep the serial engine — and its golden hashes — untouched.
  sim::KernelConfig kernel{};
};

// kMaxNodes (the 24-bit node-id ceiling this constructor enforces) lives in
// net/packet.hpp alongside the address types the wire codecs validate with.

/// Owns the full simulation stack.  Protocols are installed per node by the
/// harness (which knows which protocol family is under test); then start()
/// arms every node and the simulator can run.
class Network {
 public:
  explicit Network(const NetworkConfig& cfg);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(id); }

  sim::Simulator& simulator() { return sim_; }
  mobility::MobilityManager& mobility() { return mobility_; }
  channel::ChannelModel& channel() { return channel_; }
  mac::CommonChannelMac& common_mac() { return common_mac_; }
  stats::MetricsCollector& metrics() { return metrics_; }
  [[nodiscard]] const sim::RngManager& rng() const { return rng_; }
  [[nodiscard]] const NetworkConfig& config() const { return cfg_; }

  /// Starts every node's protocol.  Call after installing protocols.
  void start();

  /// Peak live pooled entries across the whole stack: the control-queue
  /// pool of the common MAC and every node's data-queue pool (the gauge
  /// behind MetricsSummary::pool_high_water).
  [[nodiscard]] std::size_t pool_high_water() const;

  /// Max open-addressing table occupancy across all nodes (routing tables,
  /// history tables, link tables).
  [[nodiscard]] double table_load() const;

  /// Data packets currently buffered across every node's link queues (the
  /// sampler's queue-occupancy column).
  [[nodiscard]] std::uint64_t buffered_packets() const;

  /// The run's metrics registry.  The network registers every kernel and
  /// stack statistic here at construction; the harness snapshots it into
  /// MetricsSummary::stats after the run.  Adding a statistic means adding
  /// one registration here — the summary, sweep folding, and serialized
  /// output all pick it up from the snapshot.
  [[nodiscard]] obs::Registry& registry() { return registry_; }

  /// Installs one network-wide observer of final packet deliveries (the
  /// feedback path closed-loop traffic models ride on).  Called after
  /// metrics accounting; installing a new observer replaces the previous
  /// one.  The observer must outlive the simulation run.
  void set_delivery_observer(Node::DeliveryObserverFn fn);

 private:
  NetworkConfig cfg_;
  sim::Simulator sim_;
  sim::RngManager rng_;
  mobility::MobilityManager mobility_;
  channel::ChannelModel channel_;
  stats::MetricsCollector metrics_;
  mac::CommonChannelMac common_mac_;
  std::vector<std::unique_ptr<Node>> nodes_;
  obs::Registry registry_;
};

}  // namespace rica::net
