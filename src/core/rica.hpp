// RICA — Receiver-Initiated Channel-Adaptive routing (the paper's §II).
//
// Route discovery (§II-B): the source floods a RREQ whose hop count
// accumulates CSI-based hop distances (1 / 1.67 / 3.33 / 5 per link class);
// every relay remembers the upstream of the first copy; the destination
// collects the copies arriving over distinct last hops for a short window
// and unicasts a RREP along the CSI-shortest one.
//
// Receiver-initiated adaptation (§II-C): while the flow is active the
// destination periodically broadcasts a TTL-bounded CSI-checking packet.
// Each relay forwards it once, adding the measured CSI distance of the link
// it arrived on, remembers the neighbour it first heard it from (its future
// downstream), and names that neighbour in the rebroadcast so the neighbour
// can overhear and arm its PN-code detection window.  The source gathers the
// checks for 40 ms, picks the CSI-shortest candidate, and — if it differs
// from the current route — unicasts a RUPD to the new first hop and marks
// the next data packet with the update flag; the flag re-anchors each relay
// to its first-check downstream as the packet travels.  Abandoned routes
// expire after one idle second.
//
// Route maintenance (§II-D): per-packet data ACKs detect breaks; REERs are
// forwarded upstream only when they arrive from the terminal's *current*
// downstream (stale reports from abandoned routes are ignored); a source
// receiving a REER switches to the best fresh CSI-check candidate when one
// exists and falls back to a fresh RREQ otherwise.
#pragma once

#include <cstdint>
#include <vector>

#include "routing/protocol.hpp"
#include "routing/tables.hpp"
#include "sim/timer.hpp"
#include "util/flat_table.hpp"

namespace rica::core {

/// RICA tunables.  Defaults are the values the paper states (1 s checking
/// period, 100 ms PN detection window, 40 ms source wait, 1 s route expiry).
struct RicaConfig {
  sim::Time check_period = sim::seconds(1);
  sim::Time source_wait = sim::milliseconds(40);
  sim::Time dest_wait = sim::milliseconds(40);
  sim::Time route_expiry = sim::seconds(1);
  sim::Time detect_window = sim::milliseconds(100);
  sim::Time flow_active_timeout = sim::seconds(3);
  sim::Time discovery_timeout = sim::milliseconds(200);
  int max_discovery_attempts = 3;
  std::int16_t rreq_ttl = 16;
  std::int16_t check_ttl_slack = 2;
  std::size_t pending_cap = 10;
  sim::Time pending_residency = sim::seconds(3);
  /// Forwarding of RREQ/CSI-check floods is deferred proportionally to the
  /// CSI hop distance of the incoming link (plus a small random dither), so
  /// the first copy to arrive anywhere travelled an approximately
  /// CSI-shortest path.  This is how the first-copy-forwarding rule of §II
  /// ends up electing channel-adaptive routes.
  sim::Time csi_jitter = sim::milliseconds(10);
  /// After a route switch, data packets keep carrying the update flag for
  /// this long, so the re-anchoring survives the loss of the first packet.
  sim::Time update_flag_window = sim::milliseconds(100);
  /// Switch hysteresis: a candidate must beat the current route's CSI
  /// distance by this much before the source abandons a working route.
  /// Without it, equal-cost candidates arriving in CSMA-jitter order make
  /// the route oscillate every checking round.
  double switch_margin = 0.5;
  /// §II-C hints the checking period "has to be decided by the change speed
  /// of the link CSI".  When enabled, the destination adapts its period:
  /// halved when the delivered packets' route visibly changed since the
  /// last check (volatile channel), stretched by 25% when it stayed put.
  bool adaptive_checks = false;
  sim::Time check_period_min = sim::milliseconds(250);
  sim::Time check_period_max = sim::seconds(4);
};

class RicaProtocol final : public routing::Protocol {
 public:
  RicaProtocol(routing::ProtocolHost& host, const RicaConfig& cfg = {});

  void handle_data(net::DataPacket pkt, net::NodeId from) override;
  void on_control(const net::ControlPacket& pkt, net::NodeId from) override;
  void on_link_break(net::NodeId neighbor,
                     std::vector<net::DataPacket> stranded) override;
  [[nodiscard]] std::string_view name() const override { return "RICA"; }
  [[nodiscard]] double table_load() const override;

  // -- white-box accessors for tests ----------------------------------------
  /// The source's current first hop for (this node -> dst), if valid.
  [[nodiscard]] std::optional<net::NodeId> source_next_hop(
      net::NodeId dst) const;
  /// A relay's current downstream for the flow, if its entry is live.
  [[nodiscard]] std::optional<net::NodeId> relay_downstream(
      net::FlowKey flow) const;
  /// Latest first-check downstream candidate recorded at this relay.
  [[nodiscard]] std::optional<net::NodeId> check_candidate(
      net::FlowKey flow) const;

 private:
  /// One CSI-check (or RREQ) derived route candidate at the source.
  struct Candidate {
    net::NodeId first_hop = 0;
    double csi_hops = 0.0;
    std::uint16_t topo_hops = 0;
  };
  struct SourceState {
    bool valid = false;
    net::NodeId next_hop = 0;
    double route_csi_cost = 1e9;    ///< CSI distance of the current route,
                                    ///< refreshed by the checking rounds
    sim::Time update_flag_until{};  ///< tag data packets with the route
                                    ///< update flag until this time (§II-C)
    // discovery
    bool discovering = false;
    std::uint32_t bid = 0;
    int attempts = 0;
    sim::Timer discovery_timer;  ///< retry deadline; cancelled on success
    routing::PendingBuffer pending;
    // CSI-check collection
    bool window_open = false;
    std::uint32_t window_bid = 0;
    std::vector<Candidate> window_candidates;
    std::vector<Candidate> last_candidates;  ///< last closed window
    sim::Time last_window_close{};
    sim::Time last_check_seen{};
    explicit SourceState(const RicaConfig& cfg)
        : pending(cfg.pending_cap, cfg.pending_residency) {}
  };
  struct RelayState {
    bool valid = false;
    net::NodeId upstream = 0;
    net::NodeId downstream = 0;
    sim::Time last_used{};
    std::uint16_t hops_to_dst = 0;
    // first CSI check of the latest broadcast id seen here
    std::uint32_t check_bid = 0;
    net::NodeId check_next = 0;
    bool check_next_valid = false;
    // overheard possible-upstream (PN detection window bookkeeping)
    net::NodeId cand_upstream = 0;
    sim::Time cand_upstream_expiry{};
  };
  struct DestState {
    /// Periodic §II-C checking timer; armed() means a check is scheduled.
    /// Goes quiet (fires once more, then stays disarmed) when the flow
    /// idles past flow_active_timeout.
    sim::Timer check_timer;
    std::uint32_t next_check_bid = 1;
    sim::Time last_data{};
    std::uint16_t route_hops = 4;  ///< TTL basis, refreshed by delivered data
    // RREQ collection window
    bool window_open = false;
    std::uint32_t window_bid = 0;
    std::vector<Candidate> window_candidates;
    // adaptive checking (extension): track route volatility between checks
    sim::Time check_period{};
    net::NodeId last_hop_seen = net::kBroadcastId;
    double last_route_tput = 0.0;
    bool route_changed_since_check = false;
  };

  // -- source side -----------------------------------------------------------
  void source_send(SourceState& s, net::FlowKey flow, net::DataPacket pkt);
  void begin_discovery(net::FlowKey flow);
  void send_rreq(net::FlowKey flow);
  void switch_route(net::FlowKey flow, SourceState& s,
                    const Candidate& chosen);
  void close_source_window(net::FlowKey flow);
  bool try_candidate_fallback(net::FlowKey flow, SourceState& s,
                              net::NodeId exclude);
  void flush_pending(net::FlowKey flow, SourceState& s);

  // -- destination side ------------------------------------------------------
  void arm_checks(net::FlowKey flow);
  void broadcast_check(net::FlowKey flow);
  void close_dest_window(net::FlowKey flow);

  // -- message handlers ------------------------------------------------------
  void on_rreq(const net::RreqMsg& msg, net::NodeId from);
  void on_rrep(const net::RrepMsg& msg, net::NodeId from);
  void on_check(const net::CsiCheckMsg& msg, net::NodeId from);
  void on_rupd(const net::RupdMsg& msg, net::NodeId from);
  void on_reer(const net::ReerMsg& msg, net::NodeId from);

  [[nodiscard]] sim::Time now() const;
  SourceState& source_state(net::FlowKey flow);
  [[nodiscard]] bool relay_entry_live(const RelayState& r) const;
  /// CSI-proportional flood-forwarding delay for the link class `cls`.
  [[nodiscard]] sim::Time forward_jitter(channel::CsiClass cls);

  RicaConfig cfg_;
  routing::HistoryTable history_;
  util::FlatMap64<SourceState> sources_;
  util::FlatMap64<RelayState> relays_;
  util::FlatMap64<DestState> dests_;
  util::FlatMap64<net::NodeId> rreq_upstream_;
  std::uint32_t next_bid_ = 1;
};

}  // namespace rica::core
