#include "core/rica.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace rica::core {

namespace {
constexpr std::uint8_t kTagRreq = 1;
constexpr std::uint8_t kTagCheck = 2;

constexpr std::uint64_t bid_key(net::NodeId origin, std::uint32_t bid) {
  return (static_cast<std::uint64_t>(origin) << 32) | bid;
}
}  // namespace

RicaProtocol::RicaProtocol(routing::ProtocolHost& host, const RicaConfig& cfg)
    : Protocol(host), cfg_(cfg) {}

sim::Time RicaProtocol::now() const {
  return const_cast<RicaProtocol*>(this)->host().simulator().now();
}

RicaProtocol::SourceState& RicaProtocol::source_state(net::FlowKey flow) {
  auto it = sources_.find(flow);
  if (it == sources_.end()) {
    it = sources_.emplace(flow, SourceState{cfg_}).first;
  }
  return it->second;
}

bool RicaProtocol::relay_entry_live(const RelayState& r) const {
  // Validity gates forwarding; the idle expiry (§II-C "the original route at
  // last automatically expires") only garbage-collects abandoned entries so
  // their stale state cannot hijack later traffic.  An entry that is still
  // receiving data is never expired mid-stream: a 10-deep queue on a 50 kbps
  // class-D link legitimately spaces packets ~1 s apart.
  return r.valid;
}

sim::Time RicaProtocol::forward_jitter(channel::CsiClass cls) {
  const double excess = channel::csi_hop_distance(cls) - 1.0;
  const double dither = host().protocol_rng().uniform(0.0, 0.5e6);  // <=0.5ms
  return sim::Time{static_cast<std::int64_t>(
             excess * static_cast<double>(cfg_.csi_jitter.nanos()))} +
         sim::Time{static_cast<std::int64_t>(dither)};
}

std::optional<net::NodeId> RicaProtocol::source_next_hop(
    net::NodeId dst) const {
  const auto it = sources_.find(net::flow_key(host().id(), dst));
  if (it == sources_.end() || !it->second.valid) return std::nullopt;
  return it->second.next_hop;
}

std::optional<net::NodeId> RicaProtocol::relay_downstream(
    net::FlowKey flow) const {
  const auto it = relays_.find(flow);
  if (it == relays_.end() || !relay_entry_live(it->second)) {
    return std::nullopt;
  }
  return it->second.downstream;
}

std::optional<net::NodeId> RicaProtocol::check_candidate(
    net::FlowKey flow) const {
  const auto it = relays_.find(flow);
  if (it == relays_.end() || !it->second.check_next_valid) return std::nullopt;
  return it->second.check_next;
}

// ---------------------------------------------------------------------------
// Data plane
// ---------------------------------------------------------------------------

void RicaProtocol::handle_data(net::DataPacket pkt, net::NodeId from) {
  const net::FlowKey flow = pkt.key();

  if (pkt.dst == host().id()) {
    auto& d = dests_[flow];
    d.last_data = now();
    d.route_hops = std::max<std::uint16_t>(pkt.hops, 1);
    if (cfg_.adaptive_checks) {
      // Route volatility signal: a different last hop or a clearly
      // different per-hop throughput means the route moved.
      const double tput =
          pkt.hops > 0 ? pkt.tput_sum_bps / pkt.hops : 0.0;
      if (d.last_hop_seen != net::kBroadcastId &&
          (d.last_hop_seen != from ||
           std::abs(tput - d.last_route_tput) > 25'000.0)) {
        d.route_changed_since_check = true;
      }
      d.last_hop_seen = from;
      d.last_route_tput = tput;
    }
    host().deliver_local(pkt);
    arm_checks(flow);
    return;
  }

  if (from == host().id()) {  // we are the source
    source_send(source_state(flow), flow, std::move(pkt));
    return;
  }

  // Relay.
  auto& r = relays_[flow];
  if (pkt.route_update) {
    // §II-C: a packet on a switched route re-anchors the relay to the
    // downstream it first heard the latest CSI check from.  Never re-anchor
    // back toward the terminal the packet just came from; without a usable
    // check candidate, fall through to the existing entry.
    if (r.check_next_valid && r.check_next != from) {
      r.upstream = from;
      r.downstream = r.check_next;
      r.valid = true;
      r.last_used = now();
      host().forward_data(std::move(pkt), r.downstream);
      return;
    }
  }

  if (!relay_entry_live(r) || r.downstream == from) {
    // No live entry.  §II-C: a terminal remembers the downstream it first
    // received a checking packet from and "in the future it can use the
    // corresponding PN code to send packets to this downstream terminal" —
    // salvage the packet along the check candidate when one exists.
    if (r.check_next_valid && r.check_next != from) {
      r.upstream = from;
      r.downstream = r.check_next;
      r.valid = true;
      r.last_used = now();
      host().count("rica.salvage");
      host().forward_data(std::move(pkt), r.downstream);
      return;
    }
    host().count(r.downstream == from ? "rica.drop_bounce"
                                      : "rica.drop_no_entry");
    host().drop_data(pkt, stats::DropReason::kNoRoute);
    return;
  }
  r.upstream = from;
  r.last_used = now();
  host().forward_data(std::move(pkt), r.downstream);
}

void RicaProtocol::source_send(SourceState& s, net::FlowKey flow,
                               net::DataPacket pkt) {
  if (s.valid) {
    pkt.route_update = pkt.route_update || now() <= s.update_flag_until;
    host().forward_data(std::move(pkt), s.next_hop);
    return;
  }
  if (!s.pending.push(std::move(pkt), now())) {
    // Buffer full while waiting for a route.
    host().count("rica.pending_overflow");
  }
  if (!s.discovering) begin_discovery(flow);
}

// ---------------------------------------------------------------------------
// Discovery (§II-B)
// ---------------------------------------------------------------------------

void RicaProtocol::begin_discovery(net::FlowKey flow) {
  auto& s = source_state(flow);
  s.discovering = true;
  s.attempts = 1;
  host().count("rica.discovery");
  host().trace_route("discovery_start", net::flow_src(flow),
                     net::flow_dst(flow));
  send_rreq(flow);
}

void RicaProtocol::send_rreq(net::FlowKey flow) {
  auto& s = source_state(flow);
  const std::uint32_t bid = next_bid_++;
  s.bid = bid;
  history_.seen_or_insert(host().id(), bid, kTagRreq);
  host().send_control(net::make_control(
      net::kBroadcastId,
      net::RreqMsg{net::flow_src(flow), net::flow_dst(flow), bid, 0.0, 0}));

  s.discovery_timer.arm_after(
      host().simulator(), cfg_.discovery_timeout, [this, flow, bid] {
    auto& st = source_state(flow);
    if (!st.discovering || st.bid != bid) return;
    st.pending.purge_expired(now(), [this](const net::DataPacket& p) {
      host().drop_data(p, stats::DropReason::kExpired);
    });
    if (st.pending.empty()) {
      st.discovering = false;
      return;
    }
    if (st.attempts >= cfg_.max_discovery_attempts) {
      for (const auto& p : st.pending.take_fresh(now(), nullptr)) {
        host().drop_data(p, stats::DropReason::kNoRoute);
      }
      st.discovering = false;
      host().trace_route("discovery_failed", net::flow_src(flow),
                         net::flow_dst(flow), bid);
      return;
    }
    ++st.attempts;
    host().trace_route("discovery_retry", net::flow_src(flow),
                       net::flow_dst(flow), bid);
    send_rreq(flow);
  });
}

void RicaProtocol::on_rreq(const net::RreqMsg& msg, net::NodeId from) {
  if (msg.src == host().id()) return;
  const auto cls = host().link_csi(from);
  if (!cls) return;  // the sender already left our range

  const double csi_hops = msg.csi_hops + channel::csi_hop_distance(*cls);
  const auto topo = static_cast<std::uint16_t>(msg.topo_hops + 1);

  if (msg.dst == host().id()) {
    // §II-B: "the destination terminal receives several RREQ's with the
    // same source from all possible routes ... and chooses a route with
    // the minimal distance value."  Every copy (one per last-hop
    // neighbour) is a candidate; the duplicate-suppression rule only
    // governs relay forwarding.
    const net::FlowKey flow = net::flow_key(msg.src, msg.dst);
    auto& d = dests_[flow];
    if (!d.window_open || d.window_bid != msg.bid) {
      d.window_open = true;
      d.window_bid = msg.bid;
      d.window_candidates.clear();
      host().simulator().after(cfg_.dest_wait,
                               [this, flow] { close_dest_window(flow); });
    }
    d.window_candidates.push_back(Candidate{from, csi_hops, topo});
    return;
  }

  if (history_.seen_or_insert(msg.src, msg.bid, kTagRreq)) return;
  rreq_upstream_[bid_key(msg.src, msg.bid)] = from;

  if (topo >= cfg_.rreq_ttl) return;
  net::RreqMsg fwd = msg;
  fwd.csi_hops = csi_hops;
  fwd.topo_hops = topo;
  host().simulator().after(forward_jitter(*cls), [this, fwd] {
    host().send_control(net::make_control(net::kBroadcastId, fwd));
  });
}

void RicaProtocol::close_dest_window(net::FlowKey flow) {
  auto& d = dests_[flow];
  if (!d.window_open) return;
  d.window_open = false;
  if (d.window_candidates.empty()) return;
  // §II-B: "it chooses a route with the minimal distance value".
  const auto best = std::min_element(
      d.window_candidates.begin(), d.window_candidates.end(),
      [](const Candidate& a, const Candidate& b) {
        return a.csi_hops < b.csi_hops;
      });
  d.route_hops = std::max<std::uint16_t>(best->topo_hops, 1);
  host().send_control(net::make_control(
      best->first_hop,
      net::RrepMsg{net::flow_src(flow), net::flow_dst(flow), d.window_bid,
                   best->csi_hops, 0}));
  d.window_candidates.clear();
  arm_checks(flow);
}

void RicaProtocol::on_rrep(const net::RrepMsg& msg, net::NodeId from) {
  const net::FlowKey flow = net::flow_key(msg.src, msg.dst);

  if (msg.src == host().id()) {
    auto& s = source_state(flow);
    s.valid = true;
    s.next_hop = from;
    s.route_csi_cost = msg.csi_hops;
    s.discovering = false;
    s.discovery_timer.cancel();
    host().trace_route("established", msg.src, msg.dst, msg.bid,
                       msg.csi_hops);
    // The first packets announce the (new) route to the relays.
    s.update_flag_until = now() + cfg_.update_flag_window;
    flush_pending(flow, s);
    return;
  }

  auto& r = relays_[flow];
  r.valid = true;
  r.downstream = from;
  r.hops_to_dst = static_cast<std::uint16_t>(msg.topo_hops + 1);
  r.last_used = now();

  const auto up = rreq_upstream_.find(bid_key(msg.src, msg.bid));
  if (up == rreq_upstream_.end()) return;  // reverse path lost
  r.upstream = up->second;
  net::RrepMsg fwd = msg;
  fwd.topo_hops = static_cast<std::uint16_t>(msg.topo_hops + 1);
  host().send_control(net::make_control(up->second, fwd));
}

// ---------------------------------------------------------------------------
// Receiver-initiated CSI checking (§II-C)
// ---------------------------------------------------------------------------

void RicaProtocol::arm_checks(net::FlowKey flow) {
  auto& d = dests_[flow];
  if (d.check_timer.armed()) return;
  d.last_data = now();
  if (d.check_period == sim::Time::zero()) d.check_period = cfg_.check_period;
  d.check_timer.arm_after(host().simulator(), d.check_period,
                          [this, flow] { broadcast_check(flow); });
}

void RicaProtocol::broadcast_check(net::FlowKey flow) {
  auto& d = dests_[flow];
  if (now() - d.last_data > cfg_.flow_active_timeout) {
    return;  // flow went idle; the timer stays disarmed (§II-C)
  }
  const std::uint32_t bid = d.next_check_bid++;
  history_.seen_or_insert(net::flow_dst(flow), bid, kTagCheck);
  net::CsiCheckMsg msg;
  msg.src = net::flow_src(flow);
  msg.dst = net::flow_dst(flow);
  msg.bid = bid;
  msg.csi_hops = 0.0;
  msg.topo_hops = 0;
  msg.ttl = static_cast<std::int16_t>(d.route_hops + cfg_.check_ttl_slack);
  msg.received_from = host().id();
  host().send_control(net::make_control(net::kBroadcastId, msg));
  host().count("rica.check_sent");

  if (cfg_.adaptive_checks) {
    // Volatile channel -> check faster; quiet channel -> back off.
    const auto nanos = static_cast<double>(d.check_period.nanos());
    d.check_period = d.route_changed_since_check
                         ? std::max(cfg_.check_period_min,
                                    sim::Time{static_cast<std::int64_t>(
                                        nanos / 2.0)})
                         : std::min(cfg_.check_period_max,
                                    sim::Time{static_cast<std::int64_t>(
                                        nanos * 1.25)});
    d.route_changed_since_check = false;
  }
  d.check_timer.arm_after(host().simulator(), d.check_period,
                          [this, flow] { broadcast_check(flow); });
}

void RicaProtocol::on_check(const net::CsiCheckMsg& msg, net::NodeId from) {
  const net::FlowKey flow = net::flow_key(msg.src, msg.dst);

  if (msg.dst == host().id()) return;  // our own flood echoed back

  // Overhearing (§II-C): `from` named us as the terminal it received the
  // check from, so `from` may become our upstream on the refreshed route;
  // arm the PN-code detection window.  This applies even to duplicate
  // copies that are otherwise discarded.
  if (msg.received_from == host().id() && msg.src != host().id()) {
    auto& r = relays_[flow];
    r.cand_upstream = from;
    r.cand_upstream_expiry = now() + cfg_.detect_window;
  }

  const auto cls = host().link_csi(from);
  if (!cls) return;
  const double csi_hops = msg.csi_hops + channel::csi_hop_distance(*cls);
  const auto topo = static_cast<std::uint16_t>(msg.topo_hops + 1);

  if (msg.src == host().id()) {
    // We are the source: §II-C "the source terminal receives several
    // checking packets from all possible routes, then it can choose the
    // shortest one as the new route."  Collect every copy; relays are the
    // ones that forward only once.
    auto& s = source_state(flow);
    s.last_check_seen = now();
    if (!s.window_open || s.window_bid != msg.bid) {
      s.window_open = true;
      s.window_bid = msg.bid;
      s.window_candidates.clear();
      host().simulator().after(cfg_.source_wait,
                               [this, flow] { close_source_window(flow); });
    }
    s.window_candidates.push_back(Candidate{from, csi_hops, topo});
    return;
  }

  if (history_.seen_or_insert(msg.dst, msg.bid, kTagCheck)) return;

  // Relay: remember the downstream we first heard this check from.
  auto& r = relays_[flow];
  r.check_bid = msg.bid;
  r.check_next = from;
  r.check_next_valid = true;

  if (msg.ttl <= 1) return;
  net::CsiCheckMsg fwd = msg;
  fwd.csi_hops = csi_hops;
  fwd.topo_hops = topo;
  fwd.ttl = static_cast<std::int16_t>(msg.ttl - 1);
  fwd.received_from = from;
  host().simulator().after(forward_jitter(*cls), [this, fwd] {
    host().send_control(net::make_control(net::kBroadcastId, fwd));
  });
}

void RicaProtocol::close_source_window(net::FlowKey flow) {
  auto& s = source_state(flow);
  if (!s.window_open) return;
  s.window_open = false;
  if (s.window_candidates.empty()) return;
  const auto best = std::min_element(
      s.window_candidates.begin(), s.window_candidates.end(),
      [](const Candidate& a, const Candidate& b) {
        return a.csi_hops < b.csi_hops;
      });
  const Candidate chosen = *best;
  // Refresh our knowledge of the current route's cost when its check copy
  // made it through this round (copies can be lost to collisions).
  for (const auto& c : s.window_candidates) {
    if (s.valid && c.first_hop == s.next_hop) {
      s.route_csi_cost = c.csi_hops;
    }
  }
  // Hysteresis: abandon a working route only for a meaningfully shorter
  // one; otherwise equal-cost candidates arriving in CSMA-jitter order
  // would flip the route every round.
  const bool keep =
      s.valid && chosen.csi_hops > s.route_csi_cost - cfg_.switch_margin;
  s.last_candidates = std::move(s.window_candidates);
  s.window_candidates.clear();
  s.last_window_close = now();

  if (!keep && (!s.valid || chosen.first_hop != s.next_hop)) {
    switch_route(flow, s, chosen);
  }
  if (s.discovering) {
    s.discovering = false;  // the checks repaired the route (§II-D case 1)
    s.discovery_timer.cancel();
  }
  flush_pending(flow, s);
}

void RicaProtocol::switch_route(net::FlowKey flow, SourceState& s,
                                const Candidate& chosen) {
  s.valid = true;
  s.next_hop = chosen.first_hop;
  s.route_csi_cost = chosen.csi_hops;
  s.update_flag_until = now() + cfg_.update_flag_window;
  host().count("rica.route_switch");
  host().trace_route("repaired", net::flow_src(flow), net::flow_dst(flow), 0,
                     chosen.csi_hops);
  host().send_control(net::make_control(
      chosen.first_hop,
      net::RupdMsg{net::flow_src(flow), net::flow_dst(flow)}));
}

bool RicaProtocol::try_candidate_fallback(net::FlowKey flow, SourceState& s,
                                          net::NodeId exclude) {
  if (now() - s.last_window_close > cfg_.check_period + cfg_.source_wait) {
    return false;  // stale: no recent checking round
  }
  const Candidate* best = nullptr;
  for (const auto& c : s.last_candidates) {
    if (c.first_hop == exclude) continue;
    if (!best || c.csi_hops < best->csi_hops) best = &c;
  }
  if (!best) return false;
  switch_route(flow, s, *best);
  host().count("rica.fallback_switch");
  return true;
}

void RicaProtocol::flush_pending(net::FlowKey flow, SourceState& s) {
  if (!s.valid) return;
  auto fresh = s.pending.take_fresh(now(), [this](const net::DataPacket& p) {
    host().drop_data(p, stats::DropReason::kExpired);
  });
  for (auto& p : fresh) source_send(s, flow, std::move(p));
}

// ---------------------------------------------------------------------------
// Route update / maintenance (§II-C, §II-D)
// ---------------------------------------------------------------------------

void RicaProtocol::on_rupd(const net::RupdMsg& msg, net::NodeId from) {
  const net::FlowKey flow = net::flow_key(msg.src, msg.dst);
  auto& r = relays_[flow];
  r.upstream = from;
  if (r.check_next_valid && r.check_next != from) {
    r.downstream = r.check_next;
    r.valid = true;
  }
  r.last_used = now();
}

void RicaProtocol::on_reer(const net::ReerMsg& msg, net::NodeId from) {
  const net::FlowKey flow = net::flow_key(msg.src, msg.dst);

  if (msg.src == host().id()) {
    auto& s = source_state(flow);
    // §II-D: only meaningful if it comes from our current downstream.
    if (!s.valid || s.next_hop != from) return;
    s.valid = false;
    if (try_candidate_fallback(flow, s, from)) return;
    if (!s.discovering) begin_discovery(flow);
    return;
  }

  auto& r = relays_[flow];
  // §II-D: ignore REERs from terminals that are not our downstream — they
  // report breaks of abandoned routes.
  if (!r.valid || r.downstream != from) return;
  r.valid = false;
  if (r.upstream != host().id()) {
    host().send_control(net::make_control(
        r.upstream, net::ReerMsg{msg.src, msg.dst, host().id()}));
  }
}

double RicaProtocol::table_load() const {
  double lf = history_.load_factor();
  lf = std::max(lf, sources_.load_factor());
  lf = std::max(lf, relays_.load_factor());
  lf = std::max(lf, dests_.load_factor());
  lf = std::max(lf, rreq_upstream_.load_factor());
  return lf;
}

void RicaProtocol::on_link_break(net::NodeId neighbor,
                                 std::vector<net::DataPacket> stranded) {
  host().count("rica.link_break");
  host().trace_route("link_break", host().id(), neighbor);
  for (const auto& p : stranded) {
    host().drop_data(p, stats::DropReason::kLinkBreak);
  }

  // Source routes through the dead neighbour: try the freshest CSI-check
  // candidate, otherwise rediscover.
  for (auto& [flow, s] : sources_) {
    if (!s.valid || s.next_hop != neighbor) continue;
    s.valid = false;
    if (try_candidate_fallback(flow, s, neighbor)) continue;
    if (!s.discovering) begin_discovery(flow);
  }

  // Relay routes through the dead neighbour: report upstream (§II-D).
  for (auto& [flow, r] : relays_) {
    if (!r.valid || r.downstream != neighbor) continue;
    r.valid = false;
    if (r.upstream != host().id()) {
      host().send_control(net::make_control(
          r.upstream,
          net::ReerMsg{net::flow_src(flow), net::flow_dst(flow),
                       host().id()}));
    }
  }
}

void RicaProtocol::on_control(const net::ControlPacket& pkt,
                              net::NodeId from) {
  if (const auto* rreq = std::get_if<net::RreqMsg>(&pkt.payload)) {
    on_rreq(*rreq, from);
  } else if (const auto* rrep = std::get_if<net::RrepMsg>(&pkt.payload)) {
    on_rrep(*rrep, from);
  } else if (const auto* chk = std::get_if<net::CsiCheckMsg>(&pkt.payload)) {
    on_check(*chk, from);
  } else if (const auto* rupd = std::get_if<net::RupdMsg>(&pkt.payload)) {
    on_rupd(*rupd, from);
  } else if (const auto* reer = std::get_if<net::ReerMsg>(&pkt.payload)) {
    on_reer(*reer, from);
  }
}

}  // namespace rica::core
