#include "mac/link_transmitter.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <string>
#include <utility>

#include "net/wire.hpp"
#include "obs/perfetto.hpp"

namespace rica::mac {

LinkTransmitter::LinkTransmitter(net::NodeId self, sim::Simulator& sim,
                                 channel::ChannelModel& channel,
                                 stats::MetricsCollector& metrics,
                                 const LinkConfig& cfg)
    : self_(self), sim_(sim), channel_(channel), metrics_(metrics), cfg_(cfg) {}

LinkTransmitter::Link& LinkTransmitter::link(net::NodeId neighbor) {
  const auto [it, inserted] = links_.try_emplace(neighbor);
  if (inserted) it->second.q.bind(data_pool_);
  return it->second;
}

std::size_t LinkTransmitter::pool_high_water() const {
  return data_pool_.high_water();
}

void LinkTransmitter::trace_pkt(std::string_view stage,
                                const net::DataPacket& pkt, net::NodeId peer,
                                std::string_view detail) {
  auto& tracer = metrics_.tracer();
  if (!tracer.packet_on()) return;
  tracer.packet(obs::PacketTrace{stage, sim_.now(), pkt.flow, pkt.seq, self_,
                                 pkt.src, pkt.dst,
                                 static_cast<std::int64_t>(peer), pkt.hops,
                                 pkt.size_bytes, detail});
}

std::uint32_t LinkTransmitter::perfetto_tid(net::NodeId neighbor) {
  auto* writer = metrics_.tracer().perfetto();
  assert(writer != nullptr);
  char label[32];
  std::snprintf(label, sizeof(label), "link %u->%u", self_, neighbor);
  return writer->track(obs::PerfettoWriter::kDataPid, label);
}

void LinkTransmitter::enqueue(net::DataPacket pkt, net::NodeId next_hop) {
  assert(next_hop != self_ && "cannot enqueue to self");
  if (pkt.hops >= cfg_.hop_cap) {
    if (on_drop_) on_drop_(pkt, stats::DropReason::kLoopCap);
    return;
  }
  auto& link = this->link(next_hop);
  if (link.q.size() >= cfg_.buffer_cap) {
    if (on_drop_) on_drop_(pkt, stats::DropReason::kBufferOverflow);
    return;
  }
  trace_pkt("enqueued", pkt, next_hop);
  link.q.emplace_back(Queued{std::move(pkt), sim_.now()});
  metrics_.observe_queue_depth(link.q.size());
  pump(next_hop);
}

std::vector<net::DataPacket> LinkTransmitter::drain(net::NodeId neighbor) {
  std::vector<net::DataPacket> out;
  const auto it = links_.find(neighbor);
  if (it == links_.end()) return out;
  auto& link = it->second;
  // The head packet of a busy link is on the air; it stays.
  const std::size_t keep = link.busy && !link.q.empty() ? 1 : 0;
  std::size_t pos = 0;
  for (auto& q : link.q) {
    if (pos++ >= keep) out.push_back(std::move(q.pkt));
  }
  link.q.truncate(keep);
  return out;
}

std::size_t LinkTransmitter::buffered() const {
  std::size_t total = 0;
  for (const auto& [_, link] : links_) total += link.q.size();
  return total;
}

std::size_t LinkTransmitter::queue_length(net::NodeId neighbor) const {
  const auto it = links_.find(neighbor);
  return it == links_.end() ? 0 : it->second.q.size();
}

void LinkTransmitter::pump(net::NodeId neighbor) {
  auto& link = this->link(neighbor);
  if (link.busy) return;
  // Enforce the 3 s residency bound lazily at service time.
  while (!link.q.empty() &&
         sim_.now() - link.q.front().enqueued > cfg_.buffer_residency) {
    if (on_drop_) on_drop_(link.q.front().pkt, stats::DropReason::kExpired);
    link.q.pop_front();
  }
  if (link.q.empty()) return;
  link.busy = true;
  tx_attempt(neighbor);
}

void LinkTransmitter::tx_attempt(net::NodeId neighbor) {
  auto& link = this->link(neighbor);
  assert(link.busy && !link.q.empty());

  const auto sample = channel_.sample(self_, neighbor, sim_.now());
  if (!sample) {
    fail(neighbor, "no_channel");
    return;
  }
  const double rate = channel::throughput_bps(sample->csi);
  const auto& pkt = link.q.front().pkt;
  // A frame on the air is the encoded header plus the payload — charging
  // the bare payload (as this path once did) undercounts data airtime
  // relative to the byte-exact control accounting.
  const std::size_t frame_bytes = net::wire::kDataHeaderBytes + pkt.size_bytes;
  const sim::Time data_time = sim::seconds_f(frame_bytes * 8.0 / rate);
  const sim::Time ack_time = sim::seconds_f(cfg_.ack_bytes * 8.0 / rate);
  const auto csi = sample->csi;
  data_header_bits_ += net::wire::kDataHeaderBytes * 8u;
  // Every attempt's airtime, including attempts the receiver walks away
  // from mid-packet — wasted airtime belongs in the distribution.
  metrics_.observe_airtime(data_time);

  trace_pkt("tx_start", pkt, neighbor);
  if (auto* writer = metrics_.tracer().perfetto()) {
    char name[32];
    std::snprintf(name, sizeof(name), "flow%u#%u", pkt.flow, pkt.seq);
    writer->slice(obs::PerfettoWriter::kDataPid, perfetto_tid(neighbor),
                  "data", name, sim_.now(), data_time);
  }

  link.timer.arm_after(sim_, data_time, [this, neighbor, csi, ack_time] {
    auto& lnk = this->link(neighbor);
    if (!lnk.busy || lnk.q.empty()) return;  // link was torn down meanwhile
    if (!channel_.in_range(self_, neighbor, sim_.now())) {
      // Receiver moved away mid-packet: no ACK will come.
      fail(neighbor, "receiver_moved");
      return;
    }
    // Reception succeeded; the receiver acknowledges on PN(B,A).  ACK bits
    // count toward routing overhead (§III-A).
    metrics_.on_ack_tx(cfg_.ack_bytes * 8u);
    net::DataPacket delivered = std::move(lnk.q.front().pkt);
    lnk.q.pop_front();
    lnk.retries = 0;
    delivered.hops = static_cast<std::uint16_t>(delivered.hops + 1);
    delivered.tput_sum_bps += channel::throughput_bps(csi);
    trace_pkt("tx_end", delivered, neighbor);
    if (deliver_) {
      // The handoff executes as the receiver's shard (receive_data may
      // forward, reply, or re-time — all of it belongs in neighbor's
      // wheel); the ACK rearm below runs back in the sender's shard.
      sim::ShardScope scope(sim_, sim_.shard_of_node(neighbor));
      deliver_(std::move(delivered), neighbor);
    }
    // The sender frees the code once the ACK lands (rearming from inside
    // the timer's own callback: the airtime event is already dead).
    this->link(neighbor).timer.arm_after(sim_, ack_time, [this, neighbor] {
      this->link(neighbor).busy = false;
      pump(neighbor);
    });
  });
}

void LinkTransmitter::fail(net::NodeId neighbor, std::string_view cause) {
  auto& link = this->link(neighbor);
  if (!link.q.empty()) trace_pkt("tx_fail", link.q.front().pkt, neighbor, cause);
  ++link.retries;
  if (link.retries > cfg_.max_retries) {
    declare_break(neighbor);
    return;
  }
  link.timer.arm_after(sim_, cfg_.retry_backoff, [this, neighbor] {
    auto& lnk = this->link(neighbor);
    if (!lnk.busy) return;
    if (lnk.q.empty()) {
      lnk.busy = false;
      return;
    }
    tx_attempt(neighbor);
  });
}

void LinkTransmitter::declare_break(net::NodeId neighbor) {
  auto& link = this->link(neighbor);
  link.timer.cancel();  // O(1): whatever phase was in flight dies with the link
  std::vector<net::DataPacket> stranded;
  stranded.reserve(link.q.size());
  for (auto& q : link.q) stranded.push_back(std::move(q.pkt));
  link.q.clear();
  link.busy = false;
  link.retries = 0;
  if (on_break_) on_break_(neighbor, std::move(stranded));
}

}  // namespace rica::mac
