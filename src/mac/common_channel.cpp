#include "mac/common_channel.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "net/wire.hpp"
#include "obs/perfetto.hpp"

namespace rica::mac {

namespace {
/// Intervals older than this are irrelevant to any in-flight reception.
constexpr sim::Time kHeardHorizon = sim::milliseconds(50);
}  // namespace

CommonChannelMac::CommonChannelMac(sim::Simulator& sim,
                                   channel::ChannelModel& channel,
                                   const sim::RngManager& rng,
                                   stats::MetricsCollector& metrics,
                                   const CommonChannelConfig& cfg)
    : sim_(sim), channel_(channel), metrics_(metrics), cfg_(cfg) {
  nodes_.resize(channel.num_nodes());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].rng = rng.stream("mac", i);
    nodes_[i].queue.bind(ctrl_pool_);
  }
}

std::size_t CommonChannelMac::pool_high_water() const {
  return ctrl_pool_.high_water();
}

void CommonChannelMac::trace_control(std::string_view stage, net::NodeId node,
                                     const net::ControlPacket& pkt) {
  auto& tracer = metrics_.tracer();
  if (!tracer.route_on()) return;
  const auto info = obs::control_info(pkt.payload);
  // size_bytes is the frame's exact encoded size (asserted in send()), so
  // control_tx records carry byte-exact on-air cost — trace_query.py joins
  // them on (src, dst, bid) to attribute control bytes per discovery.
  tracer.route(obs::RouteTrace{stage, sim_.now(), node, info.src, info.dst,
                               info.bid, 0.0, {}, info.name,
                               pkt.size_bytes});
}

void CommonChannelMac::register_node(net::NodeId id, RxHandler handler) {
  assert(id < nodes_.size());
  nodes_[id].handler = std::move(handler);
}

sim::Time CommonChannelMac::airtime(std::uint16_t size_bytes) const {
  return sim::seconds_f(size_bytes * 8.0 / cfg_.rate_bps);
}

void CommonChannelMac::send(net::NodeId from, net::ControlPacket pkt) {
  assert(from < nodes_.size());
  // Airtime is charged from size_bytes, so it must be the frame's exact
  // encoded size (make_control stamps it; anything smaller than the codec
  // floor would also break the sharded kernel's lookahead soundness).
  assert(pkt.size_bytes >= net::wire::kMinControlBytes &&
         pkt.size_bytes == net::wire::encoded_control_size(pkt.payload) &&
         "control frames must carry their exact encoded size");
  auto& st = nodes_[from];
  if (st.queue.size() >= cfg_.queue_cap) {
    metrics_.inc("mac.ctrl_queue_drop");
    return;  // drop-tail: the channel is saturated
  }
  st.queue.emplace_back(QueuedControl{std::move(pkt), 0});
  if (!st.transmitting && !st.attempt_timer.armed()) {
    schedule_attempt(from, sim::Time::zero());
  }
}

void CommonChannelMac::schedule_attempt(net::NodeId id, sim::Time delay) {
  nodes_[id].attempt_timer.arm_after(sim_, delay, [this, id] { attempt(id); });
}

sim::Time CommonChannelMac::random_backoff(NodeState& st) {
  const double lo = static_cast<double>(cfg_.backoff_min.nanos());
  const double hi = static_cast<double>(cfg_.backoff_max.nanos());
  return sim::Time{static_cast<std::int64_t>(st.rng.uniform(lo, hi))};
}

void CommonChannelMac::prune_heard(NodeState& st, sim::Time now) const {
  const sim::Time horizon = now - kHeardHorizon;
  std::erase_if(st.heard,
                [horizon](const Interval& iv) { return iv.end < horizon; });
}

bool CommonChannelMac::medium_busy(const NodeState& st, sim::Time now) const {
  if (st.transmitting) return true;
  return std::any_of(st.heard.begin(), st.heard.end(),
                     [now](const Interval& iv) {
                       return iv.start <= now && now < iv.end;
                     });
}

void CommonChannelMac::attempt(net::NodeId id) {
  auto& st = nodes_[id];
  if (st.transmitting) return;  // a tx started meanwhile; re-pumped at its end
  if (st.queue.empty()) return;
  prune_heard(st, sim_.now());
  if (medium_busy(st, sim_.now())) {
    schedule_attempt(id, random_backoff(st));
    return;
  }
  start_tx(id);
}

void CommonChannelMac::start_tx(net::NodeId id) {
  auto& st = nodes_[id];
  assert(!st.queue.empty());
  st.in_flight = std::move(st.queue.front());
  st.queue.pop_front();
  st.transmitting = true;
  st.tx_start = sim_.now();
  st.tx_end = st.tx_start + airtime(st.in_flight.pkt.size_bytes);
  st.tx_id = next_tx_id_++;

  // Coverage is evaluated at transmission start; node motion within a few
  // milliseconds of airtime is negligible at the paper's speeds.  This is
  // the MAC's hottest channel query (one per transmission); it is served by
  // the channel's spatial neighbor index rather than an O(N) scan, into a
  // receiver buffer reused across this node's transmissions.
  channel_.neighbors_of(id, st.tx_start, st.tx_receivers);
  for (const auto r : st.tx_receivers) {
    nodes_[r].heard.push_back(Interval{st.tx_start, st.tx_end, st.tx_id});
  }
  // Record our own airtime too: it is what makes a half-duplex node deaf to
  // transmissions that overlap its own.
  st.heard.push_back(Interval{st.tx_start, st.tx_end, st.tx_id});
  metrics_.on_control_tx(st.in_flight.pkt.size_bytes * 8u);
  trace_control("control_tx", id, st.in_flight.pkt);
  if (auto* writer = metrics_.tracer().perfetto()) {
    // Half duplex: one transmission per node at a time, so one track per
    // terminal holds non-overlapping slices.
    const auto info = obs::control_info(st.in_flight.pkt.payload);
    writer->slice(obs::PerfettoWriter::kControlPid, id, "control", info.name,
                  st.tx_start, st.tx_end - st.tx_start);
  }

  // All per-transmission state lives in NodeState (half duplex guarantees
  // one in-flight tx per node), so the event captures two words — well
  // under the engine's inline buffer, keeping steady-state scheduling free
  // of per-event heap allocation.
  auto fire = [this, id] { end_of_tx(id); };
  static_assert(sizeof(fire) <= sim::EventEngine::kInlineBytes);
  sim_.at(st.tx_end, fire);
}

void CommonChannelMac::end_of_tx(net::NodeId id) {
  auto& sender = nodes_[id];
  sender.transmitting = false;
  const net::ControlPacket& pkt = sender.in_flight.pkt;
  const sim::Time start = sender.tx_start;
  const sim::Time end = sender.tx_end;
  const std::uint64_t tx_id = sender.tx_id;

  bool unicast_ok = false;
  for (const auto r : sender.tx_receivers) {
    if (pkt.to != net::kBroadcastId && pkt.to != r) continue;
    auto& rst = nodes_[r];
    // Half duplex: a node that transmitted during our airtime missed us.
    // Collision: any other transmission covering r overlapping [start,end].
    const bool collided =
        std::any_of(rst.heard.begin(), rst.heard.end(),
                    [&](const Interval& iv) {
                      return iv.tx_id != tx_id && iv.start < end &&
                             start < iv.end;
                    }) ||
        rst.transmitting;
    if (collided) {
      metrics_.on_control_collision();
      trace_control("control_lost", r, pkt);
      continue;
    }
    unicast_ok = true;
    if (rst.handler) {
      // The reception executes as the receiver's shard: protocol reactions
      // (timers, forwards, replies) land in r's wheel, and a boundary hop
      // is counted as zero-latency cross-shard channel traffic.
      sim::ShardScope scope(sim_, sim_.shard_of_node(r));
      rst.handler(pkt, id);
    }
  }

  // CSMA/CA acknowledges unicast frames; a missing ACK triggers a
  // retransmission after a fresh backoff.  Broadcasts are fire-and-forget.
  if (pkt.to != net::kBroadcastId && !unicast_ok) {
    ++sender.in_flight.attempts;
    if (sender.in_flight.attempts < cfg_.unicast_attempts) {
      sender.queue.push_front(std::move(sender.in_flight));
    } else {
      metrics_.inc("mac.unicast_fail");
    }
  }

  // Pump the sender's queue: contend again after a fresh backoff.
  if (!sender.queue.empty() && !sender.attempt_timer.armed()) {
    schedule_attempt(id, random_backoff(sender));
  }
}

}  // namespace rica::mac
