// The shared 250 kbps control channel with unslotted CSMA/CA (paper §III-A).
//
// All routing packets travel on one common channel; data packets travel on
// per-link CDMA codes (see link_transmitter.hpp).  The paper assumes the
// common channel is "robust" against fading, so receptions here fail only
// due to collisions, which this MAC models explicitly:
//   * carrier sense: a node defers (random backoff) while any transmission
//     whose sender is within range is on the air;
//   * hidden terminals: a reception at r fails when a second transmission
//     covering r overlaps the packet in time (no capture effect);
//   * half duplex: a node transmitting cannot simultaneously receive;
//   * bounded per-node control queue: drop-tail under overload — this is the
//     mechanism behind the paper's link-state congestion collapse.
//
// Each transmission is charged size*8 bits of routing overhead exactly once
// (per §III-A: "each time the common channel is used ... counted as one
// transmission"), regardless of how many neighbours hear it.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "channel/channel_model.hpp"
#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "sim/timer.hpp"
#include "stats/metrics.hpp"
#include "util/pool.hpp"

namespace rica::mac {

/// Tunables of the common channel MAC.
struct CommonChannelConfig {
  double rate_bps = 250'000.0;            ///< paper: 250 kbps common channel
  sim::Time backoff_min = sim::microseconds(500);
  sim::Time backoff_max = sim::milliseconds(4);
  /// Per-node control queue bound.  Deliberately deep (plain FIFO, no AQM —
  /// faithful to 2002-era MACs): under flooding overload packets are not
  /// so much lost as delivered *late*, which is what lets stale link-state
  /// updates poison remote views (§III-B).
  std::size_t queue_cap = 500;
  int unicast_attempts = 3;               ///< CSMA/CA ACK-retransmit emulation
};

/// Network-wide CSMA/CA MAC for control traffic.
class CommonChannelMac {
 public:
  /// Reception callback: (packet, transmitter id).
  using RxHandler = std::function<void(const net::ControlPacket&, net::NodeId)>;

  CommonChannelMac(sim::Simulator& sim, channel::ChannelModel& channel,
                   const sim::RngManager& rng, stats::MetricsCollector& metrics,
                   const CommonChannelConfig& cfg);

  /// Registers a node's receive handler.  Must be called once per node
  /// before any send().
  void register_node(net::NodeId id, RxHandler handler);

  /// Queues a control packet for CSMA transmission from `from`.  Broadcasts
  /// (pkt.to == kBroadcastId) reach every in-range node; unicasts reach only
  /// pkt.to.  Either way collisions can destroy individual receptions.
  void send(net::NodeId from, net::ControlPacket pkt);

  /// Transmission airtime of a packet at the common-channel rate.
  [[nodiscard]] sim::Time airtime(std::uint16_t size_bytes) const;

  [[nodiscard]] const CommonChannelConfig& config() const { return cfg_; }

  /// Peak live control-queue entries across the whole MAC (pool gauge).
  [[nodiscard]] std::size_t pool_high_water() const;

 private:
  struct Interval {
    sim::Time start;
    sim::Time end;
    std::uint64_t tx_id = 0;
  };
  struct QueuedControl {
    net::ControlPacket pkt;
    int attempts = 0;
  };
  struct NodeState {
    /// Control FIFO over the MAC-wide free-list pool: a flood burst on one
    /// node reuses the queue nodes another node just released.
    util::PooledQueue<QueuedControl> queue;
    RxHandler handler;
    sim::RandomStream rng{0};
    bool transmitting = false;
    /// The node's single CSMA contention timer: armed while a carrier-sense
    /// attempt is scheduled (its armed() state replaces the old
    /// attempt_pending flag).
    sim::Timer attempt_timer;
    std::vector<Interval> heard;  ///< transmissions covering this node
    // In-flight transmission state, valid while `transmitting` (half duplex:
    // one tx at a time).  Keeping it here — not in the end-of-tx closure —
    // is what lets that closure capture just [this, id], and `tx_receivers`
    // keeps its capacity across transmissions (no per-tx allocation).
    QueuedControl in_flight;
    std::vector<net::NodeId> tx_receivers;
    sim::Time tx_start;
    sim::Time tx_end;
    std::uint64_t tx_id = 0;
  };

  void schedule_attempt(net::NodeId id, sim::Time delay);
  void attempt(net::NodeId id);
  /// Route-lifecycle trace emission for control transmissions and
  /// collision losses (no-op with no sink attached).
  void trace_control(std::string_view stage, net::NodeId node,
                     const net::ControlPacket& pkt);
  void start_tx(net::NodeId id);
  void end_of_tx(net::NodeId id);
  [[nodiscard]] bool medium_busy(const NodeState& st, sim::Time now) const;
  void prune_heard(NodeState& st, sim::Time now) const;
  [[nodiscard]] sim::Time random_backoff(NodeState& st);

  sim::Simulator& sim_;
  channel::ChannelModel& channel_;
  stats::MetricsCollector& metrics_;
  CommonChannelConfig cfg_;
  /// Shared control-queue node pool; must outlive nodes_ (declared first).
  util::FreeListPool<QueuedControl> ctrl_pool_;
  std::vector<NodeState> nodes_;
  std::uint64_t next_tx_id_ = 1;
};

}  // namespace rica::mac
