// Per-link CDMA data-plane transmitter.
//
// Data packets travel on per-directed-link PN codes (multi-code CDMA, paper
// §II): links do not contend with each other, but each directed link is a
// serial server whose instantaneous rate is the current CSI class throughput
// (ABICM adapts the coding/modulation to the channel).  Every data packet is
// acknowledged on the reverse code PN(B,A); acknowledgement bits count toward
// routing overhead (§III-A).  kMaxRetries consecutive failures (the
// neighbour left transmission range) raise a link-break signal.
//
// The transmitter serves one FCFS queue per next hop with the paper's
//10-packet capacity and 3-second residency bound.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "channel/channel_model.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "sim/timer.hpp"
#include "stats/metrics.hpp"
#include "util/flat_table.hpp"
#include "util/pool.hpp"

namespace rica::mac {

/// Data-plane tunables (defaults are the paper's §III-A setting).
struct LinkConfig {
  std::size_t buffer_cap = 10;                  ///< packets per link buffer
  sim::Time buffer_residency = sim::seconds(3); ///< max queueing time
  std::uint16_t ack_bytes = 10;
  int max_retries = 3;
  sim::Time retry_backoff = sim::milliseconds(25);
  std::uint16_t hop_cap = 64;  ///< safety bound on routing loops
};

/// Serves all outgoing data links of one node.
class LinkTransmitter {
 public:
  /// Successful delivery into the neighbour: (packet, receiver id).
  using DeliverFn = std::function<void(net::DataPacket, net::NodeId)>;
  /// Link declared broken: (neighbour, packets stranded in its queue).
  using LinkBreakFn =
      std::function<void(net::NodeId, std::vector<net::DataPacket>)>;
  /// A queued packet was dropped (overflow / residency expiry).
  using DropFn = std::function<void(const net::DataPacket&, stats::DropReason)>;

  LinkTransmitter(net::NodeId self, sim::Simulator& sim,
                  channel::ChannelModel& channel,
                  stats::MetricsCollector& metrics, const LinkConfig& cfg);

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
  void set_on_break(LinkBreakFn fn) { on_break_ = std::move(fn); }
  void set_on_drop(DropFn fn) { on_drop_ = std::move(fn); }

  /// Enqueues a packet for `next_hop`.  Drops (and reports) on overflow or
  /// when the packet exceeded the hop cap.
  void enqueue(net::DataPacket pkt, net::NodeId next_hop);

  /// Packets queued toward `neighbor` that have not begun transmission.
  /// Removes and returns them (the in-flight head packet, if any, stays).
  std::vector<net::DataPacket> drain(net::NodeId neighbor);

  /// Total packets buffered across all links (ABR's load metric).
  [[nodiscard]] std::size_t buffered() const;

  /// Packets buffered toward one neighbour.
  [[nodiscard]] std::size_t queue_length(net::NodeId neighbor) const;

  /// Peak live buffered data packets across all links (pool gauge).
  [[nodiscard]] std::size_t pool_high_water() const;

  /// Encoded data-frame header bits this node has put on the air (every
  /// transmission attempt charges wire::kDataHeaderBytes on top of the
  /// payload; the stats registry sums this across nodes).
  [[nodiscard]] std::uint64_t data_header_bits() const {
    return data_header_bits_;
  }

  /// Occupancy of the open-addressing link table (observability gauge).
  [[nodiscard]] double table_load() const { return links_.load_factor(); }

 private:
  struct Queued {
    net::DataPacket pkt;
    sim::Time enqueued;
  };
  struct Link {
    /// Per-link FIFO over the transmitter-wide free-list pool.
    util::PooledQueue<Queued> q;
    bool busy = false;
    int retries = 0;
    /// The link's single serial-server timer: at most one of {data airtime,
    /// ACK wait, retry backoff} is ever in flight, so one slot serves all
    /// three phases and declare_break() can kill the whole chain in O(1).
    sim::Timer timer;
  };

  /// The link toward `neighbor`, created (and its queue bound to the data
  /// pool) on first touch.
  Link& link(net::NodeId neighbor);

  void pump(net::NodeId neighbor);
  void tx_attempt(net::NodeId neighbor);
  void fail(net::NodeId neighbor, std::string_view cause);
  void declare_break(net::NodeId neighbor);

  /// Packet-lifecycle trace emission for this node's data plane (no-op
  /// with no sink attached).
  void trace_pkt(std::string_view stage, const net::DataPacket& pkt,
                 net::NodeId peer, std::string_view detail = {});
  /// This directed link's Perfetto data-plane track (allocated lazily).
  std::uint32_t perfetto_tid(net::NodeId neighbor);

  net::NodeId self_;
  sim::Simulator& sim_;
  channel::ChannelModel& channel_;
  stats::MetricsCollector& metrics_;
  LinkConfig cfg_;
  std::uint64_t data_header_bits_ = 0;
  /// Shared data-queue node pool; must outlive links_ (declared first).
  util::FreeListPool<Queued> data_pool_;
  util::FlatMap64<Link> links_;
  DeliverFn deliver_;
  LinkBreakFn on_break_;
  DropFn on_drop_;
};

}  // namespace rica::mac
