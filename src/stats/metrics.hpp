// Run-time metrics collection for the paper's §III evaluation:
//   * average end-to-end delay (Fig. 2),
//   * successful delivery percentage (Fig. 3),
//   * routing overhead in bits/s — control transmissions on the common
//     channel plus data-plane acknowledgements (Fig. 4),
//   * average link throughput and hop count of delivered packets (Fig. 5),
//   * aggregate delivered bits per 4-second bucket (Fig. 6).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "net/packet.hpp"
#include "obs/histogram.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace rica::stats {

/// Why a data packet was lost.
enum class DropReason : std::uint8_t {
  kBufferOverflow = 0,  ///< FCFS link buffer full (cap 10 in the paper)
  kExpired = 1,         ///< exceeded the 3 s buffer-residency bound
  kNoRoute = 2,         ///< no valid route and discovery gave up / entry gone
  kLinkBreak = 3,       ///< stranded on a broken link
  kLoopCap = 4,         ///< exceeded the hop cap (routing loop)
};
inline constexpr std::size_t kNumDropReasons = 5;

[[nodiscard]] constexpr std::string_view to_string(DropReason r) {
  constexpr std::array<std::string_view, kNumDropReasons> names = {
      "buffer_overflow", "expired", "no_route", "link_break", "loop_cap"};
  return names[static_cast<std::size_t>(r)];
}

/// Delivered-bits time series in fixed 4 s buckets (Fig. 6's x-axis).
class ThroughputSeries {
 public:
  explicit ThroughputSeries(sim::Time bucket = sim::seconds(4))
      : bucket_(bucket) {}

  void add_bits(sim::Time at, double bits);

  /// Throughput of each bucket, kbps.
  [[nodiscard]] std::vector<double> kbps() const;

  [[nodiscard]] sim::Time bucket_width() const { return bucket_; }

  /// Drops accumulated bits; bucket indexing stays anchored at t = 0, so
  /// after a warmup reset the pre-warmup buckets simply read zero.
  void clear() { bits_.clear(); }

 private:
  sim::Time bucket_;
  std::vector<double> bits_;
};

/// Per-flow slice of a run's results (keyed by the traffic generator's flow
/// id): conservation counts plus the flow's delivered throughput and delay
/// percentiles (log-bucketed: exact to the histogram's <=1/32 relative
/// bucket width).  `generated - delivered - dropped` packets are still in
/// flight (buffered or mid-transmission) at the end of the window.
struct FlowSummary {
  std::uint32_t flow = 0;
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  double tput_kbps = 0.0;  ///< delivered bits over the measurement window
  double delay_p50_ms = 0.0;
  double delay_p95_ms = 0.0;
  double delay_p99_ms = 0.0;
};

/// Aggregated results of one simulation run.
struct MetricsSummary {
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  double delivery_pct = 0.0;
  double avg_delay_ms = 0.0;
  double overhead_kbps = 0.0;
  double avg_link_tput_kbps = 0.0;
  double avg_hops = 0.0;
  std::array<std::uint64_t, kNumDropReasons> drops{};
  /// Total losses: always exactly the sum of the per-reason `drops` array
  /// (the taxonomy partitions the legacy aggregate, it does not extend it).
  std::uint64_t dropped = 0;
  std::uint64_t control_transmissions = 0;
  std::uint64_t control_collisions = 0;
  std::vector<double> tput_kbps_series;
  std::map<std::string, std::uint64_t> counters;  ///< protocol diagnostics
  // Workload-axis metrics: delay percentiles pooled over every delivered
  // packet, Jain's fairness index over per-flow delivered throughput, and
  // the per-flow table backing both.  The run-level percentiles come from
  // the bounded log-bucketed delay histogram, so across trials average()
  // merges the histograms exactly and re-reads the percentiles from the
  // pooled distribution — no mean-of-percentiles approximation.  Per-flow
  // percentiles and fairness still average per-trial values across trials.
  double delay_p50_ms = 0.0;
  double delay_p95_ms = 0.0;
  double delay_p99_ms = 0.0;
  double jain_fairness = 0.0;
  std::vector<FlowSummary> flow_summaries;  ///< ascending flow id
  /// FNV-1a over the ordered generated/delivered/dropped/control event
  /// stream of the measurement window (see MetricsCollector::stream_hash).
  /// Across trials, average() folds the per-trial hashes in trial order.
  std::uint64_t stream_hash = 0;
  /// Start of the measurement window (0 without warmup; see reset_epoch).
  sim::Time measure_start{};
  // Kernel observability, filled by the harness from the Simulator after the
  // run.  Across trials, events_executed accumulates (total kernel work) and
  // the two high-water marks keep the per-trial maximum.
  std::uint64_t events_executed = 0;       ///< events fired by the kernel
  std::uint64_t peak_pending_events = 0;   ///< max simultaneously pending
  std::uint64_t slab_high_water = 0;       ///< max event records in use
  /// Closures that outgrew the engine's inline buffer
  /// (sim::EventEngine::kInlineBytes) and spilled to a heap cell — the data
  /// behind the inline-buffer sizing decision; the golden suite pins it to
  /// zero.  Accumulates across trials like events_executed.
  std::uint64_t heap_fallbacks = 0;
  /// Events fired off the engine's sorted same-tick batch (vs. the spill
  /// heap); near events_executed when batching is effective.  Accumulates
  /// across trials.
  std::uint64_t batched_fires = 0;
  /// Peak live entries across the stack's free-list pools (MAC control
  /// queues + per-node data queues); per-trial maximum across trials.
  std::uint64_t pool_high_water = 0;
  /// Max open-addressing table occupancy observed at run end (routing /
  /// history / link tables); per-trial maximum across trials.
  double table_load = 0.0;
  /// Every registered observability statistic, keyed by name, with its fold
  /// kind attached (see obs::Registry).  The typed kernel fields above are
  /// populated from this map by the harness; new statistics only need a
  /// registration, not a summary field.  Across trials, average() folds by
  /// kind: counters sum, gauges keep the maximum.
  std::map<std::string, obs::Sample> stats;
  /// Bounded log-bucketed distributions, keyed by name: always-on
  /// "delay_ns" / "queue_depth" / "airtime_ns" from the collector plus any
  /// histogram registered in the obs::Registry (e.g. the sharded kernel's
  /// "kernel.staged_per_window").  Across trials, average() merges by name
  /// — LogHistogram::merge is exact and associative, so pooled percentiles
  /// are identical no matter how trials are grouped.
  std::map<std::string, obs::LogHistogram> histograms;
};

/// FNV-1a running hash (64-bit), folded one event record at a time.  Used
/// as the golden-run determinism fingerprint: any drift in event order,
/// payload, or timing of the metrics stream changes the digest.
inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ull;
[[nodiscard]] constexpr std::uint64_t fnv1a(std::uint64_t hash,
                                            std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xFF;
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Event sink wired into the node/MAC layers.  One collector per run.
class MetricsCollector {
 public:
  MetricsCollector() = default;

  // -- data plane -----------------------------------------------------------
  void on_generated(const net::DataPacket& pkt);
  void on_delivered(const net::DataPacket& pkt, sim::Time now);
  void on_dropped(const net::DataPacket& pkt, DropReason reason);

  // -- control plane --------------------------------------------------------
  /// A transmission on the common channel (each rebroadcast counts once).
  void on_control_tx(std::uint32_t bits);
  /// A reception lost to a collision (diagnostics only).
  void on_control_collision();
  /// A data-plane acknowledgement (counted in routing overhead per §III-A).
  void on_ack_tx(std::uint32_t bits);

  // -- always-on distributions ----------------------------------------------
  // Histogram observations ride outside the golden stream hash (like the
  // tracer): they are derived views of already-hashed events, cheap enough
  // (one bit-scan + increment) to collect unconditionally.
  /// Link-queue depth right after an enqueue.
  void observe_queue_depth(std::size_t depth) {
    queue_depth_.record(static_cast<std::int64_t>(depth));
  }
  /// One data transmission attempt's airtime (failed attempts included —
  /// wasted airtime is part of the story).
  void observe_airtime(sim::Time airtime) {
    airtime_ns_.record(airtime.nanos());
  }

  /// Central discovery-failure tally (fed by Node::trace_route, the one
  /// place every protocol's "discovery_failed" record funnels through);
  /// source for the discovery-storm watchdog.
  void count_discovery_failure() { ++discovery_failures_; }
  [[nodiscard]] std::uint64_t discovery_failures() const {
    return discovery_failures_;
  }

  /// Free-form named counters for protocol diagnostics and tests.
  void inc(const std::string& name, std::uint64_t by = 1);
  [[nodiscard]] std::uint64_t counter(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }

  /// Per-flow tallies (keyed by the traffic generator's flow id).
  struct FlowStats {
    std::uint64_t generated = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    double delay_sum_ms = 0.0;
    double bits_delivered = 0.0;
    sim::Time last_delivery{};
    /// Delivered-packet delays in nanoseconds, log-bucketed.  Replaces the
    /// old unbounded per-delivery vector (~4 MB per run at the heaviest
    /// preset) with a few hundred bytes of buckets per flow, at <=1/32
    /// relative percentile error.
    obs::LogHistogram delays;
  };
  [[nodiscard]] const std::map<std::uint32_t, FlowStats>& flow_stats() const {
    return flows_;
  }

  // -- measurement window ---------------------------------------------------
  /// Opens a fresh measurement epoch at `now`: every accumulator (counts,
  /// sums, drops, series, flow tallies, diagnostics, stream hash) restarts
  /// from zero and finalize() reports rates over (now, sim_duration].  This
  /// is the whole warmup implementation — one reset event at the end of the
  /// transient instead of an is-warm branch on every counter update — so a
  /// warmed-up run executes the exact same event stream as a cold one.
  void reset_epoch(sim::Time now);
  [[nodiscard]] sim::Time epoch_start() const { return epoch_start_; }

  /// Order-sensitive FNV-1a digest of every event recorded this epoch.
  [[nodiscard]] std::uint64_t stream_hash() const { return stream_hash_; }

  // -- results --------------------------------------------------------------
  [[nodiscard]] MetricsSummary finalize(sim::Time sim_duration) const;

  [[nodiscard]] std::uint64_t generated() const { return generated_; }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t dropped(DropReason r) const {
    return drops_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] std::uint64_t dropped_total() const {
    std::uint64_t sum = 0;
    for (const auto d : drops_) sum += d;
    return sum;
  }
  /// Cumulative control bits on air this epoch (series sampling).
  [[nodiscard]] double control_bits() const { return control_bits_; }

  /// The structured-trace switchboard.  The collector is the one object
  /// already threaded through every emitting layer (nodes, both MACs, the
  /// harness), so it carries the tracer; emission sites call
  /// `tracer().packet(...)` etc., which are no-ops with no sink attached
  /// and never touch the stream hash either way.
  [[nodiscard]] obs::Tracer& tracer() { return tracer_; }

 private:
  void fold(std::uint64_t v) { stream_hash_ = fnv1a(stream_hash_, v); }

  std::uint64_t generated_ = 0;
  std::uint64_t delivered_ = 0;
  double delay_sum_ms_ = 0.0;
  double hop_sum_ = 0.0;
  double tput_sum_bps_ = 0.0;
  double control_bits_ = 0.0;
  double ack_bits_ = 0.0;
  std::uint64_t control_tx_count_ = 0;
  std::uint64_t collision_count_ = 0;
  std::array<std::uint64_t, kNumDropReasons> drops_{};
  ThroughputSeries series_{};
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::uint32_t, FlowStats> flows_;
  obs::LogHistogram delay_ns_;     ///< pooled end-to-end delay
  obs::LogHistogram queue_depth_;  ///< link-queue depth at enqueue
  obs::LogHistogram airtime_ns_;   ///< per-attempt data airtime
  std::uint64_t discovery_failures_ = 0;
  std::uint64_t stream_hash_ = kFnvOffsetBasis;
  sim::Time epoch_start_ = sim::Time::zero();
  obs::Tracer tracer_;
};

/// Mean over a set of per-trial values (used by the multi-trial harness).
[[nodiscard]] double mean(const std::vector<double>& xs);
/// Sample standard deviation (0 for fewer than two values).
[[nodiscard]] double stddev(const std::vector<double>& xs);
/// Nearest-rank percentile (q in [0, 100]) of an unsorted sample; 0 when
/// empty.  Copies and sorts, so callers keep their sample order.
[[nodiscard]] double percentile(std::vector<double> xs, double q);
/// Jain's fairness index (sum x)^2 / (n * sum x^2) over per-flow shares:
/// 1 when every flow gets an equal share, 1/n when one flow takes all.
/// Conventions: 0 for an empty set; 1 when every share is zero (uniformly
/// starved is still uniform).
[[nodiscard]] double jain_index(const std::vector<double>& xs);

}  // namespace rica::stats
