#include "stats/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace rica::stats {

namespace {

/// Nearest-rank lookup in an already-sorted sample.
double sorted_percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank =
      std::ceil(q / 100.0 * static_cast<double>(sorted.size()));
  const auto idx = static_cast<std::size_t>(
      std::clamp(rank - 1.0, 0.0, static_cast<double>(sorted.size() - 1)));
  return sorted[idx];
}

}  // namespace

void ThroughputSeries::add_bits(sim::Time at, double bits) {
  const auto idx = static_cast<std::size_t>(at.nanos() / bucket_.nanos());
  if (bits_.size() <= idx) bits_.resize(idx + 1, 0.0);
  bits_[idx] += bits;
}

std::vector<double> ThroughputSeries::kbps() const {
  std::vector<double> out;
  out.reserve(bits_.size());
  const double secs = bucket_.seconds();
  for (const double b : bits_) out.push_back(b / secs / 1e3);
  return out;
}

void MetricsCollector::on_generated(const net::DataPacket& pkt) {
  ++generated_;
  ++flows_[pkt.flow].generated;
  fold(1);
  fold((static_cast<std::uint64_t>(pkt.flow) << 32) | pkt.seq);
  fold(static_cast<std::uint64_t>(pkt.gen_time.nanos()));
}

void MetricsCollector::on_delivered(const net::DataPacket& pkt,
                                    sim::Time now) {
  ++delivered_;
  delay_sum_ms_ += (now - pkt.gen_time).millis();
  hop_sum_ += pkt.hops;
  tput_sum_bps_ += pkt.tput_sum_bps;
  series_.add_bits(now, pkt.size_bytes * 8.0);
  auto& f = flows_[pkt.flow];
  ++f.delivered;
  f.delay_sum_ms += (now - pkt.gen_time).millis();
  f.bits_delivered += pkt.size_bytes * 8.0;
  f.last_delivery = now;
  const std::int64_t delay_ns = (now - pkt.gen_time).nanos();
  f.delays.record(delay_ns);
  delay_ns_.record(delay_ns);
  fold(2);
  fold((static_cast<std::uint64_t>(pkt.flow) << 32) | pkt.seq);
  fold(static_cast<std::uint64_t>(now.nanos()));
  fold(pkt.hops);
}

void MetricsCollector::on_dropped(const net::DataPacket& pkt,
                                  DropReason reason) {
  ++drops_[static_cast<std::size_t>(reason)];
  ++flows_[pkt.flow].dropped;
  fold(3);
  fold((static_cast<std::uint64_t>(pkt.flow) << 32) | pkt.seq);
  fold(static_cast<std::uint64_t>(reason));
}

void MetricsCollector::on_control_tx(std::uint32_t bits) {
  control_bits_ += bits;
  ++control_tx_count_;
  fold((4ull << 32) | bits);
}

void MetricsCollector::on_control_collision() {
  ++collision_count_;
  fold(5);
}

void MetricsCollector::on_ack_tx(std::uint32_t bits) {
  ack_bits_ += bits;
  fold((6ull << 32) | bits);
}

void MetricsCollector::reset_epoch(sim::Time now) {
  generated_ = 0;
  delivered_ = 0;
  delay_sum_ms_ = 0.0;
  hop_sum_ = 0.0;
  tput_sum_bps_ = 0.0;
  control_bits_ = 0.0;
  ack_bits_ = 0.0;
  control_tx_count_ = 0;
  collision_count_ = 0;
  drops_.fill(0);
  series_.clear();
  counters_.clear();
  flows_.clear();
  delay_ns_ = obs::LogHistogram{};
  queue_depth_ = obs::LogHistogram{};
  airtime_ns_ = obs::LogHistogram{};
  discovery_failures_ = 0;
  stream_hash_ = kFnvOffsetBasis;
  epoch_start_ = now;
}

void MetricsCollector::inc(const std::string& name, std::uint64_t by) {
  counters_[name] += by;
}

std::uint64_t MetricsCollector::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

MetricsSummary MetricsCollector::finalize(sim::Time sim_duration) const {
  MetricsSummary s;
  s.generated = generated_;
  s.delivered = delivered_;
  s.delivery_pct =
      generated_ == 0 ? 0.0 : 100.0 * static_cast<double>(delivered_) /
                                  static_cast<double>(generated_);
  s.avg_delay_ms =
      delivered_ == 0 ? 0.0 : delay_sum_ms_ / static_cast<double>(delivered_);
  // Rates are normalized by the measurement window, which starts at the
  // last epoch reset (t = 0 when no warmup was requested).
  const double secs = (sim_duration - epoch_start_).seconds();
  s.overhead_kbps = secs <= 0.0 ? 0.0 : (control_bits_ + ack_bits_) / secs / 1e3;
  s.avg_link_tput_kbps = hop_sum_ <= 0.0 ? 0.0 : tput_sum_bps_ / hop_sum_ / 1e3;
  s.avg_hops =
      delivered_ == 0 ? 0.0 : hop_sum_ / static_cast<double>(delivered_);
  s.drops = drops_;
  s.dropped = dropped_total();
  s.control_transmissions = control_tx_count_;
  s.control_collisions = collision_count_;
  s.tput_kbps_series = series_.kbps();
  s.counters = counters_;
  s.stream_hash = stream_hash_;
  s.measure_start = epoch_start_;

  // Workload-axis metrics: per-flow table (map iteration is ascending flow
  // id), fairness over per-flow delivered throughput, percentiles read
  // from the log-bucketed delay histograms (nanoseconds -> milliseconds).
  std::vector<double> flow_tputs;
  s.flow_summaries.reserve(flows_.size());
  flow_tputs.reserve(flows_.size());
  for (const auto& [flow_id, f] : flows_) {
    FlowSummary fs;
    fs.flow = flow_id;
    fs.generated = f.generated;
    fs.delivered = f.delivered;
    fs.dropped = f.dropped;
    fs.tput_kbps = secs <= 0.0 ? 0.0 : f.bits_delivered / secs / 1e3;
    fs.delay_p50_ms = f.delays.percentile(50.0) / 1e6;
    fs.delay_p95_ms = f.delays.percentile(95.0) / 1e6;
    fs.delay_p99_ms = f.delays.percentile(99.0) / 1e6;
    flow_tputs.push_back(fs.tput_kbps);
    s.flow_summaries.push_back(fs);
  }
  s.jain_fairness = jain_index(flow_tputs);
  s.delay_p50_ms = delay_ns_.percentile(50.0) / 1e6;
  s.delay_p95_ms = delay_ns_.percentile(95.0) / 1e6;
  s.delay_p99_ms = delay_ns_.percentile(99.0) / 1e6;
  s.histograms.emplace("delay_ns", delay_ns_);
  s.histograms.emplace("queue_depth", queue_depth_);
  s.histograms.emplace("airtime_ns", airtime_ns_);
  return s;
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double percentile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  return sorted_percentile(xs, q);
}

double jain_index(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

}  // namespace rica::stats
