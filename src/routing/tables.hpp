// Shared building blocks for the on-demand protocols: the RREQ/BQ history
// table (§II-B: "checks whether it has seen this packet before by looking up
// its history table") and the pending-packet buffer used while a route is
// being discovered or repaired.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"
#include "util/flat_table.hpp"

namespace rica::routing {

/// Records which broadcast packets (keyed by origin and broadcast id) this
/// terminal has already processed, so floods are forwarded exactly once.
class HistoryTable {
 public:
  /// Returns true if (origin, bid) was already recorded; otherwise records
  /// it and returns false.  Scoped by a small tag so different packet kinds
  /// (RREQ vs CSI check vs LQ) never collide.
  bool seen_or_insert(net::NodeId origin, std::uint32_t bid,
                      std::uint8_t tag = 0) {
    // Node ids are small (< 2^24, enforced at node construction), so
    // (tag, origin, bid) packs losslessly.
    const std::uint64_t key =
        ((static_cast<std::uint64_t>(tag) << 24 |
          static_cast<std::uint64_t>(origin))
         << 32) |
        bid;
    return !seen_.insert(key);
  }

  void clear() { seen_.clear(); }
  [[nodiscard]] std::size_t size() const { return seen_.size(); }
  [[nodiscard]] double load_factor() const { return seen_.load_factor(); }

 private:
  util::FlatSet64 seen_;
};

/// FIFO buffer holding data packets while a route is discovered/repaired.
/// Enforces a capacity and the paper's 3-second residency bound.
class PendingBuffer {
 public:
  PendingBuffer(std::size_t cap, sim::Time residency)
      : cap_(cap), residency_(residency) {}

  /// Tries to enqueue; returns false (caller drops the packet) when full.
  bool push(net::DataPacket pkt, sim::Time now) {
    if (q_.size() >= cap_) return false;
    q_.push_back(Entry{std::move(pkt), now});
    return true;
  }

  /// Removes and returns all packets that are still within the residency
  /// bound; expired ones are passed to `on_expired`.
  std::vector<net::DataPacket> take_fresh(
      sim::Time now,
      const std::function<void(const net::DataPacket&)>& on_expired) {
    std::vector<net::DataPacket> fresh;
    fresh.reserve(q_.size());
    for (auto& e : q_) {
      if (now - e.enqueued > residency_) {
        if (on_expired) on_expired(e.pkt);
      } else {
        fresh.push_back(std::move(e.pkt));
      }
    }
    q_.clear();
    return fresh;
  }

  /// Drops entries older than the residency bound (reporting each).
  void purge_expired(
      sim::Time now,
      const std::function<void(const net::DataPacket&)>& on_expired) {
    while (!q_.empty() && now - q_.front().enqueued > residency_) {
      if (on_expired) on_expired(q_.front().pkt);
      q_.pop_front();
    }
  }

  [[nodiscard]] std::size_t size() const { return q_.size(); }
  [[nodiscard]] bool empty() const { return q_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return cap_; }

 private:
  struct Entry {
    net::DataPacket pkt;
    sim::Time enqueued;
  };
  std::size_t cap_;
  sim::Time residency_;
  std::deque<Entry> q_;
};

}  // namespace rica::routing
