// ABR — Associativity-Based Routing (Toh [12], as used in the paper's
// comparison):
//   * every terminal beacons periodically; a neighbour's "associativity
//     ticks" count consecutive beacons heard, so high ticks mean a stable,
//     long-lived link;
//   * route discovery floods a BQ (broadcast query) that accumulates the
//     aggregate associativity of the links crossed plus the relays' queue
//     load; the destination waits briefly and picks the most stable route
//     (maximum aggregate ticks, ties broken by lower load then fewer hops)
//     — the paper notes such routes tend to be longer than shortest paths;
//   * on a link break, the upstream terminal holds arriving packets and
//     issues a TTL-bounded localized query (LQ) to re-join the remaining
//     path; if that fails it backtracks one hop with an RN (route
//     notification) and the next terminal tries, until the source performs
//     a fresh BQ.  The queue buildup during LQ is what drives ABR's delay
//     growth with mobility in Fig. 2;
//   * channel state is ignored entirely (topological hops only).
#pragma once

#include <cstdint>
#include <vector>

#include "routing/protocol.hpp"
#include "routing/tables.hpp"
#include "sim/timer.hpp"
#include "util/flat_table.hpp"

namespace rica::routing {

/// ABR tunables.
struct AbrConfig {
  sim::Time beacon_period = sim::seconds(1);
  sim::Time neighbor_timeout = sim::milliseconds(2500);
  std::uint32_t tick_cap = 20;       ///< per-link associativity saturation;
                                     ///< links that survived ~20 beacon
                                     ///< periods count as fully stable
  sim::Time dest_wait = sim::milliseconds(40);
  sim::Time discovery_timeout = sim::milliseconds(300);
  int max_discovery_attempts = 3;
  std::int16_t bq_ttl = 16;
  std::int16_t lq_ttl = 3;
  sim::Time lq_timeout = sim::milliseconds(150);
  std::size_t pending_cap = 10;
  sim::Time pending_residency = sim::seconds(3);
};

class AbrProtocol final : public Protocol {
 public:
  AbrProtocol(ProtocolHost& host, const AbrConfig& cfg = {});

  void start() override;
  void handle_data(net::DataPacket pkt, net::NodeId from) override;
  void on_control(const net::ControlPacket& pkt, net::NodeId from) override;
  void on_link_break(net::NodeId neighbor,
                     std::vector<net::DataPacket> stranded) override;
  [[nodiscard]] std::string_view name() const override { return "ABR"; }
  [[nodiscard]] double table_load() const override;

  // -- white-box accessors for tests ----------------------------------------
  /// Current associativity ticks for a neighbour (0 if unknown/expired).
  [[nodiscard]] std::uint32_t ticks(net::NodeId neighbor) const;
  [[nodiscard]] std::optional<net::NodeId> downstream(net::FlowKey flow) const;

 private:
  struct Neighbor {
    std::uint32_t ticks = 0;
    sim::Time last_beacon{};
  };
  struct Candidate {
    net::NodeId first_hop = 0;
    std::uint32_t tick_sum = 0;
    std::uint32_t load_sum = 0;
    std::uint16_t topo_hops = 0;
  };
  struct Entry {
    bool valid = false;
    net::NodeId upstream = 0;
    net::NodeId downstream = 0;
    std::uint16_t hops_to_dst = 0;
    bool repairing = false;
    std::uint32_t lq_bid = 0;
    sim::Timer lq_timer;  ///< localized-query deadline for this entry
    std::vector<Candidate> lq_candidates;  // tick_sum unused; topo = join hops
  };
  struct SourceState {
    bool discovering = false;
    std::uint32_t bid = 0;
    int attempts = 0;
    sim::Timer discovery_timer;  ///< BQ retry deadline; cancelled on reply
    PendingBuffer pending;
    explicit SourceState(const AbrConfig& cfg)
        : pending(cfg.pending_cap, cfg.pending_residency) {}
  };
  struct DestState {
    bool window_open = false;
    std::uint32_t window_bid = 0;
    std::vector<Candidate> window_candidates;
  };

  void send_beacon();
  [[nodiscard]] std::uint32_t link_ticks(net::NodeId neighbor);

  void begin_discovery(net::FlowKey flow);
  void send_bq(net::FlowKey flow);
  void close_dest_window(net::FlowKey flow);
  void start_local_query(net::FlowKey flow);
  void finish_local_query(net::FlowKey flow, std::uint32_t bid);
  void backtrack(net::FlowKey flow, Entry& e);
  void flush_repair(net::FlowKey flow);
  void buffer_for_repair(net::DataPacket pkt);

  void on_beacon(net::NodeId from);
  void on_bq(const net::AbrBqMsg& msg, net::NodeId from);
  void on_reply(const net::AbrReplyMsg& msg, net::NodeId from);
  void on_lq(const net::AbrLqMsg& msg, net::NodeId from);
  void on_lq_reply(const net::AbrLqReplyMsg& msg, net::NodeId from);
  void on_rn(const net::AbrRnMsg& msg, net::NodeId from);

  [[nodiscard]] sim::Time now() const;
  SourceState& source_state(net::FlowKey flow);

  AbrConfig cfg_;
  HistoryTable history_;
  sim::Timer beacon_timer_;  ///< the node-wide periodic beacon
  util::FlatMap64<Neighbor> neighbors_;
  util::FlatMap64<Entry> entries_;
  util::FlatMap64<SourceState> sources_;
  util::FlatMap64<DestState> dests_;
  util::FlatMap64<PendingBuffer> repair_pending_;
  util::FlatMap64<net::NodeId> bq_upstream_;
  util::FlatMap64<net::NodeId> lq_upstream_;
  std::uint32_t next_bid_ = 1;
};

}  // namespace rica::routing
