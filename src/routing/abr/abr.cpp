#include "routing/abr/abr.hpp"

#include <algorithm>
#include <utility>

namespace rica::routing {

namespace {
constexpr std::uint8_t kTagBq = 1;
constexpr std::uint8_t kTagLq = 2;

constexpr std::uint64_t bid_key(net::NodeId origin, std::uint32_t bid) {
  return (static_cast<std::uint64_t>(origin) << 32) | bid;
}

/// The destination's route-selection order (§III: stability first, then
/// load, then length).
bool better_candidate(std::uint32_t a_ticks, std::uint32_t a_load,
                      std::uint16_t a_hops, std::uint32_t b_ticks,
                      std::uint32_t b_load, std::uint16_t b_hops) {
  if (a_ticks != b_ticks) return a_ticks > b_ticks;
  if (a_load != b_load) return a_load < b_load;
  return a_hops < b_hops;
}
}  // namespace

AbrProtocol::AbrProtocol(ProtocolHost& host, const AbrConfig& cfg)
    : Protocol(host), cfg_(cfg) {}

sim::Time AbrProtocol::now() const {
  return const_cast<AbrProtocol*>(this)->host().simulator().now();
}

AbrProtocol::SourceState& AbrProtocol::source_state(net::FlowKey flow) {
  auto it = sources_.find(flow);
  if (it == sources_.end()) it = sources_.emplace(flow, SourceState{cfg_}).first;
  return it->second;
}

std::uint32_t AbrProtocol::ticks(net::NodeId neighbor) const {
  const auto it = neighbors_.find(neighbor);
  if (it == neighbors_.end()) return 0;
  if (now() - it->second.last_beacon > cfg_.neighbor_timeout) return 0;
  return it->second.ticks;
}

std::optional<net::NodeId> AbrProtocol::downstream(net::FlowKey flow) const {
  const auto it = entries_.find(flow);
  if (it == entries_.end() || !it->second.valid) return std::nullopt;
  return it->second.downstream;
}

void AbrProtocol::start() {
  // Random phase desynchronizes beacons network-wide.
  const auto phase = sim::Time{static_cast<std::int64_t>(
      host().protocol_rng().uniform(
          0.0, static_cast<double>(cfg_.beacon_period.nanos())))};
  beacon_timer_.arm_after(host().simulator(), phase, [this] { send_beacon(); });
}

void AbrProtocol::send_beacon() {
  host().send_control(
      net::make_control(net::kBroadcastId, net::AbrBeaconMsg{host().id()}));
  beacon_timer_.arm_after(host().simulator(), cfg_.beacon_period,
                          [this] { send_beacon(); });
}

void AbrProtocol::on_beacon(net::NodeId from) {
  auto& n = neighbors_[from];
  if (now() - n.last_beacon > cfg_.neighbor_timeout) {
    n.ticks = 0;  // the association lapsed; start counting afresh
  }
  n.ticks = std::min(n.ticks + 1, cfg_.tick_cap);
  n.last_beacon = now();
}

std::uint32_t AbrProtocol::link_ticks(net::NodeId neighbor) {
  return ticks(neighbor);
}

// ---------------------------------------------------------------------------
// Data plane
// ---------------------------------------------------------------------------

void AbrProtocol::handle_data(net::DataPacket pkt, net::NodeId from) {
  const net::FlowKey flow = pkt.key();
  if (pkt.dst == host().id()) {
    host().deliver_local(pkt);
    return;
  }

  auto& e = entries_[flow];
  if (from == host().id()) {  // source
    if (e.repairing) {
      buffer_for_repair(std::move(pkt));
      return;
    }
    if (e.valid) {
      host().forward_data(std::move(pkt), e.downstream);
      return;
    }
    auto& s = source_state(flow);
    if (!s.pending.push(std::move(pkt), now())) {
      host().count("abr.pending_overflow");
    }
    if (!s.discovering) begin_discovery(flow);
    return;
  }

  e.upstream = from;
  if (e.repairing) {
    buffer_for_repair(std::move(pkt));
    return;
  }
  if (!e.valid) {
    host().drop_data(pkt, stats::DropReason::kNoRoute);
    return;
  }
  host().forward_data(std::move(pkt), e.downstream);
}

void AbrProtocol::buffer_for_repair(net::DataPacket pkt) {
  auto it = repair_pending_.find(pkt.key());
  if (it == repair_pending_.end()) {
    it = repair_pending_
             .emplace(pkt.key(),
                      PendingBuffer{cfg_.pending_cap, cfg_.pending_residency})
             .first;
  }
  if (it->second.size() >= it->second.capacity()) {
    host().drop_data(pkt, stats::DropReason::kBufferOverflow);
    return;
  }
  it->second.push(std::move(pkt), now());
}

// ---------------------------------------------------------------------------
// Discovery: BQ flood + stability-based selection
// ---------------------------------------------------------------------------

void AbrProtocol::begin_discovery(net::FlowKey flow) {
  auto& s = source_state(flow);
  s.discovering = true;
  s.attempts = 1;
  host().count("abr.discovery");
  host().trace_route("discovery_start", net::flow_src(flow),
                     net::flow_dst(flow));
  send_bq(flow);
}

void AbrProtocol::send_bq(net::FlowKey flow) {
  auto& s = source_state(flow);
  const std::uint32_t bid = next_bid_++;
  s.bid = bid;
  history_.seen_or_insert(host().id(), bid, kTagBq);
  net::AbrBqMsg msg;
  msg.src = net::flow_src(flow);
  msg.dst = net::flow_dst(flow);
  msg.bid = bid;
  host().send_control(net::make_control(net::kBroadcastId, msg));

  s.discovery_timer.arm_after(
      host().simulator(), cfg_.discovery_timeout, [this, flow, bid] {
    auto& st = source_state(flow);
    if (!st.discovering || st.bid != bid) return;
    st.pending.purge_expired(now(), [this](const net::DataPacket& p) {
      host().drop_data(p, stats::DropReason::kExpired);
    });
    if (st.pending.empty()) {
      st.discovering = false;
      return;
    }
    if (st.attempts >= cfg_.max_discovery_attempts) {
      for (const auto& p : st.pending.take_fresh(now(), nullptr)) {
        host().drop_data(p, stats::DropReason::kNoRoute);
      }
      st.discovering = false;
      host().trace_route("discovery_failed", net::flow_src(flow),
                         net::flow_dst(flow), bid);
      return;
    }
    ++st.attempts;
    host().trace_route("discovery_retry", net::flow_src(flow),
                       net::flow_dst(flow), bid);
    send_bq(flow);
  });
}

void AbrProtocol::on_bq(const net::AbrBqMsg& msg, net::NodeId from) {
  if (msg.src == host().id()) return;

  const std::uint32_t tick_sum = msg.tick_sum + link_ticks(from);
  const auto load_sum =
      msg.load_sum + static_cast<std::uint32_t>(host().buffered_count());
  const auto topo = static_cast<std::uint16_t>(msg.topo_hops + 1);

  if (msg.dst == host().id()) {
    // The destination compares every arriving copy (one per last hop);
    // duplicate suppression only applies to relay forwarding.
    const net::FlowKey flow = net::flow_key(msg.src, msg.dst);
    auto& d = dests_[flow];
    if (!d.window_open || d.window_bid != msg.bid) {
      d.window_open = true;
      d.window_bid = msg.bid;
      d.window_candidates.clear();
      host().simulator().after(cfg_.dest_wait,
                               [this, flow] { close_dest_window(flow); });
    }
    d.window_candidates.push_back(Candidate{from, tick_sum, load_sum, topo});
    return;
  }
  if (history_.seen_or_insert(msg.src, msg.bid, kTagBq)) return;
  bq_upstream_[bid_key(msg.src, msg.bid)] = from;
  if (topo >= cfg_.bq_ttl) return;
  net::AbrBqMsg fwd = msg;
  fwd.tick_sum = tick_sum;
  fwd.load_sum = load_sum;
  fwd.topo_hops = topo;
  host().send_control(net::make_control(net::kBroadcastId, fwd));
}

void AbrProtocol::close_dest_window(net::FlowKey flow) {
  auto& d = dests_[flow];
  if (!d.window_open) return;
  d.window_open = false;
  if (d.window_candidates.empty()) return;
  const auto best = std::min_element(
      d.window_candidates.begin(), d.window_candidates.end(),
      [](const Candidate& a, const Candidate& b) {
        return better_candidate(a.tick_sum, a.load_sum, a.topo_hops,
                                b.tick_sum, b.load_sum, b.topo_hops);
      });
  host().send_control(net::make_control(
      best->first_hop, net::AbrReplyMsg{net::flow_src(flow),
                                        net::flow_dst(flow), d.window_bid, 0}));
  d.window_candidates.clear();
}

void AbrProtocol::on_reply(const net::AbrReplyMsg& msg, net::NodeId from) {
  const net::FlowKey flow = net::flow_key(msg.src, msg.dst);
  auto& e = entries_[flow];
  e.valid = true;
  e.downstream = from;
  e.hops_to_dst = static_cast<std::uint16_t>(msg.topo_hops + 1);
  e.repairing = false;

  if (msg.src == host().id()) {
    auto& s = source_state(flow);
    s.discovering = false;
    s.discovery_timer.cancel();
    host().trace_route("established", msg.src, msg.dst, msg.bid,
                       static_cast<double>(msg.topo_hops + 1));
    const auto expired = [this](const net::DataPacket& p) {
      host().drop_data(p, stats::DropReason::kExpired);
    };
    for (auto& p : s.pending.take_fresh(now(), expired)) {
      host().forward_data(std::move(p), e.downstream);
    }
    flush_repair(flow);
    return;
  }
  const auto up = bq_upstream_.find(bid_key(msg.src, msg.bid));
  if (up == bq_upstream_.end()) return;
  e.upstream = up->second;
  net::AbrReplyMsg fwd = msg;
  fwd.topo_hops = static_cast<std::uint16_t>(msg.topo_hops + 1);
  host().send_control(net::make_control(up->second, fwd));
}

// ---------------------------------------------------------------------------
// Local repair: LQ with RN backtracking
// ---------------------------------------------------------------------------

void AbrProtocol::start_local_query(net::FlowKey flow) {
  auto& e = entries_[flow];
  e.repairing = true;
  e.valid = false;
  const std::uint32_t bid = next_bid_++;
  e.lq_bid = bid;
  e.lq_candidates.clear();
  history_.seen_or_insert(host().id(), bid, kTagLq);
  host().count("abr.lq");
  host().trace_route("repair_start", net::flow_src(flow), net::flow_dst(flow),
                     bid);

  net::AbrLqMsg msg;
  msg.origin = host().id();
  msg.src = net::flow_src(flow);
  msg.dst = net::flow_dst(flow);
  msg.bid = bid;
  msg.ttl = cfg_.lq_ttl;
  msg.origin_hops_to_dst = e.hops_to_dst;
  host().send_control(net::make_control(net::kBroadcastId, msg));

  e.lq_timer.arm_after(host().simulator(), cfg_.lq_timeout,
                       [this, flow, bid] { finish_local_query(flow, bid); });
}

void AbrProtocol::on_lq(const net::AbrLqMsg& msg, net::NodeId from) {
  if (msg.origin == host().id()) return;
  if (history_.seen_or_insert(msg.origin, msg.bid, kTagLq)) return;

  const auto topo = static_cast<std::uint16_t>(msg.topo_hops + 1);
  lq_upstream_[bid_key(msg.origin, msg.bid)] = from;

  const net::FlowKey flow = net::flow_key(msg.src, msg.dst);
  const auto it = entries_.find(flow);
  const bool is_dst = msg.dst == host().id();
  const bool on_path = it != entries_.end() && it->second.valid &&
                       !it->second.repairing &&
                       it->second.hops_to_dst < msg.origin_hops_to_dst;
  if (is_dst || on_path) {
    net::AbrLqReplyMsg reply;
    reply.origin = msg.origin;
    reply.src = msg.src;
    reply.dst = msg.dst;
    reply.bid = msg.bid;
    reply.join_hops_to_dst = is_dst ? 0 : it->second.hops_to_dst;
    reply.join = host().id();
    host().send_control(net::make_control(from, reply));
    return;
  }
  if (msg.ttl <= 1) return;
  net::AbrLqMsg fwd = msg;
  fwd.topo_hops = topo;
  fwd.ttl = static_cast<std::int16_t>(msg.ttl - 1);
  host().send_control(net::make_control(net::kBroadcastId, fwd));
}

void AbrProtocol::on_lq_reply(const net::AbrLqReplyMsg& msg,
                              net::NodeId from) {
  const net::FlowKey flow = net::flow_key(msg.src, msg.dst);
  if (msg.origin == host().id()) {
    auto& e = entries_[flow];
    if (msg.bid != e.lq_bid) return;
    e.lq_candidates.push_back(
        Candidate{from, 0, 0, msg.join_hops_to_dst});
    return;
  }
  auto& e = entries_[flow];
  e.valid = true;
  e.downstream = from;
  e.hops_to_dst = static_cast<std::uint16_t>(msg.join_hops_to_dst + 1);
  e.repairing = false;
  const auto up = lq_upstream_.find(bid_key(msg.origin, msg.bid));
  if (up == lq_upstream_.end()) return;
  e.upstream = up->second;
  net::AbrLqReplyMsg fwd = msg;
  fwd.join_hops_to_dst = e.hops_to_dst;
  host().send_control(net::make_control(up->second, fwd));
}

void AbrProtocol::finish_local_query(net::FlowKey flow, std::uint32_t bid) {
  auto& e = entries_[flow];
  if (e.lq_bid != bid || !e.repairing) return;
  if (!e.lq_candidates.empty()) {
    const auto best = std::min_element(
        e.lq_candidates.begin(), e.lq_candidates.end(),
        [](const Candidate& a, const Candidate& b) {
          return a.topo_hops < b.topo_hops;
        });
    e.valid = true;
    e.downstream = best->first_hop;
    e.hops_to_dst = static_cast<std::uint16_t>(best->topo_hops + 1);
    e.repairing = false;
    e.lq_candidates.clear();
    host().count("abr.lq_success");
    host().trace_route("repaired", net::flow_src(flow), net::flow_dst(flow),
                       bid, static_cast<double>(e.hops_to_dst));
    flush_repair(flow);
    return;
  }
  e.lq_candidates.clear();
  e.repairing = false;
  backtrack(flow, e);
}

void AbrProtocol::backtrack(net::FlowKey flow, Entry& e) {
  if (net::flow_src(flow) == host().id()) {
    // Backtracked all the way: full rediscovery, keep the held packets.
    auto& s = source_state(flow);
    if (!s.discovering) begin_discovery(flow);
    return;
  }
  host().count("abr.rn");
  if (e.upstream != host().id()) {
    host().send_control(net::make_control(
        e.upstream,
        net::AbrRnMsg{net::flow_src(flow), net::flow_dst(flow), host().id()}));
  }
  // Packets held here cannot be salvaged once we give up the repair.
  if (auto it = repair_pending_.find(flow); it != repair_pending_.end()) {
    for (const auto& p : it->second.take_fresh(now(), nullptr)) {
      host().drop_data(p, stats::DropReason::kLinkBreak);
    }
  }
}

void AbrProtocol::on_rn(const net::AbrRnMsg& msg, net::NodeId from) {
  const net::FlowKey flow = net::flow_key(msg.src, msg.dst);
  const auto it = entries_.find(flow);
  if (it == entries_.end() || !it->second.valid ||
      it->second.downstream != from) {
    return;  // stale notification from an abandoned path
  }
  // Our downstream gave up; now it is our turn to repair locally.
  start_local_query(flow);
}

void AbrProtocol::flush_repair(net::FlowKey flow) {
  auto& e = entries_[flow];
  if (!e.valid) return;
  if (auto it = repair_pending_.find(flow); it != repair_pending_.end()) {
    const auto expired = [this](const net::DataPacket& p) {
      host().drop_data(p, stats::DropReason::kExpired);
    };
    for (auto& p : it->second.take_fresh(now(), expired)) {
      host().forward_data(std::move(p), e.downstream);
    }
  }
}

double AbrProtocol::table_load() const {
  double lf = history_.load_factor();
  lf = std::max(lf, neighbors_.load_factor());
  lf = std::max(lf, entries_.load_factor());
  lf = std::max(lf, sources_.load_factor());
  lf = std::max(lf, dests_.load_factor());
  lf = std::max(lf, repair_pending_.load_factor());
  lf = std::max(lf, bq_upstream_.load_factor());
  lf = std::max(lf, lq_upstream_.load_factor());
  return lf;
}

void AbrProtocol::on_link_break(net::NodeId neighbor,
                                std::vector<net::DataPacket> stranded) {
  host().count("abr.link_break");
  host().trace_route("link_break", host().id(), neighbor);
  // The broken association resets.
  neighbors_.erase(neighbor);

  for (auto& [flow, e] : entries_) {
    if ((!e.valid && !e.repairing) || e.downstream != neighbor) continue;
    if (net::flow_src(flow) == host().id() && e.hops_to_dst <= 1) {
      // Next hop was the destination itself: just rediscover.
      e.valid = false;
      auto& s = source_state(flow);
      if (!s.discovering) begin_discovery(flow);
      continue;
    }
    start_local_query(flow);
  }
  for (auto& p : stranded) {
    auto& e = entries_[p.key()];
    if (e.repairing) {
      buffer_for_repair(std::move(p));
    } else {
      host().drop_data(p, stats::DropReason::kLinkBreak);
    }
  }
}

void AbrProtocol::on_control(const net::ControlPacket& pkt, net::NodeId from) {
  if (std::get_if<net::AbrBeaconMsg>(&pkt.payload) != nullptr) {
    on_beacon(from);
  } else if (const auto* bq = std::get_if<net::AbrBqMsg>(&pkt.payload)) {
    on_bq(*bq, from);
  } else if (const auto* rep = std::get_if<net::AbrReplyMsg>(&pkt.payload)) {
    on_reply(*rep, from);
  } else if (const auto* lq = std::get_if<net::AbrLqMsg>(&pkt.payload)) {
    on_lq(*lq, from);
  } else if (const auto* lr = std::get_if<net::AbrLqReplyMsg>(&pkt.payload)) {
    on_lq_reply(*lr, from);
  } else if (const auto* rn = std::get_if<net::AbrRnMsg>(&pkt.payload)) {
    on_rn(*rn, from);
  }
}

}  // namespace rica::routing
