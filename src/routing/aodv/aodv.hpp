// AODV, as the paper uses it for comparison (§I, §III):
//   * pure on-demand: RREQ flood with per-(src,bid) dedup; each relay
//     remembers the upstream of the FIRST copy (reverse path);
//   * the destination answers only the first RREQ copy — "chooses the path
//     this RREQ has gone through although this route is usually not the
//     shortest one" — with a unicast RREP along the reverse path;
//   * topological hop metric; channel state is ignored entirely;
//   * no hello messages: link breaks surface through the data plane;
//   * on a break, stranded packets are discarded and a RERR travels to the
//     source, which re-floods.
#pragma once

#include <cstdint>

#include "routing/protocol.hpp"
#include "routing/tables.hpp"
#include "sim/timer.hpp"
#include "util/flat_table.hpp"

namespace rica::routing {

/// Tunables for the AODV comparator.
struct AodvConfig {
  sim::Time discovery_timeout = sim::milliseconds(200);  ///< RREP wait
  int max_discovery_attempts = 3;      ///< per packet burst before giving up
  std::size_t pending_cap = 10;        ///< source-side packets awaiting route
  sim::Time pending_residency = sim::seconds(3);
  std::int16_t rreq_ttl = 16;          ///< flood scope (network diameter)
  sim::Time route_expiry = sim::seconds(3);  ///< active-route timeout
  /// Random broadcast-forwarding jitter (standard in AODV implementations
  /// to de-synchronize rebroadcasts).  It also means the first RREQ copy
  /// the destination hears travelled a random tree, not the shortest path —
  /// the paper: "chooses the path this RREQ has gone through although this
  /// route is usually not the shortest one".
  sim::Time forward_jitter_max = sim::milliseconds(5);
};

class AodvProtocol final : public Protocol {
 public:
  AodvProtocol(ProtocolHost& host, const AodvConfig& cfg = {});

  void handle_data(net::DataPacket pkt, net::NodeId from) override;
  void on_control(const net::ControlPacket& pkt, net::NodeId from) override;
  void on_link_break(net::NodeId neighbor,
                     std::vector<net::DataPacket> stranded) override;
  [[nodiscard]] std::string_view name() const override { return "AODV"; }
  [[nodiscard]] double table_load() const override;

  /// Forwarding entry for `dst`, if valid and fresh (exposed for tests).
  [[nodiscard]] std::optional<net::NodeId> next_hop(net::NodeId dst) const;

 private:
  struct Route {
    net::NodeId next = 0;
    std::uint16_t hops = 0;
    bool valid = false;
    sim::Time last_used{};
  };
  struct ReversePath {
    net::NodeId upstream = 0;
    std::uint16_t hops_from_src = 0;
  };
  struct Discovery {
    bool in_progress = false;
    std::uint32_t bid = 0;
    int attempts = 0;
    sim::Timer timeout;  ///< RREP wait deadline; cancelled when a reply lands
    PendingBuffer pending;
    explicit Discovery(const AodvConfig& cfg)
        : pending(cfg.pending_cap, cfg.pending_residency) {}
  };

  [[nodiscard]] sim::Time now() const;
  void begin_discovery(net::NodeId dst);
  void send_rreq(net::NodeId dst);
  void on_rreq(const net::AodvRreqMsg& msg, net::NodeId from);
  void on_rrep(const net::AodvRrepMsg& msg, net::NodeId from);
  void on_rerr(const net::AodvRerrMsg& msg, net::NodeId from);
  void flush_pending(net::NodeId dst);
  void drop_pkt(const net::DataPacket& pkt, stats::DropReason r);

  AodvConfig cfg_;
  HistoryTable history_;
  util::FlatMap64<Route> routes_;         // dst -> entry
  util::FlatMap64<ReversePath> reverse_;  // (src,bid)
  util::FlatMap64<Discovery> discovery_;  // dst -> state
  // Upstream of the most recent data packet per destination; RERRs retrace
  // this path toward the source (a light-weight precursor list).
  util::FlatMap64<net::NodeId> precursor_;
  std::uint32_t next_bid_ = 1;
};

}  // namespace rica::routing
