#include "routing/aodv/aodv.hpp"

#include <algorithm>
#include <utility>

namespace rica::routing {

namespace {
constexpr std::uint8_t kTagRreq = 1;

constexpr std::uint64_t rreq_key(net::NodeId src, std::uint32_t bid) {
  return (static_cast<std::uint64_t>(src) << 32) | bid;
}
}  // namespace

AodvProtocol::AodvProtocol(ProtocolHost& host, const AodvConfig& cfg)
    : Protocol(host), cfg_(cfg) {}

sim::Time AodvProtocol::now() const {
  // ProtocolHost::simulator() is non-const; reading the clock is logically
  // const.
  return const_cast<AodvProtocol*>(this)->host().simulator().now();
}

std::optional<net::NodeId> AodvProtocol::next_hop(net::NodeId dst) const {
  const auto it = routes_.find(dst);
  if (it == routes_.end() || !it->second.valid) return std::nullopt;
  if (now() - it->second.last_used > cfg_.route_expiry) return std::nullopt;
  return it->second.next;
}

void AodvProtocol::drop_pkt(const net::DataPacket& pkt, stats::DropReason r) {
  host().drop_data(pkt, r);
}

void AodvProtocol::handle_data(net::DataPacket pkt, net::NodeId from) {
  if (pkt.dst == host().id()) {
    host().deliver_local(pkt);
    return;
  }
  if (from != host().id()) precursor_[pkt.dst] = from;
  const auto nh = next_hop(pkt.dst);
  if (nh) {
    auto& route = routes_.at(pkt.dst);
    route.last_used = now();
    host().forward_data(std::move(pkt), *nh);
    return;
  }
  if (from != host().id()) {
    // Transit node without a route: the entry was invalidated while the
    // packet was in flight (paper: packets on a broken route are discarded).
    // Tell the upstream so the source learns and re-discovers.
    drop_pkt(pkt, stats::DropReason::kNoRoute);
    host().send_control(net::make_control(
        from, net::AodvRerrMsg{pkt.src, pkt.dst, host().id()}));
    return;
  }
  const net::NodeId dst = pkt.dst;
  auto [it, inserted] = discovery_.try_emplace(dst, cfg_);
  if (!it->second.pending.push(std::move(pkt), host().simulator().now())) {
    drop_pkt(pkt, stats::DropReason::kBufferOverflow);
  }
  if (!it->second.in_progress) begin_discovery(dst);
}

void AodvProtocol::begin_discovery(net::NodeId dst) {
  auto& d = discovery_.at(dst);
  d.in_progress = true;
  d.attempts = 1;
  host().count("aodv.discovery");
  host().trace_route("discovery_start", host().id(), dst);
  send_rreq(dst);
}

void AodvProtocol::send_rreq(net::NodeId dst) {
  auto& d = discovery_.at(dst);
  const std::uint32_t bid = next_bid_++;
  d.bid = bid;
  history_.seen_or_insert(host().id(), bid, kTagRreq);  // ignore echoes
  host().send_control(net::make_control(
      net::kBroadcastId, net::AodvRreqMsg{host().id(), dst, bid, 0}));

  d.timeout.arm_after(
      host().simulator(), cfg_.discovery_timeout, [this, dst, bid] {
    auto it = discovery_.find(dst);
    if (it == discovery_.end()) return;
    auto& disc = it->second;
    if (!disc.in_progress || disc.bid != bid) return;  // answered already
    disc.pending.purge_expired(host().simulator().now(),
                               [this](const net::DataPacket& p) {
                                 drop_pkt(p, stats::DropReason::kExpired);
                               });
    if (disc.pending.empty()) {
      disc.in_progress = false;
      return;
    }
    if (disc.attempts >= cfg_.max_discovery_attempts) {
      auto fresh = disc.pending.take_fresh(host().simulator().now(), nullptr);
      for (const auto& p : fresh) drop_pkt(p, stats::DropReason::kNoRoute);
      disc.in_progress = false;
      host().trace_route("discovery_failed", host().id(), dst, bid);
      return;
    }
    ++disc.attempts;
    host().trace_route("discovery_retry", host().id(), dst, bid);
    send_rreq(dst);
  });
}

void AodvProtocol::on_control(const net::ControlPacket& pkt,
                              net::NodeId from) {
  if (const auto* rreq = std::get_if<net::AodvRreqMsg>(&pkt.payload)) {
    on_rreq(*rreq, from);
  } else if (const auto* rrep = std::get_if<net::AodvRrepMsg>(&pkt.payload)) {
    on_rrep(*rrep, from);
  } else if (const auto* rerr = std::get_if<net::AodvRerrMsg>(&pkt.payload)) {
    on_rerr(*rerr, from);
  }
}

void AodvProtocol::on_rreq(const net::AodvRreqMsg& msg, net::NodeId from) {
  if (msg.src == host().id()) return;  // our own flood echoed back
  if (history_.seen_or_insert(msg.src, msg.bid, kTagRreq)) return;
  reverse_[rreq_key(msg.src, msg.bid)] =
      ReversePath{from, static_cast<std::uint16_t>(msg.hops + 1)};

  if (msg.dst == host().id()) {
    // Paper: "the destination responds only the first RREQ and chooses the
    // path this RREQ has gone through".  Dedup above enforces "first".
    host().send_control(net::make_control(
        from, net::AodvRrepMsg{msg.src, msg.dst, msg.bid, 0}));
    return;
  }
  if (msg.hops + 1 >= cfg_.rreq_ttl) return;  // flood scope exhausted
  net::AodvRreqMsg fwd = msg;
  fwd.hops = static_cast<std::uint16_t>(msg.hops + 1);
  const auto jitter = sim::Time{static_cast<std::int64_t>(
      host().protocol_rng().uniform(
          0.0, static_cast<double>(cfg_.forward_jitter_max.nanos())))};
  host().simulator().after(jitter, [this, fwd] {
    host().send_control(net::make_control(net::kBroadcastId, fwd));
  });
}

void AodvProtocol::on_rrep(const net::AodvRrepMsg& msg, net::NodeId from) {
  // The RREP travels dst -> src; receiving it from `from` makes `from` our
  // next hop toward the destination.
  routes_[msg.dst] =
      Route{from, static_cast<std::uint16_t>(msg.hops + 1), true, now()};

  if (msg.src == host().id()) {
    host().trace_route("established", msg.src, msg.dst, msg.bid,
                       static_cast<double>(msg.hops + 1));
    flush_pending(msg.dst);
    return;
  }
  const auto it = reverse_.find(rreq_key(msg.src, msg.bid));
  if (it == reverse_.end()) return;  // reverse path evaporated
  net::AodvRrepMsg fwd = msg;
  fwd.hops = static_cast<std::uint16_t>(msg.hops + 1);
  host().send_control(net::make_control(it->second.upstream, fwd));
}

void AodvProtocol::on_rerr(const net::AodvRerrMsg& msg, net::NodeId from) {
  const auto it = routes_.find(msg.dst);
  // Only meaningful if it arrives from our live downstream for this
  // destination; stale reports from abandoned paths are ignored.
  if (it == routes_.end() || !it->second.valid || it->second.next != from) {
    return;
  }
  it->second.valid = false;
  const auto pre = precursor_.find(msg.dst);
  if (pre != precursor_.end() && pre->second != host().id()) {
    host().send_control(net::make_control(pre->second, msg));
  }
  // If we are a source with packets still arriving for this destination,
  // the next handle_data() will kick off a fresh discovery.
}

void AodvProtocol::flush_pending(net::NodeId dst) {
  const auto it = discovery_.find(dst);
  if (it == discovery_.end()) return;
  auto& d = it->second;
  d.in_progress = false;
  d.timeout.cancel();
  const auto nh = next_hop(dst);
  auto fresh = d.pending.take_fresh(host().simulator().now(),
                                    [this](const net::DataPacket& p) {
                                      drop_pkt(p, stats::DropReason::kExpired);
                                    });
  for (auto& p : fresh) {
    if (nh) {
      host().forward_data(std::move(p), *nh);
    } else {
      drop_pkt(p, stats::DropReason::kNoRoute);
    }
  }
}

double AodvProtocol::table_load() const {
  double lf = history_.load_factor();
  lf = std::max(lf, routes_.load_factor());
  lf = std::max(lf, reverse_.load_factor());
  lf = std::max(lf, discovery_.load_factor());
  lf = std::max(lf, precursor_.load_factor());
  return lf;
}

void AodvProtocol::on_link_break(net::NodeId neighbor,
                                 std::vector<net::DataPacket> stranded) {
  host().count("aodv.link_break");
  host().trace_route("link_break", host().id(), neighbor);
  // Paper: "packets in the original broken route usually is discarded".
  for (const auto& p : stranded) drop_pkt(p, stats::DropReason::kLinkBreak);
  for (auto& [dst, route] : routes_) {
    if (!route.valid || route.next != neighbor) continue;
    route.valid = false;
    const auto pre = precursor_.find(dst);
    if (pre != precursor_.end() && pre->second != host().id()) {
      host().send_control(net::make_control(
          pre->second,
          net::AodvRerrMsg{0, static_cast<net::NodeId>(dst), host().id()}));
    }
  }
}

}  // namespace rica::routing
