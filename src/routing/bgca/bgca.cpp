#include "routing/bgca/bgca.hpp"

#include <algorithm>
#include <utility>

namespace rica::routing {

namespace {
constexpr std::uint8_t kTagRreq = 1;
constexpr std::uint8_t kTagLq = 2;

constexpr std::uint64_t bid_key(net::NodeId origin, std::uint32_t bid) {
  return (static_cast<std::uint64_t>(origin) << 32) | bid;
}
}  // namespace

BgcaProtocol::BgcaProtocol(ProtocolHost& host, const BgcaConfig& cfg)
    : Protocol(host), cfg_(cfg) {}

sim::Time BgcaProtocol::now() const {
  return const_cast<BgcaProtocol*>(this)->host().simulator().now();
}

sim::Time BgcaProtocol::forward_jitter(channel::CsiClass cls) {
  const double excess = channel::csi_hop_distance(cls) - 1.0;
  const double dither = host().protocol_rng().uniform(0.0, 0.5e6);
  return sim::Time{static_cast<std::int64_t>(
             excess * static_cast<double>(cfg_.csi_jitter.nanos()) + dither)};
}

BgcaProtocol::SourceState& BgcaProtocol::source_state(net::FlowKey flow) {
  auto it = sources_.find(flow);
  if (it == sources_.end()) it = sources_.emplace(flow, SourceState{cfg_}).first;
  return it->second;
}

std::optional<net::NodeId> BgcaProtocol::downstream(net::FlowKey flow) const {
  const auto it = entries_.find(flow);
  if (it == entries_.end() || !it->second.valid) return std::nullopt;
  return it->second.downstream;
}

void BgcaProtocol::start() {
  // Desynchronize the monitors across nodes.
  const auto phase = sim::Time{static_cast<std::int64_t>(
      host().protocol_rng().uniform(0.0,
                                    static_cast<double>(cfg_.monitor_period.nanos())))};
  monitor_timer_.arm_after(host().simulator(), phase,
                           [this] { monitor_links(); });
}

// ---------------------------------------------------------------------------
// Data plane
// ---------------------------------------------------------------------------

void BgcaProtocol::handle_data(net::DataPacket pkt, net::NodeId from) {
  const net::FlowKey flow = pkt.key();
  if (pkt.dst == host().id()) {
    host().deliver_local(pkt);
    return;
  }

  auto& e = entries_[flow];
  if (from == host().id()) {  // source
    if (e.valid || e.repairing) {
      forward_or_drop(std::move(pkt), e);
      return;
    }
    auto& s = source_state(flow);
    if (!s.pending.push(std::move(pkt), now())) {
      host().count("bgca.pending_overflow");
    }
    if (!s.discovering) begin_discovery(flow);
    return;
  }

  e.upstream = from;
  forward_or_drop(std::move(pkt), e);
}

void BgcaProtocol::forward_or_drop(net::DataPacket pkt, Entry& e) {
  if (e.repairing) {
    // Hold arriving traffic while the local query runs; the paper's local
    // repair is exactly what builds queues at the repairing terminal.
    auto it = repair_pending_.find(pkt.key());
    if (it == repair_pending_.end()) {
      it = repair_pending_
               .emplace(pkt.key(),
                        PendingBuffer{cfg_.pending_cap, cfg_.pending_residency})
               .first;
    }
    if (it->second.size() >= it->second.capacity()) {
      host().drop_data(pkt, stats::DropReason::kBufferOverflow);
      return;
    }
    it->second.push(std::move(pkt), now());
    return;
  }
  if (!e.valid) {
    host().drop_data(pkt, stats::DropReason::kNoRoute);
    return;
  }
  host().forward_data(std::move(pkt), e.downstream);
}

// ---------------------------------------------------------------------------
// Discovery (same CSI-hop flood as RICA)
// ---------------------------------------------------------------------------

void BgcaProtocol::begin_discovery(net::FlowKey flow) {
  auto& s = source_state(flow);
  s.discovering = true;
  s.attempts = 1;
  host().count("bgca.discovery");
  host().trace_route("discovery_start", net::flow_src(flow),
                     net::flow_dst(flow));
  send_rreq(flow);
}

void BgcaProtocol::send_rreq(net::FlowKey flow) {
  auto& s = source_state(flow);
  const std::uint32_t bid = next_bid_++;
  s.bid = bid;
  history_.seen_or_insert(host().id(), bid, kTagRreq);
  host().send_control(net::make_control(
      net::kBroadcastId,
      net::RreqMsg{net::flow_src(flow), net::flow_dst(flow), bid, 0.0, 0}));

  s.discovery_timer.arm_after(
      host().simulator(), cfg_.discovery_timeout, [this, flow, bid] {
    auto& st = source_state(flow);
    if (!st.discovering || st.bid != bid) return;
    st.pending.purge_expired(now(), [this](const net::DataPacket& p) {
      host().drop_data(p, stats::DropReason::kExpired);
    });
    if (st.pending.empty()) {
      st.discovering = false;
      return;
    }
    if (st.attempts >= cfg_.max_discovery_attempts) {
      for (const auto& p : st.pending.take_fresh(now(), nullptr)) {
        host().drop_data(p, stats::DropReason::kNoRoute);
      }
      st.discovering = false;
      host().trace_route("discovery_failed", net::flow_src(flow),
                         net::flow_dst(flow), bid);
      return;
    }
    ++st.attempts;
    host().trace_route("discovery_retry", net::flow_src(flow),
                       net::flow_dst(flow), bid);
    send_rreq(flow);
  });
}

void BgcaProtocol::on_rreq(const net::RreqMsg& msg, net::NodeId from) {
  if (msg.src == host().id()) return;
  const auto cls = host().link_csi(from);
  if (!cls) return;

  const double csi_hops = msg.csi_hops + channel::csi_hop_distance(*cls);
  const auto topo = static_cast<std::uint16_t>(msg.topo_hops + 1);

  if (msg.dst == host().id()) {
    // Every arriving copy is a route candidate (duplicate suppression only
    // governs relay forwarding), mirroring RICA's discovery.
    const net::FlowKey flow = net::flow_key(msg.src, msg.dst);
    auto& d = dests_[flow];
    if (!d.window_open || d.window_bid != msg.bid) {
      d.window_open = true;
      d.window_bid = msg.bid;
      d.window_candidates.clear();
      host().simulator().after(cfg_.dest_wait,
                               [this, flow] { close_dest_window(flow); });
    }
    d.window_candidates.push_back(Candidate{from, csi_hops, topo});
    return;
  }
  if (history_.seen_or_insert(msg.src, msg.bid, kTagRreq)) return;
  rreq_upstream_[bid_key(msg.src, msg.bid)] = from;
  if (topo >= cfg_.rreq_ttl) return;
  net::RreqMsg fwd = msg;
  fwd.csi_hops = csi_hops;
  fwd.topo_hops = topo;
  host().simulator().after(forward_jitter(*cls), [this, fwd] {
    host().send_control(net::make_control(net::kBroadcastId, fwd));
  });
}

void BgcaProtocol::close_dest_window(net::FlowKey flow) {
  auto& d = dests_[flow];
  if (!d.window_open) return;
  d.window_open = false;
  if (d.window_candidates.empty()) return;
  const auto best = std::min_element(
      d.window_candidates.begin(), d.window_candidates.end(),
      [](const Candidate& a, const Candidate& b) {
        return a.csi_hops < b.csi_hops;
      });
  host().send_control(net::make_control(
      best->first_hop,
      net::RrepMsg{net::flow_src(flow), net::flow_dst(flow), d.window_bid,
                   best->csi_hops, 0}));
  d.window_candidates.clear();
}

void BgcaProtocol::on_rrep(const net::RrepMsg& msg, net::NodeId from) {
  const net::FlowKey flow = net::flow_key(msg.src, msg.dst);
  auto& e = entries_[flow];
  e.valid = true;
  e.downstream = from;
  e.hops_to_dst = static_cast<std::uint16_t>(msg.topo_hops + 1);
  e.repairing = false;

  if (msg.src == host().id()) {
    auto& s = source_state(flow);
    s.discovering = false;
    s.discovery_timer.cancel();
    host().trace_route("established", msg.src, msg.dst, msg.bid,
                       msg.csi_hops);
    flush_pending(flow);
    return;
  }
  const auto up = rreq_upstream_.find(bid_key(msg.src, msg.bid));
  if (up == rreq_upstream_.end()) return;
  e.upstream = up->second;
  net::RrepMsg fwd = msg;
  fwd.topo_hops = static_cast<std::uint16_t>(msg.topo_hops + 1);
  host().send_control(net::make_control(up->second, fwd));
}

void BgcaProtocol::flush_pending(net::FlowKey flow) {
  auto& e = entries_[flow];
  if (!e.valid) return;
  const auto expired = [this](const net::DataPacket& p) {
    host().drop_data(p, stats::DropReason::kExpired);
  };
  if (auto it = sources_.find(flow); it != sources_.end()) {
    for (auto& p : it->second.pending.take_fresh(now(), expired)) {
      host().forward_data(std::move(p), e.downstream);
    }
  }
  if (auto it = repair_pending_.find(flow); it != repair_pending_.end()) {
    for (auto& p : it->second.take_fresh(now(), expired)) {
      host().forward_data(std::move(p), e.downstream);
    }
  }
}

// ---------------------------------------------------------------------------
// The bandwidth guard (the "BG" in BGCA)
// ---------------------------------------------------------------------------

void BgcaProtocol::monitor_links() {
  for (auto& [flow, e] : entries_) {
    if (!e.valid || e.repairing) continue;
    if (net::flow_dst(flow) == host().id()) continue;
    if (now() - e.last_lq < cfg_.lq_cooldown) continue;
    const auto cls = host().link_csi(e.downstream);
    if (!cls) continue;  // range exit is the data plane's business
    if (channel::throughput_bps(*cls) < requirement_bps()) {
      // Only a *persistent* deficiency (deep fade) triggers the repair; a
      // single sub-period flicker does not (the paper calls BGCA
      // deliberately "passive").
      if (++e.strikes >= cfg_.guard_strikes) {
        e.strikes = 0;
        host().count("bgca.guard_trigger");
        start_local_query(flow, /*broken=*/false);
      }
    } else {
      e.strikes = 0;
    }
  }
  monitor_timer_.arm_after(host().simulator(), cfg_.monitor_period,
                           [this] { monitor_links(); });
}

void BgcaProtocol::start_local_query(net::FlowKey flow, bool broken) {
  auto& e = entries_[flow];
  if (e.repairing) return;
  e.repairing = broken;  // keep using a degraded (but live) link meanwhile
  e.last_lq = now();
  const std::uint32_t bid = next_bid_++;
  e.lq_bid = bid;
  e.lq_candidates.clear();
  history_.seen_or_insert(host().id(), bid, kTagLq);
  host().count("bgca.lq");
  host().trace_route("repair_start", net::flow_src(flow), net::flow_dst(flow),
                     bid);

  net::BgcaLqMsg msg;
  msg.origin = host().id();
  msg.src = net::flow_src(flow);
  msg.dst = net::flow_dst(flow);
  msg.bid = bid;
  msg.ttl = cfg_.lq_ttl;
  msg.csi_hops = 0.0;
  msg.topo_hops = 0;
  msg.origin_hops_to_dst = e.hops_to_dst;
  host().send_control(net::make_control(net::kBroadcastId, msg));

  e.lq_timer.arm_after(host().simulator(), cfg_.lq_timeout,
                       [this, flow, bid] { finish_local_query(flow, bid); });
}

void BgcaProtocol::on_lq(const net::BgcaLqMsg& msg, net::NodeId from) {
  if (msg.origin == host().id()) return;
  const auto cls = host().link_csi(from);
  if (!cls) return;
  if (history_.seen_or_insert(msg.origin, msg.bid, kTagLq)) return;

  const double csi_hops = msg.csi_hops + channel::csi_hop_distance(*cls);
  const auto topo = static_cast<std::uint16_t>(msg.topo_hops + 1);
  lq_upstream_[bid_key(msg.origin, msg.bid)] = from;

  const net::FlowKey flow = net::flow_key(msg.src, msg.dst);
  const auto it = entries_.find(flow);
  const bool is_dst = msg.dst == host().id();
  // Join eligibility: we must be strictly closer to the destination than the
  // querying terminal, on a live path (prevents splicing a loop).
  const bool on_path = it != entries_.end() && it->second.valid &&
                       !it->second.repairing &&
                       it->second.hops_to_dst < msg.origin_hops_to_dst;
  if (is_dst || on_path) {
    net::BgcaLqReplyMsg reply;
    reply.origin = msg.origin;
    reply.src = msg.src;
    reply.dst = msg.dst;
    reply.bid = msg.bid;
    reply.csi_hops = csi_hops;
    reply.join_hops_to_dst = is_dst ? 0 : it->second.hops_to_dst;
    reply.join = host().id();
    host().send_control(net::make_control(from, reply));
    return;
  }
  if (msg.ttl <= 1) return;
  net::BgcaLqMsg fwd = msg;
  fwd.csi_hops = csi_hops;
  fwd.topo_hops = topo;
  fwd.ttl = static_cast<std::int16_t>(msg.ttl - 1);
  host().simulator().after(forward_jitter(*cls), [this, fwd] {
    host().send_control(net::make_control(net::kBroadcastId, fwd));
  });
}

void BgcaProtocol::on_lq_reply(const net::BgcaLqReplyMsg& msg,
                               net::NodeId from) {
  const net::FlowKey flow = net::flow_key(msg.src, msg.dst);
  if (msg.origin == host().id()) {
    auto& e = entries_[flow];
    if (msg.bid != e.lq_bid) return;  // stale reply of an older query
    e.lq_candidates.push_back(
        Candidate{from, msg.csi_hops, msg.join_hops_to_dst});
    return;
  }
  // A relay on the reply path becomes part of the spliced partial route.
  auto& e = entries_[flow];
  e.valid = true;
  e.downstream = from;
  e.hops_to_dst = static_cast<std::uint16_t>(msg.join_hops_to_dst + 1);
  e.repairing = false;
  const auto up = lq_upstream_.find(bid_key(msg.origin, msg.bid));
  if (up == lq_upstream_.end()) return;
  e.upstream = up->second;
  net::BgcaLqReplyMsg fwd = msg;
  fwd.join_hops_to_dst = e.hops_to_dst;
  host().send_control(net::make_control(up->second, fwd));
}

void BgcaProtocol::finish_local_query(net::FlowKey flow, std::uint32_t bid) {
  auto& e = entries_[flow];
  if (e.lq_bid != bid) return;
  if (!e.lq_candidates.empty()) {
    const auto best = std::min_element(
        e.lq_candidates.begin(), e.lq_candidates.end(),
        [](const Candidate& a, const Candidate& b) {
          return a.csi_hops < b.csi_hops;
        });
    e.valid = true;
    e.downstream = best->first_hop;
    e.hops_to_dst = static_cast<std::uint16_t>(best->topo_hops + 1);
    e.repairing = false;
    e.lq_candidates.clear();
    host().count("bgca.lq_success");
    host().trace_route("repaired", net::flow_src(flow), net::flow_dst(flow),
                       bid, static_cast<double>(e.hops_to_dst));
    flush_pending(flow);
    return;
  }
  e.lq_candidates.clear();
  if (e.repairing) {
    // The link is gone and local repair failed: escalate.
    e.repairing = false;
    e.valid = false;
    escalate_to_source(flow, e);
  }
  // A guard-triggered (link still alive) query that found nothing simply
  // keeps the degraded route; the cooldown throttles the next attempt.
}

void BgcaProtocol::escalate_to_source(net::FlowKey flow, Entry& e) {
  if (net::flow_src(flow) == host().id()) {
    auto& s = source_state(flow);
    if (!s.discovering) begin_discovery(flow);
    return;
  }
  if (e.upstream != host().id()) {
    host().send_control(net::make_control(
        e.upstream,
        net::ReerMsg{net::flow_src(flow), net::flow_dst(flow), host().id()}));
  }
  // Whatever was held for repair dies with the failed route.
  if (auto it = repair_pending_.find(flow); it != repair_pending_.end()) {
    for (const auto& p : it->second.take_fresh(now(), nullptr)) {
      host().drop_data(p, stats::DropReason::kLinkBreak);
    }
  }
}

void BgcaProtocol::on_reer(const net::ReerMsg& msg, net::NodeId from) {
  const net::FlowKey flow = net::flow_key(msg.src, msg.dst);
  const auto it = entries_.find(flow);
  if (it == entries_.end() || !it->second.valid ||
      it->second.downstream != from) {
    return;  // stale report from an abandoned route
  }
  it->second.valid = false;
  if (msg.src == host().id()) {
    auto& s = source_state(flow);
    if (!s.discovering) begin_discovery(flow);
    return;
  }
  if (it->second.upstream != host().id()) {
    host().send_control(net::make_control(
        it->second.upstream, net::ReerMsg{msg.src, msg.dst, host().id()}));
  }
}

double BgcaProtocol::table_load() const {
  double lf = history_.load_factor();
  lf = std::max(lf, entries_.load_factor());
  lf = std::max(lf, sources_.load_factor());
  lf = std::max(lf, dests_.load_factor());
  lf = std::max(lf, repair_pending_.load_factor());
  lf = std::max(lf, rreq_upstream_.load_factor());
  lf = std::max(lf, lq_upstream_.load_factor());
  return lf;
}

void BgcaProtocol::on_link_break(net::NodeId neighbor,
                                 std::vector<net::DataPacket> stranded) {
  host().count("bgca.link_break");
  host().trace_route("link_break", host().id(), neighbor);
  for (auto& [flow, e] : entries_) {
    if (!e.valid || e.downstream != neighbor) continue;
    e.valid = false;
    // Local repair first; stranded packets wait in the repair buffer.
    start_local_query(flow, /*broken=*/true);
  }
  for (auto& p : stranded) {
    auto& e = entries_[p.key()];
    if (!e.repairing) {
      host().drop_data(p, stats::DropReason::kLinkBreak);
      continue;
    }
    auto it = repair_pending_.find(p.key());
    if (it == repair_pending_.end()) {
      it = repair_pending_
               .emplace(p.key(), PendingBuffer{cfg_.pending_cap,
                                               cfg_.pending_residency})
               .first;
    }
    if (it->second.size() >= it->second.capacity()) {
      host().drop_data(p, stats::DropReason::kBufferOverflow);
    } else {
      it->second.push(std::move(p), now());
    }
  }
}

void BgcaProtocol::on_control(const net::ControlPacket& pkt,
                              net::NodeId from) {
  if (const auto* rreq = std::get_if<net::RreqMsg>(&pkt.payload)) {
    on_rreq(*rreq, from);
  } else if (const auto* rrep = std::get_if<net::RrepMsg>(&pkt.payload)) {
    on_rrep(*rrep, from);
  } else if (const auto* lq = std::get_if<net::BgcaLqMsg>(&pkt.payload)) {
    on_lq(*lq, from);
  } else if (const auto* rep = std::get_if<net::BgcaLqReplyMsg>(&pkt.payload)) {
    on_lq_reply(*rep, from);
  } else if (const auto* reer = std::get_if<net::ReerMsg>(&pkt.payload)) {
    on_reer(*reer, from);
  }
}

}  // namespace rica::routing
