// BGCA — Bandwidth-Guarded Channel-Adaptive routing [13], as characterized
// in the RICA paper (§I, §III):
//   * discovery is source-initiated with the same CSI-hop metric as RICA
//     (the destination picks the CSI-shortest RREQ copy);
//   * the protocol is "passive/reactive": it leaves a working route alone
//     and acts only when a link's class throughput falls below the flow's
//     bandwidth requirement (deep fade) or the link breaks outright;
//   * the repair is local: the upstream terminal of the offending link
//     issues a TTL-bounded local query (LQ) for a partial route that
//     rejoins the flow's live downstream path (or the destination), and
//     splices the best reply in;
//   * failed local repair escalates to the source, which re-floods.
#pragma once

#include <cstdint>
#include <vector>

#include "routing/protocol.hpp"
#include "routing/tables.hpp"
#include "sim/timer.hpp"
#include "util/flat_table.hpp"

namespace rica::routing {

/// BGCA tunables.  `flow_rate_bps` must be set by the harness from the
/// offered traffic so the bandwidth guard has a requirement to enforce.
struct BgcaConfig {
  double flow_rate_bps = 41'000.0;     ///< offered bits/s per flow
  double bandwidth_factor = 1.5;       ///< requirement = factor * flow rate
                                       ///< (1.5 x 41 kbps puts class D below
                                       ///< the bar at 10 pkt/s, and C at 20)
  sim::Time monitor_period = sim::milliseconds(500);
  int guard_strikes = 3;  ///< consecutive below-requirement samples before a
                          ///< local query (filters sub-period fade flickers)
  sim::Time lq_timeout = sim::milliseconds(100);
  sim::Time lq_cooldown = sim::seconds(2);
  std::int16_t lq_ttl = 3;
  sim::Time dest_wait = sim::milliseconds(40);
  sim::Time discovery_timeout = sim::milliseconds(200);
  int max_discovery_attempts = 3;
  std::int16_t rreq_ttl = 16;
  std::size_t pending_cap = 10;
  sim::Time pending_residency = sim::seconds(3);
  sim::Time csi_jitter = sim::milliseconds(10);  ///< CSI-aware flood jitter
};

class BgcaProtocol final : public Protocol {
 public:
  BgcaProtocol(ProtocolHost& host, const BgcaConfig& cfg = {});

  void start() override;
  void handle_data(net::DataPacket pkt, net::NodeId from) override;
  void on_control(const net::ControlPacket& pkt, net::NodeId from) override;
  void on_link_break(net::NodeId neighbor,
                     std::vector<net::DataPacket> stranded) override;
  [[nodiscard]] std::string_view name() const override { return "BGCA"; }
  [[nodiscard]] double table_load() const override;

  /// The bandwidth requirement the guard enforces, bits/s.
  [[nodiscard]] double requirement_bps() const {
    return cfg_.bandwidth_factor * cfg_.flow_rate_bps;
  }

  // -- white-box accessors for tests ----------------------------------------
  [[nodiscard]] std::optional<net::NodeId> downstream(net::FlowKey flow) const;

 private:
  struct Candidate {
    net::NodeId first_hop = 0;
    double csi_hops = 0.0;
    std::uint16_t topo_hops = 0;
  };
  /// Per-flow routing state; a node is source, relay, or both (never for the
  /// same flow).  `hops_to_dst` feeds the LQ join-eligibility loop guard.
  struct Entry {
    bool valid = false;
    net::NodeId upstream = 0;
    net::NodeId downstream = 0;
    std::uint16_t hops_to_dst = 0;
    // local repair
    bool repairing = false;
    std::uint32_t lq_bid = 0;
    sim::Timer lq_timer;  ///< local-query deadline for this entry
    sim::Time last_lq{};
    int strikes = 0;  ///< consecutive guard violations observed
    std::vector<Candidate> lq_candidates;  // topo_hops = join's hops to dst
  };
  struct SourceState {
    bool discovering = false;
    std::uint32_t bid = 0;
    int attempts = 0;
    sim::Timer discovery_timer;  ///< RREQ retry deadline; cancelled on reply
    PendingBuffer pending;
    explicit SourceState(const BgcaConfig& cfg)
        : pending(cfg.pending_cap, cfg.pending_residency) {}
  };
  struct DestState {
    bool window_open = false;
    std::uint32_t window_bid = 0;
    std::vector<Candidate> window_candidates;
  };

  void begin_discovery(net::FlowKey flow);
  void send_rreq(net::FlowKey flow);
  void monitor_links();
  void start_local_query(net::FlowKey flow, bool broken);
  void finish_local_query(net::FlowKey flow, std::uint32_t bid);

  void on_rreq(const net::RreqMsg& msg, net::NodeId from);
  void on_rrep(const net::RrepMsg& msg, net::NodeId from);
  void on_lq(const net::BgcaLqMsg& msg, net::NodeId from);
  void on_lq_reply(const net::BgcaLqReplyMsg& msg, net::NodeId from);
  void on_reer(const net::ReerMsg& msg, net::NodeId from);
  void close_dest_window(net::FlowKey flow);

  void escalate_to_source(net::FlowKey flow, Entry& e);
  void flush_pending(net::FlowKey flow);
  void forward_or_drop(net::DataPacket pkt, Entry& e);

  [[nodiscard]] sim::Time now() const;
  [[nodiscard]] sim::Time forward_jitter(channel::CsiClass cls);
  SourceState& source_state(net::FlowKey flow);

  BgcaConfig cfg_;
  HistoryTable history_;
  sim::Timer monitor_timer_;  ///< the periodic bandwidth-guard sweep
  util::FlatMap64<Entry> entries_;
  util::FlatMap64<SourceState> sources_;
  util::FlatMap64<DestState> dests_;
  util::FlatMap64<PendingBuffer> repair_pending_;
  util::FlatMap64<net::NodeId> rreq_upstream_;
  util::FlatMap64<net::NodeId> lq_upstream_;
  std::uint32_t next_bid_ = 1;
};

}  // namespace rica::routing
