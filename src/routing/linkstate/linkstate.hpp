// Link-state baseline (paper §III-A):
//   * at t = 0 every terminal is handed an accurate view of the whole
//     topology, including link CSI classes (the paper installs exactly this
//     oracle snapshot — it is deliberately generous to link state);
//   * each terminal senses its own links periodically; any change of
//     neighbour set or CSI class triggers a sequence-numbered LSU flooded
//     through the common channel;
//   * forwarding runs Dijkstra over the terminal's *current* view with
//     CSI hop-distance costs (the paper notes Dijkstra's preference for
//     high-throughput links, Fig. 5(a));
//   * under mobility, flooding saturates the common channel, LSUs collide
//     and queue-drop, views diverge, and routing loops form — producing the
//     paper's delay/delivery collapse and the inflated hop counts of
//     Fig. 5(b).  Nothing here prevents loops on purpose; only the data
//     plane's hop cap and buffer residency bound them.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "channel/csi.hpp"
#include "routing/protocol.hpp"
#include "sim/timer.hpp"

namespace rica::routing {

/// Link-state tunables.
struct LinkStateConfig {
  std::size_t num_nodes = 50;
  sim::Time sense_period = sim::milliseconds(150);
  /// Minimum spacing between Dijkstra recomputations (SPF hold-down, as in
  /// deployed link-state routers).  Between recomputations a terminal
  /// forwards on its previous tree even though newer LSUs have arrived —
  /// with per-second CSI churn this is precisely what lets neighbouring
  /// terminals disagree and routing loops form (§III-B).
  sim::Time spf_hold = sim::milliseconds(3000);
};

class LinkStateProtocol final : public Protocol {
 public:
  /// One terminal's adjacency: (neighbour, advertised class) pairs.
  using AdjacencyRow = std::vector<std::pair<net::NodeId, channel::CsiClass>>;
  /// Whole-network topology snapshot, indexed by terminal id.
  using Topology = std::vector<AdjacencyRow>;

  LinkStateProtocol(ProtocolHost& host, const LinkStateConfig& cfg = {});

  /// Installs the accurate t=0 view (called by the harness on every node
  /// with the same snapshot, as the paper prescribes).
  void install_topology(const Topology& topology);

  void start() override;
  void handle_data(net::DataPacket pkt, net::NodeId from) override;
  void on_control(const net::ControlPacket& pkt, net::NodeId from) override;
  void on_link_break(net::NodeId neighbor,
                     std::vector<net::DataPacket> stranded) override;
  [[nodiscard]] std::string_view name() const override { return "LinkState"; }

  // -- white-box accessors for tests ----------------------------------------
  /// Dijkstra next hop toward `dst` under the current view, if reachable.
  [[nodiscard]] std::optional<net::NodeId> next_hop(net::NodeId dst);
  /// This node's current advertised adjacency row.
  [[nodiscard]] const AdjacencyRow& own_row() const;

 private:
  void sense_links(bool force_flood);
  void flood_own_row();
  void recompute_if_stale();
  void on_lsu(const net::LsuMsg& msg, net::NodeId from);

  LinkStateConfig cfg_;
  sim::Timer sense_timer_;  ///< the periodic link-sensing tick
  Topology view_;
  std::vector<std::uint32_t> seqs_;     ///< highest LSU seq seen per origin
  std::uint32_t own_seq_ = 0;
  std::uint64_t view_version_ = 1;
  std::uint64_t routes_version_ = 0;    ///< version the cache was built at
  sim::Time last_spf_{};                ///< last Dijkstra run (hold-down)
  bool spf_ever_ran_ = false;
  std::vector<net::NodeId> next_hop_;   ///< Dijkstra cache, kInvalid = none
  static constexpr net::NodeId kNoNextHop = net::kBroadcastId;
};

}  // namespace rica::routing
