#include "routing/linkstate/linkstate.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

namespace rica::routing {

LinkStateProtocol::LinkStateProtocol(ProtocolHost& host,
                                     const LinkStateConfig& cfg)
    : Protocol(host), cfg_(cfg) {
  view_.resize(cfg_.num_nodes);
  seqs_.assign(cfg_.num_nodes, 0);
  next_hop_.assign(cfg_.num_nodes, kNoNextHop);
}

void LinkStateProtocol::install_topology(const Topology& topology) {
  view_ = topology;
  view_.resize(cfg_.num_nodes);
  ++view_version_;
  host().trace_route("topology_install", host().id(), 0, 0,
                     static_cast<double>(view_.size()));
}

const LinkStateProtocol::AdjacencyRow& LinkStateProtocol::own_row() const {
  return view_.at(host().id());
}

void LinkStateProtocol::start() {
  const auto phase = sim::Time{static_cast<std::int64_t>(
      host().protocol_rng().uniform(
          0.0, static_cast<double>(cfg_.sense_period.nanos())))};
  sense_timer_.arm_after(host().simulator(), phase,
                         [this] { sense_links(false); });
}

void LinkStateProtocol::sense_links(bool force_flood) {
  AdjacencyRow row;
  for (const auto n : host().neighbors_in_range()) {
    if (const auto cls = host().link_csi(n)) row.emplace_back(n, *cls);
  }
  std::sort(row.begin(), row.end());
  auto& own = view_[host().id()];
  if (row != own || force_flood) {
    own = std::move(row);
    ++view_version_;
    flood_own_row();
  }
  if (!force_flood) {
    sense_timer_.arm_after(host().simulator(), cfg_.sense_period,
                           [this] { sense_links(false); });
  }
}

void LinkStateProtocol::flood_own_row() {
  ++own_seq_;
  seqs_[host().id()] = own_seq_;
  net::LsuMsg msg;
  msg.origin = host().id();
  msg.seq = own_seq_;
  msg.links = view_[host().id()];
  host().count("ls.lsu_origin");
  host().send_control(net::make_control(net::kBroadcastId, std::move(msg)));
}

void LinkStateProtocol::on_lsu(const net::LsuMsg& msg, net::NodeId from) {
  (void)from;
  if (msg.origin == host().id()) return;
  if (msg.origin >= cfg_.num_nodes) return;
  if (msg.seq <= seqs_[msg.origin]) return;  // duplicate or stale
  seqs_[msg.origin] = msg.seq;
  view_[msg.origin] = msg.links;
  ++view_version_;
  // Re-flood exactly once per (origin, seq): the seq check above is the
  // duplicate suppression.
  host().send_control(net::make_control(net::kBroadcastId, msg));
}

void LinkStateProtocol::recompute_if_stale() {
  if (routes_version_ == view_version_) return;
  const sim::Time now = host().simulator().now();
  if (spf_ever_ran_ && now - last_spf_ < cfg_.spf_hold) {
    return;  // SPF hold-down: keep forwarding on the previous tree
  }
  spf_ever_ran_ = true;
  last_spf_ = now;
  routes_version_ = view_version_;

  // Dijkstra with CSI hop-distance costs over the (possibly stale) view.
  // Edges are taken as advertised by the tail terminal's row.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t n = cfg_.num_nodes;
  std::vector<double> dist(n, kInf);
  std::vector<net::NodeId> first_hop(n, kNoNextHop);
  using Item = std::pair<double, net::NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;

  const net::NodeId self = host().id();
  dist[self] = 0.0;
  heap.emplace(0.0, self);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    for (const auto& [v, cls] : view_[u]) {
      if (v >= n) continue;
      const double nd = d + channel::csi_hop_distance(cls);
      if (nd < dist[v]) {
        dist[v] = nd;
        first_hop[v] = u == self ? v : first_hop[u];
        heap.emplace(nd, v);
      }
    }
  }
  next_hop_ = std::move(first_hop);
}

std::optional<net::NodeId> LinkStateProtocol::next_hop(net::NodeId dst) {
  recompute_if_stale();
  if (dst >= next_hop_.size() || next_hop_[dst] == kNoNextHop) {
    return std::nullopt;
  }
  return next_hop_[dst];
}

void LinkStateProtocol::handle_data(net::DataPacket pkt, net::NodeId from) {
  (void)from;
  if (pkt.dst == host().id()) {
    host().deliver_local(pkt);
    return;
  }
  const auto nh = next_hop(pkt.dst);
  if (!nh) {
    host().drop_data(pkt, stats::DropReason::kNoRoute);
    return;
  }
  host().forward_data(std::move(pkt), *nh);
}

void LinkStateProtocol::on_link_break(net::NodeId neighbor,
                                      std::vector<net::DataPacket> stranded) {
  host().count("ls.link_break");
  host().trace_route("link_break", host().id(), neighbor);
  for (const auto& p : stranded) {
    host().drop_data(p, stats::DropReason::kLinkBreak);
  }
  // Remove the dead link from our row immediately and flood the change.
  auto& own = view_[host().id()];
  const auto it = std::find_if(own.begin(), own.end(),
                               [neighbor](const auto& e) {
                                 return e.first == neighbor;
                               });
  if (it != own.end()) {
    own.erase(it);
    ++view_version_;
    flood_own_row();
  }
}

void LinkStateProtocol::on_control(const net::ControlPacket& pkt,
                                   net::NodeId from) {
  if (const auto* lsu = std::get_if<net::LsuMsg>(&pkt.payload)) {
    on_lsu(*lsu, from);
  }
}

}  // namespace rica::routing
