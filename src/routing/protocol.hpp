// The routing-protocol abstraction.
//
// A Protocol owns all routing state of one terminal and reacts to three
// kinds of events: data packets entering the node (originated locally or
// received from a neighbour), control packets from the common channel, and
// link-break signals from the data plane.  It acts on the world exclusively
// through its ProtocolHost — sending control packets, queueing data toward a
// next hop, querying the local channel state — which keeps every protocol
// implementation independent of the node/MAC plumbing and makes protocols
// unit-testable against a mock host.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "channel/csi.hpp"
#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "stats/metrics.hpp"

namespace rica::routing {

/// Services a node offers to its routing protocol.
class ProtocolHost {
 public:
  virtual ~ProtocolHost() = default;

  /// This terminal's identifier.
  [[nodiscard]] virtual net::NodeId id() const = 0;

  /// The simulation kernel (for now() and timers).
  virtual sim::Simulator& simulator() = 0;

  /// Per-node random stream for protocol jitter decisions.
  virtual sim::RandomStream& protocol_rng() = 0;

  /// Queues a control packet on the common channel (CSMA/CA applies).
  virtual void send_control(net::ControlPacket pkt) = 0;

  /// Measures the CSI class of the link to `neighbor` right now
  /// (nullopt if out of range).  This is the "measure the CSI of the link
  /// through which this RREQ comes" primitive of §II-B.
  virtual std::optional<channel::CsiClass> link_csi(net::NodeId neighbor) = 0;

  /// Nodes currently within transmission range (local PHY knowledge).
  virtual std::vector<net::NodeId> neighbors_in_range() = 0;

  /// Queues a data packet on the link buffer toward `next_hop`.
  virtual void forward_data(net::DataPacket pkt, net::NodeId next_hop) = 0;

  /// The packet reached its destination: record delivery.
  virtual void deliver_local(const net::DataPacket& pkt) = 0;

  /// Discards a data packet, recording the reason.
  virtual void drop_data(const net::DataPacket& pkt,
                         stats::DropReason reason) = 0;

  /// Removes and returns packets queued toward `neighbor` that have not yet
  /// begun transmission (for re-routing or protocol-driven discard).
  virtual std::vector<net::DataPacket> drain_queue(net::NodeId neighbor) = 0;

  /// Total data packets buffered at this node (ABR's load metric).
  [[nodiscard]] virtual std::size_t buffered_count() const = 0;

  /// Named diagnostic counter (forwarded to the metrics collector).
  virtual void count(const std::string& name, std::uint64_t by = 1) = 0;

  /// Emits a route-lifecycle trace record (stage: discovery_start,
  /// discovery_retry, discovery_failed, established, repair_start,
  /// repaired, link_break, topology_install).  Default is a no-op so mock
  /// hosts and trace-disabled runs pay nothing; Node forwards to the
  /// metrics collector's tracer, stamping node id, protocol name, and the
  /// current sim time.  `metric` is stage-dependent (CSI distance, hop
  /// count, stability score); `detail` is free-form context (failure cause,
  /// selected relay) landing in the record's `msg` field.
  virtual void trace_route(std::string_view stage, net::NodeId src,
                           net::NodeId dst, std::uint32_t bid = 0,
                           double metric = 0.0, std::string_view detail = {}) {
    (void)stage;
    (void)src;
    (void)dst;
    (void)bid;
    (void)metric;
    (void)detail;
  }
};

/// A routing protocol instance bound to one terminal.
class Protocol {
 public:
  explicit Protocol(ProtocolHost& host) : host_(host) {}
  virtual ~Protocol() = default;
  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  /// Called once at simulation start (arm periodic timers here).
  virtual void start() {}

  /// A data packet entered this node.  `from` equals id() when the packet
  /// was originated locally by the traffic generator.
  virtual void handle_data(net::DataPacket pkt, net::NodeId from) = 0;

  /// A control packet arrived from the common channel.
  virtual void on_control(const net::ControlPacket& pkt, net::NodeId from) = 0;

  /// The data plane declared the link to `neighbor` broken; `stranded` holds
  /// the packets that were queued on it.
  virtual void on_link_break(net::NodeId neighbor,
                             std::vector<net::DataPacket> stranded) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Peak occupancy across this protocol's open-addressing tables (route /
  /// history / upstream maps), 0 when the protocol keeps none.  Surfaced as
  /// the `table_load` observability gauge in MetricsSummary.
  [[nodiscard]] virtual double table_load() const { return 0.0; }

 protected:
  ProtocolHost& host() { return host_; }
  [[nodiscard]] const ProtocolHost& host() const { return host_; }

 private:
  ProtocolHost& host_;
};

}  // namespace rica::routing
