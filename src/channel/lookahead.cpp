#include "channel/lookahead.hpp"

namespace rica::channel {

Lookahead conservative_lookahead(double rate_bps, sim::Time backoff_min,
                                 unsigned min_control_bytes,
                                 double max_speed_mps) {
  // Smallest-frame airtime at the common-channel rate; the paper's 250 kbps
  // and the 9-byte encoded ABR beacon (wire::kMinControlBytes, derived from
  // the codecs) give 288 us, on top of the 500 us minimum backoff — a
  // 788 us window.
  const double airtime_s = rate_bps > 0.0
                               ? min_control_bytes * 8.0 / rate_bps
                               : 0.0;
  Lookahead la;
  la.window = backoff_min + sim::seconds_f(airtime_s);
  // Two nodes closing head-on shrink their separation at 2 * max speed.
  la.guard_band_m = 2.0 * max_speed_mps * la.window.seconds();
  return la;
}

}  // namespace rica::channel
