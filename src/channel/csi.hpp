// CSI classes and the ABICM throughput/hop-distance mapping (paper §II-A).
//
// The paper abstracts the adaptive coder/modulator (ABICM [5]) into four
// channel-state classes with effective throughputs 250/150/75/50 kbps.  The
// CSI-based "hop distance" of a link is the transmission-delay ratio versus
// a class-A link: 1, 1.67, 3.33 and 5 respectively.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace rica::channel {

/// Channel-state class after adaptive coding/modulation.
enum class CsiClass : std::uint8_t {
  A = 0,  ///< 250 kbps
  B = 1,  ///< 150 kbps
  C = 2,  ///< 75 kbps
  D = 3,  ///< 50 kbps
};

inline constexpr std::array<double, 4> kClassThroughputBps = {
    250'000.0, 150'000.0, 75'000.0, 50'000.0};

/// Effective link throughput for a class, bits/second.
[[nodiscard]] constexpr double throughput_bps(CsiClass c) {
  return kClassThroughputBps[static_cast<std::size_t>(c)];
}

/// CSI-based hop distance: transmission-delay ratio relative to class A
/// (250/250=1, 250/150=1.67, 250/75=3.33, 250/50=5).
[[nodiscard]] constexpr double csi_hop_distance(CsiClass c) {
  return kClassThroughputBps[0] / throughput_bps(c);
}

/// Single-letter class name for logs and tables.
[[nodiscard]] constexpr std::string_view to_string(CsiClass c) {
  constexpr std::array<std::string_view, 4> names = {"A", "B", "C", "D"};
  return names[static_cast<std::size_t>(c)];
}

}  // namespace rica::channel
