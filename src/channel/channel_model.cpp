#include "channel/channel_model.hpp"

#include <algorithm>
#include <cmath>

namespace rica::channel {

namespace {
constexpr std::uint64_t pair_key(std::uint32_t lo, std::uint32_t hi) {
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}
}  // namespace

ChannelModel::ChannelModel(const ChannelConfig& cfg,
                           mobility::MobilityManager& mobility,
                           const sim::RngManager& rng)
    : cfg_(cfg),
      mobility_(mobility),
      rng_(rng),
      index_(mobility,
             NeighborIndexConfig{cfg.range_m,
                                 sim::seconds_f(cfg.index_epoch_s)}) {}

bool ChannelModel::in_range(std::uint32_t a, std::uint32_t b, sim::Time t) {
  if (a == b) return false;
  if (cfg_.use_neighbor_index) {
    index_.ensure_fresh(t);
    // Snapshot prefilter: provably-distant pairs skip the exact mobility
    // evaluation entirely.
    if (!index_.possibly_in_range(a, b)) return false;
  }
  return mobility_.node_distance(a, b, t) <= cfg_.range_m;
}

ChannelModel::PairProcess& ChannelModel::process_for(std::uint32_t lo,
                                                     std::uint32_t hi) {
  const auto key = pair_key(lo, hi);
  auto it = pairs_.find(key);
  if (it == pairs_.end()) {
    it = pairs_.emplace(key, PairProcess{rng_.stream("channel", lo, hi)})
             .first;
  }
  return it->second;
}

void ChannelModel::advance(PairProcess& p, sim::Time t,
                           double rel_speed_mps) {
  if (!p.initialized) {
    p.shadow_db = p.rng.normal(0.0, cfg_.shadow_sigma_db);
    p.fading_db = p.rng.normal(0.0, cfg_.fading_sigma_db);
    p.last = t;
    p.initialized = true;
    return;
  }
  const double gap_s = (t - p.last).seconds();
  p.last = t;
  if (gap_s <= 0.0 || rel_speed_mps <= 0.0) return;  // frozen channel
  const double moved_m = rel_speed_mps * gap_s;

  const double rho_s = std::exp(-moved_m / cfg_.shadow_decorr_m);
  p.shadow_db = rho_s * p.shadow_db +
                std::sqrt(std::max(0.0, 1.0 - rho_s * rho_s)) *
                    p.rng.normal(0.0, cfg_.shadow_sigma_db);

  const double rho_f = std::exp(-moved_m / cfg_.fading_decorr_m);
  p.fading_db = rho_f * p.fading_db +
                std::sqrt(std::max(0.0, 1.0 - rho_f * rho_f)) *
                    p.rng.normal(0.0, cfg_.fading_sigma_db);
}

CsiClass ChannelModel::quantize(double snr_db) const {
  if (snr_db >= cfg_.class_a_db) return CsiClass::A;
  if (snr_db >= cfg_.class_b_db) return CsiClass::B;
  if (snr_db >= cfg_.class_c_db) return CsiClass::C;
  return CsiClass::D;
}

std::optional<ChannelSample> ChannelModel::sample(std::uint32_t a,
                                                  std::uint32_t b,
                                                  sim::Time t) {
  if (a == b) return std::nullopt;
  if (cfg_.use_neighbor_index) {
    index_.ensure_fresh(t);
    if (!index_.possibly_in_range(a, b)) return std::nullopt;
  }
  const double dist = mobility_.node_distance(a, b, t);
  if (dist > cfg_.range_m) return std::nullopt;

  const auto [lo, hi] = std::minmax(a, b);
  auto& proc = process_for(lo, hi);
  // Effective pair decorrelation speed: the sum of the two nodes' speeds
  // bounds the relative speed and preserves the key property that a fully
  // static pair sees a frozen channel.
  const double rel_speed = mobility_.speed(a, t) + mobility_.speed(b, t);
  advance(proc, t, rel_speed);

  const double mean_snr =
      cfg_.snr0_db -
      10.0 * cfg_.path_loss_exponent * std::log10(std::max(dist, 1.0));
  const double snr = mean_snr + proc.shadow_db + proc.fading_db;
  return ChannelSample{snr, quantize(snr)};
}

std::optional<CsiClass> ChannelModel::csi(std::uint32_t a, std::uint32_t b,
                                          sim::Time t) {
  const auto s = sample(a, b, t);
  if (!s) return std::nullopt;
  return s->csi;
}

std::vector<std::uint32_t> ChannelModel::neighbors_of(std::uint32_t node,
                                                      sim::Time t) {
  std::vector<std::uint32_t> out;
  neighbors_of(node, t, out);
  return out;
}

void ChannelModel::neighbors_of(std::uint32_t node, sim::Time t,
                                std::vector<std::uint32_t>& out) {
  out.clear();
  if (!cfg_.use_neighbor_index) {
    const auto n = static_cast<std::uint32_t>(mobility_.size());
    for (std::uint32_t other = 0; other < n; ++other) {
      if (other != node &&
          mobility_.node_distance(node, other, t) <= cfg_.range_m) {
        out.push_back(other);
      }
    }
    return;
  }
  index_.ensure_fresh(t);
  const auto pos = mobility_.position(node, t);
  candidates_.clear();
  index_.candidates_near(pos, candidates_);
  out.reserve(candidates_.size());
  for (const auto other : candidates_) {
    if (other == node) continue;
    if (mobility::distance(pos, mobility_.position(other, t)) <= cfg_.range_m) {
      out.push_back(other);
    }
  }
  // Grid cells are visited row-major, so restore the ascending-id order the
  // brute-force scan produces; downstream event ordering depends on it.
  std::sort(out.begin(), out.end());
}

std::vector<std::uint32_t> ChannelModel::neighbors_of_bruteforce(
    std::uint32_t node, sim::Time t) {
  std::vector<std::uint32_t> out;
  const auto n = static_cast<std::uint32_t>(mobility_.size());
  for (std::uint32_t other = 0; other < n; ++other) {
    if (other != node &&
        mobility_.node_distance(node, other, t) <= cfg_.range_m) {
      out.push_back(other);
    }
  }
  return out;
}

}  // namespace rica::channel
