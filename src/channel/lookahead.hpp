// Conservative lookahead for the sharded event kernel.
//
// Classic conservative-PDES argument, instantiated for this stack: the
// soonest an event at one node can *causally* reach a node in another
// spatial shard is bounded below by the MAC's minimum turnaround — a
// carrier-sense backoff draw of at least backoff_min followed by the
// airtime of the smallest control frame on the common channel (signal
// propagation itself is modeled as instantaneous, so it contributes no
// slack).  Within that window, shards can be *staged* concurrently: wheel
// cascades, bucket harvests, and batch sorts touch only shard-local state.
//
// The kernel's commit phase stays serial and globally (at, seq)-ordered
// (see sim/simulator.hpp): two zero-latency couplings make true concurrent
// *execution* unable to reproduce the serial event stream byte-for-byte —
// carrier sense writes busy intervals into every in-range receiver at the
// instant a transmission starts, and the channel's per-pair AR(1) fading
// processes advance lazily in query order.  The window therefore tunes how
// much staging work each barrier can absorb; correctness never depends on
// it, and the guard band below is reported as drift telemetry rather than
// enforced.
#pragma once

#include "sim/time.hpp"

namespace rica::channel {

/// A derived conservative window and its spatial guard band.
struct Lookahead {
  sim::Time window;     ///< min cross-shard causal latency
  double guard_band_m;  ///< worst-case two-node closing distance per window
};

/// Derives the lookahead from the channel/MAC/mobility parameters:
/// `rate_bps` and `backoff_min` from the common-channel MAC,
/// `min_control_bytes` the smallest control frame the stack emits, and
/// `max_speed_mps` the mobility bound (two nodes can close at twice it).
[[nodiscard]] Lookahead conservative_lookahead(double rate_bps,
                                               sim::Time backoff_min,
                                               unsigned min_control_bytes,
                                               double max_speed_mps);

}  // namespace rica::channel
