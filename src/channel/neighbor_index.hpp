// Spatial neighbor index: a uniform grid over a periodic mobility snapshot.
//
// The brute-force range query costs O(N) mobility evaluations per call and is
// on the hot path of every CSMA broadcast, so at 200-500 nodes it dominates
// the simulation.  This index rebuilds a bucketed grid (cell size = the radio
// range) from a MobilityManager::snapshot at most once per `rebuild_epoch`,
// then answers "who could be within range of this point?" from the 3x3 cell
// neighborhood around the query.
//
// The index is a *conservative prefilter*, never an approximation: nodes can
// drift up to max_speed * rebuild_epoch meters between rebuilds, so queries
// widen the search radius by exactly that slack and the caller re-checks the
// exact distance at query time.  Results are therefore bit-identical to the
// brute-force scan (see the equivalence property test in tests/scale_test.cpp
// and the staleness-slack derivation in DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "mobility/mobility_model.hpp"
#include "sim/time.hpp"

namespace rica::channel {

/// Tunables of the spatial grid.
struct NeighborIndexConfig {
  double range_m = 250.0;  ///< query radius; also the grid cell size
  sim::Time rebuild_epoch = sim::milliseconds(250);
};

/// Uniform-grid range-query accelerator over mobility snapshots.
/// Thread-compatible; not thread-safe (one index per single-threaded run).
class NeighborIndex {
 public:
  NeighborIndex(mobility::MobilityManager& mobility,
                const NeighborIndexConfig& cfg);

  /// Rebuilds the snapshot + grid when the current one is older than the
  /// rebuild epoch (or absent).  Must be called with non-decreasing t, which
  /// holds in a discrete-event simulation.
  void ensure_fresh(sim::Time t);

  /// Appends every node whose *snapshot* position lies within
  /// range_m + slack of `center` (cells overlapping that disc are scanned,
  /// then corner nodes are rejected on the cheap snapshot distance).  Any
  /// node truly within range_m of `center` now is guaranteed present; the
  /// query node itself may be included.  Callers finish with the exact
  /// distance re-check at query time.  Requires ensure_fresh() first.
  void candidates_near(mobility::Vec2 center,
                       std::vector<std::uint32_t>& out) const;

  /// False only when a and b are provably out of range at every instant the
  /// current snapshot covers (snapshot distance > range + 2*slack).  A true
  /// result means "possibly in range" and needs the exact check.
  [[nodiscard]] bool possibly_in_range(std::uint32_t a, std::uint32_t b) const;

  /// Max distance a node can have drifted from its snapshot position, m.
  [[nodiscard]] double slack_m() const { return slack_m_; }

  /// Position of `id` in the current snapshot (requires ensure_fresh()).
  [[nodiscard]] mobility::Vec2 snapshot_position(std::uint32_t id) const {
    return positions_[id];
  }

  [[nodiscard]] sim::Time snapshot_time() const { return snap_time_; }

  /// Number of grid rebuilds so far (diagnostics / tests).
  [[nodiscard]] std::size_t rebuild_count() const { return rebuilds_; }

 private:
  void rebuild(sim::Time t);
  [[nodiscard]] int cell_x(double x) const;
  [[nodiscard]] int cell_y(double y) const;

  mobility::MobilityManager& mobility_;
  NeighborIndexConfig cfg_;
  double cell_m_;
  double slack_m_;

  // Snapshot state.
  std::vector<mobility::Vec2> positions_;  ///< by node id, at snap_time_
  sim::Time snap_time_ = sim::Time::zero();
  bool built_ = false;
  std::size_t rebuilds_ = 0;

  // Grid over the snapshot's bounding box, CSR layout: ids of the nodes in
  // cell (cx, cy) are cell_ids_[cell_start_[cy*cols_+cx] ..
  // cell_start_[cy*cols_+cx+1]), sorted ascending within a cell.
  double min_x_ = 0.0;
  double min_y_ = 0.0;
  int cols_ = 1;
  int rows_ = 1;
  std::vector<std::uint32_t> cell_start_;
  std::vector<std::uint32_t> cell_ids_;
};

}  // namespace rica::channel
