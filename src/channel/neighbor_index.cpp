#include "channel/neighbor_index.hpp"

#include <algorithm>
#include <cmath>

namespace rica::channel {

NeighborIndex::NeighborIndex(mobility::MobilityManager& mobility,
                             const NeighborIndexConfig& cfg)
    : mobility_(mobility),
      cfg_(cfg),
      cell_m_(std::max(cfg.range_m, 1.0)),
      slack_m_(mobility.max_speed_mps() *
               std::max(0.0, cfg.rebuild_epoch.seconds())) {}

int NeighborIndex::cell_x(double x) const {
  const int c = static_cast<int>(std::floor((x - min_x_) / cell_m_));
  return std::clamp(c, 0, cols_ - 1);
}

int NeighborIndex::cell_y(double y) const {
  const int c = static_cast<int>(std::floor((y - min_y_) / cell_m_));
  return std::clamp(c, 0, rows_ - 1);
}

void NeighborIndex::ensure_fresh(sim::Time t) {
  if (built_ && t - snap_time_ <= cfg_.rebuild_epoch) return;
  rebuild(t);
}

void NeighborIndex::rebuild(sim::Time t) {
  mobility_.snapshot(t, positions_);
  snap_time_ = t;
  built_ = true;
  ++rebuilds_;

  const auto n = static_cast<std::uint32_t>(positions_.size());
  if (n == 0) {
    min_x_ = min_y_ = 0.0;
    cols_ = rows_ = 1;
    cell_start_.assign(2, 0);
    cell_ids_.clear();
    return;
  }

  // Grid over the snapshot's bounding box: the field is not known here, and
  // bounding the occupied area keeps sparse-rural layouts dense in cells.
  double max_x = positions_[0].x, max_y = positions_[0].y;
  min_x_ = positions_[0].x;
  min_y_ = positions_[0].y;
  for (const auto p : positions_) {
    min_x_ = std::min(min_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  cols_ = static_cast<int>(std::floor((max_x - min_x_) / cell_m_)) + 1;
  rows_ = static_cast<int>(std::floor((max_y - min_y_) / cell_m_)) + 1;

  // Counting sort into CSR buckets; node ids stay ascending within a cell,
  // which keeps downstream neighbor lists deterministic.
  const std::size_t num_cells =
      static_cast<std::size_t>(cols_) * static_cast<std::size_t>(rows_);
  cell_start_.assign(num_cells + 1, 0);
  for (const auto p : positions_) {
    const std::size_t cell =
        static_cast<std::size_t>(cell_y(p.y)) * cols_ + cell_x(p.x);
    ++cell_start_[cell + 1];
  }
  for (std::size_t c = 0; c < num_cells; ++c) {
    cell_start_[c + 1] += cell_start_[c];
  }
  cell_ids_.resize(n);
  std::vector<std::uint32_t> cursor(cell_start_.begin(),
                                    cell_start_.end() - 1);
  for (std::uint32_t id = 0; id < n; ++id) {
    const auto p = positions_[id];
    const std::size_t cell =
        static_cast<std::size_t>(cell_y(p.y)) * cols_ + cell_x(p.x);
    cell_ids_[cursor[cell]++] = id;
  }
}

void NeighborIndex::candidates_near(mobility::Vec2 center,
                                    std::vector<std::uint32_t>& out) const {
  if (cell_ids_.empty()) return;
  const double reach = cfg_.range_m + slack_m_;
  const double reach_sq = reach * reach;
  const int x0 = cell_x(center.x - reach);
  const int x1 = cell_x(center.x + reach);
  const int y0 = cell_y(center.y - reach);
  const int y1 = cell_y(center.y + reach);
  for (int cy = y0; cy <= y1; ++cy) {
    for (int cx = x0; cx <= x1; ++cx) {
      const std::size_t cell =
          static_cast<std::size_t>(cy) * cols_ + static_cast<std::size_t>(cx);
      for (std::uint32_t i = cell_start_[cell]; i < cell_start_[cell + 1];
           ++i) {
        // Reject cell-corner nodes on the snapshot distance before the
        // caller pays a (lazy, leg-advancing) mobility evaluation.  A node
        // within range_m now is within reach of its snapshot position, so
        // this never drops a true neighbor.
        const auto id = cell_ids_[i];
        const double dx = positions_[id].x - center.x;
        const double dy = positions_[id].y - center.y;
        if (dx * dx + dy * dy <= reach_sq) out.push_back(id);
      }
    }
  }
}

bool NeighborIndex::possibly_in_range(std::uint32_t a, std::uint32_t b) const {
  // Each endpoint can have drifted up to slack_m_ since the snapshot.
  return mobility::distance(positions_[a], positions_[b]) <=
         cfg_.range_m + 2.0 * slack_m_;
}

}  // namespace rica::channel
