// Time-varying wireless channel: log-distance path loss + correlated
// log-normal shadowing + correlated residual fading, quantized to the four
// CSI classes of the paper.
//
// Modeling choices (documented in DESIGN.md):
//  * The routing-visible "channel class" tracks the *local-mean* SNR; the
//    symbol-level Rayleigh fading below the class boundary is absorbed by
//    the ABICM coder and is not visible to routing, exactly as in the paper.
//  * Shadowing follows Gudmundson's model: an AR(1) process in the distance
//    the pair has moved, with decorrelation distance `shadow_decorr_m`.  A
//    second, faster AR(1) term models the residual of imperfect local-mean
//    estimation.  Both freeze when nodes stop moving, so a static network
//    has a static channel — this is what lets the link-state baseline shine
//    at zero mobility and collapse under motion, as the paper reports.
//  * Pair processes are evaluated lazily at query time (AR(1) steps over the
//    elapsed gap), so channel cost scales with traffic.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "channel/csi.hpp"
#include "channel/neighbor_index.hpp"
#include "mobility/mobility_model.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace rica::channel {

/// Physical-layer parameters.  Defaults reproduce the paper's setting
/// (250 m transmission range, mixed class population in range).
/// Defaults are calibrated so that, at the paper's node density, CSI classes
/// within the 250 m range are shadowing-dominated (weakly correlated with
/// distance) and roughly uniform across A-D.  That reproduces the paper's
/// route-quality numbers: channel-agnostic protocols (ABR/AODV) see the
/// unconditioned ~130 kbps mean link throughput, while channel-adaptive ones
/// can harvest class-A/B links at any range.
struct ChannelConfig {
  double range_m = 250.0;          ///< hard transmission/carrier-sense range
  double path_loss_exponent = 2.0; ///< log-distance exponent
  double snr0_db = 58.5;           ///< mean SNR at 1 m
  double shadow_sigma_db = 8.0;    ///< log-normal shadowing std dev
  double shadow_decorr_m = 50.0;   ///< Gudmundson decorrelation distance
  double fading_sigma_db = 5.0;    ///< fast-fading residual after ABICM's
                                   ///< local-mean tracking; large enough that
                                   ///< classes flicker on sub-second scales
                                   ///< when nodes move (paper §II-A)
  double fading_decorr_m = 2.0;    ///< residual decorrelation distance
  double class_a_db = 18.0;        ///< SNR >= this -> class A
  double class_b_db = 12.0;        ///< SNR >= this -> class B
  double class_c_db = 6.0;         ///< SNR >= this -> class C (else D)
  /// Route range queries through the spatial NeighborIndex (bit-identical to
  /// the brute-force scan; see DESIGN.md).  Off = always scan all N nodes.
  bool use_neighbor_index = true;
  /// How often the neighbor index re-snapshots mobility, seconds.  Larger
  /// epochs rebuild less often but widen the search slack by
  /// max_speed * epoch meters.
  double index_epoch_s = 0.25;
};

/// A sampled link state.
struct ChannelSample {
  double snr_db = 0.0;
  CsiClass csi = CsiClass::D;
};

/// The network-wide channel.  Thread-compatible; not thread-safe (the
/// simulation is single-threaded).
class ChannelModel {
 public:
  ChannelModel(const ChannelConfig& cfg, mobility::MobilityManager& mobility,
               const sim::RngManager& rng);

  /// True if a and b are within transmission range at time t.
  [[nodiscard]] bool in_range(std::uint32_t a, std::uint32_t b, sim::Time t);

  /// Samples the (symmetric) channel between a and b at time t.  Returns
  /// nullopt when out of range.  Within range, every link has at least
  /// class D (the paper's links never drop below class D while in range;
  /// breaks come from leaving the transmission range).
  std::optional<ChannelSample> sample(std::uint32_t a, std::uint32_t b,
                                      sim::Time t);

  /// Convenience: the CSI class, or nullopt if out of range.
  std::optional<CsiClass> csi(std::uint32_t a, std::uint32_t b, sim::Time t);

  /// All nodes within range of `node` at time t, ascending by id.  Served
  /// from the spatial grid index (amortized O(degree)) unless
  /// `use_neighbor_index` is off.
  [[nodiscard]] std::vector<std::uint32_t> neighbors_of(std::uint32_t node,
                                                        sim::Time t);

  /// Allocation-free variant: clears `out` and fills it with the neighbors
  /// of `node` at time t, ascending by id.  Hot callers (the MAC, one query
  /// per transmission) reuse the buffer's capacity across calls.
  void neighbors_of(std::uint32_t node, sim::Time t,
                    std::vector<std::uint32_t>& out);

  /// The original O(N) scan, kept as the reference implementation for the
  /// index equivalence tests and the micro-benchmarks.
  [[nodiscard]] std::vector<std::uint32_t> neighbors_of_bruteforce(
      std::uint32_t node, sim::Time t);

  [[nodiscard]] const ChannelConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t num_nodes() const { return mobility_.size(); }

  /// Number of distinct pair processes instantiated (diagnostics).
  [[nodiscard]] std::size_t live_pairs() const { return pairs_.size(); }

  /// Spatial-index diagnostics (rebuild cadence, slack).
  [[nodiscard]] const NeighborIndex& neighbor_index() const { return index_; }

 private:
  /// Correlated Gaussian (dB-domain) disturbances of one node pair.
  struct PairProcess {
    double shadow_db = 0.0;
    double fading_db = 0.0;
    sim::Time last = sim::Time::zero();
    bool initialized = false;
    sim::RandomStream rng;

    explicit PairProcess(sim::RandomStream r) : rng(std::move(r)) {}
  };

  PairProcess& process_for(std::uint32_t lo, std::uint32_t hi);
  void advance(PairProcess& p, sim::Time t, double rel_speed_mps);
  [[nodiscard]] CsiClass quantize(double snr_db) const;

  ChannelConfig cfg_;
  mobility::MobilityManager& mobility_;
  sim::RngManager rng_;
  NeighborIndex index_;
  std::vector<std::uint32_t> candidates_;  ///< scratch for grid queries
  std::unordered_map<std::uint64_t, PairProcess> pairs_;
};

}  // namespace rica::channel
