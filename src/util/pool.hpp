// Free-list object pool and the pooled FIFO built on it.
//
// Forwarding a flood through the stack used to hit the allocator once per
// queued packet (deque chunk churn in the MAC control queues and the
// per-link data buffers).  FreeListPool keeps fixed-size nodes in chunked
// slabs with stable addresses: acquire() pops the free list (O(1), no
// allocation in steady state), release() destroys the value and pushes the
// node back.  PooledQueue is an intrusive singly-linked FIFO over a shared
// pool — many queues (one per MAC node, one per link) draw from one slab,
// so a burst on one queue reuses the nodes another queue just released.
//
// Ownership rules:
//   * the pool must outlive every PooledQueue bound to it (declare the pool
//     before the queues in the owning class);
//   * a node acquired from pool P must be released to P (PooledQueue keeps
//     the binding, so this holds by construction);
//   * pools are single-threaded, like the simulator that owns them.
//
// high_water() reports the peak number of live values, which is the pool's
// real memory commitment (chunks are never returned); it is surfaced as
// `pool_hw` in MetricsSummary / verbose sweep rows.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace rica::util {

template <typename T>
class FreeListPool {
 public:
  struct Node {
    alignas(T) unsigned char storage[sizeof(T)];
    Node* next = nullptr;

    [[nodiscard]] T& value() {
      return *std::launder(reinterpret_cast<T*>(storage));
    }
    [[nodiscard]] const T& value() const {
      return *std::launder(reinterpret_cast<const T*>(storage));
    }
  };

  FreeListPool() = default;
  FreeListPool(const FreeListPool&) = delete;
  FreeListPool& operator=(const FreeListPool&) = delete;
  ~FreeListPool() { assert(live_ == 0 && "pool destroyed with live values"); }

  /// Constructs a T in a recycled (or fresh) node. O(1); allocates only
  /// when the free list is empty.
  template <typename... Args>
  Node* acquire(Args&&... args) {
    if (free_ == nullptr) grow();
    Node* n = free_;
    free_ = n->next;
    ::new (static_cast<void*>(n->storage)) T(std::forward<Args>(args)...);
    n->next = nullptr;
    ++live_;
    if (live_ > high_water_) high_water_ = live_;
    return n;
  }

  /// Destroys the node's value and recycles the node.
  void release(Node* n) {
    n->value().~T();
    n->next = free_;
    free_ = n;
    assert(live_ > 0);
    --live_;
  }

  /// Values currently alive.
  [[nodiscard]] std::size_t live() const { return live_; }
  /// Peak live values ever (the pool's memory commitment).
  [[nodiscard]] std::size_t high_water() const { return high_water_; }
  /// Total node capacity across all chunks.
  [[nodiscard]] std::size_t capacity() const {
    return chunks_.size() * kChunkNodes;
  }

 private:
  static constexpr std::size_t kChunkNodes = 64;

  void grow() {
    chunks_.push_back(std::make_unique<Node[]>(kChunkNodes));
    // Thread back-to-front so nodes hand out in ascending address order
    // (deterministic and cache-friendly).
    for (std::size_t i = kChunkNodes; i-- > 0;) {
      Node& n = chunks_.back()[i];
      n.next = free_;
      free_ = &n;
    }
  }

  std::vector<std::unique_ptr<Node[]>> chunks_;
  Node* free_ = nullptr;
  std::size_t live_ = 0;
  std::size_t high_water_ = 0;
};

/// Intrusive FIFO over a shared FreeListPool.  Supports the queue shapes
/// the stack needs: push_back (enqueue), push_front (retransmission
/// requeue), pop_front (service), forward iteration, and truncate (link
/// teardown).  Default-constructed queues must be bind()-ed to a pool
/// before first use (members that live in resize()-able containers cannot
/// take the pool in their constructor).
template <typename T>
class PooledQueue {
 public:
  PooledQueue() = default;
  explicit PooledQueue(FreeListPool<T>& pool) : pool_(&pool) {}
  PooledQueue(const PooledQueue&) = delete;
  PooledQueue& operator=(const PooledQueue&) = delete;
  PooledQueue(PooledQueue&& other) noexcept
      : pool_(other.pool_), head_(other.head_), tail_(other.tail_),
        size_(other.size_) {
    other.head_ = other.tail_ = nullptr;
    other.size_ = 0;
  }
  PooledQueue& operator=(PooledQueue&& other) noexcept {
    if (this != &other) {
      clear();
      pool_ = other.pool_;
      head_ = other.head_;
      tail_ = other.tail_;
      size_ = other.size_;
      other.head_ = other.tail_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }
  ~PooledQueue() { clear(); }

  /// Binds the queue to its pool.  Must precede any push; rebinding a
  /// non-empty queue is a bug.
  void bind(FreeListPool<T>& pool) {
    assert(empty() && "rebinding a non-empty queue");
    pool_ = &pool;
  }

  template <typename... Args>
  void emplace_back(Args&&... args) {
    Node* n = pool_->acquire(std::forward<Args>(args)...);
    if (tail_ == nullptr) {
      head_ = tail_ = n;
    } else {
      tail_->next = n;
      tail_ = n;
    }
    ++size_;
  }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  void push_front(T&& v) {
    Node* n = pool_->acquire(std::move(v));
    n->next = head_;
    head_ = n;
    if (tail_ == nullptr) tail_ = n;
    ++size_;
  }

  [[nodiscard]] T& front() {
    assert(head_ != nullptr);
    return head_->value();
  }
  [[nodiscard]] const T& front() const {
    assert(head_ != nullptr);
    return head_->value();
  }

  void pop_front() {
    assert(head_ != nullptr);
    Node* n = head_;
    head_ = n->next;
    if (head_ == nullptr) tail_ = nullptr;
    --size_;
    pool_->release(n);
  }

  /// Releases every node from position `keep` onward (position 0 keeps
  /// nothing).  O(remaining).
  void truncate(std::size_t keep) {
    if (keep >= size_) return;
    Node* last = nullptr;  // last surviving node
    Node* n = head_;
    for (std::size_t i = 0; i < keep; ++i) {
      last = n;
      n = n->next;
    }
    while (n != nullptr) {
      Node* next = n->next;
      pool_->release(n);
      n = next;
    }
    tail_ = last;
    if (last == nullptr) {
      head_ = nullptr;
    } else {
      last->next = nullptr;
    }
    size_ = keep;
  }

  void clear() { truncate(0); }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  // -- minimal forward iteration ------------------------------------------
  class iterator {
   public:
    explicit iterator(typename FreeListPool<T>::Node* n) : n_(n) {}
    T& operator*() const { return n_->value(); }
    T* operator->() const { return &n_->value(); }
    iterator& operator++() {
      n_ = n_->next;
      return *this;
    }
    bool operator!=(const iterator& o) const { return n_ != o.n_; }
    bool operator==(const iterator& o) const { return n_ == o.n_; }

   private:
    typename FreeListPool<T>::Node* n_;
  };
  [[nodiscard]] iterator begin() const { return iterator(head_); }
  [[nodiscard]] iterator end() const { return iterator(nullptr); }

 private:
  using Node = typename FreeListPool<T>::Node;

  FreeListPool<T>* pool_ = nullptr;
  Node* head_ = nullptr;
  Node* tail_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace rica::util
