// Open-addressing hash tables over packed 64-bit keys.
//
// Every per-node routing table in the stack (route entries, reverse paths,
// discovery state, RREQ/BQ upstreams, per-link queues) is keyed by a value
// that packs losslessly into 64 bits: a NodeId, a FlowKey (src << 32 | dst),
// or a (tag, origin, bid) history key — node ids are bounded below 2^24 at
// construction (net::kMaxNodes), so all of these fit with room to spare.
// std::unordered_map spends a pointer chase plus an allocation per entry on
// such keys; these tables instead probe a flat power-of-two index with
// linear probing (one cache line covers several probes).
//
// FlatMap64<V> separates the index from the values:
//   * the index is a flat array of {probe key, slot ref} pairs that rehashes
//     freely (no value ever moves during a rehash);
//   * values live in chunked slabs with stable addresses, so `V&` references
//     (and the protocols hold them across inserts) stay valid for the
//     value's whole lifetime — required for V = sim::Timer holders, and it
//     makes non-movable V legal;
//   * erased slots become tombstones in the index and free nodes in the
//     slab; both are recycled, and a rehash sweeps tombstones out.
//
// Iteration walks the slab in node order (insertion order, with freed nodes
// recycled LIFO), which is a pure function of the operation sequence —
// deterministic replay of a run reproduces the exact iteration order, which
// the golden stream hashes pin down.
//
// FlatSet64 is the index alone (no values, no erase): membership with
// insert/clear, which is all the flood-dedup history table needs.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace rica::util {

namespace detail {
/// Fibonacci multiplier; the high bits of key * kGolden are well mixed even
/// for the structured keys above (ids in low bits, tags in high bits).
inline constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ull;

[[nodiscard]] constexpr std::size_t probe_start(std::uint64_t key,
                                                std::size_t mask) {
  // mask is pow2-1; shift the mixed key down so the high (well-mixed) bits
  // pick the bucket.
  return static_cast<std::size_t>((key * kGolden) >> 32) & mask;
}
}  // namespace detail

/// Flat hash map from a packed 64-bit key to V.  See file comment for the
/// index/slab split and the guarantees (stable V addresses, deterministic
/// iteration).  Single-threaded, like the simulator that owns it.
template <typename V>
class FlatMap64 {
 public:
  /// The stored entry; named like std::pair so `it->second` and
  /// `auto& [key, value] : map` work unchanged at the call sites.
  struct Entry {
    const std::uint64_t first;
    V second;
  };

  FlatMap64() = default;
  FlatMap64(const FlatMap64&) = delete;
  FlatMap64& operator=(const FlatMap64&) = delete;
  ~FlatMap64() { clear(); }

  template <bool Const>
  class Iter {
   public:
    using MapPtr = std::conditional_t<Const, const FlatMap64*, FlatMap64*>;
    using Ref = std::conditional_t<Const, const Entry&, Entry&>;

    Iter() = default;
    Iter(MapPtr m, std::uint32_t idx) : m_(m), idx_(idx) {}
    /// const_iterator from iterator.
    template <bool C = Const, typename = std::enable_if_t<C>>
    Iter(const Iter<false>& o) : m_(o.m_), idx_(o.idx_) {}  // NOLINT(google-explicit-constructor)

    Ref operator*() const { return m_->node(idx_).entry(); }
    auto* operator->() const { return &m_->node(idx_).entry(); }
    Iter& operator++() {
      idx_ = m_->next_live(idx_ + 1);
      return *this;
    }
    bool operator==(const Iter& o) const { return idx_ == o.idx_; }
    bool operator!=(const Iter& o) const { return idx_ != o.idx_; }

   private:
    friend class FlatMap64;
    MapPtr m_ = nullptr;
    std::uint32_t idx_ = kNpos;
  };
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  [[nodiscard]] iterator begin() { return {this, next_live(0)}; }
  [[nodiscard]] iterator end() { return {this, kNpos}; }
  [[nodiscard]] const_iterator begin() const { return {this, next_live(0)}; }
  [[nodiscard]] const_iterator end() const { return {this, kNpos}; }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] iterator find(std::uint64_t key) {
    return {this, find_node(key)};
  }
  [[nodiscard]] const_iterator find(std::uint64_t key) const {
    return {this, find_node(key)};
  }

  [[nodiscard]] V& at(std::uint64_t key) {
    const std::uint32_t idx = find_node(key);
    assert(idx != kNpos && "FlatMap64::at: key absent");
    return node(idx).entry().second;
  }
  [[nodiscard]] const V& at(std::uint64_t key) const {
    const std::uint32_t idx = find_node(key);
    assert(idx != kNpos && "FlatMap64::at: key absent");
    return node(idx).entry().second;
  }

  /// Inserts V(args...) under `key` unless present.  Returns the entry's
  /// iterator and whether it was inserted.  Like std::try_emplace, args are
  /// not evaluated into a V when the key already exists.
  template <typename... Args>
  std::pair<iterator, bool> try_emplace(std::uint64_t key, Args&&... args) {
    if (std::uint32_t idx = find_node(key); idx != kNpos) {
      return {iterator{this, idx}, false};
    }
    reserve_for_insert();
    const std::uint32_t idx = alloc_node();
    ::new (node(idx).storage) Entry{key, V(std::forward<Args>(args)...)};
    node(idx).live = true;
    index_insert(key, idx);
    ++size_;
    return {iterator{this, idx}, true};
  }

  std::pair<iterator, bool> emplace(std::uint64_t key, V&& v) {
    return try_emplace(key, std::move(v));
  }

  /// Default-constructs on first touch (only instantiated when used, so
  /// maps of non-default-constructible V simply avoid operator[]).
  V& operator[](std::uint64_t key) {
    return try_emplace(key).first->second;
  }

  /// Erases `key` if present; returns the number of entries removed.
  std::size_t erase(std::uint64_t key) {
    if (slots_.empty()) return 0;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = detail::probe_start(key, mask);; i = (i + 1) & mask) {
      if (slots_[i] == kEmptySlot) return 0;
      if (slots_[i] >= 0 && keys_[i] == key) {
        const auto idx = static_cast<std::uint32_t>(slots_[i]);
        slots_[i] = kTombSlot;
        ++tombstones_;
        release_node(idx);
        --size_;
        return 1;
      }
    }
  }

  void clear() {
    for (std::uint32_t i = 0; i < node_count_; ++i) {
      if (node(i).live) {
        node(i).entry().~Entry();
        node(i).live = false;
      }
    }
    slots_.assign(slots_.size(), kEmptySlot);
    free_nodes_.clear();
    // Recycle all nodes, highest index first, so the next insert reuses
    // node 0 (LIFO pop) and iteration order restarts from scratch.
    for (std::uint32_t i = node_count_; i-- > 0;) free_nodes_.push_back(i);
    size_ = 0;
    tombstones_ = 0;
  }

  /// Index occupancy (live entries over probe capacity); the observability
  /// gauge surfaced per scenario.  Kept below ~0.75 by rehashing.
  [[nodiscard]] double load_factor() const {
    return slots_.empty()
               ? 0.0
               : static_cast<double>(size_) /
                     static_cast<double>(slots_.size());
  }
  [[nodiscard]] std::size_t index_capacity() const { return slots_.size(); }

 private:
  static constexpr std::uint32_t kNpos = 0xFFFFFFFFu;
  static constexpr std::int32_t kEmptySlot = -1;
  static constexpr std::int32_t kTombSlot = -2;
  static constexpr std::size_t kChunkNodes = 32;
  static constexpr std::size_t kInitialSlots = 16;

  struct Node {
    alignas(Entry) unsigned char storage[sizeof(Entry)];
    bool live = false;

    [[nodiscard]] Entry& entry() {
      return *std::launder(reinterpret_cast<Entry*>(storage));
    }
    [[nodiscard]] const Entry& entry() const {
      return *std::launder(reinterpret_cast<const Entry*>(storage));
    }
  };

  [[nodiscard]] Node& node(std::uint32_t idx) {
    return chunks_[idx / kChunkNodes][idx % kChunkNodes];
  }
  [[nodiscard]] const Node& node(std::uint32_t idx) const {
    return chunks_[idx / kChunkNodes][idx % kChunkNodes];
  }

  /// First live node at or after `idx` (kNpos when none) — the iterator's
  /// stepping primitive.
  [[nodiscard]] std::uint32_t next_live(std::uint32_t idx) const {
    for (; idx < node_count_; ++idx) {
      if (node(idx).live) return idx;
    }
    return kNpos;
  }

  [[nodiscard]] std::uint32_t find_node(std::uint64_t key) const {
    if (slots_.empty()) return kNpos;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = detail::probe_start(key, mask);; i = (i + 1) & mask) {
      if (slots_[i] == kEmptySlot) return kNpos;
      if (slots_[i] >= 0 && keys_[i] == key) {
        return static_cast<std::uint32_t>(slots_[i]);
      }
    }
  }

  /// Grows / rebuilds the index when an insert would push occupancy
  /// (including tombstones) past 3/4.
  void reserve_for_insert() {
    if (slots_.empty()) {
      rehash(kInitialSlots);
      return;
    }
    if ((size_ + tombstones_ + 1) * 4 > slots_.size() * 3) {
      // Double only when genuinely full; a tombstone-heavy index rebuilds
      // at the same size.
      rehash((size_ + 1) * 4 > slots_.size() * 3 ? slots_.size() * 2
                                                 : slots_.size());
    }
  }

  void rehash(std::size_t new_cap) {
    slots_.assign(new_cap, kEmptySlot);
    keys_.resize(new_cap);
    tombstones_ = 0;
    for (std::uint32_t idx = 0; idx < node_count_; ++idx) {
      if (node(idx).live) index_insert(node(idx).entry().first, idx);
    }
  }

  /// Writes (key -> idx) into the first free probe slot.  The key must not
  /// already be indexed.
  void index_insert(std::uint64_t key, std::uint32_t idx) {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = detail::probe_start(key, mask);; i = (i + 1) & mask) {
      if (slots_[i] < 0) {
        if (slots_[i] == kTombSlot) --tombstones_;
        slots_[i] = static_cast<std::int32_t>(idx);
        keys_[i] = key;
        return;
      }
    }
  }

  [[nodiscard]] std::uint32_t alloc_node() {
    if (!free_nodes_.empty()) {
      const std::uint32_t idx = free_nodes_.back();
      free_nodes_.pop_back();
      return idx;
    }
    if (node_count_ == chunks_.size() * kChunkNodes) {
      chunks_.push_back(std::make_unique<Node[]>(kChunkNodes));
    }
    return node_count_++;
  }

  void release_node(std::uint32_t idx) {
    node(idx).entry().~Entry();
    node(idx).live = false;
    free_nodes_.push_back(idx);
  }

  // Index: parallel arrays of slot refs (kEmptySlot / kTombSlot / node
  // index) and probe keys, always a power of two long.
  std::vector<std::int32_t> slots_;
  std::vector<std::uint64_t> keys_;
  // Value slab: chunked, stable addresses, freed nodes recycled LIFO.
  std::vector<std::unique_ptr<Node[]>> chunks_;
  std::vector<std::uint32_t> free_nodes_;
  std::uint32_t node_count_ = 0;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
};

/// Flat membership set over packed 64-bit keys: insert and clear only (the
/// flood-dedup history table never erases single keys).  ~0ull is reserved
/// as the empty-bucket sentinel — unreachable for real keys because node
/// ids are bounded below 2^24 (net::kMaxNodes).
class FlatSet64 {
 public:
  static constexpr std::uint64_t kEmptyKey = ~0ull;

  /// Inserts `key`; returns true when it was newly added.
  bool insert(std::uint64_t key) {
    assert(key != kEmptyKey && "FlatSet64: key collides with the sentinel");
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) grow();
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = detail::probe_start(key, mask);; i = (i + 1) & mask) {
      if (slots_[i] == kEmptyKey) {
        slots_[i] = key;
        ++size_;
        return true;
      }
      if (slots_[i] == key) return false;
    }
  }

  [[nodiscard]] bool contains(std::uint64_t key) const {
    if (slots_.empty()) return false;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = detail::probe_start(key, mask);; i = (i + 1) & mask) {
      if (slots_[i] == kEmptyKey) return false;
      if (slots_[i] == key) return true;
    }
  }

  void clear() {
    slots_.assign(slots_.size(), kEmptyKey);
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] double load_factor() const {
    return slots_.empty()
               ? 0.0
               : static_cast<double>(size_) /
                     static_cast<double>(slots_.size());
  }
  [[nodiscard]] std::size_t index_capacity() const { return slots_.size(); }

 private:
  static constexpr std::size_t kInitialSlots = 32;

  void grow() {
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(old.empty() ? kInitialSlots : old.size() * 2, kEmptyKey);
    const std::size_t mask = slots_.size() - 1;
    for (const std::uint64_t key : old) {
      if (key == kEmptyKey) continue;
      std::size_t i = detail::probe_start(key, mask);
      while (slots_[i] != kEmptyKey) i = (i + 1) & mask;
      slots_[i] = key;
    }
  }

  std::vector<std::uint64_t> slots_;
  std::size_t size_ = 0;
};

}  // namespace rica::util
