#include "util/spec_parse.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace rica::util {

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string csv_list(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& name : names) {
    out += out.empty() ? "" : ", ";
    out += name;
  }
  return out;
}

double parse_spec_double(std::string_view domain, std::string_view key,
                         const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string(domain) + " param " +
                                std::string(key) +
                                ": not a number: " + value);
  }
}

void require_spec(bool ok, std::string_view domain, std::string_view key,
                  std::string_view constraint) {
  if (!ok) {
    throw std::invalid_argument(std::string(domain) + " param " +
                                std::string(key) + " must be " +
                                std::string(constraint));
  }
}

SpecParts split_spec(std::string_view spec, std::string_view domain) {
  SpecParts parts;
  const auto colon = spec.find(':');
  parts.head = std::string(spec.substr(0, colon));
  std::string params(colon == std::string_view::npos
                         ? std::string_view{}
                         : spec.substr(colon + 1));
  std::size_t pos = 0;
  while (pos <= params.size()) {
    const auto comma = params.find(',', pos);
    const std::string item = params.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? params.size() + 1 : comma + 1;
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("malformed " + std::string(domain) +
                                  " param (want key=value): " + item);
    }
    parts.params.emplace_back(item.substr(0, eq), item.substr(eq + 1));
  }
  return parts;
}

}  // namespace rica::util
