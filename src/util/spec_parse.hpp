// Shared machinery for the "name[:key=value,...]" spec-string grammar used
// by the pluggable model subsystems (mobility `--mobility`, traffic
// `--traffic`).  One implementation so the grammar — and its error-message
// shape — can never diverge between the axes.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rica::util {

/// ASCII lower-case copy (spec names are case-insensitive).
[[nodiscard]] std::string lower(std::string_view s);

/// Joins names with ", " for known-choices error messages.
[[nodiscard]] std::string csv_list(const std::vector<std::string>& names);

/// Strict double parse for a spec param; throws std::invalid_argument
/// "<domain> param <key>: not a number: <value>" on anything trailing.
[[nodiscard]] double parse_spec_double(std::string_view domain,
                                       std::string_view key,
                                       const std::string& value);

/// Constraint check; throws std::invalid_argument
/// "<domain> param <key> must be <constraint>" when violated.
void require_spec(bool ok, std::string_view domain, std::string_view key,
                  std::string_view constraint);

/// A spec split into its head name and ordered key=value params.
struct SpecParts {
  std::string head;
  std::vector<std::pair<std::string, std::string>> params;
};

/// Splits "name[:k=v,...]"; empty items between commas are skipped, an item
/// without '=' throws "malformed <domain> param (want key=value): <item>".
[[nodiscard]] SpecParts split_spec(std::string_view spec,
                                   std::string_view domain);

}  // namespace rica::util
