// Fixed-width table printing for the figure-reproduction benches.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rica::harness {

/// Accumulates rows of strings and prints them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders with two-space column gaps; the header gets a dashed rule.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (no trailing garbage).
[[nodiscard]] std::string fmt(double value, int precision = 1);

}  // namespace rica::harness
