// A tiny command-line flag parser for the bench and example binaries.
//
// Supported forms: --name value and --name=value.  Unknown flags abort with
// a usage message so typos never silently run the wrong experiment.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rica::harness {

/// Parsed command-line flags with typed accessors and defaults.
class Flags {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input.
  Flags(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] double get(const std::string& name, double fallback) const;
  [[nodiscard]] int get(const std::string& name, int fallback) const;
  [[nodiscard]] std::uint64_t get(const std::string& name,
                                  std::uint64_t fallback) const;

  /// Comma-separated list of doubles (e.g. --speeds 0,18,36).
  [[nodiscard]] std::vector<double> get_list(
      const std::string& name, const std::vector<double>& fallback) const;

  /// Names seen on the command line (for validation by the binary).
  [[nodiscard]] const std::map<std::string, std::string>& all() const {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Common scale flags shared by every figure bench:
///   --trials N        independent seeds per point (default `def_trials`)
///   --sim-time S      seconds of simulated time (default `def_sim_s`)
///   --seed S          base seed
///   --paper-scale     shorthand for the paper's 25 trials x 500 s
///   --threads N       worker threads for the sweep grid (0 = one per core)
///   --preset NAME     scenario preset: paper, dense-urban, sparse-rural,
///                     metro, large-scale (see scenario_presets())
///   --mobility SPEC   mobility model "model[:k=v,...]": waypoint, walk,
///                     gauss-markov, group, manhattan, trace:file=PATH
///                     (validated here so a typo fails before any cell runs)
///   --traffic SPEC    traffic model "model[:k=v,...]": poisson, cbr, onoff,
///                     pareto, reqresp; every model takes pattern=random|
///                     sink|hotspot|ring (validated here, same as mobility)
///   --pause S         pause on arrival, seconds (waypoint/walk legs)
///   --warmup S        measurement warmup, seconds: metrics reset once at
///                     t = S and report over (S, sim end].  Defaults to the
///                     preset's warmup capped at 20% of --sim-time; pass
///                     --warmup 0 to measure the whole run (bit-identical
///                     to the pre-warmup harness).
struct BenchScale {
  int trials;
  double sim_s;
  std::uint64_t seed;
  int threads = 0;            ///< 0 = hardware concurrency
  std::string preset = "paper";
  std::string mobility = "waypoint";
  std::string traffic = "poisson";
  double pause_s = 3.0;       ///< the paper's §III-A default
  double warmup_s = 0.0;      ///< resolved warmup (explicit or preset cap)
  bool verbose = true;        ///< per-cell progress notes on stderr
};
[[nodiscard]] BenchScale bench_scale(const Flags& flags, int def_trials,
                                     double def_sim_s);

}  // namespace rica::harness
