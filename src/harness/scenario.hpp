// Experiment harness: builds a full network + traffic for one of the five
// protocols, runs it, and returns the paper's §III metrics.  Multi-trial
// sweeps average over independent seeds exactly as the paper averages over
// 25 simulation runs.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/rica.hpp"
#include "mobility/mobility_model.hpp"
#include "obs/anomaly.hpp"
#include "sim/simulator.hpp"
#include "stats/metrics.hpp"

namespace rica::harness {

/// The five protocols of the paper's comparison.
enum class ProtocolKind { kRica, kBgca, kAbr, kAodv, kLinkState };

inline constexpr std::array<ProtocolKind, 5> kAllProtocols = {
    ProtocolKind::kAodv, ProtocolKind::kRica, ProtocolKind::kBgca,
    ProtocolKind::kAbr, ProtocolKind::kLinkState};

[[nodiscard]] std::string_view to_string(ProtocolKind kind);

/// Parses "RICA", "aodv", "link-state", ... (case-insensitive).
[[nodiscard]] ProtocolKind protocol_from_string(std::string_view name);

/// One experiment instance.  Defaults are the paper's §III-A parameters
/// except `sim_s`, which the bench flags raise to 500 s at paper scale.
struct ScenarioConfig {
  ProtocolKind protocol = ProtocolKind::kRica;
  std::size_t num_nodes = 50;
  double field_m = 1000.0;
  double radio_range_m = 250.0;
  double mean_speed_kmh = 36.0;  ///< speeds ~ U(0, 2*mean); paper's x-axis
  double pause_s = 3.0;
  /// Mobility model spec "model[:k=v,...]" (see mobility::parse_mobility_spec);
  /// field size, speed, and pause always come from the scenario fields above.
  std::string mobility = "waypoint";
  std::size_t num_pairs = 10;
  double pkts_per_s = 10.0;
  std::uint16_t packet_bytes = 512;
  /// Traffic model spec "model[:k=v,...]" (see traffic::parse_traffic_spec);
  /// per-flow rate and payload size always come from the fields above, so
  /// the spec composes with the paper's load axis.  The default reproduces
  /// the pre-subsystem workload bit for bit.
  std::string traffic = "poisson";
  double sim_s = 100.0;
  /// Measurement warmup, seconds: metrics reset once at t = warmup_s (a
  /// single epoch-reset event, so the event stream is identical to a
  /// warmup-free run) and rates are reported over (warmup_s, sim_s].  0
  /// measures the whole run, bit-identical to the pre-warmup harness.
  double warmup_s = 0.0;
  std::uint64_t seed = 1;
  /// Sharded-kernel knobs (see sim/simulator.hpp and channel/lookahead.hpp).
  /// shards > 1 splits the arena into grid-column stripes with one event
  /// wheel each; `threads` workers stage them behind the channel-derived
  /// conservative window.  Neither field joins trial_seed: the kernel's
  /// global-sequence commit order makes the event stream — and every golden
  /// hash — identical for any shard/thread count, so the same cell seeds
  /// must be replayed regardless of how the kernel is parallelized.
  unsigned threads = 1;
  std::uint32_t shards = 1;
  /// RICA tunables used when protocol == kRica (ablation studies).
  core::RicaConfig rica{};
  // -- observability (all off by default) -----------------------------------
  // None of these fields joins trial_seed hashing or perturbs the event
  // stream feeding the metrics hash, so an instrumented run replays the
  // exact seeds — and golden hashes — of an uninstrumented one.  (A run
  // with sampling enabled does execute extra sampler events, moving
  // events_executed; the stream hash never sees them.)
  std::string trace_out;    ///< JSONL structured-trace path ("" = off)
  std::string trace_filter = "all";  ///< packet|route|kernel|span|all list
  std::string perfetto_out;  ///< Chrome trace_event JSON path ("" = off)
  std::string series_out;    ///< time-series CSV path ("" = off)
  double sample_dt_s = 0.0;  ///< series sampling period; 0 = 1 s default
  /// Always-on flight recorder: ring capacity in records, 0 = off.  The
  /// recorder sees every record family (spans included) and costs a struct
  /// copy per record — cheap enough to leave on in long runs.
  std::size_t flight_recorder = 0;
  /// Flight-recorder dump path.  Written by the first anomaly trigger when
  /// watchdogs are on, otherwise once at run end (trigger "exit").
  /// Requires flight_recorder > 0.
  std::string flight_dump;
  /// Arms the anomaly watchdogs (see obs::AnomalyConfig); trigger counters
  /// land in the registry under "anomaly.*" whether or not a flight
  /// recorder is attached.
  bool watchdogs = false;
  obs::AnomalyConfig anomaly{};
};

/// A named workload preset: the paper's baseline plus the larger/denser
/// populations the spatial neighbor index makes affordable.  Field side is
/// chosen so the preset's advertised area holds (e.g. 2 km² -> ~1414 m).
struct ScenarioPreset {
  std::string_view name;
  std::string_view summary;
  std::size_t num_nodes;
  double field_m;
  std::size_t num_pairs;
  /// Default measurement warmup for the preset, seconds: long enough for
  /// the mobility transient (random-waypoint's speed decay scales with the
  /// field crossing time) and route discovery to settle.  bench_scale caps
  /// it at 20% of the simulated time so short smoke runs keep a window.
  double warmup_s;
};

/// All built-in presets: paper, dense-urban, sparse-rural, metro,
/// large-scale.
[[nodiscard]] const std::vector<ScenarioPreset>& scenario_presets();

/// The named preset; throws std::invalid_argument (listing the known
/// presets) for unknown names.
[[nodiscard]] const ScenarioPreset& find_preset(std::string_view name);

/// A ScenarioConfig with the named preset's population applied over the
/// paper's defaults.  Throws std::invalid_argument for unknown names.
/// The preset's default warmup is *not* applied here — the bench flags
/// decide the measurement window (see bench_scale) — so direct
/// run_scenario users keep whole-run measurement unless they opt in.
[[nodiscard]] ScenarioConfig preset_config(std::string_view name);

/// The mobility configuration a scenario realizes: the spec string parsed,
/// with field, speed bound (2 x mean, the paper's U(0, 2*mean) draw), and
/// pause taken from the scenario fields.  The single source of truth shared
/// by the network builder, trace recording (quickstart --record-trace), and
/// tests — so a realization recorded outside a run is guaranteed to match
/// the trajectories the run itself realizes for the same seed.
[[nodiscard]] mobility::MobilityConfig scenario_mobility_config(
    const ScenarioConfig& cfg);

/// Validates a scenario before any expensive construction: population
/// bounds (0 < num_nodes <= 2^24, mirroring the Network's node-id packing
/// limit), kernel shard bounds (<= 64 shard ids, and no more shards than
/// the arena holds grid columns at the radio range), and the measurement
/// window (0 <= warmup < sim time).  Throws std::invalid_argument with a
/// message naming the offending value; run_scenario calls this first, so
/// every entry point fails identically before a network is built.
void validate_scenario(const ScenarioConfig& cfg);

/// A run's outcome: the §III metrics.
using ScenarioResult = stats::MetricsSummary;

/// Runs a single trial.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioConfig& cfg);

/// Per-metric mean over trials, including the element-wise mean of the
/// throughput time series.
[[nodiscard]] ScenarioResult average(const std::vector<ScenarioResult>& runs);

/// Deterministic per-trial seed: a SplitMix64 hash of the experiment cell
/// (base seed, protocol, speed, load, population) and the trial number.
/// Unlike the old seed, seed+1, ... scheme, nearby base seeds and adjacent
/// grid cells never share RNG streams, so cells stay independent no matter
/// how a (possibly parallel) sweep enumerates them.
[[nodiscard]] std::uint64_t trial_seed(const ScenarioConfig& cfg, int trial);

/// Runs `trials` independent hashed seeds (see trial_seed) and averages.
[[nodiscard]] ScenarioResult run_trials(ScenarioConfig cfg, int trials);

}  // namespace rica::harness
