#include "harness/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace rica::harness {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i])) << row[i];
      if (i + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

}  // namespace rica::harness
