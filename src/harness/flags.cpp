#include "harness/flags.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "harness/scenario.hpp"
#include "mobility/mobility_model.hpp"
#include "traffic/traffic_model.hpp"

namespace rica::harness {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--flag value" or a bare boolean "--flag".
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "1";
    }
  }
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::get(const std::string& name,
                       const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

double Flags::get(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::stod(it->second);
}

int Flags::get(const std::string& name, int fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::stoi(it->second);
}

std::uint64_t Flags::get(const std::string& name,
                         std::uint64_t fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::stoull(it->second);
}

std::vector<double> Flags::get_list(const std::string& name,
                                    const std::vector<double>& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<double> out;
  std::stringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stod(item));
  }
  return out;
}

BenchScale bench_scale(const Flags& flags, int def_trials, double def_sim_s) {
  BenchScale scale{};
  if (flags.has("paper-scale")) {
    scale.trials = 25;
    scale.sim_s = 500.0;
  } else {
    scale.trials = def_trials;
    scale.sim_s = def_sim_s;
  }
  scale.trials = flags.get("trials", scale.trials);
  scale.sim_s = flags.get("sim-time", scale.sim_s);
  scale.seed = flags.get("seed", static_cast<std::uint64_t>(1));
  scale.threads = flags.get("threads", 0);
  scale.preset = flags.get("preset", scale.preset);
  scale.mobility = flags.get("mobility", scale.mobility);
  // Validate the specs eagerly: a typo should fail with the known-model
  // list before any experiment cell runs, not after.
  (void)mobility::parse_mobility_spec(scale.mobility);
  scale.traffic = flags.get("traffic", scale.traffic);
  (void)traffic::parse_traffic_spec(scale.traffic);
  scale.pause_s = flags.get("pause", scale.pause_s);
  if (scale.pause_s < 0.0) {
    throw std::invalid_argument("--pause must be >= 0 seconds");
  }
  // Warmup: explicit flag wins (validated so the whole run never warms up);
  // otherwise the preset's default, capped at 20% of the simulated time so
  // short smoke runs still keep a measurement window.  The preset lookup
  // also front-loads the unknown-preset error before any cell runs.
  const ScenarioPreset& preset = find_preset(scale.preset);
  if (flags.has("warmup")) {
    scale.warmup_s = flags.get("warmup", 0.0);
    if (scale.warmup_s < 0.0) {
      throw std::invalid_argument("--warmup must be >= 0 seconds");
    }
    if (scale.warmup_s >= scale.sim_s) {
      throw std::invalid_argument(
          "--warmup must leave a measurement window (< --sim-time)");
    }
  } else {
    scale.warmup_s = std::min(preset.warmup_s, 0.2 * scale.sim_s);
  }
  return scale;
}

}  // namespace rica::harness
