// Speed/load sweeps shared by the figure-reproduction benches.
//
// Figures 2, 3 and 4 of the paper plot three metrics of the same experiment
// grid: {5 protocols} x {mean speeds 0..72 km/h} x {10, 20 pkt/s}.  The
// sweep runner executes that grid once (multi-trial averaged) and the bench
// binaries print the column they reproduce.
//
// Every grid cell is an independent Network owning its full stack, so the
// runner executes cells on a worker pool (`BenchScale::threads`; 0 = one per
// core).  Per-cell seeds are hashed from the cell coordinates (see
// trial_seed) and results land in pre-assigned slots, so the output is
// bit-identical to a serial run for a fixed seed regardless of thread count
// or scheduling.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "harness/flags.hpp"
#include "harness/scenario.hpp"

namespace rica::harness {

/// One grid cell: mobility model x protocol x speed x offered load.
struct SweepPoint {
  ProtocolKind protocol;
  std::string mobility;  ///< model spec, e.g. "waypoint", "gauss-markov"
  double mean_speed_kmh = 0.0;
  double pkts_per_s = 0.0;
  ScenarioResult result;
};

/// The paper's x-axis: mean speeds 0..72 km/h (MAXSPEED 0..144).
[[nodiscard]] std::vector<double> paper_speeds();

/// Runs the full grid on `scale.threads` workers over `scale.preset`'s
/// population under `scale.mobility`.  Progress notes go to stderr (unless
/// `scale.verbose` is off) so stdout stays a clean table stream.
[[nodiscard]] std::vector<SweepPoint> run_speed_sweep(
    const std::vector<double>& speeds_kmh, const std::vector<double>& loads,
    const BenchScale& scale);

/// The full grid with an explicit mobility axis: every model spec in
/// `mobilities` runs the whole {speed x load x protocol} grid (cells in
/// (mobility, load, speed, protocol) order).  Scheduling stays bit-identical
/// to a serial enumeration for a fixed seed regardless of thread count.
[[nodiscard]] std::vector<SweepPoint> run_speed_sweep(
    const std::vector<double>& speeds_kmh, const std::vector<double>& loads,
    const std::vector<std::string>& mobilities, const BenchScale& scale);

/// Prints one "figure": rows = speed, columns = protocols, cells =
/// `metric(result)` formatted with `precision` digits.  Expects a
/// single-mobility grid (a multi-model grid would collapse onto the first
/// model's cells); fig7 prints the mobility axis itself.
void print_figure(std::ostream& os, const std::vector<SweepPoint>& grid,
                  double load, const std::string& title,
                  const std::function<double(const ScenarioResult&)>& metric,
                  int precision = 1);

}  // namespace rica::harness
