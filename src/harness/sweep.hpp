// Speed/load sweeps shared by the figure-reproduction benches.
//
// Figures 2, 3 and 4 of the paper plot three metrics of the same experiment
// grid: {5 protocols} x {mean speeds 0..72 km/h} x {10, 20 pkt/s}.  The
// sweep runner executes that grid once (multi-trial averaged) and the bench
// binaries print the column they reproduce.
//
// Every grid cell is an independent Network owning its full stack, so the
// runner executes cells on a worker pool (`BenchScale::threads`; 0 = one per
// core).  Per-cell seeds are hashed from the cell coordinates (see
// trial_seed) and results land in pre-assigned slots, so the output is
// bit-identical to a serial run for a fixed seed regardless of thread count
// or scheduling.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "harness/flags.hpp"
#include "harness/scenario.hpp"

namespace rica::harness {

/// One grid cell: traffic model x mobility model x protocol x speed x load.
struct SweepPoint {
  ProtocolKind protocol;
  std::string mobility;  ///< model spec, e.g. "waypoint", "gauss-markov"
  std::string traffic;   ///< traffic spec, e.g. "poisson", "cbr:jitter=0.2"
  double mean_speed_kmh = 0.0;
  double pkts_per_s = 0.0;
  ScenarioResult result;
};

/// The paper's x-axis: mean speeds 0..72 km/h (MAXSPEED 0..144).
[[nodiscard]] std::vector<double> paper_speeds();

/// Runs the full grid on `scale.threads` workers over `scale.preset`'s
/// population under `scale.mobility`.  Progress notes go to stderr (unless
/// `scale.verbose` is off) so stdout stays a clean table stream.
[[nodiscard]] std::vector<SweepPoint> run_speed_sweep(
    const std::vector<double>& speeds_kmh, const std::vector<double>& loads,
    const BenchScale& scale);

/// The full grid with an explicit mobility axis: every model spec in
/// `mobilities` runs the whole {speed x load x protocol} grid (cells in
/// (mobility, load, speed, protocol) order).  Scheduling stays bit-identical
/// to a serial enumeration for a fixed seed regardless of thread count.
[[nodiscard]] std::vector<SweepPoint> run_speed_sweep(
    const std::vector<double>& speeds_kmh, const std::vector<double>& loads,
    const std::vector<std::string>& mobilities, const BenchScale& scale);

/// The full grid with explicit mobility *and* traffic axes: every traffic
/// spec in `traffics` runs the whole {mobility x load x speed x protocol}
/// grid (cells in (traffic, mobility, load, speed, protocol) order).  The
/// parallel == serial bit-identity holds across both axes.
[[nodiscard]] std::vector<SweepPoint> run_speed_sweep(
    const std::vector<double>& speeds_kmh, const std::vector<double>& loads,
    const std::vector<std::string>& mobilities,
    const std::vector<std::string>& traffics, const BenchScale& scale);

/// Prints one "figure": rows = speed, columns = protocols, cells =
/// `metric(result)` formatted with `precision` digits.  Expects a
/// single-mobility grid (a multi-model grid would collapse onto the first
/// model's cells); fig7 prints the mobility axis itself.
void print_figure(std::ostream& os, const std::vector<SweepPoint>& grid,
                  double load, const std::string& title,
                  const std::function<double(const ScenarioResult&)>& metric,
                  int precision = 1);

/// Prints one model-axis "figure": rows = `keys` in order, columns =
/// protocols, cells = `metric(result)` of the first grid cell whose
/// `key_of` field matches the row (blank when no cell matches, so a
/// partial grid shows a hole instead of silently shifting the row).
/// Serves both fig7 (key_of = mobility spec) and fig8 (traffic spec).
/// key_of returns by value so callables that compute their key are safe.
void print_axis_figure(
    std::ostream& os, const std::vector<SweepPoint>& grid,
    const std::vector<std::string>& keys, const std::string& axis_label,
    const std::string& title,
    const std::function<std::string(const SweepPoint&)>& key_of,
    const std::function<double(const ScenarioResult&)>& metric,
    int precision = 1);

}  // namespace rica::harness
