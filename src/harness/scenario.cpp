#include "harness/scenario.hpp"

#include <algorithm>
#include <bit>
#include <cctype>
#include <map>
#include <memory>
#include <stdexcept>

#include "core/rica.hpp"
#include "mobility/mobility_model.hpp"
#include "net/network.hpp"
#include "obs/anomaly.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/perfetto.hpp"
#include "obs/registry.hpp"
#include "obs/sampler.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "routing/abr/abr.hpp"
#include "routing/aodv/aodv.hpp"
#include "routing/bgca/bgca.hpp"
#include "routing/linkstate/linkstate.hpp"
#include "sim/random.hpp"
#include "sim/sharding.hpp"
#include "traffic/traffic_model.hpp"

namespace rica::harness {

std::string_view to_string(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kRica:
      return "RICA";
    case ProtocolKind::kBgca:
      return "BGCA";
    case ProtocolKind::kAbr:
      return "ABR";
    case ProtocolKind::kAodv:
      return "AODV";
    case ProtocolKind::kLinkState:
      return "LinkState";
  }
  return "?";
}

ProtocolKind protocol_from_string(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "rica") return ProtocolKind::kRica;
  if (lower == "bgca") return ProtocolKind::kBgca;
  if (lower == "abr") return ProtocolKind::kAbr;
  if (lower == "aodv") return ProtocolKind::kAodv;
  if (lower == "linkstate" || lower == "link-state" || lower == "ls") {
    return ProtocolKind::kLinkState;
  }
  throw std::invalid_argument("unknown protocol: " + std::string(name));
}

const std::vector<ScenarioPreset>& scenario_presets() {
  // Areas: paper/dense-urban 1 km², sparse-rural 2 km², metro 3 km²,
  // large-scale 200 km² (a city at the paper's density: ~50 nodes/km²).
  // Traffic pairs scale with population (the paper's 10 pairs per 50 nodes).
  // Warmup defaults scale with the field crossing time (the random-waypoint
  // speed transient decays over a few crossings at the mean speed).
  static const std::vector<ScenarioPreset> presets = {
      {"paper", "the paper's §III-A setting: 50 nodes / 1 km²", 50, 1000.0,
       10, 20.0},
      {"dense-urban", "200 nodes / 1 km²: contention-heavy city block", 200,
       1000.0, 40, 20.0},
      {"sparse-rural", "25 nodes / 2 km²: partition-prone countryside", 25,
       1414.2, 5, 30.0},
      {"metro", "500 nodes / 3 km²: stress the scale-out path", 500, 1732.1,
       100, 30.0},
      {"large-scale", "10000 nodes / 200 km²: city-scale, needs the sharded "
       "kernel", 10000, 14142.1, 2000, 30.0},
  };
  return presets;
}

const ScenarioPreset& find_preset(std::string_view name) {
  for (const auto& preset : scenario_presets()) {
    if (preset.name == name) return preset;
  }
  std::string known;
  for (const auto& preset : scenario_presets()) {
    known += known.empty() ? "" : ", ";
    known += preset.name;
  }
  throw std::invalid_argument("unknown preset: " + std::string(name) +
                              " (known: " + known + ")");
}

ScenarioConfig preset_config(std::string_view name) {
  const ScenarioPreset& preset = find_preset(name);
  ScenarioConfig cfg;
  cfg.num_nodes = preset.num_nodes;
  cfg.field_m = preset.field_m;
  cfg.num_pairs = preset.num_pairs;
  return cfg;
}

mobility::MobilityConfig scenario_mobility_config(const ScenarioConfig& cfg) {
  mobility::MobilityConfig mob = mobility::parse_mobility_spec(cfg.mobility);
  mob.field = mobility::Field{cfg.field_m, cfg.field_m};
  mob.max_speed_mps = 2.0 * cfg.mean_speed_kmh / 3.6;
  mob.pause = sim::seconds_f(cfg.pause_s);
  return mob;
}

namespace {

net::NetworkConfig to_network_config(const ScenarioConfig& cfg) {
  net::NetworkConfig net;
  net.num_nodes = cfg.num_nodes;
  net.mobility = scenario_mobility_config(cfg);
  net.channel.range_m = cfg.radio_range_m;
  net.seed = cfg.seed;
  net.kernel.threads = cfg.threads;
  net.kernel.shards = cfg.shards;
  return net;
}

/// The paper installs an accurate topology snapshot into every terminal at
/// t = 0 for the link-state runs.
routing::LinkStateProtocol::Topology snapshot_topology(net::Network& network) {
  routing::LinkStateProtocol::Topology topo(network.size());
  for (std::uint32_t a = 0; a < network.size(); ++a) {
    for (std::uint32_t b = 0; b < network.size(); ++b) {
      if (a == b) continue;
      if (const auto s = network.channel().sample(a, b, sim::Time::zero())) {
        topo[a].emplace_back(b, s->csi);
      }
    }
    std::sort(topo[a].begin(), topo[a].end());
  }
  return topo;
}

void install_protocols(net::Network& network, const ScenarioConfig& cfg) {
  for (net::NodeId id = 0; id < network.size(); ++id) {
    auto& node = network.node(id);
    switch (cfg.protocol) {
      case ProtocolKind::kRica:
        node.set_protocol(
            std::make_unique<core::RicaProtocol>(node, cfg.rica));
        break;
      case ProtocolKind::kAodv:
        node.set_protocol(std::make_unique<routing::AodvProtocol>(node));
        break;
      case ProtocolKind::kBgca: {
        routing::BgcaConfig bgca;
        bgca.flow_rate_bps = cfg.pkts_per_s * cfg.packet_bytes * 8.0;
        node.set_protocol(
            std::make_unique<routing::BgcaProtocol>(node, bgca));
        break;
      }
      case ProtocolKind::kAbr:
        node.set_protocol(std::make_unique<routing::AbrProtocol>(node));
        break;
      case ProtocolKind::kLinkState: {
        routing::LinkStateConfig ls;
        ls.num_nodes = cfg.num_nodes;
        node.set_protocol(
            std::make_unique<routing::LinkStateProtocol>(node, ls));
        break;
      }
    }
  }
  if (cfg.protocol == ProtocolKind::kLinkState) {
    const auto topo = snapshot_topology(network);
    for (net::NodeId id = 0; id < network.size(); ++id) {
      auto& proto = static_cast<routing::LinkStateProtocol&>(
          network.node(id).protocol());
      proto.install_topology(topo);
    }
  }
}

}  // namespace

namespace {

/// Connected components of the t=0 range graph, so traffic pairs are
/// routable at simulation start (the paper's near-perfect zero-mobility
/// delivery implies its pairs were connected; partitioned pairs would
/// depress every protocol identically and mask the comparison).
std::vector<std::uint32_t> components_at_t0(net::Network& network) {
  const auto n = static_cast<std::uint32_t>(network.size());
  std::vector<std::uint32_t> comp(n, n);
  std::uint32_t next_comp = 0;
  std::vector<std::uint32_t> stack;
  for (std::uint32_t start = 0; start < n; ++start) {
    if (comp[start] != n) continue;
    comp[start] = next_comp;
    stack.push_back(start);
    while (!stack.empty()) {
      const auto u = stack.back();
      stack.pop_back();
      for (const auto v : network.channel().neighbors_of(u, sim::Time::zero())) {
        if (comp[v] == n) {
          comp[v] = next_comp;
          stack.push_back(v);
        }
      }
    }
    ++next_comp;
  }
  return comp;
}

std::vector<traffic::Flow> connected_flows(net::Network& network,
                                           const ScenarioConfig& cfg,
                                           const traffic::TrafficConfig& tcfg) {
  auto flow_rng = network.rng().stream("flows");
  const auto comp = components_at_t0(network);
  // Resample until every pair is connected at t=0 (bounded; falls back to
  // the last draw for pathological layouts).
  std::vector<traffic::Flow> flows;
  for (int attempt = 0; attempt < 64; ++attempt) {
    flows = traffic::make_flows(tcfg, cfg.num_pairs, cfg.num_nodes,
                                cfg.pkts_per_s, flow_rng);
    const bool ok = std::all_of(flows.begin(), flows.end(),
                                [&comp](const traffic::Flow& f) {
                                  return comp[f.src] == comp[f.dst];
                                });
    if (ok) break;
  }
  return flows;
}

// std::to_string(double) pads six decimals; error messages want "1000 m",
// not "1000.000000 m".
std::string fmt_m(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

void validate_scenario(const ScenarioConfig& cfg) {
  if (cfg.num_nodes == 0) {
    throw std::invalid_argument("num_nodes must be > 0");
  }
  if (cfg.num_nodes > net::kMaxNodes) {
    throw std::invalid_argument(
        "num_nodes = " + std::to_string(cfg.num_nodes) +
        " exceeds the 2^24 node-id limit (routing history keys pack the "
        "origin id into 24 bits)");
  }
  if (cfg.shards > sim::Simulator::kMaxShards) {
    throw std::invalid_argument(
        "shards = " + std::to_string(cfg.shards) + " exceeds the kernel's " +
        std::to_string(sim::Simulator::kMaxShards) +
        "-shard limit (shard ids ride in the top EventId bits)");
  }
  if (cfg.shards > 1) {
    const std::size_t cols = sim::grid_columns(cfg.field_m, cfg.radio_range_m);
    if (cfg.shards > cols) {
      throw std::invalid_argument(
          "shards = " + std::to_string(cfg.shards) + " exceeds the " +
          std::to_string(cols) + " grid column(s) a " + fmt_m(cfg.field_m) +
          " m field holds at " + fmt_m(cfg.radio_range_m) +
          " m range (shards stripe whole columns)");
    }
  }
  if (cfg.warmup_s < 0.0) {
    throw std::invalid_argument("warmup must be >= 0 seconds");
  }
  if (cfg.warmup_s > 0.0 && cfg.warmup_s >= cfg.sim_s) {
    throw std::invalid_argument(
        "warmup (" + fmt_m(cfg.warmup_s) +
        " s) must leave a measurement window before sim end (" +
        fmt_m(cfg.sim_s) + " s)");
  }
  if (!cfg.flight_dump.empty() && cfg.flight_recorder == 0) {
    throw std::invalid_argument(
        "flight_dump requires flight_recorder > 0 (nothing records without "
        "a ring)");
  }
}

ScenarioResult run_scenario(const ScenarioConfig& cfg) {
  // Validate population/shard/warmup bounds and parse the traffic spec
  // before any expensive construction, so a typo fails with a named value,
  // not mid-build.
  validate_scenario(cfg);
  const traffic::TrafficConfig tcfg = traffic::parse_traffic_spec(cfg.traffic);
  net::Network network(to_network_config(cfg));
  install_protocols(network, cfg);

  // Observability attachments — all optional.  With none requested the
  // tracer keeps its null sink, every emission guard stays false, and the
  // run is bit-identical to a pre-observability one.  The sinks are
  // detached before this function returns (see below), so their lifetimes
  // never have to outlast the network.
  obs::Tracer& tracer = network.metrics().tracer();
  obs::TraceFilter filter = obs::TraceFilter::kNone;
  std::unique_ptr<obs::JsonlTraceSink> trace_sink;
  std::unique_ptr<obs::PerfettoWriter> perfetto;
  std::unique_ptr<obs::KernelProbe> probe;
  std::unique_ptr<obs::SeriesSampler> sampler;
  std::unique_ptr<obs::FlightRecorder> recorder;
  std::unique_ptr<obs::SpanBook> span_book;
  std::unique_ptr<obs::AnomalyMonitor> watchdog;
  if (!cfg.trace_out.empty()) {
    filter = obs::parse_trace_filter(cfg.trace_filter);
    trace_sink = std::make_unique<obs::JsonlTraceSink>(cfg.trace_out);
    tracer.attach(trace_sink.get(), filter);
  }
  if (cfg.flight_recorder > 0) {
    // The recorder retains every record family — a postmortem window wants
    // the whole story, not the JSONL sink's filter.
    recorder = std::make_unique<obs::FlightRecorder>(cfg.flight_recorder);
    tracer.attach_recorder(recorder.get(), obs::TraceFilter::kAll);
  }
  if (recorder != nullptr ||
      (trace_sink != nullptr && obs::has(filter, obs::TraceFilter::kSpan))) {
    span_book = std::make_unique<obs::SpanBook>(tracer);
    tracer.set_span_book(span_book.get());
  }
  if (cfg.watchdogs) {
    obs::AnomalySources sources;
    sources.dropped_total = [&network] {
      return network.metrics().dropped_total();
    };
    sources.discovery_failures = [&network] {
      return network.metrics().discovery_failures();
    };
    sources.buffered_packets = [&network] {
      return static_cast<std::uint64_t>(network.buffered_packets());
    };
    sources.stalled_flows = [&network](sim::Time cutoff) {
      // A flow is stalled when it holds in-flight packets but has not
      // delivered since `cutoff`; flows that never delivered count from
      // the epoch start.
      std::uint64_t stalled = 0;
      const sim::Time epoch = network.metrics().epoch_start();
      for (const auto& [id, f] : network.metrics().flow_stats()) {
        if (f.generated <= f.delivered + f.dropped) continue;
        const sim::Time last =
            f.last_delivery > epoch ? f.last_delivery : epoch;
        if (last < cutoff) ++stalled;
      }
      return stalled;
    };
    watchdog = std::make_unique<obs::AnomalyMonitor>(
        cfg.anomaly, std::move(sources), network.registry());
    watchdog->set_recorder(recorder.get(), cfg.flight_dump);
    watchdog->start(network.simulator(), sim::seconds_f(cfg.sim_s));
  }
  if (!cfg.perfetto_out.empty()) {
    perfetto = std::make_unique<obs::PerfettoWriter>(cfg.perfetto_out);
    tracer.set_perfetto(perfetto.get());
  }
  if (perfetto != nullptr || obs::has(filter, obs::TraceFilter::kKernel)) {
    probe = std::make_unique<obs::KernelProbe>(&tracer, perfetto.get());
    // ~200 observation windows per run keeps the kernel series readable at
    // any simulated duration (the observer throttles to this interval).
    network.simulator().set_kernel_observer(
        probe.get(), sim::seconds_f(cfg.sim_s / 200.0));
  }
  if (cfg.sample_dt_s > 0.0 && cfg.series_out.empty()) {
    throw std::invalid_argument("--sample-dt requires --series-out FILE");
  }
  if (!cfg.series_out.empty()) {
    obs::SeriesSource source;
    source.delivered = [&network] { return network.metrics().delivered(); };
    source.control_bits = [&network] {
      return network.metrics().control_bits();
    };
    source.buffered_packets = [&network] {
      return network.buffered_packets();
    };
    sampler =
        std::make_unique<obs::SeriesSampler>(cfg.series_out, std::move(source));
    const double dt_s = cfg.sample_dt_s > 0.0 ? cfg.sample_dt_s : 1.0;
    sampler->start(network.simulator(), sim::seconds_f(dt_s),
                   sim::seconds_f(cfg.sim_s));
  }
  if (cfg.warmup_s > 0.0) {
    // One epoch-reset event ends the transient; it never reorders the rest
    // of the run, so a warmed-up run executes the exact event stream of a
    // cold one plus this event.  It fires one nanosecond *after* w: being
    // scheduled before network/traffic start it holds the lowest tie-break
    // sequence at its timestamp, so at w it would zero *before* same-tick
    // events and count them in the window — at w+1ns (timestamps are whole
    // nanoseconds) everything at t <= w is pre-warmup and the measured
    // window is exactly (w, sim_s], matching a cold run's post-w deltas.
    // The epoch start is stamped with the nominal w for rate normalization.
    const sim::Time w = sim::seconds_f(cfg.warmup_s);
    network.simulator().at(w + sim::Time{1}, [&network, w] {
      network.metrics().reset_epoch(w);
    });
  }

  auto flows = connected_flows(network, cfg, tcfg);
  const auto generator = traffic::make_traffic_model(
      tcfg, network, std::move(flows), cfg.packet_bytes,
      sim::seconds_f(cfg.sim_s), network.rng().stream("traffic"));
  network.start();
  generator->start();
  network.simulator().run_until(sim::seconds_f(cfg.sim_s));
  // Flush still-open spans (detail "in_flight") before any dump so the
  // flight recorder's ring — and a trailing exit dump — carry them.
  if (span_book != nullptr) span_book->finish(sim::seconds_f(cfg.sim_s));
  if (recorder != nullptr && !cfg.flight_dump.empty() &&
      (watchdog == nullptr || !watchdog->dumped())) {
    recorder->dump(cfg.flight_dump, "exit", sim::seconds_f(cfg.sim_s));
  }
  auto summary = network.metrics().finalize(sim::seconds_f(cfg.sim_s));

  // Every scalar statistic flows through the registry snapshot: one
  // registration in Network's constructor is the whole plumbing for a new
  // entry.  The legacy typed fields below are views into the snapshot kept
  // for existing callers (the golden suite pins them against the hashes).
  for (auto& s : network.registry().snapshot()) {
    summary.stats.emplace(s.name, std::move(s));
  }
  // Registered distributions (e.g. the sharded kernel's staged-per-window
  // histogram) join the collector's always-on ones in the summary.
  for (const auto& [name, h] : network.registry().histogram_snapshot()) {
    summary.histograms.insert_or_assign(name, h);
  }
  const auto stat = [&summary](const char* name) {
    const auto it = summary.stats.find(name);
    return it == summary.stats.end() ? 0.0 : it->second.value;
  };
  summary.events_executed =
      static_cast<std::uint64_t>(stat("kernel.events_executed"));
  summary.batched_fires =
      static_cast<std::uint64_t>(stat("kernel.batched_fires"));
  summary.heap_fallbacks =
      static_cast<std::uint64_t>(stat("kernel.heap_fallbacks"));
  summary.peak_pending_events =
      static_cast<std::uint64_t>(stat("kernel.peak_pending"));
  summary.slab_high_water =
      static_cast<std::uint64_t>(stat("kernel.slab_high_water"));
  summary.pool_high_water =
      static_cast<std::uint64_t>(stat("stack.pool_high_water"));
  summary.table_load = stat("stack.table_load");

  // Detach before the sinks (declared after the network) are destroyed, so
  // nothing emitted during teardown can reach a dead sink.
  tracer.attach(nullptr, obs::TraceFilter::kNone);
  tracer.attach_recorder(nullptr, obs::TraceFilter::kNone);
  tracer.set_span_book(nullptr);
  tracer.set_perfetto(nullptr);
  network.simulator().set_kernel_observer(nullptr, sim::Time::zero());
  return summary;
}

ScenarioResult average(const std::vector<ScenarioResult>& runs) {
  ScenarioResult avg;
  if (runs.empty()) return avg;
  const double n = static_cast<double>(runs.size());
  std::size_t series_len = 0;
  for (const auto& r : runs) {
    avg.generated += r.generated;
    avg.delivered += r.delivered;
    avg.delivery_pct += r.delivery_pct / n;
    avg.avg_delay_ms += r.avg_delay_ms / n;
    avg.overhead_kbps += r.overhead_kbps / n;
    avg.avg_link_tput_kbps += r.avg_link_tput_kbps / n;
    avg.avg_hops += r.avg_hops / n;
    avg.control_transmissions += r.control_transmissions;
    avg.control_collisions += r.control_collisions;
    avg.delay_p50_ms += r.delay_p50_ms / n;
    avg.delay_p95_ms += r.delay_p95_ms / n;
    avg.delay_p99_ms += r.delay_p99_ms / n;
    avg.jain_fairness += r.jain_fairness / n;
    avg.events_executed += r.events_executed;
    avg.heap_fallbacks += r.heap_fallbacks;
    avg.batched_fires += r.batched_fires;
    avg.peak_pending_events =
        std::max(avg.peak_pending_events, r.peak_pending_events);
    avg.slab_high_water = std::max(avg.slab_high_water, r.slab_high_water);
    avg.pool_high_water = std::max(avg.pool_high_water, r.pool_high_water);
    avg.table_load = std::max(avg.table_load, r.table_load);
    for (std::size_t i = 0; i < stats::kNumDropReasons; ++i) {
      avg.drops[i] += r.drops[i];
    }
    avg.dropped += r.dropped;
    // Registry samples fold by their own kind — counters sum, gauges keep
    // the max — so a newly registered statistic aggregates correctly with
    // no edit here.
    obs::fold_samples(avg.stats, r.stats);
    // Histograms pool exactly: merge() is an element-wise count add,
    // associative and order-independent, so the aggregate distribution is
    // the distribution of the pooled samples.
    for (const auto& [name, h] : r.histograms) {
      auto [it, inserted] = avg.histograms.try_emplace(name, h);
      if (!inserted) it->second.merge(h);
    }
    // Trial hashes fold in trial order: the aggregate is itself a golden
    // fingerprint of the whole multi-trial cell.
    avg.stream_hash = stats::fnv1a(avg.stream_hash == 0
                                       ? stats::kFnvOffsetBasis
                                       : avg.stream_hash,
                                   r.stream_hash);
    avg.measure_start = std::max(avg.measure_start, r.measure_start);
    series_len = std::max(series_len, r.tput_kbps_series.size());
  }
  avg.tput_kbps_series.assign(series_len, 0.0);
  for (const auto& r : runs) {
    for (std::size_t i = 0; i < r.tput_kbps_series.size(); ++i) {
      avg.tput_kbps_series[i] += r.tput_kbps_series[i] / n;
    }
  }
  // Per-flow tables merge element-wise by flow id: every trial draws the
  // same flow ids (0..num_pairs-1), so rows align by id even though the
  // endpoints differ per seed.  Counts accumulate; rates/percentiles take
  // the per-trial mean like their scalar counterparts.
  std::map<std::uint32_t, stats::FlowSummary> merged;
  for (const auto& r : runs) {
    for (const auto& fs : r.flow_summaries) {
      auto& m = merged[fs.flow];
      m.flow = fs.flow;
      m.generated += fs.generated;
      m.delivered += fs.delivered;
      m.dropped += fs.dropped;
      m.tput_kbps += fs.tput_kbps / n;
      m.delay_p50_ms += fs.delay_p50_ms / n;
      m.delay_p95_ms += fs.delay_p95_ms / n;
      m.delay_p99_ms += fs.delay_p99_ms / n;
    }
  }
  avg.flow_summaries.reserve(merged.size());
  for (const auto& [id, fs] : merged) avg.flow_summaries.push_back(fs);
  // Exact pooled run-level percentiles: re-read from the merged delay
  // histogram, replacing the mean-of-per-trial-percentiles accumulated
  // above (kept as the fallback for hand-built summaries that carry no
  // histograms).  A mean of percentiles is not a percentile of the pool —
  // one slow trial's p95 should shift the pooled p95 by its sample share,
  // not by 1/n of its value.
  const auto pooled = avg.histograms.find("delay_ns");
  if (pooled != avg.histograms.end() && pooled->second.count() > 0) {
    avg.delay_p50_ms = pooled->second.percentile(50.0) / 1e6;
    avg.delay_p95_ms = pooled->second.percentile(95.0) / 1e6;
    avg.delay_p99_ms = pooled->second.percentile(99.0) / 1e6;
  }
  return avg;
}

std::uint64_t trial_seed(const ScenarioConfig& cfg, int trial) {
  const auto mix = [](std::uint64_t h, std::uint64_t v) {
    return sim::splitmix64(h ^ v);
  };
  std::uint64_t h = sim::splitmix64(cfg.seed);
  h = mix(h, static_cast<std::uint64_t>(cfg.protocol));
  h = mix(h, std::bit_cast<std::uint64_t>(cfg.mean_speed_kmh));
  h = mix(h, std::bit_cast<std::uint64_t>(cfg.pkts_per_s));
  h = mix(h, static_cast<std::uint64_t>(cfg.num_nodes));
  h = mix(h, std::bit_cast<std::uint64_t>(cfg.field_m));
  // The mobility model joins the cell hash only when it departs from the
  // paper's waypoint default, so every pre-subsystem waypoint result stays
  // bit-identical while the new mobility axis still gets independent seeds.
  // The *parsed* config is hashed, not the spec string, so aliases ("rwp",
  // "walk:leg=10") seed identically to their canonical forms.
  const auto mob = mobility::parse_mobility_spec(cfg.mobility);
  switch (mob.model) {
    case mobility::ModelKind::kRandomWaypoint:
      break;  // no mix: the pre-subsystem grid keeps its seeds
    case mobility::ModelKind::kRandomWalk:
      h = mix(h, static_cast<std::uint64_t>(mob.model));
      h = mix(h, std::bit_cast<std::uint64_t>(mob.walk_leg_mean_s));
      break;
    case mobility::ModelKind::kGaussMarkov:
      h = mix(h, static_cast<std::uint64_t>(mob.model));
      h = mix(h, std::bit_cast<std::uint64_t>(mob.gm_alpha));
      h = mix(h, std::bit_cast<std::uint64_t>(mob.gm_step_s));
      break;
    case mobility::ModelKind::kGroup:
      h = mix(h, static_cast<std::uint64_t>(mob.model));
      h = mix(h, static_cast<std::uint64_t>(mob.group_size));
      h = mix(h, std::bit_cast<std::uint64_t>(mob.group_radius_m));
      h = mix(h, std::bit_cast<std::uint64_t>(mob.group_speed_frac));
      break;
    case mobility::ModelKind::kManhattan:
      h = mix(h, static_cast<std::uint64_t>(mob.model));
      h = mix(h, std::bit_cast<std::uint64_t>(mob.manhattan_spacing_m));
      h = mix(h, std::bit_cast<std::uint64_t>(mob.manhattan_turn_prob));
      break;
    case mobility::ModelKind::kTrace:
      h = mix(h, static_cast<std::uint64_t>(mob.model));
      for (const char c : mob.trace_file) {
        h = mix(h, static_cast<std::uint64_t>(c));
      }
      break;
  }
  // The traffic model joins the cell hash the same way: only when it
  // departs from the paper's poisson-on-random-pairs default, so every
  // pre-subsystem result keeps its seeds while the traffic axis still gets
  // independent streams per model/pattern.  A domain tag separates the
  // traffic contribution from the mobility one, so e.g. a walk cell and a
  // cbr cell can never collide by mixing the same enum values.
  const auto tr = traffic::parse_traffic_spec(cfg.traffic);
  if (tr.model != traffic::TrafficKind::kPoisson ||
      tr.pattern != traffic::FlowPattern::kRandom) {
    h = mix(h, 0x7af1cULL);
    h = mix(h, static_cast<std::uint64_t>(tr.model));
    h = mix(h, static_cast<std::uint64_t>(tr.pattern));
    switch (tr.model) {
      case traffic::TrafficKind::kPoisson:
        break;
      case traffic::TrafficKind::kCbr:
        h = mix(h, std::bit_cast<std::uint64_t>(tr.cbr_jitter));
        break;
      case traffic::TrafficKind::kOnOff:
        h = mix(h, std::bit_cast<std::uint64_t>(tr.on_mean_s));
        h = mix(h, std::bit_cast<std::uint64_t>(tr.off_mean_s));
        break;
      case traffic::TrafficKind::kPareto:
        h = mix(h, std::bit_cast<std::uint64_t>(tr.on_mean_s));
        h = mix(h, std::bit_cast<std::uint64_t>(tr.off_mean_s));
        h = mix(h, std::bit_cast<std::uint64_t>(tr.pareto_shape));
        break;
      case traffic::TrafficKind::kReqResp:
        h = mix(h, std::bit_cast<std::uint64_t>(tr.think_mean_s));
        h = mix(h, std::bit_cast<std::uint64_t>(tr.timeout_s));
        h = mix(h, static_cast<std::uint64_t>(tr.request_bytes));
        break;
    }
    if (tr.pattern == traffic::FlowPattern::kHotspot) {
      h = mix(h, static_cast<std::uint64_t>(tr.hotspots));
    }
  }
  h = mix(h, static_cast<std::uint64_t>(trial));
  return h;
}

ScenarioResult run_trials(ScenarioConfig cfg, int trials) {
  const ScenarioConfig base = cfg;
  std::vector<ScenarioResult> runs;
  runs.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    cfg.seed = trial_seed(base, t);
    runs.push_back(run_scenario(cfg));
  }
  return average(runs);
}

}  // namespace rica::harness
