#include "harness/sweep.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "harness/table.hpp"

namespace rica::harness {

std::vector<double> paper_speeds() {
  return {0.0, 14.4, 28.8, 43.2, 57.6, 72.0};
}

std::vector<SweepPoint> run_speed_sweep(const std::vector<double>& speeds_kmh,
                                        const std::vector<double>& loads,
                                        const BenchScale& scale) {
  std::vector<SweepPoint> grid;
  grid.reserve(speeds_kmh.size() * loads.size() * kAllProtocols.size());
  for (const double load : loads) {
    for (const double speed : speeds_kmh) {
      for (const ProtocolKind proto : kAllProtocols) {
        ScenarioConfig cfg;
        cfg.protocol = proto;
        cfg.mean_speed_kmh = speed;
        cfg.pkts_per_s = load;
        cfg.sim_s = scale.sim_s;
        cfg.seed = scale.seed;
        std::fprintf(stderr, "[sweep] %-9s speed=%5.1f km/h load=%4.1f pkt/s"
                             " (%d trials x %.0f s)\n",
                     std::string(to_string(proto)).c_str(), speed, load,
                     scale.trials, scale.sim_s);
        grid.push_back(
            SweepPoint{proto, speed, load, run_trials(cfg, scale.trials)});
      }
    }
  }
  return grid;
}

void print_figure(std::ostream& os, const std::vector<SweepPoint>& grid,
                  double load, const std::string& title,
                  const std::function<double(const ScenarioResult&)>& metric,
                  int precision) {
  os << title << '\n';
  std::vector<std::string> header{"speed_kmh"};
  for (const auto proto : kAllProtocols) {
    header.emplace_back(to_string(proto));
  }
  Table table(std::move(header));

  std::vector<double> speeds;
  for (const auto& p : grid) {
    if (p.pkts_per_s != load) continue;
    if (speeds.empty() || speeds.back() != p.mean_speed_kmh) {
      if (std::find(speeds.begin(), speeds.end(), p.mean_speed_kmh) ==
          speeds.end()) {
        speeds.push_back(p.mean_speed_kmh);
      }
    }
  }
  for (const double speed : speeds) {
    std::vector<std::string> row{fmt(speed, 1)};
    for (const auto proto : kAllProtocols) {
      for (const auto& p : grid) {
        if (p.protocol == proto && p.mean_speed_kmh == speed &&
            p.pkts_per_s == load) {
          row.push_back(fmt(metric(p.result), precision));
          break;
        }
      }
    }
    table.add_row(std::move(row));
  }
  table.print(os);
  os << '\n';
}

}  // namespace rica::harness
