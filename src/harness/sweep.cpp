#include "harness/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <mutex>
#include <ostream>
#include <thread>

#include "harness/table.hpp"
#include "mobility/mobility_model.hpp"
#include "mobility/trace.hpp"
#include "traffic/traffic_model.hpp"

namespace rica::harness {

std::vector<double> paper_speeds() {
  return {0.0, 14.4, 28.8, 43.2, 57.6, 72.0};
}

std::vector<SweepPoint> run_speed_sweep(const std::vector<double>& speeds_kmh,
                                        const std::vector<double>& loads,
                                        const BenchScale& scale) {
  return run_speed_sweep(speeds_kmh, loads, {scale.mobility}, scale);
}

std::vector<SweepPoint> run_speed_sweep(
    const std::vector<double>& speeds_kmh, const std::vector<double>& loads,
    const std::vector<std::string>& mobilities, const BenchScale& scale) {
  return run_speed_sweep(speeds_kmh, loads, mobilities, {scale.traffic},
                         scale);
}

std::vector<SweepPoint> run_speed_sweep(
    const std::vector<double>& speeds_kmh, const std::vector<double>& loads,
    const std::vector<std::string>& mobilities,
    const std::vector<std::string>& traffics, const BenchScale& scale) {
  // Resolve the preset and model specs up front so a bad name fails before
  // any work starts.  Trace specs go further: the file is loaded (and
  // validated against the preset's field) here, so an unreadable or
  // malformed trace aborts before minutes of synthetic-model cells run —
  // and the parse lands in the shared cache before worker threads race,
  // so the whole sweep reuses this one load.
  const ScenarioConfig base = preset_config(scale.preset);
  for (const auto& mobility : mobilities) {
    const auto mob = mobility::parse_mobility_spec(mobility);
    if (mob.model == mobility::ModelKind::kTrace) {
      (void)mobility::load_trace_shared(
          mob.trace_file, mobility::Field{base.field_m, base.field_m});
    }
  }
  for (const auto& traffic : traffics) {
    (void)traffic::parse_traffic_spec(traffic);
  }

  // Lay out the grid in the canonical (traffic, mobility, load, speed,
  // protocol) order; each cell owns a fixed output slot so worker
  // scheduling never reorders (or otherwise perturbs) the results.
  std::vector<SweepPoint> grid;
  grid.reserve(traffics.size() * mobilities.size() * speeds_kmh.size() *
               loads.size() * kAllProtocols.size());
  for (const auto& traffic : traffics) {
    for (const auto& mobility : mobilities) {
      for (const double load : loads) {
        for (const double speed : speeds_kmh) {
          for (const ProtocolKind proto : kAllProtocols) {
            grid.push_back(
                SweepPoint{proto, mobility, traffic, speed, load, {}});
          }
        }
      }
    }
  }

  std::atomic<std::size_t> next{0};
  std::mutex log_mu;
  std::mutex error_mu;
  std::exception_ptr first_error;

  const auto run_cell = [&](SweepPoint& cell) {
    ScenarioConfig cfg = base;
    cfg.protocol = cell.protocol;
    cfg.mobility = cell.mobility;
    cfg.traffic = cell.traffic;
    cfg.mean_speed_kmh = cell.mean_speed_kmh;
    cfg.pkts_per_s = cell.pkts_per_s;
    cfg.pause_s = scale.pause_s;
    cfg.sim_s = scale.sim_s;
    cfg.warmup_s = scale.warmup_s;
    cfg.seed = scale.seed;
    if (scale.verbose) {
      const std::scoped_lock lock(log_mu);
      std::fprintf(stderr, "[sweep] %-9s %-12s %-12s speed=%5.1f km/h"
                           " load=%4.1f pkt/s (%d trials x %.0f s)\n",
                   std::string(to_string(cell.protocol)).c_str(),
                   cell.mobility.c_str(), cell.traffic.c_str(),
                   cell.mean_speed_kmh, cell.pkts_per_s, scale.trials,
                   scale.sim_s);
    }
    cell.result = run_trials(cfg, scale.trials);
    if (scale.verbose) {
      // Kernel observability per cell: total events fired across the cell's
      // trials (and how many came off the sorted same-tick batch), the worst
      // trial's pending-event / slab / pool high-water marks, the closures
      // that spilled past the inline buffer, and the open-addressing table
      // occupancy — the knobs that tell whether the event core and the flat
      // memory layout, not the protocols, are the bottleneck at this grid
      // point.
      const std::scoped_lock lock(log_mu);
      std::fprintf(stderr,
                   "[sweep]   done %-9s %-12s %-12s speed=%5.1f: events=%llu"
                   " batched=%llu peak_pending=%llu slab_hw=%llu heap_fb=%llu"
                   " pool_hw=%llu table_load=%.2f\n"
                   "[sweep]        drops=%llu (overflow=%llu expired=%llu"
                   " no_route=%llu link_break=%llu loop_cap=%llu)\n",
                   std::string(to_string(cell.protocol)).c_str(),
                   cell.mobility.c_str(), cell.traffic.c_str(),
                   cell.mean_speed_kmh,
                   static_cast<unsigned long long>(cell.result.events_executed),
                   static_cast<unsigned long long>(cell.result.batched_fires),
                   static_cast<unsigned long long>(
                       cell.result.peak_pending_events),
                   static_cast<unsigned long long>(
                       cell.result.slab_high_water),
                   static_cast<unsigned long long>(
                       cell.result.heap_fallbacks),
                   static_cast<unsigned long long>(
                       cell.result.pool_high_water),
                   cell.result.table_load,
                   static_cast<unsigned long long>(cell.result.dropped),
                   static_cast<unsigned long long>(cell.result.drops[0]),
                   static_cast<unsigned long long>(cell.result.drops[1]),
                   static_cast<unsigned long long>(cell.result.drops[2]),
                   static_cast<unsigned long long>(cell.result.drops[3]),
                   static_cast<unsigned long long>(cell.result.drops[4]));
    }
  };

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= grid.size()) return;
      try {
        run_cell(grid[i]);
      } catch (...) {
        const std::scoped_lock lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t num_workers =
      std::min(grid.size(), static_cast<std::size_t>(
                                scale.threads > 0 ? scale.threads : hw));
  if (num_workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(num_workers);
    for (std::size_t i = 0; i < num_workers; ++i) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  return grid;
}

void print_figure(std::ostream& os, const std::vector<SweepPoint>& grid,
                  double load, const std::string& title,
                  const std::function<double(const ScenarioResult&)>& metric,
                  int precision) {
  os << title << '\n';
  std::vector<std::string> header{"speed_kmh"};
  for (const auto proto : kAllProtocols) {
    header.emplace_back(to_string(proto));
  }
  Table table(std::move(header));

  std::vector<double> speeds;
  for (const auto& p : grid) {
    if (p.pkts_per_s != load) continue;
    if (speeds.empty() || speeds.back() != p.mean_speed_kmh) {
      if (std::find(speeds.begin(), speeds.end(), p.mean_speed_kmh) ==
          speeds.end()) {
        speeds.push_back(p.mean_speed_kmh);
      }
    }
  }
  for (const double speed : speeds) {
    std::vector<std::string> row{fmt(speed, 1)};
    for (const auto proto : kAllProtocols) {
      for (const auto& p : grid) {
        if (p.protocol == proto && p.mean_speed_kmh == speed &&
            p.pkts_per_s == load) {
          row.push_back(fmt(metric(p.result), precision));
          break;
        }
      }
    }
    table.add_row(std::move(row));
  }
  table.print(os);
  os << '\n';
}

void print_axis_figure(
    std::ostream& os, const std::vector<SweepPoint>& grid,
    const std::vector<std::string>& keys, const std::string& axis_label,
    const std::string& title,
    const std::function<std::string(const SweepPoint&)>& key_of,
    const std::function<double(const ScenarioResult&)>& metric,
    int precision) {
  os << title << '\n';
  std::vector<std::string> header{axis_label};
  for (const auto proto : kAllProtocols) {
    header.emplace_back(to_string(proto));
  }
  Table table(std::move(header));
  for (const auto& key : keys) {
    std::vector<std::string> row{key};
    for (const auto proto : kAllProtocols) {
      std::string cell;  // stays blank when the grid has no such point
      for (const auto& p : grid) {
        if (key_of(p) == key && p.protocol == proto) {
          cell = fmt(metric(p.result), precision);
          break;
        }
      }
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  table.print(os);
  os << '\n';
}

}  // namespace rica::harness
