// Constant-bit-rate traffic: fixed inter-arrival gap 1/rate with an
// optional uniform jitter fraction, matching the CBR/UDP workloads of the
// empirical AODV study (arXiv:1109.6502).  Each flow starts at a uniform
// random phase inside its first gap so flows never tick in lockstep (which
// would synchronize MAC contention across the whole population).
#pragma once

#include <string_view>
#include <vector>

#include "traffic/traffic_model.hpp"

namespace rica::traffic {

class CbrTraffic final : public OpenLoopTraffic {
 public:
  CbrTraffic(net::Network& network, std::vector<Flow> flows,
             std::uint16_t packet_bytes, sim::Time stop, sim::RandomStream rng,
             double jitter);

  [[nodiscard]] std::string_view name() const override { return "cbr"; }

 protected:
  double next_gap_s(std::size_t flow_idx) override;

 private:
  double jitter_;                 ///< gap jitter fraction in [0, 1)
  std::vector<bool> started_;     ///< first gap draws the phase offset
};

}  // namespace rica::traffic
