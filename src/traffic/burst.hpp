// Shared machinery for ON/OFF burst models: one remainder-carry loop that
// walks a flow through alternating ON periods (packets at a burst rate) and
// OFF silences, parameterized by the period and in-burst gap distributions.
// The burst rate is (on+off)/on times the flow rate, so every burst model
// offers the scenario's time-averaged load and burstiness is the only
// variable between them.
#pragma once

#include <vector>

#include "traffic/traffic_model.hpp"

namespace rica::traffic {

class BurstTraffic : public OpenLoopTraffic {
 public:
  BurstTraffic(net::Network& network, std::vector<Flow> flows,
               std::uint16_t packet_bytes, sim::Time stop,
               sim::RandomStream rng, double on_mean_s, double off_mean_s);

 protected:
  /// The carry loop: draw the in-burst gap; whenever it overruns the
  /// current ON period, ride out the remnant, insert an OFF silence, and
  /// carry the remainder into a fresh ON period.
  double next_gap_s(std::size_t flow_idx) final;

  /// Duration draws for the ON and OFF periods, seconds.
  [[nodiscard]] virtual double draw_on_s() = 0;
  [[nodiscard]] virtual double draw_off_s() = 0;
  /// Gap between packets inside a burst at `burst_rate` pkt/s.
  [[nodiscard]] virtual double draw_burst_gap_s(double burst_rate) = 0;

  double on_mean_s_;
  double off_mean_s_;

 private:
  struct FlowPhase {
    bool started = false;
    double on_left_s = 0.0;  ///< remaining time in the current ON period
  };

  std::vector<FlowPhase> phase_;
};

}  // namespace rica::traffic
