// Exponential ON/OFF burst traffic: each flow alternates exponential ON
// periods (Poisson arrivals at a burst rate) and exponential OFF silences.
// Correlated, bursty demand is what stresses on-demand route discovery
// hardest (route-request aggregation, arXiv:1608.08725): a burst arriving
// on a cold route floods discovery, then the route idles out during OFF.
#pragma once

#include <string_view>

#include "traffic/burst.hpp"

namespace rica::traffic {

class OnOffTraffic final : public BurstTraffic {
 public:
  using BurstTraffic::BurstTraffic;

  [[nodiscard]] std::string_view name() const override { return "onoff"; }

 protected:
  double draw_on_s() override { return rng_.exponential(on_mean_s_); }
  double draw_off_s() override { return rng_.exponential(off_mean_s_); }
  // Exponential gaps: Poisson arrivals inside the burst.  (The carry across
  // OFF periods is distribution-exact here — exponentials are memoryless.)
  double draw_burst_gap_s(double burst_rate) override {
    return rng_.exponential(1.0 / burst_rate);
  }
};

}  // namespace rica::traffic
