// Closed-loop request/response traffic: each flow's source sends one small
// request, the destination answers with a full-size response the moment the
// request is delivered, and the source thinks (exponential mean `think`)
// before the next request — or gives up after `timeout` seconds and
// re-enters think.  Unlike every open-loop model, the offered load adapts
// to what the network delivers, and *both* endpoints originate data, so
// receiver-initiated discovery is exercised from both ends of the pair.
#pragma once

#include <string_view>
#include <vector>

#include "traffic/traffic_model.hpp"

namespace rica::traffic {

class ReqRespTraffic final : public TrafficModel {
 public:
  ReqRespTraffic(net::Network& network, std::vector<Flow> flows,
                 std::uint16_t packet_bytes, sim::Time stop,
                 sim::RandomStream rng, double think_mean_s, double timeout_s,
                 std::uint16_t request_bytes);

  /// Arms every flow's first think period and hooks the network's delivery
  /// observer (the closed-loop feedback path).
  void start() override;

  [[nodiscard]] std::string_view name() const override { return "reqresp"; }

 private:
  /// Draws a think gap and arms the next request (cancelling any pending
  /// response deadline — the per-flow timer serves both roles).
  void schedule_request(std::size_t flow_idx);
  /// Emits the request and arms the response deadline.
  void send_request(std::size_t flow_idx);
  /// Delivery feedback: answers delivered requests, advances the loop on
  /// delivered responses.
  void on_delivered(const net::DataPacket& pkt);

  double think_mean_s_;
  double timeout_s_;
  std::uint16_t request_bytes_;
  std::vector<bool> awaiting_;  ///< request outstanding, deadline armed
  /// Sequence number of the outstanding request, and of the response that
  /// answers it (kNoSeq until the responder has actually answered).  Both
  /// directions share the flow's sequence space and the generator emits
  /// both sides itself, so it can pair them exactly — a response to an
  /// already-timed-out request can never complete a newer request's loop.
  std::vector<std::uint32_t> awaiting_req_seq_;
  std::vector<std::uint32_t> expected_resp_seq_;
};

}  // namespace rica::traffic
