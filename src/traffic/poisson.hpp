// Poisson application traffic (paper §III-A): a fixed set of terminal pairs,
// each generating 512-byte packets with exponentially distributed
// inter-arrival times.  Ported onto the TrafficModel interface draw for
// draw: the paper-parameter golden stream hashes are unchanged from the
// pre-subsystem generator.
#pragma once

#include <string_view>

#include "traffic/traffic_model.hpp"

namespace rica::traffic {

/// Schedules Poisson packet generation on a network.
class PoissonTraffic final : public OpenLoopTraffic {
 public:
  using OpenLoopTraffic::OpenLoopTraffic;

  [[nodiscard]] std::string_view name() const override { return "poisson"; }

 protected:
  double next_gap_s(std::size_t flow_idx) override;
};

}  // namespace rica::traffic
