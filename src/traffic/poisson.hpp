// Poisson application traffic (paper §III-A): a fixed set of terminal pairs,
// each generating 512-byte packets with exponentially distributed
// inter-arrival times.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"
#include "sim/timer.hpp"

namespace rica::traffic {

/// One unidirectional application flow.
struct Flow {
  std::uint32_t id = 0;
  net::NodeId src = 0;
  net::NodeId dst = 0;
  double pkts_per_s = 10.0;
};

/// Draws `num_pairs` flows with distinct endpoints from `num_nodes`
/// terminals (the paper's "10 terminal pairs").
[[nodiscard]] std::vector<Flow> random_flows(std::size_t num_pairs,
                                             std::size_t num_nodes,
                                             double pkts_per_s,
                                             sim::RandomStream& rng);

/// Schedules Poisson packet generation on a network.
class PoissonTraffic {
 public:
  PoissonTraffic(net::Network& network, std::vector<Flow> flows,
                 std::uint16_t packet_bytes, sim::Time stop,
                 sim::RandomStream rng);

  /// Arms the first arrival of every flow.
  void start();

  [[nodiscard]] const std::vector<Flow>& flows() const { return flows_; }

 private:
  void schedule_next(std::size_t flow_idx);

  net::Network& network_;
  std::vector<Flow> flows_;
  std::vector<std::uint32_t> next_seq_;
  std::vector<sim::Timer> arrival_timers_;  ///< one pending arrival per flow
  std::uint16_t packet_bytes_;
  sim::Time stop_;
  sim::RandomStream rng_;
};

}  // namespace rica::traffic
