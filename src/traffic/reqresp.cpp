#include "traffic/reqresp.hpp"

#include <limits>

#include "net/network.hpp"

namespace rica::traffic {

namespace {
/// "No packet": sequence numbers start at 0 and a flow would need 2^32
/// packets to collide with this sentinel.
constexpr std::uint32_t kNoSeq = std::numeric_limits<std::uint32_t>::max();
}  // namespace

ReqRespTraffic::ReqRespTraffic(net::Network& network, std::vector<Flow> flows,
                               std::uint16_t packet_bytes, sim::Time stop,
                               sim::RandomStream rng, double think_mean_s,
                               double timeout_s, std::uint16_t request_bytes)
    : TrafficModel(network, std::move(flows), packet_bytes, stop,
                   std::move(rng)),
      think_mean_s_(think_mean_s),
      timeout_s_(timeout_s),
      request_bytes_(request_bytes),
      awaiting_(flows_.size(), false),
      awaiting_req_seq_(flows_.size(), kNoSeq),
      expected_resp_seq_(flows_.size(), kNoSeq) {}

void ReqRespTraffic::start() {
  network_.set_delivery_observer(
      [this](const net::DataPacket& pkt) { on_delivered(pkt); });
  for (std::size_t i = 0; i < flows_.size(); ++i) schedule_request(i);
}

void ReqRespTraffic::schedule_request(std::size_t flow_idx) {
  awaiting_[flow_idx] = false;
  awaiting_req_seq_[flow_idx] = kNoSeq;
  expected_resp_seq_[flow_idx] = kNoSeq;
  const double gap_s = rng_.exponential(think_mean_s_);
  const sim::Time at = network_.simulator().now() + sim::seconds_f(gap_s);
  if (at >= stop_) {
    // The flow goes quiet for the rest of the run; drop any pending
    // response deadline so it cannot fire after this decision.
    timers_[flow_idx].cancel();
    return;
  }
  // Home the think-time chain in the requester's shard (same rationale as
  // OpenLoopTraffic::schedule_next).
  sim::ShardScope scope(network_.simulator(),
                        network_.simulator().shard_of_node(
                            flows_[flow_idx].src),
                        sim::ShardScope::Kind::kHoming);
  timers_[flow_idx].arm_at(network_.simulator(), at,
                           [this, flow_idx] { send_request(flow_idx); });
}

void ReqRespTraffic::send_request(std::size_t flow_idx) {
  const Flow& f = flows_[flow_idx];
  awaiting_req_seq_[flow_idx] = next_seq_[flow_idx];  // the seq emit assigns
  expected_resp_seq_[flow_idx] = kNoSeq;
  emit(flow_idx, f.src, f.dst, request_bytes_);
  awaiting_[flow_idx] = true;
  // The response deadline reuses the flow's timer: a delivered response
  // rearms it for the next think, so a stale deadline can never fire.
  timers_[flow_idx].arm_after(network_.simulator(),
                              sim::seconds_f(timeout_s_), [this, flow_idx] {
                                network_.metrics().inc(
                                    "traffic_reqresp_timeouts");
                                schedule_request(flow_idx);
                              });
}

void ReqRespTraffic::on_delivered(const net::DataPacket& pkt) {
  if (pkt.flow >= flows_.size()) return;  // not one of this generator's flows
  const std::size_t flow_idx = pkt.flow;
  const Flow& f = flows_[flow_idx];
  if (pkt.dst == f.dst && pkt.src == f.src) {
    // A request reached the responder: answer with a full-size response in
    // the same per-flow sequence space.  Requests that already timed out
    // (and link-layer duplicates) still earn a response — the responder
    // cannot know better — but only the response paired with the
    // *outstanding* request may complete the loop below.
    const std::uint32_t resp_seq = next_seq_[flow_idx];  // assigned by emit
    emit(flow_idx, f.dst, f.src, packet_bytes_);
    if (awaiting_[flow_idx] && pkt.seq == awaiting_req_seq_[flow_idx]) {
      expected_resp_seq_[flow_idx] = resp_seq;
    }
  } else if (pkt.dst == f.src && pkt.src == f.dst) {
    // A response came back: close the loop only if it answers the request
    // we are still waiting on — a straggler from a timed-out cycle must
    // not complete (and re-time) the current one.
    if (!awaiting_[flow_idx]) return;
    if (pkt.seq != expected_resp_seq_[flow_idx]) return;
    network_.metrics().inc("traffic_reqresp_completed");
    schedule_request(flow_idx);
  }
}

}  // namespace rica::traffic
