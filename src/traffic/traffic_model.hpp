// Pluggable traffic/workload subsystem: a common generator interface, the
// selectable arrival models, and the flow-pattern axis that decides which
// terminal pairs carry the load.
//
// The paper evaluates RICA under exactly one workload — Poisson arrivals on
// random distinct terminal pairs (§III-A) — but the workload shape
// materially changes on-demand routing results: constant-bit-rate flows
// (the CBR/UDP-over-AODV study, arXiv:1109.6502) and bursty correlated
// demand (route-request aggregation, arXiv:1608.08725) stress discovery in
// ways Poisson traffic never does.  Models are selected by a spec string
// `model[:key=value,...]` mirroring the mobility subsystem's grammar.
//
// Determinism contracts (the golden suite depends on both):
//  1. Every random draw comes from the one RandomStream handed to the
//     generator (the RngManager's "traffic" stream) in event-execution
//     order, so fixed-seed runs are bit-reproducible across event-queue
//     backends and parallel sweeps equal serial ones.
//  2. The `poisson` model with the default `random` pattern reproduces the
//     pre-subsystem generator draw for draw: paper-parameter golden stream
//     hashes are unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"
#include "sim/timer.hpp"

namespace rica::net {
class Network;
}

namespace rica::traffic {

/// One unidirectional application flow.
struct Flow {
  std::uint32_t id = 0;
  net::NodeId src = 0;
  net::NodeId dst = 0;
  double pkts_per_s = 10.0;
};

/// The selectable arrival models.
enum class TrafficKind {
  kPoisson,  ///< the paper's model: exponential inter-arrival gaps
  kCbr,      ///< constant rate, optional uniform jitter (arXiv:1109.6502)
  kOnOff,    ///< exponential ON/OFF bursts at a burst rate
  kPareto,   ///< heavy-tailed (Pareto) ON/OFF periods: self-similar demand
  kReqResp,  ///< closed-loop request -> response with think time
};

/// How flow endpoints are drawn from the population.
enum class FlowPattern {
  kRandom,   ///< the paper's setting: distinct random (src, dst) pairs
  kSink,     ///< many-to-one convergecast onto a single sink terminal
  kHotspot,  ///< k hotspot destinations shared round-robin by the sources
  kRing,     ///< a ring: each sampled terminal sends to the next one
};

[[nodiscard]] std::string_view to_string(TrafficKind kind);
[[nodiscard]] std::string_view to_string(FlowPattern pattern);

/// Parses "poisson", "cbr", "onoff", "pareto", "reqresp" (plus common
/// aliases, case-insensitive).  Throws std::invalid_argument listing the
/// known models for anything else.
[[nodiscard]] TrafficKind traffic_kind_from_string(std::string_view name);

/// Parses "random", "sink", "hotspot", "ring" (plus aliases).  Throws
/// std::invalid_argument listing the known patterns for anything else.
[[nodiscard]] FlowPattern flow_pattern_from_string(std::string_view name);

/// The model spec names, in presentation order (for sweeps and usage text).
[[nodiscard]] const std::vector<std::string>& known_traffic_models();

/// The pattern names, in presentation order.
[[nodiscard]] const std::vector<std::string>& known_flow_patterns();

/// Configuration shared by every model, plus the per-model tunables.  Only
/// the fields of the selected `model` are read; the rest stay inert.  The
/// per-flow packet rate and payload size always come from the scenario
/// (`ScenarioConfig::pkts_per_s` / `packet_bytes`), so traffic specs compose
/// with the paper's load axis instead of overriding it.
struct TrafficConfig {
  TrafficKind model = TrafficKind::kPoisson;
  FlowPattern pattern = FlowPattern::kRandom;

  // Hotspot pattern: number of shared destination terminals.
  std::size_t hotspots = 3;

  // CBR ("cbr"): jitter fraction in [0, 1) — each gap is drawn uniformly
  // from [(1-j)/rate, (1+j)/rate]; 0 keeps the gap exactly 1/rate.  Flows
  // always start at a uniform random phase so they never tick in lockstep.
  double cbr_jitter = 0.0;

  // ON/OFF ("onoff") and Pareto ("pareto"): mean ON and OFF durations,
  // seconds.  The burst rate during ON is scaled to (on+off)/on times the
  // flow rate, so the time-averaged offered load stays the scenario's
  // pkts_per_s and traffic models compare apples-to-apples.
  double on_mean_s = 1.0;
  double off_mean_s = 1.0;

  // Pareto only: tail index of the ON/OFF period distribution; must exceed
  // 1 so the mean exists.  Smaller values mean heavier tails.
  double pareto_shape = 1.5;

  // Request/response ("reqresp"): exponential mean think time between a
  // received response and the next request, the response deadline after
  // which the source gives up and re-enters think, and the request payload
  // (responses use the scenario's packet_bytes).
  double think_mean_s = 1.0;
  double timeout_s = 2.0;
  std::uint16_t request_bytes = 64;
};

/// Parses a command-line traffic spec "model[:key=value,...]" onto `base`.
/// `pattern=` and `hotspots=` are accepted for every model; the remaining
/// keys are model-scoped ("cbr:jitter=0.2", "onoff:on=0.5,off=2",
/// "pareto:on=1,off=1,shape=1.4", "reqresp:think=0.5,timeout=2,req=64").
/// Unknown models, patterns, or keys and out-of-range values throw
/// std::invalid_argument with the valid choices.
[[nodiscard]] TrafficConfig parse_traffic_spec(std::string_view spec,
                                               TrafficConfig base = {});

/// Draws `num_pairs` flows with distinct endpoints from `num_nodes`
/// terminals (the paper's "10 terminal pairs").  Throws
/// std::invalid_argument when the population cannot supply 2*num_pairs
/// distinct terminals.
[[nodiscard]] std::vector<Flow> random_flows(std::size_t num_pairs,
                                             std::size_t num_nodes,
                                             double pkts_per_s,
                                             sim::RandomStream& rng);

/// Draws `num_pairs` flows under `cfg.pattern`.  Endpoint requirements are
/// validated up front (each pattern needs a different number of distinct
/// terminals); violations throw std::invalid_argument with the arithmetic.
/// The `random` pattern reproduces random_flows() draw for draw.
[[nodiscard]] std::vector<Flow> make_flows(const TrafficConfig& cfg,
                                           std::size_t num_pairs,
                                           std::size_t num_nodes,
                                           double pkts_per_s,
                                           sim::RandomStream& rng);

/// Workload generator for a whole network: owns the flows, per-flow
/// sequence numbers, and one pending timer per flow.  Concrete models
/// decide when each flow's next packet leaves and how large it is.
class TrafficModel {
 public:
  TrafficModel(net::Network& network, std::vector<Flow> flows,
               std::uint16_t packet_bytes, sim::Time stop,
               sim::RandomStream rng);
  virtual ~TrafficModel() = default;
  TrafficModel(const TrafficModel&) = delete;
  TrafficModel& operator=(const TrafficModel&) = delete;

  /// Arms the first arrival of every flow (in flow-id order, so the draw
  /// sequence is independent of event-queue internals).
  virtual void start() = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;

  [[nodiscard]] const std::vector<Flow>& flows() const { return flows_; }

 protected:
  /// Originates one packet of flow `flow_idx` from `src` toward `dst`.
  /// Sequence numbers are shared across both directions of the flow, so a
  /// reqresp response continues the request's per-flow sequence space.
  void emit(std::size_t flow_idx, net::NodeId src, net::NodeId dst,
            std::uint16_t bytes);

  net::Network& network_;
  std::vector<Flow> flows_;
  std::vector<std::uint32_t> next_seq_;
  std::vector<sim::Timer> timers_;  ///< one pending arrival/deadline per flow
  std::uint16_t packet_bytes_;
  sim::Time stop_;
  sim::RandomStream rng_;
};

/// Open-loop models: each flow is an autonomous arrival process described
/// entirely by a per-flow next-gap draw (plus an optional per-packet size).
/// The base runs the arm/emit/rearm loop; subclasses only draw.
class OpenLoopTraffic : public TrafficModel {
 public:
  using TrafficModel::TrafficModel;

  void start() override;

 protected:
  /// Gap to this flow's next arrival, seconds.  Draws from rng_ happen in
  /// event-execution order, which is what keeps runs bit-reproducible.
  [[nodiscard]] virtual double next_gap_s(std::size_t flow_idx) = 0;

  /// Payload of the flow's next packet (default: the scenario size).
  [[nodiscard]] virtual std::uint16_t next_packet_bytes(std::size_t flow_idx);

 private:
  void schedule_next(std::size_t flow_idx);
};

/// Builds the model selected by `cfg.model`.  `rng` should be the
/// RngManager's "traffic" stream so switching models never perturbs other
/// components' random sequences.
[[nodiscard]] std::unique_ptr<TrafficModel> make_traffic_model(
    const TrafficConfig& cfg, net::Network& network, std::vector<Flow> flows,
    std::uint16_t packet_bytes, sim::Time stop, sim::RandomStream rng);

}  // namespace rica::traffic
