#include "traffic/burst.hpp"

namespace rica::traffic {

BurstTraffic::BurstTraffic(net::Network& network, std::vector<Flow> flows,
                           std::uint16_t packet_bytes, sim::Time stop,
                           sim::RandomStream rng, double on_mean_s,
                           double off_mean_s)
    : OpenLoopTraffic(network, std::move(flows), packet_bytes, stop,
                      std::move(rng)),
      on_mean_s_(on_mean_s),
      off_mean_s_(off_mean_s),
      phase_(flows_.size()) {}

double BurstTraffic::next_gap_s(std::size_t flow_idx) {
  auto& phase = phase_[flow_idx];
  if (!phase.started) {
    phase.started = true;
    phase.on_left_s = draw_on_s();
  }
  // Burst rate preserves the time-averaged load: rate * (on+off)/on.
  const double burst_rate = flows_[flow_idx].pkts_per_s *
                            (on_mean_s_ + off_mean_s_) / on_mean_s_;
  double gap = draw_burst_gap_s(burst_rate);
  double total = 0.0;
  while (gap > phase.on_left_s) {
    total += phase.on_left_s;
    gap -= phase.on_left_s;
    total += draw_off_s();
    phase.on_left_s = draw_on_s();
  }
  phase.on_left_s -= gap;
  total += gap;
  return total;
}

}  // namespace rica::traffic
