#include "traffic/pareto.hpp"

#include <cmath>

namespace rica::traffic {

ParetoTraffic::ParetoTraffic(net::Network& network, std::vector<Flow> flows,
                             std::uint16_t packet_bytes, sim::Time stop,
                             sim::RandomStream rng, double on_mean_s,
                             double off_mean_s, double shape)
    : BurstTraffic(network, std::move(flows), packet_bytes, stop,
                   std::move(rng), on_mean_s, off_mean_s),
      shape_(shape) {}

double ParetoTraffic::pareto(double mean_s) {
  const double xm = mean_s * (shape_ - 1.0) / shape_;
  // Inverse-CDF with u in (0, 1]: uniform() returns [0, 1), so flip it to
  // keep the draw finite.
  const double u = 1.0 - rng_.uniform();
  return xm / std::pow(u, 1.0 / shape_);
}

}  // namespace rica::traffic
