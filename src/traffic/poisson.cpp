#include "traffic/poisson.hpp"

namespace rica::traffic {

double PoissonTraffic::next_gap_s(std::size_t flow_idx) {
  return rng_.exponential(1.0 / flows_[flow_idx].pkts_per_s);
}

}  // namespace rica::traffic
