#include "traffic/poisson.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace rica::traffic {

std::vector<Flow> random_flows(std::size_t num_pairs, std::size_t num_nodes,
                               double pkts_per_s, sim::RandomStream& rng) {
  assert(2 * num_pairs <= num_nodes &&
         "need two distinct endpoints per pair");
  // Sample 2*num_pairs distinct terminals (partial Fisher-Yates), then pair
  // them up: source i talks to destination i.
  std::vector<net::NodeId> ids(num_nodes);
  std::iota(ids.begin(), ids.end(), 0u);
  for (std::size_t i = 0; i < 2 * num_pairs; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(i),
                        static_cast<std::int64_t>(num_nodes - 1)));
    std::swap(ids[i], ids[j]);
  }
  std::vector<Flow> flows;
  flows.reserve(num_pairs);
  for (std::size_t i = 0; i < num_pairs; ++i) {
    flows.push_back(Flow{static_cast<std::uint32_t>(i), ids[2 * i],
                         ids[2 * i + 1], pkts_per_s});
  }
  return flows;
}

PoissonTraffic::PoissonTraffic(net::Network& network, std::vector<Flow> flows,
                               std::uint16_t packet_bytes, sim::Time stop,
                               sim::RandomStream rng)
    : network_(network),
      flows_(std::move(flows)),
      next_seq_(flows_.size(), 0),
      arrival_timers_(flows_.size()),
      packet_bytes_(packet_bytes),
      stop_(stop),
      rng_(std::move(rng)) {}

void PoissonTraffic::start() {
  for (std::size_t i = 0; i < flows_.size(); ++i) schedule_next(i);
}

void PoissonTraffic::schedule_next(std::size_t flow_idx) {
  const Flow& flow = flows_[flow_idx];
  const double gap_s = rng_.exponential(1.0 / flow.pkts_per_s);
  const sim::Time at = network_.simulator().now() + sim::seconds_f(gap_s);
  if (at >= stop_) return;
  arrival_timers_[flow_idx].arm_at(network_.simulator(), at, [this, flow_idx] {
    const Flow& f = flows_[flow_idx];
    net::DataPacket pkt;
    pkt.flow = f.id;
    pkt.src = f.src;
    pkt.dst = f.dst;
    pkt.seq = next_seq_[flow_idx]++;
    pkt.gen_time = network_.simulator().now();
    pkt.size_bytes = packet_bytes_;
    network_.node(f.src).originate(std::move(pkt));
    schedule_next(flow_idx);
  });
}

}  // namespace rica::traffic
