// Pareto ON/OFF traffic: the classic self-similar workload construction —
// constant-rate packet trains whose ON and OFF durations are heavy-tailed
// (Pareto with tail index `shape` > 1).  Aggregating many such sources
// yields long-range-dependent demand, the regime where route caches and
// discovery amortization behave nothing like they do under Poisson.
#pragma once

#include <string_view>

#include "traffic/burst.hpp"

namespace rica::traffic {

class ParetoTraffic final : public BurstTraffic {
 public:
  ParetoTraffic(net::Network& network, std::vector<Flow> flows,
                std::uint16_t packet_bytes, sim::Time stop,
                sim::RandomStream rng, double on_mean_s, double off_mean_s,
                double shape);

  [[nodiscard]] std::string_view name() const override { return "pareto"; }

 protected:
  double draw_on_s() override { return pareto(on_mean_s_); }
  double draw_off_s() override { return pareto(off_mean_s_); }
  // Constant spacing inside a burst (the classical construction); the
  // remainder carried across OFF periods keeps the train's phase.
  double draw_burst_gap_s(double burst_rate) override {
    return 1.0 / burst_rate;
  }

 private:
  /// Pareto draw with the given mean: scale x_m = mean * (a-1) / a.
  [[nodiscard]] double pareto(double mean_s);

  double shape_;
};

}  // namespace rica::traffic
