#include "traffic/traffic_model.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "net/network.hpp"
#include "traffic/cbr.hpp"
#include "traffic/onoff.hpp"
#include "traffic/pareto.hpp"
#include "traffic/poisson.hpp"
#include "traffic/reqresp.hpp"
#include "util/spec_parse.hpp"

namespace rica::traffic {

namespace {

constexpr std::string_view kDomain = "traffic";

std::string csv(const std::vector<std::string>& names) {
  return util::csv_list(names);
}

double parse_double(std::string_view key, const std::string& value) {
  return util::parse_spec_double(kDomain, key, value);
}

void require(bool ok, std::string_view key, std::string_view constraint) {
  util::require_spec(ok, kDomain, key, constraint);
}

/// Applies one "key=value" onto cfg.  `pattern` and `hotspots` are shared
/// keys; the rest are scoped to the selected model.
void apply_param(TrafficConfig& cfg, const std::string& key,
                 const std::string& value) {
  if (key == "pattern") {
    cfg.pattern = flow_pattern_from_string(value);
    return;
  }
  if (key == "hotspots") {
    const double v = parse_double(key, value);
    require(v >= 1.0 && v <= 1e9 && v == std::floor(v), key,
            "a positive integer");
    cfg.hotspots = static_cast<std::size_t>(v);
    return;
  }
  switch (cfg.model) {
    case TrafficKind::kPoisson:
      throw std::invalid_argument("unknown poisson param: " + key +
                                  " (known: pattern, hotspots; rate and "
                                  "packet size are scenario flags)");
    case TrafficKind::kCbr:
      if (key == "jitter") {
        cfg.cbr_jitter = parse_double(key, value);
        require(cfg.cbr_jitter >= 0.0 && cfg.cbr_jitter < 1.0, key,
                "in [0, 1)");
        return;
      }
      throw std::invalid_argument("unknown cbr param: " + key +
                                  " (known: jitter, pattern, hotspots)");
    case TrafficKind::kOnOff:
      if (key == "on") {
        cfg.on_mean_s = parse_double(key, value);
        require(cfg.on_mean_s > 0.0, key, "> 0");
        return;
      }
      if (key == "off") {
        cfg.off_mean_s = parse_double(key, value);
        require(cfg.off_mean_s > 0.0, key, "> 0");
        return;
      }
      throw std::invalid_argument("unknown onoff param: " + key +
                                  " (known: on, off, pattern, hotspots)");
    case TrafficKind::kPareto:
      if (key == "on") {
        cfg.on_mean_s = parse_double(key, value);
        require(cfg.on_mean_s > 0.0, key, "> 0");
        return;
      }
      if (key == "off") {
        cfg.off_mean_s = parse_double(key, value);
        require(cfg.off_mean_s > 0.0, key, "> 0");
        return;
      }
      if (key == "shape") {
        cfg.pareto_shape = parse_double(key, value);
        require(cfg.pareto_shape > 1.0, key,
                "> 1 (the mean ON/OFF period must exist)");
        return;
      }
      throw std::invalid_argument(
          "unknown pareto param: " + key +
          " (known: on, off, shape, pattern, hotspots)");
    case TrafficKind::kReqResp:
      if (key == "think") {
        cfg.think_mean_s = parse_double(key, value);
        require(cfg.think_mean_s > 0.0, key, "> 0");
        return;
      }
      if (key == "timeout") {
        cfg.timeout_s = parse_double(key, value);
        require(cfg.timeout_s > 0.0, key, "> 0");
        return;
      }
      if (key == "req") {
        const double v = parse_double(key, value);
        require(v >= 1.0 && v <= 65535.0 && v == std::floor(v), key,
                "an integer in [1, 65535]");
        cfg.request_bytes = static_cast<std::uint16_t>(v);
        return;
      }
      throw std::invalid_argument(
          "unknown reqresp param: " + key +
          " (known: think, timeout, req, pattern, hotspots)");
  }
  throw std::invalid_argument("unknown traffic param: " + key);
}

/// Samples `count` distinct terminal ids via a partial Fisher-Yates shuffle
/// — the exact draw sequence random_flows has always used, so the `random`
/// pattern stays bit-identical to the pre-subsystem generator.
std::vector<net::NodeId> sample_distinct(std::size_t count,
                                         std::size_t num_nodes,
                                         sim::RandomStream& rng) {
  std::vector<net::NodeId> ids(num_nodes);
  std::iota(ids.begin(), ids.end(), 0u);
  for (std::size_t i = 0; i < count; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(i),
                        static_cast<std::int64_t>(num_nodes - 1)));
    std::swap(ids[i], ids[j]);
  }
  ids.resize(count);
  return ids;
}

void require_population(bool ok, std::string_view pattern,
                        std::string_view need, std::size_t num_pairs,
                        std::size_t num_nodes) {
  if (!ok) {
    throw std::invalid_argument(
        "traffic pattern '" + std::string(pattern) + "' needs " +
        std::string(need) + " (got " + std::to_string(num_pairs) +
        " pair(s) over " + std::to_string(num_nodes) + " node(s))");
  }
}

}  // namespace

std::string_view to_string(TrafficKind kind) {
  switch (kind) {
    case TrafficKind::kPoisson:
      return "poisson";
    case TrafficKind::kCbr:
      return "cbr";
    case TrafficKind::kOnOff:
      return "onoff";
    case TrafficKind::kPareto:
      return "pareto";
    case TrafficKind::kReqResp:
      return "reqresp";
  }
  return "?";
}

std::string_view to_string(FlowPattern pattern) {
  switch (pattern) {
    case FlowPattern::kRandom:
      return "random";
    case FlowPattern::kSink:
      return "sink";
    case FlowPattern::kHotspot:
      return "hotspot";
    case FlowPattern::kRing:
      return "ring";
  }
  return "?";
}

TrafficKind traffic_kind_from_string(std::string_view name) {
  const std::string n = util::lower(name);
  if (n == "poisson" || n == "exp") return TrafficKind::kPoisson;
  if (n == "cbr" || n == "constant") return TrafficKind::kCbr;
  if (n == "onoff" || n == "on-off" || n == "burst") return TrafficKind::kOnOff;
  if (n == "pareto") return TrafficKind::kPareto;
  if (n == "reqresp" || n == "req-resp" || n == "rpc") {
    return TrafficKind::kReqResp;
  }
  throw std::invalid_argument("unknown traffic model: " + std::string(name) +
                              " (known: " + csv(known_traffic_models()) + ")");
}

FlowPattern flow_pattern_from_string(std::string_view name) {
  const std::string n = util::lower(name);
  if (n == "random" || n == "pairs") return FlowPattern::kRandom;
  if (n == "sink" || n == "convergecast" || n == "many-to-one") {
    return FlowPattern::kSink;
  }
  if (n == "hotspot") return FlowPattern::kHotspot;
  if (n == "ring" || n == "cycle") return FlowPattern::kRing;
  throw std::invalid_argument("unknown flow pattern: " + std::string(name) +
                              " (known: " + csv(known_flow_patterns()) + ")");
}

const std::vector<std::string>& known_traffic_models() {
  static const std::vector<std::string> models = {"poisson", "cbr", "onoff",
                                                  "pareto", "reqresp"};
  return models;
}

const std::vector<std::string>& known_flow_patterns() {
  static const std::vector<std::string> patterns = {"random", "sink",
                                                    "hotspot", "ring"};
  return patterns;
}

TrafficConfig parse_traffic_spec(std::string_view spec, TrafficConfig base) {
  const auto parts = util::split_spec(spec, kDomain);
  base.model = traffic_kind_from_string(parts.head);
  for (const auto& [key, value] : parts.params) {
    apply_param(base, key, value);
  }
  return base;
}

std::vector<Flow> random_flows(std::size_t num_pairs, std::size_t num_nodes,
                               double pkts_per_s, sim::RandomStream& rng) {
  // Promoted from a debug assert: a Release build used to fall through to
  // uniform_int with an inverted range.  Fail loudly in every build type.
  // (Zero pairs stays valid — an empty flow set is the control-overhead-
  // only baseline it always was.)
  require_population(2 * num_pairs <= num_nodes, "random",
                     "two distinct endpoints per pair (2*pairs <= nodes)",
                     num_pairs, num_nodes);
  // Sample 2*num_pairs distinct terminals (partial Fisher-Yates), then pair
  // them up: source i talks to destination i.
  const auto ids = sample_distinct(2 * num_pairs, num_nodes, rng);
  std::vector<Flow> flows;
  flows.reserve(num_pairs);
  for (std::size_t i = 0; i < num_pairs; ++i) {
    flows.push_back(Flow{static_cast<std::uint32_t>(i), ids[2 * i],
                         ids[2 * i + 1], pkts_per_s});
  }
  return flows;
}

std::vector<Flow> make_flows(const TrafficConfig& cfg, std::size_t num_pairs,
                             std::size_t num_nodes, double pkts_per_s,
                             sim::RandomStream& rng) {
  std::vector<Flow> flows;
  if (num_pairs == 0) return flows;  // control-overhead-only baseline
  flows.reserve(num_pairs);
  switch (cfg.pattern) {
    case FlowPattern::kRandom:
      return random_flows(num_pairs, num_nodes, pkts_per_s, rng);
    case FlowPattern::kSink: {
      // ids[0] is the sink; every other sampled terminal sends to it.
      require_population(num_pairs + 1 <= num_nodes, "sink",
                         "pairs + 1 distinct terminals", num_pairs, num_nodes);
      const auto ids = sample_distinct(num_pairs + 1, num_nodes, rng);
      for (std::size_t i = 0; i < num_pairs; ++i) {
        flows.push_back(
            Flow{static_cast<std::uint32_t>(i), ids[i + 1], ids[0], pkts_per_s});
      }
      return flows;
    }
    case FlowPattern::kHotspot: {
      // The first k samples are the hotspots; sources share them round-robin.
      const std::size_t k = cfg.hotspots;
      require_population(k >= 1 && num_pairs + k <= num_nodes, "hotspot",
                         "pairs + hotspots distinct terminals", num_pairs,
                         num_nodes);
      const auto ids = sample_distinct(num_pairs + k, num_nodes, rng);
      for (std::size_t i = 0; i < num_pairs; ++i) {
        flows.push_back(Flow{static_cast<std::uint32_t>(i), ids[k + i],
                             ids[i % k], pkts_per_s});
      }
      return flows;
    }
    case FlowPattern::kRing: {
      // A random cycle: every sampled terminal is both a source and the
      // next terminal's destination, so discovery runs from both ends.
      require_population(num_pairs >= 2 && num_pairs <= num_nodes, "ring",
                         "at least 2 pairs and pairs <= nodes", num_pairs,
                         num_nodes);
      const auto ids = sample_distinct(num_pairs, num_nodes, rng);
      for (std::size_t i = 0; i < num_pairs; ++i) {
        flows.push_back(Flow{static_cast<std::uint32_t>(i), ids[i],
                             ids[(i + 1) % num_pairs], pkts_per_s});
      }
      return flows;
    }
  }
  throw std::invalid_argument("unknown flow pattern kind");
}

TrafficModel::TrafficModel(net::Network& network, std::vector<Flow> flows,
                           std::uint16_t packet_bytes, sim::Time stop,
                           sim::RandomStream rng)
    : network_(network),
      flows_(std::move(flows)),
      next_seq_(flows_.size(), 0),
      timers_(flows_.size()),
      packet_bytes_(packet_bytes),
      stop_(stop),
      rng_(std::move(rng)) {}

void TrafficModel::emit(std::size_t flow_idx, net::NodeId src, net::NodeId dst,
                        std::uint16_t bytes) {
  net::DataPacket pkt;
  pkt.flow = flows_[flow_idx].id;
  pkt.src = src;
  pkt.dst = dst;
  pkt.seq = next_seq_[flow_idx]++;
  pkt.gen_time = network_.simulator().now();
  pkt.size_bytes = bytes;
  network_.node(src).originate(std::move(pkt));
}

void OpenLoopTraffic::start() {
  for (std::size_t i = 0; i < flows_.size(); ++i) schedule_next(i);
}

std::uint16_t OpenLoopTraffic::next_packet_bytes(std::size_t) {
  return packet_bytes_;
}

void OpenLoopTraffic::schedule_next(std::size_t flow_idx) {
  const double gap_s = next_gap_s(flow_idx);
  const sim::Time at = network_.simulator().now() + sim::seconds_f(gap_s);
  if (at >= stop_) return;
  // Home the flow's timer chain in its source node's shard so arrivals and
  // the MAC/link work they trigger stage in parallel with other shards.
  sim::ShardScope scope(network_.simulator(),
                        network_.simulator().shard_of_node(
                            flows_[flow_idx].src),
                        sim::ShardScope::Kind::kHoming);
  timers_[flow_idx].arm_at(network_.simulator(), at, [this, flow_idx] {
    const Flow& f = flows_[flow_idx];
    emit(flow_idx, f.src, f.dst, next_packet_bytes(flow_idx));
    schedule_next(flow_idx);
  });
}

std::unique_ptr<TrafficModel> make_traffic_model(
    const TrafficConfig& cfg, net::Network& network, std::vector<Flow> flows,
    std::uint16_t packet_bytes, sim::Time stop, sim::RandomStream rng) {
  switch (cfg.model) {
    case TrafficKind::kPoisson:
      return std::make_unique<PoissonTraffic>(network, std::move(flows),
                                              packet_bytes, stop,
                                              std::move(rng));
    case TrafficKind::kCbr:
      return std::make_unique<CbrTraffic>(network, std::move(flows),
                                          packet_bytes, stop, std::move(rng),
                                          cfg.cbr_jitter);
    case TrafficKind::kOnOff:
      return std::make_unique<OnOffTraffic>(network, std::move(flows),
                                            packet_bytes, stop, std::move(rng),
                                            cfg.on_mean_s, cfg.off_mean_s);
    case TrafficKind::kPareto:
      return std::make_unique<ParetoTraffic>(
          network, std::move(flows), packet_bytes, stop, std::move(rng),
          cfg.on_mean_s, cfg.off_mean_s, cfg.pareto_shape);
    case TrafficKind::kReqResp:
      return std::make_unique<ReqRespTraffic>(
          network, std::move(flows), packet_bytes, stop, std::move(rng),
          cfg.think_mean_s, cfg.timeout_s, cfg.request_bytes);
  }
  throw std::invalid_argument("unknown traffic model kind");
}

}  // namespace rica::traffic
