#include "traffic/cbr.hpp"

namespace rica::traffic {

CbrTraffic::CbrTraffic(net::Network& network, std::vector<Flow> flows,
                       std::uint16_t packet_bytes, sim::Time stop,
                       sim::RandomStream rng, double jitter)
    : OpenLoopTraffic(network, std::move(flows), packet_bytes, stop,
                      std::move(rng)),
      jitter_(jitter),
      started_(flows_.size(), false) {}

double CbrTraffic::next_gap_s(std::size_t flow_idx) {
  const double base = 1.0 / flows_[flow_idx].pkts_per_s;
  if (!started_[flow_idx]) {
    started_[flow_idx] = true;
    return base * rng_.uniform();  // phase offset in [0, base)
  }
  if (jitter_ == 0.0) return base;
  return base * (1.0 + jitter_ * (2.0 * rng_.uniform() - 1.0));
}

}  // namespace rica::traffic
