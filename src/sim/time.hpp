// Strongly typed simulation time.
//
// Simulation time is kept as integer nanoseconds so that event ordering is
// exact and runs are bit-reproducible for a given seed.  Helpers convert to
// and from floating-point seconds/milliseconds at the edges (configuration
// and reporting) only.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>

namespace rica::sim {

/// A point in simulation time (or a duration), in integer nanoseconds.
class Time {
 public:
  constexpr Time() = default;
  constexpr explicit Time(std::int64_t nanos) : nanos_(nanos) {}

  [[nodiscard]] constexpr std::int64_t nanos() const { return nanos_; }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(nanos_) * 1e-9;
  }
  [[nodiscard]] constexpr double millis() const {
    return static_cast<double>(nanos_) * 1e-6;
  }
  [[nodiscard]] constexpr double micros() const {
    return static_cast<double>(nanos_) * 1e-3;
  }

  static constexpr Time zero() { return Time{0}; }
  static constexpr Time max() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time operator+(Time rhs) const { return Time{nanos_ + rhs.nanos_}; }
  constexpr Time operator-(Time rhs) const { return Time{nanos_ - rhs.nanos_}; }
  constexpr Time& operator+=(Time rhs) {
    nanos_ += rhs.nanos_;
    return *this;
  }
  constexpr Time& operator-=(Time rhs) {
    nanos_ -= rhs.nanos_;
    return *this;
  }
  constexpr Time operator*(std::int64_t k) const { return Time{nanos_ * k}; }

 private:
  std::int64_t nanos_ = 0;
};

/// Construct a Time from nanoseconds.
constexpr Time nanoseconds(std::int64_t n) { return Time{n}; }
/// Construct a Time from microseconds.
constexpr Time microseconds(std::int64_t us) { return Time{us * 1'000}; }
/// Construct a Time from milliseconds.
constexpr Time milliseconds(std::int64_t ms) { return Time{ms * 1'000'000}; }
/// Construct a Time from whole seconds.
constexpr Time seconds(std::int64_t s) { return Time{s * 1'000'000'000}; }
/// Construct a Time from fractional seconds (rounded to nanoseconds).
constexpr Time seconds_f(double s) {
  return Time{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
}

}  // namespace rica::sim
