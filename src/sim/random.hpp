// Named, reproducible random-number streams.
//
// A RngManager derives independent substreams from one master seed using a
// SplitMix64 hash of the stream name/indices.  Components pull their own
// streams, so adding a component (or reordering calls) never perturbs the
// random sequence of another — a prerequisite for apples-to-apples protocol
// comparisons on identical mobility/channel realizations.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace rica::sim {

/// SplitMix64 finalizer; good avalanche, used for seed derivation.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// One random stream (wraps mt19937_64 with distribution helpers).
class RandomStream {
 public:
  explicit RandomStream(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }

  /// Exponential with the given mean (mean > 0).
  double exponential(double mean) {
    return std::exponential_distribution<double>{1.0 / mean}(engine_);
  }

  /// Standard normal scaled to (mean, stddev).
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>{mean, stddev}(engine_);
  }

  /// Bernoulli trial with probability p of true.
  bool chance(double p) { return uniform() < p; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

/// Derives named independent substreams from a master seed.
class RngManager {
 public:
  explicit RngManager(std::uint64_t master_seed) : master_(master_seed) {}

  /// Stream for a named component ("mobility", "traffic", ...).
  [[nodiscard]] RandomStream stream(std::string_view name) const {
    return RandomStream{derive(name, 0, 0)};
  }

  /// Stream for a named component and one index (e.g. per node).
  [[nodiscard]] RandomStream stream(std::string_view name,
                                    std::uint64_t index) const {
    return RandomStream{derive(name, index, 0)};
  }

  /// Stream for a named component and an index pair (e.g. per link).
  [[nodiscard]] RandomStream stream(std::string_view name, std::uint64_t a,
                                    std::uint64_t b) const {
    return RandomStream{derive(name, a, b)};
  }

  [[nodiscard]] std::uint64_t master_seed() const { return master_; }

 private:
  [[nodiscard]] std::uint64_t derive(std::string_view name, std::uint64_t a,
                                     std::uint64_t b) const {
    std::uint64_t h = master_;
    for (const char c : name) {
      h = splitmix64(h ^ static_cast<std::uint64_t>(c));
    }
    h = splitmix64(h ^ a);
    h = splitmix64(h ^ (b + 0x51ed2701a3c5e691ULL));
    return h;
  }

  std::uint64_t master_;
};

}  // namespace rica::sim
