// The typed, pooled discrete-event engine.
//
// Replaces the std::function binary heap + lazy-cancellation hash set with:
//
//   * a slab of fixed-size event records (chunked, stable addresses) holding
//     the callback inline in a small type-erased buffer — no per-event heap
//     allocation for any closure up to kInlineBytes (oversized closures fall
//     back to one heap cell and are counted in heap_fallbacks());
//   * generation-counted handles: cancel() is an O(1) slot lookup + unlink,
//     the record is recycled immediately, and a stale handle (fired or
//     cancelled) can never touch a reused slot;
//   * a four-rung hierarchical timing wheel (256 buckets per rung, 4096 ns
//     ticks) with per-rung occupancy bitmaps: schedule and pop are O(1)
//     amortized — each event is touched at most once per rung as the clock
//     cascades it downward;
//   * batch firing: each rung-0 bucket is harvested *whole* into a flat
//     vector, sorted once by (time, seq), and consumed front-to-back — no
//     per-event heap churn on the pop path.  Events scheduled at-or-behind
//     the harvested tick mid-batch (e.g. a callback arming a zero-delay
//     event) land in a small "spill" min-heap; fire_next() interleaves the
//     batch cursor and the spill top by (at, seq), so the global pop order
//     stays the exact deterministic (timestamp, FIFO-seq) order.  Fires
//     consumed from the flat batch are counted in batched_fires().
//
// Time must advance monotonically at the firing boundary: scheduling
// earlier than an already-fired event asserts in debug builds (it would
// break the exact pop order) and fires as-soon-as-possible in release.
// Scheduling behind the engine's *internal* clock is legal and exact —
// next_time() may harvest buckets ahead of the caller's run horizon, and
// such events simply join the spill heap, which orders every not-yet-fired
// event by (at, seq) regardless.
#pragma once

#include <array>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace rica::sim {

/// Handle identifying a scheduled event; usable to cancel it.  Packs the
/// slab slot (upper 32 bits, offset by one so 0 is never a valid handle)
/// and the slot's generation at scheduling time (lower 32 bits).
using EventId = std::uint64_t;

/// Slab-backed four-rung timing-wheel event engine.  See the file comment
/// for the design; fire_next() invokes the callback in place (the record is
/// recycled *before* invocation, so a callback may re-arm into its own —
/// now cache-hot — slot).
class EventEngine {
 public:
  /// Inline capacity of an event record's callback buffer.  Sizing rule:
  /// the measured largest closure the stack schedules, rounded up to a
  /// power of two.  Per-transmission MAC state lives in the MAC's own
  /// NodeState (common_channel.hpp), so every steady-state closure is a
  /// few captured words; the largest (a std::function copy in a periodic
  /// timer chain) is 40 bytes.  Anything larger falls back to one counted
  /// heap cell — the golden suite asserts heap_fallbacks == 0 across the
  /// full protocol × traffic matrix, so an oversized closure can't creep
  /// in unnoticed.
  static constexpr std::size_t kInlineBytes = 64;

  EventEngine();
  ~EventEngine();
  EventEngine(const EventEngine&) = delete;
  EventEngine& operator=(const EventEngine&) = delete;

  /// Points the engine's schedule-sequence source at a counter shared with
  /// other engines (the sharded kernel's global tie-break).  Must be called
  /// before the first schedule(); the engine never contends on the counter —
  /// the sharded Simulator only schedules from its serial commit phase.
  void use_shared_seq(std::uint64_t* counter) {
    assert(size_ == 0 && next_seq_ == 0 && "use_shared_seq after schedule");
    seq_counter_ = counter;
  }

  /// Schedules `fn` at absolute time `at`. Returns a handle for cancel().
  template <typename F>
  EventId schedule(Time at, F&& fn) {
    using D = std::decay_t<F>;
    const std::uint32_t idx = alloc_slot();
    Slot& s = slot(idx);
    s.at = at;
    s.seq = (*seq_counter_)++;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(s.storage)) D(std::forward<F>(fn));
      s.ops = &InlineOps<D>::kOps;
    } else {
      ::new (static_cast<void*>(s.storage)) (D*)(new D(std::forward<F>(fn)));
      s.ops = &HeapOps<D>::kOps;
      ++heap_fallbacks_;
    }
    place(idx);
    ++size_;
    return make_id(idx, s.gen);
  }

  /// Cancels a pending event: O(1) unlink, slot recycled immediately.
  /// Cancelling an already-fired or unknown handle is a no-op returning
  /// false (generation counters make stale handles harmless even after the
  /// slot has been reused).
  bool cancel(EventId id);

  /// True while `id` refers to a still-pending event.
  [[nodiscard]] bool pending(EventId id) const;

  /// True if no pending events remain.
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Number of pending events.
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Time of the earliest pending event. Requires !empty().
  [[nodiscard]] Time next_time();

  /// (time, seq) of the earliest pending event — the sharded kernel's
  /// cross-engine merge key. Requires !empty().
  [[nodiscard]] std::pair<Time, std::uint64_t> next_key();

  /// Pre-sorts every pending event whose wheel tick starts at or before
  /// `horizon` into the flat batch (harvesting rung-0 buckets and cascading
  /// upper rungs as needed), without firing anything.  This is the sharded
  /// kernel's parallel phase: it touches only engine-local state, so
  /// distinct engines may stage concurrently while no thread fires.
  /// Multiple buckets accumulate in the batch — ticks strictly increase
  /// across harvests, so per-bucket sorts keep the whole batch ordered by
  /// (at, seq) — and the consumed prefix is compacted first so batches
  /// stay bounded across windows.
  void stage_until(Time horizon);

  /// A fired event's identity (the callback has already been invoked).
  struct Fired {
    Time at;
    EventId id{};
  };

  /// Pops the earliest pending event, recycles its record, and invokes its
  /// callback. Requires !empty().
  Fired fire_next();

  // -- diagnostics ----------------------------------------------------------
  /// Total events ever scheduled (global across engines when the sequence
  /// counter is shared).
  [[nodiscard]] std::uint64_t total_scheduled() const { return *seq_counter_; }
  /// Events pre-sorted into the batch by stage_until() (the work the
  /// sharded kernel moved off the serial commit path).
  [[nodiscard]] std::uint64_t staged_events() const { return staged_events_; }
  /// Slab high-water mark: maximum event records ever in use at once (the
  /// Simulator tracks peak *pending* events itself, across both backends).
  [[nodiscard]] std::size_t slab_high_water() const { return slab_high_water_; }
  /// Closures too large for the inline buffer (each cost one heap cell).
  [[nodiscard]] std::uint64_t heap_fallbacks() const { return heap_fallbacks_; }
  /// Events fired straight off the sorted flat batch (no heap churn); the
  /// remainder went through the spill heap.
  [[nodiscard]] std::uint64_t batched_fires() const { return batched_fires_; }

 private:
  // Type-erased callable operations; one static table per closure type.
  struct CallableOps {
    void (*invoke)(void* p);
    void (*relocate)(void* from, void* to);  // move-construct + destroy src
    void (*destroy)(void* p);
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t);
  }

  template <typename D>
  struct InlineOps {
    static void invoke(void* p) { (*static_cast<D*>(p))(); }
    static void relocate(void* from, void* to) {
      D* f = static_cast<D*>(from);
      ::new (to) D(std::move(*f));
      f->~D();
    }
    static void destroy(void* p) { static_cast<D*>(p)->~D(); }
    static constexpr CallableOps kOps{&invoke, &relocate, &destroy};
  };

  template <typename D>
  struct HeapOps {  // storage holds a single D*
    static void invoke(void* p) { (**static_cast<D**>(p))(); }
    static void relocate(void* from, void* to) {
      std::memcpy(to, from, sizeof(D*));
    }
    static void destroy(void* p) { delete *static_cast<D**>(p); }
    static constexpr CallableOps kOps{&invoke, &relocate, &destroy};
  };

  // Wheel geometry: 4096 ns ticks, 256 buckets per rung, four rungs.
  // Spans per rung: ~1.05 ms, ~268 ms, ~68.7 s, ~4.9 h; events beyond the
  // top rung (relative to the current tick) wait in the overflow list.
  static constexpr int kTickShift = 12;
  static constexpr int kRungBits = 8;
  static constexpr int kRungs = 4;
  static constexpr std::uint32_t kBucketsPerRung = 1u << kRungBits;
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::uint16_t kBucketOverflow = 0xFFFF;
  static constexpr std::size_t kChunkSlots = 256;

  enum class State : std::uint8_t { kFree, kWheel, kReady, kOverflow };

  struct Slot {
    Time at{};
    std::uint64_t seq = 0;
    const CallableOps* ops = nullptr;
    std::uint32_t next = kNil;
    std::uint32_t prev = kNil;
    std::uint32_t gen = 1;
    std::uint16_t bucket = 0;  ///< rung * 256 + index while on the wheel
    State state = State::kFree;
    alignas(std::max_align_t) unsigned char storage[kInlineBytes];
  };

  struct ReadyEntry {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct ReadyLater {
    bool operator()(const ReadyEntry& a, const ReadyEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  static constexpr EventId make_id(std::uint32_t idx, std::uint32_t gen) {
    return (static_cast<EventId>(idx + 1) << 32) | gen;
  }

  /// A Time as a wheel tick.  Simulation time is never negative, so the
  /// shift is a plain floor.
  static constexpr std::uint64_t ticks(Time t) {
    return static_cast<std::uint64_t>(t.nanos()) >> kTickShift;
  }

  [[nodiscard]] Slot& slot(std::uint32_t idx) {
    return chunks_[idx / kChunkSlots][idx % kChunkSlots];
  }
  [[nodiscard]] const Slot& slot(std::uint32_t idx) const {
    return chunks_[idx / kChunkSlots][idx % kChunkSlots];
  }
  /// Decodes a handle into a validated live-slot index, or kNil.
  [[nodiscard]] std::uint32_t decode(EventId id) const;

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t idx);

  /// Files a freshly written slot into the spill heap / wheel / overflow.
  void place(std::uint32_t idx);
  void link_bucket(int rung, std::uint32_t bidx, std::uint32_t idx);
  void unlink(std::uint32_t idx);
  /// Guarantees the batch cursor and spill top both sit on live entries
  /// (harvesting and cascading wheel buckets as needed). Requires !empty().
  void ensure_ready();
  /// Harvests or cascades the next occupied wheel/overflow bucket.
  void advance_wheel();
  /// One wheel advancement step, gated at `max_tick`: harvests the next
  /// rung-0 bucket (appending to the batch when `append`, replacing the
  /// consumed batch otherwise), cascades an upper rung, or re-files the
  /// overflow list.  Returns false when every remaining event lies beyond
  /// `max_tick` (or the wheel is empty).
  bool wheel_step(std::uint64_t max_tick, bool append);
  /// The live entry with the smallest (at, seq): the batch cursor or the
  /// spill top.  Requires ensure_ready() to have just run.
  [[nodiscard]] const ReadyEntry& peek_min() const;

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t free_head_ = kNil;
  std::size_t slots_in_use_ = 0;
  std::size_t slab_high_water_ = 0;

  std::array<std::vector<std::uint32_t>, kRungs> wheel_;  // bucket heads
  std::array<std::array<std::uint64_t, 4>, kRungs> occupied_{};  // bitmaps
  std::uint32_t overflow_head_ = kNil;
  // The current tick's events: a bucket harvested whole, sorted once by
  // (at, seq), consumed via batch_pos_.  The spill heap catches events
  // place()d at-or-behind cur_tick_ while the batch is in flight.
  std::vector<ReadyEntry> batch_;
  std::size_t batch_pos_ = 0;
  std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, ReadyLater> spill_;

  std::uint64_t cur_tick_ = 0;  ///< tick of the last harvested bucket
  Time fired_floor_ = Time::zero();  ///< guards the exact-order precondition
  std::uint64_t next_seq_ = 0;
  /// Sequence source: the engine's own counter, or a counter shared across
  /// the sharded kernel's engines (see use_shared_seq()).
  std::uint64_t* seq_counter_ = &next_seq_;
  std::size_t size_ = 0;
  std::uint64_t heap_fallbacks_ = 0;
  std::uint64_t batched_fires_ = 0;
  std::uint64_t staged_events_ = 0;
};

}  // namespace rica::sim
