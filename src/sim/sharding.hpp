// Spatial shard assignment for the sharded event kernel.
//
// Shards stripe the arena along the uniform-grid NeighborIndex partition:
// the grid's cell side equals the radio range, so a column stripe is the
// natural conservative boundary — an event at a node in stripe s can only
// reach nodes in stripes whose columns lie within one cell of s's columns
// during the lookahead window.  The map is computed once from the t = 0
// positions and stays fixed for the run: nodes that drift across a stripe
// boundary keep their home shard (correctness never depends on the map —
// the commit phase is globally ordered — only staging locality does), and
// the kernel reports the drift count as telemetry instead of re-sharding.
#pragma once

#include <cstdint>
#include <vector>

namespace rica::sim {

/// Number of whole grid columns a square field of side `field_m` holds at
/// cell side `cell_m` (the NeighborIndex geometry: cell side = radio
/// range).  At least 1 for any positive field.
[[nodiscard]] std::size_t grid_columns(double field_m, double cell_m);

/// Maps each node to a shard by striping grid columns: node i with
/// x-coordinate xs[i] lands in column floor(xs[i] / cell_m) (clamped to the
/// field's columns), and columns split into `num_shards` contiguous stripes
/// of near-equal width.  Deterministic in its inputs; requires
/// 1 <= num_shards <= grid_columns(field_m, cell_m).
[[nodiscard]] std::vector<std::uint32_t> stripe_shards(
    const std::vector<double>& xs, double field_m, double cell_m,
    std::uint32_t num_shards);

}  // namespace rica::sim
