#include "sim/sharding.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rica::sim {

std::size_t grid_columns(double field_m, double cell_m) {
  if (field_m <= 0.0 || cell_m <= 0.0) return 1;
  return std::max<std::size_t>(1, static_cast<std::size_t>(field_m / cell_m));
}

std::vector<std::uint32_t> stripe_shards(const std::vector<double>& xs,
                                         double field_m, double cell_m,
                                         std::uint32_t num_shards) {
  const std::size_t cols = grid_columns(field_m, cell_m);
  assert(num_shards >= 1 && num_shards <= cols &&
         "stripe_shards: shard count must fit the grid columns");
  std::vector<std::uint32_t> shard(xs.size(), 0);
  if (num_shards <= 1) return shard;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double c = std::floor(xs[i] / cell_m);
    const auto col = static_cast<std::size_t>(
        std::clamp(c, 0.0, static_cast<double>(cols - 1)));
    // Contiguous stripes of near-equal column count: col * K / cols is
    // monotone in col and hits every shard in [0, K).
    shard[i] = static_cast<std::uint32_t>(col * num_shards / cols);
  }
  return shard;
}

}  // namespace rica::sim
