#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

namespace rica::sim {

EventId Simulator::at(Time when, EventQueue::Callback cb) {
  assert(when >= now_ && "cannot schedule in the past");
  return queue_.schedule(when, std::move(cb));
}

EventId Simulator::after(Time delay, EventQueue::Callback cb) {
  assert(delay >= Time::zero() && "negative delay");
  return queue_.schedule(now_ + delay, std::move(cb));
}

void Simulator::run_until(Time end) {
  while (!queue_.empty() && queue_.next_time() <= end) {
    auto fired = queue_.pop();
    now_ = fired.at;
    ++events_executed_;
    fired.cb();
  }
  if (end > now_) now_ = end;
}

void Simulator::run_all() {
  while (!queue_.empty()) {
    auto fired = queue_.pop();
    now_ = fired.at;
    ++events_executed_;
    fired.cb();
  }
}

}  // namespace rica::sim
