#include "sim/simulator.hpp"

namespace rica::sim {

void Simulator::run_until(Time end) {
  while (!engine_.empty()) {
    const Time t = engine_.next_time();
    if (t > end) break;
    now_ = t;
    ++events_executed_;
    engine_.fire_next();
    observe_fire();
  }
  if (end > now_) now_ = end;
}

void Simulator::run_all() {
  while (!engine_.empty()) {
    now_ = engine_.next_time();
    ++events_executed_;
    engine_.fire_next();
    observe_fire();
  }
}

}  // namespace rica::sim
