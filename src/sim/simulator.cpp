#include "sim/simulator.hpp"

#include <condition_variable>
#include <mutex>
#include <thread>

namespace rica::sim {

// Persistent fork-join staging crew.  stage() publishes a horizon under the
// mutex and blocks until every worker has staged its shards; workers own
// disjoint engine subsets (round-robin by index), and the mutex handoff
// orders all staging writes before the serial commit phase reads them.
struct Simulator::StagePool {
  StagePool(Simulator& sim, unsigned threads) : sim_(sim) {
    threads_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
      threads_.emplace_back([this, i, threads] { worker(i, threads); });
    }
  }

  ~StagePool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  void stage(Time horizon) {
    std::unique_lock<std::mutex> lock(mu_);
    horizon_ = horizon;
    ++epoch_;
    remaining_ = static_cast<unsigned>(threads_.size());
    cv_.notify_all();
    done_cv_.wait(lock, [this] { return remaining_ == 0; });
  }

 private:
  void worker(unsigned idx, unsigned stride) {
    std::uint64_t seen = 0;
    for (;;) {
      Time horizon;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
        if (stop_) return;
        seen = epoch_;
        horizon = horizon_;
      }
      for (std::size_t s = idx; s < sim_.engines_.size(); s += stride) {
        sim_.engines_[s]->stage_until(horizon);
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        --remaining_;
      }
      done_cv_.notify_one();
    }
  }

  Simulator& sim_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  Time horizon_{};
  std::uint64_t epoch_ = 0;
  unsigned remaining_ = 0;
  bool stop_ = false;
};

Simulator::Simulator() {
  engines_.push_back(std::make_unique<EventEngine>());
  shard_events_.assign(1, 0);
  channel_counts_.assign(1, 0);
}

Simulator::~Simulator() = default;

void Simulator::configure_shards(std::vector<std::uint32_t> node_shard,
                                 std::uint32_t num_shards, Time window,
                                 unsigned threads) {
  assert(engines_.size() == 1 && engines_[0]->empty() &&
         events_executed_ == 0 && "configure_shards on a live kernel");
  assert(num_shards >= 1 && num_shards <= kMaxShards);
  assert(window >= Time::zero());
  if (num_shards <= 1) return;  // serial engine: exact pre-sharding behavior
  node_shard_ = std::move(node_shard);
  for ([[maybe_unused]] const auto s : node_shard_) {
    assert(s < num_shards && "node mapped past the shard count");
  }
  window_ = window;
  engines_.reserve(num_shards);
  while (engines_.size() < num_shards) {
    engines_.push_back(std::make_unique<EventEngine>());
  }
  for (auto& e : engines_) e->use_shared_seq(&shared_seq_);
  shard_events_.assign(num_shards, 0);
  channel_counts_.assign(static_cast<std::size_t>(num_shards) * num_shards,
                         0);
  shard_pending_scratch_.assign(num_shards, 0);
  const unsigned workers =
      threads > num_shards ? num_shards : threads;
  if (workers >= 2) pool_ = std::make_unique<StagePool>(*this, workers);
}

void Simulator::observe_fire() {
  if (observer_ == nullptr || now_ < next_observation_) return;
  next_observation_ = now_ + observer_interval_;
  const std::size_t* per_shard = nullptr;
  std::size_t n_shards = 0;
  if (sharded()) {
    for (std::size_t s = 0; s < engines_.size(); ++s) {
      shard_pending_scratch_[s] = engines_[s]->size();
    }
    per_shard = shard_pending_scratch_.data();
    n_shards = engines_.size();
  }
  observer_->on_kernel_window(now_, events_executed_, batched_fires(), live_,
                              per_shard, n_shards);
}

void Simulator::stage_all(Time horizon) {
  if (pool_ != nullptr) {
    pool_->stage(horizon);
    return;
  }
  for (auto& e : engines_) e->stage_until(horizon);
}

void Simulator::run_windows(Time end, bool bound_clock) {
  constexpr auto kNone = ~std::size_t{0};
  for (;;) {
    // Global minimum over the shard wheels: the next window's base time.
    bool any = false;
    Time tmin = Time::zero();
    for (auto& e : engines_) {
      if (e->empty()) continue;
      const Time t = e->next_time();
      if (!any || t < tmin) tmin = t;
      any = true;
    }
    if (!any || tmin > end) break;
    const Time horizon =
        end - tmin > window_ ? tmin + window_ : end;
    ++windows_;
    if (window_hook_) {
      const std::uint64_t before = staged_events();
      stage_all(horizon);
      window_hook_(staged_events() - before);
    } else {
      stage_all(horizon);
    }
    // Serial commit: fire across shards in exact global (at, seq) order.
    // Events a commit schedules inside the horizon — including cross-shard
    // sends — join the scan immediately, so the order matches the serial
    // engine event for event regardless of the window size.
    for (;;) {
      std::size_t best = kNone;
      Time bt = Time::zero();
      std::uint64_t bs = 0;
      for (std::size_t s = 0; s < engines_.size(); ++s) {
        if (engines_[s]->empty()) continue;
        const auto [t, q] = engines_[s]->next_key();
        if (t > horizon) continue;
        if (best == kNone || t < bt || (t == bt && q < bs)) {
          best = s;
          bt = t;
          bs = q;
        }
      }
      if (best == kNone) break;
      now_ = bt;
      ambient_ = static_cast<std::uint32_t>(best);
      ++events_executed_;
      ++shard_events_[best];
      --live_;
      engines_[best]->fire_next();
      observe_fire();
    }
    ambient_ = 0;
  }
  if (bound_clock && end > now_) now_ = end;
}

void Simulator::run_until(Time end) {
  if (sharded()) {
    run_windows(end, /*bound_clock=*/true);
    return;
  }
  EventEngine& engine = *engines_[0];
  while (!engine.empty()) {
    const Time t = engine.next_time();
    if (t > end) break;
    now_ = t;
    ++events_executed_;
    --live_;
    engine.fire_next();
    observe_fire();
  }
  if (end > now_) now_ = end;
}

void Simulator::run_all() {
  if (sharded()) {
    run_windows(Time::max(), /*bound_clock=*/false);
    return;
  }
  EventEngine& engine = *engines_[0];
  while (!engine.empty()) {
    now_ = engine.next_time();
    ++events_executed_;
    --live_;
    engine.fire_next();
    observe_fire();
  }
}

}  // namespace rica::sim
