#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace rica::sim {

EventId EventQueue::schedule(Time at, Callback cb) {
  const EventId id = next_seq_++;
  heap_.push(Entry{at, id, std::move(cb)});
  pending_.insert(id);
  if (heap_.size() > heap_peak_) heap_peak_ = heap_.size();
  return id;
}

bool EventQueue::cancel(EventId id) { return pending_.erase(id) == 1; }

void EventQueue::drop_cancelled_front() {
  while (!heap_.empty() && !pending_.contains(heap_.top().seq)) {
    heap_.pop();
  }
}

Time EventQueue::next_time() {
  drop_cancelled_front();
  assert(!heap_.empty() && "next_time() on empty EventQueue");
  return heap_.top().at;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled_front();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  // priority_queue::top() returns const&; the callback must be moved out, so
  // const_cast is confined to this one spot.
  auto& top = const_cast<Entry&>(heap_.top());
  Fired fired{top.at, top.seq, std::move(top.cb)};
  heap_.pop();
  pending_.erase(fired.id);
  return fired;
}

}  // namespace rica::sim
