// The legacy deterministic discrete-event queue (reference implementation).
//
// This is the original std::function binary heap with hash-set lazy
// cancellation.  The production kernel is the slab-backed timing-wheel
// EventEngine (event_engine.hpp); this queue is kept as the differential
// reference: the Simulator can be constructed on either backend, and tests
// assert that full-stack runs are bit-identical across the two.  Benchmarks
// use it as the baseline the engine's throughput is measured against.
//
// Events scheduled for the same instant fire in insertion order (FIFO
// tie-breaking by a monotonically increasing sequence number), which makes
// simulation runs reproducible for a fixed seed regardless of heap layout.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace rica::sim {

/// Handle identifying a scheduled event; usable to cancel it.
using EventId = std::uint64_t;

/// Priority queue of timestamped callbacks with stable ordering and O(log n)
/// schedule/pop.  Cancellation is lazy: cancelled events stay in the heap and
/// are skipped when they surface.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute time `at`. Returns a handle for cancel().
  EventId schedule(Time at, Callback cb);

  /// Cancels a previously scheduled event. Cancelling an already-fired or
  /// unknown event is a no-op. Returns true if the event was pending.
  bool cancel(EventId id);

  /// True while `id` refers to a still-pending event.
  [[nodiscard]] bool pending(EventId id) const { return pending_.contains(id); }

  /// True if no pending (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return pending_.empty(); }

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t size() const { return pending_.size(); }

  /// Time of the earliest pending event. Requires !empty().
  [[nodiscard]] Time next_time();

  /// An event popped from the queue, ready to fire.
  struct Fired {
    Time at;
    EventId id{};
    Callback cb;
  };

  /// Pops and returns the earliest pending event. Requires !empty().
  Fired pop();

  /// Total events ever scheduled (for diagnostics and benchmarks).
  [[nodiscard]] std::uint64_t total_scheduled() const { return next_seq_; }

  /// Peak heap occupancy, cancelled entries included (the legacy analogue of
  /// the engine's slab high-water mark: both measure record memory).
  [[nodiscard]] std::size_t heap_high_water() const { return heap_peak_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq{};  // doubles as EventId
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled_front();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> pending_;
  std::uint64_t next_seq_ = 0;
  std::size_t heap_peak_ = 0;
};

}  // namespace rica::sim
