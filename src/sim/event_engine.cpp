#include "sim/event_engine.hpp"

#include <algorithm>

namespace rica::sim {

static_assert(EventEngine::kInlineBytes >= sizeof(void*));

EventEngine::EventEngine() {
  for (auto& rung : wheel_) rung.assign(kBucketsPerRung, kNil);
}

EventEngine::~EventEngine() {
  // Destroy the callbacks of still-pending events (walk every chunk; the
  // engine usually dies empty, so this is cold cleanup, not a hot path).
  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    for (std::size_t i = 0; i < kChunkSlots; ++i) {
      Slot& s = chunks_[c][i];
      if (s.state != State::kFree) s.ops->destroy(s.storage);
    }
  }
}

std::uint32_t EventEngine::decode(EventId id) const {
  const auto idx_plus_one = static_cast<std::uint32_t>(id >> 32);
  if (idx_plus_one == 0) return kNil;
  const std::uint32_t idx = idx_plus_one - 1;
  if (idx >= chunks_.size() * kChunkSlots) return kNil;
  const Slot& s = slot(idx);
  if (s.gen != static_cast<std::uint32_t>(id) || s.state == State::kFree) {
    return kNil;
  }
  return idx;
}

std::uint32_t EventEngine::alloc_slot() {
  if (free_head_ == kNil) {
    const auto base = static_cast<std::uint32_t>(chunks_.size() * kChunkSlots);
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSlots));
    // Thread the fresh chunk onto the freelist back-to-front so slots hand
    // out in ascending index order (deterministic and cache-friendly).
    for (std::uint32_t i = kChunkSlots; i-- > 0;) {
      Slot& s = chunks_.back()[i];
      s.next = free_head_;
      free_head_ = base + i;
    }
  }
  const std::uint32_t idx = free_head_;
  free_head_ = slot(idx).next;
  ++slots_in_use_;
  if (slots_in_use_ > slab_high_water_) slab_high_water_ = slots_in_use_;
  return idx;
}

void EventEngine::free_slot(std::uint32_t idx) {
  Slot& s = slot(idx);
  ++s.gen;  // invalidate every outstanding handle to this slot
  s.state = State::kFree;
  s.ops = nullptr;
  s.next = free_head_;
  free_head_ = idx;
  --slots_in_use_;
}

void EventEngine::link_bucket(int rung, std::uint32_t bidx, std::uint32_t idx) {
  Slot& s = slot(idx);
  std::uint32_t& head = wheel_[static_cast<std::size_t>(rung)][bidx];
  s.next = head;
  s.prev = kNil;
  if (head != kNil) slot(head).prev = idx;
  head = idx;
  s.state = State::kWheel;
  s.bucket = static_cast<std::uint16_t>(
      (static_cast<std::uint32_t>(rung) << kRungBits) | bidx);
  occupied_[static_cast<std::size_t>(rung)][bidx >> 6] |= 1ull << (bidx & 63);
}

void EventEngine::place(std::uint32_t idx) {
  Slot& s = slot(idx);
  const std::uint64_t t = ticks(s.at);
  // Scheduling earlier than an already-fired event would violate the exact
  // (at, seq) pop order; the engine clock itself may legitimately sit ahead
  // of `at` (next_time() harvests buckets ahead of the caller's horizon).
  assert(s.at >= fired_floor_ &&
         "EventEngine: scheduling before an already-fired event");
  if (t <= cur_tick_) {
    // At or behind the harvested tick: goes straight to the spill heap,
    // where (at, seq) ordering against every not-yet-fired event is exact
    // (wheel buckets only hold strictly later ticks, and fire_next()
    // interleaves the spill top with the sorted batch cursor).
    s.state = State::kReady;
    spill_.push(ReadyEntry{s.at, s.seq, idx, s.gen});
    return;
  }
  const std::uint64_t x = t ^ cur_tick_;
  if ((x >> (kRungBits * kRungs)) != 0) {
    // Beyond the top rung's span: park on the overflow list.
    s.next = overflow_head_;
    s.prev = kNil;
    if (overflow_head_ != kNil) slot(overflow_head_).prev = idx;
    overflow_head_ = idx;
    s.state = State::kOverflow;
    s.bucket = kBucketOverflow;
    return;
  }
  // Highest differing byte between the event's tick and the current tick
  // picks the rung; within it, the event's own byte picks the bucket.  The
  // shared-prefix invariant means bucket indices never wrap across wheel
  // "revolutions".
  const int rung = (63 - std::countl_zero(x)) >> 3;
  const auto bidx = static_cast<std::uint32_t>(
      (t >> (rung * kRungBits)) & (kBucketsPerRung - 1));
  link_bucket(rung, bidx, idx);
}

void EventEngine::unlink(std::uint32_t idx) {
  Slot& s = slot(idx);
  if (s.state == State::kWheel) {
    const std::uint32_t rung = s.bucket >> kRungBits;
    const std::uint32_t bidx = s.bucket & (kBucketsPerRung - 1);
    if (s.prev == kNil) {
      wheel_[rung][bidx] = s.next;
    } else {
      slot(s.prev).next = s.next;
    }
    if (s.next != kNil) slot(s.next).prev = s.prev;
    if (wheel_[rung][bidx] == kNil) {
      occupied_[rung][bidx >> 6] &= ~(1ull << (bidx & 63));
    }
  } else {  // State::kOverflow
    if (s.prev == kNil) {
      overflow_head_ = s.next;
    } else {
      slot(s.prev).next = s.next;
    }
    if (s.next != kNil) slot(s.next).prev = s.prev;
  }
}

bool EventEngine::cancel(EventId id) {
  const std::uint32_t idx = decode(id);
  if (idx == kNil) return false;
  Slot& s = slot(idx);
  s.ops->destroy(s.storage);
  if (s.state == State::kReady) {
    // Can't extract from the middle of the heap; freeing the slot bumps the
    // generation, so the stale heap entry is skipped (and discarded) when
    // it surfaces.
  } else {
    unlink(idx);
  }
  free_slot(idx);
  --size_;
  return true;
}

bool EventEngine::pending(EventId id) const { return decode(id) != kNil; }

bool EventEngine::wheel_step(std::uint64_t max_tick, bool append) {
  // Rung 0: harvest the earliest occupied bucket *whole* into the flat
  // batch and sort it once by (at, seq) — every event in it then fires
  // off the cursor with no per-event heap churn.  Every event in the
  // bucket shares the tick prefix above the low byte with cur_tick_, so
  // the bucket's index *is* its tick order.
  {
    const auto& bm = occupied_[0];
    for (std::uint32_t w = 0; w < 4; ++w) {
      if (bm[w] == 0) continue;
      const auto bidx =
          (w << 6) + static_cast<std::uint32_t>(std::countr_zero(bm[w]));
      const std::uint64_t btick =
          (cur_tick_ & ~static_cast<std::uint64_t>(0xFF)) | bidx;
      if (btick > max_tick) return false;
      cur_tick_ = btick;
      std::uint32_t it = wheel_[0][bidx];
      wheel_[0][bidx] = kNil;
      occupied_[0][w] &= ~(1ull << (bidx & 63));
      if (!append) {
        batch_.clear();  // fully consumed: only stale entries could remain
        batch_pos_ = 0;
      }
      // When appending (staging), harvested ticks strictly increase, so
      // sorting just the appended range keeps the whole batch ordered.
      const auto first = static_cast<std::ptrdiff_t>(batch_.size());
      while (it != kNil) {
        Slot& s = slot(it);
        const std::uint32_t next = s.next;
        s.state = State::kReady;
        batch_.push_back(ReadyEntry{s.at, s.seq, it, s.gen});
        it = next;
      }
      std::sort(batch_.begin() + first, batch_.end(),
                [](const ReadyEntry& a, const ReadyEntry& b) {
                  if (a.at != b.at) return a.at < b.at;
                  return a.seq < b.seq;
                });
      return true;
    }
  }
  // Upper rungs: advance the clock to the earliest occupied bucket's
  // start and cascade its events down one (or more) rungs.  Rungs nest —
  // every rung r+1 event's tick is beyond every rung-r bucket — so the
  // first occupied bucket found rung-upward is the global next work, and a
  // bucket start past max_tick means everything left is past it too.
  for (int rung = 1; rung < kRungs; ++rung) {
    const auto& bm = occupied_[static_cast<std::size_t>(rung)];
    for (std::uint32_t w = 0; w < 4; ++w) {
      if (bm[w] == 0) continue;
      const auto bidx =
          (w << 6) + static_cast<std::uint32_t>(std::countr_zero(bm[w]));
      const int shift = rung * kRungBits;
      const std::uint64_t span_mask =
          (static_cast<std::uint64_t>(1) << (shift + kRungBits)) - 1;
      const std::uint64_t start = (cur_tick_ & ~span_mask) |
                                  (static_cast<std::uint64_t>(bidx) << shift);
      if (start > max_tick) return false;
      cur_tick_ = start;
      std::uint32_t it = wheel_[static_cast<std::size_t>(rung)][bidx];
      wheel_[static_cast<std::size_t>(rung)][bidx] = kNil;
      occupied_[static_cast<std::size_t>(rung)][w] &= ~(1ull << (bidx & 63));
      while (it != kNil) {
        const std::uint32_t next = slot(it).next;
        place(it);  // now lands at least one rung lower (or ready)
        it = next;
      }
      return true;
    }
  }
  // Wheel fully empty: jump the clock toward the overflow events and
  // re-file the ones that now fit the wheel's span.
  if (overflow_head_ == kNil) return false;
  std::uint64_t min_tick = ticks(slot(overflow_head_).at);
  for (std::uint32_t it = slot(overflow_head_).next; it != kNil;
       it = slot(it).next) {
    min_tick = std::min(min_tick, ticks(slot(it).at));
  }
  if (min_tick > max_tick) return false;
  const std::uint64_t top_mask =
      (static_cast<std::uint64_t>(1) << (kRungBits * kRungs)) - 1;
  cur_tick_ = min_tick & ~top_mask;
  std::uint32_t it = overflow_head_;
  overflow_head_ = kNil;
  while (it != kNil) {
    const std::uint32_t next = slot(it).next;
    place(it);  // back to overflow if still beyond the span
    it = next;
  }
  return true;
}

void EventEngine::advance_wheel() {
  for (;;) {
    // A cascade (or overflow re-file) can land events exactly on the new
    // bucket-start tick, which files them into the spill heap — that
    // already is the progress this function owes its caller.
    if (batch_pos_ < batch_.size() || !spill_.empty()) return;
    const bool progressed =
        wheel_step(~std::uint64_t{0}, /*append=*/false);
    (void)progressed;
    assert(progressed && "advance_wheel() with no events");
  }
}

void EventEngine::stage_until(Time horizon) {
  if (size_ == 0) return;
  // Compact the consumed prefix so multi-window batches stay bounded; the
  // live tail keeps its (at, seq) order.
  if (batch_pos_ > 0) {
    batch_.erase(batch_.begin(),
                 batch_.begin() + static_cast<std::ptrdiff_t>(batch_pos_));
    batch_pos_ = 0;
  }
  const std::uint64_t htick = ticks(horizon);
  const std::size_t before = batch_.size();
  while (wheel_step(htick, /*append=*/true)) {
  }
  staged_events_ += batch_.size() - before;
}

void EventEngine::ensure_ready() {
  for (;;) {
    // Skip batch entries cancelled since the harvest (generation mismatch).
    while (batch_pos_ < batch_.size()) {
      const ReadyEntry& e = batch_[batch_pos_];
      const Slot& s = slot(e.slot);
      if (s.gen == e.gen && s.state == State::kReady) break;
      ++batch_pos_;
    }
    while (!spill_.empty()) {
      const ReadyEntry& e = spill_.top();
      const Slot& s = slot(e.slot);
      if (s.gen == e.gen && s.state == State::kReady) break;
      spill_.pop();  // cancelled while in the spill heap
    }
    if (batch_pos_ < batch_.size() || !spill_.empty()) return;
    assert(size_ > 0 && "ensure_ready() on empty EventEngine");
    advance_wheel();
  }
}

const EventEngine::ReadyEntry& EventEngine::peek_min() const {
  // Both candidates are live (ensure_ready() just ran); pick the earlier
  // (at, seq).  seq is unique, so the comparison is a strict total order.
  if (batch_pos_ >= batch_.size()) return spill_.top();
  const ReadyEntry& b = batch_[batch_pos_];
  if (spill_.empty()) return b;
  const ReadyEntry& s = spill_.top();
  if (s.at != b.at) return s.at < b.at ? s : b;
  return s.seq < b.seq ? s : b;
}

Time EventEngine::next_time() {
  assert(!empty() && "next_time() on empty EventEngine");
  ensure_ready();
  return peek_min().at;
}

std::pair<Time, std::uint64_t> EventEngine::next_key() {
  assert(!empty() && "next_key() on empty EventEngine");
  ensure_ready();
  const ReadyEntry& e = peek_min();
  return {e.at, e.seq};
}

EventEngine::Fired EventEngine::fire_next() {
  assert(!empty() && "fire_next() on empty EventEngine");
  ensure_ready();
  const ReadyEntry e = peek_min();
  if (batch_pos_ < batch_.size() && batch_[batch_pos_].slot == e.slot &&
      batch_[batch_pos_].gen == e.gen) {
    ++batch_pos_;
    ++batched_fires_;
  } else {
    spill_.pop();
  }
  Slot& s = slot(e.slot);
  const Fired fired{s.at, make_id(e.slot, s.gen)};
  fired_floor_ = s.at;
  // Move the callback out and recycle the record *before* invoking: the
  // callback may cancel its own (already dead) handle or re-arm into the
  // same slot.
  const CallableOps* ops = s.ops;
  alignas(std::max_align_t) unsigned char tmp[kInlineBytes];
  ops->relocate(s.storage, tmp);
  free_slot(e.slot);
  --size_;
  struct Destroy {
    const CallableOps* ops;
    void* p;
    ~Destroy() { ops->destroy(p); }
  } guard{ops, tmp};
  ops->invoke(tmp);
  return fired;
}

}  // namespace rica::sim
