// The discrete-event simulation kernel.
//
// A Simulator owns the clock and the event core.  Components schedule
// callbacks at absolute times or after relative delays; run_until() drains
// events in timestamp order, advancing the clock monotonically.
//
// The event core is the slab-backed timing wheel (EventEngine), which pops
// in exact (timestamp, schedule-seq) order — runs are bit-identical for a
// fixed seed, and the golden test suite pins full-stack stream hashes
// against captured references.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>

#include "sim/event_engine.hpp"
#include "sim/time.hpp"

namespace rica::sim {

/// Observes the kernel's firing loop at a bounded sim-time rate.  Declared
/// here (and implemented by obs::KernelProbe) so the kernel has no
/// dependency on the observability layer; with no observer installed the
/// run loop pays one pointer test per fired event.
class KernelObserver {
 public:
  virtual ~KernelObserver() = default;
  /// Called after a fired event once at least the configured interval of
  /// sim time has elapsed since the previous call (and after the first
  /// fired event).  `pending` is the queue size after the fire.
  virtual void on_kernel_window(Time now, std::uint64_t events_executed,
                                std::uint64_t batched_fires,
                                std::size_t pending) = 0;
};

/// Discrete-event simulation kernel: clock + event core + run loop.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` at absolute time `when` (must not precede now()).
  template <typename F>
  EventId at(Time when, F&& fn) {
    assert(when >= now_ && "cannot schedule in the past");
    const EventId id = engine_.schedule(when, std::forward<F>(fn));
    note_scheduled();
    return id;
  }

  /// Schedules `fn` after a non-negative relative `delay`.
  template <typename F>
  EventId after(Time delay, F&& fn) {
    assert(delay >= Time::zero() && "negative delay");
    const EventId id = engine_.schedule(now_ + delay, std::forward<F>(fn));
    note_scheduled();
    return id;
  }

  /// Cancels a pending event; no-op if it already fired.
  bool cancel(EventId id) { return engine_.cancel(id); }

  /// True while `id` refers to a still-pending event.
  [[nodiscard]] bool pending(EventId id) const { return engine_.pending(id); }

  /// Runs events with timestamp <= `end`, then sets the clock to `end`.
  void run_until(Time end);

  /// Runs until the event queue is empty (use with care: timer chains that
  /// re-arm themselves never drain; prefer run_until()).
  void run_all();

  // -- kernel observability ---------------------------------------------------
  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }

  /// Number of pending events (for tests/diagnostics).
  [[nodiscard]] std::size_t pending_events() const { return engine_.size(); }

  /// Maximum simultaneously pending events seen so far.
  [[nodiscard]] std::size_t peak_pending_events() const {
    return peak_pending_;
  }

  /// Event-record memory high-water mark (slab slots in use at once).
  [[nodiscard]] std::size_t slab_high_water() const {
    return engine_.slab_high_water();
  }

  /// Closures that outgrew the engine's inline callback buffer and spilled
  /// to a heap cell.
  [[nodiscard]] std::uint64_t heap_fallbacks() const {
    return engine_.heap_fallbacks();
  }

  /// Events fired straight off the engine's sorted flat batch (the rest
  /// went through the spill heap).
  [[nodiscard]] std::uint64_t batched_fires() const {
    return engine_.batched_fires();
  }

  /// Installs (or removes, with nullptr) a kernel observer.  The observer
  /// is invoked from the run loop at most once per `min_interval` of sim
  /// time — it must not schedule or cancel events.
  void set_kernel_observer(KernelObserver* observer, Time min_interval) {
    observer_ = observer;
    observer_interval_ = min_interval;
    next_observation_ = Time::zero();
  }

 private:
  void note_scheduled() {
    const std::size_t n = pending_events();
    if (n > peak_pending_) peak_pending_ = n;
  }

  void observe_fire() {
    if (observer_ == nullptr || now_ < next_observation_) return;
    next_observation_ = now_ + observer_interval_;
    observer_->on_kernel_window(now_, events_executed_,
                                engine_.batched_fires(), engine_.size());
  }

  EventEngine engine_;
  Time now_ = Time::zero();
  std::uint64_t events_executed_ = 0;
  std::size_t peak_pending_ = 0;
  KernelObserver* observer_ = nullptr;
  Time observer_interval_ = Time::zero();
  Time next_observation_ = Time::zero();
};

}  // namespace rica::sim
