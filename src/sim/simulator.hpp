// The discrete-event simulation kernel.
//
// A Simulator owns the clock and the event core.  Components schedule
// callbacks at absolute times or after relative delays; run_until() drains
// events in timestamp order, advancing the clock monotonically.
//
// Two interchangeable backends exist: the production slab-backed timing
// wheel (EventEngine) and the legacy std::function heap (EventQueue), kept
// as a differential reference.  Both pop in exact (timestamp, schedule-seq)
// order, so runs are bit-identical across backends for a fixed seed — the
// event_engine test suite asserts this over the full protocol stack.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>

#include "sim/event_engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace rica::sim {

/// Which event core a Simulator runs on.
enum class EngineBackend : std::uint8_t {
  kWheel,       ///< slab + four-rung timing wheel (production)
  kLegacyHeap,  ///< std::function binary heap (differential reference)
};

/// Discrete-event simulation kernel: clock + event core + run loop.
class Simulator {
 public:
  explicit Simulator(EngineBackend backend = EngineBackend::kWheel)
      : use_legacy_(backend == EngineBackend::kLegacyHeap) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  [[nodiscard]] Time now() const { return now_; }

  [[nodiscard]] EngineBackend backend() const {
    return use_legacy_ ? EngineBackend::kLegacyHeap : EngineBackend::kWheel;
  }

  /// Schedules `fn` at absolute time `when` (must not precede now()).
  template <typename F>
  EventId at(Time when, F&& fn) {
    assert(when >= now_ && "cannot schedule in the past");
    const EventId id = use_legacy_
                           ? legacy_.schedule(when, std::forward<F>(fn))
                           : engine_.schedule(when, std::forward<F>(fn));
    note_scheduled();
    return id;
  }

  /// Schedules `fn` after a non-negative relative `delay`.
  template <typename F>
  EventId after(Time delay, F&& fn) {
    assert(delay >= Time::zero() && "negative delay");
    const EventId id =
        use_legacy_ ? legacy_.schedule(now_ + delay, std::forward<F>(fn))
                    : engine_.schedule(now_ + delay, std::forward<F>(fn));
    note_scheduled();
    return id;
  }

  /// Cancels a pending event; no-op if it already fired.
  bool cancel(EventId id) {
    return use_legacy_ ? legacy_.cancel(id) : engine_.cancel(id);
  }

  /// True while `id` refers to a still-pending event.
  [[nodiscard]] bool pending(EventId id) const {
    return use_legacy_ ? legacy_.pending(id) : engine_.pending(id);
  }

  /// Runs events with timestamp <= `end`, then sets the clock to `end`.
  void run_until(Time end);

  /// Runs until the event queue is empty (use with care: timer chains that
  /// re-arm themselves never drain; prefer run_until()).
  void run_all();

  // -- kernel observability ---------------------------------------------------
  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }

  /// Number of pending events (for tests/diagnostics).
  [[nodiscard]] std::size_t pending_events() const {
    return use_legacy_ ? legacy_.size() : engine_.size();
  }

  /// Maximum simultaneously pending events seen so far.
  [[nodiscard]] std::size_t peak_pending_events() const {
    return peak_pending_;
  }

  /// Event-record memory high-water mark: slots in use for the wheel
  /// backend, heap entries (cancelled included) for the legacy backend.
  [[nodiscard]] std::size_t slab_high_water() const {
    return use_legacy_ ? legacy_.heap_high_water() : engine_.slab_high_water();
  }

  /// Closures that outgrew the wheel's inline callback buffer and spilled
  /// to a heap cell.  0 on the legacy backend, whose std::function storage
  /// has no inline/spill distinction to report.
  [[nodiscard]] std::uint64_t heap_fallbacks() const {
    return use_legacy_ ? 0 : engine_.heap_fallbacks();
  }

 private:
  void note_scheduled() {
    const std::size_t n = pending_events();
    if (n > peak_pending_) peak_pending_ = n;
  }

  EventEngine engine_;
  EventQueue legacy_;
  bool use_legacy_ = false;
  Time now_ = Time::zero();
  std::uint64_t events_executed_ = 0;
  std::size_t peak_pending_ = 0;
};

}  // namespace rica::sim
