// The discrete-event simulation kernel.
//
// A Simulator owns the clock and the event queue.  Components schedule
// callbacks at absolute times or after relative delays; run_until() drains
// events in timestamp order, advancing the clock monotonically.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace rica::sim {

/// Discrete-event simulation kernel: clock + event queue + run loop.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `cb` at absolute time `at` (must not precede now()).
  EventId at(Time when, EventQueue::Callback cb);

  /// Schedules `cb` after a non-negative relative `delay`.
  EventId after(Time delay, EventQueue::Callback cb);

  /// Cancels a pending event; no-op if it already fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs events with timestamp <= `end`, then sets the clock to `end`.
  void run_until(Time end);

  /// Runs until the event queue is empty (use with care: timer chains that
  /// re-arm themselves never drain; prefer run_until()).
  void run_all();

  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }

  /// Number of pending events (for tests/diagnostics).
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

 private:
  EventQueue queue_;
  Time now_ = Time::zero();
  std::uint64_t events_executed_ = 0;
};

}  // namespace rica::sim
