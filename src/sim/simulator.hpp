// The discrete-event simulation kernel.
//
// A Simulator owns the clock and the event core.  Components schedule
// callbacks at absolute times or after relative delays; run_until() drains
// events in timestamp order, advancing the clock monotonically.
//
// The event core is the slab-backed timing wheel (EventEngine), which pops
// in exact (timestamp, schedule-seq) order — runs are bit-identical for a
// fixed seed, and the golden test suite pins full-stack stream hashes
// against captured references.
//
// -- sharded mode ------------------------------------------------------------
// configure_shards() splits the kernel into one EventEngine wheel per
// spatial shard (see sim/sharding.hpp), all drawing schedule sequence
// numbers from one shared counter.  The run loop then proceeds in
// conservative windows: it picks the global minimum timestamp tmin, sizes a
// horizon tmin + window (the channel-derived lookahead), lets worker
// threads *stage* every shard concurrently up to the horizon (wheel
// cascades, bucket harvests, batch sorts — engine-local work), and then
// *commits* serially, firing events across all shards in exact global
// (at, seq) order.  Because the commit order and the shared sequence
// counter reproduce the single-engine order event for event, every RNG
// draw, channel query, and metrics fold happens in the identical order —
// the stream hash is byte-identical for ANY thread or shard count, and the
// lookahead window only shapes how much sorting work the parallel phase
// can absorb, never correctness.  The serial engine (1 shard) remains the
// golden reference and keeps its exact pre-sharding behavior.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event_engine.hpp"
#include "sim/time.hpp"

namespace rica::sim {

/// Observes the kernel's firing loop at a bounded sim-time rate.  Declared
/// here (and implemented by obs::KernelProbe) so the kernel has no
/// dependency on the observability layer; with no observer installed the
/// run loop pays one pointer test per fired event.
class KernelObserver {
 public:
  virtual ~KernelObserver() = default;
  /// Called after a fired event once at least the configured interval of
  /// sim time has elapsed since the previous call (and after the first
  /// fired event).  `pending` is the queue size after the fire.
  /// `shard_pending` points at `num_shards` per-shard queue sizes when the
  /// kernel is sharded (nullptr / 0 on the serial engine).
  virtual void on_kernel_window(Time now, std::uint64_t events_executed,
                                std::uint64_t batched_fires,
                                std::size_t pending,
                                const std::size_t* shard_pending,
                                std::size_t num_shards) = 0;
};

/// Kernel parallelism knobs, wired from the harness (--threads/--shards).
struct KernelConfig {
  unsigned threads = 1;     ///< staging worker threads; <=1 stages inline
  std::uint32_t shards = 1; ///< per-shard wheels; 1 = the serial engine
  Time window = Time::zero();  ///< conservative lookahead window per barrier
};

/// Discrete-event simulation kernel: clock + event core(s) + run loop.
class Simulator {
 public:
  /// Shard ids ride in the top 6 bits of an EventId (the slab index below
  /// never reaches 2^26 slots), so shard 0 handles are bit-identical to the
  /// serial engine's.
  static constexpr std::uint32_t kMaxShards = 64;
  static constexpr int kShardShift = 58;

  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Splits the kernel into `num_shards` wheels with `node_shard` mapping
  /// each node id to its home shard, synchronizing on `window` of
  /// lookahead, staging on `threads` workers.  Must be called before any
  /// event is scheduled; with num_shards == 1 the kernel stays serial.
  void configure_shards(std::vector<std::uint32_t> node_shard,
                        std::uint32_t num_shards, Time window,
                        unsigned threads);

  [[nodiscard]] bool sharded() const { return engines_.size() > 1; }
  [[nodiscard]] std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(engines_.size());
  }
  /// Home shard of a node (0 for every node on the serial engine).
  [[nodiscard]] std::uint32_t shard_of_node(std::uint32_t node) const {
    return node < node_shard_.size() ? node_shard_[node] : 0;
  }
  /// The shard whose event is currently executing (the ambient shard new
  /// events land in); 0 outside the run loop and on the serial engine.
  [[nodiscard]] std::uint32_t current_shard() const { return ambient_; }

  /// Current simulation time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` at absolute time `when` (must not precede now()) in
  /// the ambient shard.
  template <typename F>
  EventId at(Time when, F&& fn) {
    return at_shard(ambient_, when, std::forward<F>(fn));
  }

  /// Schedules `fn` after a non-negative relative `delay` in the ambient
  /// shard.
  template <typename F>
  EventId after(Time delay, F&& fn) {
    assert(delay >= Time::zero() && "negative delay");
    return at_shard(ambient_, now_ + delay, std::forward<F>(fn));
  }

  /// Schedules `fn` at `when` in node `owner`'s home shard, counting a
  /// cross-shard channel send when that differs from the ambient shard.
  template <typename F>
  EventId at_node(std::uint32_t owner, Time when, F&& fn) {
    const std::uint32_t tgt = shard_of_node(owner);
    if (tgt != ambient_) note_channel_send(tgt, when);
    return at_shard(tgt, when, std::forward<F>(fn));
  }

  /// Schedules `fn` after `delay` in node `owner`'s home shard.
  template <typename F>
  EventId after_node(std::uint32_t owner, Time delay, F&& fn) {
    assert(delay >= Time::zero() && "negative delay");
    return at_node(owner, now_ + delay, std::forward<F>(fn));
  }

  /// Cancels a pending event; no-op if it already fired.
  bool cancel(EventId id) {
    const std::uint32_t s = shard_of_id(id);
    if (s >= engines_.size()) return false;
    const bool live = engines_[s]->cancel(untag(id));
    if (live) --live_;
    return live;
  }

  /// True while `id` refers to a still-pending event.
  [[nodiscard]] bool pending(EventId id) const {
    const std::uint32_t s = shard_of_id(id);
    return s < engines_.size() && engines_[s]->pending(untag(id));
  }

  /// Runs events with timestamp <= `end`, then sets the clock to `end`.
  void run_until(Time end);

  /// Runs until the event queue is empty (use with care: timer chains that
  /// re-arm themselves never drain; prefer run_until()).
  void run_all();

  // -- kernel observability ---------------------------------------------------
  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }

  /// Number of pending events (for tests/diagnostics).
  [[nodiscard]] std::size_t pending_events() const { return live_; }

  /// Maximum simultaneously pending events seen so far.
  [[nodiscard]] std::size_t peak_pending_events() const {
    return peak_pending_;
  }

  /// Event-record memory high-water mark (slab slots in use at once,
  /// summed over shards).
  [[nodiscard]] std::size_t slab_high_water() const {
    std::size_t hw = 0;
    for (const auto& e : engines_) hw += e->slab_high_water();
    return hw;
  }

  /// Closures that outgrew the engine's inline callback buffer and spilled
  /// to a heap cell.
  [[nodiscard]] std::uint64_t heap_fallbacks() const {
    std::uint64_t n = 0;
    for (const auto& e : engines_) n += e->heap_fallbacks();
    return n;
  }

  /// Events fired straight off the engine's sorted flat batch (the rest
  /// went through the spill heap).
  [[nodiscard]] std::uint64_t batched_fires() const {
    std::uint64_t n = 0;
    for (const auto& e : engines_) n += e->batched_fires();
    return n;
  }

  // -- sharded-kernel telemetry ----------------------------------------------
  /// Conservative windows committed (0 on the serial engine).
  [[nodiscard]] std::uint64_t windows() const { return windows_; }
  /// Events pre-sorted by the parallel staging phase.
  [[nodiscard]] std::uint64_t staged_events() const {
    std::uint64_t n = 0;
    for (const auto& e : engines_) n += e->staged_events();
    return n;
  }
  /// Scheduled sends that crossed a shard boundary (at_node/after_node
  /// with an owner outside the ambient shard).
  [[nodiscard]] std::uint64_t cross_shard_sends() const {
    return cross_shard_sends_;
  }
  /// Zero-latency deliveries into another shard's state (ShardScope
  /// delivery entries: MAC receptions and link handoffs across a
  /// boundary).
  [[nodiscard]] std::uint64_t sync_crossings() const {
    return sync_crossings_;
  }
  /// Events fired from shard `s`.
  [[nodiscard]] std::uint64_t shard_events(std::uint32_t s) const {
    return s < shard_events_.size() ? shard_events_[s] : 0;
  }
  /// Pending events in shard `s`.
  [[nodiscard]] std::size_t shard_pending(std::uint32_t s) const {
    return s < engines_.size() ? engines_[s]->size() : 0;
  }
  /// Total traffic of the (from, to) cross-shard channel: scheduled sends
  /// plus zero-latency deliveries.  Requires both shards in range.
  [[nodiscard]] std::uint64_t channel_traffic(std::uint32_t from,
                                              std::uint32_t to) const {
    return channel_counts_[from * num_shards() + to];
  }

  /// Test hook observing every cross-shard handoff: (from, to, at, sync).
  /// `sync` marks a zero-latency ShardScope delivery; scheduled channel
  /// sends report the event's timestamp.  Keep unset in production runs.
  using ChannelHook =
      std::function<void(std::uint32_t, std::uint32_t, Time, bool)>;
  void set_channel_hook(ChannelHook hook) { channel_hook_ = std::move(hook); }

  /// Installs (or removes, with nullptr) a kernel observer.  The observer
  /// is invoked from the run loop at most once per `min_interval` of sim
  /// time — it must not schedule or cancel events.
  void set_kernel_observer(KernelObserver* observer, Time min_interval) {
    observer_ = observer;
    observer_interval_ = min_interval;
    next_observation_ = Time::zero();
  }

  /// Per-window staging telemetry: called after each conservative window's
  /// staging phase with the number of events that phase pre-sorted.  A
  /// plain callback (like KernelObserver, the kernel stays free of any
  /// observability dependency); never fires on the serial engine.  The
  /// hook runs between windows — it must not schedule or cancel events.
  using WindowHook = std::function<void(std::uint64_t staged_delta)>;
  void set_window_hook(WindowHook hook) { window_hook_ = std::move(hook); }

 private:
  friend class ShardScope;

  static constexpr EventId kRawIdMask =
      (EventId{1} << kShardShift) - 1;

  static constexpr std::uint32_t shard_of_id(EventId id) {
    return static_cast<std::uint32_t>(id >> kShardShift);
  }
  static constexpr EventId untag(EventId id) { return id & kRawIdMask; }

  template <typename F>
  EventId at_shard(std::uint32_t shard, Time when, F&& fn) {
    assert(when >= now_ && "cannot schedule in the past");
    const EventId raw = engines_[shard]->schedule(when, std::forward<F>(fn));
    assert((raw & ~kRawIdMask) == 0 && "slab index overflows the shard tag");
    note_scheduled();
    return raw | (static_cast<EventId>(shard) << kShardShift);
  }

  void note_scheduled() {
    const std::size_t n = ++live_;
    if (n > peak_pending_) peak_pending_ = n;
  }

  void note_channel_send(std::uint32_t to, Time when) {
    ++cross_shard_sends_;
    ++channel_counts_[ambient_ * num_shards() + to];
    if (channel_hook_) channel_hook_(ambient_, to, when, false);
  }

  void note_sync_crossing(std::uint32_t from, std::uint32_t to) {
    ++sync_crossings_;
    ++channel_counts_[from * num_shards() + to];
    if (channel_hook_) channel_hook_(from, to, now_, true);
  }

  void observe_fire();
  /// The conservative stage/commit window loop; `bound_clock` replicates
  /// run_until()'s trailing clock advance to `end`.
  void run_windows(Time end, bool bound_clock);
  /// Stages every shard up to `horizon` — on the worker pool when one is
  /// running, inline otherwise.
  void stage_all(Time horizon);

  struct StagePool;

  std::vector<std::unique_ptr<EventEngine>> engines_;
  std::vector<std::uint32_t> node_shard_;
  std::uint64_t shared_seq_ = 0;
  Time window_ = Time::zero();
  std::uint32_t ambient_ = 0;
  std::unique_ptr<StagePool> pool_;

  Time now_ = Time::zero();
  std::uint64_t events_executed_ = 0;
  std::size_t live_ = 0;
  std::size_t peak_pending_ = 0;

  std::uint64_t windows_ = 0;
  std::uint64_t cross_shard_sends_ = 0;
  std::uint64_t sync_crossings_ = 0;
  std::vector<std::uint64_t> shard_events_;
  std::vector<std::uint64_t> channel_counts_;
  std::vector<std::size_t> shard_pending_scratch_;
  ChannelHook channel_hook_;
  WindowHook window_hook_;

  KernelObserver* observer_ = nullptr;
  Time observer_interval_ = Time::zero();
  Time next_observation_ = Time::zero();
};

/// RAII ambient-shard switch: executes the enclosed scope as shard
/// `shard`, so events the scope schedules land in that shard's wheel.
/// Delivery entries (the default) crossing a boundary are counted as
/// zero-latency channel traffic — the MAC's same-instant receptions and
/// the link layer's handoffs; homing entries (seeding a component's timer
/// chain into its owner's shard) switch silently.
class ShardScope {
 public:
  enum class Kind { kDelivery, kHoming };

  ShardScope(Simulator& sim, std::uint32_t shard, Kind kind = Kind::kDelivery)
      : sim_(sim), saved_(sim.ambient_) {
    if (shard != saved_ && kind == Kind::kDelivery) {
      sim_.note_sync_crossing(saved_, shard);
    }
    sim_.ambient_ = shard;
  }
  ~ShardScope() { sim_.ambient_ = saved_; }
  ShardScope(const ShardScope&) = delete;
  ShardScope& operator=(const ShardScope&) = delete;

 private:
  Simulator& sim_;
  std::uint32_t saved_;
};

}  // namespace rica::sim
