// First-class RAII timer over the event engine.
//
// A Timer owns at most one pending event: arming it again cancels the
// previous event first (rearm), and destruction cancels whatever is still
// pending — so a component that dies with a timer in flight can never leave
// a dangling callback behind.  Generation-counted handles make every
// operation safe after the event has fired: cancel() and armed() simply see
// a stale handle.
//
// Ownership rules (see DESIGN.md §5):
//   * the Timer must not outlive the Simulator it was last armed on;
//   * a periodic timer re-arms itself from inside its own callback (the
//     previous handle is already dead by then, so rearm is just arm);
//   * Timers are movable (protocol per-flow state lives in hash maps); the
//     moved-from timer is disarmed without cancelling the moved event.
#pragma once

#include <utility>

#include "sim/simulator.hpp"

namespace rica::sim {

class Timer {
 public:
  Timer() = default;
  ~Timer() { cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  Timer(Timer&& other) noexcept : sim_(other.sim_), id_(other.id_) {
    other.sim_ = nullptr;
    other.id_ = 0;
  }
  Timer& operator=(Timer&& other) noexcept {
    if (this != &other) {
      cancel();
      sim_ = other.sim_;
      id_ = other.id_;
      other.sim_ = nullptr;
      other.id_ = 0;
    }
    return *this;
  }

  /// Arms (or rearms) the timer at absolute time `when`.
  template <typename F>
  void arm_at(Simulator& sim, Time when, F&& fn) {
    cancel();
    sim_ = &sim;
    id_ = sim.at(when, std::forward<F>(fn));
  }

  /// Arms (or rearms) the timer `delay` from now.
  template <typename F>
  void arm_after(Simulator& sim, Time delay, F&& fn) {
    cancel();
    sim_ = &sim;
    id_ = sim.after(delay, std::forward<F>(fn));
  }

  /// Cancels the pending event, if any. Returns true if one was pending.
  bool cancel() {
    if (sim_ == nullptr) return false;
    const bool live = sim_->cancel(id_);
    sim_ = nullptr;
    id_ = 0;
    return live;
  }

  /// True while the armed event has neither fired nor been cancelled.
  [[nodiscard]] bool armed() const {
    return sim_ != nullptr && sim_->pending(id_);
  }

 private:
  Simulator* sim_ = nullptr;
  EventId id_ = 0;
};

}  // namespace rica::sim
