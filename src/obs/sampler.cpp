#include "obs/sampler.hpp"

#include <cinttypes>
#include <stdexcept>
#include <utility>

namespace rica::obs {

namespace {

/// Integer-arithmetic "seconds with 6 decimals" from nanoseconds, so the
/// CSV timestamps are byte-stable (no double rounding in the hot format).
struct SecondsStr {
  char buf[40];
  explicit SecondsStr(sim::Time t) {
    const std::int64_t ns = t.nanos();
    std::snprintf(buf, sizeof(buf), "%" PRId64 ".%06" PRId64,
                  ns / 1'000'000'000, (ns % 1'000'000'000) / 1000);
  }
};

}  // namespace

SeriesSampler::SeriesSampler(const std::string& path, SeriesSource source)
    : source_(std::move(source)) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("cannot open series output file: " + path);
  }
  std::fputs(
      "t_s,pending_events,events_executed,buffered_packets,delivered,"
      "delivery_rate_pps,control_kbps\n",
      file_);
}

SeriesSampler::~SeriesSampler() {
  if (file_ != nullptr) std::fclose(file_);
}

void SeriesSampler::flush() {
  if (file_ != nullptr) std::fflush(file_);
}

void SeriesSampler::start(sim::Simulator& sim, sim::Time dt, sim::Time end) {
  if (dt <= sim::Time::zero()) return;
  dt_ = dt;
  end_ = end;
  arm(sim);
}

void SeriesSampler::arm(sim::Simulator& sim) {
  const sim::Time next = sim.now() + dt_;
  if (next > end_) return;
  timer_.arm_at(sim, next, [this, &sim] {
    sample(sim);
    arm(sim);
  });
}

void SeriesSampler::sample(sim::Simulator& sim) {
  const std::uint64_t delivered = source_.delivered ? source_.delivered() : 0;
  const double control_bits =
      source_.control_bits ? source_.control_bits() : 0.0;
  const std::uint64_t buffered =
      source_.buffered_packets ? source_.buffered_packets() : 0;
  const double dt_s = dt_.seconds();
  const double rate_pps =
      static_cast<double>(delivered - last_delivered_) / dt_s;
  const double control_kbps = (control_bits - last_control_bits_) / dt_s / 1e3;
  last_delivered_ = delivered;
  last_control_bits_ = control_bits;
  std::fprintf(file_, "%s,%zu,%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%.3f,%.3f\n",
               SecondsStr(sim.now()).buf, sim.pending_events(),
               sim.events_executed(), buffered, delivered, rate_pps,
               control_kbps);
}

void KernelProbe::on_kernel_window(sim::Time now,
                                   std::uint64_t events_executed,
                                   std::uint64_t batched_fires,
                                   std::size_t pending,
                                   const std::size_t* shard_pending,
                                   std::size_t num_shards) {
  if (tracer_ != nullptr && tracer_->kernel_on()) {
    tracer_->kernel(KernelTrace{now, events_executed, batched_fires,
                                static_cast<std::uint64_t>(pending)});
  }
  if (perfetto_ != nullptr) {
    const std::uint64_t fired = events_executed - last_executed_;
    const std::uint64_t batched = batched_fires - last_batched_;
    perfetto_->counter(PerfettoWriter::kKernelPid, "pending_events", now,
                       pending);
    perfetto_->counter(PerfettoWriter::kKernelPid, "fired_per_window", now,
                       fired);
    perfetto_->counter(PerfettoWriter::kKernelPid, "batched_per_window", now,
                       batched);
    perfetto_->counter(PerfettoWriter::kKernelPid, "spill_per_window", now,
                       fired - batched);
    // One counter track per shard: the live occupancy of each wheel, the
    // visual for staging balance across stripes.
    for (std::size_t s = 0; s < num_shards; ++s) {
      char name[32];
      std::snprintf(name, sizeof(name), "shard%zu_pending", s);
      perfetto_->counter(PerfettoWriter::kKernelPid, name, now,
                         shard_pending[s]);
    }
  }
  last_executed_ = events_executed;
  last_batched_ = batched_fires;
}

}  // namespace rica::obs
