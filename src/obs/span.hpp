// Causal span derivation: turns the flat packet/route lifecycle stream into
// parent/child interval records whose durations decompose every packet's
// end-to-end delay exactly.
//
// A `SpanBook` taps the Tracer (Tracer::set_span_book) and runs one little
// state machine per in-flight packet, keyed by the globally unique
// (flow << 32) | seq identity.  `generated` opens a root span (the *trace*:
// its id names the whole causal chain) and puts the packet in a "hold"
// phase; every subsequent lifecycle record closes the current phase —
// emitting one child span — and opens the next:
//
//   phase      closed by                          emitted child kind
//   hold       enqueued / delivered / dropped     route_wait (detail:
//              (waiting on the protocol's         discovery | repair | hold)
//              routing decision)
//   queue      tx_start / re-enqueued / dropped   queue
//   backoff    tx_start / re-enqueued / dropped   backoff
//   air        tx_end                             airtime
//              tx_fail / re-enqueued / dropped    retry (wasted airtime)
//
// Each close instant is the next phase's open instant and the root covers
// generation → delivery/drop, so the child durations of a chain sum to the
// root duration *by construction* — the invariant tests/span_test.cpp and
// scripts/trace_query.py assert.  Zero-length phases are skipped (the sum
// is unaffected).  Discovery and repair episodes are independent root spans
// keyed by (requesting node, destination), opened by discovery_start /
// repair_start and closed by established / discovery_failed / repaired; a
// packet's route_wait names which kind of episode it sat behind.
//
// Determinism: span ids are allocated in the order spans open, which is the
// kernel's serial commit order — identical for any shard/thread count — and
// records are emitted when spans *close*, so the span stream is t_ns-
// monotone and byte-identical across reruns.  A parent id may reference a
// root emitted later (schema checkers collect ids first).  finish() flushes
// still-open spans with detail "in_flight" at the run's end time.
#pragma once

#include <cstdint>
#include <map>

#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace rica::obs {

class SpanBook {
 public:
  explicit SpanBook(Tracer& tracer) : tracer_(tracer) {}
  SpanBook(const SpanBook&) = delete;
  SpanBook& operator=(const SpanBook&) = delete;

  /// Lifecycle taps, called by the Tracer before its sinks see the record.
  void on_packet(const PacketTrace& rec);
  void on_route(const RouteTrace& rec);

  /// Emits every still-open packet root and discovery/repair episode with
  /// detail "in_flight", interval-ended at `now` (call once, at run end,
  /// before detaching).  Iterates in key order, so the flush is
  /// deterministic.
  void finish(sim::Time now);

  /// Spans emitted so far (diagnostics/tests).
  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }

 private:
  enum class Phase : std::uint8_t { kHold, kQueue, kBackoff, kAir };

  struct PacketState {
    std::uint64_t root = 0;    ///< root span id == trace id
    sim::Time root_start{};
    Phase phase = Phase::kHold;
    sim::Time phase_start{};
    std::uint32_t flow = 0;
    std::uint32_t seq = 0;
    std::uint32_t node = 0;    ///< terminal the current phase is spent at
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
  };

  struct Episode {
    std::uint64_t span = 0;
    sim::Time start{};
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
  };

  static std::uint64_t packet_key(std::uint32_t flow, std::uint32_t seq) {
    return (static_cast<std::uint64_t>(flow) << 32) | seq;
  }
  static std::uint64_t episode_key(std::uint32_t node, std::uint32_t dst) {
    return (static_cast<std::uint64_t>(node) << 32) | dst;
  }

  /// Closes the open phase at `at`, emitting a child span unless it is
  /// zero-length.  `cause` stamps the child's detail for queue/backoff/air
  /// phases (failure cause or "reroute"); hold phases derive their own.
  /// `air_failed` tells an air close whether the transmission was
  /// interrupted (tx_fail -> "retry") or completed (tx_end -> "airtime").
  void close_phase(PacketState& st, sim::Time at, std::string_view cause,
                   bool air_failed = false);
  void open_phase(PacketState& st, Phase phase, sim::Time at,
                  std::uint32_t node) {
    st.phase = phase;
    st.phase_start = at;
    st.node = node;
  }
  void emit(std::string_view kind, const PacketState& st, sim::Time start,
            sim::Time end, std::string_view detail);
  void emit_root(const PacketState& st, sim::Time end,
                 std::string_view detail);
  void close_episode(std::map<std::uint64_t, Episode>& book,
                     std::string_view kind, std::uint64_t key,
                     std::uint32_t node, sim::Time at,
                     std::string_view detail);

  Tracer& tracer_;
  std::map<std::uint64_t, PacketState> packets_;
  std::map<std::uint64_t, Episode> discoveries_;  ///< keyed (node, dst)
  std::map<std::uint64_t, Episode> repairs_;      ///< keyed (node, dst)
  /// Close time of the last episode per key: a hold that overlaps one is a
  /// discovery/repair wait even though the episode record closed first.
  std::map<std::uint64_t, sim::Time> discovery_end_;
  std::map<std::uint64_t, sim::Time> repair_end_;
  std::uint64_t next_id_ = 1;  ///< 0 is reserved for "no parent"
  std::uint64_t emitted_ = 0;
};

}  // namespace rica::obs
