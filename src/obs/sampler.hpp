// Time-series sampling and the kernel profiling probe.
//
// `SeriesSampler` dumps a periodic per-run CSV (`--sample-dt S`): simulated
// time, pending kernel events, cumulative work, buffered data packets
// across every link queue, instantaneous delivery rate, and control
// overhead rate.  It reads its columns through caller-supplied thunks, so
// the observability layer stays decoupled from the network stack; the
// harness wires the thunks to the MetricsCollector and Network.  The
// sampler schedules *real* simulation events — a run with sampling enabled
// executes more kernel events than one without (events_executed moves) but
// never touches the metrics stream hash, because the sample callback only
// reads.
//
// `KernelProbe` adapts the Simulator's `sim::KernelObserver` hook to the
// trace layer: each observation window becomes a JSONL kernel record and a
// set of Perfetto counter samples (pending events; fired / batched / spill
// counts per window) on the "kernel" process track.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "obs/perfetto.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace rica::obs {

/// Column providers for SeriesSampler, wired by the harness.
struct SeriesSource {
  std::function<std::uint64_t()> delivered;         ///< cumulative packets
  std::function<double()> control_bits;             ///< cumulative bits on air
  std::function<std::uint64_t()> buffered_packets;  ///< live link-queue total
};

class SeriesSampler {
 public:
  /// Opens `path` and writes the CSV header.  Throws std::runtime_error
  /// when the file cannot be opened.
  SeriesSampler(const std::string& path, SeriesSource source);
  ~SeriesSampler();
  SeriesSampler(const SeriesSampler&) = delete;
  SeriesSampler& operator=(const SeriesSampler&) = delete;

  /// Arms periodic sampling every `dt` until `end` (inclusive), starting at
  /// `dt`.  Must be called before the run.
  void start(sim::Simulator& sim, sim::Time dt, sim::Time end);

  /// Flushes buffered rows (also done on destruction).
  void flush();

 private:
  void sample(sim::Simulator& sim);
  void arm(sim::Simulator& sim);

  std::FILE* file_ = nullptr;
  SeriesSource source_;
  sim::Timer timer_;
  sim::Time dt_{};
  sim::Time end_{};
  std::uint64_t last_delivered_ = 0;
  double last_control_bits_ = 0.0;
};

/// Bridges sim::KernelObserver into the trace layer.  Install with
/// Simulator::set_kernel_observer(&probe, interval).
class KernelProbe final : public sim::KernelObserver {
 public:
  /// Either sink may be null; the probe feeds whichever are present.
  KernelProbe(Tracer* tracer, PerfettoWriter* perfetto)
      : tracer_(tracer), perfetto_(perfetto) {}

  void on_kernel_window(sim::Time now, std::uint64_t events_executed,
                        std::uint64_t batched_fires, std::size_t pending,
                        const std::size_t* shard_pending,
                        std::size_t num_shards) override;

 private:
  Tracer* tracer_;
  PerfettoWriter* perfetto_;
  std::uint64_t last_executed_ = 0;
  std::uint64_t last_batched_ = 0;
};

}  // namespace rica::obs
