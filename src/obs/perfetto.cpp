#include "obs/perfetto.hpp"

#include <cinttypes>
#include <stdexcept>

namespace rica::obs {

namespace {

/// Formats integer nanoseconds as microseconds with exactly three decimal
/// places, by integer arithmetic: 1234567 ns -> "1234.567".  trace_event
/// timestamps are in microseconds; keeping sub-µs precision preserves the
/// kernel's nanosecond event spacing.
struct Micros {
  char buf[32];
  explicit Micros(sim::Time t) {
    const std::int64_t ns = t.nanos();
    std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03" PRId64, ns / 1000,
                  ns % 1000);
  }
};

constexpr std::uint64_t thread_key(std::uint32_t pid, std::uint32_t tid) {
  return (static_cast<std::uint64_t>(pid) << 32) | tid;
}

}  // namespace

PerfettoWriter::PerfettoWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("cannot open perfetto output file: " + path);
  }
  std::fputs("{\"traceEvents\":[", file_);
  const struct {
    std::uint32_t pid;
    const char* name;
  } processes[] = {{kKernelPid, "kernel"},
                   {kControlPid, "control-channel"},
                   {kDataPid, "data-plane"}};
  for (const auto& p : processes) {
    comma();
    std::fprintf(file_,
                 "{\"ph\":\"M\",\"pid\":%" PRIu32
                 ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":"
                 "\"%s\"}}",
                 p.pid, p.name);
  }
}

PerfettoWriter::~PerfettoWriter() {
  close();
  if (file_ != nullptr) std::fclose(file_);
}

void PerfettoWriter::comma() {
  if (first_) {
    first_ = false;
  } else {
    std::fputc(',', file_);
  }
  std::fputc('\n', file_);
}

void PerfettoWriter::name_thread(std::uint32_t pid, std::uint32_t tid,
                                 std::string_view name) {
  auto& seen = named_threads_[thread_key(pid, tid)];
  if (seen) return;
  seen = true;
  comma();
  std::fprintf(file_,
               "{\"ph\":\"M\",\"pid\":%" PRIu32 ",\"tid\":%" PRIu32
               ",\"name\":\"thread_name\",\"args\":{\"name\":\"%.*s\"}}",
               pid, tid, static_cast<int>(name.size()), name.data());
}

std::uint32_t PerfettoWriter::track(std::uint32_t pid,
                                    const std::string& label) {
  const std::string key = std::to_string(pid) + "/" + label;
  const auto it = tracks_.find(key);
  if (it != tracks_.end()) return it->second;
  const std::uint32_t tid = ++next_tid_[pid];
  tracks_.emplace(key, tid);
  name_thread(pid, tid, label);
  return tid;
}

void PerfettoWriter::slice(std::uint32_t pid, std::uint32_t tid,
                           std::string_view category, std::string_view name,
                           sim::Time start, sim::Time dur) {
  if (closed_) return;
  if (!named_threads_.count(thread_key(pid, tid))) {
    char label[32];
    std::snprintf(label, sizeof(label), "%s %" PRIu32,
                  pid == kControlPid ? "node" : "track", tid);
    name_thread(pid, tid, label);
  }
  comma();
  std::fprintf(file_,
               "{\"ph\":\"X\",\"pid\":%" PRIu32 ",\"tid\":%" PRIu32
               ",\"cat\":\"%.*s\",\"name\":\"%.*s\",\"ts\":%s,\"dur\":%s}",
               pid, tid, static_cast<int>(category.size()), category.data(),
               static_cast<int>(name.size()), name.data(), Micros(start).buf,
               Micros(dur).buf);
}

void PerfettoWriter::counter(std::uint32_t pid, std::string_view name,
                             sim::Time at, std::uint64_t value) {
  if (closed_) return;
  comma();
  std::fprintf(file_,
               "{\"ph\":\"C\",\"pid\":%" PRIu32
               ",\"tid\":0,\"name\":\"%.*s\",\"ts\":%s,\"args\":{\"value\":"
               "%" PRIu64 "}}",
               pid, static_cast<int>(name.size()), name.data(),
               Micros(at).buf, value);
}

void PerfettoWriter::close() {
  if (closed_ || file_ == nullptr) return;
  closed_ = true;
  std::fputs("\n]}\n", file_);
  std::fflush(file_);
}

}  // namespace rica::obs
