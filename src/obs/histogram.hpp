// Log-bucketed histogram: bounded-memory latency/occupancy distributions.
//
// HDR-style layout: values below 64 get exact unit-width buckets; above
// that, each power-of-two range splits into 32 linear sub-buckets, so the
// relative quantization error is bounded by 1/32 (~3.1%) at any magnitude.
// A 1000 s delay in nanoseconds still lands under ~1200 buckets total, and
// the count vector grows lazily to the highest bucket touched — a per-flow
// histogram costs a few KB where the raw sample vector was unbounded.
//
// Determinism contract: recording is integer arithmetic only; merge() is an
// element-wise count add plus an integer sum add, so it is exact,
// order-independent, and associative — cross-trial pooling in
// harness::average() produces the same percentiles no matter how trials are
// grouped.  percentile() reports the *upper edge* of the selected bucket
// (the conservative bound: the true nearest-rank sample is <= the reported
// value, never above it); representative(v) exposes that mapping so tests
// can assert reported percentiles exactly.
//
// This header is dependency-free (no sim/net/stats includes) so any layer —
// including the kernel — can own one without a cycle.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace rica::obs {

class LogHistogram {
 public:
  /// Sub-bucket resolution: 2^5 linear slots per power-of-two range.
  static constexpr int kSubBucketBits = 5;
  static constexpr std::int64_t kSubBuckets = std::int64_t{1}
                                              << kSubBucketBits;
  /// Values below this are exact (unit-width buckets, index == value).
  static constexpr std::int64_t kLinearMax = kSubBuckets * 2;

  /// Records `count` occurrences of `value` (negatives clamp to 0).
  void record(std::int64_t value, std::uint64_t count = 1) {
    const std::size_t idx = static_cast<std::size_t>(bucket_index(value));
    if (counts_.size() <= idx) counts_.resize(idx + 1, 0);
    counts_[idx] += count;
    total_ += count;
    sum_ += (value < 0 ? 0 : value) * static_cast<std::int64_t>(count);
  }

  /// Element-wise count add: exact, commutative, associative.
  void merge(const LogHistogram& other);

  [[nodiscard]] std::uint64_t count() const { return total_; }
  /// Exact sum of the raw recorded values (not bucket representatives).
  [[nodiscard]] std::int64_t sum() const { return sum_; }
  /// Exact mean of the raw recorded values; 0 when empty.
  [[nodiscard]] double mean() const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(total_);
  }

  /// Nearest-rank percentile (q in [0, 100]) as the selected bucket's upper
  /// edge; 0 when empty.
  [[nodiscard]] double percentile(double q) const;

  void clear() {
    counts_.clear();
    total_ = 0;
    sum_ = 0;
  }

  /// The bucket `value` records into (negatives clamp to bucket 0).
  [[nodiscard]] static std::int64_t bucket_index(std::int64_t value) {
    if (value < kLinearMax) return value < 0 ? 0 : value;
    const int top = std::bit_width(static_cast<std::uint64_t>(value)) - 1;
    const std::int64_t offset =
        (value - (std::int64_t{1} << top)) >> (top - kSubBucketBits);
    return kLinearMax +
           static_cast<std::int64_t>(top - (kSubBucketBits + 1)) *
               kSubBuckets +
           offset;
  }

  /// Largest value bucket `index` holds (the value percentile() reports).
  [[nodiscard]] static std::int64_t bucket_upper(std::int64_t index) {
    if (index < kLinearMax) return index;
    const std::int64_t rel = index - kLinearMax;
    const int top = static_cast<int>(rel / kSubBuckets) + kSubBucketBits + 1;
    const std::int64_t offset = rel % kSubBuckets;
    const std::int64_t width = std::int64_t{1} << (top - kSubBucketBits);
    return (std::int64_t{1} << top) + (offset + 1) * width - 1;
  }

  /// The value a sample recorded as `value` is reported back as by
  /// percentile() — lets tests pin expected output exactly.
  [[nodiscard]] static std::int64_t representative(std::int64_t value) {
    return bucket_upper(bucket_index(value));
  }

  /// Equal when the recorded distributions match (trailing empty buckets
  /// are ignored, so `a.merge(empty)` never breaks equality).
  friend bool operator==(const LogHistogram& a, const LogHistogram& b);

 private:
  std::vector<std::uint64_t> counts_;  ///< grown lazily to the top bucket
  std::uint64_t total_ = 0;
  std::int64_t sum_ = 0;
};

}  // namespace rica::obs
