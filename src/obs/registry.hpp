// Typed metrics registry: the single place a run's scalar observability
// lives.
//
// Before this layer, every kernel/pool/table statistic was plumbed by hand
// through four files (accessor on the owning object → copy in run_scenario
// → field in MetricsSummary → fold rule in average()).  The registry
// collapses that to one registration: a layer registers a counter or a
// gauge (eagerly owned, or lazily via a sampling callback), and the harness
// snapshots the whole registry into the summary with the fold semantics
// carried alongside the value:
//
//   * kCounter — additive work (events executed, batch fires, drops); trial
//     aggregation sums.
//   * kGauge   — level / high-water readings (pending events, pool
//     occupancy, table load); trial aggregation takes the maximum.
//
// Values are doubles so one snapshot type covers both integer counters and
// fractional gauges; integer counters in the simulated ranges (< 2^53) are
// exact.  Registration order is irrelevant — snapshot() returns samples
// sorted by name, so serialized output is stable.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/histogram.hpp"

namespace rica::obs {

enum class StatKind : std::uint8_t {
  kCounter = 0,  ///< additive across trials
  kGauge = 1,    ///< max across trials
};

/// One named value captured by Registry::snapshot().
struct Sample {
  std::string name;
  StatKind kind = StatKind::kCounter;
  double value = 0.0;

  friend bool operator==(const Sample&, const Sample&) = default;
};

/// An eagerly owned monotonic counter.
class Counter {
 public:
  void add(std::uint64_t by = 1) { value_ += by; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// An eagerly owned level gauge that can also track its own high water.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class Registry {
 public:
  /// Registers an owned counter under `name` and returns it; stable address
  /// for the registry's lifetime.  Re-registering a name replaces the
  /// previous entry (last writer wins).
  Counter& counter(const std::string& name);
  /// Registers an owned gauge under `name` and returns it.
  Gauge& gauge(const std::string& name);

  /// Registers a counter whose value is read lazily at snapshot time —
  /// for statistics an existing object already tracks (e.g. the
  /// Simulator's events_executed).
  void counter_fn(const std::string& name, std::function<double()> fn);
  /// Registers a lazily read gauge.
  void gauge_fn(const std::string& name, std::function<double()> fn);

  /// Registers an owned log-bucketed histogram under `name` and returns
  /// it; stable address for the registry's lifetime.  Histograms live in
  /// their own namespace (a name may be both a scalar and a histogram) and
  /// are snapshotted separately — trial aggregation merges them exactly
  /// (see LogHistogram::merge), so cross-trial percentiles come from the
  /// pooled distribution rather than a mean of per-trial points.
  LogHistogram& histogram(const std::string& name);

  /// Copies every registered histogram (sorted by name — std::map order).
  [[nodiscard]] std::map<std::string, LogHistogram> histogram_snapshot()
      const;

  /// Reads every registered entry; result is sorted by name.
  [[nodiscard]] std::vector<Sample> snapshot() const;

  /// Reads one entry by name; 0.0 when absent.
  [[nodiscard]] double read(const std::string& name) const;

 private:
  struct Entry {
    StatKind kind = StatKind::kCounter;
    // Exactly one of the three is active per entry.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::function<double()> fn;
  };
  std::map<std::string, Entry> entries_;  // sorted: stable snapshots
  // unique_ptr keeps histogram addresses stable across registrations.
  std::map<std::string, std::unique_ptr<LogHistogram>> histograms_;
};

/// Folds a trial's samples into an accumulated map according to each
/// sample's kind (sum counters, max gauges).  Used by the multi-trial
/// harness; the map overload takes a MetricsSummary::stats snapshot.
void fold_samples(std::map<std::string, Sample>& into,
                  const std::vector<Sample>& trial);
void fold_samples(std::map<std::string, Sample>& into,
                  const std::map<std::string, Sample>& trial);

}  // namespace rica::obs
