// Always-on flight recorder: a fixed-capacity ring buffer of trace records.
//
// The JSONL sink costs a formatted write per record; the flight recorder
// costs a struct copy into a preallocated ring, cheap enough to leave on in
// long runs (`--flight-recorder[=N]`).  Every string_view reaching a trace
// record points at static storage (stage/kind literals, drop-reason and
// control-message names, protocol name() literals), so records are stored
// by value with no interning and stay valid for the run's lifetime.
//
// When something goes wrong — an anomaly watchdog fires, or the run ends —
// dump() replays the retained window oldest→newest through the shared
// fixed-key-order JSONL formatters, preceded by one header line:
//
//   {"type":"flight","t_ns":...,"capacity":...,"recorded":...,
//    "retained":...,"trigger":"exit"|"drop_spike"|...}
//
// Records, ring contents, and therefore dump bytes are a pure function of
// the deterministic trace stream: run == rerun, byte for byte.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace rica::obs {

class FlightRecorder final : public TraceSink {
 public:
  /// Default ring capacity (records), roughly a few MB resident.
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  void on_packet(const PacketTrace& rec) override { push(rec); }
  void on_route(const RouteTrace& rec) override { push(rec); }
  void on_kernel(const KernelTrace& rec) override { push(rec); }
  void on_span(const SpanTrace& rec) override { push(rec); }

  /// Writes the header line plus the retained records (oldest first) to
  /// `path`, stamping `trigger` and the dump's sim time `now`.  Throws
  /// std::runtime_error when the file cannot be opened.  The ring is left
  /// intact (a later trigger can dump again).
  void dump(const std::string& path, std::string_view trigger,
            sim::Time now) const;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Records currently retained (== min(recorded, capacity)).
  [[nodiscard]] std::size_t retained() const { return ring_.size(); }
  /// Records ever pushed (overwritten ones included).
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }

 private:
  using Record =
      std::variant<PacketTrace, RouteTrace, KernelTrace, SpanTrace>;

  void push(Record rec) {
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(rec));
    } else {
      ring_[head_] = std::move(rec);
      head_ = (head_ + 1) % capacity_;
    }
    ++recorded_;
  }

  std::size_t capacity_;
  std::size_t head_ = 0;  ///< oldest record once the ring wrapped
  std::uint64_t recorded_ = 0;
  std::vector<Record> ring_;
};

}  // namespace rica::obs
