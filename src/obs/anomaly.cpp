#include "obs/anomaly.hpp"

#include <cmath>

#include "obs/flight_recorder.hpp"

namespace rica::obs {

AnomalyMonitor::AnomalyMonitor(const AnomalyConfig& cfg,
                               AnomalySources sources, Registry& registry)
    : cfg_(cfg),
      sources_(std::move(sources)),
      drop_spike_(registry.counter("anomaly.drop_spike")),
      discovery_storm_(registry.counter("anomaly.discovery_storm")),
      stalled_flows_(registry.counter("anomaly.stalled_flows")),
      queue_backlog_(registry.counter("anomaly.queue_backlog")),
      dumps_(registry.counter("anomaly.dumps")) {}

void AnomalyMonitor::start(sim::Simulator& sim, sim::Time end) {
  window_ = sim::seconds_f(cfg_.window_s > 0.0 ? cfg_.window_s : 1.0);
  end_ = end;
  arm(sim);
}

void AnomalyMonitor::arm(sim::Simulator& sim) {
  if (sim.now() + window_ > end_) return;
  sim.after(window_, [this, &sim] {
    tick(sim);
    arm(sim);
  });
}

void AnomalyMonitor::fire(std::string_view monitor, Counter& counter,
                          sim::Time now) {
  counter.add(1);
  ++triggers_;
  if (dumped_ || recorder_ == nullptr || dump_path_.empty()) return;
  // First violation only: the onset window is what a postmortem wants, and
  // a single artifact per run keeps reruns byte-comparable.
  recorder_->dump(dump_path_, monitor, now);
  dumps_.add(1);
  dumped_ = true;
}

void AnomalyMonitor::tick(sim::Simulator& sim) {
  const sim::Time now = sim.now();
  if (sources_.dropped_total) {
    const std::uint64_t total = sources_.dropped_total();
    // total < last means the collector opened a fresh measurement epoch
    // (warmup reset); the whole new total is this window's delta.
    const std::uint64_t in_window =
        total >= last_drops_ ? total - last_drops_ : total;
    last_drops_ = total;
    const auto threshold = static_cast<std::uint64_t>(
        std::ceil(cfg_.drop_rate_per_s * cfg_.window_s));
    if (cfg_.drop_rate_per_s > 0.0 && threshold > 0 &&
        in_window >= threshold) {
      fire("drop_spike", drop_spike_, now);
    }
  }
  if (sources_.discovery_failures) {
    const std::uint64_t total = sources_.discovery_failures();
    const std::uint64_t in_window = total >= last_discovery_failures_
                                        ? total - last_discovery_failures_
                                        : total;
    last_discovery_failures_ = total;
    if (cfg_.discovery_failures > 0 && in_window >= cfg_.discovery_failures) {
      fire("discovery_storm", discovery_storm_, now);
    }
  }
  if (sources_.stalled_flows && cfg_.stall_s > 0.0) {
    const sim::Time bound = sim::seconds_f(cfg_.stall_s);
    if (now >= bound && sources_.stalled_flows(now - bound) > 0) {
      fire("stalled_flows", stalled_flows_, now);
    }
  }
  if (sources_.buffered_packets && cfg_.queue_backlog > 0 &&
      sources_.buffered_packets() >= cfg_.queue_backlog) {
    fire("queue_backlog", queue_backlog_, now);
  }
}

}  // namespace rica::obs
