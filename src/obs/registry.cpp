#include "obs/registry.hpp"

#include <algorithm>
#include <memory>
#include <utility>

namespace rica::obs {

Counter& Registry::counter(const std::string& name) {
  auto& e = entries_[name];
  e = Entry{};
  e.kind = StatKind::kCounter;
  e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name) {
  auto& e = entries_[name];
  e = Entry{};
  e.kind = StatKind::kGauge;
  e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

void Registry::counter_fn(const std::string& name, std::function<double()> fn) {
  auto& e = entries_[name];
  e = Entry{};
  e.kind = StatKind::kCounter;
  e.fn = std::move(fn);
}

void Registry::gauge_fn(const std::string& name, std::function<double()> fn) {
  auto& e = entries_[name];
  e = Entry{};
  e.kind = StatKind::kGauge;
  e.fn = std::move(fn);
}

LogHistogram& Registry::histogram(const std::string& name) {
  auto& slot = histograms_[name];
  slot = std::make_unique<LogHistogram>();
  return *slot;
}

std::map<std::string, LogHistogram> Registry::histogram_snapshot() const {
  std::map<std::string, LogHistogram> out;
  for (const auto& [name, h] : histograms_) out.emplace(name, *h);
  return out;
}

std::vector<Sample> Registry::snapshot() const {
  std::vector<Sample> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    double v = 0.0;
    if (e.counter) {
      v = static_cast<double>(e.counter->value());
    } else if (e.gauge) {
      v = e.gauge->value();
    } else if (e.fn) {
      v = e.fn();
    }
    out.push_back(Sample{name, e.kind, v});
  }
  return out;  // std::map iteration is already name-sorted
}

double Registry::read(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) return 0.0;
  const auto& e = it->second;
  if (e.counter) return static_cast<double>(e.counter->value());
  if (e.gauge) return e.gauge->value();
  if (e.fn) return e.fn();
  return 0.0;
}

namespace {
void fold_one(std::map<std::string, Sample>& into, const Sample& s) {
  auto [it, inserted] = into.try_emplace(s.name, s);
  if (inserted) return;
  if (s.kind == StatKind::kCounter) {
    it->second.value += s.value;
  } else {
    it->second.value = std::max(it->second.value, s.value);
  }
}
}  // namespace

void fold_samples(std::map<std::string, Sample>& into,
                  const std::vector<Sample>& trial) {
  for (const auto& s : trial) fold_one(into, s);
}

void fold_samples(std::map<std::string, Sample>& into,
                  const std::map<std::string, Sample>& trial) {
  for (const auto& [name, s] : trial) fold_one(into, s);
}

}  // namespace rica::obs
