// Structured event tracing: the per-run lifecycle record stream.
//
// Three record families, all stamped with *simulation* time (never wall
// clock, so an enabled trace is byte-identical across runs and machines):
//
//   * packet lifecycle — generated → enqueued → tx_start/tx_end per hop →
//     forwarded → delivered / dropped-with-reason, emitted by the node and
//     the per-link data plane;
//   * route lifecycle — discovery start/retry/failure, every control
//     transmission (RREQ/reply hops, checks, local queries), route
//     established, link break, repair, emitted by the five protocols and
//     the common-channel MAC;
//   * kernel samples — events executed / batch vs spill fires / pending
//     count, emitted by the Simulator's kernel observer at a bounded rate.
//
// A `Tracer` is the zero-cost-off switchboard: it lives inside the
// MetricsCollector (which every emitting layer already holds) and forwards
// records to an attached `TraceSink` subject to a category filter.  With no
// sink attached — the default — every emission site reduces to one pointer
// load and a predicted branch, and a run's golden stream hash is untouched.
//
// The bundled `JsonlTraceSink` writes one JSON object per line with a fixed
// key order and locale-free integer formatting, so `diff` is a valid trace
// comparator and the byte-identity determinism tests can assert equality of
// whole files.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace rica::obs {

class PerfettoWriter;

/// Record-category bitmask selected by `--trace-filter`.
enum class TraceFilter : std::uint8_t {
  kNone = 0,
  kPacket = 1,
  kRoute = 2,
  kKernel = 4,
  kAll = 7,
};

[[nodiscard]] constexpr TraceFilter operator|(TraceFilter a, TraceFilter b) {
  return static_cast<TraceFilter>(static_cast<std::uint8_t>(a) |
                                  static_cast<std::uint8_t>(b));
}
[[nodiscard]] constexpr bool has(TraceFilter mask, TraceFilter bit) {
  return (static_cast<std::uint8_t>(mask) & static_cast<std::uint8_t>(bit)) !=
         0;
}

/// Parses "packet", "route", "kernel", "all", or a comma list of them.
/// Throws std::invalid_argument (naming the known categories) on a typo.
[[nodiscard]] TraceFilter parse_trace_filter(std::string_view spec);

/// One step of a data packet's life.  `stage` is one of: generated,
/// enqueued, tx_start, tx_end, tx_fail, forwarded, delivered, dropped.
struct PacketTrace {
  std::string_view stage;
  sim::Time at{};
  std::uint32_t flow = 0;
  std::uint32_t seq = 0;
  std::uint32_t node = 0;  ///< terminal where the event happened
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::int64_t peer = -1;  ///< next hop / sender, -1 when not applicable
  std::uint16_t hops = 0;
  std::uint32_t bytes = 0;
  std::string_view detail{};  ///< drop reason / failure cause, may be empty
};

/// One step of a route's life.  `stage` is one of: discovery_start,
/// discovery_retry, discovery_failed, control_tx, control_lost,
/// established, repair_start, repaired, link_break, topology_install.
struct RouteTrace {
  std::string_view stage;
  sim::Time at{};
  std::uint32_t node = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint32_t bid = 0;
  double metric = 0.0;        ///< CSI distance / hop count, stage-dependent
  std::string_view protocol{};
  std::string_view msg{};     ///< control message type for control_* stages
};

/// One kernel observation window (see sim::KernelObserver).
struct KernelTrace {
  sim::Time at{};
  std::uint64_t events_executed = 0;
  std::uint64_t batched_fires = 0;
  std::uint64_t pending = 0;
};

/// Receives the structured record stream.  Implementations must not assume
/// wall-clock anything: a sink is part of the determinism contract.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_packet(const PacketTrace& rec) = 0;
  virtual void on_route(const RouteTrace& rec) = 0;
  virtual void on_kernel(const KernelTrace& rec) = 0;
};

/// JSONL backend: one record per line, fixed key order, integer sim-time
/// stamps (`t_ns`), no locale-dependent formatting — byte-identical across
/// runs for a fixed seed.  Throws std::runtime_error when the file cannot
/// be opened.
class JsonlTraceSink final : public TraceSink {
 public:
  explicit JsonlTraceSink(const std::string& path);
  ~JsonlTraceSink() override;
  JsonlTraceSink(const JsonlTraceSink&) = delete;
  JsonlTraceSink& operator=(const JsonlTraceSink&) = delete;

  void on_packet(const PacketTrace& rec) override;
  void on_route(const RouteTrace& rec) override;
  void on_kernel(const KernelTrace& rec) override;

  /// Flushes buffered lines to disk (called automatically on destruction).
  void flush();

 private:
  std::FILE* file_ = nullptr;
};

/// The switchboard every emitting layer talks to.  Off by default: with no
/// sink attached, the *_on() guards are a pointer load and the emission
/// bodies are never entered, so the instrumented hot paths cost one
/// predicted branch.  A PerfettoWriter can ride alongside the sink (the
/// MAC and data plane feed it duration slices directly).
class Tracer {
 public:
  /// Attaches `sink` with `filter`; pass nullptr to detach.  The sink must
  /// outlive the simulation run.
  void attach(TraceSink* sink, TraceFilter filter) {
    sink_ = sink;
    filter_ = sink ? filter : TraceFilter::kNone;
  }

  void set_perfetto(PerfettoWriter* writer) { perfetto_ = writer; }
  [[nodiscard]] PerfettoWriter* perfetto() const { return perfetto_; }

  [[nodiscard]] bool packet_on() const {
    return sink_ != nullptr && has(filter_, TraceFilter::kPacket);
  }
  [[nodiscard]] bool route_on() const {
    return sink_ != nullptr && has(filter_, TraceFilter::kRoute);
  }
  [[nodiscard]] bool kernel_on() const {
    return sink_ != nullptr && has(filter_, TraceFilter::kKernel);
  }

  void packet(const PacketTrace& rec) {
    if (packet_on()) sink_->on_packet(rec);
  }
  void route(const RouteTrace& rec) {
    if (route_on()) sink_->on_route(rec);
  }
  void kernel(const KernelTrace& rec) {
    if (kernel_on()) sink_->on_kernel(rec);
  }

 private:
  TraceSink* sink_ = nullptr;
  TraceFilter filter_ = TraceFilter::kNone;
  PerfettoWriter* perfetto_ = nullptr;
};

/// Identity of a control message for route-lifecycle records: the payload's
/// type name plus the (src, dst, bid) triple where the type carries one
/// (0 where it does not, e.g. beacons).
struct ControlInfo {
  std::string_view name;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint32_t bid = 0;
};
[[nodiscard]] ControlInfo control_info(const net::ControlPayload& payload);

}  // namespace rica::obs
