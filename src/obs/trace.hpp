// Structured event tracing: the per-run lifecycle record stream.
//
// Four record families, all stamped with *simulation* time (never wall
// clock, so an enabled trace is byte-identical across runs and machines):
//
//   * packet lifecycle — generated → enqueued → tx_start/tx_end per hop →
//     forwarded → delivered / dropped-with-reason, emitted by the node and
//     the per-link data plane;
//   * route lifecycle — discovery start/retry/failure, every control
//     transmission (RREQ/reply hops, checks, local queries), route
//     established, link break, repair, emitted by the five protocols and
//     the common-channel MAC;
//   * kernel samples — events executed / batch vs spill fires / pending
//     count, emitted by the Simulator's kernel observer at a bounded rate;
//   * causal spans — derived intervals with trace/span/parent ids that
//     decompose a packet's end-to-end delay into discovery-wait, queue,
//     backoff, retry, and airtime components (see obs/span.hpp).
//
// A `Tracer` is the zero-cost-off switchboard: it lives inside the
// MetricsCollector (which every emitting layer already holds) and forwards
// records to an attached `TraceSink` subject to a category filter.  A
// second slot carries the always-on flight recorder (obs/flight_recorder.hpp)
// with its own filter, and a `SpanBook` can tap the packet/route stream to
// derive span records.  With nothing attached — the default — every
// emission site reduces to a few pointer loads and a predicted branch, and
// a run's golden stream hash is untouched either way.
//
// The bundled `JsonlTraceSink` writes one JSON object per line with a fixed
// key order and locale-free integer formatting, so `diff` is a valid trace
// comparator and the byte-identity determinism tests can assert equality of
// whole files.  The per-record formatters are exposed (jsonl_write) so the
// flight recorder's dump emits byte-identical lines.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace rica::obs {

class PerfettoWriter;
class SpanBook;

/// Record-category bitmask selected by `--trace-filter`.
enum class TraceFilter : std::uint8_t {
  kNone = 0,
  kPacket = 1,
  kRoute = 2,
  kKernel = 4,
  kSpan = 8,
  kAll = 15,
};

[[nodiscard]] constexpr TraceFilter operator|(TraceFilter a, TraceFilter b) {
  return static_cast<TraceFilter>(static_cast<std::uint8_t>(a) |
                                  static_cast<std::uint8_t>(b));
}
[[nodiscard]] constexpr bool has(TraceFilter mask, TraceFilter bit) {
  return (static_cast<std::uint8_t>(mask) & static_cast<std::uint8_t>(bit)) !=
         0;
}

/// Parses "packet", "route", "kernel", "span", "all", or a comma list of
/// them.  Throws std::invalid_argument (naming the known categories) on a
/// typo.
[[nodiscard]] TraceFilter parse_trace_filter(std::string_view spec);

/// One step of a data packet's life.  `stage` is one of: generated,
/// enqueued, tx_start, tx_end, tx_fail, forwarded, delivered, dropped.
struct PacketTrace {
  std::string_view stage;
  sim::Time at{};
  std::uint32_t flow = 0;
  std::uint32_t seq = 0;
  std::uint32_t node = 0;  ///< terminal where the event happened
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::int64_t peer = -1;  ///< next hop / sender, -1 when not applicable
  std::uint16_t hops = 0;
  std::uint32_t bytes = 0;
  std::string_view detail{};  ///< drop reason / failure cause, may be empty
};

/// One step of a route's life.  `stage` is one of: discovery_start,
/// discovery_retry, discovery_failed, control_tx, control_lost,
/// established, repair_start, repaired, link_break, topology_install.
struct RouteTrace {
  std::string_view stage;
  sim::Time at{};
  std::uint32_t node = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint32_t bid = 0;
  double metric = 0.0;        ///< CSI distance / hop count, stage-dependent
  std::string_view protocol{};
  std::string_view msg{};     ///< control message type for control_* stages
  /// Frame bytes on the air for control_tx / control_lost (per-discovery
  /// control-byte attribution joins on (src, dst, bid)); 0 elsewhere.
  std::uint32_t bytes = 0;
};

/// One kernel observation window (see sim::KernelObserver).
struct KernelTrace {
  sim::Time at{};
  std::uint64_t events_executed = 0;
  std::uint64_t batched_fires = 0;
  std::uint64_t pending = 0;
};

/// One causal interval, emitted when it closes (so `t_ns` stays monotone;
/// a parent id may reference a span emitted later).  `kind` is one of:
/// packet (the root, spanning generation → delivery/drop), route_wait,
/// queue, backoff, retry, airtime (children of a packet root), discovery,
/// repair (independent roots keyed by the requesting node).  Ids are
/// allocated in deterministic commit order; 0 is never a valid span id and
/// `parent == 0` marks a root.  For packet-family spans `trace` is the root
/// span's id; root spans have `span == trace`.
struct SpanTrace {
  std::string_view kind;
  sim::Time at{};  ///< close time (== start + dur)
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
  std::uint64_t trace = 0;
  std::uint32_t flow = 0;
  std::uint32_t seq = 0;
  std::uint32_t node = 0;  ///< terminal the interval was spent at
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  sim::Time start{};
  sim::Time dur{};
  std::string_view detail{};  ///< outcome / wait cause, may be empty
};

/// Receives the structured record stream.  Implementations must not assume
/// wall-clock anything: a sink is part of the determinism contract.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_packet(const PacketTrace& rec) = 0;
  virtual void on_route(const RouteTrace& rec) = 0;
  virtual void on_kernel(const KernelTrace& rec) = 0;
  /// Default no-op so pre-span sinks keep compiling unchanged.
  virtual void on_span(const SpanTrace& rec) { (void)rec; }
};

/// Fixed-key-order JSONL formatters shared by JsonlTraceSink and the
/// flight-recorder dump: one record, one line, locale-free.
void jsonl_write(std::FILE* f, const PacketTrace& rec);
void jsonl_write(std::FILE* f, const RouteTrace& rec);
void jsonl_write(std::FILE* f, const KernelTrace& rec);
void jsonl_write(std::FILE* f, const SpanTrace& rec);

/// JSONL backend: one record per line, fixed key order, integer sim-time
/// stamps (`t_ns`), no locale-dependent formatting — byte-identical across
/// runs for a fixed seed.  Throws std::runtime_error when the file cannot
/// be opened.
class JsonlTraceSink final : public TraceSink {
 public:
  explicit JsonlTraceSink(const std::string& path);
  ~JsonlTraceSink() override;
  JsonlTraceSink(const JsonlTraceSink&) = delete;
  JsonlTraceSink& operator=(const JsonlTraceSink&) = delete;

  void on_packet(const PacketTrace& rec) override;
  void on_route(const RouteTrace& rec) override;
  void on_kernel(const KernelTrace& rec) override;
  void on_span(const SpanTrace& rec) override;

  /// Flushes buffered lines to disk (called automatically on destruction).
  void flush();

 private:
  std::FILE* file_ = nullptr;
};

/// The switchboard every emitting layer talks to.  Off by default: with no
/// sink, recorder, or span book attached, the *_on() guards are three
/// pointer loads and the emission bodies are never entered, so the
/// instrumented hot paths cost a few predicted branches.  A PerfettoWriter
/// can ride alongside the sinks (the MAC and data plane feed it duration
/// slices directly).
class Tracer {
 public:
  /// Attaches `sink` with `filter`; pass nullptr to detach.  The sink must
  /// outlive the simulation run.
  void attach(TraceSink* sink, TraceFilter filter) {
    sink_ = sink;
    filter_ = sink ? filter : TraceFilter::kNone;
  }

  /// Attaches the flight-recorder slot (any TraceSink) with its own
  /// filter; pass nullptr to detach.  Records are fed to both slots
  /// independently, so the recorder can run always-on next to (or without)
  /// a primary JSONL sink.
  void attach_recorder(TraceSink* recorder, TraceFilter filter) {
    recorder_ = recorder;
    recorder_filter_ = recorder ? filter : TraceFilter::kNone;
  }

  /// Installs the span derivation tap (see obs/span.hpp); nullptr detaches.
  /// While installed, packet/route emission stays on (the book consumes the
  /// raw stream) and derived span records fan out to any slot whose filter
  /// has kSpan.
  void set_span_book(SpanBook* book) { span_book_ = book; }
  [[nodiscard]] SpanBook* span_book() const { return span_book_; }

  void set_perfetto(PerfettoWriter* writer) { perfetto_ = writer; }
  [[nodiscard]] PerfettoWriter* perfetto() const { return perfetto_; }

  [[nodiscard]] bool packet_on() const {
    return span_book_ != nullptr || want(TraceFilter::kPacket);
  }
  [[nodiscard]] bool route_on() const {
    return span_book_ != nullptr || want(TraceFilter::kRoute);
  }
  [[nodiscard]] bool kernel_on() const { return want(TraceFilter::kKernel); }
  [[nodiscard]] bool span_on() const {
    return span_book_ != nullptr && (has(filter_, TraceFilter::kSpan) ||
                                     has(recorder_filter_, TraceFilter::kSpan));
  }

  // Dispatch bodies live in trace.cpp (they feed the forward-declared
  // SpanBook); the inline guards above keep the disabled path free.
  void packet(const PacketTrace& rec);
  void route(const RouteTrace& rec);
  void kernel(const KernelTrace& rec);
  /// Emits a derived span record to every slot whose filter has kSpan
  /// (called by SpanBook, not by instrumentation sites).
  void span(const SpanTrace& rec);

 private:
  [[nodiscard]] bool want(TraceFilter bit) const {
    return (sink_ != nullptr && has(filter_, bit)) ||
           (recorder_ != nullptr && has(recorder_filter_, bit));
  }

  TraceSink* sink_ = nullptr;
  TraceFilter filter_ = TraceFilter::kNone;
  TraceSink* recorder_ = nullptr;
  TraceFilter recorder_filter_ = TraceFilter::kNone;
  SpanBook* span_book_ = nullptr;
  PerfettoWriter* perfetto_ = nullptr;
};

/// Identity of a control message for route-lifecycle records: the payload's
/// type name plus the (src, dst, bid) triple where the type carries one
/// (0 where it does not, e.g. beacons).
struct ControlInfo {
  std::string_view name;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint32_t bid = 0;
};
[[nodiscard]] ControlInfo control_info(const net::ControlPayload& payload);

}  // namespace rica::obs
