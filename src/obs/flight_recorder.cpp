#include "obs/flight_recorder.hpp"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

namespace rica::obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void FlightRecorder::dump(const std::string& path, std::string_view trigger,
                          sim::Time now) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("cannot open flight-recorder dump file: " + path);
  }
  std::fprintf(f,
               "{\"type\":\"flight\",\"t_ns\":%" PRId64
               ",\"capacity\":%zu,\"recorded\":%" PRIu64
               ",\"retained\":%zu,\"trigger\":\"%.*s\"}\n",
               now.nanos(), capacity_, recorded_, ring_.size(),
               static_cast<int>(trigger.size()), trigger.data());
  const auto write = [f](const auto& rec) { jsonl_write(f, rec); };
  // Oldest → newest: once wrapped, the oldest record sits at head_.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const std::size_t idx =
        ring_.size() < capacity_ ? i : (head_ + i) % capacity_;
    std::visit(write, ring_[idx]);
  }
  std::fclose(f);
}

}  // namespace rica::obs
