// Chrome trace_event / Perfetto JSON export of a run's kernel and channel
// activity, openable in chrome://tracing or ui.perfetto.dev.
//
// Track layout (chosen so no track ever holds overlapping "X" slices):
//
//   pid 0 "kernel"          — counter tracks only: pending events and
//                             per-window fired/batched counts from the
//                             Simulator's KernelObserver.
//   pid 1 "control-channel" — one thread per terminal; the common channel
//                             is half-duplex per node, so a node's control
//                             transmissions never overlap.
//   pid 2 "data-plane"      — one thread per directed link; each
//                             LinkTransmitter is a serial server, so a
//                             link's data transmissions never overlap.
//
// Timestamps come from integer sim-time nanoseconds formatted as fixed
// ".3f" microseconds by integer arithmetic — no floating point, no locale,
// so the JSON is byte-identical across runs for a fixed seed.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace rica::obs {

class PerfettoWriter {
 public:
  /// Process ids for the three fixed tracks.
  static constexpr std::uint32_t kKernelPid = 0;
  static constexpr std::uint32_t kControlPid = 1;
  static constexpr std::uint32_t kDataPid = 2;

  /// Opens `path` and writes the JSON preamble plus process metadata.
  /// Throws std::runtime_error when the file cannot be opened.
  explicit PerfettoWriter(const std::string& path);
  ~PerfettoWriter();
  PerfettoWriter(const PerfettoWriter&) = delete;
  PerfettoWriter& operator=(const PerfettoWriter&) = delete;

  /// A complete ("X") duration slice on (pid, tid) from `start` for `dur`.
  /// `category` groups slices in the UI (e.g. the protocol name); `name` is
  /// the slice label.  Emits a thread_name metadata record the first time a
  /// (pid, tid) pair appears.
  void slice(std::uint32_t pid, std::uint32_t tid, std::string_view category,
             std::string_view name, sim::Time start, sim::Time dur);

  /// A counter ("C") sample named `name` on `pid` at `at`.
  void counter(std::uint32_t pid, std::string_view name, sim::Time at,
               std::uint64_t value);

  /// Names the thread track (pid, tid) in the UI; idempotent.
  void name_thread(std::uint32_t pid, std::uint32_t tid,
                   std::string_view name);

  /// Returns a stable tid for `label` on `pid`, allocating the next free
  /// one (and emitting its thread_name) on first use.  Track numbering is
  /// allocation-ordered, which is deterministic because track creation
  /// follows the simulation's own event order.
  std::uint32_t track(std::uint32_t pid, const std::string& label);

  /// Writes the closing bracket and flushes; further emissions are invalid.
  /// Called automatically on destruction.
  void close();

 private:
  void comma();

  std::FILE* file_ = nullptr;
  bool first_ = true;
  bool closed_ = false;
  std::map<std::uint64_t, bool> named_threads_;  ///< (pid<<32|tid) seen
  std::map<std::string, std::uint32_t> tracks_;  ///< "pid/label" -> tid
  std::map<std::uint32_t, std::uint32_t> next_tid_;  ///< per-pid allocator
};

}  // namespace rica::obs
