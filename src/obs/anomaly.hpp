// Anomaly watchdogs: windowed health monitors that turn "the run degraded
// at t=380s" from a postmortem into an artifact.
//
// An AnomalyMonitor schedules a real simulation event every window (like
// SeriesSampler it moves events_executed but only *reads* network state, so
// the metrics stream hash — and every golden fingerprint — is untouched)
// and evaluates four monitors against caller-supplied sources:
//
//   * drop_spike       — drops within the window >= drop_rate_per_s * window
//   * discovery_storm  — discovery failures within the window >= threshold
//   * stalled_flows    — a flow holds undelivered packets and saw no
//                        delivery for stall_s
//   * queue_backlog    — instantaneous buffered packets across all link
//                        queues >= threshold
//
// Each trigger bumps a registry counter (anomaly.drop_spike, ...); the
// counters read as "windows in violation", so a sustained stall is visible
// as a count, not a single blip.  The *first* trigger also dumps the flight
// recorder (when one is attached) with the monitor's name as the dump
// trigger — capturing the onset, which is the window a postmortem wants.
// Thresholds, sources, and sim-time ticks are all deterministic, so
// triggers (and dump bytes) are identical across reruns.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "obs/registry.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace rica::obs {

class FlightRecorder;

/// Watchdog thresholds; a non-positive threshold disables its monitor.
struct AnomalyConfig {
  double window_s = 1.0;            ///< evaluation period
  double drop_rate_per_s = 50.0;    ///< drop_spike: drops/s within a window
  std::uint64_t discovery_failures = 8;  ///< discovery_storm: per window
  double stall_s = 5.0;             ///< stalled_flows: silence bound
  std::uint64_t queue_backlog = 256;  ///< queue_backlog: buffered packets
};

/// Read-only state probes, wired by the harness.
struct AnomalySources {
  std::function<std::uint64_t()> dropped_total;       ///< cumulative
  std::function<std::uint64_t()> discovery_failures;  ///< cumulative
  std::function<std::uint64_t()> buffered_packets;    ///< instantaneous
  /// Flows holding undelivered packets whose last delivery precedes the
  /// given cutoff time.
  std::function<std::uint64_t(sim::Time cutoff)> stalled_flows;
};

class AnomalyMonitor {
 public:
  AnomalyMonitor(const AnomalyConfig& cfg, AnomalySources sources,
                 Registry& registry);
  AnomalyMonitor(const AnomalyMonitor&) = delete;
  AnomalyMonitor& operator=(const AnomalyMonitor&) = delete;

  /// Attaches the flight recorder the first trigger dumps; `dump_path`
  /// empty disables dumping (counters still fire).
  void set_recorder(const FlightRecorder* recorder, std::string dump_path) {
    recorder_ = recorder;
    dump_path_ = std::move(dump_path);
  }

  /// Arms the periodic evaluation event (call before the run; ticks every
  /// window_s until `end`).
  void start(sim::Simulator& sim, sim::Time end);

  /// Monitor violations so far (sum over all four monitors).
  [[nodiscard]] std::uint64_t triggers() const { return triggers_; }
  /// True once the first trigger has dumped the flight recorder.
  [[nodiscard]] bool dumped() const { return dumped_; }

 private:
  void arm(sim::Simulator& sim);
  void tick(sim::Simulator& sim);
  void fire(std::string_view monitor, Counter& counter, sim::Time now);

  AnomalyConfig cfg_;
  AnomalySources sources_;
  Counter& drop_spike_;
  Counter& discovery_storm_;
  Counter& stalled_flows_;
  Counter& queue_backlog_;
  Counter& dumps_;
  const FlightRecorder* recorder_ = nullptr;
  std::string dump_path_;
  sim::Time window_{};
  sim::Time end_{};
  std::uint64_t last_drops_ = 0;
  std::uint64_t last_discovery_failures_ = 0;
  std::uint64_t triggers_ = 0;
  bool dumped_ = false;
};

}  // namespace rica::obs
