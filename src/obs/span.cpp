#include "obs/span.hpp"

namespace rica::obs {

namespace {

/// Stage names arrive as string_views over static literals; comparisons are
/// a length check plus a short memcmp.
constexpr std::string_view kGenerated = "generated";
constexpr std::string_view kEnqueued = "enqueued";
constexpr std::string_view kTxStart = "tx_start";
constexpr std::string_view kTxEnd = "tx_end";
constexpr std::string_view kTxFail = "tx_fail";
constexpr std::string_view kDelivered = "delivered";
constexpr std::string_view kDropped = "dropped";

}  // namespace

void SpanBook::emit(std::string_view kind, const PacketState& st,
                    sim::Time start, sim::Time end, std::string_view detail) {
  SpanTrace rec;
  rec.kind = kind;
  rec.at = end;
  rec.span = next_id_++;
  rec.parent = st.root;
  rec.trace = st.root;
  rec.flow = st.flow;
  rec.seq = st.seq;
  rec.node = st.node;
  rec.src = st.src;
  rec.dst = st.dst;
  rec.start = start;
  rec.dur = end - start;
  rec.detail = detail;
  ++emitted_;
  tracer_.span(rec);
}

void SpanBook::emit_root(const PacketState& st, sim::Time end,
                         std::string_view detail) {
  SpanTrace rec;
  rec.kind = "packet";
  rec.at = end;
  rec.span = st.root;
  rec.parent = 0;
  rec.trace = st.root;
  rec.flow = st.flow;
  rec.seq = st.seq;
  rec.node = st.node;
  rec.src = st.src;
  rec.dst = st.dst;
  rec.start = st.root_start;
  rec.dur = end - st.root_start;
  rec.detail = detail;
  ++emitted_;
  tracer_.span(rec);
}

void SpanBook::close_phase(PacketState& st, sim::Time at,
                           std::string_view cause, bool air_failed) {
  const sim::Time start = st.phase_start;
  if (at == start) return;  // zero-length: skipping keeps the sum exact
  switch (st.phase) {
    case Phase::kHold: {
      // What was the protocol deciding during this hold?  An episode open
      // now — or one that *closed* inside the hold window (established
      // routes flush their pending packets after the episode record) —
      // names the wait; otherwise it was a plain forwarding decision.
      const std::uint64_t key = episode_key(st.node, st.dst);
      std::string_view detail = "hold";
      const auto de = discovery_end_.find(key);
      const auto re = repair_end_.find(key);
      if (discoveries_.count(key) != 0 ||
          (de != discovery_end_.end() && de->second >= start)) {
        detail = "discovery";
      } else if (repairs_.count(key) != 0 ||
                 (re != repair_end_.end() && re->second >= start)) {
        detail = "repair";
      }
      emit("route_wait", st, start, at, detail);
      break;
    }
    case Phase::kQueue:
      emit("queue", st, start, at, cause);
      break;
    case Phase::kBackoff:
      emit("backoff", st, start, at, cause);
      break;
    case Phase::kAir:
      // A completed transmission is airtime; an interrupted one spent the
      // air but bought no progress, so it lands in the retry component.
      emit(air_failed ? "retry" : "airtime", st, start, at, cause);
      break;
  }
}

void SpanBook::on_packet(const PacketTrace& rec) {
  const std::uint64_t key = packet_key(rec.flow, rec.seq);
  if (rec.stage == kGenerated) {
    PacketState st;
    st.root = next_id_++;
    st.root_start = rec.at;
    st.phase = Phase::kHold;
    st.phase_start = rec.at;
    st.flow = rec.flow;
    st.seq = rec.seq;
    st.node = rec.node;
    st.src = rec.src;
    st.dst = rec.dst;
    packets_[key] = st;
    return;
  }
  const auto it = packets_.find(key);
  if (it == packets_.end()) return;  // book attached mid-flight
  PacketState& st = it->second;
  if (rec.stage == kEnqueued) {
    close_phase(st, rec.at, st.phase == Phase::kHold ? std::string_view{}
                                                     : "reroute");
    open_phase(st, Phase::kQueue, rec.at, rec.node);
  } else if (rec.stage == kTxStart) {
    close_phase(st, rec.at, {});
    open_phase(st, Phase::kAir, rec.at, rec.node);
  } else if (rec.stage == kTxEnd) {
    close_phase(st, rec.at, {});
    // The packet now sits at the receiver awaiting its routing decision.
    open_phase(st, Phase::kHold, rec.at, static_cast<std::uint32_t>(rec.peer));
  } else if (rec.stage == kTxFail) {
    close_phase(st, rec.at, rec.detail, /*air_failed=*/true);
    open_phase(st, Phase::kBackoff, rec.at, rec.node);
  } else if (rec.stage == kDelivered) {
    close_phase(st, rec.at, {});
    st.node = rec.node;
    emit_root(st, rec.at, "delivered");
    packets_.erase(it);
  } else if (rec.stage == kDropped) {
    close_phase(st, rec.at, {});
    st.node = rec.node;
    emit_root(st, rec.at, rec.detail);
    packets_.erase(it);
  } else {
    // forwarded: the receiver took ownership; the hold phase carries on.
    st.node = rec.node;
  }
}

void SpanBook::close_episode(std::map<std::uint64_t, Episode>& book,
                             std::string_view kind, std::uint64_t key,
                             std::uint32_t node, sim::Time at,
                             std::string_view detail) {
  const auto it = book.find(key);
  if (it == book.end()) return;  // e.g. RICA's switch-over "repaired"
  const Episode ep = it->second;
  book.erase(it);
  (&book == &discoveries_ ? discovery_end_ : repair_end_)[key] = at;
  SpanTrace rec;
  rec.kind = kind;
  rec.at = at;
  rec.span = ep.span;
  rec.parent = 0;
  rec.trace = ep.span;
  rec.node = node;
  rec.src = ep.src;
  rec.dst = ep.dst;
  rec.start = ep.start;
  rec.dur = at - ep.start;
  rec.detail = detail;
  ++emitted_;
  tracer_.span(rec);
}

void SpanBook::on_route(const RouteTrace& rec) {
  const std::uint64_t key = episode_key(rec.node, rec.dst);
  if (rec.stage == "discovery_start") {
    // Retries ride inside the original episode; only the first start opens.
    const auto [it, inserted] = discoveries_.try_emplace(key);
    if (!inserted) return;
    it->second = Episode{next_id_++, rec.at, rec.src, rec.dst};
  } else if (rec.stage == "established") {
    close_episode(discoveries_, "discovery", key, rec.node, rec.at,
                  "established");
  } else if (rec.stage == "discovery_failed") {
    close_episode(discoveries_, "discovery", key, rec.node, rec.at, "failed");
  } else if (rec.stage == "repair_start") {
    const auto [it, inserted] = repairs_.try_emplace(key);
    if (!inserted) return;
    it->second = Episode{next_id_++, rec.at, rec.src, rec.dst};
  } else if (rec.stage == "repaired") {
    close_episode(repairs_, "repair", key, rec.node, rec.at, "repaired");
  }
}

void SpanBook::finish(sim::Time now) {
  for (auto& [key, st] : packets_) {
    (void)key;
    close_phase(st, now, {});
    emit_root(st, now, "in_flight");
  }
  packets_.clear();
  for (const auto& [key, ep] : discoveries_) {
    SpanTrace rec;
    rec.kind = "discovery";
    rec.at = now;
    rec.span = ep.span;
    rec.trace = ep.span;
    rec.node = static_cast<std::uint32_t>(key >> 32);
    rec.src = ep.src;
    rec.dst = ep.dst;
    rec.start = ep.start;
    rec.dur = now - ep.start;
    rec.detail = "in_flight";
    ++emitted_;
    tracer_.span(rec);
  }
  discoveries_.clear();
  for (const auto& [key, ep] : repairs_) {
    SpanTrace rec;
    rec.kind = "repair";
    rec.at = now;
    rec.span = ep.span;
    rec.trace = ep.span;
    rec.node = static_cast<std::uint32_t>(key >> 32);
    rec.src = ep.src;
    rec.dst = ep.dst;
    rec.start = ep.start;
    rec.dur = now - ep.start;
    rec.detail = "in_flight";
    ++emitted_;
    tracer_.span(rec);
  }
  repairs_.clear();
}

}  // namespace rica::obs
