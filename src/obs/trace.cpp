#include "obs/trace.hpp"

#include <cassert>
#include <cinttypes>
#include <stdexcept>
#include <string>

#include "obs/span.hpp"

namespace rica::obs {

namespace {

/// All strings reaching the JSONL writer are internal identifiers (stage
/// names, protocol names, drop reasons) — no quotes/backslashes/control
/// characters — so they embed directly.  The debug assert pins that
/// assumption at every emission site.
void check_bare(std::string_view s) {
  for (const char c : s) {
    (void)c;
    assert(c >= 0x20 && c != '"' && c != '\\' &&
           "trace strings must be bare identifiers");
  }
}

}  // namespace

TraceFilter parse_trace_filter(std::string_view spec) {
  auto mask = TraceFilter::kNone;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const auto comma = spec.find(',', pos);
    const auto token = spec.substr(
        pos, comma == std::string_view::npos ? spec.size() - pos : comma - pos);
    if (token == "packet") {
      mask = mask | TraceFilter::kPacket;
    } else if (token == "route") {
      mask = mask | TraceFilter::kRoute;
    } else if (token == "kernel") {
      mask = mask | TraceFilter::kKernel;
    } else if (token == "span") {
      mask = mask | TraceFilter::kSpan;
    } else if (token == "all") {
      mask = mask | TraceFilter::kAll;
    } else {
      throw std::invalid_argument(
          "unknown trace filter '" + std::string(token) +
          "' (expected packet, route, kernel, span, all, or a comma list)");
    }
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return mask;
}

void jsonl_write(std::FILE* f, const PacketTrace& rec) {
  check_bare(rec.stage);
  check_bare(rec.detail);
  std::fprintf(
      f,
      "{\"type\":\"packet\",\"stage\":\"%.*s\",\"t_ns\":%" PRId64
      ",\"flow\":%" PRIu32 ",\"seq\":%" PRIu32 ",\"node\":%" PRIu32
      ",\"src\":%" PRIu32 ",\"dst\":%" PRIu32 ",\"peer\":%" PRId64
      ",\"hops\":%u,\"bytes\":%" PRIu32 ",\"detail\":\"%.*s\"}\n",
      static_cast<int>(rec.stage.size()), rec.stage.data(), rec.at.nanos(),
      rec.flow, rec.seq, rec.node, rec.src, rec.dst, rec.peer,
      static_cast<unsigned>(rec.hops), rec.bytes,
      static_cast<int>(rec.detail.size()), rec.detail.data());
}

void jsonl_write(std::FILE* f, const RouteTrace& rec) {
  check_bare(rec.stage);
  check_bare(rec.protocol);
  check_bare(rec.msg);
  std::fprintf(
      f,
      "{\"type\":\"route\",\"stage\":\"%.*s\",\"t_ns\":%" PRId64
      ",\"node\":%" PRIu32 ",\"src\":%" PRIu32 ",\"dst\":%" PRIu32
      ",\"bid\":%" PRIu32
      ",\"metric\":%.6f,\"protocol\":\"%.*s\",\"msg\":\"%.*s\",\"bytes\":%"
      PRIu32 "}\n",
      static_cast<int>(rec.stage.size()), rec.stage.data(), rec.at.nanos(),
      rec.node, rec.src, rec.dst, rec.bid, rec.metric,
      static_cast<int>(rec.protocol.size()), rec.protocol.data(),
      static_cast<int>(rec.msg.size()), rec.msg.data(), rec.bytes);
}

void jsonl_write(std::FILE* f, const KernelTrace& rec) {
  std::fprintf(f,
               "{\"type\":\"kernel\",\"t_ns\":%" PRId64
               ",\"events_executed\":%" PRIu64 ",\"batched_fires\":%" PRIu64
               ",\"pending\":%" PRIu64 "}\n",
               rec.at.nanos(), rec.events_executed, rec.batched_fires,
               rec.pending);
}

void jsonl_write(std::FILE* f, const SpanTrace& rec) {
  check_bare(rec.kind);
  check_bare(rec.detail);
  std::fprintf(
      f,
      "{\"type\":\"span\",\"kind\":\"%.*s\",\"t_ns\":%" PRId64
      ",\"span\":%" PRIu64 ",\"parent\":%" PRIu64 ",\"trace\":%" PRIu64
      ",\"flow\":%" PRIu32 ",\"seq\":%" PRIu32 ",\"node\":%" PRIu32
      ",\"src\":%" PRIu32 ",\"dst\":%" PRIu32 ",\"start_ns\":%" PRId64
      ",\"dur_ns\":%" PRId64 ",\"detail\":\"%.*s\"}\n",
      static_cast<int>(rec.kind.size()), rec.kind.data(), rec.at.nanos(),
      rec.span, rec.parent, rec.trace, rec.flow, rec.seq, rec.node, rec.src,
      rec.dst, rec.start.nanos(), rec.dur.nanos(),
      static_cast<int>(rec.detail.size()), rec.detail.data());
}

JsonlTraceSink::JsonlTraceSink(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("cannot open trace output file: " + path);
  }
}

JsonlTraceSink::~JsonlTraceSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlTraceSink::flush() {
  if (file_ != nullptr) std::fflush(file_);
}

void JsonlTraceSink::on_packet(const PacketTrace& rec) {
  jsonl_write(file_, rec);
}

void JsonlTraceSink::on_route(const RouteTrace& rec) {
  jsonl_write(file_, rec);
}

void JsonlTraceSink::on_kernel(const KernelTrace& rec) {
  jsonl_write(file_, rec);
}

void JsonlTraceSink::on_span(const SpanTrace& rec) { jsonl_write(file_, rec); }

// The span book taps the raw stream first (it may emit derived spans at
// this same instant, and those must precede any later-timestamped records
// in the sinks), then the two sink slots receive the record per their own
// filters.
void Tracer::packet(const PacketTrace& rec) {
  if (span_book_ != nullptr) span_book_->on_packet(rec);
  if (sink_ != nullptr && has(filter_, TraceFilter::kPacket)) {
    sink_->on_packet(rec);
  }
  if (recorder_ != nullptr && has(recorder_filter_, TraceFilter::kPacket)) {
    recorder_->on_packet(rec);
  }
}

void Tracer::route(const RouteTrace& rec) {
  if (span_book_ != nullptr) span_book_->on_route(rec);
  if (sink_ != nullptr && has(filter_, TraceFilter::kRoute)) {
    sink_->on_route(rec);
  }
  if (recorder_ != nullptr && has(recorder_filter_, TraceFilter::kRoute)) {
    recorder_->on_route(rec);
  }
}

void Tracer::kernel(const KernelTrace& rec) {
  if (sink_ != nullptr && has(filter_, TraceFilter::kKernel)) {
    sink_->on_kernel(rec);
  }
  if (recorder_ != nullptr && has(recorder_filter_, TraceFilter::kKernel)) {
    recorder_->on_kernel(rec);
  }
}

void Tracer::span(const SpanTrace& rec) {
  if (sink_ != nullptr && has(filter_, TraceFilter::kSpan)) {
    sink_->on_span(rec);
  }
  if (recorder_ != nullptr && has(recorder_filter_, TraceFilter::kSpan)) {
    recorder_->on_span(rec);
  }
}

ControlInfo control_info(const net::ControlPayload& payload) {
  struct Visitor {
    ControlInfo operator()(const net::RreqMsg& m) const {
      return {"rreq", m.src, m.dst, m.bid};
    }
    ControlInfo operator()(const net::RrepMsg& m) const {
      return {"rrep", m.src, m.dst, m.bid};
    }
    ControlInfo operator()(const net::CsiCheckMsg& m) const {
      return {"csi_check", m.src, m.dst, m.bid};
    }
    ControlInfo operator()(const net::RupdMsg& m) const {
      return {"rupd", m.src, m.dst, 0};
    }
    ControlInfo operator()(const net::ReerMsg& m) const {
      return {"reer", m.src, m.dst, 0};
    }
    ControlInfo operator()(const net::BgcaLqMsg& m) const {
      return {"bgca_lq", m.src, m.dst, m.bid};
    }
    ControlInfo operator()(const net::BgcaLqReplyMsg& m) const {
      return {"bgca_lq_reply", m.src, m.dst, m.bid};
    }
    ControlInfo operator()(const net::AbrBeaconMsg& m) const {
      return {"abr_beacon", m.origin, 0, 0};
    }
    ControlInfo operator()(const net::AbrBqMsg& m) const {
      return {"abr_bq", m.src, m.dst, m.bid};
    }
    ControlInfo operator()(const net::AbrReplyMsg& m) const {
      return {"abr_reply", m.src, m.dst, m.bid};
    }
    ControlInfo operator()(const net::AbrLqMsg& m) const {
      return {"abr_lq", m.src, m.dst, m.bid};
    }
    ControlInfo operator()(const net::AbrLqReplyMsg& m) const {
      return {"abr_lq_reply", m.src, m.dst, m.bid};
    }
    ControlInfo operator()(const net::AbrRnMsg& m) const {
      return {"abr_rn", m.src, m.dst, 0};
    }
    ControlInfo operator()(const net::AodvRreqMsg& m) const {
      return {"aodv_rreq", m.src, m.dst, m.bid};
    }
    ControlInfo operator()(const net::AodvRrepMsg& m) const {
      return {"aodv_rrep", m.src, m.dst, m.bid};
    }
    ControlInfo operator()(const net::AodvRerrMsg& m) const {
      return {"aodv_rerr", m.src, m.dst, 0};
    }
    ControlInfo operator()(const net::LsuMsg& m) const {
      return {"lsu", m.origin, 0, m.seq};
    }
  };
  return std::visit(Visitor{}, payload);
}

}  // namespace rica::obs
