#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace rica::obs {

void LogHistogram::merge(const LogHistogram& other) {
  if (counts_.size() < other.counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  sum_ += other.sum_;
}

double LogHistogram::percentile(double q) const {
  if (total_ == 0) return 0.0;
  const double want = std::ceil(q / 100.0 * static_cast<double>(total_));
  const auto rank = static_cast<std::uint64_t>(
      std::clamp(want, 1.0, static_cast<double>(total_)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum >= rank) {
      return static_cast<double>(bucket_upper(static_cast<std::int64_t>(i)));
    }
  }
  return static_cast<double>(
      bucket_upper(static_cast<std::int64_t>(counts_.size()) - 1));
}

bool operator==(const LogHistogram& a, const LogHistogram& b) {
  if (a.total_ != b.total_ || a.sum_ != b.sum_) return false;
  const std::size_t n = std::max(a.counts_.size(), b.counts_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t ca = i < a.counts_.size() ? a.counts_[i] : 0;
    const std::uint64_t cb = i < b.counts_.size() ? b.counts_[i] : 0;
    if (ca != cb) return false;
  }
  return true;
}

}  // namespace rica::obs
