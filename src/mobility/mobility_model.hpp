// Pluggable mobility subsystem: a common trajectory interface, the selectable
// model kinds, and the model-polymorphic MobilityManager facade the rest of
// the stack (channel, neighbor index, network) consumes.
//
// Every model obeys three contracts that the spatial NeighborIndex and the
// bit-identical-equivalence tests depend on (see DESIGN.md §4):
//
//  1. Lazy, per-node evaluation with non-decreasing query times: querying
//     node i at time t advances only node i's trajectory state.
//  2. Position is a pure function of query time: position_at(id, t) returns
//     the same bits no matter which (non-decreasing) intermediate times were
//     queried first.  Models achieve this by evolving through constant-
//     velocity segments whose boundaries (leg ends, AR steps, wall
//     reflections) depend only on the trajectory itself, never on queries.
//  3. A hard speed bound: no node's instantaneous speed ever exceeds
//     max_speed_mps().  The neighbor index turns this into its staleness
//     slack (a node drifts at most max_speed * epoch from a snapshot).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mobility/vec2.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace rica::mobility {

/// Rectangular field, meters.
struct Field {
  double width = 1000.0;
  double height = 1000.0;

  [[nodiscard]] bool contains(Vec2 p) const {
    return p.x >= 0.0 && p.x <= width && p.y >= 0.0 && p.y <= height;
  }
};

/// The selectable trajectory models.
enum class ModelKind {
  kRandomWaypoint,  ///< the paper's model: uniform waypoints, pause on arrival
  kRandomWalk,      ///< uniform headings, exponential leg times, reflection
  kGaussMarkov,     ///< AR(1) speed/heading with boundary soft-repulsion
  kGroup,           ///< RPGM: waypoint reference points + per-member jitter
  kManhattan,       ///< street lattice with turn probabilities
  kTrace,           ///< replay of an ns-2 setdest / BonnMotion trace file
};

[[nodiscard]] std::string_view to_string(ModelKind kind);

/// Parses "waypoint", "walk", "gauss-markov", "group", "manhattan", "trace"
/// (plus common aliases, case-insensitive).  Throws std::invalid_argument
/// listing the known models — including the `trace:file=PATH` spelling —
/// for anything else.
[[nodiscard]] ModelKind model_from_string(std::string_view name);

/// The synthetic model spec names, in presentation order (for sweeps and
/// usage text).  `trace` is deliberately absent: it needs a `file=` param,
/// so all-model sweeps (fig7's default) stay runnable without a fixture.
[[nodiscard]] const std::vector<std::string>& known_mobility_models();

/// Configuration shared by every model, plus the per-model tunables.  Only
/// the fields of the selected `model` are read; the rest stay inert.
struct MobilityConfig {
  ModelKind model = ModelKind::kRandomWaypoint;
  Field field{};
  double max_speed_mps = 20.0;  ///< hard bound; speeds drawn from (0, max]
  sim::Time pause = sim::seconds(3);  ///< waypoint/walk pause on arrival

  // Random walk ("walk"): mean of the exponential leg duration, seconds.
  double walk_leg_mean_s = 10.0;

  // Gauss-Markov ("gauss-markov"): memory alpha in [0, 1) (1 = straight
  // line, 0 = memoryless) and the velocity-update interval, seconds.
  double gm_alpha = 0.85;
  double gm_step_s = 1.0;

  // RPGM group ("group"): nodes per group (deterministic assignment
  // id / group_size), member jitter radius around the reference point, and
  // the fraction of max_speed_mps granted to the reference point (members
  // get the rest, so |v_ref| + |v_member| <= max_speed_mps).  The radius is
  // clamped at model build to 20% of the shorter field side so the
  // reference points keep a positive roaming area — radius sweeps past
  // that cap all realize the same clamped motion.
  std::size_t group_size = 5;
  double group_radius_m = 100.0;
  double group_speed_frac = 0.6;

  // Manhattan grid ("manhattan"): street spacing (snapped so streets divide
  // the field evenly) and the probability of turning at an intersection.
  double manhattan_spacing_m = 250.0;
  double manhattan_turn_prob = 0.25;

  // Trace replay ("trace:file=PATH"): ns-2 setdest or BonnMotion movement
  // file (auto-detected; see mobility/trace.hpp).  Replay ignores
  // max_speed_mps/pause — speeds come from the data — but the file's
  // coordinates must fit the configured field or loading fails.
  std::string trace_file;
};

/// Parses a command-line mobility spec "model[:key=value,...]" onto `base`.
/// Keys are model-scoped (e.g. "gauss-markov:alpha=0.9,step=0.5",
/// "group:size=4,radius=80,frac=0.5", "walk:leg=5",
/// "manhattan:spacing=200,turn=0.4"); unknown models or keys and
/// out-of-range values throw std::invalid_argument with the valid choices.
[[nodiscard]] MobilityConfig parse_mobility_spec(std::string_view spec,
                                                 MobilityConfig base = {});

/// Trajectory of a whole population under one model.  See the file comment
/// for the three contracts every implementation upholds.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Position of node `id` at time t (non-decreasing t per node).
  [[nodiscard]] virtual Vec2 position_at(std::uint32_t id, sim::Time t) = 0;

  /// Instantaneous speed of node `id` at time t, m/s.
  [[nodiscard]] virtual double speed_at(std::uint32_t id, sim::Time t) = 0;

  /// Upper bound on any node's instantaneous speed, m/s (0 when static).
  [[nodiscard]] virtual double max_speed_mps() const = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Batched evaluation: positions of every node at t, indexed by node id.
  /// Deliberately non-virtual: it *is* N lazy queries, so the neighbor
  /// index's snapshot epochs are bit-identical to per-node evaluation under
  /// every model by construction.
  void snapshot(sim::Time t, std::vector<Vec2>& out);
};

/// Builds the model selected by `cfg.model`, drawing per-node streams from
/// `rng` (names are per-model, so switching models never perturbs the
/// random sequences of other components).
[[nodiscard]] std::unique_ptr<MobilityModel> make_mobility_model(
    std::size_t num_nodes, const MobilityConfig& cfg,
    const sim::RngManager& rng);

/// Positions for a whole network: the model-polymorphic facade consumed by
/// the channel, neighbor index, and network.  Owns the selected model.
class MobilityManager {
 public:
  MobilityManager(std::size_t num_nodes, const MobilityConfig& cfg,
                  const sim::RngManager& rng);

  /// Position of node `id` at time t.
  [[nodiscard]] Vec2 position(std::uint32_t id, sim::Time t) {
    return model_->position_at(id, t);
  }

  /// Distance between two nodes at time t, meters.
  [[nodiscard]] double node_distance(std::uint32_t a, std::uint32_t b,
                                     sim::Time t) {
    return distance(position(a, t), position(b, t));
  }

  /// Instantaneous speed of node `id` at time t, m/s.
  [[nodiscard]] double speed(std::uint32_t id, sim::Time t) {
    return model_->speed_at(id, t);
  }

  /// Batched snapshot: positions of every node at time t, indexed by node
  /// id.  Consumers that need the whole field at an epoch (e.g. the
  /// channel's spatial neighbor index) use this instead of N lazy queries.
  void snapshot(sim::Time t, std::vector<Vec2>& out) {
    model_->snapshot(t, out);
  }
  [[nodiscard]] std::vector<Vec2> snapshot(sim::Time t) {
    std::vector<Vec2> out;
    snapshot(t, out);
    return out;
  }

  /// Upper bound on any node's instantaneous speed, m/s (0 for a static
  /// network).  Lets spatial indexes bound how far a node can drift from a
  /// snapshot taken `dt` ago: at most max_speed_mps() * dt meters.
  [[nodiscard]] double max_speed_mps() const {
    return model_->max_speed_mps();
  }

  [[nodiscard]] const MobilityConfig& config() const { return cfg_; }

  [[nodiscard]] std::size_t size() const { return model_->size(); }

  [[nodiscard]] MobilityModel& model() { return *model_; }

 private:
  MobilityConfig cfg_;
  std::unique_ptr<MobilityModel> model_;
};

}  // namespace rica::mobility
