// Constant-velocity motion segments with specular wall reflection, shared by
// the random-walk and Gauss-Markov models.
//
// A trajectory phase (one walk leg, one Gauss-Markov step) is chopped into
// segments that end either at the phase boundary or at the first wall hit.
// Segment boundaries depend only on the motion itself, so positions are a
// pure function of query time regardless of how queries interleave — the
// property the neighbor-index equivalence tests rely on.  Wall-hit times are
// rounded *down* to whole nanoseconds so an in-segment position can never
// land outside the field.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

#include "mobility/mobility_model.hpp"
#include "mobility/vec2.hpp"
#include "sim/time.hpp"

namespace rica::mobility::detail {

/// One constant-velocity stretch of a trajectory, valid on [t0, t1].
struct BounceSegment {
  Vec2 origin{};            ///< position at t0
  Vec2 vel{};               ///< velocity throughout the segment, m/s
  sim::Time t0 = sim::Time::zero();
  sim::Time t1 = sim::Time::zero();
  Vec2 next_vel{};          ///< velocity after t1 (wall hits flip components)
  bool wall_hit = false;    ///< t1 is a wall hit (else the phase boundary)
};

/// Position inside a segment; requires t0 <= t <= t1.
[[nodiscard]] inline Vec2 segment_position(const BounceSegment& s,
                                           sim::Time t) {
  return s.origin + s.vel * (t - s.t0).seconds();
}

/// A duration of `s` seconds rounded down to whole nanoseconds (never
/// negative), so motion truncated at the rounded time cannot overshoot.
[[nodiscard]] inline sim::Time floor_seconds(double s) {
  const double ns = std::floor(s * 1e9);
  if (ns <= 0.0) return sim::Time::zero();
  if (ns >= 9.2e18) return sim::Time::max();
  return sim::Time{static_cast<std::int64_t>(ns)};
}

/// First segment of motion starting at (p, v) at t0, bounded by `phase_end`:
/// runs until the earlier of the phase boundary and the first wall of `f`.
/// On a wall hit, `next_vel` has the hit component(s) reflected; a corner
/// hit flips both.  A segment starting on a wall with outward velocity has
/// zero length and only flips — callers loop until t < t1.
[[nodiscard]] inline BounceSegment bounce_segment(Vec2 p, Vec2 v,
                                                  sim::Time t0,
                                                  sim::Time phase_end,
                                                  const Field& f) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double hx = kInf;
  double hy = kInf;
  if (v.x > 0.0) {
    hx = (f.width - p.x) / v.x;
  } else if (v.x < 0.0) {
    hx = -p.x / v.x;
  }
  if (v.y > 0.0) {
    hy = (f.height - p.y) / v.y;
  } else if (v.y < 0.0) {
    hy = -p.y / v.y;
  }
  const double hit_s = std::min(hx, hy);
  const double phase_s = (phase_end - t0).seconds();
  if (!(hit_s < phase_s)) {
    return BounceSegment{p, v, t0, phase_end, v, false};
  }
  const sim::Time t1 = t0 + floor_seconds(hit_s);
  Vec2 next = v;
  if (hx <= hit_s) next.x = -next.x;
  if (hy <= hit_s) next.y = -next.y;
  return BounceSegment{p, v, t0, t1, next, true};
}

/// An everlasting zero-velocity segment (static networks, pauses forever).
[[nodiscard]] inline BounceSegment static_segment(Vec2 p) {
  return BounceSegment{p, Vec2{}, sim::Time::zero(), sim::Time::max(), Vec2{},
                       false};
}

/// Travel time for a destination-bounded leg, rounded *up* to whole
/// nanoseconds so the realized velocity magnitude never exceeds the drawn
/// speed, with a 1 ms floor that keeps lazy advancement progressing even on
/// a zero-distance draw.
[[nodiscard]] inline sim::Time leg_travel(double dist_m, double speed_mps) {
  const double ns = std::ceil(dist_m / speed_mps * 1e9);
  return std::max(sim::milliseconds(1),
                  sim::Time{static_cast<std::int64_t>(ns)});
}

}  // namespace rica::mobility::detail
