// 2-D vector for positions (meters) on the simulation field.
#pragma once

#include <cmath>

namespace rica::mobility {

/// A point or displacement in the plane, in meters.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 rhs) const { return {x + rhs.x, y + rhs.y}; }
  constexpr Vec2 operator-(Vec2 rhs) const { return {x - rhs.x, y - rhs.y}; }
  constexpr Vec2 operator*(double k) const { return {x * k, y * k}; }

  [[nodiscard]] double norm() const { return std::hypot(x, y); }

  constexpr bool operator==(const Vec2&) const = default;
};

/// Euclidean distance between two points, meters.
[[nodiscard]] inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

}  // namespace rica::mobility
