// Trace-driven mobility: replay recorded trajectories through the
// MobilityModel interface, and record any built-in model to a trace.
//
// Two on-disk formats are read (auto-detected per file):
//
//   * ns-2 `setdest` movement scripts:
//       $node_(3) set X_ 83.36
//       $node_(3) set Y_ 239.44
//       $ns_ at 2.0 "$node_(3) setdest 90.4 50.3 1.37"
//     A node starts at its (X_, Y_) position, and each `setdest` command
//     redirects it from wherever it is at the command time toward the new
//     destination at the given speed; it pauses on arrival until the next
//     command (ns-2 CMU-scen-gen semantics, redirects mid-flight included).
//
//   * BonnMotion waypoint files: one line per node of whitespace-separated
//     `t x y` triples with strictly increasing t.  This is also the format
//     write_bonnmotion_trace() emits (SUMO and ns-2 exports convert to it
//     via BonnMotion itself).
//
// Both parse into the same representation GroupReference already uses: an
// append-only per-node log of constant-velocity segments anchored at knots
// (t_k, p_k).  Between knots the node moves at the chord velocity
// (p_{k+1} - p_k) / (t_{k+1} - t_k); before the first and after the last
// knot it holds position.  Anchoring every segment at its knot makes replay
// *exact*: querying at a knot time returns the recorded doubles bit for bit,
// which is what the round-trip property tests (record a built-in model,
// replay, compare) assert.
//
// Error handling is strict by design: malformed lines, non-monotonic
// timestamps, and coordinates outside the configured field all throw
// std::invalid_argument carrying `file:line:` diagnostics — never a silent
// clamp that would quietly bend a real-world trace into the arena.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mobility/mobility_model.hpp"
#include "mobility/vec2.hpp"
#include "sim/time.hpp"

namespace rica::mobility {

/// One recorded waypoint: node is at `p` exactly at time `t`.
struct TraceKnot {
  sim::Time t;
  Vec2 p;
};

/// A parsed trace: per-node knot logs plus the data-derived speed bound
/// (the maximum chord speed over every segment — the exact bound replay
/// realizes, so the NeighborIndex staleness slack holds unmodified).
struct TraceData {
  std::vector<std::vector<TraceKnot>> nodes;
  double max_speed_mps = 0.0;
};

/// Parses a BonnMotion waypoint stream.  `name` labels diagnostics (the
/// file path); every knot must lie inside `field`.
[[nodiscard]] TraceData parse_bonnmotion_trace(std::istream& in,
                                               std::string_view name,
                                               const Field& field);

/// Parses an ns-2 `setdest` movement script into knot logs (arrival and
/// redirect points become knots; pauses become zero-velocity segments).
[[nodiscard]] TraceData parse_setdest_trace(std::istream& in,
                                            std::string_view name,
                                            const Field& field);

/// Loads a trace file, auto-detecting the format: lines starting with `$`
/// select the setdest grammar, numeric lines select BonnMotion.  Throws
/// std::invalid_argument for unreadable files and for any parse error (with
/// `file:line:` diagnostics).
[[nodiscard]] TraceData load_trace(const std::string& path,
                                   const Field& field);

/// load_trace behind a process-wide cache keyed by (path, mtime, size,
/// field): a sweep replaying one trace across {protocol x trial} cells
/// parses the file once instead of once per Network construction, and the
/// sweep's up-front validation can probe the file (failing fast on a bad
/// path) while warming the cache before worker threads race for it.  The
/// mtime/size key re-parses a rewritten file; thread-safe.
[[nodiscard]] std::shared_ptr<const TraceData> load_trace_shared(
    const std::string& path, const Field& field);

/// Records `model` as a BonnMotion waypoint trace: every node sampled at
/// 0, dt, 2*dt, ... up to and including the last multiple of `sample_dt`
/// <= `duration`.  Values are printed with round-trip precision (%.17g), so
/// replaying the written trace reproduces the sampled positions to exact
/// double equality at every sample instant.  Between samples the replay
/// moves at the chord velocity, so a `sample_dt` finer than the model's
/// shortest trajectory segment bounds the interpolation error by
/// max_speed * sample_dt.
void write_bonnmotion_trace(MobilityModel& model, sim::Time duration,
                            sim::Time sample_dt, std::ostream& os);

/// File overload; throws std::invalid_argument when `path` cannot be opened.
void write_bonnmotion_trace(MobilityModel& model, sim::Time duration,
                            sim::Time sample_dt, const std::string& path);

/// Replays a TraceData through the MobilityModel interface.
///
/// position_at/speed_at answer *any* query time (the data is immutable, so
/// the model is fully replayable, not just monotone): a per-node cursor
/// makes the common non-decreasing query pattern O(1), with a binary search
/// over the knot log when the cursor segment misses.  Speed is the chord
/// speed of the active segment (0 while holding before the first / after
/// the last knot); max_speed_mps() is the data-derived bound.
class TraceMobilityModel final : public MobilityModel {
 public:
  /// Replays the first `num_nodes` trajectories of `data` (shared,
  /// immutable — sweep cells alias one parse).  Throws
  /// std::invalid_argument when the trace covers fewer nodes (`origin`
  /// labels the message — pass the file path).
  TraceMobilityModel(std::size_t num_nodes,
                     std::shared_ptr<const TraceData> data,
                     std::string_view origin);

  /// Convenience for tests and in-memory traces: takes ownership of `data`.
  TraceMobilityModel(std::size_t num_nodes, TraceData data,
                     std::string_view origin);

  /// Loads `cfg.trace_file` (validated against `cfg.field`, via the shared
  /// cache) and replays it.
  TraceMobilityModel(std::size_t num_nodes, const MobilityConfig& cfg);

  [[nodiscard]] Vec2 position_at(std::uint32_t id, sim::Time t) override;
  [[nodiscard]] double speed_at(std::uint32_t id, sim::Time t) override;
  [[nodiscard]] double max_speed_mps() const override {
    return max_speed_mps_;
  }
  [[nodiscard]] std::size_t size() const override { return nodes_.size(); }

  /// Duration covered by the longest trajectory (nodes hold position past
  /// their last knot, so runs may extend beyond it).
  [[nodiscard]] sim::Time duration() const { return duration_; }

 private:
  struct NodeTrack {
    const std::vector<TraceKnot>* knots;  ///< aliases the shared TraceData
    std::vector<Vec2> vel;        ///< chord velocity of segment k, m/s
    std::vector<double> speed;    ///< |vel[k]|, precomputed
    std::size_t cursor = 0;       ///< last segment served (monotone fast path)
  };

  /// Index of the segment holding t, i.e. knots[k].t <= t < knots[k+1].t.
  /// Requires knots.front().t <= t < knots.back().t.
  [[nodiscard]] static std::size_t segment_for(NodeTrack& track, sim::Time t);

  std::shared_ptr<const TraceData> data_;  ///< keeps the knot logs alive
  std::vector<NodeTrack> nodes_;
  double max_speed_mps_ = 0.0;
  sim::Time duration_ = sim::Time::zero();
};

}  // namespace rica::mobility
