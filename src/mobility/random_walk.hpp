// Random-walk (random-direction) mobility: each node repeatedly draws a
// uniform heading, a speed uniform in (0, max], and an exponentially
// distributed leg duration (mean `walk_leg_mean_s`), then moves for that
// long, reflecting specularly off the field walls.  Unlike random waypoint,
// legs are time-bounded rather than destination-bounded, so the stationary
// node distribution stays uniform instead of clustering at the field center.
// After each leg the node pauses for `pause` seconds (0 = continuous).
#pragma once

#include <cstdint>
#include <vector>

#include "mobility/bounce.hpp"
#include "mobility/mobility_model.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace rica::mobility {

/// One node's reflecting random walk (lazy, non-decreasing queries).
class RandomWalkNode {
 public:
  RandomWalkNode(const MobilityConfig& cfg, sim::RandomStream rng);

  [[nodiscard]] Vec2 position_at(sim::Time t);
  [[nodiscard]] double speed_at(sim::Time t);

 private:
  void advance_to(sim::Time t);
  void start_leg(Vec2 from, sim::Time t);

  MobilityConfig cfg_;
  sim::RandomStream rng_;
  detail::BounceSegment seg_{};
  sim::Time leg_end_ = sim::Time::zero();
  bool paused_ = false;
  sim::Time last_query_ = sim::Time::zero();
};

class RandomWalkModel final : public MobilityModel {
 public:
  RandomWalkModel(std::size_t num_nodes, const MobilityConfig& cfg,
                  const sim::RngManager& rng);

  [[nodiscard]] Vec2 position_at(std::uint32_t id, sim::Time t) override {
    return nodes_.at(id).position_at(t);
  }
  [[nodiscard]] double speed_at(std::uint32_t id, sim::Time t) override {
    return nodes_.at(id).speed_at(t);
  }
  [[nodiscard]] double max_speed_mps() const override {
    return cfg_.max_speed_mps;
  }
  [[nodiscard]] std::size_t size() const override { return nodes_.size(); }

 private:
  MobilityConfig cfg_;
  std::vector<RandomWalkNode> nodes_;
};

}  // namespace rica::mobility
