// Random-waypoint mobility, as used in the paper's evaluation:
// each terminal picks a uniform destination in the field, moves toward it at
// a speed drawn uniformly from (0, max_speed], pauses for `pause` seconds on
// arrival, then repeats.  Positions are evaluated lazily: querying a node's
// position at time t advances only that node's leg state, so cost scales
// with the number of queries, not with a global tick rate.
#pragma once

#include <cstdint>
#include <vector>

#include "mobility/mobility_model.hpp"
#include "mobility/vec2.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace rica::mobility {

/// Random-waypoint trajectory of a single node.
///
/// Queries must be issued with non-decreasing time (enforced per node), which
/// holds in a discrete-event simulation.
class WaypointNode {
 public:
  WaypointNode(const MobilityConfig& cfg, sim::RandomStream rng);

  /// Position at time t (t must not precede the previous query).
  [[nodiscard]] Vec2 position_at(sim::Time t);

  /// Instantaneous speed of the current leg, m/s (0 while paused).
  [[nodiscard]] double speed_at(sim::Time t);

 private:
  void advance_to(sim::Time t);
  void start_new_leg(sim::Time t);

  MobilityConfig cfg_;
  sim::RandomStream rng_;

  // Current leg: travels start_ -> dest_ during [leg_start_, leg_end_],
  // then pauses until pause_end_.
  Vec2 start_{};
  Vec2 dest_{};
  sim::Time leg_start_ = sim::Time::zero();
  sim::Time leg_end_ = sim::Time::zero();
  sim::Time pause_end_ = sim::Time::zero();
  double leg_speed_ = 0.0;
  sim::Time last_query_ = sim::Time::zero();
};

/// The paper's model, ported onto the pluggable trajectory interface.
class RandomWaypointModel final : public MobilityModel {
 public:
  RandomWaypointModel(std::size_t num_nodes, const MobilityConfig& cfg,
                      const sim::RngManager& rng);

  [[nodiscard]] Vec2 position_at(std::uint32_t id, sim::Time t) override {
    return nodes_.at(id).position_at(t);
  }
  [[nodiscard]] double speed_at(std::uint32_t id, sim::Time t) override {
    return nodes_.at(id).speed_at(t);
  }
  [[nodiscard]] double max_speed_mps() const override {
    return cfg_.max_speed_mps;
  }
  [[nodiscard]] std::size_t size() const override { return nodes_.size(); }

 private:
  MobilityConfig cfg_;
  std::vector<WaypointNode> nodes_;
};

}  // namespace rica::mobility
