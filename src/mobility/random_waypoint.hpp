// Random-waypoint mobility, as used in the paper's evaluation:
// each terminal picks a uniform destination in the field, moves toward it at
// a speed drawn uniformly from (0, max_speed], pauses for `pause` seconds on
// arrival, then repeats.  Positions are evaluated lazily: querying a node's
// position at time t advances only that node's leg state, so cost scales
// with the number of queries, not with a global tick rate.
#pragma once

#include <cstdint>
#include <vector>

#include "mobility/vec2.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace rica::mobility {

/// Rectangular field, meters.
struct Field {
  double width = 1000.0;
  double height = 1000.0;

  [[nodiscard]] bool contains(Vec2 p) const {
    return p.x >= 0.0 && p.x <= width && p.y >= 0.0 && p.y <= height;
  }
};

/// Configuration for the random-waypoint process.
struct WaypointConfig {
  Field field{};
  double max_speed_mps = 20.0;  ///< speeds drawn uniformly from (0, max].
  sim::Time pause = sim::seconds(3);
};

/// Random-waypoint trajectory of a single node.
///
/// Queries must be issued with non-decreasing time (enforced per node), which
/// holds in a discrete-event simulation.
class WaypointNode {
 public:
  WaypointNode(const WaypointConfig& cfg, sim::RandomStream rng);

  /// Position at time t (t must not precede the previous query).
  [[nodiscard]] Vec2 position_at(sim::Time t);

  /// Instantaneous speed of the current leg, m/s (0 while paused).
  [[nodiscard]] double speed_at(sim::Time t);

 private:
  void advance_to(sim::Time t);
  void start_new_leg(sim::Time t);

  WaypointConfig cfg_;
  sim::RandomStream rng_;

  // Current leg: travels start_ -> dest_ during [leg_start_, leg_end_],
  // then pauses until pause_end_.
  Vec2 start_{};
  Vec2 dest_{};
  sim::Time leg_start_ = sim::Time::zero();
  sim::Time leg_end_ = sim::Time::zero();
  sim::Time pause_end_ = sim::Time::zero();
  double leg_speed_ = 0.0;
  sim::Time last_query_ = sim::Time::zero();
};

/// Positions for a whole network of random-waypoint nodes.
class MobilityManager {
 public:
  MobilityManager(std::size_t num_nodes, const WaypointConfig& cfg,
                  const sim::RngManager& rng);

  /// Position of node `id` at time t.
  [[nodiscard]] Vec2 position(std::uint32_t id, sim::Time t);

  /// Distance between two nodes at time t, meters.
  [[nodiscard]] double node_distance(std::uint32_t a, std::uint32_t b,
                                     sim::Time t);

  /// Instantaneous speed of node `id` at time t, m/s.
  [[nodiscard]] double speed(std::uint32_t id, sim::Time t);

  /// Batched snapshot: positions of every node at time t, indexed by node
  /// id.  One call advances all trajectories to t; consumers that need the
  /// whole field at an epoch (e.g. the channel's spatial neighbor index)
  /// use this instead of N lazy per-node queries.
  void snapshot(sim::Time t, std::vector<Vec2>& out);
  [[nodiscard]] std::vector<Vec2> snapshot(sim::Time t);

  /// Upper bound on any node's instantaneous speed, m/s (0 for a static
  /// network).  Lets spatial indexes bound how far a node can drift from a
  /// snapshot taken `dt` ago: at most max_speed_mps() * dt meters.
  [[nodiscard]] double max_speed_mps() const { return cfg_.max_speed_mps; }

  [[nodiscard]] const WaypointConfig& config() const { return cfg_; }

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

 private:
  WaypointConfig cfg_;
  std::vector<WaypointNode> nodes_;
};

}  // namespace rica::mobility
