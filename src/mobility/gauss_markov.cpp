#include "mobility/gauss_markov.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace rica::mobility {

namespace {

// Innovation scales relative to the speed bound: large enough that motion is
// visibly stochastic at any alpha, small enough that the clamp to
// [0, max_speed] rarely binds.
constexpr double kSpeedSigmaFrac = 0.2;   ///< sigma_s = frac * max_speed
constexpr double kHeadingSigmaRad = 0.5;  ///< sigma_h, radians
constexpr double kMeanSpeedFrac = 0.5;    ///< drift mean = frac * max_speed

/// Wraps an angle difference into (-pi, pi].
double wrap_pi(double a) {
  constexpr double kTau = 2.0 * std::numbers::pi;
  a = std::fmod(a, kTau);
  if (a <= -std::numbers::pi) a += kTau;
  if (a > std::numbers::pi) a -= kTau;
  return a;
}

}  // namespace

GaussMarkovNode::GaussMarkovNode(const MobilityConfig& cfg,
                                 sim::RandomStream rng)
    : cfg_(cfg), rng_(std::move(rng)) {
  const Vec2 start{rng_.uniform(0.0, cfg_.field.width),
                   rng_.uniform(0.0, cfg_.field.height)};
  if (cfg_.max_speed_mps <= 0.0) {
    seg_ = detail::static_segment(start);
    step_end_ = sim::Time::max();
    return;
  }
  mean_heading_ = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  heading_ = mean_heading_;
  speed_ = std::max(1e-3, rng_.uniform(0.0, cfg_.max_speed_mps));
  step_end_ = sim::Time::zero();  // start_step schedules the first step end
  start_step(start, sim::Time::zero());
}

void GaussMarkovNode::start_step(Vec2 from, sim::Time t) {
  // Soft boundary repulsion: inside the edge margin the target heading
  // points at the field center, so the AR(1) drift steers nodes away from
  // walls instead of letting them skate along the reflection boundary.
  const double margin =
      std::min(100.0, 0.2 * std::min(cfg_.field.width, cfg_.field.height));
  double target = mean_heading_;
  if (from.x < margin || from.x > cfg_.field.width - margin ||
      from.y < margin || from.y > cfg_.field.height - margin) {
    target = std::atan2(0.5 * cfg_.field.height - from.y,
                        0.5 * cfg_.field.width - from.x);
  }
  const double a = cfg_.gm_alpha;
  const double diffusion = std::sqrt(std::max(0.0, 1.0 - a * a));
  heading_ += (1.0 - a) * wrap_pi(target - heading_) +
              diffusion * rng_.normal(0.0, kHeadingSigmaRad);
  speed_ = a * speed_ + (1.0 - a) * kMeanSpeedFrac * cfg_.max_speed_mps +
           diffusion * rng_.normal(0.0, kSpeedSigmaFrac * cfg_.max_speed_mps);
  speed_ = std::clamp(speed_, 0.0, cfg_.max_speed_mps);
  const Vec2 vel{speed_ * std::cos(heading_), speed_ * std::sin(heading_)};
  step_end_ = t + sim::seconds_f(std::max(1e-3, cfg_.gm_step_s));
  seg_ = detail::bounce_segment(from, vel, t, step_end_, cfg_.field);
}

void GaussMarkovNode::advance_to(sim::Time t) {
  assert(t >= last_query_ && "mobility queried backwards in time");
  last_query_ = t;
  while (t >= seg_.t1) {
    const Vec2 at = detail::segment_position(seg_, seg_.t1);
    if (seg_.wall_hit) {
      // Keep the AR heading state consistent with the reflected velocity so
      // the next update does not steer straight back into the wall.
      if (speed_ > 0.0) {
        heading_ = std::atan2(seg_.next_vel.y, seg_.next_vel.x);
      }
      seg_ = detail::bounce_segment(at, seg_.next_vel, seg_.t1, step_end_,
                                    cfg_.field);
    } else {
      start_step(at, seg_.t1);
    }
  }
}

Vec2 GaussMarkovNode::position_at(sim::Time t) {
  advance_to(t);
  return detail::segment_position(seg_, t);
}

double GaussMarkovNode::speed_at(sim::Time t) {
  advance_to(t);
  return seg_.vel.norm();
}

GaussMarkovModel::GaussMarkovModel(std::size_t num_nodes,
                                   const MobilityConfig& cfg,
                                   const sim::RngManager& rng)
    : cfg_(cfg) {
  nodes_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    nodes_.emplace_back(cfg, rng.stream("mobility-gm", i));
  }
}

}  // namespace rica::mobility
