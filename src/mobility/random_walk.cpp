#include "mobility/random_walk.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace rica::mobility {

RandomWalkNode::RandomWalkNode(const MobilityConfig& cfg,
                               sim::RandomStream rng)
    : cfg_(cfg), rng_(std::move(rng)) {
  const Vec2 start{rng_.uniform(0.0, cfg_.field.width),
                   rng_.uniform(0.0, cfg_.field.height)};
  if (cfg_.max_speed_mps <= 0.0) {
    seg_ = detail::static_segment(start);
    leg_end_ = sim::Time::max();
    return;
  }
  start_leg(start, sim::Time::zero());
}

void RandomWalkNode::start_leg(Vec2 from, sim::Time t) {
  const double heading = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  const double speed = std::max(1e-3, rng_.uniform(0.0, cfg_.max_speed_mps));
  const double duration_s = std::max(1e-3, rng_.exponential(cfg_.walk_leg_mean_s));
  const Vec2 vel{speed * std::cos(heading), speed * std::sin(heading)};
  leg_end_ = t + sim::seconds_f(duration_s);
  seg_ = detail::bounce_segment(from, vel, t, leg_end_, cfg_.field);
  paused_ = false;
}

void RandomWalkNode::advance_to(sim::Time t) {
  assert(t >= last_query_ && "mobility queried backwards in time");
  last_query_ = t;
  while (t >= seg_.t1) {
    const Vec2 at = detail::segment_position(seg_, seg_.t1);
    if (seg_.wall_hit) {
      seg_ = detail::bounce_segment(at, seg_.next_vel, seg_.t1, leg_end_,
                                    cfg_.field);
    } else if (!paused_ && cfg_.pause > sim::Time::zero()) {
      paused_ = true;
      seg_ = detail::BounceSegment{at,   Vec2{}, seg_.t1, seg_.t1 + cfg_.pause,
                                   Vec2{}, false};
    } else {
      start_leg(at, seg_.t1);
    }
  }
}

Vec2 RandomWalkNode::position_at(sim::Time t) {
  advance_to(t);
  return detail::segment_position(seg_, t);
}

double RandomWalkNode::speed_at(sim::Time t) {
  advance_to(t);
  return seg_.vel.norm();
}

RandomWalkModel::RandomWalkModel(std::size_t num_nodes,
                                 const MobilityConfig& cfg,
                                 const sim::RngManager& rng)
    : cfg_(cfg) {
  nodes_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    nodes_.emplace_back(cfg, rng.stream("mobility-walk", i));
  }
}

}  // namespace rica::mobility
