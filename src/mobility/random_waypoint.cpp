#include "mobility/random_waypoint.hpp"

#include <algorithm>
#include <cassert>

namespace rica::mobility {

WaypointNode::WaypointNode(const MobilityConfig& cfg, sim::RandomStream rng)
    : cfg_(cfg), rng_(std::move(rng)) {
  start_ = Vec2{rng_.uniform(0.0, cfg_.field.width),
                rng_.uniform(0.0, cfg_.field.height)};
  dest_ = start_;
  // Begin with an immediate leg choice at t=0 (no initial pause), so motion
  // statistics are homogeneous from the start of the measurement window.
  start_new_leg(sim::Time::zero());
}

void WaypointNode::start_new_leg(sim::Time t) {
  start_ = dest_;
  leg_start_ = t;
  if (cfg_.max_speed_mps <= 0.0) {
    // Static scenario: stay put forever.
    dest_ = start_;
    leg_end_ = sim::Time::max();
    pause_end_ = sim::Time::max();
    leg_speed_ = 0.0;
    return;
  }
  dest_ = Vec2{rng_.uniform(0.0, cfg_.field.width),
               rng_.uniform(0.0, cfg_.field.height)};
  // Uniform in (0, max]: avoid the degenerate 0 m/s draw that would freeze
  // the node forever (the well-known random-waypoint harmonic-mean pitfall).
  leg_speed_ = std::max(1e-3, rng_.uniform(0.0, cfg_.max_speed_mps));
  const double dist = distance(start_, dest_);
  const auto travel = sim::seconds_f(dist / leg_speed_);
  leg_end_ = leg_start_ + travel;
  pause_end_ = leg_end_ + cfg_.pause;
}

void WaypointNode::advance_to(sim::Time t) {
  assert(t >= last_query_ && "mobility queried backwards in time");
  last_query_ = t;
  while (t >= pause_end_) {
    start_new_leg(pause_end_);
  }
}

Vec2 WaypointNode::position_at(sim::Time t) {
  advance_to(t);
  if (t >= leg_end_) return dest_;  // pausing at the destination
  const double total = (leg_end_ - leg_start_).seconds();
  if (total <= 0.0) return dest_;
  const double frac = (t - leg_start_).seconds() / total;
  return start_ + (dest_ - start_) * frac;
}

double WaypointNode::speed_at(sim::Time t) {
  advance_to(t);
  return t < leg_end_ ? leg_speed_ : 0.0;
}

RandomWaypointModel::RandomWaypointModel(std::size_t num_nodes,
                                         const MobilityConfig& cfg,
                                         const sim::RngManager& rng)
    : cfg_(cfg) {
  nodes_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    nodes_.emplace_back(cfg, rng.stream("mobility", i));
  }
}

}  // namespace rica::mobility
