// Gauss-Markov mobility: speed and heading evolve as AR(1) processes with
// memory `gm_alpha`, updated every `gm_step_s` seconds —
//
//   s_{n+1} = a*s_n + (1-a)*s_mean + sqrt(1-a^2) * N(0, sigma_s)
//   h_{n+1} = h_n + (1-a)*wrap(h_target - h_n) + sqrt(1-a^2) * N(0, sigma_h)
//
// so alpha near 1 gives smooth, nearly ballistic motion and alpha near 0
// approaches a memoryless walk.  h_target is the node's own preferred
// heading except near the field edge, where it points at the field center
// (soft repulsion); specular reflection inside a step is the hard backstop
// that keeps nodes in bounds.  Speeds are clamped to [0, max_speed_mps], so
// the model-level speed bound holds exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "mobility/bounce.hpp"
#include "mobility/mobility_model.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace rica::mobility {

/// One node's Gauss-Markov trajectory (lazy, non-decreasing queries).
class GaussMarkovNode {
 public:
  GaussMarkovNode(const MobilityConfig& cfg, sim::RandomStream rng);

  [[nodiscard]] Vec2 position_at(sim::Time t);
  [[nodiscard]] double speed_at(sim::Time t);

 private:
  void advance_to(sim::Time t);
  void start_step(Vec2 from, sim::Time t);

  MobilityConfig cfg_;
  sim::RandomStream rng_;
  detail::BounceSegment seg_{};
  sim::Time step_end_ = sim::Time::zero();
  double speed_ = 0.0;          ///< AR(1) speed state, m/s
  double heading_ = 0.0;        ///< AR(1) heading state, radians
  double mean_heading_ = 0.0;   ///< per-node preferred drift direction
  sim::Time last_query_ = sim::Time::zero();
};

class GaussMarkovModel final : public MobilityModel {
 public:
  GaussMarkovModel(std::size_t num_nodes, const MobilityConfig& cfg,
                   const sim::RngManager& rng);

  [[nodiscard]] Vec2 position_at(std::uint32_t id, sim::Time t) override {
    return nodes_.at(id).position_at(t);
  }
  [[nodiscard]] double speed_at(std::uint32_t id, sim::Time t) override {
    return nodes_.at(id).speed_at(t);
  }
  [[nodiscard]] double max_speed_mps() const override {
    return cfg_.max_speed_mps;
  }
  [[nodiscard]] std::size_t size() const override { return nodes_.size(); }

 private:
  MobilityConfig cfg_;
  std::vector<GaussMarkovNode> nodes_;
};

}  // namespace rica::mobility
