// RPGM (reference point group mobility): nodes are partitioned into groups
// deterministically by id (group = id / group_size).  Each group's reference
// point follows a random-waypoint trajectory over the field shrunk by the
// jitter radius, at speeds up to group_speed_frac * max_speed; each member
// wanders inside a disc of radius group_radius_m around the reference point
// at speeds up to the remaining (1 - frac) * max_speed.  The two velocity
// budgets sum to the model's hard speed bound, so |v_member| <= max_speed
// holds exactly.
//
// Members of one group query the shared reference trajectory at interleaved,
// possibly non-monotonic times, so the reference is *replayable*: it records
// its waypoint legs in an append-only segment log and answers any time at or
// before the last generated leg by binary search.  Content of the log never
// depends on query order, preserving the pure-function-of-time contract.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mobility/mobility_model.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace rica::mobility {

/// A group's reference-point trajectory: random waypoint over the shrunken
/// field, replayable at arbitrary (not just non-decreasing) times.
class GroupReference {
 public:
  GroupReference(const MobilityConfig& cfg, double margin_m,
                 double max_speed_mps, sim::RandomStream rng);

  [[nodiscard]] Vec2 position_at(sim::Time t);
  [[nodiscard]] Vec2 velocity_at(sim::Time t);

 private:
  struct Seg {
    sim::Time t0;
    sim::Time t1;
    Vec2 origin;
    Vec2 vel;
  };

  void extend_to(sim::Time t);
  [[nodiscard]] const Seg& segment_for(sim::Time t);

  MobilityConfig cfg_;
  double margin_m_;
  double max_speed_mps_;
  sim::RandomStream rng_;
  std::vector<Seg> segs_;  ///< append-only, contiguous in time from t=0
};

/// One member: shared reference point plus a private in-disc jitter walk.
class GroupMemberNode {
 public:
  GroupMemberNode(const MobilityConfig& cfg, GroupReference& ref,
                  double radius_m, double local_max_mps,
                  sim::RandomStream rng);

  [[nodiscard]] Vec2 position_at(sim::Time t);
  [[nodiscard]] double speed_at(sim::Time t);

 private:
  void advance_to(sim::Time t);
  void start_leg(Vec2 from_offset, sim::Time t);
  [[nodiscard]] Vec2 offset_at(sim::Time t) const;

  MobilityConfig cfg_;
  GroupReference& ref_;
  double radius_m_;
  double local_max_mps_;
  sim::RandomStream rng_;
  // Current jitter leg in the reference frame: offset moves origin -> target.
  Vec2 leg_origin_{};
  Vec2 leg_vel_{};
  sim::Time leg_start_ = sim::Time::zero();
  sim::Time leg_end_ = sim::Time::max();
  sim::Time last_query_ = sim::Time::zero();
};

class GroupMobilityModel final : public MobilityModel {
 public:
  GroupMobilityModel(std::size_t num_nodes, const MobilityConfig& cfg,
                     const sim::RngManager& rng);

  [[nodiscard]] Vec2 position_at(std::uint32_t id, sim::Time t) override {
    return nodes_.at(id).position_at(t);
  }
  [[nodiscard]] double speed_at(std::uint32_t id, sim::Time t) override {
    return nodes_.at(id).speed_at(t);
  }
  [[nodiscard]] double max_speed_mps() const override {
    return cfg_.max_speed_mps;
  }
  [[nodiscard]] std::size_t size() const override { return nodes_.size(); }

 private:
  MobilityConfig cfg_;
  std::vector<std::unique_ptr<GroupReference>> groups_;
  std::vector<GroupMemberNode> nodes_;
};

}  // namespace rica::mobility
