// Manhattan grid mobility: nodes move along a street lattice (spacing
// `manhattan_spacing_m`, snapped so streets divide the field evenly) at a
// per-block speed drawn from (0, max].  At every intersection a node turns
// onto a perpendicular street with probability `manhattan_turn_prob`
// (choosing left/right uniformly), otherwise continues straight; at the
// field edge it turns if it can and reverses only in a dead end.  Positions
// are recomputed from exact lattice coordinates at each intersection, so
// trajectories cannot drift off the streets.
#pragma once

#include <cstdint>
#include <vector>

#include "mobility/mobility_model.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace rica::mobility {

/// One node's walk over the street lattice (lazy, non-decreasing queries).
class ManhattanNode {
 public:
  ManhattanNode(const MobilityConfig& cfg, sim::RandomStream rng);

  [[nodiscard]] Vec2 position_at(sim::Time t);
  [[nodiscard]] double speed_at(sim::Time t);

 private:
  // Directions: 0=+x, 1=-x, 2=+y, 3=-y.
  void advance_to(sim::Time t);
  void depart(Vec2 from, sim::Time t);  ///< run toward (tx_, ty_)
  void choose_next_direction();
  [[nodiscard]] Vec2 intersection(int ix, int iy) const;

  MobilityConfig cfg_;
  sim::RandomStream rng_;
  int nx_ = 1;        ///< blocks per row (intersections 0..nx_)
  int ny_ = 1;        ///< blocks per column
  double sx_ = 0.0;   ///< snapped street spacing, x
  double sy_ = 0.0;   ///< snapped street spacing, y
  int dir_ = 0;
  int tx_ = 0;        ///< target intersection of the current run
  int ty_ = 0;
  Vec2 origin_{};     ///< position at seg_start_
  Vec2 vel_{};
  sim::Time seg_start_ = sim::Time::zero();
  sim::Time seg_end_ = sim::Time::max();
  sim::Time last_query_ = sim::Time::zero();
};

class ManhattanModel final : public MobilityModel {
 public:
  ManhattanModel(std::size_t num_nodes, const MobilityConfig& cfg,
                 const sim::RngManager& rng);

  [[nodiscard]] Vec2 position_at(std::uint32_t id, sim::Time t) override {
    return nodes_.at(id).position_at(t);
  }
  [[nodiscard]] double speed_at(std::uint32_t id, sim::Time t) override {
    return nodes_.at(id).speed_at(t);
  }
  [[nodiscard]] double max_speed_mps() const override {
    return cfg_.max_speed_mps;
  }
  [[nodiscard]] std::size_t size() const override { return nodes_.size(); }

 private:
  MobilityConfig cfg_;
  std::vector<ManhattanNode> nodes_;
};

}  // namespace rica::mobility
