#include "mobility/manhattan.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "mobility/bounce.hpp"

namespace rica::mobility {

namespace {
constexpr int opposite(int dir) { return dir ^ 1; }
}  // namespace

ManhattanNode::ManhattanNode(const MobilityConfig& cfg, sim::RandomStream rng)
    : cfg_(cfg), rng_(std::move(rng)) {
  // Snap the street spacing so the lattice divides the field evenly; the
  // lattice always includes the field edges.
  const double spacing = std::max(1.0, cfg_.manhattan_spacing_m);
  nx_ = std::max(1, static_cast<int>(std::llround(cfg_.field.width / spacing)));
  ny_ =
      std::max(1, static_cast<int>(std::llround(cfg_.field.height / spacing)));
  sx_ = cfg_.field.width / nx_;
  sy_ = cfg_.field.height / ny_;

  // Initial placement: a uniform point on a uniformly chosen street.
  const bool horizontal = rng_.chance(0.5);
  Vec2 start{};
  if (horizontal) {
    ty_ = static_cast<int>(rng_.uniform_int(0, ny_));
    start = Vec2{rng_.uniform(0.0, cfg_.field.width), ty_ * sy_};
    dir_ = rng_.chance(0.5) ? 0 : 1;
    if (dir_ == 0) {
      tx_ = static_cast<int>(std::floor(start.x / sx_)) + 1;
    } else {
      tx_ = static_cast<int>(std::ceil(start.x / sx_)) - 1;
      if (tx_ < 0) {  // placed exactly on the left edge, heading out
        dir_ = 0;
        tx_ = 1;
      }
    }
    tx_ = std::min(tx_, nx_);
  } else {
    tx_ = static_cast<int>(rng_.uniform_int(0, nx_));
    start = Vec2{tx_ * sx_, rng_.uniform(0.0, cfg_.field.height)};
    dir_ = rng_.chance(0.5) ? 2 : 3;
    if (dir_ == 2) {
      ty_ = static_cast<int>(std::floor(start.y / sy_)) + 1;
    } else {
      ty_ = static_cast<int>(std::ceil(start.y / sy_)) - 1;
      if (ty_ < 0) {
        dir_ = 2;
        ty_ = 1;
      }
    }
    ty_ = std::min(ty_, ny_);
  }
  if (cfg_.max_speed_mps <= 0.0) {
    origin_ = start;
    vel_ = Vec2{};
    seg_end_ = sim::Time::max();
    return;
  }
  depart(start, sim::Time::zero());
}

Vec2 ManhattanNode::intersection(int ix, int iy) const {
  return Vec2{ix * sx_, iy * sy_};
}

void ManhattanNode::depart(Vec2 from, sim::Time t) {
  const Vec2 target = intersection(tx_, ty_);
  const double speed = std::max(1e-3, rng_.uniform(0.0, cfg_.max_speed_mps));
  const auto travel = detail::leg_travel(distance(from, target), speed);
  origin_ = from;
  vel_ = (target - from) * (1.0 / travel.seconds());
  seg_start_ = t;
  seg_end_ = t + travel;
}

void ManhattanNode::choose_next_direction() {
  const int cx = tx_;
  const int cy = ty_;
  const bool can[4] = {cx < nx_, cx > 0, cy < ny_, cy > 0};
  int perp[2];
  int np = 0;
  if (dir_ <= 1) {
    if (can[2]) perp[np++] = 2;
    if (can[3]) perp[np++] = 3;
  } else {
    if (can[0]) perp[np++] = 0;
    if (can[1]) perp[np++] = 1;
  }
  if (np > 0 && rng_.chance(cfg_.manhattan_turn_prob)) {
    dir_ = perp[rng_.uniform_int(0, np - 1)];
  } else if (!can[dir_]) {
    // Edge ahead: forced turn, or reverse in a dead end.
    dir_ = np > 0 ? perp[rng_.uniform_int(0, np - 1)] : opposite(dir_);
  }
  tx_ = cx + (dir_ == 0 ? 1 : 0) - (dir_ == 1 ? 1 : 0);
  ty_ = cy + (dir_ == 2 ? 1 : 0) - (dir_ == 3 ? 1 : 0);
}

void ManhattanNode::advance_to(sim::Time t) {
  assert(t >= last_query_ && "mobility queried backwards in time");
  last_query_ = t;
  while (t >= seg_end_) {
    // Arrive exactly on the lattice so runs never accumulate drift.
    const Vec2 at = intersection(tx_, ty_);
    const auto arrived = seg_end_;
    choose_next_direction();
    depart(at, arrived);
  }
}

Vec2 ManhattanNode::position_at(sim::Time t) {
  advance_to(t);
  const Vec2 p = origin_ + vel_ * (t - seg_start_).seconds();
  // Interpolation rounding can spill past an edge street by an ulp.
  return Vec2{std::clamp(p.x, 0.0, cfg_.field.width),
              std::clamp(p.y, 0.0, cfg_.field.height)};
}

double ManhattanNode::speed_at(sim::Time t) {
  advance_to(t);
  return vel_.norm();
}

ManhattanModel::ManhattanModel(std::size_t num_nodes,
                               const MobilityConfig& cfg,
                               const sim::RngManager& rng)
    : cfg_(cfg) {
  nodes_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    nodes_.emplace_back(cfg, rng.stream("mobility-manhattan", i));
  }
}

}  // namespace rica::mobility
