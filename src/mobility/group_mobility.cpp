#include "mobility/group_mobility.hpp"

#include "mobility/bounce.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace rica::mobility {

namespace {

/// Jitter radius clamped so the shrunken reference field keeps a positive
/// area on any field size.
double effective_radius(const MobilityConfig& cfg) {
  return std::min(cfg.group_radius_m,
                  0.2 * std::min(cfg.field.width, cfg.field.height));
}

}  // namespace

// ---------------------------------------------------------------------------
// GroupReference
// ---------------------------------------------------------------------------

GroupReference::GroupReference(const MobilityConfig& cfg, double margin_m,
                               double max_speed_mps, sim::RandomStream rng)
    : cfg_(cfg),
      margin_m_(margin_m),
      max_speed_mps_(max_speed_mps),
      rng_(std::move(rng)) {
  const Vec2 start{
      rng_.uniform(margin_m_, cfg_.field.width - margin_m_),
      rng_.uniform(margin_m_, cfg_.field.height - margin_m_)};
  if (max_speed_mps_ <= 0.0) {
    segs_.push_back(Seg{sim::Time::zero(), sim::Time::max(), start, Vec2{}});
  } else {
    // Zero-length sentinel so extend_to always has a predecessor to grow.
    segs_.push_back(Seg{sim::Time::zero(), sim::Time::zero(), start, Vec2{}});
  }
}

void GroupReference::extend_to(sim::Time t) {
  while (segs_.back().t1 <= t) {
    const Seg& last = segs_.back();
    const Vec2 from =
        last.origin + last.vel * (last.t1 - last.t0).seconds();
    const Vec2 dest{
        rng_.uniform(margin_m_, cfg_.field.width - margin_m_),
        rng_.uniform(margin_m_, cfg_.field.height - margin_m_)};
    const double speed = std::max(1e-3, rng_.uniform(0.0, max_speed_mps_));
    const double dist = distance(from, dest);
    const auto travel = detail::leg_travel(dist, speed);
    const auto t0 = last.t1;
    const auto t1 = t0 + travel;
    const Vec2 vel = (dest - from) * (1.0 / travel.seconds());
    segs_.push_back(Seg{t0, t1, from, vel});
    if (cfg_.pause > sim::Time::zero()) {
      segs_.push_back(Seg{t1, t1 + cfg_.pause, dest, Vec2{}});
    }
  }
}

const GroupReference::Seg& GroupReference::segment_for(sim::Time t) {
  extend_to(t);
  // First segment whose end lies beyond t.
  const auto it = std::partition_point(
      segs_.begin(), segs_.end(),
      [t](const Seg& s) { return s.t1 <= t; });
  assert(it != segs_.end());
  return *it;
}

Vec2 GroupReference::position_at(sim::Time t) {
  const Seg& s = segment_for(t);
  return s.origin + s.vel * (t - s.t0).seconds();
}

Vec2 GroupReference::velocity_at(sim::Time t) {
  return segment_for(t).vel;
}

// ---------------------------------------------------------------------------
// GroupMemberNode
// ---------------------------------------------------------------------------

GroupMemberNode::GroupMemberNode(const MobilityConfig& cfg,
                                 GroupReference& ref, double radius_m,
                                 double local_max_mps, sim::RandomStream rng)
    : cfg_(cfg),
      ref_(ref),
      radius_m_(radius_m),
      local_max_mps_(local_max_mps),
      rng_(std::move(rng)) {
  // Initial offset uniform in the jitter disc (sqrt keeps the density flat).
  const double r = radius_m_ * std::sqrt(rng_.uniform());
  const double a = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  leg_origin_ = Vec2{r * std::cos(a), r * std::sin(a)};
  if (cfg_.max_speed_mps <= 0.0 || local_max_mps_ <= 0.0) {
    leg_vel_ = Vec2{};
    leg_end_ = sim::Time::max();
    return;
  }
  start_leg(leg_origin_, sim::Time::zero());
}

void GroupMemberNode::start_leg(Vec2 from_offset, sim::Time t) {
  const double r = radius_m_ * std::sqrt(rng_.uniform());
  const double a = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  const Vec2 target{r * std::cos(a), r * std::sin(a)};
  const double speed = std::max(1e-3, rng_.uniform(0.0, local_max_mps_));
  const double dist = distance(from_offset, target);
  const auto travel = detail::leg_travel(dist, speed);
  leg_origin_ = from_offset;
  leg_vel_ = (target - from_offset) * (1.0 / travel.seconds());
  leg_start_ = t;
  leg_end_ = t + travel;
}

void GroupMemberNode::advance_to(sim::Time t) {
  assert(t >= last_query_ && "mobility queried backwards in time");
  last_query_ = t;
  while (t >= leg_end_) {
    start_leg(offset_at(leg_end_), leg_end_);
  }
}

Vec2 GroupMemberNode::offset_at(sim::Time t) const {
  return leg_origin_ + leg_vel_ * (t - leg_start_).seconds();
}

Vec2 GroupMemberNode::position_at(sim::Time t) {
  advance_to(t);
  const Vec2 p = ref_.position_at(t) + offset_at(t);
  // The reference stays `radius` clear of the walls and offsets stay inside
  // the disc, so this clamp only ever shaves sub-nanometer rounding spill.
  return Vec2{std::clamp(p.x, 0.0, cfg_.field.width),
              std::clamp(p.y, 0.0, cfg_.field.height)};
}

double GroupMemberNode::speed_at(sim::Time t) {
  advance_to(t);
  return (ref_.velocity_at(t) + leg_vel_).norm();
}

// ---------------------------------------------------------------------------
// GroupMobilityModel
// ---------------------------------------------------------------------------

GroupMobilityModel::GroupMobilityModel(std::size_t num_nodes,
                                       const MobilityConfig& cfg,
                                       const sim::RngManager& rng)
    : cfg_(cfg) {
  const std::size_t group_size = std::max<std::size_t>(1, cfg.group_size);
  const std::size_t num_groups =
      num_nodes == 0 ? 0 : (num_nodes + group_size - 1) / group_size;
  const double radius = effective_radius(cfg);
  const double frac = std::clamp(cfg.group_speed_frac, 0.0, 1.0);
  const double ref_max = frac * cfg.max_speed_mps;
  const double local_max = (1.0 - frac) * cfg.max_speed_mps;
  groups_.reserve(num_groups);
  for (std::size_t g = 0; g < num_groups; ++g) {
    groups_.push_back(std::make_unique<GroupReference>(
        cfg, radius, ref_max, rng.stream("mobility-group", g)));
  }
  nodes_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    nodes_.emplace_back(cfg, *groups_[i / group_size], radius, local_max,
                        rng.stream("mobility-member", i));
  }
}

}  // namespace rica::mobility
