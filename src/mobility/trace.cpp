#include "mobility/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>

namespace rica::mobility {

namespace {

/// Throws the canonical `file:line: message` diagnostic.
[[noreturn]] void fail_at(std::string_view name, std::size_t line,
                          const std::string& message) {
  throw std::invalid_argument(std::string(name) + ":" +
                              std::to_string(line) + ": " + message);
}

/// Parses a whole-token double; trailing junk is an error.
double parse_number(std::string_view name, std::size_t line,
                    const std::string& token, std::string_view what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(token, &used);
    if (used != token.size() || !std::isfinite(v)) {
      throw std::invalid_argument(token);
    }
    return v;
  } catch (const std::exception&) {
    fail_at(name, line,
            "expected a " + std::string(what) + ", got \"" + token + "\"");
  }
}

void require_in_field(std::string_view name, std::size_t line, Vec2 p,
                      const Field& field) {
  if (!field.contains(p)) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "coordinate (%g, %g) outside the %g x %g m field",
                  p.x, p.y, field.width, field.height);
    fail_at(name, line, buf);
  }
}

/// Appends a knot, enforcing monotonic time.  Equal-time knots at the same
/// position collapse (arrival coinciding with the next command); equal-time
/// knots at different positions are a teleport and rejected.
void push_knot(std::string_view name, std::size_t line,
               std::vector<TraceKnot>& knots, sim::Time t, Vec2 p) {
  if (!knots.empty()) {
    const TraceKnot& last = knots.back();
    if (t < last.t || (t == last.t && !(p == last.p))) {
      fail_at(name, line,
              "non-monotonic timestamp " + std::to_string(t.seconds()) +
                  " s (previous knot at " + std::to_string(last.t.seconds()) +
                  " s)");
    }
    if (t == last.t) return;
  }
  knots.push_back(TraceKnot{t, p});
}

/// Chord-speed maximum over every segment of every node — the exact bound
/// the replayed velocities realize.
double derive_max_speed(const TraceData& data) {
  double max_speed = 0.0;
  for (const auto& knots : data.nodes) {
    for (std::size_t k = 0; k + 1 < knots.size(); ++k) {
      const double dt_s = (knots[k + 1].t - knots[k].t).seconds();
      const Vec2 vel = (knots[k + 1].p - knots[k].p) * (1.0 / dt_s);
      max_speed = std::max(max_speed, vel.norm());
    }
  }
  return max_speed;
}

// -- setdest grammar ---------------------------------------------------------

/// Pending motion of one setdest node: moving toward `dest` at `speed`
/// since `start`, arriving at `arrival` (== start when idle).
struct SetdestNode {
  bool placed = false;       ///< saw `set X_` / `set Y_`
  bool has_x = false;
  bool has_y = false;
  Vec2 pos{};                ///< position at time `anchor`
  sim::Time anchor = sim::Time::zero();
  Vec2 dest{};
  sim::Time arrival = sim::Time::zero();
  Vec2 vel{};
  sim::Time last_command = sim::Time::zero();
  std::vector<TraceKnot> knots;
};

/// "$node_(ID)" -> ID, or npos-style failure via fail_at.
std::size_t parse_node_ref(std::string_view name, std::size_t line,
                           const std::string& token) {
  if (token.rfind("$node_(", 0) != 0 || token.back() != ')') {
    fail_at(name, line, "expected $node_(ID), got \"" + token + "\"");
  }
  const std::string id = token.substr(7, token.size() - 8);
  const double v = parse_number(name, line, id, "node id");
  if (v < 0.0 || v != std::floor(v)) {
    fail_at(name, line, "node id must be a non-negative integer: " + id);
  }
  return static_cast<std::size_t>(v);
}

}  // namespace

TraceData parse_bonnmotion_trace(std::istream& in, std::string_view name,
                                 const Field& field) {
  TraceData data;
  std::string text;
  std::size_t line_no = 0;
  while (std::getline(in, text)) {
    ++line_no;
    if (!text.empty() && text.back() == '\r') text.pop_back();
    const auto first = text.find_first_not_of(" \t");
    if (first == std::string::npos || text[first] == '#') continue;
    std::istringstream tokens(text);
    std::string token;
    std::vector<double> values;
    while (tokens >> token) {
      values.push_back(parse_number(name, line_no, token, "number"));
    }
    if (values.size() % 3 != 0) {
      fail_at(name, line_no,
              "expected `t x y` triples, got " +
                  std::to_string(values.size()) + " values");
    }
    std::vector<TraceKnot> knots;
    knots.reserve(values.size() / 3);
    for (std::size_t k = 0; k < values.size(); k += 3) {
      if (values[k] < 0.0) {
        fail_at(name, line_no, "negative timestamp " +
                                   std::to_string(values[k]) + " s");
      }
      const Vec2 p{values[k + 1], values[k + 2]};
      require_in_field(name, line_no, p, field);
      push_knot(name, line_no, knots, sim::seconds_f(values[k]), p);
    }
    data.nodes.push_back(std::move(knots));
  }
  data.max_speed_mps = derive_max_speed(data);
  return data;
}

TraceData parse_setdest_trace(std::istream& in, std::string_view name,
                              const Field& field) {
  std::vector<SetdestNode> nodes;
  const auto node_at = [&nodes](std::size_t id) -> SetdestNode& {
    if (nodes.size() <= id) nodes.resize(id + 1);
    return nodes[id];
  };
  // Settles a node's pending motion up to `t`, emitting the arrival knot
  // when the leg completes before `t` (the pause until the next command is
  // the zero-velocity segment between that knot and the next one).
  const auto settle = [](SetdestNode& n, sim::Time t) {
    if (n.arrival <= t) {
      n.pos = n.dest;
      n.anchor = n.arrival;
      n.vel = Vec2{};
    } else {
      n.pos = n.pos + n.vel * (t - n.anchor).seconds();
      n.anchor = t;
    }
  };

  TraceData data;
  std::string text;
  std::size_t line_no = 0;
  while (std::getline(in, text)) {
    ++line_no;
    if (!text.empty() && text.back() == '\r') text.pop_back();
    const auto first = text.find_first_not_of(" \t");
    if (first == std::string::npos || text[first] == '#') continue;
    std::istringstream tokens(text);
    std::string head;
    tokens >> head;
    if (head.rfind("$god_", 0) == 0) continue;  // setdest's GOD annotations

    if (head.rfind("$node_(", 0) == 0) {
      // $node_(ID) set X_|Y_|Z_ VALUE
      std::string set_kw;
      std::string axis;
      std::string value;
      if (!(tokens >> set_kw >> axis >> value) || set_kw != "set") {
        fail_at(name, line_no, "expected `$node_(ID) set X_|Y_|Z_ VALUE`");
      }
      const std::size_t id = parse_node_ref(name, line_no, head);
      SetdestNode& n = node_at(id);
      const double v = parse_number(name, line_no, value, "coordinate");
      if (n.placed && (axis == "X_" || axis == "Y_")) {
        // A second placement would teleport the node around the knot log
        // (and dodge the field check): reject it like every other
        // inconsistency instead of silently rewriting the trajectory.
        fail_at(name, line_no,
                "node " + std::to_string(id) +
                    " position set twice (initial `set " + axis +
                    "` after placement)");
      }
      if (axis == "X_") {
        n.pos.x = v;
        n.dest.x = v;
        n.has_x = true;
      } else if (axis == "Y_") {
        n.pos.y = v;
        n.dest.y = v;
        n.has_y = true;
      } else if (axis == "Z_") {
        // 2-D arena: the altitude is parsed (diagnosing junk) and dropped.
      } else {
        fail_at(name, line_no, "unknown axis \"" + axis + "\"");
      }
      if (n.has_x && n.has_y && !n.placed) {
        require_in_field(name, line_no, n.pos, field);
        n.placed = true;
        n.knots.push_back(TraceKnot{sim::Time::zero(), n.pos});
      }
      continue;
    }

    if (head == "$ns_") {
      // $ns_ at TIME "$node_(ID) setdest X Y SPEED"
      std::string at_kw;
      std::string time_tok;
      if (!(tokens >> at_kw >> time_tok) || at_kw != "at") {
        fail_at(name, line_no, "expected `$ns_ at TIME \"...\"`");
      }
      const double at_s =
          parse_number(name, line_no, time_tok, "command time");
      if (at_s < 0.0) {
        fail_at(name, line_no, "negative command time");
      }
      std::string rest;
      std::getline(tokens, rest);
      const auto quote_open = rest.find('"');
      const auto quote_close = rest.rfind('"');
      if (quote_open == std::string::npos || quote_close <= quote_open) {
        fail_at(name, line_no, "expected a quoted setdest command");
      }
      std::istringstream cmd(
          rest.substr(quote_open + 1, quote_close - quote_open - 1));
      std::string node_tok;
      std::string setdest_kw;
      std::string xs;
      std::string ys;
      std::string ss;
      if (!(cmd >> node_tok >> setdest_kw >> xs >> ys >> ss) ||
          setdest_kw != "setdest") {
        fail_at(name, line_no,
                "expected `$node_(ID) setdest X Y SPEED` inside quotes");
      }
      const std::size_t id = parse_node_ref(name, line_no, node_tok);
      const Vec2 dest{parse_number(name, line_no, xs, "coordinate"),
                      parse_number(name, line_no, ys, "coordinate")};
      const double speed = parse_number(name, line_no, ss, "speed");
      require_in_field(name, line_no, dest, field);
      if (speed <= 0.0) {
        fail_at(name, line_no,
                "setdest speed must be > 0 m/s, got " + ss);
      }
      SetdestNode& n = node_at(id);
      if (!n.placed) {
        fail_at(name, line_no, "node " + std::to_string(id) +
                                   " has a setdest before its initial"
                                   " `set X_` / `set Y_` position");
      }
      const sim::Time at = sim::seconds_f(at_s);
      if (!n.knots.empty() && at < n.last_command) {
        fail_at(name, line_no,
                "non-monotonic command time " + time_tok + " for node " +
                    std::to_string(id));
      }
      n.last_command = at;
      // Emit the arrival knot of the previous leg when it completed before
      // this command (settle() then parks the node there), or truncate the
      // leg mid-flight at the redirect point.
      if (n.arrival > sim::Time::zero() && n.arrival <= at) {
        push_knot(name, line_no, n.knots, n.arrival, n.dest);
      }
      settle(n, at);
      push_knot(name, line_no, n.knots, at, n.pos);
      n.anchor = at;  // the new leg departs from the command point
      const double dist = distance(n.pos, dest);
      n.dest = dest;
      if (dist <= 0.0) {
        n.arrival = at;  // degenerate command: already there
        n.vel = Vec2{};
      } else {
        const auto travel = sim::seconds_f(dist / speed);
        n.arrival = at + std::max(travel, sim::Time{1});
        n.vel = (dest - n.pos) * (1.0 / (n.arrival - at).seconds());
      }
      continue;
    }

    fail_at(name, line_no, "unrecognized line \"" + text + "\"");
  }

  for (std::size_t id = 0; id < nodes.size(); ++id) {
    SetdestNode& n = nodes[id];
    if (!n.placed) {
      // A hole in the id space means the file never placed this node.
      throw std::invalid_argument(
          std::string(name) + ": node " + std::to_string(id) +
          " has no initial position (`$node_(" + std::to_string(id) +
          ") set X_ ...`)");
    }
    // Final leg, if any, runs to completion.
    if (n.arrival > n.knots.back().t) {
      push_knot(name, line_no, n.knots, n.arrival, n.dest);
    }
    data.nodes.push_back(std::move(n.knots));
  }
  data.max_speed_mps = derive_max_speed(data);
  return data;
}

TraceData load_trace(const std::string& path, const Field& field) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot open trace file: " + path);
  }
  // Detect the grammar from the first non-blank, non-comment character:
  // setdest scripts open every statement with `$`.
  char c = 0;
  bool setdest = false;
  while (in.get(c)) {
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') continue;
    if (c == '#') {
      std::string skip;
      std::getline(in, skip);
      continue;
    }
    setdest = (c == '$');
    break;
  }
  in.clear();
  in.seekg(0);
  return setdest ? parse_setdest_trace(in, path, field)
                 : parse_bonnmotion_trace(in, path, field);
}

std::shared_ptr<const TraceData> load_trace_shared(const std::string& path,
                                                   const Field& field) {
  // Keyed by the file's identity *and* the arena (the same file may be
  // validated against different fields): a rewritten file (new mtime/size)
  // re-parses, everything else aliases one immutable TraceData.
  using Key = std::tuple<std::string, std::int64_t, std::uintmax_t, double,
                         double>;
  static std::mutex mu;
  static std::map<Key, std::shared_ptr<const TraceData>> cache;

  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(path, ec);
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) {
    // Missing/unstatable: let the loader produce the canonical diagnostic.
    return std::make_shared<const TraceData>(load_trace(path, field));
  }
  const Key key{path, mtime.time_since_epoch().count(), size, field.width,
                field.height};
  {
    const std::scoped_lock lock(mu);
    const auto it = cache.find(key);
    if (it != cache.end()) return it->second;
  }
  auto data = std::make_shared<const TraceData>(load_trace(path, field));
  const std::scoped_lock lock(mu);
  return cache.emplace(key, std::move(data)).first->second;
}

void write_bonnmotion_trace(MobilityModel& model, sim::Time duration,
                            sim::Time sample_dt, std::ostream& os) {
  if (sample_dt <= sim::Time::zero()) {
    throw std::invalid_argument("trace sample interval must be > 0");
  }
  const auto n = static_cast<std::uint32_t>(model.size());
  const auto steps = duration.nanos() / sample_dt.nanos();
  char buf[80];
  for (std::uint32_t id = 0; id < n; ++id) {
    for (std::int64_t k = 0; k <= steps; ++k) {
      const sim::Time t = sample_dt * k;
      const Vec2 p = model.position_at(id, t);
      // %.17g round-trips every double exactly through stod, which is what
      // makes replay bit-identical to the recorded model at sample times.
      std::snprintf(buf, sizeof(buf), "%s%.17g %.17g %.17g",
                    k == 0 ? "" : " ", t.seconds(), p.x, p.y);
      os << buf;
    }
    os << '\n';
  }
}

void write_bonnmotion_trace(MobilityModel& model, sim::Time duration,
                            sim::Time sample_dt, const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    throw std::invalid_argument("cannot open trace file for writing: " +
                                path);
  }
  write_bonnmotion_trace(model, duration, sample_dt, os);
}

// ---------------------------------------------------------------------------
// TraceMobilityModel
// ---------------------------------------------------------------------------

TraceMobilityModel::TraceMobilityModel(std::size_t num_nodes,
                                       std::shared_ptr<const TraceData> data,
                                       std::string_view origin)
    : data_(std::move(data)) {
  if (data_->nodes.size() < num_nodes) {
    throw std::invalid_argument(
        std::string(origin) + ": trace covers " +
        std::to_string(data_->nodes.size()) +
        " node(s) but the scenario has " + std::to_string(num_nodes));
  }
  max_speed_mps_ = data_->max_speed_mps;
  nodes_.reserve(num_nodes);
  for (std::size_t id = 0; id < num_nodes; ++id) {
    NodeTrack track;
    track.knots = &data_->nodes[id];
    const auto& knots = *track.knots;
    if (knots.empty()) {
      throw std::invalid_argument(std::string(origin) + ": node " +
                                  std::to_string(id) + " has no waypoints");
    }
    const std::size_t segs = knots.size() - 1;
    track.vel.reserve(segs);
    track.speed.reserve(segs);
    for (std::size_t k = 0; k < segs; ++k) {
      const double dt_s = (knots[k + 1].t - knots[k].t).seconds();
      const Vec2 vel = (knots[k + 1].p - knots[k].p) * (1.0 / dt_s);
      track.vel.push_back(vel);
      track.speed.push_back(vel.norm());
    }
    duration_ = std::max(duration_, knots.back().t);
    nodes_.push_back(std::move(track));
  }
}

TraceMobilityModel::TraceMobilityModel(std::size_t num_nodes, TraceData data,
                                       std::string_view origin)
    : TraceMobilityModel(num_nodes,
                         std::make_shared<const TraceData>(std::move(data)),
                         origin) {}

TraceMobilityModel::TraceMobilityModel(std::size_t num_nodes,
                                       const MobilityConfig& cfg)
    : TraceMobilityModel(num_nodes,
                         load_trace_shared(cfg.trace_file, cfg.field),
                         cfg.trace_file) {}

std::size_t TraceMobilityModel::segment_for(NodeTrack& track, sim::Time t) {
  const auto& knots = *track.knots;
  std::size_t k = track.cursor;
  if (!(knots[k].t <= t && t < knots[k + 1].t)) {
    // Binary search: first knot strictly past t, minus one.
    const auto it = std::upper_bound(
        knots.begin(), knots.end(), t,
        [](sim::Time q, const TraceKnot& knot) { return q < knot.t; });
    k = static_cast<std::size_t>(it - knots.begin()) - 1;
    track.cursor = k;
  }
  return k;
}

Vec2 TraceMobilityModel::position_at(std::uint32_t id, sim::Time t) {
  NodeTrack& track = nodes_.at(id);
  const auto& knots = *track.knots;
  if (t <= knots.front().t) return knots.front().p;
  if (t >= knots.back().t) return knots.back().p;
  const std::size_t k = segment_for(track, t);
  // Anchored at the knot: at t == knots[k].t this is exactly knots[k].p.
  return knots[k].p + track.vel[k] * (t - knots[k].t).seconds();
}

double TraceMobilityModel::speed_at(std::uint32_t id, sim::Time t) {
  NodeTrack& track = nodes_.at(id);
  const auto& knots = *track.knots;
  if (t < knots.front().t) return 0.0;
  if (t >= knots.back().t) return 0.0;
  return track.speed[segment_for(track, t)];
}

}  // namespace rica::mobility
