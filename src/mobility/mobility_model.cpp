#include "mobility/mobility_model.hpp"

#include <cmath>
#include <stdexcept>

#include "mobility/gauss_markov.hpp"
#include "mobility/group_mobility.hpp"
#include "mobility/manhattan.hpp"
#include "mobility/random_walk.hpp"
#include "mobility/random_waypoint.hpp"
#include "mobility/trace.hpp"
#include "util/spec_parse.hpp"

namespace rica::mobility {

namespace {

constexpr std::string_view kDomain = "mobility";

std::string known_models_csv() {
  return util::csv_list(known_mobility_models());
}

double parse_double(std::string_view key, const std::string& value) {
  return util::parse_spec_double(kDomain, key, value);
}

void require(bool ok, std::string_view key, std::string_view constraint) {
  util::require_spec(ok, kDomain, key, constraint);
}

/// Applies one "key=value" onto cfg; keys are scoped to the selected model.
void apply_param(MobilityConfig& cfg, const std::string& key,
                 const std::string& value) {
  switch (cfg.model) {
    case ModelKind::kRandomWalk:
      if (key == "leg") {
        cfg.walk_leg_mean_s = parse_double(key, value);
        require(cfg.walk_leg_mean_s > 0.0, key, "> 0");
        return;
      }
      throw std::invalid_argument("unknown walk param: " + key +
                                  " (known: leg)");
    case ModelKind::kGaussMarkov:
      if (key == "alpha") {
        cfg.gm_alpha = parse_double(key, value);
        require(cfg.gm_alpha >= 0.0 && cfg.gm_alpha < 1.0, key, "in [0, 1)");
        return;
      }
      if (key == "step") {
        cfg.gm_step_s = parse_double(key, value);
        require(cfg.gm_step_s > 0.0, key, "> 0");
        return;
      }
      throw std::invalid_argument("unknown gauss-markov param: " + key +
                                  " (known: alpha, step)");
    case ModelKind::kGroup:
      if (key == "size") {
        const double v = parse_double(key, value);
        require(v >= 1.0 && v <= 1e9 && v == std::floor(v), key,
                "a positive integer");
        cfg.group_size = static_cast<std::size_t>(v);
        return;
      }
      if (key == "radius") {
        cfg.group_radius_m = parse_double(key, value);
        require(cfg.group_radius_m > 0.0, key, "> 0");
        return;
      }
      if (key == "frac") {
        cfg.group_speed_frac = parse_double(key, value);
        require(cfg.group_speed_frac > 0.0 && cfg.group_speed_frac < 1.0, key,
                "in (0, 1)");
        return;
      }
      throw std::invalid_argument("unknown group param: " + key +
                                  " (known: size, radius, frac)");
    case ModelKind::kManhattan:
      if (key == "spacing") {
        cfg.manhattan_spacing_m = parse_double(key, value);
        require(cfg.manhattan_spacing_m > 0.0, key, "> 0");
        return;
      }
      if (key == "turn") {
        cfg.manhattan_turn_prob = parse_double(key, value);
        require(cfg.manhattan_turn_prob >= 0.0 &&
                    cfg.manhattan_turn_prob <= 1.0,
                key, "in [0, 1]");
        return;
      }
      throw std::invalid_argument("unknown manhattan param: " + key +
                                  " (known: spacing, turn)");
    case ModelKind::kTrace:
      if (key == "file") {
        cfg.trace_file = value;
        require(!cfg.trace_file.empty(), key, "a non-empty path");
        return;
      }
      throw std::invalid_argument("unknown trace param: " + key +
                                  " (known: file)");
    case ModelKind::kRandomWaypoint:
      throw std::invalid_argument("unknown waypoint param: " + key +
                                  " (waypoint takes no params; pause and "
                                  "speed are scenario flags)");
  }
  throw std::invalid_argument("unknown mobility param: " + key);
}

}  // namespace

std::string_view to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::kRandomWaypoint:
      return "waypoint";
    case ModelKind::kRandomWalk:
      return "walk";
    case ModelKind::kGaussMarkov:
      return "gauss-markov";
    case ModelKind::kGroup:
      return "group";
    case ModelKind::kManhattan:
      return "manhattan";
    case ModelKind::kTrace:
      return "trace";
  }
  return "?";
}

ModelKind model_from_string(std::string_view name) {
  const std::string n = util::lower(name);
  if (n == "waypoint" || n == "random-waypoint" || n == "rwp") {
    return ModelKind::kRandomWaypoint;
  }
  if (n == "walk" || n == "random-walk" || n == "rw") {
    return ModelKind::kRandomWalk;
  }
  if (n == "gauss-markov" || n == "gaussmarkov" || n == "gm") {
    return ModelKind::kGaussMarkov;
  }
  if (n == "group" || n == "rpgm") return ModelKind::kGroup;
  if (n == "manhattan" || n == "grid") return ModelKind::kManhattan;
  if (n == "trace" || n == "replay") return ModelKind::kTrace;
  throw std::invalid_argument("unknown mobility model: " + std::string(name) +
                              " (known: " + known_models_csv() +
                              ", trace:file=PATH)");
}

const std::vector<std::string>& known_mobility_models() {
  static const std::vector<std::string> models = {
      "waypoint", "walk", "gauss-markov", "group", "manhattan"};
  return models;
}

MobilityConfig parse_mobility_spec(std::string_view spec,
                                   MobilityConfig base) {
  const auto parts = util::split_spec(spec, kDomain);
  base.model = model_from_string(parts.head);
  for (const auto& [key, value] : parts.params) {
    apply_param(base, key, value);
  }
  if (base.model == ModelKind::kTrace && base.trace_file.empty()) {
    throw std::invalid_argument(
        "trace mobility requires a file: spell it trace:file=PATH");
  }
  return base;
}

void MobilityModel::snapshot(sim::Time t, std::vector<Vec2>& out) {
  out.clear();
  const auto n = static_cast<std::uint32_t>(size());
  out.reserve(n);
  for (std::uint32_t id = 0; id < n; ++id) {
    out.push_back(position_at(id, t));
  }
}

std::unique_ptr<MobilityModel> make_mobility_model(std::size_t num_nodes,
                                                   const MobilityConfig& cfg,
                                                   const sim::RngManager& rng) {
  switch (cfg.model) {
    case ModelKind::kRandomWaypoint:
      return std::make_unique<RandomWaypointModel>(num_nodes, cfg, rng);
    case ModelKind::kRandomWalk:
      return std::make_unique<RandomWalkModel>(num_nodes, cfg, rng);
    case ModelKind::kGaussMarkov:
      return std::make_unique<GaussMarkovModel>(num_nodes, cfg, rng);
    case ModelKind::kGroup:
      return std::make_unique<GroupMobilityModel>(num_nodes, cfg, rng);
    case ModelKind::kManhattan:
      return std::make_unique<ManhattanModel>(num_nodes, cfg, rng);
    case ModelKind::kTrace:
      return std::make_unique<TraceMobilityModel>(num_nodes, cfg);
  }
  throw std::invalid_argument("unknown mobility model kind");
}

MobilityManager::MobilityManager(std::size_t num_nodes,
                                 const MobilityConfig& cfg,
                                 const sim::RngManager& rng)
    : cfg_(cfg), model_(make_mobility_model(num_nodes, cfg, rng)) {}

}  // namespace rica::mobility
