#!/usr/bin/env python3
"""Structured-trace validator for CI's trace-smoke job.

Checks a JSONL trace produced by `--trace-out` line by line: every line must
parse as a JSON object, carry a known `type`, provide that type's full key
set, and use a stage from the documented vocabulary.  Sim-time stamps must
be non-decreasing across the file (records are emitted in event-execution
order).  Optionally also validates a `--perfetto` trace_event JSON (it must
parse and contain the metadata/slice/counter phases chrome://tracing needs)
and a `--series` CSV (header + fixed column count per row).

Stdlib only.  Exit status 0 when every check passes, 1 otherwise.

Usage: check_trace_schema.py TRACE.jsonl [--perfetto FILE] [--series FILE]
"""

import argparse
import json
import sys

SCHEMAS = {
    "packet": {
        "keys": ["type", "stage", "t_ns", "flow", "seq", "node", "src",
                 "dst", "peer", "hops", "bytes", "detail"],
        "stages": {"generated", "enqueued", "tx_start", "tx_end", "tx_fail",
                   "forwarded", "delivered", "dropped"},
    },
    "route": {
        "keys": ["type", "stage", "t_ns", "node", "src", "dst", "bid",
                 "metric", "protocol", "msg"],
        "stages": {"discovery_start", "discovery_retry", "discovery_failed",
                   "control_tx", "control_lost", "established",
                   "repair_start", "repaired", "link_break",
                   "topology_install"},
    },
    "kernel": {
        "keys": ["type", "t_ns", "events_executed", "batched_fires",
                 "pending"],
        "stages": None,
    },
}


def check_jsonl(path):
    errors = []
    counts = {}
    last_t = -1
    with open(path, "rb") as fh:
        for num, raw in enumerate(fh, 1):
            where = f"{path}:{num}"
            try:
                rec = json.loads(raw)
            except json.JSONDecodeError as e:
                errors.append(f"{where}: not valid JSON ({e})")
                continue
            rtype = rec.get("type")
            schema = SCHEMAS.get(rtype)
            if schema is None:
                errors.append(f"{where}: unknown record type {rtype!r}")
                continue
            counts[rtype] = counts.get(rtype, 0) + 1
            keys = list(rec.keys())
            if keys != schema["keys"]:
                errors.append(
                    f"{where}: {rtype} keys {keys} != {schema['keys']}")
            if schema["stages"] is not None:
                stage = rec.get("stage")
                if stage not in schema["stages"]:
                    errors.append(f"{where}: unknown {rtype} stage {stage!r}")
            t = rec.get("t_ns")
            if not isinstance(t, int) or t < 0:
                errors.append(f"{where}: t_ns must be a non-negative integer")
            elif t < last_t:
                errors.append(
                    f"{where}: t_ns {t} went backwards (prev {last_t})")
            else:
                last_t = t
    total = sum(counts.values())
    if total == 0:
        errors.append(f"{path}: empty trace")
    print(f"{path}: {total} records "
          + " ".join(f"{k}={v}" for k, v in sorted(counts.items())))
    return errors


def check_perfetto(path):
    errors = []
    try:
        with open(path, "rb") as fh:
            doc = json.load(fh)
    except json.JSONDecodeError as e:
        return [f"{path}: not valid JSON ({e})"]
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return [f"{path}: missing or empty traceEvents array"]
    phases = {e.get("ph") for e in events}
    for needed in ("M", "X", "C"):
        if needed not in phases:
            errors.append(f"{path}: no ph={needed!r} events")
    for e in events:
        if e.get("ph") in ("X", "C") and "ts" not in e:
            errors.append(f"{path}: event missing ts: {e}")
            break
    print(f"{path}: {len(events)} trace events, phases "
          + ",".join(sorted(p for p in phases if p)))
    return errors


def check_series(path):
    errors = []
    with open(path) as fh:
        header = fh.readline().rstrip("\n")
        want = ("t_s,pending_events,events_executed,buffered_packets,"
                "delivered,delivery_rate_pps,control_kbps")
        if header != want:
            errors.append(f"{path}: header {header!r} != {want!r}")
        ncols = len(want.split(","))
        rows = 0
        for num, line in enumerate(fh, 2):
            cells = line.rstrip("\n").split(",")
            if len(cells) != ncols:
                errors.append(f"{path}:{num}: {len(cells)} columns, "
                              f"expected {ncols}")
            rows += 1
        if rows == 0:
            errors.append(f"{path}: no sample rows")
    print(f"{path}: {rows} sample rows")
    return errors


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="JSONL trace from --trace-out")
    ap.add_argument("--perfetto", help="trace_event JSON from --perfetto-out")
    ap.add_argument("--series", help="time-series CSV from --series-out")
    args = ap.parse_args(argv[1:])

    errors = check_jsonl(args.trace)
    if args.perfetto:
        errors += check_perfetto(args.perfetto)
    if args.series:
        errors += check_series(args.series)
    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
