#!/usr/bin/env python3
"""Structured-trace validator for CI's trace-smoke job.

Checks a JSONL trace produced by `--trace-out` line by line: every line must
parse as a JSON object, carry a known `type`, provide that type's full key
set *in the fixed emission order*, and use a stage (or span kind) from the
documented vocabulary.  Sim-time stamps must be non-decreasing across the
file (records are emitted in event-execution order).  Span records get a
second pass: ids must be unique and nonzero, `start_ns + dur_ns == t_ns`,
and every nonzero `parent` must reference a span id that appears somewhere
in the file — spans are emitted when they *close*, so a parent legally
appears after its children.

Optionally also validates a `--perfetto` trace_event JSON (it must parse and
contain the metadata/slice/counter phases chrome://tracing needs), a
`--series` CSV (header + fixed column count per row), and a `--flight`
flight-recorder dump (one `type:flight` header line whose `retained` count
matches the record lines that follow, which are themselves schema-checked).

Stdlib only.  Exit status 0 when every check passes, 1 otherwise.

Usage: check_trace_schema.py TRACE.jsonl [--perfetto FILE] [--series FILE]
                             [--flight FILE]
"""

import argparse
import json
import sys

SCHEMAS = {
    "packet": {
        "keys": ["type", "stage", "t_ns", "flow", "seq", "node", "src",
                 "dst", "peer", "hops", "bytes", "detail"],
        "stages": {"generated", "enqueued", "tx_start", "tx_end", "tx_fail",
                   "forwarded", "delivered", "dropped"},
    },
    "route": {
        "keys": ["type", "stage", "t_ns", "node", "src", "dst", "bid",
                 "metric", "protocol", "msg", "bytes"],
        "stages": {"discovery_start", "discovery_retry", "discovery_failed",
                   "control_tx", "control_lost", "established",
                   "repair_start", "repaired", "link_break",
                   "topology_install"},
    },
    "kernel": {
        "keys": ["type", "t_ns", "events_executed", "batched_fires",
                 "pending"],
        "stages": None,
    },
    "span": {
        "keys": ["type", "kind", "t_ns", "span", "parent", "trace", "flow",
                 "seq", "node", "src", "dst", "start_ns", "dur_ns",
                 "detail"],
        "stages": None,
        "kinds": {"packet", "route_wait", "queue", "backoff", "retry",
                  "airtime", "discovery", "repair"},
    },
}

# Span kinds that are roots (parent == 0, span == trace).
ROOT_KINDS = {"packet", "discovery", "repair"}


def check_record(rec, where, spans, errors):
    """Validates one record dict; accumulates span ids/parents in `spans`."""
    rtype = rec.get("type")
    schema = SCHEMAS.get(rtype)
    if schema is None:
        errors.append(f"{where}: unknown record type {rtype!r}")
        return None
    keys = list(rec.keys())
    if keys != schema["keys"]:
        errors.append(f"{where}: {rtype} keys {keys} != {schema['keys']}")
    if schema["stages"] is not None:
        stage = rec.get("stage")
        if stage not in schema["stages"]:
            errors.append(f"{where}: unknown {rtype} stage {stage!r}")
    if rtype == "span":
        kind = rec.get("kind")
        if kind not in schema["kinds"]:
            errors.append(f"{where}: unknown span kind {kind!r}")
        sid, parent, trace = rec.get("span"), rec.get("parent"), \
            rec.get("trace")
        if not sid:
            errors.append(f"{where}: span id must be nonzero")
        elif sid in spans["ids"]:
            errors.append(f"{where}: duplicate span id {sid}")
        else:
            spans["ids"].add(sid)
        if kind in ROOT_KINDS:
            if parent != 0:
                errors.append(f"{where}: root kind {kind!r} with parent "
                              f"{parent}")
            if trace != sid:
                errors.append(f"{where}: root span {sid} with trace {trace}")
        elif parent:
            spans["parents"].append((where, parent))
        if rec.get("start_ns", 0) + rec.get("dur_ns", 0) != rec.get("t_ns"):
            errors.append(f"{where}: start_ns + dur_ns != t_ns")
    return rtype


def finish_spans(spans, errors):
    """Second pass: every parent reference must resolve (forward refs ok)."""
    for where, parent in spans["parents"]:
        if parent not in spans["ids"]:
            errors.append(f"{where}: parent span {parent} never emitted")


def check_jsonl(path):
    errors = []
    counts = {}
    spans = {"ids": set(), "parents": []}
    last_t = -1
    with open(path, "rb") as fh:
        for num, raw in enumerate(fh, 1):
            where = f"{path}:{num}"
            try:
                rec = json.loads(raw)
            except json.JSONDecodeError as e:
                errors.append(f"{where}: not valid JSON ({e})")
                continue
            rtype = check_record(rec, where, spans, errors)
            if rtype is None:
                continue
            counts[rtype] = counts.get(rtype, 0) + 1
            t = rec.get("t_ns")
            if not isinstance(t, int) or t < 0:
                errors.append(f"{where}: t_ns must be a non-negative integer")
            elif t < last_t:
                errors.append(
                    f"{where}: t_ns {t} went backwards (prev {last_t})")
            else:
                last_t = t
    finish_spans(spans, errors)
    total = sum(counts.values())
    if total == 0:
        errors.append(f"{path}: empty trace")
    print(f"{path}: {total} records "
          + " ".join(f"{k}={v}" for k, v in sorted(counts.items())))
    return errors


def check_flight(path):
    """A flight dump: one header line, then `retained` ordinary records.

    The ring holds the *newest* records of a longer run, so a retained
    child's parent may have rotated out — parent referential integrity is
    therefore NOT enforced here, only id uniqueness and per-record shape.
    """
    errors = []
    counts = {}
    spans = {"ids": set(), "parents": []}
    header = None
    records = 0
    last_t = -1
    with open(path, "rb") as fh:
        for num, raw in enumerate(fh, 1):
            where = f"{path}:{num}"
            try:
                rec = json.loads(raw)
            except json.JSONDecodeError as e:
                errors.append(f"{where}: not valid JSON ({e})")
                continue
            if num == 1:
                want = ["type", "t_ns", "capacity", "recorded", "retained",
                        "trigger"]
                if rec.get("type") != "flight":
                    errors.append(f"{where}: first line must be the flight "
                                  f"header, got type {rec.get('type')!r}")
                elif list(rec.keys()) != want:
                    errors.append(f"{where}: flight header keys "
                                  f"{list(rec.keys())} != {want}")
                else:
                    header = rec
                    if rec["retained"] > rec["capacity"]:
                        errors.append(f"{where}: retained > capacity")
                    if rec["retained"] > rec["recorded"]:
                        errors.append(f"{where}: retained > recorded")
                continue
            rtype = check_record(rec, where, spans, errors)
            if rtype is None:
                continue
            records += 1
            counts[rtype] = counts.get(rtype, 0) + 1
            t = rec.get("t_ns")
            if isinstance(t, int) and t >= last_t:
                last_t = t
            else:
                errors.append(
                    f"{where}: t_ns {t} went backwards (prev {last_t})")
    if header is None:
        errors.append(f"{path}: missing flight header line")
    elif header["retained"] != records:
        errors.append(f"{path}: header retained={header['retained']} but "
                      f"{records} record lines follow")
    trigger = header["trigger"] if header else "?"
    print(f"{path}: flight dump trigger={trigger} {records} records "
          + " ".join(f"{k}={v}" for k, v in sorted(counts.items())))
    return errors


def check_perfetto(path):
    errors = []
    try:
        with open(path, "rb") as fh:
            doc = json.load(fh)
    except json.JSONDecodeError as e:
        return [f"{path}: not valid JSON ({e})"]
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return [f"{path}: missing or empty traceEvents array"]
    phases = {e.get("ph") for e in events}
    for needed in ("M", "X", "C"):
        if needed not in phases:
            errors.append(f"{path}: no ph={needed!r} events")
    for e in events:
        if e.get("ph") in ("X", "C") and "ts" not in e:
            errors.append(f"{path}: event missing ts: {e}")
            break
    print(f"{path}: {len(events)} trace events, phases "
          + ",".join(sorted(p for p in phases if p)))
    return errors


def check_series(path):
    errors = []
    with open(path) as fh:
        header = fh.readline().rstrip("\n")
        want = ("t_s,pending_events,events_executed,buffered_packets,"
                "delivered,delivery_rate_pps,control_kbps")
        if header != want:
            errors.append(f"{path}: header {header!r} != {want!r}")
        ncols = len(want.split(","))
        rows = 0
        for num, line in enumerate(fh, 2):
            cells = line.rstrip("\n").split(",")
            if len(cells) != ncols:
                errors.append(f"{path}:{num}: {len(cells)} columns, "
                              f"expected {ncols}")
            rows += 1
        if rows == 0:
            errors.append(f"{path}: no sample rows")
    print(f"{path}: {rows} sample rows")
    return errors


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="JSONL trace from --trace-out")
    ap.add_argument("--perfetto", help="trace_event JSON from --perfetto-out")
    ap.add_argument("--series", help="time-series CSV from --series-out")
    ap.add_argument("--flight", help="flight-recorder dump from --flight-dump")
    args = ap.parse_args(argv[1:])

    errors = check_jsonl(args.trace)
    if args.perfetto:
        errors += check_perfetto(args.perfetto)
    if args.series:
        errors += check_series(args.series)
    if args.flight:
        errors += check_flight(args.flight)
    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
