#!/usr/bin/env python3
"""Benchmark regression guard for CI's bench-smoke job.

Compares a fresh google-benchmark JSON dump against the committed baseline
(BENCH_scale.json) and fails when:

* any benchmark shared by both files got more than THRESHOLD times slower;
* any baseline benchmark selected by --filter (all of them without a
  filter) is MISSING from the fresh run — a renamed or silently dropped
  benchmark must fail loudly, not shrink the guard's coverage.

Two context checks run first:

* `rica_build_type` must read "release" — a debug rica build makes every
  number meaningless, so that is a hard failure (the custom main() in
  bench/micro_bench.cpp stamps the field from NDEBUG);
* `library_build_type` is the google-benchmark library's own build flavor;
  a debug library only skews timings slightly, so it just warns (distro
  libbenchmark packages are routinely debug builds).

Baseline numbers were recorded on a 1-core container; CI runners differ, so
the threshold is deliberately loose (catching 1.5x cliffs, not 5% drift).

Usage: check_bench_regression.py <fresh.json> [baseline.json]
                                 [--filter REGEX]

--filter mirrors the --benchmark_filter the fresh run used, so the
missing-row check only demands the baselines that run was asked to produce.
"""

import json
import re
import sys

THRESHOLD = 1.5


def rows(doc):
    out = {}
    for b in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions were used.
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = (b["real_time"], b["time_unit"])
    return out


def parse_args(argv):
    positional = []
    bench_filter = None
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--filter":
            if i + 1 >= len(argv):
                print("FAIL: --filter needs a regex argument", file=sys.stderr)
                return None
            bench_filter = argv[i + 1]
            i += 2
        elif arg.startswith("--filter="):
            bench_filter = arg.split("=", 1)[1]
            i += 1
        else:
            positional.append(arg)
            i += 1
    if not positional:
        print(__doc__.strip(), file=sys.stderr)
        return None
    fresh = positional[0]
    base = positional[1] if len(positional) > 1 else "BENCH_scale.json"
    return fresh, base, bench_filter


def main(argv):
    args = parse_args(argv)
    if args is None:
        return 2
    fresh_path, base_path, bench_filter = args
    with open(fresh_path) as f:
        fresh = json.load(f)
    with open(base_path) as f:
        base = json.load(f)

    ctx = fresh.get("context", {})
    rica_build = ctx.get("rica_build_type", "unknown")
    if rica_build != "release":
        print(
            f"FAIL: benchmark binary built as '{rica_build}' "
            "(need a Release build: assertions and -O0 invalidate timings)"
        )
        return 1
    if ctx.get("library_build_type") == "debug":
        print(
            "WARN: google-benchmark library is a debug build "
            "(timings skew slightly; the distro package is usually to blame)"
        )

    fresh_rows = rows(fresh)
    base_rows = rows(base)

    # Every baseline row the filter selects must appear in the fresh run:
    # a benchmark that was renamed or dropped would otherwise silently fall
    # out of the guard while CI kept reporting green.
    pattern = re.compile(bench_filter) if bench_filter else None
    expected = sorted(
        name for name in base_rows
        if pattern is None or pattern.search(name)
    )
    missing = [name for name in expected if name not in fresh_rows]
    if missing:
        sel = f"matching --filter '{bench_filter}'" if bench_filter else \
            "in the baseline"
        print(f"FAIL: {len(missing)} committed baseline benchmark(s) {sel} "
              f"missing from the fresh run ({fresh_path}):")
        for name in missing:
            print(f"  missing: {name}")
        print(
            "A renamed or dropped benchmark must be re-recorded in "
            f"{base_path} (or the CI filter updated), not silently skipped."
        )
        return 1

    shared = sorted(set(fresh_rows) & set(base_rows))
    if not shared:
        print("FAIL: no benchmark names shared with the baseline "
              f"({base_path}) — wrong filter or stale baseline?")
        return 1

    failures = []
    for name in shared:
        new_t, new_u = fresh_rows[name]
        old_t, old_u = base_rows[name]
        if new_u != old_u:
            print(f"WARN: {name}: unit changed {old_u} -> {new_u}; skipped")
            continue
        ratio = new_t / old_t if old_t > 0 else float("inf")
        flag = "FAIL" if ratio > THRESHOLD else "  ok"
        print(f"{flag}: {name}: {old_t:.1f} -> {new_t:.1f} {new_u} "
              f"({ratio:.2f}x)")
        if ratio > THRESHOLD:
            failures.append(name)

    if failures:
        print(
            f"\n{len(failures)} benchmark(s) regressed past {THRESHOLD}x the "
            f"committed baseline ({base_path}). If the slowdown is intended, "
            "re-record the baseline from a Release build and commit it."
        )
        return 1
    print(f"\nAll {len(shared)} shared benchmarks within {THRESHOLD}x of "
          "baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
