#!/usr/bin/env python3
"""Benchmark regression guard for CI's bench-smoke job.

Compares a fresh google-benchmark JSON dump against the committed baseline
(BENCH_scale.json) and fails when any benchmark shared by both files got
more than THRESHOLD times slower.  Two context checks run first:

* `rica_build_type` must read "release" — a debug rica build makes every
  number meaningless, so that is a hard failure (the custom main() in
  bench/micro_bench.cpp stamps the field from NDEBUG);
* `library_build_type` is the google-benchmark library's own build flavor;
  a debug library only skews timings slightly, so it just warns (distro
  libbenchmark packages are routinely debug builds).

Baseline numbers were recorded on a 1-core container; CI runners differ, so
the threshold is deliberately loose (catching 1.5x cliffs, not 5% drift).

Usage: check_bench_regression.py <fresh.json> [baseline.json]
"""

import json
import sys

THRESHOLD = 1.5


def rows(doc):
    out = {}
    for b in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions were used.
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = (b["real_time"], b["time_unit"])
    return out


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    fresh_path = argv[1]
    base_path = argv[2] if len(argv) > 2 else "BENCH_scale.json"
    with open(fresh_path) as f:
        fresh = json.load(f)
    with open(base_path) as f:
        base = json.load(f)

    ctx = fresh.get("context", {})
    rica_build = ctx.get("rica_build_type", "unknown")
    if rica_build != "release":
        print(
            f"FAIL: benchmark binary built as '{rica_build}' "
            "(need a Release build: assertions and -O0 invalidate timings)"
        )
        return 1
    if ctx.get("library_build_type") == "debug":
        print(
            "WARN: google-benchmark library is a debug build "
            "(timings skew slightly; the distro package is usually to blame)"
        )

    fresh_rows = rows(fresh)
    base_rows = rows(base)
    shared = sorted(set(fresh_rows) & set(base_rows))
    if not shared:
        print("FAIL: no benchmark names shared with the baseline "
              f"({base_path}) — wrong filter or stale baseline?")
        return 1

    failures = []
    for name in shared:
        new_t, new_u = fresh_rows[name]
        old_t, old_u = base_rows[name]
        if new_u != old_u:
            print(f"WARN: {name}: unit changed {old_u} -> {new_u}; skipped")
            continue
        ratio = new_t / old_t if old_t > 0 else float("inf")
        flag = "FAIL" if ratio > THRESHOLD else "  ok"
        print(f"{flag}: {name}: {old_t:.1f} -> {new_t:.1f} {new_u} "
              f"({ratio:.2f}x)")
        if ratio > THRESHOLD:
            failures.append(name)

    if failures:
        print(
            f"\n{len(failures)} benchmark(s) regressed past {THRESHOLD}x the "
            f"committed baseline ({base_path}). If the slowdown is intended, "
            "re-record the baseline from a Release build and commit it."
        )
        return 1
    print(f"\nAll {len(shared)} shared benchmarks within {THRESHOLD}x of "
          "baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
