#!/usr/bin/env python3
"""Causal-chain query tool for span traces (`--span-trace` JSONL output).

Reconstructs each packet's causal chain from its span records — the root
`packet` span plus the `route_wait`/`queue`/`backoff`/`retry`/`airtime`
children that tile it — and reports:

  * a latency-decomposition table: how the end-to-end delay of delivered
    packets splits across components, with per-component p50/p95 over
    chains (`--decompose`, the default view);
  * per-discovery control-byte attribution: each discovery/repair episode
    joined against the `control_tx`/`control_lost` route records that fall
    inside its window at the requesting (src, dst), so a route's cost in
    control bytes is visible next to its latency (`--discoveries`);
  * one packet's full chain, span by span (`--trace ID` or `--flow F
    --seq S`).

`--assert-complete` turns the tool into a checker: every delivered packet
must have a chain whose children are contiguous (no gaps, no overlaps) and
whose durations sum *exactly* to the root's end-to-end delay, else exit 1.
CI runs this against the smoke trace; the span derivation is integer
nanosecond arithmetic end to end, so exactness is the contract, not a
tolerance.

Stdlib only.  Works on a `--trace-out` stream (spans interleaved with
packet/route records) and on flight-recorder dumps (`--flight` skips the
header line and tolerates chains truncated by the ring).

Usage: trace_query.py TRACE.jsonl [--decompose] [--discoveries]
                      [--trace ID | --flow F --seq S]
                      [--assert-complete] [--flight]
"""

import argparse
import json
import sys

PACKET_CHILD_KINDS = ("route_wait", "queue", "backoff", "retry", "airtime")


def load(path, flight=False):
    """Returns (roots, children_by_trace, route_records)."""
    roots = {}
    children = {}
    routes = []
    with open(path, "rb") as fh:
        for num, raw in enumerate(fh, 1):
            rec = json.loads(raw)
            rtype = rec.get("type")
            if flight and num == 1 and rtype == "flight":
                continue
            if rtype == "route":
                routes.append(rec)
            elif rtype == "span":
                if rec["kind"] in ("packet", "discovery", "repair"):
                    roots[rec["span"]] = rec
                else:
                    children.setdefault(rec["trace"], []).append(rec)
    for sibs in children.values():
        sibs.sort(key=lambda s: s["start_ns"])
    return roots, children, routes


def chain_errors(root, kids):
    """Why this chain is not a complete exact decomposition ([] if it is)."""
    errors = []
    cursor = root["start_ns"]
    for kid in kids:
        if kid["parent"] != root["span"]:
            errors.append(f"span {kid['span']} parent {kid['parent']} is not "
                          f"the root")
        if kid["start_ns"] != cursor:
            gap = kid["start_ns"] - cursor
            errors.append(f"span {kid['span']} ({kid['kind']}) starts "
                          f"{gap} ns after the previous span ends")
        cursor = kid["start_ns"] + kid["dur_ns"]
    if cursor != root["t_ns"]:
        errors.append(f"children end at {cursor} ns, root ends at "
                      f"{root['t_ns']} ns")
    if sum(k["dur_ns"] for k in kids) != root["dur_ns"]:
        errors.append("child durations do not sum to the end-to-end delay")
    return errors


def fmt_ms(ns):
    return f"{ns / 1e6:.3f}"


def percentile(xs, q):
    if not xs:
        return 0
    xs = sorted(xs)
    rank = max(0, min(len(xs) - 1, int(q / 100.0 * len(xs) + 0.5) - 1))
    return xs[rank]


def print_decomposition(packet_roots, children):
    delivered = [r for r in packet_roots if r["detail"] == "delivered"]
    print(f"{len(packet_roots)} packet chains, {len(delivered)} delivered")
    if not delivered:
        return
    totals = {k: 0 for k in PACKET_CHILD_KINDS}
    per_chain = {k: [] for k in PACKET_CHILD_KINDS}
    e2e = []
    for root in delivered:
        e2e.append(root["dur_ns"])
        by_kind = {k: 0 for k in PACKET_CHILD_KINDS}
        for kid in children.get(root["span"], []):
            by_kind[kid["kind"]] += kid["dur_ns"]
        for k in PACKET_CHILD_KINDS:
            totals[k] += by_kind[k]
            per_chain[k].append(by_kind[k])
    grand = sum(totals.values())
    print(f"\nlatency decomposition over {len(delivered)} delivered packets"
          f" (total {fmt_ms(grand)} ms):")
    print(f"  {'component':<12} {'total ms':>10} {'share':>7} "
          f"{'p50 ms':>9} {'p95 ms':>9}")
    for k in PACKET_CHILD_KINDS:
        share = 100.0 * totals[k] / grand if grand else 0.0
        print(f"  {k:<12} {fmt_ms(totals[k]):>10} {share:>6.1f}% "
              f"{fmt_ms(percentile(per_chain[k], 50)):>9} "
              f"{fmt_ms(percentile(per_chain[k], 95)):>9}")
    print(f"  {'end-to-end':<12} {fmt_ms(sum(e2e)):>10} {'100.0%':>7} "
          f"{fmt_ms(percentile(e2e, 50)):>9} "
          f"{fmt_ms(percentile(e2e, 95)):>9}")


def print_discoveries(roots, routes):
    episodes = sorted((r for r in roots.values()
                       if r["kind"] in ("discovery", "repair")),
                      key=lambda r: r["start_ns"])
    control = [r for r in routes
               if r["stage"] in ("control_tx", "control_lost")]
    print(f"\n{len(episodes)} discovery/repair episodes, "
          f"{len(control)} control transmissions:")
    print(f"  {'episode':<22} {'outcome':>11} {'ms':>9} "
          f"{'ctl msgs':>8} {'ctl bytes':>9}")
    for ep in episodes:
        # Attribute every control record for this (src, dst) pair inside
        # the episode's window; flooding relays share the originator's
        # (src, dst, bid), so the whole wave lands on its episode.
        msgs = [c for c in control
                if c["src"] == ep["src"] and c["dst"] == ep["dst"]
                and ep["start_ns"] <= c["t_ns"] <= ep["t_ns"]]
        label = f"{ep['kind']} {ep['src']}->{ep['dst']}"
        print(f"  {label:<22} {ep['detail']:>11} {fmt_ms(ep['dur_ns']):>9} "
              f"{len(msgs):>8} {sum(m['bytes'] for m in msgs):>9}")


def print_chain(root, kids):
    print(f"trace {root['span']}: flow {root['flow']} seq {root['seq']} "
          f"{root['src']}->{root['dst']} [{root['detail']}] "
          f"e2e {fmt_ms(root['dur_ns'])} ms")
    for kid in kids:
        print(f"  +{fmt_ms(kid['start_ns'] - root['start_ns']):>9} ms  "
              f"{kid['kind']:<12} {fmt_ms(kid['dur_ns']):>9} ms  "
              f"node {kid['node']:<4} {kid['detail']}")
    errs = chain_errors(root, kids)
    print("  chain: complete exact decomposition" if not errs
          else "  chain: INCOMPLETE\n" + "\n".join(f"    {e}" for e in errs))


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="JSONL trace containing span records")
    ap.add_argument("--decompose", action="store_true",
                    help="latency-decomposition table (default view)")
    ap.add_argument("--discoveries", action="store_true",
                    help="per-discovery control-byte attribution table")
    ap.add_argument("--trace-id", type=int, metavar="ID",
                    help="print one chain by trace id")
    ap.add_argument("--flow", type=int, help="print one chain by flow ...")
    ap.add_argument("--seq", type=int, help="... and sequence number")
    ap.add_argument("--assert-complete", action="store_true",
                    help="exit 1 unless every delivered packet has a "
                         "complete exact chain")
    ap.add_argument("--flight", action="store_true",
                    help="input is a flight-recorder dump (skip header)")
    args = ap.parse_args(argv[1:])

    roots, children, routes = load(args.trace, flight=args.flight)
    packet_roots = [r for r in roots.values() if r["kind"] == "packet"]

    if args.trace_id is not None or args.flow is not None:
        want = [r for r in packet_roots
                if r["span"] == args.trace_id
                or (args.flow is not None and r["flow"] == args.flow
                    and (args.seq is None or r["seq"] == args.seq))]
        if not want:
            print("no matching packet chain", file=sys.stderr)
            return 1
        for root in want:
            print_chain(root, children.get(root["span"], []))
        return 0

    if args.decompose or not args.discoveries:
        print_decomposition(packet_roots, children)
    if args.discoveries:
        print_discoveries(roots, routes)

    if args.assert_complete:
        delivered = [r for r in packet_roots if r["detail"] == "delivered"]
        bad = 0
        for root in delivered:
            errs = chain_errors(root, children.get(root["span"], []))
            if errs:
                bad += 1
                print(f"error: trace {root['span']} (flow {root['flow']} "
                      f"seq {root['seq']}):", file=sys.stderr)
                for e in errs:
                    print(f"  {e}", file=sys.stderr)
        ok = len(delivered) - bad
        print(f"\nassert-complete: {ok}/{len(delivered)} delivered packets "
              f"have complete exact causal chains")
        if bad or not delivered:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
