// Head-to-head comparison of all five protocols on one identical scenario
// (same seed => same mobility, same channel realization, same traffic).
// This is the condensed form of the paper's §III comparison.
//
// Flags: --preset NAME --mobility SPEC --pause S --mean-speed KMH
//        --rate PKTS --sim-time S --trials N --seed K
#include <exception>
#include <iostream>

#include "harness/flags.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"
#include "mobility/mobility_model.hpp"

int main(int argc, char** argv) {
  using namespace rica;
  try {
    const harness::Flags flags(argc, argv);
    harness::ScenarioConfig cfg =
        harness::preset_config(flags.get("preset", "paper"));
    cfg.mobility = flags.get("mobility", cfg.mobility);
    (void)mobility::parse_mobility_spec(cfg.mobility);  // fail fast on typos
    cfg.pause_s = flags.get("pause", cfg.pause_s);
    cfg.mean_speed_kmh = flags.get("mean-speed", 36.0);
    cfg.pkts_per_s = flags.get("rate", 10.0);
    cfg.sim_s = flags.get("sim-time", 100.0);
    cfg.seed = flags.get("seed", static_cast<std::uint64_t>(1));
    const int trials = flags.get("trials", 3);

    std::cout << "Five-protocol face-off: " << cfg.num_nodes << " nodes, "
              << cfg.mobility << " mobility, " << cfg.mean_speed_kmh
              << " km/h mean, " << cfg.pkts_per_s << " pkt/s x "
              << cfg.num_pairs << " flows, " << cfg.sim_s << " s x " << trials
              << " trials\n\n";

    harness::Table table({"protocol", "delivery_%", "delay_ms",
                          "overhead_kbps", "link_tput_kbps", "hops"});
    for (const auto proto : harness::kAllProtocols) {
      cfg.protocol = proto;
      std::cerr << "running " << harness::to_string(proto) << "...\n";
      const auto r = harness::run_trials(cfg, trials);
      table.add_row({std::string(harness::to_string(proto)),
                     harness::fmt(r.delivery_pct, 1),
                     harness::fmt(r.avg_delay_ms, 1),
                     harness::fmt(r.overhead_kbps, 1),
                     harness::fmt(r.avg_link_tput_kbps, 1),
                     harness::fmt(r.avg_hops, 2)});
    }
    table.print(std::cout);
    std::cout << "\nReading guide (paper, §III): RICA should lead delivery\n"
                 "and delay; link state should lead link throughput but pay\n"
                 "for it with overhead and, when nodes move, delivery.\n"
                 "Try --mobility walk|gauss-markov|group|manhattan to see\n"
                 "how the ranking shifts with the motion pattern.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
