// The paper's motivating scenario (§I): peer-to-peer file swapping among
// PDAs/notebooks that formed an ad hoc network.  Each "swap" is a flow of
// 512-byte chunks between two terminals; we run the swarm over RICA (or any
// protocol via --protocol) and report per-transfer outcomes.
//
// Flags: --protocol NAME --pairs N --rate PKTS --mean-speed KMH --sim-time S
#include <exception>
#include <iostream>

#include "harness/flags.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"
#include "net/network.hpp"
#include "traffic/poisson.hpp"

// Reuse the harness internals to assemble a custom network while keeping
// direct access to per-flow statistics.
#include "core/rica.hpp"
#include "routing/abr/abr.hpp"
#include "routing/aodv/aodv.hpp"
#include "routing/bgca/bgca.hpp"
#include "routing/linkstate/linkstate.hpp"

namespace {

using namespace rica;

void install(net::Network& network, harness::ProtocolKind kind,
             double flow_rate_bps) {
  for (net::NodeId id = 0; id < network.size(); ++id) {
    auto& node = network.node(id);
    switch (kind) {
      case harness::ProtocolKind::kRica:
        node.set_protocol(std::make_unique<core::RicaProtocol>(node));
        break;
      case harness::ProtocolKind::kAodv:
        node.set_protocol(std::make_unique<routing::AodvProtocol>(node));
        break;
      case harness::ProtocolKind::kBgca: {
        routing::BgcaConfig cfg;
        cfg.flow_rate_bps = flow_rate_bps;
        node.set_protocol(std::make_unique<routing::BgcaProtocol>(node, cfg));
        break;
      }
      case harness::ProtocolKind::kAbr:
        node.set_protocol(std::make_unique<routing::AbrProtocol>(node));
        break;
      case harness::ProtocolKind::kLinkState: {
        routing::LinkStateConfig cfg;
        cfg.num_nodes = network.size();
        node.set_protocol(
            std::make_unique<routing::LinkStateProtocol>(node, cfg));
        break;
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const harness::Flags flags(argc, argv);
    const auto kind =
        harness::protocol_from_string(flags.get("protocol", "rica"));
    const auto pairs = static_cast<std::size_t>(flags.get("pairs", 10));
    const double rate = flags.get("rate", 10.0);
    const double sim_s = flags.get("sim-time", 120.0);

    net::NetworkConfig cfg;
    cfg.num_nodes = 50;
    cfg.mobility.max_speed_mps = 2.0 * flags.get("mean-speed", 18.0) / 3.6;
    cfg.seed = flags.get("seed", static_cast<std::uint64_t>(1));

    net::Network network(cfg);
    install(network, kind, rate * 512 * 8);

    auto rng = network.rng().stream("flows");
    auto flows = traffic::random_flows(pairs, cfg.num_nodes, rate, rng);
    traffic::PoissonTraffic traffic(network, flows, 512,
                                    sim::seconds_f(sim_s),
                                    network.rng().stream("traffic"));
    network.start();
    traffic.start();

    std::cout << "File swarm over " << harness::to_string(kind) << ": "
              << pairs << " transfers, " << rate << " chunks/s each, "
              << sim_s << " s\n\n";
    network.simulator().run_until(sim::seconds_f(sim_s));

    harness::Table table({"transfer", "route", "chunks_sent",
                          "chunks_received", "loss_%", "avg_delay_ms"});
    const auto& per_flow = network.metrics().flow_stats();
    for (const auto& flow : flows) {
      const auto it = per_flow.find(flow.id);
      if (it == per_flow.end()) continue;
      const auto& st = it->second;
      const double loss =
          st.generated == 0
              ? 0.0
              : 100.0 * static_cast<double>(st.generated - st.delivered) /
                    static_cast<double>(st.generated);
      const double delay =
          st.delivered == 0
              ? 0.0
              : st.delay_sum_ms / static_cast<double>(st.delivered);
      table.add_row({"#" + std::to_string(flow.id),
                     std::to_string(flow.src) + " -> " +
                         std::to_string(flow.dst),
                     std::to_string(st.generated),
                     std::to_string(st.delivered), harness::fmt(loss, 1),
                     harness::fmt(delay, 1)});
    }
    table.print(std::cout);

    const auto summary =
        network.metrics().finalize(sim::seconds_f(sim_s));
    std::cout << "\nswarm total: " << summary.delivered << "/"
              << summary.generated << " chunks ("
              << harness::fmt(summary.delivery_pct, 1) << "%), avg delay "
              << harness::fmt(summary.avg_delay_ms, 1) << " ms, overhead "
              << harness::fmt(summary.overhead_kbps, 1) << " kbps\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
