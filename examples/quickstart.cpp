// Quickstart: run one RICA scenario at the paper's parameters and print the
// §III metrics.  Try `--protocol aodv --mean-speed 72` to compare, or
// `--mobility manhattan --warmup 20` to change the motion and skip the
// transient.  `--traffic` swaps the workload: `--traffic onoff:on=0.5,off=2`
// sends the same offered load in bursts, `--traffic reqresp` closes the
// loop (requests earn responses), and every model takes
// `pattern=random|sink|hotspot|ring` to reshape who talks to whom — e.g.
// `--traffic cbr:pattern=sink` is a constant-rate convergecast.
// `--record-trace FILE` records this scenario's exact mobility realization
// as a BonnMotion trace (`--trace-dt` sets the sample interval); replay it
// with `--mobility trace:file=FILE`.
//
// Observability: `--trace-out run.jsonl` streams structured packet/route/
// kernel lifecycle records (narrow with `--trace-filter packet,route`);
// `--span-trace` adds causal span records — one root per packet whose
// child durations (route_wait/queue/backoff/airtime/retry) sum exactly to
// its end-to-end delay; reconstruct chains with scripts/trace_query.py.
// `--perfetto-out run.json` writes a Chrome trace_event profile — open
// chrome://tracing (or https://ui.perfetto.dev) and load the file to see
// per-link data transmissions, per-node control traffic, and kernel
// counters on a shared timeline; `--series-out run.csv --sample-dt 0.5`
// samples queue depth / delivery rate / control overhead every 0.5 s.
// `--flight-recorder[=N]` keeps the last N trace records (default 65536)
// in a ring cheap enough to leave on; `--flight-dump FILE` writes them as
// JSONL at exit — or at the first anomaly when `--watchdogs` arms the
// drop-spike / discovery-storm / stalled-flow / queue-backlog monitors.
// All sim-time stamped: rerunning the same seed reproduces every output
// byte for byte.
//
// Scale: `--preset large-scale --shards 8 --threads 4` runs the 10k-node
// city on the sharded parallel kernel.  The metrics — and the stream hash —
// are identical for any --threads/--shards value, because the kernel
// commits events in global (time, sequence) order regardless of how the
// staging work is split (see DESIGN.md, "Sharded parallel kernel").
#include <cstdio>
#include <exception>
#include <string>

#include "harness/flags.hpp"
#include "harness/scenario.hpp"
#include "mobility/trace.hpp"
#include "obs/flight_recorder.hpp"
#include "sim/random.hpp"

int main(int argc, char** argv) {
  using namespace rica;
  try {
    const harness::Flags flags(argc, argv);
    harness::ScenarioConfig cfg;
    if (flags.has("preset")) {
      cfg = harness::preset_config(flags.get("preset", std::string{"paper"}));
    }
    cfg.protocol =
        harness::protocol_from_string(flags.get("protocol", "rica"));
    cfg.mean_speed_kmh = flags.get("mean-speed", 36.0);
    cfg.pkts_per_s = flags.get("rate", 10.0);
    cfg.sim_s = flags.get("sim-time", 60.0);
    cfg.warmup_s = flags.get("warmup", 0.0);
    cfg.mobility = flags.get("mobility", cfg.mobility);
    cfg.traffic = flags.get("traffic", cfg.traffic);
    cfg.seed = flags.get("seed", static_cast<std::uint64_t>(1));
    cfg.threads = static_cast<unsigned>(flags.get("threads", 1));
    cfg.shards = static_cast<std::uint32_t>(flags.get("shards", 1));
    cfg.trace_out = flags.get("trace-out", std::string{});
    cfg.trace_filter = flags.get("trace-filter", cfg.trace_filter);
    if (flags.has("span-trace") &&
        cfg.trace_filter.find("span") == std::string::npos) {
      cfg.trace_filter += ",span";
    }
    cfg.perfetto_out = flags.get("perfetto-out", std::string{});
    cfg.series_out = flags.get("series-out", std::string{});
    cfg.sample_dt_s = flags.get("sample-dt", 0.0);
    if (flags.has("flight-recorder")) {
      // Bare `--flight-recorder` parses as "1": treat it as "use the
      // default ring"; an explicit `=N` sets the capacity.
      const auto n = flags.get("flight-recorder", std::uint64_t{1});
      cfg.flight_recorder =
          n <= 1 ? obs::FlightRecorder::kDefaultCapacity
                 : static_cast<std::size_t>(n);
    }
    cfg.flight_dump = flags.get("flight-dump", std::string{});
    cfg.watchdogs = flags.has("watchdogs");

    std::printf("protocol=%s  nodes=%zu  field=%.0fm  mean speed=%.1f km/h\n",
                std::string(harness::to_string(cfg.protocol)).c_str(),
                cfg.num_nodes, cfg.field_m, cfg.mean_speed_kmh);
    std::printf("flows=%zu x %.0f pkt/s x %u B, sim time=%.0f s, seed=%llu\n",
                cfg.num_pairs, cfg.pkts_per_s, cfg.packet_bytes, cfg.sim_s,
                static_cast<unsigned long long>(cfg.seed));
    std::printf("mobility=%s  traffic=%s  warmup=%.0f s\n",
                cfg.mobility.c_str(), cfg.traffic.c_str(), cfg.warmup_s);
    std::printf("kernel: %u shard(s), %u staging thread(s)\n\n", cfg.shards,
                cfg.threads);

    if (flags.has("record-trace")) {
      // Rebuild the run's mobility realization (same seed -> same named RNG
      // streams -> identical trajectories) and record it for replay.
      const auto path = flags.get("record-trace", std::string{});
      const auto mob = harness::scenario_mobility_config(cfg);
      const sim::RngManager rng(cfg.seed);
      const auto model = mobility::make_mobility_model(cfg.num_nodes, mob, rng);
      const auto dt = sim::seconds_f(flags.get("trace-dt", 1.0));
      mobility::write_bonnmotion_trace(*model, sim::seconds_f(cfg.sim_s), dt,
                                       path);
      std::printf("recorded mobility to %s; replay with"
                  " --mobility trace:file=%s\n\n",
                  path.c_str(), path.c_str());
    }

    const auto r = harness::run_scenario(cfg);

    std::printf("generated packets     : %llu\n",
                static_cast<unsigned long long>(r.generated));
    std::printf("delivered packets     : %llu (%.1f%%)\n",
                static_cast<unsigned long long>(r.delivered), r.delivery_pct);
    std::printf("avg end-to-end delay  : %.1f ms (p50 %.1f / p95 %.1f /"
                " p99 %.1f)\n",
                r.avg_delay_ms, r.delay_p50_ms, r.delay_p95_ms,
                r.delay_p99_ms);
    std::printf("flow fairness (Jain)  : %.3f over %zu flows\n",
                r.jain_fairness, r.flow_summaries.size());
    std::printf("routing overhead      : %.1f kbps\n", r.overhead_kbps);
    std::printf("avg link throughput   : %.1f kbps\n", r.avg_link_tput_kbps);
    std::printf("avg route length      : %.2f hops\n", r.avg_hops);
    std::printf("control transmissions : %llu (%llu collided receptions)\n",
                static_cast<unsigned long long>(r.control_transmissions),
                static_cast<unsigned long long>(r.control_collisions));
    std::printf("drops: total=%llu overflow=%llu expired=%llu no-route=%llu "
                "link-break=%llu loop-cap=%llu\n",
                static_cast<unsigned long long>(r.dropped),
                static_cast<unsigned long long>(r.drops[0]),
                static_cast<unsigned long long>(r.drops[1]),
                static_cast<unsigned long long>(r.drops[2]),
                static_cast<unsigned long long>(r.drops[3]),
                static_cast<unsigned long long>(r.drops[4]));
    if (cfg.shards > 1) {
      const auto stat = [&r](const char* name) {
        const auto it = r.stats.find(name);
        return it == r.stats.end() ? 0.0 : it->second.value;
      };
      std::printf("sharded kernel        : %.0f windows, %.0f staged, "
                  "%.0f cross-shard sends (%.0f sync crossings)\n",
                  stat("kernel.windows"), stat("kernel.staged_events"),
                  stat("kernel.cross_shard_sends"),
                  stat("kernel.sync_crossings"));
    }
    if (!cfg.trace_out.empty()) {
      std::printf("structured trace      : %s\n", cfg.trace_out.c_str());
    }
    if (!cfg.perfetto_out.empty()) {
      std::printf("kernel profile        : %s (open in chrome://tracing or"
                  " ui.perfetto.dev)\n",
                  cfg.perfetto_out.c_str());
    }
    if (!cfg.series_out.empty()) {
      std::printf("time series           : %s\n", cfg.series_out.c_str());
    }
    if (cfg.watchdogs) {
      const auto stat = [&r](const char* name) {
        const auto it = r.stats.find(name);
        return it == r.stats.end() ? 0.0 : it->second.value;
      };
      std::printf("watchdogs             : drop_spike=%.0f"
                  " discovery_storm=%.0f stalled=%.0f backlog=%.0f\n",
                  stat("anomaly.drop_spike"), stat("anomaly.discovery_storm"),
                  stat("anomaly.stalled_flows"), stat("anomaly.queue_backlog"));
    }
    if (!cfg.flight_dump.empty()) {
      std::printf("flight dump           : %s\n", cfg.flight_dump.c_str());
    }
    if (flags.has("verbose")) {
      std::printf("\nper-flow (gen/del/drop, tput kbps, p95 ms):\n");
      for (const auto& fs : r.flow_summaries) {
        std::printf("  flow %-3u %6llu /%6llu /%6llu  %8.1f  %8.1f\n",
                    fs.flow, static_cast<unsigned long long>(fs.generated),
                    static_cast<unsigned long long>(fs.delivered),
                    static_cast<unsigned long long>(fs.dropped), fs.tput_kbps,
                    fs.delay_p95_ms);
      }
      std::printf("\ncounters:\n");
      for (const auto& [name, value] : r.counters) {
        std::printf("  %-28s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      }
      std::printf("\nregistry (c=counter, g=gauge):\n");
      for (const auto& [name, s] : r.stats) {
        std::printf("  %c %-26s %.2f\n",
                    s.kind == rica::obs::StatKind::kCounter ? 'c' : 'g',
                    name.c_str(), s.value);
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
