// Explore the paper's channel model directly: CSI class population by
// distance ring, and the class time series of a single fading link.  Useful
// for understanding *why* channel-adaptive routing pays off before diving
// into protocol behaviour.
//
// Flags: --preset NAME    population/field for the static sample (default:
//                         a dense 300-node variant of the paper field)
//        --mobility SPEC  model driving the moving pair (default waypoint)
//        --speed MPS      pair speed for the time series (default 10)
#include <algorithm>
#include <array>
#include <exception>
#include <iostream>
#include <string>

#include "channel/channel_model.hpp"
#include "harness/flags.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"
#include "mobility/mobility_model.hpp"

int main(int argc, char** argv) {
  using namespace rica;
  try {
    const harness::Flags flags(argc, argv);

    // Part 1: class population by distance, from a large static sample.
    // With --preset the sample uses that scenario's field and population
    // (minimum 100 nodes so the rings stay well filled).
    sim::RngManager rng(flags.get("seed", static_cast<std::uint64_t>(1)));
    std::size_t sample_nodes = 300;
    mobility::MobilityConfig wp;
    wp.field = mobility::Field{1000.0, 1000.0};
    if (flags.has("preset")) {
      const auto preset = harness::preset_config(
          flags.get("preset", std::string{"paper"}));
      sample_nodes = std::max<std::size_t>(100, preset.num_nodes);
      wp.field = mobility::Field{preset.field_m, preset.field_m};
    }
    wp.max_speed_mps = 0.0;
    mobility::MobilityManager mobility(sample_nodes, wp, rng);
    channel::ChannelModel model(channel::ChannelConfig{}, mobility, rng);

    constexpr int kRings = 5;
    std::array<std::array<int, 4>, kRings> hist{};
    std::array<int, kRings> totals{};
    for (std::uint32_t a = 0; a < sample_nodes; ++a) {
      for (std::uint32_t b = a + 1; b < sample_nodes; ++b) {
        const double d = mobility.node_distance(a, b, sim::Time::zero());
        if (d > 250.0) continue;
        const auto s = model.sample(a, b, sim::Time::zero());
        const int ring = std::min(kRings - 1, static_cast<int>(d / 50.0));
        ++hist[ring][static_cast<int>(s->csi)];
        ++totals[ring];
      }
    }
    std::cout << "CSI class population by link distance (static sample, "
              << sample_nodes << " nodes)\n";
    harness::Table table({"distance_m", "A_%", "B_%", "C_%", "D_%", "links"});
    for (int r = 0; r < kRings; ++r) {
      if (totals[r] == 0) continue;
      std::vector<std::string> row{std::to_string(r * 50) + "-" +
                                   std::to_string((r + 1) * 50)};
      for (int c = 0; c < 4; ++c) {
        row.push_back(harness::fmt(100.0 * hist[r][c] / totals[r], 1));
      }
      row.push_back(std::to_string(totals[r]));
      table.add_row(std::move(row));
    }
    table.print(std::cout);

    // Part 2: one moving pair's class over time, under a selectable model.
    const double speed = flags.get("speed", 10.0);
    const std::string spec = flags.get("mobility", std::string{"waypoint"});
    mobility::MobilityConfig wp2 = mobility::parse_mobility_spec(spec);
    wp2.field = mobility::Field{200.0, 200.0};  // stays in range
    wp2.max_speed_mps = speed;
    wp2.pause = sim::Time::zero();
    sim::RngManager rng2(7);
    mobility::MobilityManager pair(2, wp2, rng2);
    channel::ChannelModel link(channel::ChannelConfig{}, pair, rng2);

    std::cout << "\nOne link's CSI class, 200 ms samples, " << spec
              << " mobility, pair speed ~" << speed << " m/s each:\n";
    for (int row = 0; row < 4; ++row) {
      for (int i = 0; i < 60; ++i) {
        const auto t = sim::milliseconds(200 * (row * 60 + i));
        const auto s = link.sample(0, 1, t);
        std::cout << (s ? channel::to_string(s->csi) : "-");
      }
      std::cout << '\n';
    }
    std::cout << "\n(each character = 200 ms; A=250, B=150, C=75, D=50 kbps;"
                 "\n '-' = out of range)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
