// Fuzz target over the wire decoders (net/wire.hpp).
//
// Contract under fuzz: decode_control / decode_data_header either return a
// packet or throw wire::WireError — never crash, never read out of bounds,
// and every successfully decoded frame re-encodes to the identical bytes
// (the format has no padding or alternative encodings, so decoding is
// canonical).
//
// Two build modes share this file:
//   * libFuzzer (cmake -DRICA_BUILD_FUZZERS=ON with clang): the coverage-
//     guided `wire_fuzz` binary.
//   * RICA_FUZZ_STANDALONE: a corpus-free smoke driver (`wire_fuzz_smoke`,
//     run by ctest/CI) that pushes deterministic adversarial inputs —
//     random buffers, every truncation of every valid frame shape, and
//     every single-byte corruption — through the same entry point.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "net/wire.hpp"

namespace {

using namespace rica::net;

void check_canonical_control(const std::uint8_t* data, std::size_t size,
                             const ControlPacket& pkt) {
  std::vector<std::uint8_t> re;
  wire::encode_control(pkt, re);  // an accepted frame must re-encode
  if (re.size() != size || std::memcmp(re.data(), data, size) != 0) {
    std::fprintf(stderr, "wire_fuzz: control frame decodes but is not "
                         "canonical (%zu bytes)\n", size);
    std::abort();
  }
}

void check_canonical_data(const std::uint8_t* data, std::size_t size,
                          const DataPacket& pkt) {
  std::vector<std::uint8_t> re;
  wire::encode_data_header(pkt, re);
  // The input may carry payload bytes after the header; the header itself
  // must match byte for byte.
  if (size < re.size() || std::memcmp(re.data(), data, re.size()) != 0) {
    std::fprintf(stderr, "wire_fuzz: data header decodes but is not "
                         "canonical (%zu bytes)\n", size);
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  try {
    const ControlPacket pkt = wire::decode_control(data, size);
    check_canonical_control(data, size, pkt);
  } catch (const wire::WireError&) {
    // rejected — the expected outcome for malformed input
  }
  try {
    const DataPacket pkt = wire::decode_data_header(data, size);
    check_canonical_data(data, size, pkt);
  } catch (const wire::WireError&) {
  }
  return 0;
}

#ifdef RICA_FUZZ_STANDALONE

namespace {

/// Deterministic xorshift so the smoke run needs no corpus and no clock.
struct SmokeRng {
  std::uint64_t s = 0x9E3779B97F4A7C15ull;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

/// One valid frame per ControlPayload alternative (default-constructed
/// bodies; LSU also gets a populated row) plus a data-header frame — the
/// seeds every mutation below starts from.
std::vector<std::vector<std::uint8_t>> seed_frames() {
  std::vector<std::vector<std::uint8_t>> seeds;
  [&seeds]<std::size_t... I>(std::index_sequence<I...>) {
    ((wire::encode_control(
          make_control(kBroadcastId,
                       std::variant_alternative_t<I, ControlPayload>{}),
          seeds.emplace_back())),
     ...);
  }(std::make_index_sequence<std::variant_size_v<ControlPayload>>{});
  LsuMsg lsu;
  for (NodeId n = 0; n < 6; ++n) {
    lsu.links.emplace_back(n, rica::channel::CsiClass::B);
  }
  wire::encode_control(make_control(3, lsu), seeds.emplace_back());
  wire::encode_data_header(DataPacket{}, seeds.emplace_back());
  return seeds;
}

}  // namespace

int main() {
  std::size_t runs = 0;
  // Pure-noise buffers across the interesting length range.
  SmokeRng rng;
  for (std::size_t len = 0; len <= 96; ++len) {
    for (int iter = 0; iter < 64; ++iter) {
      std::vector<std::uint8_t> buf(len);
      for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next());
      LLVMFuzzerTestOneInput(buf.data(), buf.size());
      ++runs;
    }
  }
  // Structured mutations of valid frames: every truncation, one extra
  // byte, and every value of every byte position.
  for (const auto& seed : seed_frames()) {
    for (std::size_t len = 0; len <= seed.size(); ++len) {
      LLVMFuzzerTestOneInput(seed.data(), len);
      ++runs;
    }
    auto extended = seed;
    extended.push_back(0x00);
    LLVMFuzzerTestOneInput(extended.data(), extended.size());
    ++runs;
    for (std::size_t pos = 0; pos < seed.size(); ++pos) {
      auto mutated = seed;
      for (int v = 0; v < 256; ++v) {
        mutated[pos] = static_cast<std::uint8_t>(v);
        LLVMFuzzerTestOneInput(mutated.data(), mutated.size());
        ++runs;
      }
    }
  }
  std::printf("wire_fuzz_smoke: %zu inputs, 0 crashes\n", runs);
  return 0;
}

#endif  // RICA_FUZZ_STANDALONE
