// Figure 6: aggregate network throughput (kbps, 4-second buckets) over
// simulation time, for 20 pkt/s (a) and 60 pkt/s (b) per pair.
// The paper does not state the mobility for this figure; we use the mid
// speed 36 km/h (EXPERIMENTS.md records this assumption).
#include <exception>
#include <iostream>

#include "harness/flags.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"

namespace {

void run_panel(const rica::harness::BenchScale& scale, double load,
               double speed, const std::string& title) {
  using namespace rica::harness;
  std::vector<std::string> header{"time_s"};
  std::vector<std::vector<double>> series;
  for (const auto proto : kAllProtocols) {
    ScenarioConfig cfg = preset_config(scale.preset);
    cfg.protocol = proto;
    cfg.mean_speed_kmh = speed;
    cfg.pkts_per_s = load;
    cfg.sim_s = scale.sim_s;
    cfg.seed = scale.seed;
    std::cerr << "[fig6] " << to_string(proto) << " @ " << load
              << " pkt/s...\n";
    const auto r = run_trials(cfg, scale.trials);
    header.emplace_back(to_string(proto));
    series.push_back(r.tput_kbps_series);
  }
  std::size_t len = 0;
  for (const auto& s : series) len = std::max(len, s.size());

  Table table(std::move(header));
  for (std::size_t i = 0; i < len; ++i) {
    std::vector<std::string> row{fmt(4.0 * static_cast<double>(i + 1), 0)};
    for (const auto& s : series) {
      row.push_back(i < s.size() ? fmt(s[i], 1) : "-");
    }
    table.add_row(std::move(row));
  }
  std::cout << title << '\n';
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rica::harness;
  try {
    const Flags flags(argc, argv);
    const BenchScale scale = bench_scale(flags, /*def_trials=*/3,
                                         /*def_sim_s=*/100.0);
    const double speed = flags.get("mean-speed", 36.0);
    run_panel(scale, 20.0, speed,
              "Figure 6(a): aggregate throughput (kbps per 4 s), 20 pkt/s");
    run_panel(scale, 60.0, speed,
              "Figure 6(b): aggregate throughput (kbps per 4 s), 60 pkt/s");
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
