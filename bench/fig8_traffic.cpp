// Figure 8 (extension, not in the paper): protocol x traffic-model
// comparison at the paper preset.  The paper evaluates RICA under exactly
// one workload — Poisson arrivals on random terminal pairs — but on-demand
// discovery is driven by *when* flows want routes: constant-rate streams
// (arXiv:1109.6502), bursty correlated demand (arXiv:1608.08725), and
// closed-loop request/response each stress it differently.  This bench runs
// all five protocols under the selected traffic specs at one speed/load
// point and tabulates delivery, delay (mean and p95), overhead, and Jain's
// fairness index over per-flow delivered throughput.
//
// Flags: common scale flags (see bench_scale, including --warmup), plus
//   --speed KMH     mean speed of the comparison point (default 36)
//   --rate PKTS     offered load per flow (default 10)
//   --models CSV    traffic specs to compare (default: all five models;
//                   note specs with commas in their params cannot be
//                   spelled in this list — use repeated runs instead)
//   --pattern NAME  shorthand appending pattern=NAME to every spec that
//                   does not already choose one (random, sink, hotspot,
//                   ring), so one flag turns the whole table convergecast
//   --json FILE     also record the grid as a compact JSON object (the
//                   bench-smoke CI artifact and BENCH_scale.json rows)
#include <exception>
#include <fstream>
#include <functional>
#include <iostream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "harness/flags.hpp"
#include "harness/sweep.hpp"
#include "harness/table.hpp"
#include "traffic/traffic_model.hpp"

namespace {

using namespace rica;

// (print_axis_figure in harness/sweep.hpp renders each sub-figure; the
// table below is the single source of truth for what gets rendered.)

/// One row of the figure: the same table drives the printed sub-figures
/// (8(a), 8(b), ...) and the --json recording, so the two can never
/// desynchronize.
struct Fig8Metric {
  const char* json_name;
  const char* title;  ///< human title fragment for the printed figure
  int precision;
  double (*get)(const harness::ScenarioResult&);
};

constexpr Fig8Metric kMetrics[] = {
    {"delivery_pct", "packet delivery (%)", 1,
     [](const harness::ScenarioResult& r) { return r.delivery_pct; }},
    {"delay_ms", "end-to-end delay (ms)", 1,
     [](const harness::ScenarioResult& r) { return r.avg_delay_ms; }},
    {"delay_p95_ms", "p95 end-to-end delay (ms)", 1,
     [](const harness::ScenarioResult& r) { return r.delay_p95_ms; }},
    {"overhead_kbps", "control overhead (kbps)", 1,
     [](const harness::ScenarioResult& r) { return r.overhead_kbps; }},
    {"jain_fairness", "Jain fairness of per-flow throughput", 3,
     [](const harness::ScenarioResult& r) { return r.jain_fairness; }},
};

/// The grid cell for (traffic spec, protocol), or nullptr.
const harness::SweepPoint* cell_for(
    const std::vector<harness::SweepPoint>& grid, const std::string& model,
    harness::ProtocolKind proto) {
  for (const auto& cell : grid) {
    if (cell.traffic == model && cell.protocol == proto) return &cell;
  }
  return nullptr;
}

/// Compact JSON of the grid: metric -> traffic spec -> protocol -> value.
void write_json(const std::string& path,
                const std::vector<harness::SweepPoint>& grid,
                const std::vector<std::string>& models) {
  std::ofstream os(path);
  os << "{\n";
  const auto num_metrics = std::size(kMetrics);
  for (std::size_t m = 0; m < num_metrics; ++m) {
    os << "  \"" << kMetrics[m].json_name << "\": {\n";
    for (std::size_t i = 0; i < models.size(); ++i) {
      os << "    \"" << models[i] << "\": {";
      bool first = true;
      for (const auto proto : harness::kAllProtocols) {
        if (const auto* cell = cell_for(grid, models[i], proto)) {
          os << (first ? "" : ", ") << '"' << harness::to_string(proto)
             << "\": " << harness::fmt(kMetrics[m].get(cell->result), 3);
          first = false;
        }
      }
      os << (i + 1 < models.size() ? "},\n" : "}\n");
    }
    os << (m + 1 < num_metrics ? "  },\n" : "  }\n");
  }
  os << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rica;
  try {
    const harness::Flags flags(argc, argv);
    const harness::BenchScale scale =
        harness::bench_scale(flags, /*def_trials=*/3, /*def_sim_s=*/100.0);
    const double speed = flags.get("speed", 36.0);
    const double rate = flags.get("rate", 10.0);

    std::vector<std::string> models;
    if (flags.has("models")) {
      std::stringstream ss(flags.get("models", std::string{}));
      std::string item;
      while (std::getline(ss, item, ',')) {
        if (!item.empty()) models.push_back(item);
      }
    } else if (flags.has("traffic")) {
      // Honor the shared flag when given explicitly: a single-model
      // "figure" is a one-row table, not a silent all-model sweep.
      models = {scale.traffic};
    } else {
      models = traffic::known_traffic_models();
    }
    if (flags.has("pattern")) {
      const std::string pattern = flags.get("pattern", std::string{});
      for (auto& model : models) {
        if (model.find("pattern=") != std::string::npos) continue;
        model += (model.find(':') == std::string::npos ? ":" : ",");
        model += "pattern=" + pattern;
      }
    }

    const auto grid =
        run_speed_sweep({speed}, {rate}, {scale.mobility}, models, scale);
    const std::string point = " at " + harness::fmt(speed, 0) + " km/h, " +
                              harness::fmt(rate, 0) + " pkt/s (" +
                              scale.preset + " preset, " + scale.mobility +
                              " mobility)";
    for (std::size_t m = 0; m < std::size(kMetrics); ++m) {
      const std::string label(1, static_cast<char>('a' + m));
      harness::print_axis_figure(
          std::cout, grid, models, "traffic",
          "Figure 8(" + label + "): " + kMetrics[m].title +
              " by traffic model" + point,
          [](const harness::SweepPoint& cell) { return cell.traffic; },
          kMetrics[m].get, kMetrics[m].precision);
    }
    if (flags.has("json")) {
      const auto path = flags.get("json", std::string{});
      write_json(path, grid, models);
      std::cerr << "[fig8] wrote " << path << '\n';
    }
    std::cout << "Reading guide: poisson is the paper's setting; cbr holds\n"
                 "the gap constant (queues never see a burst), onoff and\n"
                 "pareto concentrate the same offered load into bursts that\n"
                 "hit cold routes, and reqresp closes the loop — its load\n"
                 "adapts to what the network delivers, and both endpoints\n"
                 "originate data.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
