// Figure 7 (extension, not in the paper): protocol x mobility-model
// comparison at the paper preset.  The paper evaluates RICA only under
// random-waypoint motion, but its channel model is driven by distance moved,
// so protocol rankings can shift with the motion pattern; this bench runs
// all five protocols under all five mobility models at one speed/load point
// and tabulates delivery, delay, and overhead per model.
//
// Flags: common scale flags (see bench_scale, including --warmup), plus
//   --speed KMH   mean speed of the comparison point (default 36)
//   --rate PKTS   offered load per flow (default 10)
//   --models CSV  mobility specs to compare (default: all five synthetic
//                 models; note `trace:file=PATH` specs contain no comma, so
//                 they compose with this list)
//   --trace FILE  shorthand appending `trace:file=FILE` to the model list,
//                 putting a replayed real-world trace next to the synthetic
//                 models in the same table
#include <exception>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/flags.hpp"
#include "harness/sweep.hpp"
#include "harness/table.hpp"
#include "mobility/mobility_model.hpp"

namespace {

using namespace rica;

void print_mobility_figure(
    const std::vector<harness::SweepPoint>& grid,
    const std::vector<std::string>& models, const std::string& title,
    const std::function<double(const harness::ScenarioResult&)>& metric,
    int precision) {
  harness::print_axis_figure(
      std::cout, grid, models, "mobility", title,
      [](const harness::SweepPoint& cell) { return cell.mobility; }, metric,
      precision);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rica;
  try {
    const harness::Flags flags(argc, argv);
    const harness::BenchScale scale =
        harness::bench_scale(flags, /*def_trials=*/3, /*def_sim_s=*/100.0);
    const double speed = flags.get("speed", 36.0);
    const double rate = flags.get("rate", 10.0);

    std::vector<std::string> models;
    if (flags.has("models")) {
      std::stringstream ss(flags.get("models", std::string{}));
      std::string item;
      while (std::getline(ss, item, ',')) {
        if (!item.empty()) models.push_back(item);
      }
    } else if (flags.has("mobility")) {
      // Honor the shared flag when given explicitly: a single-model "figure"
      // is a one-row table, not a silent all-model sweep.
      models = {scale.mobility};
    } else {
      models = mobility::known_mobility_models();
    }
    if (flags.has("trace")) {
      models.push_back("trace:file=" + flags.get("trace", std::string{}));
    }

    const auto grid = run_speed_sweep({speed}, {rate}, models, scale);
    const std::string point = " at " + harness::fmt(speed, 0) + " km/h, " +
                              harness::fmt(rate, 0) + " pkt/s (" +
                              scale.preset + " preset)";
    print_mobility_figure(
        grid, models, "Figure 7(a): packet delivery (%) by mobility model" +
                          point,
        [](const harness::ScenarioResult& r) { return r.delivery_pct; }, 1);
    print_mobility_figure(
        grid, models,
        "Figure 7(b): end-to-end delay (ms) by mobility model" + point,
        [](const harness::ScenarioResult& r) { return r.avg_delay_ms; }, 1);
    print_mobility_figure(
        grid, models,
        "Figure 7(c): control overhead (kbps) by mobility model" + point,
        [](const harness::ScenarioResult& r) { return r.overhead_kbps; }, 1);
    print_mobility_figure(
        grid, models,
        "Figure 7(d): kernel events executed (millions, all trials) by"
        " mobility model" + point,
        [](const harness::ScenarioResult& r) {
          return static_cast<double>(r.events_executed) * 1e-6;
        },
        2);
    print_mobility_figure(
        grid, models,
        "Figure 7(e): peak pending events (worst trial) by mobility model" +
            point,
        [](const harness::ScenarioResult& r) {
          return static_cast<double>(r.peak_pending_events);
        },
        0);
    print_mobility_figure(
        grid, models,
        "Figure 7(f): event closures spilled past the 128 B inline buffer"
        " (heap_fallbacks, all trials) by mobility model" + point,
        [](const harness::ScenarioResult& r) {
          return static_cast<double>(r.heap_fallbacks);
        },
        0);
    std::cout << "Reading guide: waypoint is the paper's setting; group\n"
                 "motion keeps flows inside a neighborhood (route lifetimes\n"
                 "stretch), while Gauss-Markov and Manhattan sustain motion\n"
                 "without pauses, stressing route repair hardest.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
