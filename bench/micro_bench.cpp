// Engine micro-benchmarks (google-benchmark): event queue, channel sampling,
// mobility evaluation, Dijkstra, and a full-stack end-to-end run.  Not a
// paper figure — these guard the simulator's performance so the paper-scale
// sweeps (25 trials x 500 s x 5 protocols) stay tractable.
#include <benchmark/benchmark.h>

#include "channel/channel_model.hpp"
#include "harness/scenario.hpp"
#include "mobility/random_waypoint.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace rica;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  sim::EventQueue q;
  sim::RandomStream rng(1);
  std::int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      q.schedule(sim::Time{t + rng.uniform_int(0, 1'000'000)}, [] {});
    }
    for (int i = 0; i < 64; ++i) {
      auto fired = q.pop();
      t = fired.at.nanos();
      benchmark::DoNotOptimize(fired.id);
    }
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_SimulatorTimerChain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int count = 0;
    std::function<void()> tick = [&] {
      if (++count < 1000) sim.after(sim::microseconds(10), tick);
    };
    sim.after(sim::microseconds(10), tick);
    sim.run_until(sim::seconds(1));
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorTimerChain);

void BM_MobilityPositionQuery(benchmark::State& state) {
  sim::RngManager rng(7);
  mobility::WaypointConfig cfg;
  cfg.max_speed_mps = 20.0;
  mobility::MobilityManager mgr(50, cfg, rng);
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 1'000'000;  // 1 ms forward
    for (std::uint32_t n = 0; n < 50; ++n) {
      benchmark::DoNotOptimize(mgr.position(n, sim::Time{t}));
    }
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_MobilityPositionQuery);

void BM_ChannelSample(benchmark::State& state) {
  sim::RngManager rng(11);
  mobility::WaypointConfig wcfg;
  wcfg.max_speed_mps = 10.0;
  mobility::MobilityManager mgr(50, wcfg, rng);
  channel::ChannelModel channel(channel::ChannelConfig{}, mgr, rng);
  std::int64_t t = 0;
  std::uint32_t a = 0;
  for (auto _ : state) {
    t += 100'000;  // 0.1 ms
    a = (a + 1) % 49;
    benchmark::DoNotOptimize(channel.sample(a, a + 1, sim::Time{t}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelSample);

void BM_NeighborScan(benchmark::State& state) {
  sim::RngManager rng(13);
  mobility::WaypointConfig wcfg;
  wcfg.max_speed_mps = 10.0;
  mobility::MobilityManager mgr(50, wcfg, rng);
  channel::ChannelModel channel(channel::ChannelConfig{}, mgr, rng);
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 1'000'000;
    benchmark::DoNotOptimize(channel.neighbors_of(0, sim::Time{t}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NeighborScan);

void BM_FullStackScenario(benchmark::State& state) {
  // One second of simulated network per iteration, full 50-node stack.
  const auto proto = static_cast<harness::ProtocolKind>(state.range(0));
  for (auto _ : state) {
    harness::ScenarioConfig cfg;
    cfg.protocol = proto;
    cfg.sim_s = 1.0;
    cfg.mean_speed_kmh = 36.0;
    const auto r = harness::run_scenario(cfg);
    benchmark::DoNotOptimize(r.delivered);
  }
}
BENCHMARK(BM_FullStackScenario)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
