// Engine micro-benchmarks (google-benchmark): event queue, channel sampling,
// mobility evaluation, Dijkstra, and a full-stack end-to-end run.  Not a
// paper figure — these guard the simulator's performance so the paper-scale
// sweeps (25 trials x 500 s x 5 protocols) stay tractable.
#include <benchmark/benchmark.h>

#include "channel/channel_model.hpp"
#include "harness/flags.hpp"
#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "mobility/mobility_model.hpp"
#include "sim/event_engine.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace rica;

/// Field side for a population, taken from the scenario preset with that
/// population (paper/dense-urban/large-scale) so bench density tracks any
/// preset retuning.
double field_for(std::int64_t num_nodes) {
  for (const auto& preset : harness::scenario_presets()) {
    if (preset.num_nodes == static_cast<std::size_t>(num_nodes)) {
      return preset.field_m;
    }
  }
  return 1000.0;
}

// -- event-kernel benchmarks -------------------------------------------------
// The slab-backed timing wheel on a mixed-delay schedule/pop workload (64
// events in flight, delays spread over the protocol stack's 0..1 ms range)
// and on the Timer rearm churn pattern.  These rows are the perf-regression
// guard's inputs (scripts/check_bench_regression.py vs BENCH_scale.json).

void BM_EventEngineScheduleAndPop(benchmark::State& state) {
  sim::EventEngine q;
  sim::RandomStream rng(1);
  std::int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      q.schedule(sim::Time{t + rng.uniform_int(0, 1'000'000)}, [] {});
    }
    for (int i = 0; i < 64; ++i) {
      auto fired = q.fire_next();
      t = fired.at.nanos();
      benchmark::DoNotOptimize(fired.id);
    }
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_EventEngineScheduleAndPop);

// Cancel-heavy churn: the protocol stack's Timer rearm pattern (schedule,
// cancel, schedule again).  The wheel unlinks in O(1) and recycles the slot.

void BM_EventEngineCancelChurn(benchmark::State& state) {
  sim::EventEngine q;
  sim::RandomStream rng(3);
  std::int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 32; ++i) {
      const auto id =
          q.schedule(sim::Time{t + rng.uniform_int(0, 1'000'000)}, [] {});
      q.cancel(id);
      q.schedule(sim::Time{t + rng.uniform_int(0, 1'000'000)}, [] {});
    }
    for (int i = 0; i < 32; ++i) t = q.fire_next().at.nanos();
  }
  state.SetItemsProcessed(state.iterations() * 96);
}
BENCHMARK(BM_EventEngineCancelChurn);

void BM_SimulatorTimerChain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int count = 0;
    std::function<void()> tick = [&] {
      if (++count < 1000) sim.after(sim::microseconds(10), tick);
    };
    sim.after(sim::microseconds(10), tick);
    sim.run_until(sim::seconds(1));
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorTimerChain);

void BM_MobilityPositionQuery(benchmark::State& state) {
  sim::RngManager rng(7);
  mobility::MobilityConfig cfg;
  cfg.max_speed_mps = 20.0;
  mobility::MobilityManager mgr(50, cfg, rng);
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 1'000'000;  // 1 ms forward
    for (std::uint32_t n = 0; n < 50; ++n) {
      benchmark::DoNotOptimize(mgr.position(n, sim::Time{t}));
    }
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_MobilityPositionQuery);

// Per-model snapshot() cost at the neighbor index's rebuild cadence
// (250 ms epochs, 200 nodes): what one index rebuild pays for mobility
// evaluation under each trajectory model.
void BM_MobilitySnapshot(benchmark::State& state, const char* spec) {
  sim::RngManager rng(7);
  auto cfg = mobility::parse_mobility_spec(spec);
  cfg.max_speed_mps = 20.0;
  mobility::MobilityManager mgr(200, cfg, rng);
  std::vector<mobility::Vec2> out;
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 250'000'000;  // one rebuild epoch forward
    mgr.snapshot(sim::Time{t}, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK_CAPTURE(BM_MobilitySnapshot, waypoint, "waypoint");
BENCHMARK_CAPTURE(BM_MobilitySnapshot, walk, "walk");
BENCHMARK_CAPTURE(BM_MobilitySnapshot, gauss_markov, "gauss-markov");
BENCHMARK_CAPTURE(BM_MobilitySnapshot, group, "group");
BENCHMARK_CAPTURE(BM_MobilitySnapshot, manhattan, "manhattan");

void BM_ChannelSample(benchmark::State& state) {
  sim::RngManager rng(11);
  mobility::MobilityConfig wcfg;
  wcfg.max_speed_mps = 10.0;
  mobility::MobilityManager mgr(50, wcfg, rng);
  channel::ChannelModel channel(channel::ChannelConfig{}, mgr, rng);
  std::int64_t t = 0;
  std::uint32_t a = 0;
  for (auto _ : state) {
    t += 100'000;  // 0.1 ms
    a = (a + 1) % 49;
    benchmark::DoNotOptimize(channel.sample(a, a + 1, sim::Time{t}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelSample);

void BM_NeighborScan(benchmark::State& state) {
  sim::RngManager rng(13);
  mobility::MobilityConfig wcfg;
  wcfg.max_speed_mps = 10.0;
  mobility::MobilityManager mgr(50, wcfg, rng);
  channel::ChannelModel channel(channel::ChannelConfig{}, mgr, rng);
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 1'000'000;
    benchmark::DoNotOptimize(channel.neighbors_of(0, sim::Time{t}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NeighborScan);

// Neighbor query scaling: the spatial grid index vs the brute-force O(N)
// scan, at 50/200/500 nodes (paper / dense-urban / large-scale densities).
// The scale-out acceptance bar is >=5x at 500 nodes (BENCH_scale.json).
void neighbor_query_bench(benchmark::State& state, bool use_index) {
  const std::int64_t n = state.range(0);
  sim::RngManager rng(13);
  mobility::MobilityConfig wcfg;
  wcfg.field = mobility::Field{field_for(n), field_for(n)};
  wcfg.max_speed_mps = 10.0;
  mobility::MobilityManager mgr(static_cast<std::size_t>(n), wcfg, rng);
  channel::ChannelConfig ccfg;
  ccfg.use_neighbor_index = use_index;
  channel::ChannelModel channel(ccfg, mgr, rng);
  std::int64_t t = 0;
  std::uint32_t node = 0;
  for (auto _ : state) {
    t += 1'000'000;  // 1 ms forward: amortizes index rebuilds as a run does
    node = (node + 1) % static_cast<std::uint32_t>(n);
    benchmark::DoNotOptimize(
        use_index ? channel.neighbors_of(node, sim::Time{t})
                  : channel.neighbors_of_bruteforce(node, sim::Time{t}));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_NeighborQueryGrid(benchmark::State& state) {
  neighbor_query_bench(state, /*use_index=*/true);
}
BENCHMARK(BM_NeighborQueryGrid)->Arg(50)->Arg(200)->Arg(500);

void BM_NeighborQueryBrute(benchmark::State& state) {
  neighbor_query_bench(state, /*use_index=*/false);
}
BENCHMARK(BM_NeighborQueryBrute)->Arg(50)->Arg(200)->Arg(500);

void BM_FullStackScenario(benchmark::State& state) {
  // One second of simulated network per iteration, full 50-node stack.
  const auto proto = static_cast<harness::ProtocolKind>(state.range(0));
  for (auto _ : state) {
    harness::ScenarioConfig cfg;
    cfg.protocol = proto;
    cfg.sim_s = 1.0;
    cfg.mean_speed_kmh = 36.0;
    const auto r = harness::run_scenario(cfg);
    benchmark::DoNotOptimize(r.delivered);
  }
}
BENCHMARK(BM_FullStackScenario)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond);

// The contention-heavy end-to-end row: one second of the dense-urban preset
// (200 nodes / 1 km², RICA).  This is where batch-firing and the pooled/flat
// memory paths earn their keep, and a key perf-regression-guard input.
void BM_FullStackDenseUrban(benchmark::State& state) {
  for (auto _ : state) {
    harness::ScenarioConfig cfg = harness::preset_config("dense-urban");
    cfg.sim_s = 1.0;
    const auto r = harness::run_scenario(cfg);
    benchmark::DoNotOptimize(r.delivered);
  }
}
BENCHMARK(BM_FullStackDenseUrban)->Unit(benchmark::kMillisecond);

// Sweep throughput: the 5-protocol grid slice at two speeds, on `range(0)`
// worker threads.  Measures the parallel harness's wall-clock scaling, so
// real time (not CPU time) is the meaningful axis.
void BM_SweepThroughput(benchmark::State& state) {
  harness::BenchScale scale{};
  scale.trials = 1;
  scale.sim_s = 1.0;
  scale.seed = 1;
  scale.threads = static_cast<int>(state.range(0));
  scale.verbose = false;
  const std::vector<double> speeds{0.0, 36.0};
  const std::vector<double> loads{10.0};
  for (auto _ : state) {
    const auto grid = harness::run_speed_sweep(speeds, loads, scale);
    benchmark::DoNotOptimize(grid.size());
  }
  state.SetItemsProcessed(state.iterations() * speeds.size() * loads.size() *
                          harness::kAllProtocols.size());
}
BENCHMARK(BM_SweepThroughput)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// City-scale kernel scaling: the metro preset (500 nodes / 3 km²) on four
// column shards, staged by `range(0)` worker threads; arg 0 is the serial
// (unsharded) reference row.  Throughput is kernel events per wall-clock
// second (UseRealTime), the cores-vs-throughput axis of the sharded-kernel
// scaling table in BENCH_scale.json.  The metrics of every row are
// identical by construction — only the wall clock moves — so the rows
// double as a determinism smoke at bench scale.
void BM_CityScaleKernel(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    harness::ScenarioConfig cfg = harness::preset_config("metro");
    cfg.sim_s = 0.5;
    cfg.shards = threads == 0 ? 1 : 4;
    cfg.threads = threads == 0 ? 1 : threads;
    const auto r = harness::run_scenario(cfg);
    events += r.events_executed;
    benchmark::DoNotOptimize(r.delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_CityScaleKernel)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

// Custom main: stamp the *simulator's* build type into the benchmark
// context.  google-benchmark's own "library_build_type" field reports how
// the system libbenchmark was compiled (debug on some distro packages),
// which says nothing about rica_core's optimization level; the regression
// guard keys off this marker and refuses debug numbers.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("rica_build_type", "release");
#else
  benchmark::AddCustomContext("rica_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
