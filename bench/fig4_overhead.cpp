// Figure 4: routing overhead (kbps of routing + data-ACK bits on average)
// vs mean mobile speed, for 10 pkt/s (a) and 20 pkt/s (b) — plus the
// byte-exact view the wire codecs enable: control bytes-on-air per trial
// (every frame charged at its encoded size, net/wire.hpp).
#include <exception>
#include <iostream>

#include "harness/flags.hpp"
#include "harness/sweep.hpp"

int main(int argc, char** argv) {
  using namespace rica::harness;
  try {
    const Flags flags(argc, argv);
    const BenchScale scale = bench_scale(flags, /*def_trials=*/3,
                                         /*def_sim_s=*/100.0);
    const auto speeds = flags.get_list("speeds", paper_speeds());

    const auto grid = run_speed_sweep(speeds, {10.0, 20.0}, scale);
    const auto kbps = [](const ScenarioResult& r) { return r.overhead_kbps; };
    print_figure(std::cout, grid, 10.0,
                 "Figure 4(a): routing overhead (kbps), 10 pkt/s", kbps);
    print_figure(std::cout, grid, 20.0,
                 "Figure 4(b): routing overhead (kbps), 20 pkt/s", kbps);
    // Exact encoded control bytes on the air (the registry counter sums
    // across trials; divide back out for a per-trial figure).
    const double trials = static_cast<double>(scale.trials);
    const auto ctrl_kb = [trials](const ScenarioResult& r) {
      const auto it = r.stats.find("net.control_bytes_on_air");
      return it == r.stats.end() ? 0.0 : it->second.value / trials / 1000.0;
    };
    print_figure(std::cout, grid, 10.0,
                 "Figure 4(c): control bytes-on-air (kB/trial), 10 pkt/s",
                 ctrl_kb);
    print_figure(std::cout, grid, 20.0,
                 "Figure 4(d): control bytes-on-air (kB/trial), 20 pkt/s",
                 ctrl_kb);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
