// Figure 5: route quality of all protocols at 72 km/h mean speed:
//   (a) average link throughput (kbps) of the links delivered packets used,
//   (b) average number of hops of the delivered packets' routes.
// The paper states 72 km/h; the load is unstated — we use 10 pkt/s
// (EXPERIMENTS.md records this assumption).
#include <exception>
#include <iostream>

#include "harness/flags.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"

int main(int argc, char** argv) {
  using namespace rica::harness;
  try {
    const Flags flags(argc, argv);
    const BenchScale scale = bench_scale(flags, /*def_trials=*/3,
                                         /*def_sim_s=*/100.0);
    const double speed = flags.get("mean-speed", 72.0);
    const double load = flags.get("rate", 10.0);

    Table table({"protocol", "avg_link_throughput_kbps", "avg_hops"});
    for (const auto proto : kAllProtocols) {
      ScenarioConfig cfg = preset_config(scale.preset);
      cfg.protocol = proto;
      cfg.mean_speed_kmh = speed;
      cfg.pkts_per_s = load;
      cfg.sim_s = scale.sim_s;
      cfg.seed = scale.seed;
      std::cerr << "[fig5] " << to_string(proto) << "...\n";
      const auto r = run_trials(cfg, scale.trials);
      table.add_row({std::string(to_string(proto)),
                     fmt(r.avg_link_tput_kbps, 1), fmt(r.avg_hops, 2)});
    }
    std::cout << "Figure 5: route quality at " << fmt(speed, 0)
              << " km/h mean speed, " << fmt(load, 0) << " pkt/s\n";
    table.print(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
