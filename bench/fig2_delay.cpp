// Figure 2: average end-to-end delay (ms) vs mean mobile speed, for
// 10 pkt/s (a) and 20 pkt/s (b), all five protocols.
//
// Flags: --trials N --sim-time S --seed K --speeds 0,14.4,...  --paper-scale
//        --threads N (parallel sweep workers, 0 = one per core)
//        --preset paper|dense-urban|sparse-rural|large-scale
#include <exception>
#include <iostream>

#include "harness/flags.hpp"
#include "harness/sweep.hpp"

int main(int argc, char** argv) {
  using namespace rica::harness;
  try {
    const Flags flags(argc, argv);
    const BenchScale scale = bench_scale(flags, /*def_trials=*/3,
                                         /*def_sim_s=*/100.0);
    const auto speeds = flags.get_list("speeds", paper_speeds());

    const auto grid = run_speed_sweep(speeds, {10.0, 20.0}, scale);
    const auto delay = [](const ScenarioResult& r) { return r.avg_delay_ms; };
    print_figure(std::cout, grid, 10.0,
                 "Figure 2(a): average end-to-end delay (ms), 10 pkt/s",
                 delay);
    print_figure(std::cout, grid, 20.0,
                 "Figure 2(b): average end-to-end delay (ms), 20 pkt/s",
                 delay);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
