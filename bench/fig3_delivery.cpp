// Figure 3: successful percentage of packet delivery vs mean mobile speed,
// for 10 pkt/s (a) and 20 pkt/s (b), all five protocols.
#include <exception>
#include <iostream>

#include "harness/flags.hpp"
#include "harness/sweep.hpp"

int main(int argc, char** argv) {
  using namespace rica::harness;
  try {
    const Flags flags(argc, argv);
    const BenchScale scale = bench_scale(flags, /*def_trials=*/3,
                                         /*def_sim_s=*/100.0);
    const auto speeds = flags.get_list("speeds", paper_speeds());

    const auto grid = run_speed_sweep(speeds, {10.0, 20.0}, scale);
    const auto pct = [](const ScenarioResult& r) { return r.delivery_pct; };
    print_figure(std::cout, grid, 10.0,
                 "Figure 3(a): successful packet delivery (%), 10 pkt/s", pct);
    print_figure(std::cout, grid, 20.0,
                 "Figure 3(b): successful packet delivery (%), 20 pkt/s", pct);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
