// Ablation study of RICA's design choices (not a paper figure — these back
// the decisions recorded in DESIGN.md §2b):
//   * CSI-checking period: 0.25/0.5/1/2/4 s, plus the adaptive-period
//     extension the paper's §II-C hints at ("has to be decided by the
//     change speed of the link CSI");
//   * CSI-proportional flood jitter on/off (how first-copy forwarding
//     elects channel-adaptive routes);
//   * check-candidate salvage on/off is approximated by the route-expiry
//     knob: with a tiny expiry relays drop instead of salvaging from
//     long-lived state.
//
// Flags: --trials N --sim-time S --mean-speed KMH --rate PKTS --seed K
//        --preset paper|dense-urban|sparse-rural|large-scale
#include <exception>
#include <iostream>

#include "harness/flags.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"

namespace {

using namespace rica;

harness::ScenarioResult run(const harness::Flags& flags,
                            const core::RicaConfig& rica_cfg) {
  harness::ScenarioConfig cfg =
      harness::preset_config(flags.get("preset", std::string("paper")));
  cfg.protocol = harness::ProtocolKind::kRica;
  cfg.mean_speed_kmh = flags.get("mean-speed", 54.0);
  cfg.pkts_per_s = flags.get("rate", 10.0);
  cfg.sim_s = flags.get("sim-time", 80.0);
  cfg.seed = flags.get("seed", static_cast<std::uint64_t>(1));
  cfg.rica = rica_cfg;
  return harness::run_trials(cfg, flags.get("trials", 3));
}

void add_row(harness::Table& table, const std::string& name,
             const harness::ScenarioResult& r) {
  table.add_row({name, harness::fmt(r.delivery_pct, 1),
                 harness::fmt(r.avg_delay_ms, 1),
                 harness::fmt(r.overhead_kbps, 1),
                 harness::fmt(r.avg_link_tput_kbps, 1),
                 harness::fmt(r.avg_hops, 2)});
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const harness::Flags flags(argc, argv);
    harness::Table table({"variant", "delivery_%", "delay_ms",
                          "overhead_kbps", "link_tput_kbps", "hops"});

    // Checking-period sweep.
    for (const double period_s : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      core::RicaConfig cfg;
      cfg.check_period = sim::seconds_f(period_s);
      std::cerr << "[ablation] check period " << period_s << " s\n";
      add_row(table, "check_period=" + harness::fmt(period_s, 2) + "s",
              run(flags, cfg));
    }

    // Adaptive checking (the paper's future-work hint).
    {
      core::RicaConfig cfg;
      cfg.adaptive_checks = true;
      std::cerr << "[ablation] adaptive check period\n";
      add_row(table, "adaptive_checks", run(flags, cfg));
    }

    // CSI-proportional flood jitter off: floods race at uniform speed, so
    // first-copy trees ignore channel quality.
    {
      core::RicaConfig cfg;
      cfg.csi_jitter = sim::Time::zero();
      std::cerr << "[ablation] csi jitter off\n";
      add_row(table, "csi_jitter=off", run(flags, cfg));
    }

    // Wider checking scope (more TTL slack): better candidates, more
    // overhead.
    {
      core::RicaConfig cfg;
      cfg.check_ttl_slack = 6;
      std::cerr << "[ablation] check ttl slack 6\n";
      add_row(table, "check_ttl_slack=6", run(flags, cfg));
    }

    std::cout << "RICA ablation (defaults: check 1 s, jitter 10 ms/unit, "
                 "slack 2)\n";
    table.print(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
