// Causal-span, flight-recorder, anomaly-watchdog, and histogram tests:
//   * a packet's child spans form a complete acyclic chain whose durations
//     sum exactly to the root's end-to-end delay,
//   * the flight recorder's dump is byte-identical across reruns and its
//     ring retains exactly the newest `capacity` records,
//   * a crafted drop storm fires the watchdogs deterministically,
//   * LogHistogram bucketing is exact below the linear bound, merge is
//     associative, and percentiles report bucket representatives.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/histogram.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace {

using namespace rica;

/// Collects span records in memory.
class CaptureSink final : public obs::TraceSink {
 public:
  void on_packet(const obs::PacketTrace&) override {}
  void on_route(const obs::RouteTrace&) override {}
  void on_kernel(const obs::KernelTrace&) override {}
  void on_span(const obs::SpanTrace& rec) override {
    spans.push_back(Span{std::string(rec.kind), rec.span, rec.parent,
                         rec.trace, rec.start, rec.dur, rec.at,
                         std::string(rec.detail)});
  }

  struct Span {
    std::string kind;
    std::uint64_t id;
    std::uint64_t parent;
    std::uint64_t trace;
    sim::Time start;
    sim::Time dur;
    sim::Time at;
    std::string detail;
  };
  std::vector<Span> spans;
};

obs::PacketTrace pkt_rec(std::string_view stage, sim::Time at,
                         std::uint32_t node, std::int64_t peer = -1,
                         std::string_view detail = {}) {
  obs::PacketTrace rec;
  rec.stage = stage;
  rec.at = at;
  rec.flow = 7;
  rec.seq = 3;
  rec.node = node;
  rec.src = 1;
  rec.dst = 9;
  rec.peer = peer;
  rec.detail = detail;
  return rec;
}

obs::RouteTrace route_rec(std::string_view stage, sim::Time at,
                          std::uint32_t node) {
  obs::RouteTrace rec;
  rec.stage = stage;
  rec.at = at;
  rec.node = node;
  rec.src = 1;
  rec.dst = 9;
  rec.bid = 42;
  return rec;
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// -- span derivation ---------------------------------------------------------

TEST(SpanBook, ChainDecomposesEndToEndDelayExactly) {
  obs::Tracer tracer;
  CaptureSink sink;
  tracer.attach(&sink, obs::TraceFilter::kSpan);
  obs::SpanBook book(tracer);
  tracer.set_span_book(&book);

  const auto ms = [](std::int64_t v) { return sim::milliseconds(v); };
  // Generation, a discovery wait, one failed + retried hop, a relay hop.
  tracer.packet(pkt_rec("generated", ms(0), 1));
  tracer.route(route_rec("discovery_start", ms(0), 1));
  tracer.route(route_rec("established", ms(5), 1));
  tracer.packet(pkt_rec("enqueued", ms(5), 1, 4));
  tracer.packet(pkt_rec("tx_start", ms(6), 1, 4));
  tracer.packet(pkt_rec("tx_fail", ms(8), 1, 4, "no_channel"));
  tracer.packet(pkt_rec("tx_start", ms(10), 1, 4));
  tracer.packet(pkt_rec("tx_end", ms(15), 1, 4));
  tracer.packet(pkt_rec("forwarded", ms(15), 4, 1));
  tracer.packet(pkt_rec("enqueued", ms(16), 4, 9));
  tracer.packet(pkt_rec("tx_start", ms(17), 4, 9));
  tracer.packet(pkt_rec("tx_end", ms(20), 4, 9));
  tracer.packet(pkt_rec("delivered", ms(20), 9));
  tracer.set_span_book(nullptr);
  tracer.attach(nullptr, obs::TraceFilter::kNone);

  const CaptureSink::Span* root = nullptr;
  for (const auto& s : sink.spans) {
    if (s.kind == "packet") root = &s;
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent, 0u);
  EXPECT_EQ(root->trace, root->id);
  EXPECT_EQ(root->dur, sim::milliseconds(20));
  EXPECT_EQ(root->detail, "delivered");

  // Every child: parent is the root (flat chain, acyclic by construction),
  // same trace id, and the durations tile [0, 20ms] exactly.
  sim::Time child_sum = sim::Time::zero();
  std::map<std::string, sim::Time> by_kind;
  sim::Time cursor = root->start;
  for (const auto& s : sink.spans) {
    if (s.kind == "packet" || s.kind == "discovery") continue;
    EXPECT_EQ(s.parent, root->id) << s.kind;
    EXPECT_EQ(s.trace, root->id) << s.kind;
    EXPECT_NE(s.id, root->id);
    EXPECT_EQ(s.start, cursor) << "gap before " << s.kind;
    cursor = s.start + s.dur;
    child_sum = child_sum + s.dur;
    by_kind[s.kind] = by_kind[s.kind] + s.dur;
  }
  EXPECT_EQ(child_sum, root->dur);
  // The decomposition: 5ms discovery wait, 1+1ms queue, 2ms retry (wasted
  // air), 2ms backoff, 5+3ms airtime, 1ms hold at the relay.
  EXPECT_EQ(by_kind["route_wait"], sim::milliseconds(6));
  EXPECT_EQ(by_kind["queue"], sim::milliseconds(2));
  EXPECT_EQ(by_kind["retry"], sim::milliseconds(2));
  EXPECT_EQ(by_kind["backoff"], sim::milliseconds(2));
  EXPECT_EQ(by_kind["airtime"], sim::milliseconds(8));

  // The discovery episode is its own root, closed "established".
  const CaptureSink::Span* disc = nullptr;
  for (const auto& s : sink.spans) {
    if (s.kind == "discovery") disc = &s;
  }
  ASSERT_NE(disc, nullptr);
  EXPECT_EQ(disc->parent, 0u);
  EXPECT_EQ(disc->dur, sim::milliseconds(5));
  EXPECT_EQ(disc->detail, "established");
}

TEST(SpanBook, HoldOverDiscoveryEpisodeIsLabeledDiscovery) {
  obs::Tracer tracer;
  CaptureSink sink;
  tracer.attach(&sink, obs::TraceFilter::kSpan);
  obs::SpanBook book(tracer);
  tracer.set_span_book(&book);

  tracer.packet(pkt_rec("generated", sim::milliseconds(1), 1));
  tracer.route(route_rec("discovery_start", sim::milliseconds(1), 1));
  // "established" closes the episode *before* the pending packet flushes.
  tracer.route(route_rec("established", sim::milliseconds(9), 1));
  tracer.packet(pkt_rec("enqueued", sim::milliseconds(9), 1, 4));
  tracer.set_span_book(nullptr);

  const CaptureSink::Span* wait = nullptr;
  for (const auto& s : sink.spans) {
    if (s.kind == "route_wait") wait = &s;
  }
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->detail, "discovery");
  EXPECT_EQ(wait->dur, sim::milliseconds(8));
}

TEST(SpanBook, FinishFlushesOpenSpansInFlight) {
  obs::Tracer tracer;
  CaptureSink sink;
  tracer.attach(&sink, obs::TraceFilter::kSpan);
  obs::SpanBook book(tracer);
  tracer.set_span_book(&book);

  tracer.packet(pkt_rec("generated", sim::milliseconds(0), 1));
  tracer.route(route_rec("discovery_start", sim::milliseconds(0), 1));
  book.finish(sim::milliseconds(30));
  tracer.set_span_book(nullptr);

  bool packet_flushed = false;
  bool discovery_flushed = false;
  for (const auto& s : sink.spans) {
    if (s.kind == "packet" && s.detail == "in_flight") packet_flushed = true;
    if (s.kind == "discovery" && s.detail == "in_flight") {
      discovery_flushed = true;
    }
    EXPECT_EQ(s.at, sim::milliseconds(30));
  }
  EXPECT_TRUE(packet_flushed);
  EXPECT_TRUE(discovery_flushed);
}

// -- flight recorder ---------------------------------------------------------

TEST(FlightRecorder, RingRetainsNewestRecords) {
  obs::FlightRecorder rec(4);
  for (std::uint32_t i = 0; i < 10; ++i) {
    obs::KernelTrace k;
    k.at = sim::seconds(i);
    k.events_executed = i;
    rec.on_kernel(k);
  }
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.retained(), 4u);
  EXPECT_EQ(rec.recorded(), 10u);

  const auto path =
      (std::filesystem::temp_directory_path() / "rica_flight_ring.jsonl")
          .string();
  rec.dump(path, "test", sim::seconds(10));
  const std::string text = slurp(path);
  // Oldest retained is i=6 (records 0..5 were overwritten); newest is i=9.
  EXPECT_NE(text.find("\"trigger\":\"test\""), std::string::npos);
  EXPECT_NE(text.find("\"recorded\":10"), std::string::npos);
  EXPECT_EQ(text.find("\"events_executed\":5,"), std::string::npos);
  const auto first_kept = text.find("\"events_executed\":6");
  const auto last_kept = text.find("\"events_executed\":9");
  EXPECT_NE(first_kept, std::string::npos);
  EXPECT_NE(last_kept, std::string::npos);
  EXPECT_LT(first_kept, last_kept);
  std::filesystem::remove(path);
}

TEST(FlightRecorder, ScenarioDumpIsByteIdenticalAcrossReruns) {
  const auto run = [](const char* name) {
    harness::ScenarioConfig cfg;
    cfg.num_nodes = 12;
    cfg.num_pairs = 3;
    cfg.sim_s = 8.0;
    cfg.seed = 7;
    cfg.flight_recorder = 1 << 12;
    const auto path =
        (std::filesystem::temp_directory_path() / name).string();
    cfg.flight_dump = path;
    (void)harness::run_scenario(cfg);
    return path;
  };
  const auto a = run("rica_flight_a.jsonl");
  const auto b = run("rica_flight_b.jsonl");
  const std::string ta = slurp(a);
  const std::string tb = slurp(b);
  ASSERT_FALSE(ta.empty());
  EXPECT_EQ(ta, tb);
  // The exit dump carries the header and span records (the recorder's kAll
  // filter turns the span book on).
  EXPECT_NE(ta.find("\"trigger\":\"exit\""), std::string::npos);
  EXPECT_NE(ta.find("\"type\":\"span\""), std::string::npos);
  std::filesystem::remove(a);
  std::filesystem::remove(b);
}

// -- anomaly watchdogs -------------------------------------------------------

harness::ScenarioConfig drop_storm_config() {
  // High speed + load on a sparse population: link breaks and buffer
  // overflows are effectively certain within a few seconds.
  harness::ScenarioConfig cfg;
  cfg.num_nodes = 14;
  cfg.num_pairs = 6;
  cfg.pkts_per_s = 40.0;
  cfg.mean_speed_kmh = 120.0;
  cfg.sim_s = 20.0;
  cfg.seed = 11;
  cfg.watchdogs = true;
  cfg.anomaly.window_s = 1.0;
  cfg.anomaly.drop_rate_per_s = 1.0;  // any drop in a window trips it
  cfg.anomaly.discovery_failures = 1;
  cfg.anomaly.stall_s = 0.0;      // focus the test on the drop monitors
  cfg.anomaly.queue_backlog = 0;  // (disabled thresholds)
  return cfg;
}

TEST(AnomalyWatchdog, DropStormTriggersDeterministically) {
  auto cfg = drop_storm_config();
  cfg.flight_recorder = 1 << 12;
  cfg.flight_dump =
      (std::filesystem::temp_directory_path() / "rica_anomaly_a.jsonl")
          .string();
  const auto a = harness::run_scenario(cfg);
  const std::string dump_a = slurp(cfg.flight_dump);
  std::filesystem::remove(cfg.flight_dump);

  cfg.flight_dump =
      (std::filesystem::temp_directory_path() / "rica_anomaly_b.jsonl")
          .string();
  const auto b = harness::run_scenario(cfg);
  const std::string dump_b = slurp(cfg.flight_dump);
  std::filesystem::remove(cfg.flight_dump);

  ASSERT_GT(a.dropped, 0u) << "the crafted storm must actually drop";
  const auto stat = [](const harness::ScenarioResult& r, const char* name) {
    const auto it = r.stats.find(name);
    return it == r.stats.end() ? -1.0 : it->second.value;
  };
  EXPECT_GT(stat(a, "anomaly.drop_spike"), 0.0);
  EXPECT_EQ(stat(a, "anomaly.dumps"), 1.0);
  // Determinism: identical triggers, counters, and dump bytes on rerun.
  EXPECT_EQ(stat(a, "anomaly.drop_spike"), stat(b, "anomaly.drop_spike"));
  EXPECT_EQ(stat(a, "anomaly.discovery_storm"),
            stat(b, "anomaly.discovery_storm"));
  EXPECT_EQ(a.stream_hash, b.stream_hash);
  ASSERT_FALSE(dump_a.empty());
  EXPECT_EQ(dump_a, dump_b);
  // The dump was triggered by a watchdog, not the exit path.
  EXPECT_EQ(dump_a.find("\"trigger\":\"exit\""), std::string::npos);
}

TEST(AnomalyWatchdog, WatchdogsDoNotPerturbTheStreamHash) {
  auto cfg = drop_storm_config();
  cfg.watchdogs = false;
  const auto plain = harness::run_scenario(cfg);
  cfg.watchdogs = true;
  cfg.flight_recorder = 1 << 10;
  const auto instrumented = harness::run_scenario(cfg);
  EXPECT_EQ(plain.stream_hash, instrumented.stream_hash);
  EXPECT_EQ(plain.delivered, instrumented.delivered);
  EXPECT_EQ(plain.dropped, instrumented.dropped);
}

TEST(AnomalyWatchdog, FlightDumpWithoutRecorderIsRejected) {
  harness::ScenarioConfig cfg;
  cfg.flight_dump = "somewhere.jsonl";
  EXPECT_THROW(harness::validate_scenario(cfg), std::invalid_argument);
}

// -- log-bucketed histograms -------------------------------------------------

TEST(LogHistogram, SmallValuesAreExact) {
  obs::LogHistogram h;
  for (std::int64_t v = 0; v < obs::LogHistogram::kLinearMax; ++v) {
    EXPECT_EQ(obs::LogHistogram::bucket_index(v), v);
    EXPECT_EQ(obs::LogHistogram::representative(v), v);
  }
  h.record(5);
  h.record(5);
  h.record(63);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 73);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 63.0);
}

TEST(LogHistogram, BucketBoundsAreConsistent) {
  // representative(v) is the upper edge of v's bucket: v <= rep(v), the
  // relative error is bounded by 1/32, and rep is idempotent.
  for (std::int64_t v : {64LL, 65LL, 100LL, 1000LL, (1LL << 20) + 123LL,
                         123456789012LL}) {
    const auto rep = obs::LogHistogram::representative(v);
    EXPECT_GE(rep, v);
    EXPECT_LE(rep - v, v / obs::LogHistogram::kSubBuckets + 1);
    EXPECT_EQ(obs::LogHistogram::bucket_index(rep),
              obs::LogHistogram::bucket_index(v));
    EXPECT_EQ(obs::LogHistogram::representative(rep), rep);
  }
}

TEST(LogHistogram, MergeIsExactAndAssociative) {
  const auto fill = [](obs::LogHistogram& h, std::uint64_t seed, int n) {
    std::uint64_t x = seed;
    for (int i = 0; i < n; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      h.record(static_cast<std::int64_t>(x >> 24));
    }
  };
  obs::LogHistogram a, b, c;
  fill(a, 1, 500);
  fill(b, 2, 300);
  fill(c, 3, 700);

  // (a + b) + c == a + (b + c), and the pool sees every sample.
  obs::LogHistogram left = a;
  left.merge(b);
  left.merge(c);
  obs::LogHistogram bc = b;
  bc.merge(c);
  obs::LogHistogram right = a;
  right.merge(bc);
  EXPECT_EQ(left, right);
  EXPECT_EQ(left.count(), 1500u);
  EXPECT_EQ(left.sum(), a.sum() + b.sum() + c.sum());
  EXPECT_DOUBLE_EQ(left.percentile(95.0), right.percentile(95.0));

  // Merging an empty histogram is the identity.
  obs::LogHistogram with_empty = left;
  with_empty.merge(obs::LogHistogram{});
  EXPECT_EQ(with_empty, left);
}

TEST(LogHistogram, RegistryPoolsAcrossTrials) {
  obs::Registry reg;
  auto& h = reg.histogram("x");
  h.record(10);
  h.record(100);
  const auto snap = reg.histogram_snapshot();
  ASSERT_EQ(snap.count("x"), 1u);
  EXPECT_EQ(snap.at("x").count(), 2u);
  EXPECT_EQ(snap.at("x"), h);
}

TEST(Average, PoolsDelayHistogramsExactly) {
  // Two hand-built trials with very different delay distributions: the
  // pooled p95 must come from the merged histogram, not the per-trial mean.
  stats::MetricsSummary r1;
  stats::MetricsSummary r2;
  obs::LogHistogram h1, h2;
  const std::int64_t ms = 1'000'000;
  for (int i = 0; i < 95; ++i) h1.record(10 * ms);
  for (int i = 0; i < 5; ++i) h1.record(1000 * ms);
  for (int i = 0; i < 100; ++i) h2.record(10 * ms);
  r1.histograms.emplace("delay_ns", h1);
  r2.histograms.emplace("delay_ns", h2);
  r1.delay_p95_ms = h1.percentile(95.0) / 1e6;
  r2.delay_p95_ms = h2.percentile(95.0) / 1e6;

  const auto avg = harness::average({r1, r2});
  obs::LogHistogram pooled = h1;
  pooled.merge(h2);
  // 195/200 samples are ~10ms, so the pooled p95 is the 10ms bucket — a
  // mean of per-trial p95s would have been ~halfway to the 1000ms bucket.
  EXPECT_DOUBLE_EQ(avg.delay_p95_ms, pooled.percentile(95.0) / 1e6);
  EXPECT_DOUBLE_EQ(
      avg.delay_p95_ms,
      static_cast<double>(obs::LogHistogram::representative(10 * ms)) / 1e6);
  ASSERT_EQ(avg.histograms.count("delay_ns"), 1u);
  EXPECT_EQ(avg.histograms.at("delay_ns").count(), 200u);
}

}  // namespace
