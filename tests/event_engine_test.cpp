// Tests for the slab-backed timing-wheel event engine: a randomized
// differential model test against a sorted-map reference, the deterministic
// FIFO tie-break, generation-counted handle reuse safety, the oversized-
// closure fallback, far-future (overflow) scheduling, and the batch-fire
// path (whole buckets fired off a sorted flat vector, interleaved exactly
// with the spill heap).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "sim/event_engine.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace rica::sim {
namespace {

TEST(EventEngine, PopsInTimeOrderAcrossRungs) {
  EventEngine q;
  std::vector<int> order;
  // One event per rung span plus a ready-tick event and an overflow event.
  q.schedule(seconds(3600) * 7, [&] { order.push_back(6); });  // overflow
  q.schedule(seconds(40), [&] { order.push_back(5); });        // rung 3
  q.schedule(milliseconds(900), [&] { order.push_back(4); });  // rung 2
  q.schedule(milliseconds(2), [&] { order.push_back(3); });    // rung 1
  q.schedule(microseconds(100), [&] { order.push_back(2); });  // rung 0
  q.schedule(nanoseconds(100), [&] { order.push_back(1); });   // current tick
  while (!q.empty()) q.fire_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(EventEngine, FifoTieBreakAtSameTimestamp) {
  EventEngine q;
  std::vector<int> order;
  // Same instant, scheduled interleaved with other timestamps: fire order
  // must be insertion order among the ties.
  for (int i = 0; i < 50; ++i) {
    q.schedule(milliseconds(5), [&order, i] { order.push_back(i); });
    q.schedule(milliseconds(5) + nanoseconds(i + 1), [] {});
  }
  while (!q.empty()) q.fire_next();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventEngine, CancelRecyclesSlotImmediately) {
  EventEngine q;
  const EventId a = q.schedule(milliseconds(1), [] {});
  EXPECT_EQ(q.slab_high_water(), 1u);
  EXPECT_TRUE(q.cancel(a));
  EXPECT_TRUE(q.empty());
  // The freed slot is reused at once: the high-water mark stays at one.
  const EventId b = q.schedule(milliseconds(2), [] {});
  EXPECT_EQ(q.slab_high_water(), 1u);
  EXPECT_TRUE(q.pending(b));
}

TEST(EventEngine, StaleHandleCannotTouchReusedSlot) {
  EventEngine q;
  int fired = 0;
  const EventId a = q.schedule(milliseconds(1), [&] { fired += 1; });
  ASSERT_TRUE(q.cancel(a));
  // b reuses a's slot (same index, bumped generation).
  const EventId b = q.schedule(milliseconds(1), [&] { fired += 10; });
  EXPECT_FALSE(q.cancel(a));   // stale: must not kill b
  EXPECT_FALSE(q.pending(a));
  EXPECT_TRUE(q.pending(b));
  q.fire_next();
  EXPECT_EQ(fired, 10);
  EXPECT_FALSE(q.pending(b));  // fired handles go stale too
  EXPECT_FALSE(q.cancel(b));
  EXPECT_FALSE(q.cancel(0));   // the null handle is never valid
}

TEST(EventEngine, CancelWhileInReadyHeapIsExact) {
  EventEngine q;
  std::vector<int> order;
  const EventId a = q.schedule(nanoseconds(10), [&] { order.push_back(1); });
  q.schedule(nanoseconds(20), [&] { order.push_back(2); });
  q.schedule(nanoseconds(30), [&] { order.push_back(3); });
  // All three are in the current tick (the ready heap).  Cancelling the
  // earliest must still yield 2, 3 in order.
  EXPECT_TRUE(q.cancel(a));
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.fire_next();
  EXPECT_EQ(order, (std::vector<int>{2, 3}));
}

TEST(EventEngine, OversizedClosureFallsBackToHeap) {
  EventEngine q;
  struct Big {
    char blob[EventEngine::kInlineBytes + 64] = {};
  };
  Big big;
  big.blob[0] = 42;
  int seen = 0;
  q.schedule(milliseconds(1), [big, &seen] { seen = big.blob[0]; });
  EXPECT_EQ(q.heap_fallbacks(), 1u);
  q.fire_next();
  EXPECT_EQ(seen, 42);
  // Cancelled oversized closures must release their heap cell (covered by
  // ASan in CI): schedule and cancel one.
  const EventId id = q.schedule(milliseconds(1), [big] { (void)big; });
  EXPECT_TRUE(q.cancel(id));
}

TEST(EventEngine, CallbackCanRearmIntoItsOwnSlot) {
  EventEngine q;
  int count = 0;
  std::function<void()> tick;  // self-referential chain via explicit rearm
  tick = [&] {
    ++count;
    if (count < 5) q.schedule(milliseconds(count), tick);
  };
  q.schedule(milliseconds(0), tick);
  while (!q.empty()) q.fire_next();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.slab_high_water(), 1u);  // the chain kept recycling one slot
}

// ---------------------------------------------------------------------------
// Randomized differential model test: the engine vs a sorted-map reference,
// over schedule/cancel/fire interleavings at adversarial time offsets (same
// tick, same timestamp, every rung, overflow).
// ---------------------------------------------------------------------------

TEST(EventEngine, RandomizedModelAgainstSortedMapReference) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    EventEngine q;
    RandomStream rng(seed);
    // Reference: (time, seq) -> token, mirroring the engine's contract.
    std::map<std::pair<std::int64_t, std::uint64_t>, int> ref;
    struct Live {
      EventId id;
      std::pair<std::int64_t, std::uint64_t> key;
    };
    std::vector<Live> live;  // ids still cancellable
    std::vector<int> fired;
    std::int64_t now_ns = 0;
    std::uint64_t seq = 0;
    int token = 0;

    for (int op = 0; op < 4000; ++op) {
      const auto r = rng.uniform_int(0, 99);
      if (r < 55 || ref.empty()) {  // schedule
        static constexpr std::int64_t kSpans[] = {
            0, 1, 3'000, 400'000, 2'000'000, 40'000'000,
            900'000'000, 30'000'000'000, 20'000'000'000'000};
        const auto span = kSpans[rng.uniform_int(0, 8)];
        const std::int64_t at = now_ns + (span == 0 ? 0 : rng.uniform_int(0, span));
        const int tok = token++;
        const EventId id = q.schedule(Time{at}, [tok, &fired] {
          fired.push_back(tok);
        });
        ref.emplace(std::make_pair(at, seq), tok);
        live.push_back(Live{id, {at, seq}});
        ++seq;
      } else if (r < 75) {  // cancel (sometimes a stale handle)
        const auto pick =
            static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(live.size()) - 1));
        const Live victim = live[pick];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        const bool was_live = ref.erase(victim.key) == 1;
        EXPECT_EQ(q.cancel(victim.id), was_live);
        EXPECT_FALSE(q.pending(victim.id));
      } else {  // fire
        ASSERT_FALSE(q.empty());
        const auto expect = ref.begin();
        const auto before = fired.size();
        const auto f = q.fire_next();
        ASSERT_EQ(fired.size(), before + 1);
        EXPECT_EQ(fired.back(), expect->second);
        EXPECT_EQ(f.at.nanos(), expect->first.first);
        now_ns = expect->first.first;
        ref.erase(expect);
      }
      ASSERT_EQ(q.size(), ref.size());
    }
    // Drain.
    while (!ref.empty()) {
      const auto expect = ref.begin();
      q.fire_next();
      EXPECT_EQ(fired.back(), expect->second);
      ref.erase(expect);
    }
    EXPECT_TRUE(q.empty());
  }
}

// ---------------------------------------------------------------------------
// Batch-fire: whole rung-0 buckets fire off the sorted flat batch; events
// scheduled at-or-behind the harvested tick mid-batch interleave exactly
// through the spill heap.
// ---------------------------------------------------------------------------

TEST(EventEngine, BatchFiresWholeBucketsWithoutHeapChurn) {
  EventEngine q;
  std::vector<int> order;
  // 64 events inside one 4096 ns wheel tick, scheduled out of order.
  for (int i = 63; i >= 0; --i) {
    q.schedule(milliseconds(1) + nanoseconds(i), [&order, i] {
      order.push_back(i);
    });
  }
  while (!q.empty()) q.fire_next();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
  // Nothing was scheduled mid-batch, so every fire came off the flat batch.
  EXPECT_EQ(q.batched_fires(), 64u);
}

TEST(EventEngine, MidBatchSchedulingInterleavesExactly) {
  EventEngine q;
  std::vector<int> order;
  // Three events in one wheel tick (past tick 0, so they are harvested as a
  // batch); the first one's callback schedules a fourth between the other
  // two, which must land in the spill heap and still fire in exact
  // (at, seq) order.
  const Time base = milliseconds(1);
  q.schedule(base + nanoseconds(100), [&] {
    order.push_back(1);
    q.schedule(base + nanoseconds(150), [&] { order.push_back(2); });
  });
  q.schedule(base + nanoseconds(200), [&] { order.push_back(3); });
  q.schedule(base + nanoseconds(300), [&] { order.push_back(4); });
  while (!q.empty()) q.fire_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_GT(q.batched_fires(), 0u);
  EXPECT_LT(q.batched_fires(), 4u);  // the mid-batch event spilled
}

}  // namespace
}  // namespace rica::sim
