// A scripted ProtocolHost for protocol unit tests: records every outbound
// action, serves configurable link CSI, and exposes the simulator so tests
// can fire protocol timers deterministically.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "routing/protocol.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace rica::test {

class MockHost : public routing::ProtocolHost {
 public:
  explicit MockHost(net::NodeId id) : id_(id), rng_(42) {}

  // -- scripting -------------------------------------------------------------
  /// Sets the CSI class this host measures toward `neighbor`.
  void set_link(net::NodeId neighbor, channel::CsiClass cls) {
    links_[neighbor] = cls;
  }
  void clear_link(net::NodeId neighbor) { links_.erase(neighbor); }

  // -- recorded actions --------------------------------------------------------
  struct SentControl {
    net::ControlPacket pkt;
    sim::Time at;
  };
  struct ForwardedData {
    net::DataPacket pkt;
    net::NodeId next_hop;
    sim::Time at;
  };
  std::vector<SentControl> sent;
  std::vector<ForwardedData> forwarded;
  std::vector<net::DataPacket> delivered;
  std::vector<std::pair<net::DataPacket, stats::DropReason>> dropped;
  std::map<std::string, std::uint64_t> counters;
  std::size_t buffered = 0;  ///< reported by buffered_count()

  /// Last control packet of a given payload type, or nullptr.
  template <typename Msg>
  const Msg* last_sent(net::NodeId* to = nullptr) const {
    for (auto it = sent.rbegin(); it != sent.rend(); ++it) {
      if (const auto* msg = std::get_if<Msg>(&it->pkt.payload)) {
        if (to != nullptr) *to = it->pkt.to;
        return msg;
      }
    }
    return nullptr;
  }

  template <typename Msg>
  std::size_t sent_count() const {
    std::size_t n = 0;
    for (const auto& s : sent) {
      if (std::holds_alternative<Msg>(s.pkt.payload)) ++n;
    }
    return n;
  }

  // -- ProtocolHost ------------------------------------------------------------
  [[nodiscard]] net::NodeId id() const override { return id_; }
  sim::Simulator& simulator() override { return sim_; }
  sim::RandomStream& protocol_rng() override { return rng_; }
  void send_control(net::ControlPacket pkt) override {
    sent.push_back(SentControl{std::move(pkt), sim_.now()});
  }
  std::optional<channel::CsiClass> link_csi(net::NodeId neighbor) override {
    const auto it = links_.find(neighbor);
    if (it == links_.end()) return std::nullopt;
    return it->second;
  }
  std::vector<net::NodeId> neighbors_in_range() override {
    std::vector<net::NodeId> out;
    out.reserve(links_.size());
    for (const auto& [n, _] : links_) out.push_back(n);
    return out;
  }
  void forward_data(net::DataPacket pkt, net::NodeId next_hop) override {
    forwarded.push_back(ForwardedData{std::move(pkt), next_hop, sim_.now()});
  }
  void deliver_local(const net::DataPacket& pkt) override {
    delivered.push_back(pkt);
  }
  void drop_data(const net::DataPacket& pkt,
                 stats::DropReason reason) override {
    dropped.emplace_back(pkt, reason);
  }
  std::vector<net::DataPacket> drain_queue(net::NodeId) override {
    return {};
  }
  [[nodiscard]] std::size_t buffered_count() const override {
    return buffered;
  }
  void count(const std::string& name, std::uint64_t by = 1) override {
    counters[name] += by;
  }

  sim::Simulator& sim() { return sim_; }

 private:
  net::NodeId id_;
  sim::Simulator sim_;
  sim::RandomStream rng_;
  std::map<net::NodeId, channel::CsiClass> links_;
};

/// Convenience: a 512-byte data packet for flow (src -> dst).
inline net::DataPacket make_data(net::NodeId src, net::NodeId dst,
                                 std::uint32_t seq = 0) {
  net::DataPacket pkt;
  pkt.flow = 0;
  pkt.src = src;
  pkt.dst = dst;
  pkt.seq = seq;
  pkt.size_bytes = 512;
  return pkt;
}

}  // namespace rica::test
