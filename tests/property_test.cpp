// Parameterized property suites: invariants that must hold for every
// protocol across the mobility/load grid, and channel-model properties
// swept over configurations.
#include <gtest/gtest.h>

#include <tuple>

#include "channel/channel_model.hpp"
#include "harness/scenario.hpp"
#include "mobility/mobility_model.hpp"

namespace rica {
namespace {

// ---------------------------------------------------------------------------
// Protocol grid invariants
// ---------------------------------------------------------------------------

using GridParam = std::tuple<harness::ProtocolKind, double, double>;

class ProtocolGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(ProtocolGrid, ConservationAndSanity) {
  const auto [proto, speed, rate] = GetParam();
  harness::ScenarioConfig cfg;
  cfg.protocol = proto;
  cfg.mean_speed_kmh = speed;
  cfg.pkts_per_s = rate;
  cfg.sim_s = 20.0;
  cfg.seed = 21;
  const auto r = harness::run_scenario(cfg);

  // Packet conservation: every generated packet is delivered, dropped, or
  // still in flight at the horizon — never duplicated.
  std::uint64_t dropped = 0;
  for (const auto d : r.drops) dropped += d;
  EXPECT_LE(r.delivered + dropped, r.generated);
  EXPECT_GT(r.generated, 0u);

  // Metric ranges.
  EXPECT_GE(r.delivery_pct, 0.0);
  EXPECT_LE(r.delivery_pct, 100.0);
  if (r.delivered > 0) {
    EXPECT_GT(r.avg_delay_ms, 0.0);
    EXPECT_LT(r.avg_delay_ms, 3200.0);  // residency bound caps queueing
    EXPECT_GE(r.avg_hops, 1.0);
    // Per-hop throughput is a convex combination of the class rates.
    EXPECT_GE(r.avg_link_tput_kbps, 50.0 - 1e-9);
    EXPECT_LE(r.avg_link_tput_kbps, 250.0 + 1e-9);
  }
  EXPECT_GE(r.overhead_kbps, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsSpeedsLoads, ProtocolGrid,
    ::testing::Combine(
        ::testing::Values(harness::ProtocolKind::kRica,
                          harness::ProtocolKind::kBgca,
                          harness::ProtocolKind::kAbr,
                          harness::ProtocolKind::kAodv,
                          harness::ProtocolKind::kLinkState),
        ::testing::Values(0.0, 36.0, 72.0), ::testing::Values(10.0, 20.0)),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      // Note: no structured bindings here — the unparenthesized commas
      // would split the surrounding macro's arguments.
      return std::string(harness::to_string(std::get<0>(info.param))) + "_v" +
             std::to_string(static_cast<int>(std::get<1>(info.param))) +
             "_r" +
             std::to_string(static_cast<int>(std::get<2>(info.param)));
    });

// ---------------------------------------------------------------------------
// Determinism across the grid
// ---------------------------------------------------------------------------

class DeterminismGrid
    : public ::testing::TestWithParam<harness::ProtocolKind> {};

TEST_P(DeterminismGrid, SameSeedSameResult) {
  harness::ScenarioConfig cfg;
  cfg.protocol = GetParam();
  cfg.mean_speed_kmh = 45.0;
  cfg.sim_s = 15.0;
  cfg.seed = 33;
  const auto a = harness::run_scenario(cfg);
  const auto b = harness::run_scenario(cfg);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.control_transmissions, b.control_transmissions);
  EXPECT_DOUBLE_EQ(a.avg_delay_ms, b.avg_delay_ms);
  EXPECT_DOUBLE_EQ(a.avg_hops, b.avg_hops);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, DeterminismGrid,
    ::testing::Values(harness::ProtocolKind::kRica,
                      harness::ProtocolKind::kBgca,
                      harness::ProtocolKind::kAbr,
                      harness::ProtocolKind::kAodv,
                      harness::ProtocolKind::kLinkState),
    [](const ::testing::TestParamInfo<harness::ProtocolKind>& info) {
      return std::string(harness::to_string(info.param));
    });

// ---------------------------------------------------------------------------
// Channel-model properties over configurations
// ---------------------------------------------------------------------------

class ChannelSigmaSweep : public ::testing::TestWithParam<double> {};

TEST_P(ChannelSigmaSweep, SnrVarianceTracksConfiguredSigma) {
  const double sigma = GetParam();
  sim::RngManager rng(55);
  mobility::MobilityConfig wp;
  wp.field = mobility::Field{1.0, 1.0};  // co-located pairs: no path loss
  wp.max_speed_mps = 0.0;
  mobility::MobilityManager mgr(400, wp, rng);
  channel::ChannelConfig cfg;
  cfg.shadow_sigma_db = sigma;
  cfg.fading_sigma_db = 0.0;
  channel::ChannelModel ch(cfg, mgr, rng);

  double sum = 0.0;
  double sq = 0.0;
  int n = 0;
  for (std::uint32_t i = 0; i + 1 < 400; i += 2) {
    const auto s = ch.sample(i, i + 1, sim::Time::zero());
    ASSERT_TRUE(s.has_value());
    sum += s->snr_db;
    sq += s->snr_db * s->snr_db;
    ++n;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, cfg.snr0_db, 1.5) << "sigma=" << sigma;
  EXPECT_NEAR(std::sqrt(std::max(var, 0.0)), sigma, 0.15 * sigma + 0.5);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, ChannelSigmaSweep,
                         ::testing::Values(2.0, 4.0, 8.0, 12.0));

class ChannelExponentSweep : public ::testing::TestWithParam<double> {};

TEST_P(ChannelExponentSweep, MeanSnrFallsWithConfiguredSlope) {
  const double exponent = GetParam();
  sim::RngManager rng(56);
  mobility::MobilityConfig wp;
  wp.field = mobility::Field{1000.0, 1000.0};
  wp.max_speed_mps = 0.0;
  mobility::MobilityManager mgr(2, wp, rng);
  channel::ChannelConfig cfg;
  cfg.path_loss_exponent = exponent;
  cfg.shadow_sigma_db = 0.0;
  cfg.fading_sigma_db = 0.0;
  cfg.range_m = 1e9;  // disable the range gate for this physics check
  channel::ChannelModel ch(cfg, mgr, rng);

  const double d = mgr.node_distance(0, 1, sim::Time::zero());
  const auto s = ch.sample(0, 1, sim::Time::zero());
  ASSERT_TRUE(s.has_value());
  EXPECT_NEAR(s->snr_db, cfg.snr0_db - 10.0 * exponent * std::log10(d), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ChannelExponentSweep,
                         ::testing::Values(2.0, 2.5, 3.0, 4.0));

// ---------------------------------------------------------------------------
// Mobility properties over speeds
// ---------------------------------------------------------------------------

class MobilitySpeedSweep : public ::testing::TestWithParam<double> {};

TEST_P(MobilitySpeedSweep, NodesStayInFieldAndUnderSpeedLimit) {
  const double max_speed = GetParam();
  sim::RngManager rng(57);
  mobility::MobilityConfig cfg;
  cfg.field = mobility::Field{1000.0, 1000.0};
  cfg.max_speed_mps = max_speed;
  mobility::MobilityManager mgr(10, cfg, rng);
  for (std::uint32_t n = 0; n < 10; ++n) {
    mobility::Vec2 prev = mgr.position(n, sim::Time::zero());
    for (int t = 1; t <= 120; ++t) {
      const auto p = mgr.position(n, sim::seconds(t));
      EXPECT_TRUE(cfg.field.contains(p));
      EXPECT_LE(mobility::distance(prev, p), max_speed + 1e-9);
      prev = p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Speeds, MobilitySpeedSweep,
                         ::testing::Values(0.0, 5.0, 20.0, 40.0));

}  // namespace
}  // namespace rica
