// Property tests for the free-list pool and the pooled FIFO
// (util/pool.hpp): acquire/release round-trips under randomized churn
// against a std::deque reference model, node recycling (high-water pinned
// under steady-state reuse), truncate/drain semantics, and destructor
// hygiene (every live value destroyed exactly once — the ASan job turns a
// leak or double-destroy into a hard failure).
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "sim/random.hpp"
#include "util/pool.hpp"

namespace rica::util {
namespace {

TEST(FreeListPool, AcquireReleaseRecyclesNodes) {
  FreeListPool<int> pool;
  auto* a = pool.acquire(1);
  EXPECT_EQ(pool.live(), 1u);
  EXPECT_EQ(pool.high_water(), 1u);
  pool.release(a);
  EXPECT_EQ(pool.live(), 0u);
  // The freed node is handed out again: high-water stays at one.
  auto* b = pool.acquire(2);
  EXPECT_EQ(b, a);
  EXPECT_EQ(pool.high_water(), 1u);
  EXPECT_EQ(b->value(), 2);
  pool.release(b);
}

TEST(FreeListPool, NonTrivialValuesDestroyedOnRelease) {
  // std::string exercises real construct/destroy cycles; ASan (CI) catches
  // any leak or double-destroy.
  FreeListPool<std::string> pool;
  std::vector<FreeListPool<std::string>::Node*> nodes;
  for (int i = 0; i < 100; ++i) {
    nodes.push_back(pool.acquire(std::string(100, 'x')));
  }
  EXPECT_EQ(pool.live(), 100u);
  for (auto* n : nodes) pool.release(n);
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(pool.high_water(), 100u);
  EXPECT_GE(pool.capacity(), 100u);
}

TEST(PooledQueue, FifoWithPushFrontAndTruncate) {
  FreeListPool<int> pool;
  PooledQueue<int> q(pool);
  q.push_back(2);
  q.push_back(3);
  q.push_front(1);  // the MAC's retransmission requeue shape
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q.front(), 1);
  q.pop_front();
  EXPECT_EQ(q.front(), 2);
  q.push_back(4);
  q.truncate(1);  // keep only the head (the in-flight packet)
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.front(), 2);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(pool.live(), 0u);
}

TEST(PooledQueue, MoveTransfersNodes) {
  FreeListPool<int> pool;
  PooledQueue<int> a(pool);
  a.push_back(1);
  a.push_back(2);
  PooledQueue<int> b = std::move(a);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): post-move state
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b.front(), 1);
  b.clear();
  EXPECT_EQ(pool.live(), 0u);
}

// ---------------------------------------------------------------------------
// Randomized churn: many queues sharing one pool, mirrored against
// std::deque reference models over push_back/push_front/pop_front/truncate
// interleavings.  The pool's live count must always equal the sum of queue
// sizes, and every queue must stay element-for-element identical to its
// reference.
// ---------------------------------------------------------------------------

TEST(PooledQueue, RandomizedChurnMatchesDequeReference) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    sim::RandomStream rng(seed);
    FreeListPool<std::pair<std::uint64_t, std::string>> pool;
    constexpr int kQueues = 8;
    std::vector<PooledQueue<std::pair<std::uint64_t, std::string>>> queues(
        kQueues);
    for (auto& q : queues) q.bind(pool);
    std::vector<std::deque<std::uint64_t>> ref(kQueues);
    std::uint64_t token = 0;

    for (int op = 0; op < 20000; ++op) {
      const auto qi = static_cast<std::size_t>(rng.uniform_int(0, kQueues - 1));
      auto& q = queues[qi];
      auto& r = ref[qi];
      const auto roll = rng.uniform_int(0, 99);
      if (roll < 45) {
        const std::uint64_t tok = token++;
        q.emplace_back(tok, std::string(8, 'a'));
        r.push_back(tok);
      } else if (roll < 60) {
        const std::uint64_t tok = token++;
        q.push_front({tok, std::string(8, 'b')});
        r.push_front(tok);
      } else if (roll < 90) {
        if (!r.empty()) {
          EXPECT_EQ(q.front().first, r.front());
          q.pop_front();
          r.pop_front();
        }
      } else {
        const auto keep = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(r.size())));
        q.truncate(keep);
        r.resize(keep);
      }
      ASSERT_EQ(q.size(), r.size());
      ASSERT_EQ(q.empty(), r.empty());
    }

    // Full-content check and the conservation invariant.
    std::size_t total = 0;
    for (int i = 0; i < kQueues; ++i) {
      total += ref[static_cast<std::size_t>(i)].size();
      std::size_t pos = 0;
      for (const auto& v : queues[static_cast<std::size_t>(i)]) {
        ASSERT_EQ(v.first, ref[static_cast<std::size_t>(i)][pos]);
        ++pos;
      }
    }
    EXPECT_EQ(pool.live(), total);
    EXPECT_GE(pool.high_water(), pool.live());
    for (auto& q : queues) q.clear();
    EXPECT_EQ(pool.live(), 0u);
  }
}

// Steady-state reuse: a service loop that never holds more than K entries
// must never grow the pool past K — the free list really recycles.
TEST(PooledQueue, SteadyStateChurnHoldsHighWater) {
  FreeListPool<int> pool;
  PooledQueue<int> q(pool);
  for (int i = 0; i < 16; ++i) q.emplace_back(i);
  const std::size_t hw = pool.high_water();
  for (int round = 0; round < 10000; ++round) {
    q.pop_front();
    q.emplace_back(round);
  }
  EXPECT_EQ(pool.high_water(), hw);
  EXPECT_EQ(q.size(), 16u);
  q.clear();
}

}  // namespace
}  // namespace rica::util
