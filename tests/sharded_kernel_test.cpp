// Sharded-kernel properties: the parallel kernel must reproduce the serial
// engine's event stream exactly — same fire order, same clock stamps, same
// executed/pending counts — for ANY shard and thread count, because the
// commit phase fires in global (at, seq) order off one shared sequence
// counter.  The suite drives randomized event programs (timer chains that
// hop between nodes, and therefore shards) through serial and sharded
// kernels and asserts byte-identical logs, plus unit properties of the
// stripe map, the staging path, ShardScope accounting, and the derived
// conservative lookahead.
#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "channel/lookahead.hpp"
#include "net/wire.hpp"
#include "sim/event_engine.hpp"
#include "sim/random.hpp"
#include "sim/sharding.hpp"
#include "sim/simulator.hpp"

namespace rica {
namespace {

using sim::Time;

// One fired event as observed by the test program: when it ran, at which
// node, which program tag it carried, and whether its *schedule* crossed a
// shard boundary in the sharded run under test.
struct FireRecord {
  std::int64_t at_ns;
  std::uint32_t node;
  std::uint64_t tag;

  bool operator==(const FireRecord&) const = default;
};

// A deterministic branching timer program: each fired event logs itself and
// schedules 1-3 children at splitmix-derived nodes and delays.  The program
// is a pure function of (seed, roots, depth), so any two kernels given the
// same program must produce the same log iff they fire in the same order.
struct Runner {
  sim::Simulator& sim;
  std::uint32_t num_nodes;
  int max_depth;
  std::vector<FireRecord> log;

  void fire(std::uint32_t node, std::uint64_t tag, int depth) {
    log.push_back({sim.now().nanos(), node, tag});
    if (depth >= max_depth) return;
    const std::uint64_t h = sim::splitmix64(tag);
    const int kids = 1 + static_cast<int>(h % 3);
    for (int i = 0; i < kids; ++i) {
      const std::uint64_t ct =
          sim::splitmix64(tag ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
      const auto cn = static_cast<std::uint32_t>(ct % num_nodes);
      // Delays from 1 ns to 3 ms straddle any sensible lookahead window, so
      // children land both inside the staging horizon and beyond it.
      const Time delay{static_cast<std::int64_t>(1 + ct % 3'000'000)};
      sim.after_node(cn, delay,
                     [this, cn, ct, depth] { fire(cn, ct, depth + 1); });
    }
  }

  void seed_roots(std::uint64_t seed, int roots) {
    for (int r = 0; r < roots; ++r) {
      const std::uint64_t tag = sim::splitmix64(seed + r);
      const auto node = static_cast<std::uint32_t>(tag % num_nodes);
      const Time at{static_cast<std::int64_t>(1 + tag % 1'000'000)};
      sim.at_node(node, at, [this, node, tag] { fire(node, tag, 0); });
    }
  }
};

struct RunStats {
  std::uint64_t executed;
  std::size_t peak_pending;
};

std::vector<FireRecord> run_program(std::uint64_t seed, std::uint32_t nodes,
                                    std::uint32_t shards, unsigned threads,
                                    Time window, RunStats* stats = nullptr,
                                    std::uint64_t* crossings = nullptr) {
  sim::Simulator sim;
  if (shards > 1) {
    std::vector<std::uint32_t> map(nodes);
    for (std::uint32_t i = 0; i < nodes; ++i) map[i] = i * shards / nodes;
    sim.configure_shards(std::move(map), shards, window, threads);
  }
  Runner runner{sim, nodes, /*max_depth=*/4, {}};
  runner.seed_roots(seed, /*roots=*/8);
  sim.run_until(sim::seconds_f(1.0));
  if (stats != nullptr) {
    *stats = {sim.events_executed(), sim.peak_pending_events()};
  }
  if (crossings != nullptr) *crossings = sim.cross_shard_sends();
  return std::move(runner.log);
}

// The tentpole determinism property: identical fire logs (time, node, tag,
// order) for the serial kernel and every sharded/threaded variant.
TEST(ShardedKernel, FireOrderMatchesSerialForAnyShardAndThreadCount) {
  const Time window = sim::microseconds(756);
  for (const std::uint64_t seed : {1ull, 42ull, 0xdecafull}) {
    RunStats serial_stats{};
    const auto serial =
        run_program(seed, 24, 1, 1, Time::zero(), &serial_stats);
    ASSERT_FALSE(serial.empty());
    for (const auto [shards, threads] :
         {std::pair<std::uint32_t, unsigned>{2, 1}, {4, 2}, {8, 8}}) {
      RunStats stats{};
      std::uint64_t crossings = 0;
      const auto sharded =
          run_program(seed, 24, shards, threads, window, &stats, &crossings);
      EXPECT_EQ(serial, sharded)
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(serial_stats.executed, stats.executed);
      EXPECT_EQ(serial_stats.peak_pending, stats.peak_pending);
      // The program hops nodes at random, so a multi-shard run must route
      // real traffic across boundaries to reproduce the serial order.
      EXPECT_GT(crossings, 0u);
    }
  }
}

// Fired timestamps never regress: the cross-engine merge commits in exact
// global (at, seq) order, so boundary-crossing events interleave with
// shard-local ones without ever rewinding the clock.
TEST(ShardedKernel, CommitOrderIsMonotoneAcrossBoundaries) {
  const auto log = run_program(7, 24, 4, 2, sim::microseconds(756));
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_LE(log[i - 1].at_ns, log[i].at_ns) << "at index " << i;
  }
}

// Every cross-shard handoff the kernel reports is causally sane: scheduled
// sends carry a timestamp at or after the sender's now, and the hook's
// tallies reconcile with the aggregate counters and the per-pair channels.
TEST(ShardedKernel, ChannelHookObservesOrderedCrossings) {
  sim::Simulator sim;
  const std::uint32_t nodes = 24, shards = 4;
  std::vector<std::uint32_t> map(nodes);
  for (std::uint32_t i = 0; i < nodes; ++i) map[i] = i * shards / nodes;
  sim.configure_shards(std::move(map), shards, sim::microseconds(756), 2);

  struct Crossing {
    std::uint32_t from, to;
    std::int64_t at_ns;
    bool sync;
  };
  std::vector<Crossing> seen;
  sim.set_channel_hook(
      [&](std::uint32_t from, std::uint32_t to, Time at, bool sync) {
        EXPECT_NE(from, to);
        EXPECT_GE(at, sim.now());
        seen.push_back({from, to, at.nanos(), sync});
      });

  Runner runner{sim, nodes, /*max_depth=*/4, {}};
  runner.seed_roots(/*seed=*/3, /*roots=*/8);
  sim.run_until(sim::seconds_f(1.0));

  ASSERT_FALSE(seen.empty());
  std::uint64_t scheduled = 0, sync = 0;
  std::vector<std::uint64_t> per_pair(shards * shards, 0);
  for (const auto& c : seen) {
    (c.sync ? sync : scheduled)++;
    ++per_pair[c.from * shards + c.to];
  }
  EXPECT_EQ(scheduled, sim.cross_shard_sends());
  EXPECT_EQ(sync, sim.sync_crossings());
  for (std::uint32_t f = 0; f < shards; ++f) {
    for (std::uint32_t t = 0; t < shards; ++t) {
      EXPECT_EQ(per_pair[f * shards + t], sim.channel_traffic(f, t));
    }
  }
}

// The staging phase is a pure reorder-ahead: an engine that pre-sorts via
// stage_until() at arbitrary horizons pops the identical (at, seq) stream
// as one that never stages.
TEST(ShardedKernel, StageUntilNeverChangesPopOrder) {
  for (const std::uint64_t seed : {5ull, 99ull}) {
    sim::EventEngine plain, staged;
    std::vector<std::uint64_t> plain_log, staged_log;
    std::uint64_t h = seed;
    for (int i = 0; i < 500; ++i) {
      h = sim::splitmix64(h);
      const Time at{static_cast<std::int64_t>(h % 50'000'000)};
      plain.schedule(at, [&plain_log, h] { plain_log.push_back(h); });
      staged.schedule(at, [&staged_log, h] { staged_log.push_back(h); });
      if (i % 7 == 0) {
        staged.stage_until(Time{static_cast<std::int64_t>(
            sim::splitmix64(h ^ 0xabcd) % 60'000'000)});
      }
    }
    staged.stage_until(sim::milliseconds(20));
    while (!plain.empty()) plain.fire_next();
    while (!staged.empty()) staged.fire_next();
    EXPECT_EQ(plain_log, staged_log);
    EXPECT_GT(staged.staged_events(), 0u);
  }
}

TEST(ShardedKernel, GridColumnsMatchesNeighborIndexGeometry) {
  EXPECT_EQ(sim::grid_columns(1000.0, 250.0), 4u);
  EXPECT_EQ(sim::grid_columns(1732.1, 250.0), 6u);
  EXPECT_EQ(sim::grid_columns(14142.1, 250.0), 56u);
  // A field narrower than one cell still forms a single column.
  EXPECT_EQ(sim::grid_columns(100.0, 250.0), 1u);
}

TEST(ShardedKernel, StripeShardsIsMonotoneBalancedAndClamped) {
  const double field = 2000.0, cell = 250.0;
  std::vector<double> xs;
  std::uint64_t h = 11;
  for (int i = 0; i < 400; ++i) {
    h = sim::splitmix64(h);
    // Include out-of-field positions to exercise the clamp.
    xs.push_back(static_cast<double>(h % 2400) - 200.0);
  }
  for (const std::uint32_t k : {1u, 2u, 4u, 8u}) {
    const auto shard = sim::stripe_shards(xs, field, cell, k);
    ASSERT_EQ(shard.size(), xs.size());
    std::vector<std::size_t> count(k, 0);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      ASSERT_LT(shard[i], k);
      ++count[shard[i]];
      for (std::size_t j = 0; j < xs.size(); ++j) {
        if (xs[i] < xs[j]) EXPECT_LE(shard[i], shard[j]);
      }
    }
    // Uniform positions stripe near-evenly: every shard owns someone.
    for (const auto c : count) EXPECT_GT(c, 0u);
  }
}

TEST(ShardedKernel, ShardScopeCountsDeliveriesNotHoming) {
  sim::Simulator sim;
  sim.configure_shards({0, 0, 1, 1}, 2, sim::microseconds(500), 1);
  EXPECT_EQ(sim.current_shard(), 0u);
  {
    sim::ShardScope homing(sim, 1, sim::ShardScope::Kind::kHoming);
    EXPECT_EQ(sim.current_shard(), 1u);
    EXPECT_EQ(sim.sync_crossings(), 0u);
    {
      sim::ShardScope same(sim, 1);  // no boundary: not a crossing
      EXPECT_EQ(sim.sync_crossings(), 0u);
      sim::ShardScope delivery(sim, 0);
      EXPECT_EQ(sim.sync_crossings(), 1u);
      EXPECT_EQ(sim.current_shard(), 0u);
    }
    EXPECT_EQ(sim.current_shard(), 1u);
  }
  EXPECT_EQ(sim.current_shard(), 0u);
  EXPECT_EQ(sim.channel_traffic(1, 0), 1u);
}

TEST(ShardedKernel, CancelAndPendingDecodeShardTaggedIds) {
  sim::Simulator sim;
  sim.configure_shards({0, 0, 1, 1}, 2, sim::microseconds(500), 1);
  bool fired = false;
  const auto id = sim.at_node(3, sim::milliseconds(1), [&fired] { fired = true; });
  EXPECT_TRUE(sim.pending(id));
  EXPECT_EQ(sim.shard_pending(1), 1u);
  EXPECT_EQ(sim.shard_pending(0), 0u);
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.pending(id));
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.run_until(sim::milliseconds(2));
  EXPECT_FALSE(fired);
}

TEST(ShardedKernel, ConservativeLookaheadDerivesFromChannelFloor) {
  // 250 kbps, 500 us min backoff, and the codec-derived floor — the 9-byte
  // encoded ABR beacon: 500 us + 288 us airtime.
  static_assert(net::wire::kMinControlBytes == 9);
  const auto la = channel::conservative_lookahead(
      250'000.0, sim::microseconds(500), net::wire::kMinControlBytes, 20.0);
  EXPECT_EQ(la.window.nanos(), 788'000);
  // Two nodes closing at 2 x 20 m/s for 788 us: ~3 cm of drift per window.
  EXPECT_NEAR(la.guard_band_m, 2.0 * 20.0 * 788e-6, 1e-9);
}

}  // namespace
}  // namespace rica
