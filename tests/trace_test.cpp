// Trace-driven mobility: record -> replay round-trip exactness for every
// built-in model (positions and chord speeds reproduce to exact double
// equality at sample instants), setdest/BonnMotion fixture parsing, format
// auto-detection, the data-derived speed bound, and replayability (queries
// in any order return the same bits).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "mobility/mobility_model.hpp"
#include "mobility/trace.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace rica::mobility {
namespace {

std::string data_path(const std::string& file) {
  return std::string(RICA_TEST_DATA_DIR) + "/" + file;
}

/// A unique temp-file path, removed when the guard dies.
struct TempFile {
  explicit TempFile(const std::string& stem) {
    path = (std::filesystem::temp_directory_path() /
            ("rica_trace_test_" + stem + "_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             ".trace"))
               .string();
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

MobilityConfig base_config(const char* spec) {
  MobilityConfig cfg = parse_mobility_spec(spec);
  cfg.field = Field{800.0, 800.0};
  cfg.max_speed_mps = 17.5;
  cfg.pause = sim::seconds(1);
  return cfg;
}

// ---------------------------------------------------------------------------
// Record -> replay round trip, every built-in model
// ---------------------------------------------------------------------------

class TraceRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(TraceRoundTrip, ReplayMatchesSourceModelExactlyAtSampleTimes) {
  const auto cfg = base_config(GetParam());
  const std::size_t n = 16;
  const auto dt = sim::milliseconds(500);
  const std::int64_t steps = 120;  // 60 s of motion

  // Record one realization...
  sim::RngManager rng(4242);
  const auto recorded = make_mobility_model(n, cfg, rng);
  std::stringstream trace_text;
  write_bonnmotion_trace(*recorded, dt * steps, dt, trace_text);

  // ...replay it...
  const auto data =
      parse_bonnmotion_trace(trace_text, "roundtrip", cfg.field);
  TraceMobilityModel replay(n, std::move(data), "roundtrip");

  // ...and walk a *fresh* instance of the source model (same seed -> same
  // trajectory) collecting its positions at every sample instant.
  const auto source = make_mobility_model(n, cfg, rng);
  std::vector<std::vector<Vec2>> source_pos(n);
  for (std::uint32_t id = 0; id < n; ++id) {
    source_pos[id].reserve(static_cast<std::size_t>(steps) + 1);
    for (std::int64_t k = 0; k <= steps; ++k) {
      source_pos[id].push_back(source->position_at(id, dt * k));
    }
  }

  // Randomized sample-aligned query times, per node, in increasing order
  // (the replay itself accepts any order; see ReplayIsQueryOrderInvariant).
  std::mt19937_64 pick(7);
  for (std::uint32_t id = 0; id < n; ++id) {
    for (std::int64_t k = 0; k <= steps; ++k) {
      if ((pick() & 3) != 0) continue;  // ~1/4 of the instants, randomized
      const sim::Time t = dt * k;
      // Positions: exact double equality — the writer's %.17g round-trips
      // every double and the replay anchors each segment at its knot.
      EXPECT_EQ(replay.position_at(id, t), source_pos[id][k])
          << GetParam() << " node " << id << " at t=" << t.seconds();
      // Speeds: the replay moves at the chord velocity of the sample
      // interval; the chord of the *source model's* positions, computed
      // with the same arithmetic, must match bit for bit.
      if (k < steps) {
        const Vec2 chord_vel = (source_pos[id][k + 1] - source_pos[id][k]) *
                               (1.0 / dt.seconds());
        EXPECT_EQ(replay.speed_at(id, t), chord_vel.norm())
            << GetParam() << " node " << id << " at t=" << t.seconds();
      }
    }
  }
}

TEST_P(TraceRoundTrip, DataDerivedSpeedBoundHoldsAndIsTight) {
  const auto cfg = base_config(GetParam());
  sim::RngManager rng(99);
  const auto recorded = make_mobility_model(10, cfg, rng);
  std::stringstream trace_text;
  write_bonnmotion_trace(*recorded, sim::seconds(40), sim::milliseconds(250),
                         trace_text);
  TraceMobilityModel replay(
      10, parse_bonnmotion_trace(trace_text, "bound", cfg.field), "bound");

  // Chord speeds never exceed the source model's bound (1e-6 slack absorbs
  // the same rounding the displacement property test allows)...
  EXPECT_LE(replay.max_speed_mps(), cfg.max_speed_mps + 1e-6) << GetParam();
  // ...and every replayed speed obeys the replay's own bound *exactly*,
  // which is what the neighbor index's staleness slack needs.
  for (std::uint32_t id = 0; id < 10; ++id) {
    for (int k = 0; k <= 160; ++k) {
      const auto t = sim::milliseconds(250 * k);
      EXPECT_LE(replay.speed_at(id, t), replay.max_speed_mps())
          << GetParam() << " node " << id << " at t=" << t.seconds();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, TraceRoundTrip,
    ::testing::Values("waypoint", "walk", "gauss-markov", "group",
                      "manhattan", "group:size=3,radius=60,frac=0.7",
                      "walk:leg=2"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name(info.param);
      for (char& c : name) {
        if (c == ':' || c == '=' || c == ',' || c == '-' || c == '.') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Replay semantics
// ---------------------------------------------------------------------------

TEST(TraceReplay, ReplayIsQueryOrderInvariant) {
  // The trace is immutable data, so unlike the synthetic models the replay
  // accepts queries in any order — and must return identical bits however
  // the (t, node) pairs interleave.
  const auto cfg = base_config("waypoint");
  sim::RngManager rng(17);
  const auto model = make_mobility_model(6, cfg, rng);
  std::stringstream trace_text;
  write_bonnmotion_trace(*model, sim::seconds(30), sim::milliseconds(400),
                         trace_text);
  const auto data = parse_bonnmotion_trace(trace_text, "order", cfg.field);
  TraceMobilityModel forward(6, TraceData{data}, "order");
  TraceMobilityModel shuffled(6, TraceData{data}, "order");

  std::vector<std::pair<std::uint32_t, sim::Time>> queries;
  for (std::uint32_t id = 0; id < 6; ++id) {
    for (int k = 0; k <= 200; ++k) {
      queries.emplace_back(id, sim::milliseconds(157 * k));
    }
  }
  std::vector<Vec2> expected;
  expected.reserve(queries.size());
  for (const auto& [id, t] : queries) {
    expected.push_back(forward.position_at(id, t));
  }
  // Re-evaluate in shuffled order against the forward-order answers.
  std::shuffle(queries.begin(), queries.end(), std::mt19937_64(3));
  for (const auto& [id, t] : queries) {
    const std::size_t idx =
        static_cast<std::size_t>(id) * 201 +
        static_cast<std::size_t>(t.nanos() / sim::milliseconds(157).nanos());
    EXPECT_EQ(shuffled.position_at(id, t), expected[idx])
        << "node " << id << " at t=" << t.seconds();
  }
}

TEST(TraceReplay, HoldsPositionBeforeFirstAndAfterLastKnot) {
  std::stringstream in("5.0 100.0 200.0 10.0 300.0 200.0\n");
  const auto data = parse_bonnmotion_trace(in, "hold", Field{1000, 1000});
  TraceMobilityModel replay(1, TraceData{data}, "hold");
  EXPECT_EQ(replay.position_at(0, sim::Time::zero()), (Vec2{100.0, 200.0}));
  EXPECT_EQ(replay.position_at(0, sim::seconds(3)), (Vec2{100.0, 200.0}));
  EXPECT_DOUBLE_EQ(replay.speed_at(0, sim::seconds(3)), 0.0);
  EXPECT_EQ(replay.position_at(0, sim::seconds(10)), (Vec2{300.0, 200.0}));
  EXPECT_EQ(replay.position_at(0, sim::seconds(400)), (Vec2{300.0, 200.0}));
  EXPECT_DOUBLE_EQ(replay.speed_at(0, sim::seconds(12)), 0.0);
  EXPECT_DOUBLE_EQ(replay.speed_at(0, sim::seconds(7)), 40.0);
  EXPECT_EQ(replay.duration(), sim::seconds(10));
}

TEST(TraceReplay, UsesTracePrefixWhenItCoversMoreNodes) {
  std::stringstream in(
      "0.0 1.0 1.0\n"
      "0.0 2.0 2.0\n"
      "0.0 3.0 3.0\n");
  const auto data = parse_bonnmotion_trace(in, "prefix", Field{10, 10});
  TraceMobilityModel replay(2, TraceData{data}, "prefix");
  EXPECT_EQ(replay.size(), 2u);
  EXPECT_EQ(replay.position_at(1, sim::seconds(1)), (Vec2{2.0, 2.0}));
}

// ---------------------------------------------------------------------------
// Fixture files: setdest and BonnMotion grammars, auto-detection
// ---------------------------------------------------------------------------

TEST(SetdestFixture, ReplaysPausesRedirectsAndStaticNodes) {
  const Field field{1000.0, 1000.0};
  const auto data = load_trace(data_path("sample_setdest.tcl"), field);
  ASSERT_EQ(data.nodes.size(), 3u);
  TraceMobilityModel replay(3, TraceData{data}, "fixture");

  // Node 0: holds (100,100) until t=2, reaches (200,100) at t=12 (10 m/s),
  // pauses until the t=20 command, then reaches (200,300) at t=30 (20 m/s).
  EXPECT_EQ(replay.position_at(0, sim::seconds(1)), (Vec2{100.0, 100.0}));
  EXPECT_DOUBLE_EQ(replay.position_at(0, sim::seconds(7)).x, 150.0);
  EXPECT_DOUBLE_EQ(replay.position_at(0, sim::seconds(7)).y, 100.0);
  EXPECT_EQ(replay.position_at(0, sim::seconds(15)), (Vec2{200.0, 100.0}));
  EXPECT_DOUBLE_EQ(replay.speed_at(0, sim::seconds(15)), 0.0);
  EXPECT_DOUBLE_EQ(replay.position_at(0, sim::seconds(25)).y, 200.0);
  EXPECT_EQ(replay.position_at(0, sim::seconds(40)), (Vec2{200.0, 300.0}));

  // Node 1: heads (900,500) -> (100,500) at 10 m/s from t=1, is redirected
  // mid-flight at t=5 from (860,500) toward (900,900) at 25 m/s.
  EXPECT_DOUBLE_EQ(replay.position_at(1, sim::seconds(5)).x, 860.0);
  EXPECT_DOUBLE_EQ(replay.position_at(1, sim::seconds(5)).y, 500.0);
  EXPECT_DOUBLE_EQ(replay.speed_at(1, sim::seconds(3)), 10.0);
  const Vec2 final1 = replay.position_at(1, sim::seconds(60));
  EXPECT_DOUBLE_EQ(final1.x, 900.0);
  EXPECT_DOUBLE_EQ(final1.y, 900.0);

  // Node 2 never receives a setdest: static forever.
  EXPECT_EQ(replay.position_at(2, sim::seconds(55)), (Vec2{500.0, 500.0}));
  EXPECT_DOUBLE_EQ(replay.speed_at(2, sim::seconds(55)), 0.0);
}

TEST(BonnMotionFixture, ReplaysWaypointTriples) {
  const Field field{1000.0, 1000.0};
  const auto data = load_trace(data_path("sample.bonnmotion"), field);
  ASSERT_EQ(data.nodes.size(), 3u);
  EXPECT_DOUBLE_EQ(data.max_speed_mps, 20.0);
  TraceMobilityModel replay(3, TraceData{data}, "fixture");
  EXPECT_DOUBLE_EQ(replay.position_at(0, sim::seconds(5)).x, 150.0);
  EXPECT_DOUBLE_EQ(replay.position_at(1, sim::seconds(10)).x, 700.0);
  EXPECT_EQ(replay.position_at(2, sim::seconds(30)), (Vec2{500.0, 500.0}));
}

TEST(TraceFile, WriterFileOverloadRoundTrips) {
  const auto cfg = base_config("manhattan");
  sim::RngManager rng(31);
  const auto model = make_mobility_model(8, cfg, rng);
  TempFile tmp("writer");
  write_bonnmotion_trace(*model, sim::seconds(20), sim::milliseconds(500),
                         tmp.path);

  const auto data = load_trace(tmp.path, cfg.field);
  ASSERT_EQ(data.nodes.size(), 8u);
  TraceMobilityModel replay(8, TraceData{data}, tmp.path);
  const auto fresh = make_mobility_model(8, cfg, rng);
  for (std::uint32_t id = 0; id < 8; ++id) {
    for (int k = 0; k <= 40; ++k) {
      const auto t = sim::milliseconds(500 * k);
      EXPECT_EQ(replay.position_at(id, t), fresh->position_at(id, t))
          << "node " << id << " at t=" << t.seconds();
    }
  }
}

TEST(TraceCache, SharedLoadReusesOneParseAndTracksRewrites) {
  const Field field{1000.0, 1000.0};
  TempFile tmp("cache");
  std::ofstream(tmp.path) << "0.0 10.0 10.0 5.0 20.0 20.0\n";
  const auto a1 = load_trace_shared(tmp.path, field);
  const auto a2 = load_trace_shared(tmp.path, field);
  EXPECT_EQ(a1.get(), a2.get()) << "same file must alias one parse";
  ASSERT_EQ(a1->nodes.size(), 1u);

  // Rewriting the file (different size keys a re-parse) must not serve the
  // stale trajectory.
  std::ofstream(tmp.path)
      << "0.0 10.0 10.0 5.0 20.0 20.0 9.0 400.0 400.0\n";
  const auto b = load_trace_shared(tmp.path, field);
  EXPECT_NE(b.get(), a1.get());
  ASSERT_EQ(b->nodes.at(0).size(), 3u);
  EXPECT_EQ(b->nodes.at(0).back().p, (Vec2{400.0, 400.0}));
  // A different arena is a different validation context: separate entry.
  const auto c = load_trace_shared(tmp.path, Field{500.0, 500.0});
  EXPECT_NE(c.get(), b.get());
}

TEST(TraceSpec, FlowsThroughMobilityManager) {
  const auto cfg = base_config("gauss-markov");
  sim::RngManager rng(53);
  const auto model = make_mobility_model(5, cfg, rng);
  TempFile tmp("spec");
  write_bonnmotion_trace(*model, sim::seconds(10), sim::milliseconds(250),
                         tmp.path);

  MobilityConfig replay_cfg =
      parse_mobility_spec("trace:file=" + tmp.path);
  EXPECT_EQ(replay_cfg.model, ModelKind::kTrace);
  replay_cfg.field = cfg.field;
  MobilityManager mgr(5, replay_cfg, rng);
  const auto fresh = make_mobility_model(5, cfg, rng);
  for (int k = 0; k <= 40; ++k) {
    const auto t = sim::milliseconds(250 * k);
    const auto snap = mgr.snapshot(t);
    for (std::uint32_t id = 0; id < 5; ++id) {
      EXPECT_EQ(snap[id], fresh->position_at(id, t))
          << "node " << id << " at t=" << t.seconds();
    }
  }
  EXPECT_GT(mgr.max_speed_mps(), 0.0);
  EXPECT_LE(mgr.max_speed_mps(), cfg.max_speed_mps + 1e-6);
}

}  // namespace
}  // namespace rica::mobility
