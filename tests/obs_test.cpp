// Observability-layer suite: trace filter parsing, the metrics registry
// and its fold semantics, JSONL record schemas, byte-identical trace
// determinism (including under concurrent runs), Perfetto JSON structure,
// the time-series sampler, the drop-reason taxonomy's sum property, and
// the null-sink contract (tracing must never move the golden stream hash).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/scenario.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/time.hpp"
#include "stats/metrics.hpp"

namespace rica {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

struct TempFile {
  explicit TempFile(const std::string& tag) {
    path = (std::filesystem::temp_directory_path() /
            ("rica_obs_" + tag + ".tmp"))
               .string();
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) out.push_back(line);
  return out;
}

/// Minimal JSON well-formedness scan: braces/brackets balance outside
/// strings, strings terminate, no stray control characters.  Not a parser,
/// but enough to catch broken quoting or truncated records.
bool json_balanced(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

/// True when `line` contains `"key":` (JSONL records use fixed key order,
/// but schema presence is what matters for consumers).
bool has_key(const std::string& line, const std::string& key) {
  return line.find("\"" + key + "\":") != std::string::npos;
}

std::string field_of(const std::string& line, const std::string& key) {
  const auto at = line.find("\"" + key + "\":");
  if (at == std::string::npos) return {};
  auto start = at + key.size() + 3;
  bool quoted = false;
  if (start < line.size() && line[start] == '"') {
    quoted = true;
    ++start;
  }
  auto end = start;
  while (end < line.size() &&
         (quoted ? line[end] != '"'
                 : (line[end] != ',' && line[end] != '}'))) {
    ++end;
  }
  return line.substr(start, end - start);
}

harness::ScenarioConfig short_config() {
  harness::ScenarioConfig cfg;
  cfg.protocol = harness::ProtocolKind::kRica;
  cfg.mean_speed_kmh = 36.0;
  cfg.sim_s = 3.0;
  cfg.seed = 0x90140ULL;
  return cfg;
}

// ---------------------------------------------------------------------------
// Filter parsing
// ---------------------------------------------------------------------------

TEST(TraceFilter, ParsesCategoriesAndLists) {
  using obs::TraceFilter;
  EXPECT_EQ(obs::parse_trace_filter("packet"), TraceFilter::kPacket);
  EXPECT_EQ(obs::parse_trace_filter("route"), TraceFilter::kRoute);
  EXPECT_EQ(obs::parse_trace_filter("kernel"), TraceFilter::kKernel);
  EXPECT_EQ(obs::parse_trace_filter("span"), TraceFilter::kSpan);
  EXPECT_EQ(obs::parse_trace_filter("all"), TraceFilter::kAll);
  EXPECT_TRUE(obs::has(TraceFilter::kAll, TraceFilter::kSpan));
  EXPECT_EQ(obs::parse_trace_filter("packet,route"),
            TraceFilter::kPacket | TraceFilter::kRoute);
  EXPECT_EQ(obs::parse_trace_filter("route,span"),
            TraceFilter::kRoute | TraceFilter::kSpan);
  EXPECT_THROW((void)obs::parse_trace_filter("packets"),
               std::invalid_argument);
  EXPECT_THROW((void)obs::parse_trace_filter(""), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, OwnedAndLazyEntriesSnapshotSorted) {
  obs::Registry reg;
  auto& c = reg.counter("b.count");
  c.add(3);
  c.add();
  auto& g = reg.gauge("a.level");
  g.set(2.5);
  std::uint64_t lazy = 7;
  reg.counter_fn("c.lazy", [&lazy] { return static_cast<double>(lazy); });

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.level");
  EXPECT_EQ(snap[0].kind, obs::StatKind::kGauge);
  EXPECT_EQ(snap[0].value, 2.5);
  EXPECT_EQ(snap[1].name, "b.count");
  EXPECT_EQ(snap[1].value, 4.0);
  EXPECT_EQ(snap[2].name, "c.lazy");
  EXPECT_EQ(snap[2].value, 7.0);

  lazy = 11;  // lazy entries re-read at every snapshot
  EXPECT_EQ(reg.read("c.lazy"), 11.0);
  EXPECT_EQ(reg.read("missing"), 0.0);
}

TEST(Registry, FoldSumsCountersAndMaxesGauges) {
  std::map<std::string, obs::Sample> acc;
  obs::fold_samples(acc, std::vector<obs::Sample>{
                             {"events", obs::StatKind::kCounter, 10.0},
                             {"peak", obs::StatKind::kGauge, 5.0}});
  obs::fold_samples(acc, std::vector<obs::Sample>{
                             {"events", obs::StatKind::kCounter, 32.0},
                             {"peak", obs::StatKind::kGauge, 3.0}});
  EXPECT_EQ(acc.at("events").value, 42.0);
  EXPECT_EQ(acc.at("peak").value, 5.0);
}

TEST(Registry, AverageFoldsSummaryStats) {
  harness::ScenarioResult a;
  a.stats["kernel.events_executed"] =
      obs::Sample{"kernel.events_executed", obs::StatKind::kCounter, 100.0};
  a.stats["stack.table_load"] =
      obs::Sample{"stack.table_load", obs::StatKind::kGauge, 0.4};
  a.dropped = 2;
  harness::ScenarioResult b = a;
  b.stats["kernel.events_executed"].value = 50.0;
  b.stats["stack.table_load"].value = 0.7;
  b.dropped = 3;
  const auto avg = harness::average({a, b});
  EXPECT_EQ(avg.stats.at("kernel.events_executed").value, 150.0);
  EXPECT_EQ(avg.stats.at("stack.table_load").value, 0.7);
  EXPECT_EQ(avg.dropped, 5u);
}

// ---------------------------------------------------------------------------
// Drop-reason taxonomy
// ---------------------------------------------------------------------------

TEST(DropTaxonomy, PerReasonCountersPartitionTheTotal) {
  stats::MetricsCollector m;
  net::DataPacket pkt;
  pkt.flow = 0;
  m.on_generated(pkt);
  m.on_generated(pkt);
  m.on_generated(pkt);
  m.on_dropped(pkt, stats::DropReason::kBufferOverflow);
  m.on_dropped(pkt, stats::DropReason::kNoRoute);
  m.on_dropped(pkt, stats::DropReason::kNoRoute);
  const auto s = m.finalize(sim::seconds(1));
  EXPECT_EQ(s.dropped, 3u);
  EXPECT_EQ(s.drops[0], 1u);
  EXPECT_EQ(s.drops[2], 2u);
  std::uint64_t sum = 0;
  for (const auto d : s.drops) sum += d;
  EXPECT_EQ(s.dropped, sum);
}

TEST(DropTaxonomy, ScenarioTotalEqualsReasonSum) {
  auto cfg = short_config();
  cfg.mean_speed_kmh = 72.0;  // mobility-induced breakage exercises reasons
  const auto r = harness::run_scenario(cfg);
  std::uint64_t sum = 0;
  for (const auto d : r.drops) sum += d;
  EXPECT_EQ(r.dropped, sum);
}

// ---------------------------------------------------------------------------
// JSONL schema
// ---------------------------------------------------------------------------

TEST(JsonlTrace, EveryRecordTypeMatchesItsSchema) {
  TempFile trace("schema");
  auto cfg = short_config();
  cfg.trace_out = trace.path;
  cfg.trace_filter = "all";
  cfg.perfetto_out = {};  // kernel records ride the trace filter alone
  (void)harness::run_scenario(cfg);

  const auto lines = lines_of(slurp(trace.path));
  ASSERT_FALSE(lines.empty());
  std::map<std::string, std::uint64_t> stages;
  std::size_t kernels = 0;
  for (const auto& line : lines) {
    ASSERT_TRUE(json_balanced(line)) << line;
    ASSERT_EQ(line.front(), '{') << line;
    ASSERT_EQ(line.back(), '}') << line;
    const auto type = field_of(line, "type");
    if (type == "packet") {
      for (const char* key : {"stage", "t_ns", "flow", "seq", "node", "src",
                              "dst", "peer", "hops", "bytes", "detail"}) {
        EXPECT_TRUE(has_key(line, key)) << key << " missing in " << line;
      }
      stages[field_of(line, "stage")]++;
    } else if (type == "route") {
      for (const char* key : {"stage", "t_ns", "node", "src", "dst", "bid",
                              "metric", "protocol", "msg", "bytes"}) {
        EXPECT_TRUE(has_key(line, key)) << key << " missing in " << line;
      }
      stages[field_of(line, "stage")]++;
    } else if (type == "kernel") {
      for (const char* key :
           {"t_ns", "events_executed", "batched_fires", "pending"}) {
        EXPECT_TRUE(has_key(line, key)) << key << " missing in " << line;
      }
      ++kernels;
    } else if (type == "span") {
      for (const char* key :
           {"kind", "t_ns", "span", "parent", "trace", "flow", "seq", "node",
            "src", "dst", "start_ns", "dur_ns", "detail"}) {
        EXPECT_TRUE(has_key(line, key)) << key << " missing in " << line;
      }
      stages[field_of(line, "kind")]++;
    } else {
      FAIL() << "unknown record type '" << type << "' in " << line;
    }
  }
  // The packet, route, and span lifecycles must actually appear.
  for (const char* stage : {"generated", "enqueued", "tx_start", "tx_end",
                            "delivered", "discovery_start", "control_tx",
                            "established", "packet", "queue", "airtime",
                            "discovery"}) {
    EXPECT_GT(stages[stage], 0u) << "no '" << stage << "' records";
  }
  EXPECT_GT(kernels, 0u) << "no kernel observation records";
}

TEST(JsonlTrace, FilterNarrowsTheStream) {
  TempFile trace("filter");
  auto cfg = short_config();
  cfg.trace_out = trace.path;
  cfg.trace_filter = "route";
  (void)harness::run_scenario(cfg);
  for (const auto& line : lines_of(slurp(trace.path))) {
    EXPECT_EQ(field_of(line, "type"), "route") << line;
  }
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

TEST(TraceDeterminism, RunRerunAndConcurrentRunsAreByteIdentical) {
  auto cfg = short_config();
  TempFile first("det_a");
  TempFile second("det_b");
  cfg.trace_out = first.path;
  (void)harness::run_scenario(cfg);
  cfg.trace_out = second.path;
  (void)harness::run_scenario(cfg);
  const auto reference = slurp(first.path);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(reference, slurp(second.path));

  // Concurrent instrumented runs (the sweep's threaded shape): each thread
  // owns its sink, and sim-time stamping leaves nothing wall-clock to race.
  TempFile left("det_l");
  TempFile right("det_r");
  auto run_with = [&cfg](const std::string& path) {
    auto local = cfg;
    local.trace_out = path;
    (void)harness::run_scenario(local);
  };
  std::thread a(run_with, left.path);
  std::thread b(run_with, right.path);
  a.join();
  b.join();
  EXPECT_EQ(reference, slurp(left.path));
  EXPECT_EQ(reference, slurp(right.path));
}

TEST(TraceDeterminism, NullSinkLeavesGoldenStreamUntouched) {
  // The zero-cost-off contract, stated as the golden suite sees it: a fully
  // instrumented run and a bare run produce the same metrics stream hash —
  // and the bare run's hash is the one pinned in golden_hashes.txt.
  auto cfg = short_config();
  cfg.sim_s = 5.0;  // the golden suite's exact configuration (run:RICA)
  const auto bare = harness::run_scenario(cfg);

  TempFile trace("null_t");
  TempFile perfetto("null_p");
  TempFile series("null_s");
  auto traced = cfg;
  traced.trace_out = trace.path;
  traced.perfetto_out = perfetto.path;
  traced.series_out = series.path;
  traced.sample_dt_s = 0.5;
  const auto instrumented = harness::run_scenario(traced);

  EXPECT_EQ(bare.stream_hash, instrumented.stream_hash);
  EXPECT_EQ(bare.generated, instrumented.generated);
  EXPECT_EQ(bare.delivered, instrumented.delivered);
  EXPECT_EQ(bare.drops, instrumented.drops);
  EXPECT_EQ(bare.control_transmissions, instrumented.control_transmissions);
  // Sampler events are real kernel events: work moves, the stream does not.
  EXPECT_GT(instrumented.events_executed, bare.events_executed);

  // Cross-check against the pinned capture so this suite fails the moment
  // the observability layer would silently re-record the golden hashes.
  std::ifstream in(std::string(RICA_TEST_DATA_DIR) + "/golden_hashes.txt");
  ASSERT_TRUE(in.is_open());
  std::map<std::string, std::uint64_t> pinned;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key, hex;
    if (fields >> key >> hex) pinned[key] = std::stoull(hex, nullptr, 16);
  }
  EXPECT_EQ(pinned.size(), 14u) << "golden capture gained or lost entries";
  ASSERT_TRUE(pinned.count("run:RICA"));
  EXPECT_EQ(bare.stream_hash, pinned.at("run:RICA"))
      << "bare run drifted from the pinned golden capture";
}

// ---------------------------------------------------------------------------
// Registry <-> summary plumbing
// ---------------------------------------------------------------------------

TEST(SummaryStats, TypedFieldsMirrorTheRegistrySnapshot) {
  const auto r = harness::run_scenario(short_config());
  ASSERT_FALSE(r.stats.empty());
  const auto value = [&r](const char* name) {
    return r.stats.at(name).value;
  };
  EXPECT_EQ(static_cast<double>(r.events_executed),
            value("kernel.events_executed"));
  EXPECT_EQ(static_cast<double>(r.batched_fires),
            value("kernel.batched_fires"));
  EXPECT_EQ(static_cast<double>(r.heap_fallbacks),
            value("kernel.heap_fallbacks"));
  EXPECT_EQ(static_cast<double>(r.peak_pending_events),
            value("kernel.peak_pending"));
  EXPECT_EQ(static_cast<double>(r.slab_high_water),
            value("kernel.slab_high_water"));
  EXPECT_EQ(static_cast<double>(r.pool_high_water),
            value("stack.pool_high_water"));
  EXPECT_EQ(r.table_load, value("stack.table_load"));
  EXPECT_EQ(r.stats.at("kernel.events_executed").kind,
            obs::StatKind::kCounter);
  EXPECT_EQ(r.stats.at("stack.table_load").kind, obs::StatKind::kGauge);
}

// ---------------------------------------------------------------------------
// Perfetto writer
// ---------------------------------------------------------------------------

TEST(Perfetto, EmitsWellFormedTraceEventJson) {
  TempFile out("perfetto");
  auto cfg = short_config();
  cfg.perfetto_out = out.path;
  (void)harness::run_scenario(cfg);

  const auto text = slurp(out.path);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_TRUE(json_balanced(text)) << "unbalanced trace_event JSON";
  // The three record shapes chrome://tracing renders: metadata naming the
  // tracks, complete ("X") duration slices, and counter ("C") samples.
  EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"process_name\""), std::string::npos);

  // Byte-identity holds for the profile too.
  TempFile again("perfetto2");
  cfg.perfetto_out = again.path;
  (void)harness::run_scenario(cfg);
  EXPECT_EQ(text, slurp(again.path));
}

// ---------------------------------------------------------------------------
// Series sampler
// ---------------------------------------------------------------------------

TEST(SeriesSampler, WritesOneRowPerPeriodWithStableColumns) {
  TempFile out("series");
  auto cfg = short_config();
  cfg.series_out = out.path;
  cfg.sample_dt_s = 0.5;
  (void)harness::run_scenario(cfg);

  const auto lines = lines_of(slurp(out.path));
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines[0],
            "t_s,pending_events,events_executed,buffered_packets,delivered,"
            "delivery_rate_pps,control_kbps");
  // 3 s at 0.5 s per sample: rows at 0.5..3.0 inclusive.
  EXPECT_EQ(lines.size(), 1u + 6u);
  double prev_t = -1.0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::stringstream row(lines[i]);
    std::string cell;
    std::vector<std::string> cells;
    while (std::getline(row, cell, ',')) cells.push_back(cell);
    ASSERT_EQ(cells.size(), 7u) << lines[i];
    const double t = std::stod(cells[0]);
    EXPECT_GT(t, prev_t);
    prev_t = t;
  }

  // Rerun is byte-identical (the sampler is part of the determinism
  // contract like every other sink).
  TempFile again("series2");
  cfg.series_out = again.path;
  (void)harness::run_scenario(cfg);
  EXPECT_EQ(slurp(out.path), slurp(again.path));
}

TEST(SeriesSampler, SampleDtWithoutPathIsRejected) {
  auto cfg = short_config();
  cfg.sample_dt_s = 0.5;
  EXPECT_THROW((void)harness::run_scenario(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace rica
