// Random-waypoint mobility: containment, pause behaviour, speed bounds,
// determinism, and the static-network special case.
#include <gtest/gtest.h>

#include "mobility/random_waypoint.hpp"
#include "sim/random.hpp"

namespace rica::mobility {
namespace {

WaypointConfig make_config(double max_speed) {
  WaypointConfig cfg;
  cfg.field = Field{1000.0, 1000.0};
  cfg.max_speed_mps = max_speed;
  cfg.pause = sim::seconds(3);
  return cfg;
}

TEST(Field, Contains) {
  const Field f{100.0, 50.0};
  EXPECT_TRUE(f.contains({0.0, 0.0}));
  EXPECT_TRUE(f.contains({100.0, 50.0}));
  EXPECT_FALSE(f.contains({100.1, 10.0}));
  EXPECT_FALSE(f.contains({50.0, -0.1}));
}

TEST(Vec2, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(WaypointNode, StaysInsideField) {
  sim::RngManager rng(5);
  WaypointNode node(make_config(20.0), rng.stream("m", 0));
  for (int t = 0; t <= 600; ++t) {
    const Vec2 p = node.position_at(sim::seconds(t));
    EXPECT_TRUE(make_config(20.0).field.contains(p))
        << "escaped at t=" << t << " (" << p.x << "," << p.y << ")";
  }
}

TEST(WaypointNode, StaticWhenMaxSpeedZero) {
  sim::RngManager rng(6);
  WaypointNode node(make_config(0.0), rng.stream("m", 0));
  const Vec2 p0 = node.position_at(sim::seconds(0));
  const Vec2 p1 = node.position_at(sim::seconds(100));
  EXPECT_EQ(p0, p1);
  EXPECT_DOUBLE_EQ(node.speed_at(sim::seconds(200)), 0.0);
}

TEST(WaypointNode, SpeedNeverExceedsMax) {
  sim::RngManager rng(7);
  WaypointNode node(make_config(15.0), rng.stream("m", 3));
  for (int t = 0; t <= 300; ++t) {
    EXPECT_LE(node.speed_at(sim::seconds(t)), 15.0);
    EXPECT_GE(node.speed_at(sim::seconds(t)), 0.0);
  }
}

TEST(WaypointNode, MovementBoundedBySpeedTimesTime) {
  sim::RngManager rng(8);
  WaypointNode node(make_config(10.0), rng.stream("m", 1));
  Vec2 prev = node.position_at(sim::seconds(0));
  for (int t = 1; t <= 200; ++t) {
    const Vec2 cur = node.position_at(sim::seconds(t));
    EXPECT_LE(distance(prev, cur), 10.0 + 1e-9);
    prev = cur;
  }
}

TEST(WaypointNode, PausesAtWaypoint) {
  // With max speed high and a 3 s pause, the node must be motionless for
  // stretches: sample densely and verify zero-speed intervals exist.
  sim::RngManager rng(9);
  WaypointNode node(make_config(40.0), rng.stream("m", 2));
  int paused_samples = 0;
  for (int i = 0; i < 4000; ++i) {
    if (node.speed_at(sim::milliseconds(i * 100)) == 0.0) ++paused_samples;
  }
  EXPECT_GT(paused_samples, 0);
}

TEST(WaypointNode, DeterministicForSameSeed) {
  sim::RngManager rng(10);
  WaypointNode a(make_config(12.0), rng.stream("m", 4));
  WaypointNode b(make_config(12.0), rng.stream("m", 4));
  for (int t = 0; t <= 100; ++t) {
    EXPECT_EQ(a.position_at(sim::seconds(t)), b.position_at(sim::seconds(t)));
  }
}

TEST(MobilityManager, IndependentPerNodeTrajectories) {
  sim::RngManager rng(11);
  MobilityManager mgr(5, make_config(10.0), rng);
  const Vec2 p0 = mgr.position(0, sim::seconds(1));
  const Vec2 p1 = mgr.position(1, sim::seconds(1));
  EXPECT_NE(p0, p1);  // distinct streams give distinct start points
  EXPECT_EQ(mgr.size(), 5u);
}

TEST(MobilityManager, DistanceIsSymmetricAndPositive) {
  sim::RngManager rng(12);
  MobilityManager mgr(4, make_config(8.0), rng);
  const double dab = mgr.node_distance(0, 1, sim::seconds(5));
  const double dba = mgr.node_distance(1, 0, sim::seconds(5));
  EXPECT_DOUBLE_EQ(dab, dba);
  EXPECT_GE(dab, 0.0);
}

TEST(MobilityManager, MeanSpeedApproachesHalfMax) {
  // Speeds are U(0, max]; over many legs the time-weighted mean of the
  // moving phase should land well inside (0.25, 0.75) * max.
  sim::RngManager rng(13);
  MobilityManager mgr(20, make_config(20.0), rng);
  double sum = 0;
  int count = 0;
  for (std::uint32_t n = 0; n < 20; ++n) {
    for (int t = 0; t < 500; t += 5) {
      const double s = mgr.speed(n, sim::seconds(t));
      if (s > 0) {
        sum += s;
        ++count;
      }
    }
  }
  ASSERT_GT(count, 0);
  const double mean_moving = sum / count;
  EXPECT_GT(mean_moving, 5.0);
  EXPECT_LT(mean_moving, 15.0);
}

}  // namespace
}  // namespace rica::mobility
