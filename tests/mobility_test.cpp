// Mobility subsystem: the waypoint unit tests, spec parsing, and the
// model-generic property suite — for every model x randomized configs,
// (a) positions stay inside the field, (b) instantaneous speed never
// exceeds max_speed_mps(), (c) snapshot() equals N lazy queries, plus
// determinism, query-granularity independence (the neighbor index's
// pure-function-of-time contract), and the static special case.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "mobility/mobility_model.hpp"
#include "mobility/random_waypoint.hpp"
#include "sim/random.hpp"

namespace rica::mobility {
namespace {

MobilityConfig make_config(double max_speed) {
  MobilityConfig cfg;
  cfg.field = Field{1000.0, 1000.0};
  cfg.max_speed_mps = max_speed;
  cfg.pause = sim::seconds(3);
  return cfg;
}

TEST(Field, Contains) {
  const Field f{100.0, 50.0};
  EXPECT_TRUE(f.contains({0.0, 0.0}));
  EXPECT_TRUE(f.contains({100.0, 50.0}));
  EXPECT_FALSE(f.contains({100.1, 10.0}));
  EXPECT_FALSE(f.contains({50.0, -0.1}));
}

TEST(Vec2, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

// ---------------------------------------------------------------------------
// Waypoint units (the paper's model keeps its original guarantees)
// ---------------------------------------------------------------------------

TEST(WaypointNode, StaysInsideField) {
  sim::RngManager rng(5);
  WaypointNode node(make_config(20.0), rng.stream("m", 0));
  for (int t = 0; t <= 600; ++t) {
    const Vec2 p = node.position_at(sim::seconds(t));
    EXPECT_TRUE(make_config(20.0).field.contains(p))
        << "escaped at t=" << t << " (" << p.x << "," << p.y << ")";
  }
}

TEST(WaypointNode, StaticWhenMaxSpeedZero) {
  sim::RngManager rng(6);
  WaypointNode node(make_config(0.0), rng.stream("m", 0));
  const Vec2 p0 = node.position_at(sim::seconds(0));
  const Vec2 p1 = node.position_at(sim::seconds(100));
  EXPECT_EQ(p0, p1);
  EXPECT_DOUBLE_EQ(node.speed_at(sim::seconds(200)), 0.0);
}

TEST(WaypointNode, PausesAtWaypoint) {
  // With max speed high and a 3 s pause, the node must be motionless for
  // stretches: sample densely and verify zero-speed intervals exist.
  sim::RngManager rng(9);
  WaypointNode node(make_config(40.0), rng.stream("m", 2));
  int paused_samples = 0;
  for (int i = 0; i < 4000; ++i) {
    if (node.speed_at(sim::milliseconds(i * 100)) == 0.0) ++paused_samples;
  }
  EXPECT_GT(paused_samples, 0);
}

TEST(MobilityManager, MeanSpeedApproachesHalfMax) {
  // Speeds are U(0, max]; over many legs the time-weighted mean of the
  // moving phase should land well inside (0.25, 0.75) * max.
  sim::RngManager rng(13);
  MobilityManager mgr(20, make_config(20.0), rng);
  double sum = 0;
  int count = 0;
  for (std::uint32_t n = 0; n < 20; ++n) {
    for (int t = 0; t < 500; t += 5) {
      const double s = mgr.speed(n, sim::seconds(t));
      if (s > 0) {
        sum += s;
        ++count;
      }
    }
  }
  ASSERT_GT(count, 0);
  const double mean_moving = sum / count;
  EXPECT_GT(mean_moving, 5.0);
  EXPECT_LT(mean_moving, 15.0);
}

// ---------------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------------

TEST(MobilitySpec, ModelNamesAndAliases) {
  EXPECT_EQ(model_from_string("waypoint"), ModelKind::kRandomWaypoint);
  EXPECT_EQ(model_from_string("RWP"), ModelKind::kRandomWaypoint);
  EXPECT_EQ(model_from_string("walk"), ModelKind::kRandomWalk);
  EXPECT_EQ(model_from_string("gauss-markov"), ModelKind::kGaussMarkov);
  EXPECT_EQ(model_from_string("gm"), ModelKind::kGaussMarkov);
  EXPECT_EQ(model_from_string("group"), ModelKind::kGroup);
  EXPECT_EQ(model_from_string("rpgm"), ModelKind::kGroup);
  EXPECT_EQ(model_from_string("manhattan"), ModelKind::kManhattan);
  EXPECT_EQ(known_mobility_models().size(), 5u);
}

TEST(MobilitySpec, UnknownModelListsKnownOnes) {
  try {
    (void)model_from_string("teleport");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("teleport"), std::string::npos);
    EXPECT_NE(msg.find("gauss-markov"), std::string::npos);
    EXPECT_NE(msg.find("manhattan"), std::string::npos);
  }
}

TEST(MobilitySpec, ParsesModelParams) {
  const auto gm = parse_mobility_spec("gauss-markov:alpha=0.5,step=0.25");
  EXPECT_EQ(gm.model, ModelKind::kGaussMarkov);
  EXPECT_DOUBLE_EQ(gm.gm_alpha, 0.5);
  EXPECT_DOUBLE_EQ(gm.gm_step_s, 0.25);

  const auto group = parse_mobility_spec("group:size=4,radius=80,frac=0.5");
  EXPECT_EQ(group.group_size, 4u);
  EXPECT_DOUBLE_EQ(group.group_radius_m, 80.0);
  EXPECT_DOUBLE_EQ(group.group_speed_frac, 0.5);

  const auto man = parse_mobility_spec("manhattan:spacing=200,turn=0.4");
  EXPECT_DOUBLE_EQ(man.manhattan_spacing_m, 200.0);
  EXPECT_DOUBLE_EQ(man.manhattan_turn_prob, 0.4);

  const auto walk = parse_mobility_spec("walk:leg=5");
  EXPECT_DOUBLE_EQ(walk.walk_leg_mean_s, 5.0);
}

TEST(MobilitySpec, RejectsBadParams) {
  EXPECT_THROW((void)parse_mobility_spec("walk:warp=9"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_mobility_spec("gauss-markov:alpha=1.5"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_mobility_spec("group:frac=0"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_mobility_spec("manhattan:turn=nope"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_mobility_spec("walk:leg"), std::invalid_argument);
  EXPECT_THROW((void)parse_mobility_spec("waypoint:pause=1"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Model-generic properties (every model x randomized configs)
// ---------------------------------------------------------------------------

class ModelProperties : public ::testing::TestWithParam<const char*> {
 protected:
  static MobilityConfig config(double max_speed) {
    MobilityConfig cfg = parse_mobility_spec(GetParam());
    cfg.field = Field{600.0, 600.0};
    cfg.max_speed_mps = max_speed;
    cfg.pause = sim::seconds(1);
    return cfg;
  }
};

TEST_P(ModelProperties, StaysInFieldAndUnderSpeedBound) {
  for (const std::uint64_t seed : {3u, 17u}) {
    const auto cfg = config(18.0);
    sim::RngManager rng(seed);
    MobilityManager mgr(24, cfg, rng);
    EXPECT_LE(mgr.max_speed_mps(), cfg.max_speed_mps + 1e-12);
    std::vector<Vec2> prev = mgr.snapshot(sim::Time::zero());
    for (int step = 1; step <= 480; ++step) {
      const auto t = sim::seconds_f(0.5 * step);
      for (std::uint32_t n = 0; n < mgr.size(); ++n) {
        const Vec2 p = mgr.position(n, t);
        EXPECT_TRUE(cfg.field.contains(p))
            << GetParam() << " node " << n << " escaped at t=" << t.seconds()
            << " (" << p.x << "," << p.y << ")";
        // Displacement between samples is bounded by the model-level speed
        // bound (1e-6 slack absorbs lattice re-anchoring rounding).
        EXPECT_LE(distance(prev[n], p), mgr.max_speed_mps() * 0.5 + 1e-6)
            << GetParam() << " node " << n << " at t=" << t.seconds();
        EXPECT_LE(mgr.speed(n, t), mgr.max_speed_mps() + 1e-9)
            << GetParam() << " node " << n << " at t=" << t.seconds();
        prev[n] = p;
      }
    }
  }
}

TEST_P(ModelProperties, SnapshotMatchesLazyPerNodeQueries) {
  const auto cfg = config(15.0);
  sim::RngManager rng(42);
  MobilityManager batched(20, cfg, rng);
  MobilityManager lazy(20, cfg, rng);
  for (int step = 0; step <= 40; ++step) {
    const auto t = sim::seconds_f(0.7 * step);
    const auto snap = batched.snapshot(t);
    ASSERT_EQ(snap.size(), 20u);
    for (std::uint32_t id = 0; id < 20; ++id) {
      EXPECT_EQ(snap[id], lazy.position(id, t))
          << GetParam() << " node " << id << " at t=" << t.seconds();
    }
  }
}

TEST_P(ModelProperties, PositionIsPureFunctionOfTime) {
  // The neighbor index interleaves snapshot epochs with exact per-query
  // evaluations, so a trajectory must not depend on which intermediate
  // times were queried: a sparsely queried manager must agree bit-for-bit
  // with a densely queried one.
  const auto cfg = config(21.0);
  sim::RngManager rng(7);
  MobilityManager dense(12, cfg, rng);
  MobilityManager sparse(12, cfg, rng);
  for (int step = 0; step <= 400; ++step) {
    const auto t = sim::milliseconds(step * 173);
    const auto p = dense.snapshot(t);
    if (step % 37 != 0) continue;
    for (std::uint32_t id = 0; id < 12; ++id) {
      EXPECT_EQ(p[id], sparse.position(id, t))
          << GetParam() << " node " << id << " at t=" << t.seconds();
      EXPECT_EQ(dense.speed(id, t), sparse.speed(id, t))
          << GetParam() << " node " << id << " at t=" << t.seconds();
    }
  }
}

TEST_P(ModelProperties, DeterministicForSameSeed) {
  const auto cfg = config(12.0);
  sim::RngManager rng(10);
  MobilityManager a(8, cfg, rng);
  MobilityManager b(8, cfg, rng);
  for (int t = 0; t <= 100; ++t) {
    for (std::uint32_t id = 0; id < 8; ++id) {
      EXPECT_EQ(a.position(id, sim::seconds(t)),
                b.position(id, sim::seconds(t)));
    }
  }
}

TEST_P(ModelProperties, StaticWhenMaxSpeedZero) {
  const auto cfg = config(0.0);
  sim::RngManager rng(6);
  MobilityManager mgr(6, cfg, rng);
  EXPECT_DOUBLE_EQ(mgr.max_speed_mps(), 0.0);
  const auto p0 = mgr.snapshot(sim::Time::zero());
  const auto p1 = mgr.snapshot(sim::seconds(500));
  for (std::uint32_t id = 0; id < 6; ++id) {
    EXPECT_EQ(p0[id], p1[id]) << GetParam() << " node " << id;
    EXPECT_DOUBLE_EQ(mgr.speed(id, sim::seconds(600)), 0.0);
  }
}

TEST_P(ModelProperties, DistinctNodesGetDistinctTrajectories) {
  const auto cfg = config(10.0);
  sim::RngManager rng(11);
  MobilityManager mgr(5, cfg, rng);
  const Vec2 p0 = mgr.position(0, sim::seconds(1));
  const Vec2 p1 = mgr.position(1, sim::seconds(1));
  EXPECT_NE(p0, p1);  // distinct streams give distinct positions
  EXPECT_EQ(mgr.size(), 5u);
  const double dab = mgr.node_distance(0, 1, sim::seconds(5));
  const double dba = mgr.node_distance(1, 0, sim::seconds(5));
  EXPECT_DOUBLE_EQ(dab, dba);
  EXPECT_GE(dab, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelProperties,
    ::testing::Values("waypoint", "walk", "gauss-markov", "group",
                      "manhattan", "walk:leg=2",
                      "gauss-markov:alpha=0.3,step=0.5",
                      "group:size=3,radius=60,frac=0.7",
                      "manhattan:spacing=120,turn=0.6"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name(info.param);
      for (char& c : name) {
        if (c == ':' || c == '=' || c == ',' || c == '-' || c == '.') {
          c = '_';
        }
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Model-specific behaviour
// ---------------------------------------------------------------------------

TEST(GroupMobility, MembersStayNearTheirReference) {
  // Same group => bounded pairwise distance (2 * jitter radius); the
  // deterministic id/group_size assignment puts nodes 0..4 in group 0.
  auto cfg = parse_mobility_spec("group:size=5,radius=50");
  cfg.field = Field{1000.0, 1000.0};
  cfg.max_speed_mps = 20.0;
  sim::RngManager rng(21);
  MobilityManager mgr(10, cfg, rng);
  for (int t = 0; t <= 200; t += 5) {
    for (std::uint32_t a = 0; a < 5; ++a) {
      for (std::uint32_t b = a + 1; b < 5; ++b) {
        EXPECT_LE(mgr.node_distance(a, b, sim::seconds(t)), 100.0 + 1e-6)
            << "group members drifted apart at t=" << t;
      }
    }
  }
}

TEST(ManhattanMobility, NodesStayOnTheStreetLattice) {
  auto cfg = parse_mobility_spec("manhattan:spacing=250");
  cfg.field = Field{1000.0, 1000.0};
  cfg.max_speed_mps = 20.0;
  sim::RngManager rng(23);
  MobilityManager mgr(12, cfg, rng);
  for (int t = 0; t <= 300; t += 3) {
    for (std::uint32_t n = 0; n < 12; ++n) {
      const Vec2 p = mgr.position(n, sim::seconds(t));
      const double dx = std::fmod(p.x, 250.0);
      const double dy = std::fmod(p.y, 250.0);
      const bool on_x_street = std::min(dy, 250.0 - dy) < 1e-6;
      const bool on_y_street = std::min(dx, 250.0 - dx) < 1e-6;
      EXPECT_TRUE(on_x_street || on_y_street)
          << "node " << n << " off-street at t=" << t << " (" << p.x << ","
          << p.y << ")";
    }
  }
}

TEST(RandomWalkMobility, CoversTheFieldWithoutCenterBias) {
  // Reflection (vs waypoint's center-seeking legs) should leave a healthy
  // share of time near the border: count samples in the outer 20% frame.
  auto cfg = parse_mobility_spec("walk");
  cfg.field = Field{500.0, 500.0};
  cfg.max_speed_mps = 25.0;
  cfg.pause = sim::Time::zero();
  sim::RngManager rng(29);
  MobilityManager mgr(30, cfg, rng);
  int outer = 0;
  int total = 0;
  for (int t = 0; t <= 400; t += 2) {
    for (std::uint32_t n = 0; n < 30; ++n) {
      const Vec2 p = mgr.position(n, sim::seconds(t));
      const bool in_outer = p.x < 100.0 || p.x > 400.0 || p.y < 100.0 ||
                            p.y > 400.0;
      outer += in_outer ? 1 : 0;
      ++total;
    }
  }
  // The outer frame is 64% of the area; uniform occupancy would put ~64%
  // of samples there, waypoint's center bias well under half that.
  EXPECT_GT(static_cast<double>(outer) / total, 0.40);
}

TEST(GaussMarkovMobility, HighAlphaTurnsLessPerStep) {
  // The memory parameter shows up in the innovation scale sqrt(1 - a^2):
  // with alpha near 1 successive step velocities stay nearly parallel,
  // while alpha near 0 redraws the heading around the mean every step.
  // Compare the mean absolute turn angle between consecutive 1 s steps.
  const auto mean_turn = [](double alpha) {
    auto cfg = parse_mobility_spec("gauss-markov");
    cfg.gm_alpha = alpha;
    cfg.field = Field{100000.0, 100000.0};  // huge: no wall interference
    cfg.max_speed_mps = 10.0;
    sim::RngManager rng(31);
    MobilityManager mgr(40, cfg, rng);
    std::vector<Vec2> p0 = mgr.snapshot(sim::Time::zero());
    std::vector<Vec2> p1 = mgr.snapshot(sim::seconds(1));
    double sum = 0.0;
    int count = 0;
    for (int k = 2; k <= 60; ++k) {
      const auto p2 = mgr.snapshot(sim::seconds(k));
      for (std::uint32_t n = 0; n < 40; ++n) {
        const Vec2 u = p1[n] - p0[n];
        const Vec2 v = p2[n] - p1[n];
        if (u.norm() < 1e-6 || v.norm() < 1e-6) continue;
        const double cross = u.x * v.y - u.y * v.x;
        const double dot = u.x * v.x + u.y * v.y;
        sum += std::abs(std::atan2(cross, dot));
        ++count;
      }
      p0 = p1;
      p1 = p2;
    }
    return sum / count;
  };
  EXPECT_LT(2.0 * mean_turn(0.98), mean_turn(0.05));
}

}  // namespace
}  // namespace rica::mobility
