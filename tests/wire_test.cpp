// Wire codec suite (net/wire.hpp): randomized round-trip property per
// message type, decoder rejection of malformed frames (truncation at every
// prefix, bad type tags, trailing bytes, out-of-range node ids, bad CSI
// classes, inconsistent LSU counts), and the layout-invariant cross-checks
// the lookahead floor leans on.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "net/packet.hpp"
#include "net/wire.hpp"

namespace rica::net {
namespace {

using wire::WireError;

using Rng = std::mt19937_64;

NodeId rand_node(Rng& g) {
  return std::uniform_int_distribution<NodeId>(
      0, static_cast<NodeId>(kMaxNodes - 1))(g);
}
std::uint32_t rand_u32(Rng& g) {
  return std::uniform_int_distribution<std::uint32_t>()(g);
}
std::uint16_t rand_u16(Rng& g) {
  return std::uniform_int_distribution<std::uint16_t>()(g);
}
std::int16_t rand_i16(Rng& g) {
  return std::uniform_int_distribution<std::int16_t>(-32768, 32767)(g);
}
double rand_f64(Rng& g) {
  return std::uniform_real_distribution<double>(-1e9, 1e9)(g);
}
channel::CsiClass rand_csi(Rng& g) {
  return static_cast<channel::CsiClass>(
      std::uniform_int_distribution<int>(0, 3)(g));
}
NodeId rand_to(Rng& g) {
  // Control frames go to a unicast neighbour or the broadcast address.
  return std::uniform_int_distribution<int>(0, 3)(g) == 0 ? kBroadcastId
                                                          : rand_node(g);
}

// One generator per ControlPayload alternative, exercised by the templated
// round-trip below.
template <typename T>
T random_msg(Rng& g);

template <>
RreqMsg random_msg(Rng& g) {
  return {rand_node(g), rand_node(g), rand_u32(g), rand_f64(g), rand_u16(g)};
}
template <>
RrepMsg random_msg(Rng& g) {
  return {rand_node(g), rand_node(g), rand_u32(g), rand_f64(g), rand_u16(g)};
}
template <>
CsiCheckMsg random_msg(Rng& g) {
  return {rand_node(g), rand_node(g), rand_u32(g), rand_f64(g),
          rand_u16(g),  rand_i16(g),  rand_node(g)};
}
template <>
RupdMsg random_msg(Rng& g) {
  return {rand_node(g), rand_node(g)};
}
template <>
ReerMsg random_msg(Rng& g) {
  return {rand_node(g), rand_node(g), rand_node(g)};
}
template <>
BgcaLqMsg random_msg(Rng& g) {
  return {rand_node(g), rand_node(g), rand_node(g), rand_u32(g),
          rand_i16(g),  rand_f64(g),  rand_u16(g),  rand_u16(g)};
}
template <>
BgcaLqReplyMsg random_msg(Rng& g) {
  return {rand_node(g), rand_node(g), rand_node(g), rand_u32(g),
          rand_f64(g),  rand_u16(g),  rand_node(g)};
}
template <>
AbrBeaconMsg random_msg(Rng& g) {
  return {rand_node(g)};
}
template <>
AbrBqMsg random_msg(Rng& g) {
  return {rand_node(g), rand_node(g), rand_u32(g),
          rand_u32(g),  rand_u32(g),  rand_u16(g)};
}
template <>
AbrReplyMsg random_msg(Rng& g) {
  return {rand_node(g), rand_node(g), rand_u32(g), rand_u16(g)};
}
template <>
AbrLqMsg random_msg(Rng& g) {
  return {rand_node(g), rand_node(g), rand_node(g), rand_u32(g),
          rand_i16(g),  rand_u16(g),  rand_u16(g)};
}
template <>
AbrLqReplyMsg random_msg(Rng& g) {
  return {rand_node(g), rand_node(g), rand_node(g),
          rand_u32(g),  rand_u16(g),  rand_node(g)};
}
template <>
AbrRnMsg random_msg(Rng& g) {
  return {rand_node(g), rand_node(g), rand_node(g)};
}
template <>
AodvRreqMsg random_msg(Rng& g) {
  return {rand_node(g), rand_node(g), rand_u32(g), rand_u16(g)};
}
template <>
AodvRrepMsg random_msg(Rng& g) {
  return {rand_node(g), rand_node(g), rand_u32(g), rand_u16(g)};
}
template <>
AodvRerrMsg random_msg(Rng& g) {
  return {rand_node(g), rand_node(g), rand_node(g)};
}
template <>
LsuMsg random_msg(Rng& g) {
  LsuMsg m;
  m.origin = rand_node(g);
  m.seq = rand_u32(g);
  const std::size_t n = std::uniform_int_distribution<std::size_t>(0, 40)(g);
  for (std::size_t i = 0; i < n; ++i) {
    m.links.emplace_back(rand_node(g), rand_csi(g));
  }
  return m;
}

/// encode -> decode must reproduce the message bit-exactly (doubles ride as
/// their IEEE-754 pattern) and stamp the exact frame length.
template <typename T>
void expect_round_trip(const T& msg, NodeId to) {
  const ControlPacket pkt = make_control(to, msg);
  std::vector<std::uint8_t> buf;
  const std::size_t n = wire::encode_control(pkt, buf);
  EXPECT_EQ(n, pkt.size_bytes);
  EXPECT_EQ(buf.size(), pkt.size_bytes);
  const ControlPacket back = wire::decode_control(buf);
  EXPECT_EQ(back.to, pkt.to);
  EXPECT_EQ(back.size_bytes, pkt.size_bytes);
  ASSERT_TRUE(std::holds_alternative<T>(back.payload));
  EXPECT_EQ(std::get<T>(back.payload), msg);
}

template <std::size_t I = 0>
void round_trip_all(Rng& g) {
  if constexpr (I < std::variant_size_v<ControlPayload>) {
    using Alt = std::variant_alternative_t<I, ControlPayload>;
    expect_round_trip(random_msg<Alt>(g), rand_to(g));
    round_trip_all<I + 1>(g);
  }
}

TEST(WireRoundTrip, EveryAlternativeRandomized) {
  Rng g(0x51CA0001);
  for (int iter = 0; iter < 200; ++iter) round_trip_all(g);
}

TEST(WireRoundTrip, DataHeader) {
  Rng g(0x51CA0002);
  for (int iter = 0; iter < 200; ++iter) {
    DataPacket pkt;
    pkt.flow = rand_u32(g);
    pkt.src = rand_node(g);
    pkt.dst = rand_node(g);
    pkt.seq = rand_u32(g);
    pkt.gen_time = sim::Time{std::uniform_int_distribution<std::int64_t>(
        0, std::int64_t{1} << 62)(g)};
    pkt.size_bytes = rand_u16(g);
    pkt.route_update = (rand_u32(g) & 1u) != 0;
    pkt.hops = rand_u16(g);
    pkt.tput_sum_bps = 0.0;  // metrics bookkeeping; never on the wire
    std::vector<std::uint8_t> buf;
    ASSERT_EQ(wire::encode_data_header(pkt, buf), wire::kDataHeaderBytes);
    EXPECT_EQ(wire::decode_data_header(buf), pkt);
    // A full frame — header followed by exactly the declared payload — also
    // parses; anything in between is rejected below.
    buf.resize(buf.size() + pkt.size_bytes, 0xAB);
    EXPECT_EQ(wire::decode_data_header(buf), pkt);
  }
}

// -- malformed input --------------------------------------------------------

template <std::size_t I = 0>
void truncate_all(Rng& g) {
  if constexpr (I < std::variant_size_v<ControlPayload>) {
    using Alt = std::variant_alternative_t<I, ControlPayload>;
    std::vector<std::uint8_t> buf;
    wire::encode_control(make_control(rand_to(g), random_msg<Alt>(g)), buf);
    for (std::size_t len = 0; len < buf.size(); ++len) {
      EXPECT_THROW((void)wire::decode_control(buf.data(), len), WireError)
          << "alternative " << I << " prefix " << len;
    }
    truncate_all<I + 1>(g);
  }
}

TEST(WireReject, EveryPrefixOfEveryAlternativeThrows) {
  Rng g(0x51CA0003);
  truncate_all(g);
}

TEST(WireReject, EveryPrefixOfTheDataHeaderThrows) {
  std::vector<std::uint8_t> buf;
  wire::encode_data_header(DataPacket{}, buf);
  for (std::size_t len = 0; len < buf.size(); ++len) {
    EXPECT_THROW((void)wire::decode_data_header(buf.data(), len), WireError);
  }
}

TEST(WireReject, BadTypeTags) {
  std::vector<std::uint8_t> buf;
  wire::encode_control(make_control(kBroadcastId, AbrBeaconMsg{7}), buf);
  const auto first_bad =
      wire::control_tag(std::variant_size_v<ControlPayload>);
  for (const std::uint8_t tag : {std::uint8_t{0x00}, first_bad,
                                 std::uint8_t{0xFF}}) {
    auto bad = buf;
    bad[0] = tag;
    EXPECT_THROW((void)wire::decode_control(bad), WireError);
  }
  // A control tag where the data decoder expects kDataFrameTag (and vice
  // versa) is equally malformed.
  EXPECT_THROW((void)wire::decode_data_header(buf), WireError);
  std::vector<std::uint8_t> data;
  wire::encode_data_header(DataPacket{}, data);
  EXPECT_THROW((void)wire::decode_control(data), WireError);
}

TEST(WireReject, TrailingBytesThrow) {
  std::vector<std::uint8_t> buf;
  wire::encode_control(make_control(3, RupdMsg{1, 2}), buf);
  buf.push_back(0x00);
  try {
    (void)wire::decode_control(buf);
    FAIL() << "trailing byte accepted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.offset(), buf.size() - 1);  // points at the garbage
  }
  // Data frames reject any length between bare header and full payload.
  DataPacket pkt;
  pkt.size_bytes = 16;
  std::vector<std::uint8_t> data;
  wire::encode_data_header(pkt, data);
  data.push_back(0xCD);  // 1 payload byte, header declares 16
  EXPECT_THROW((void)wire::decode_data_header(data), WireError);
}

TEST(WireReject, OutOfRangeNodeIds) {
  // Encoders refuse ids >= 2^24 outright ...
  RreqMsg req;
  req.src = static_cast<NodeId>(kMaxNodes);
  std::vector<std::uint8_t> buf;
  EXPECT_THROW(wire::encode_control(ControlPacket{1, 0, req}, buf), WireError);
  EXPECT_THROW(wire::encode_data_header(
                   [] {
                     DataPacket p;
                     p.dst = static_cast<NodeId>(kMaxNodes);
                     return p;
                   }(),
                   buf),
               WireError);
  // ... and decoders reject them on the wire: patch the high byte of the
  // src field (control body starts at offset 5).
  buf.clear();
  wire::encode_control(make_control(9, RreqMsg{1, 2, 3, 4.0, 5}), buf);
  auto bad = buf;
  bad[5] = 0x01;  // src := 0x01000001 >= 2^24
  EXPECT_THROW((void)wire::decode_control(bad), WireError);
  // kBroadcastId is legal only in the `to` field (offset 1): a near-miss
  // wide address is rejected there too.
  bad = buf;
  bad[1] = bad[2] = bad[3] = 0xFF;
  bad[4] = 0xFE;  // to := 0xFFFFFFFE, wide but not broadcast
  EXPECT_THROW((void)wire::decode_control(bad), WireError);
  bad[4] = 0xFF;  // to := kBroadcastId parses fine
  EXPECT_EQ(wire::decode_control(bad).to, kBroadcastId);
}

TEST(WireReject, BadCsiClass) {
  LsuMsg m;
  m.links = {{4, channel::CsiClass::B}};
  std::vector<std::uint8_t> buf;
  wire::encode_control(make_control(kBroadcastId, m), buf);
  // Frame: 5 header + origin(4) + seq(4) + count(2), then link 0's id(4)
  // and CSI byte.
  buf[19] = 0x07;
  EXPECT_THROW((void)wire::decode_control(buf), WireError);
}

TEST(WireReject, LsuCountFrameLengthMismatch) {
  LsuMsg m;
  m.links = {{4, channel::CsiClass::B}, {5, channel::CsiClass::C}};
  std::vector<std::uint8_t> buf;
  wire::encode_control(make_control(kBroadcastId, m), buf);
  auto bad = buf;
  bad[14] = 3;  // count says 3, frame holds 2 -> truncated
  EXPECT_THROW((void)wire::decode_control(bad), WireError);
  bad = buf;
  bad[14] = 1;  // count says 1, frame holds 2 -> trailing bytes
  EXPECT_THROW((void)wire::decode_control(bad), WireError);
}

TEST(WireReject, DataHeaderBadFieldEncodings) {
  std::vector<std::uint8_t> buf;
  wire::encode_data_header(DataPacket{}, buf);
  auto bad = buf;
  bad[1] = 0x02;  // unknown flag bit
  EXPECT_THROW((void)wire::decode_data_header(bad), WireError);
  bad = buf;
  bad[18] = 0x80;  // gen_time sign bit (offset: tag+flags+flow+src+dst+seq)
  EXPECT_THROW((void)wire::decode_data_header(bad), WireError);
}

TEST(WireError_, CarriesOffsetDiagnostics) {
  std::vector<std::uint8_t> buf;
  wire::encode_control(make_control(2, ReerMsg{1, 2, 3}), buf);
  try {
    (void)wire::decode_control(buf.data(), 7);
    FAIL() << "truncated frame accepted";
  } catch (const WireError& e) {
    EXPECT_LE(e.offset(), 7u);
    EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos);
  }
}

// -- layout invariants ------------------------------------------------------

TEST(WireInvariants, StartupCheckPasses) {
  EXPECT_NO_THROW(wire::check_wire_invariants());
}

TEST(WireInvariants, LookaheadFloorIsTheSmallestEncodableFrame) {
  // The sharded kernel's conservative window is derived from
  // wire::kMinControlBytes; it must equal the smallest frame the codecs
  // can actually emit (the ABR beacon).
  std::vector<std::uint8_t> buf;
  const std::size_t n =
      wire::encode_control(make_control(kBroadcastId, AbrBeaconMsg{}), buf);
  EXPECT_EQ(n, wire::kMinControlBytes);
}

}  // namespace
}  // namespace rica::net
