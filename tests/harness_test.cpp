// Harness units: flag parsing, table rendering, bench scales, and the RICA
// adaptive-checking extension plumbed through the scenario config.
#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <stdexcept>
#include <string>

#include "harness/flags.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"

namespace rica::harness {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, SpaceSeparatedValues) {
  const auto f = parse({"--trials", "7", "--sim-time", "250.5"});
  EXPECT_EQ(f.get("trials", 0), 7);
  EXPECT_DOUBLE_EQ(f.get("sim-time", 0.0), 250.5);
}

TEST(Flags, EqualsSeparatedValues) {
  const auto f = parse({"--seed=99", "--protocol=bgca"});
  EXPECT_EQ(f.get("seed", std::uint64_t{0}), 99u);
  EXPECT_EQ(f.get("protocol", std::string{}), "bgca");
}

TEST(Flags, BareBooleanFlag) {
  const auto f = parse({"--paper-scale"});
  EXPECT_TRUE(f.has("paper-scale"));
  EXPECT_FALSE(f.has("trials"));
}

TEST(Flags, ListParsing) {
  const auto f = parse({"--speeds", "0,14.4,72"});
  const auto v = f.get_list("speeds", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 14.4);
  EXPECT_DOUBLE_EQ(v[2], 72.0);
}

TEST(Flags, ListFallback) {
  const auto f = parse({});
  const auto v = f.get_list("speeds", {1.0, 2.0});
  ASSERT_EQ(v.size(), 2u);
}

TEST(Flags, PositionalArgumentRejected) {
  EXPECT_THROW(parse({"oops"}), std::invalid_argument);
}

TEST(Flags, DefaultsWhenAbsent) {
  const auto f = parse({});
  EXPECT_EQ(f.get("trials", 5), 5);
  EXPECT_EQ(f.get("name", std::string{"x"}), "x");
}

TEST(BenchScale, DefaultsApply) {
  const auto f = parse({});
  const auto s = bench_scale(f, 3, 100.0);
  EXPECT_EQ(s.trials, 3);
  EXPECT_DOUBLE_EQ(s.sim_s, 100.0);
  EXPECT_EQ(s.seed, 1u);
}

TEST(BenchScale, PaperScaleShorthand) {
  const auto f = parse({"--paper-scale"});
  const auto s = bench_scale(f, 3, 100.0);
  EXPECT_EQ(s.trials, 25);
  EXPECT_DOUBLE_EQ(s.sim_s, 500.0);
}

TEST(BenchScale, ExplicitOverridesBeatPaperScale) {
  const auto f = parse({"--paper-scale", "--trials", "2"});
  const auto s = bench_scale(f, 3, 100.0);
  EXPECT_EQ(s.trials, 2);
  EXPECT_DOUBLE_EQ(s.sim_s, 500.0);
}

TEST(BenchScale, MobilityAndPauseDefaults) {
  const auto f = parse({});
  const auto s = bench_scale(f, 3, 100.0);
  EXPECT_EQ(s.mobility, "waypoint");
  EXPECT_DOUBLE_EQ(s.pause_s, 3.0);
}

TEST(BenchScale, MobilitySpecWithParamsParses) {
  const auto f = parse({"--mobility", "gauss-markov:alpha=0.9,step=0.5",
                        "--pause", "0"});
  const auto s = bench_scale(f, 3, 100.0);
  EXPECT_EQ(s.mobility, "gauss-markov:alpha=0.9,step=0.5");
  EXPECT_DOUBLE_EQ(s.pause_s, 0.0);
}

TEST(BenchScale, UnknownMobilityModelFailsFastListingModels) {
  const auto f = parse({"--mobility", "teleport"});
  try {
    (void)bench_scale(f, 3, 100.0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("waypoint"), std::string::npos);
    EXPECT_NE(msg.find("manhattan"), std::string::npos);
  }
}

TEST(BenchScale, NegativePauseRejected) {
  const auto f = parse({"--pause", "-1"});
  EXPECT_THROW((void)bench_scale(f, 3, 100.0), std::invalid_argument);
}

TEST(ScenarioMobility, SpecFlowsIntoRunnableConfig) {
  // A non-default spec must produce a runnable scenario (exercised end to
  // end by the sweep tests); a bad spec must fail at scenario build time.
  ScenarioConfig cfg;
  cfg.mobility = "group:size=5,radius=80";
  cfg.sim_s = 2.0;
  const auto r = run_scenario(cfg);
  EXPECT_GT(r.generated, 0u);
  cfg.mobility = "group:radius=-4";
  EXPECT_THROW((void)run_scenario(cfg), std::invalid_argument);
}

TEST(TableTest, AlignsColumns) {
  Table t({"a", "long_header"});
  t.add_row({"xxxxxx", "1"});
  std::ostringstream os;
  t.print(os);
  const auto out = os.str();
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("xxxxxx"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, FmtPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(10.0, 0), "10");
}

TEST(AdaptiveChecks, ReducesIdleOverheadAtZeroMobility) {
  // With a frozen channel the adaptive destination backs off toward the
  // 4 s maximum, spending less of the common channel than the fixed 1 s
  // schedule, without giving up delivery.
  ScenarioConfig fixed;
  fixed.protocol = ProtocolKind::kRica;
  fixed.mean_speed_kmh = 0.0;
  fixed.sim_s = 40.0;
  fixed.seed = 3;
  ScenarioConfig adaptive = fixed;
  adaptive.rica.adaptive_checks = true;

  const auto rf = run_scenario(fixed);
  const auto ra = run_scenario(adaptive);
  EXPECT_LT(ra.overhead_kbps, rf.overhead_kbps);
  EXPECT_GT(ra.delivery_pct, rf.delivery_pct - 3.0);
}

TEST(AdaptiveChecks, StillDeliversUnderMobility) {
  ScenarioConfig cfg;
  cfg.protocol = ProtocolKind::kRica;
  cfg.mean_speed_kmh = 54.0;
  cfg.sim_s = 30.0;
  cfg.rica.adaptive_checks = true;
  const auto r = run_scenario(cfg);
  EXPECT_GT(r.delivery_pct, 70.0);
}

TEST(RicaConfigPlumbing, CheckPeriodAffectsOverhead) {
  ScenarioConfig slow;
  slow.protocol = ProtocolKind::kRica;
  slow.mean_speed_kmh = 36.0;
  slow.sim_s = 30.0;
  slow.rica.check_period = sim::seconds(4);
  ScenarioConfig fast = slow;
  fast.rica.check_period = sim::milliseconds(250);
  const auto rs = run_scenario(slow);
  const auto rf = run_scenario(fast);
  EXPECT_GT(rf.overhead_kbps, rs.overhead_kbps);
}

}  // namespace
}  // namespace rica::harness
