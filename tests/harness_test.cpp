// Harness units: flag parsing, table rendering, bench scales, the RICA
// adaptive-checking extension plumbed through the scenario config, the
// --warmup measurement window (epoch-reset semantics: a warmed-up run's
// counters equal the post-window deltas of a cold run), and the strict
// trace/spec error paths (file:line diagnostics, never a silent clamp).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/flags.hpp"
#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "harness/table.hpp"
#include "mobility/trace.hpp"

namespace rica::harness {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, SpaceSeparatedValues) {
  const auto f = parse({"--trials", "7", "--sim-time", "250.5"});
  EXPECT_EQ(f.get("trials", 0), 7);
  EXPECT_DOUBLE_EQ(f.get("sim-time", 0.0), 250.5);
}

TEST(Flags, EqualsSeparatedValues) {
  const auto f = parse({"--seed=99", "--protocol=bgca"});
  EXPECT_EQ(f.get("seed", std::uint64_t{0}), 99u);
  EXPECT_EQ(f.get("protocol", std::string{}), "bgca");
}

TEST(Flags, BareBooleanFlag) {
  const auto f = parse({"--paper-scale"});
  EXPECT_TRUE(f.has("paper-scale"));
  EXPECT_FALSE(f.has("trials"));
}

TEST(Flags, ListParsing) {
  const auto f = parse({"--speeds", "0,14.4,72"});
  const auto v = f.get_list("speeds", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 14.4);
  EXPECT_DOUBLE_EQ(v[2], 72.0);
}

TEST(Flags, ListFallback) {
  const auto f = parse({});
  const auto v = f.get_list("speeds", {1.0, 2.0});
  ASSERT_EQ(v.size(), 2u);
}

TEST(Flags, PositionalArgumentRejected) {
  EXPECT_THROW(parse({"oops"}), std::invalid_argument);
}

TEST(Flags, DefaultsWhenAbsent) {
  const auto f = parse({});
  EXPECT_EQ(f.get("trials", 5), 5);
  EXPECT_EQ(f.get("name", std::string{"x"}), "x");
}

TEST(BenchScale, DefaultsApply) {
  const auto f = parse({});
  const auto s = bench_scale(f, 3, 100.0);
  EXPECT_EQ(s.trials, 3);
  EXPECT_DOUBLE_EQ(s.sim_s, 100.0);
  EXPECT_EQ(s.seed, 1u);
}

TEST(BenchScale, PaperScaleShorthand) {
  const auto f = parse({"--paper-scale"});
  const auto s = bench_scale(f, 3, 100.0);
  EXPECT_EQ(s.trials, 25);
  EXPECT_DOUBLE_EQ(s.sim_s, 500.0);
}

TEST(BenchScale, ExplicitOverridesBeatPaperScale) {
  const auto f = parse({"--paper-scale", "--trials", "2"});
  const auto s = bench_scale(f, 3, 100.0);
  EXPECT_EQ(s.trials, 2);
  EXPECT_DOUBLE_EQ(s.sim_s, 500.0);
}

TEST(BenchScale, MobilityAndPauseDefaults) {
  const auto f = parse({});
  const auto s = bench_scale(f, 3, 100.0);
  EXPECT_EQ(s.mobility, "waypoint");
  EXPECT_DOUBLE_EQ(s.pause_s, 3.0);
}

TEST(BenchScale, MobilitySpecWithParamsParses) {
  const auto f = parse({"--mobility", "gauss-markov:alpha=0.9,step=0.5",
                        "--pause", "0"});
  const auto s = bench_scale(f, 3, 100.0);
  EXPECT_EQ(s.mobility, "gauss-markov:alpha=0.9,step=0.5");
  EXPECT_DOUBLE_EQ(s.pause_s, 0.0);
}

TEST(BenchScale, UnknownMobilityModelFailsFastListingModels) {
  const auto f = parse({"--mobility", "teleport"});
  try {
    (void)bench_scale(f, 3, 100.0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("waypoint"), std::string::npos);
    EXPECT_NE(msg.find("manhattan"), std::string::npos);
    // The trace replay spelling is advertised alongside the synthetic
    // models, so users discover `--mobility trace:file=...` from the error.
    EXPECT_NE(msg.find("trace:file="), std::string::npos);
  }
}

TEST(BenchScale, NegativePauseRejected) {
  const auto f = parse({"--pause", "-1"});
  EXPECT_THROW((void)bench_scale(f, 3, 100.0), std::invalid_argument);
}

TEST(BenchScale, TrafficDefaultsToPoisson) {
  const auto s = bench_scale(parse({}), 3, 100.0);
  EXPECT_EQ(s.traffic, "poisson");
}

TEST(BenchScale, TrafficSpecWithParamsParses) {
  const auto f =
      parse({"--traffic", "onoff:on=0.5,off=2,pattern=hotspot,hotspots=4"});
  const auto s = bench_scale(f, 3, 100.0);
  EXPECT_EQ(s.traffic, "onoff:on=0.5,off=2,pattern=hotspot,hotspots=4");
}

TEST(BenchScale, UnknownTrafficModelFailsFastListingModels) {
  const auto f = parse({"--traffic", "warpdrive"});
  try {
    (void)bench_scale(f, 3, 100.0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("poisson"), std::string::npos) << msg;
    EXPECT_NE(msg.find("reqresp"), std::string::npos) << msg;
  }
}

TEST(BenchScale, BadTrafficParamFailsFast) {
  const auto f = parse({"--traffic", "cbr:jitter=2"});
  EXPECT_THROW((void)bench_scale(f, 3, 100.0), std::invalid_argument);
}

TEST(ScenarioTraffic, SpecFlowsIntoRunnableConfig) {
  ScenarioConfig cfg;
  cfg.traffic = "cbr:jitter=0.1,pattern=sink";
  cfg.sim_s = 2.0;
  const auto r = run_scenario(cfg);
  EXPECT_GT(r.generated, 0u);
  cfg.traffic = "cbr:jitter=-1";
  EXPECT_THROW((void)run_scenario(cfg), std::invalid_argument);
}

TEST(ScenarioTraffic, OverfullPairRequestFailsWithClearMessage) {
  // The 2*pairs <= nodes guard used to be a debug assert that vanished in
  // Release builds and fed uniform_int an inverted range; it must now be a
  // thrown error in every build type, carrying the arithmetic.
  ScenarioConfig cfg;
  cfg.num_nodes = 50;
  cfg.num_pairs = 26;
  cfg.sim_s = 1.0;
  try {
    (void)run_scenario(cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("random"), std::string::npos) << msg;
    EXPECT_NE(msg.find("26"), std::string::npos) << msg;
    EXPECT_NE(msg.find("50"), std::string::npos) << msg;
  }
}

TEST(BenchScale, WarmupDefaultsToPresetCappedAtTwentyPercent) {
  // Long run: the paper preset's 20 s default applies whole.
  EXPECT_DOUBLE_EQ(bench_scale(parse({}), 3, 500.0).warmup_s, 20.0);
  // Short smoke run: capped at 20% of the simulated time.
  EXPECT_DOUBLE_EQ(bench_scale(parse({}), 3, 10.0).warmup_s, 2.0);
  // Bigger presets warm up longer.
  const auto f = parse({"--preset", "sparse-rural"});
  EXPECT_DOUBLE_EQ(bench_scale(f, 3, 500.0).warmup_s, 30.0);
}

TEST(BenchScale, ExplicitWarmupWinsAndIsValidated) {
  EXPECT_DOUBLE_EQ(bench_scale(parse({"--warmup", "7"}), 3, 100.0).warmup_s,
                   7.0);
  EXPECT_DOUBLE_EQ(bench_scale(parse({"--warmup", "0"}), 3, 100.0).warmup_s,
                   0.0);
  EXPECT_THROW((void)bench_scale(parse({"--warmup", "-2"}), 3, 100.0),
               std::invalid_argument);
  EXPECT_THROW((void)bench_scale(parse({"--warmup", "100"}), 3, 100.0),
               std::invalid_argument);
}

TEST(ScenarioMobility, SpecFlowsIntoRunnableConfig) {
  // A non-default spec must produce a runnable scenario (exercised end to
  // end by the sweep tests); a bad spec must fail at scenario build time.
  ScenarioConfig cfg;
  cfg.mobility = "group:size=5,radius=80";
  cfg.sim_s = 2.0;
  const auto r = run_scenario(cfg);
  EXPECT_GT(r.generated, 0u);
  cfg.mobility = "group:radius=-4";
  EXPECT_THROW((void)run_scenario(cfg), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Warmup semantics: one epoch-reset event, counters == post-window deltas
// ---------------------------------------------------------------------------

TEST(Warmup, CountersEqualPostWindowDeltasOfColdRun) {
  // A run to time w is the exact prefix of a run to time T (traffic and
  // protocol events are generated lazily), so the cold run's counter deltas
  // over (w, T] are recoverable from two finalizations — and a warmed-up
  // run must reproduce them exactly, because the epoch reset only zeroes
  // accumulators without touching the event stream.
  ScenarioConfig base;
  base.protocol = ProtocolKind::kRica;
  base.mean_speed_kmh = 36.0;
  base.seed = 5;

  ScenarioConfig prefix = base;
  prefix.sim_s = 8.0;
  ScenarioConfig total = base;
  total.sim_s = 20.0;
  ScenarioConfig warmed = total;
  warmed.warmup_s = 8.0;

  const auto rp = run_scenario(prefix);
  const auto rt = run_scenario(total);
  const auto rw = run_scenario(warmed);

  EXPECT_EQ(rw.measure_start, sim::seconds(8));
  EXPECT_EQ(rw.generated, rt.generated - rp.generated);
  EXPECT_EQ(rw.delivered, rt.delivered - rp.delivered);
  EXPECT_EQ(rw.control_transmissions,
            rt.control_transmissions - rp.control_transmissions);
  EXPECT_EQ(rw.control_collisions,
            rt.control_collisions - rp.control_collisions);
  for (std::size_t i = 0; i < stats::kNumDropReasons; ++i) {
    EXPECT_EQ(rw.drops[i], rt.drops[i] - rp.drops[i]) << "drop reason " << i;
  }
  // The whole warmup machinery is a single extra event.
  EXPECT_EQ(rw.events_executed, rt.events_executed + 1);
  // Overhead is the delta of control+ACK bits over the 12 s window (kbps *
  // seconds = kbits; reconstructed, so compare with a rounding tolerance).
  const double window_kbits =
      rt.overhead_kbps * total.sim_s - rp.overhead_kbps * prefix.sim_s;
  EXPECT_NEAR(rw.overhead_kbps, window_kbits / (total.sim_s - warmed.warmup_s),
              1e-9 * (1.0 + rw.overhead_kbps));
}

TEST(Warmup, ZeroWarmupIsBitIdenticalToDefaultRun) {
  ScenarioConfig cfg;
  cfg.protocol = ProtocolKind::kAodv;
  cfg.sim_s = 6.0;
  cfg.seed = 11;
  const auto plain = run_scenario(cfg);
  cfg.warmup_s = 0.0;
  const auto zero = run_scenario(cfg);
  EXPECT_EQ(plain.stream_hash, zero.stream_hash);
  EXPECT_EQ(plain.generated, zero.generated);
  EXPECT_EQ(plain.delivered, zero.delivered);
  EXPECT_EQ(plain.overhead_kbps, zero.overhead_kbps);
  EXPECT_EQ(plain.events_executed, zero.events_executed);
  EXPECT_EQ(plain.measure_start, sim::Time::zero());
  EXPECT_EQ(zero.measure_start, sim::Time::zero());
}

TEST(Warmup, BoundaryEventsStayOutsideTheWindow) {
  // The measured window is (w, sim_end]: an event at exactly t == w belongs
  // to the transient.  run_scenario arms the reset first (lowest tie-break
  // seq at its timestamp) but at w + 1 ns, so it still fires after every
  // event stamped w.  Replicate that arming order around a hand-scheduled
  // boundary event.
  sim::Simulator sim;
  stats::MetricsCollector metrics;
  const sim::Time w = sim::seconds(2);
  sim.at(w + sim::Time{1}, [&] { metrics.reset_epoch(w); });
  sim.at(w, [&] { metrics.on_control_tx(100); });          // boundary
  sim.at(w + sim::Time{1}, [&] { metrics.on_control_tx(300); });  // same
  // timestamp as the reset but armed later -> fires after it: in-window.
  sim.at(sim::seconds(3), [&] { metrics.on_control_tx(500); });
  sim.run_until(sim::seconds(4));

  EXPECT_EQ(metrics.epoch_start(), w);
  const auto s = metrics.finalize(sim::seconds(4));
  EXPECT_EQ(s.control_transmissions, 2u);  // 300 + 500; the t==w tx is gone
  EXPECT_DOUBLE_EQ(s.overhead_kbps * (4.0 - 2.0), 0.8);  // kbits over (w, T]
}

TEST(Warmup, InvalidWindowsRejected) {
  ScenarioConfig cfg;
  cfg.sim_s = 10.0;
  cfg.warmup_s = -1.0;
  EXPECT_THROW((void)run_scenario(cfg), std::invalid_argument);
  cfg.warmup_s = 10.0;  // no measurement window left
  EXPECT_THROW((void)run_scenario(cfg), std::invalid_argument);
  cfg.warmup_s = 12.0;
  EXPECT_THROW((void)run_scenario(cfg), std::invalid_argument);
}

TEST(Warmup, FlowsThroughSweepCells) {
  BenchScale scale{};
  scale.trials = 1;
  scale.sim_s = 3.0;
  scale.seed = 2;
  scale.threads = 1;
  scale.warmup_s = 1.0;
  scale.verbose = false;
  const auto grid = run_speed_sweep({36.0}, {10.0}, scale);
  ASSERT_EQ(grid.size(), kAllProtocols.size());
  for (const auto& cell : grid) {
    EXPECT_EQ(cell.result.measure_start, sim::seconds(1))
        << to_string(cell.protocol);
  }
}

// ---------------------------------------------------------------------------
// Trace error paths: file:line diagnostics, never a silent clamp
// ---------------------------------------------------------------------------

/// Writes `content` to a temp trace file and returns the path.
class TraceErrorPaths : public ::testing::Test {
 protected:
  std::string write_trace(const std::string& content) {
    const auto path =
        (std::filesystem::temp_directory_path() /
         ("rica_harness_trace_" + std::to_string(counter_++) + ".trace"))
            .string();
    std::ofstream(path) << content;
    paths_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const auto& path : paths_) std::remove(path.c_str());
  }

  /// Expects load_trace to throw an invalid_argument whose message carries
  /// the offending `file:line:` location plus `detail`.
  void expect_error(const std::string& content, int line,
                    const std::string& detail) {
    const auto path = write_trace(content);
    try {
      (void)mobility::load_trace(path, mobility::Field{1000.0, 1000.0});
      FAIL() << "expected std::invalid_argument for: " << detail;
    } catch (const std::invalid_argument& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find(path), std::string::npos) << msg;
      if (line > 0) {
        EXPECT_NE(msg.find(":" + std::to_string(line) + ":"),
                  std::string::npos)
            << "expected line " << line << " in: " << msg;
      }
      EXPECT_NE(msg.find(detail), std::string::npos) << msg;
    }
  }

 private:
  int counter_ = 0;
  std::vector<std::string> paths_;
};

TEST_F(TraceErrorPaths, BonnMotionMalformedNumber) {
  expect_error("0.0 10.0 10.0 5.0 twenty 10.0\n", 1, "expected a number");
}

TEST_F(TraceErrorPaths, BonnMotionTripleCount) {
  expect_error("0.0 10.0 10.0\n0.0 20.0\n", 2, "triples");
}

TEST_F(TraceErrorPaths, BonnMotionNonMonotonicTimestamps) {
  expect_error("0.0 10.0 10.0 8.0 20.0 20.0 4.0 30.0 30.0\n", 1,
               "non-monotonic timestamp");
}

TEST_F(TraceErrorPaths, BonnMotionEqualTimestampTeleportRejected) {
  expect_error("0.0 10.0 10.0 5.0 20.0 20.0 5.0 90.0 90.0\n", 1,
               "non-monotonic timestamp");
}

TEST_F(TraceErrorPaths, BonnMotionNegativeTimestamp) {
  expect_error("-1.0 10.0 10.0\n", 1, "negative timestamp");
}

TEST_F(TraceErrorPaths, BonnMotionOutOfArenaCoordinate) {
  expect_error("0.0 10.0 10.0 5.0 1200.0 10.0\n", 1, "outside the");
}

TEST_F(TraceErrorPaths, SetdestUnrecognizedLine) {
  expect_error("$node_(0) set X_ 1.0\n$node_(0) set Y_ 1.0\nwarp 0 99\n", 3,
               "unrecognized line");
}

TEST_F(TraceErrorPaths, SetdestMalformedCommand) {
  expect_error(
      "$node_(0) set X_ 1.0\n$node_(0) set Y_ 1.0\n"
      "$ns_ at 1.0 \"$node_(0) teleport 5 5 1\"\n",
      3, "setdest");
}

TEST_F(TraceErrorPaths, SetdestBeforeInitialPosition) {
  expect_error("$ns_ at 1.0 \"$node_(0) setdest 5.0 5.0 1.0\"\n", 1,
               "before its initial");
}

TEST_F(TraceErrorPaths, SetdestNonMonotonicCommandTimes) {
  expect_error(
      "$node_(0) set X_ 1.0\n$node_(0) set Y_ 1.0\n"
      "$ns_ at 9.0 \"$node_(0) setdest 5.0 5.0 1.0\"\n"
      "$ns_ at 3.0 \"$node_(0) setdest 9.0 9.0 1.0\"\n",
      4, "non-monotonic command time");
}

TEST_F(TraceErrorPaths, SetdestNonPositiveSpeed) {
  expect_error(
      "$node_(0) set X_ 1.0\n$node_(0) set Y_ 1.0\n"
      "$ns_ at 1.0 \"$node_(0) setdest 5.0 5.0 0\"\n",
      3, "speed must be > 0");
}

TEST_F(TraceErrorPaths, SetdestOutOfArenaDestination) {
  expect_error(
      "$node_(0) set X_ 1.0\n$node_(0) set Y_ 1.0\n"
      "$ns_ at 1.0 \"$node_(0) setdest 5000.0 5.0 1.0\"\n",
      3, "outside the");
}

TEST_F(TraceErrorPaths, SetdestRepeatedPlacementRejected) {
  // A second `set X_`/`set Y_` would teleport the node around the knot log
  // (and dodge the arena check): strict error, not a silent rewrite.
  expect_error(
      "$node_(0) set X_ 1.0\n$node_(0) set Y_ 1.0\n"
      "$node_(0) set X_ 5000.0\n",
      3, "position set twice");
}

TEST_F(TraceErrorPaths, SetdestNodeIdHole) {
  // Node 1 is placed but node 0 never is: the id space has a hole.
  expect_error("$node_(1) set X_ 1.0\n$node_(1) set Y_ 1.0\n", 0,
               "no initial position");
}

TEST(TraceScenario, MissingFileAndShortTracesFailLoudly) {
  ScenarioConfig cfg;
  cfg.mobility = "trace:file=/nonexistent/rica-no-such.trace";
  cfg.sim_s = 1.0;
  try {
    (void)run_scenario(cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open trace file"),
              std::string::npos);
  }

  // A trace with fewer nodes than the scenario population is an error, not
  // a silent reuse of trajectories.
  const auto path = (std::filesystem::temp_directory_path() /
                     "rica_harness_short.trace")
                        .string();
  std::ofstream(path) << "0.0 10.0 10.0\n0.0 20.0 20.0\n";
  cfg.mobility = "trace:file=" + path;
  try {
    (void)run_scenario(cfg);  // paper default: 50 nodes
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("trace covers 2 node(s)"), std::string::npos) << msg;
    EXPECT_NE(msg.find("50"), std::string::npos) << msg;
  }
  std::remove(path.c_str());
}

TEST(TraceScenario, SpecWithoutFileRejectedEagerly) {
  EXPECT_THROW((void)mobility::parse_mobility_spec("trace"),
               std::invalid_argument);
  EXPECT_THROW((void)mobility::parse_mobility_spec("trace:file="),
               std::invalid_argument);
  EXPECT_THROW((void)mobility::parse_mobility_spec("trace:dt=5"),
               std::invalid_argument);
  // The flags layer validates eagerly too, before any cell runs.
  const auto f = parse({"--mobility", "trace"});
  EXPECT_THROW((void)bench_scale(f, 3, 100.0), std::invalid_argument);
}

TEST(TableTest, AlignsColumns) {
  Table t({"a", "long_header"});
  t.add_row({"xxxxxx", "1"});
  std::ostringstream os;
  t.print(os);
  const auto out = os.str();
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("xxxxxx"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, FmtPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(10.0, 0), "10");
}

TEST(AdaptiveChecks, ReducesIdleOverheadAtZeroMobility) {
  // With a frozen channel the adaptive destination backs off toward the
  // 4 s maximum, spending less of the common channel than the fixed 1 s
  // schedule, without giving up delivery.
  ScenarioConfig fixed;
  fixed.protocol = ProtocolKind::kRica;
  fixed.mean_speed_kmh = 0.0;
  fixed.sim_s = 40.0;
  fixed.seed = 3;
  ScenarioConfig adaptive = fixed;
  adaptive.rica.adaptive_checks = true;

  const auto rf = run_scenario(fixed);
  const auto ra = run_scenario(adaptive);
  EXPECT_LT(ra.overhead_kbps, rf.overhead_kbps);
  EXPECT_GT(ra.delivery_pct, rf.delivery_pct - 3.0);
}

TEST(AdaptiveChecks, StillDeliversUnderMobility) {
  ScenarioConfig cfg;
  cfg.protocol = ProtocolKind::kRica;
  cfg.mean_speed_kmh = 54.0;
  cfg.sim_s = 30.0;
  cfg.rica.adaptive_checks = true;
  const auto r = run_scenario(cfg);
  EXPECT_GT(r.delivery_pct, 70.0);
}

// ---------------------------------------------------------------------------
// validate_scenario: one thrown pass for population, shard, and warmup
// bounds, with messages naming the offending value (satellite of the
// sharded-kernel work; run_scenario calls this before any construction).
// ---------------------------------------------------------------------------

// Captures the exception message so tests can pin its content.
std::string validation_error(const ScenarioConfig& cfg) {
  try {
    validate_scenario(cfg);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return {};
}

TEST(ValidateScenario, DefaultAndPresetConfigsPass) {
  EXPECT_NO_THROW(validate_scenario(ScenarioConfig{}));
  for (const auto& preset : scenario_presets()) {
    EXPECT_NO_THROW(validate_scenario(preset_config(preset.name)));
  }
}

TEST(ValidateScenario, RejectsEmptyAndOversizedPopulations) {
  ScenarioConfig cfg;
  cfg.num_nodes = 0;
  EXPECT_THROW(validate_scenario(cfg), std::invalid_argument);
  cfg.num_nodes = (std::size_t{1} << 24) + 1;
  const auto msg = validation_error(cfg);
  EXPECT_NE(msg.find("16777217"), std::string::npos) << msg;
  EXPECT_NE(msg.find("2^24"), std::string::npos) << msg;
  cfg.num_nodes = std::size_t{1} << 24;  // the limit itself is legal
  EXPECT_NO_THROW(validate_scenario(cfg));
}

TEST(ValidateScenario, RejectsMoreShardsThanTheKernelSupports) {
  ScenarioConfig cfg;
  cfg.field_m = 100000.0;  // plenty of columns; the shard-id cap must fire
  cfg.shards = 65;
  const auto msg = validation_error(cfg);
  EXPECT_NE(msg.find("shards = 65"), std::string::npos) << msg;
  EXPECT_NE(msg.find("64-shard limit"), std::string::npos) << msg;
}

TEST(ValidateScenario, RejectsMoreShardsThanGridColumns) {
  ScenarioConfig cfg;  // 1000 m field at 250 m range: 4 columns
  cfg.shards = 5;
  const auto msg = validation_error(cfg);
  EXPECT_NE(msg.find("shards = 5"), std::string::npos) << msg;
  EXPECT_NE(msg.find("4 grid column"), std::string::npos) << msg;
  cfg.shards = 4;
  EXPECT_NO_THROW(validate_scenario(cfg));
  // run_scenario front-loads the same check before building a network.
  cfg.shards = 5;
  EXPECT_THROW({ auto r = run_scenario(cfg); (void)r; },
               std::invalid_argument);
}

TEST(ValidateScenario, RejectsWarmupOutsideTheRun) {
  ScenarioConfig cfg;
  cfg.warmup_s = -1.0;
  EXPECT_THROW(validate_scenario(cfg), std::invalid_argument);
  cfg.warmup_s = cfg.sim_s;
  const auto msg = validation_error(cfg);
  EXPECT_NE(msg.find("measurement window"), std::string::npos) << msg;
}

TEST(RicaConfigPlumbing, CheckPeriodAffectsOverhead) {
  ScenarioConfig slow;
  slow.protocol = ProtocolKind::kRica;
  slow.mean_speed_kmh = 36.0;
  slow.sim_s = 30.0;
  slow.rica.check_period = sim::seconds(4);
  ScenarioConfig fast = slow;
  fast.rica.check_period = sim::milliseconds(250);
  const auto rs = run_scenario(slow);
  const auto rf = run_scenario(fast);
  EXPECT_GT(rf.overhead_kbps, rs.overhead_kbps);
}

}  // namespace
}  // namespace rica::harness
