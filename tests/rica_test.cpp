// Unit tests for the RICA protocol against a scripted host: discovery,
// CSI-hop accumulation, destination/source selection windows, CSI-checking,
// route update via RUPD and flagged packets, the §II-D REER rules, and the
// check-candidate salvage path.
#include <gtest/gtest.h>

#include "core/rica.hpp"
#include "mock_host.hpp"

namespace rica::core {
namespace {

using channel::CsiClass;
using test::MockHost;
using test::make_data;

constexpr net::NodeId kSrc = 1;
constexpr net::NodeId kDst = 9;
constexpr net::FlowKey kFlow = net::flow_key(kSrc, kDst);

class RicaSourceTest : public ::testing::Test {
 protected:
  RicaSourceTest() : host_(kSrc), proto_(host_) {}
  MockHost host_;
  RicaProtocol proto_;
};

TEST_F(RicaSourceTest, FirstPacketTriggersRreqBroadcast) {
  proto_.handle_data(make_data(kSrc, kDst), kSrc);
  net::NodeId to = 0;
  const auto* rreq = host_.last_sent<net::RreqMsg>(&to);
  ASSERT_NE(rreq, nullptr);
  EXPECT_EQ(to, net::kBroadcastId);
  EXPECT_EQ(rreq->src, kSrc);
  EXPECT_EQ(rreq->dst, kDst);
  EXPECT_DOUBLE_EQ(rreq->csi_hops, 0.0);
  EXPECT_EQ(rreq->topo_hops, 0);
  EXPECT_TRUE(host_.forwarded.empty());
}

TEST_F(RicaSourceTest, SecondPacketDoesNotReflood) {
  proto_.handle_data(make_data(kSrc, kDst, 0), kSrc);
  proto_.handle_data(make_data(kSrc, kDst, 1), kSrc);
  EXPECT_EQ(host_.sent_count<net::RreqMsg>(), 1u);
}

TEST_F(RicaSourceTest, RrepInstallsRouteAndFlushesPending) {
  proto_.handle_data(make_data(kSrc, kDst, 0), kSrc);
  proto_.handle_data(make_data(kSrc, kDst, 1), kSrc);
  const net::NodeId relay = 4;
  proto_.on_control(
      net::make_control(kSrc, net::RrepMsg{kSrc, kDst, 1, 3.0, 2}), relay);
  EXPECT_EQ(proto_.source_next_hop(kDst), relay);
  ASSERT_EQ(host_.forwarded.size(), 2u);
  EXPECT_EQ(host_.forwarded[0].next_hop, relay);
  EXPECT_EQ(host_.forwarded[0].pkt.seq, 0u);
  EXPECT_EQ(host_.forwarded[1].pkt.seq, 1u);
}

TEST_F(RicaSourceTest, FirstPacketsOnFreshRouteCarryUpdateFlag) {
  proto_.handle_data(make_data(kSrc, kDst), kSrc);
  proto_.on_control(
      net::make_control(kSrc, net::RrepMsg{kSrc, kDst, 1, 3.0, 2}), 4);
  ASSERT_FALSE(host_.forwarded.empty());
  EXPECT_TRUE(host_.forwarded.front().pkt.route_update);
}

TEST_F(RicaSourceTest, DiscoveryRetriesThenGivesUp) {
  RicaConfig cfg;
  MockHost host(kSrc);
  RicaProtocol proto(host, cfg);
  proto.handle_data(make_data(kSrc, kDst), kSrc);
  host.sim().run_until(sim::seconds(5));
  EXPECT_EQ(host.sent_count<net::RreqMsg>(),
            static_cast<std::size_t>(cfg.max_discovery_attempts));
  // The buffered packet is eventually dropped (expired or no-route).
  EXPECT_EQ(host.dropped.size(), 1u);
}

TEST_F(RicaSourceTest, PendingBufferBounded) {
  RicaConfig cfg;
  MockHost host(kSrc);
  RicaProtocol proto(host, cfg);
  for (std::uint32_t i = 0; i < 2 * cfg.pending_cap; ++i) {
    proto.handle_data(make_data(kSrc, kDst, i), kSrc);
  }
  EXPECT_GE(host.counters["rica.pending_overflow"], cfg.pending_cap);
}

TEST_F(RicaSourceTest, CsiCheckWindowSelectsBestAndSendsRupd) {
  // Install a route via 5 first, then offer a better candidate via 6.
  proto_.handle_data(make_data(kSrc, kDst), kSrc);
  proto_.on_control(
      net::make_control(kSrc, net::RrepMsg{kSrc, kDst, 1, 9.0, 3}), 5);
  ASSERT_EQ(proto_.source_next_hop(kDst), 5u);

  host_.set_link(5, CsiClass::D);  // current first hop faded badly
  host_.set_link(6, CsiClass::A);
  net::CsiCheckMsg check;
  check.src = kSrc;
  check.dst = kDst;
  check.bid = 1;
  check.csi_hops = 2.0;
  check.topo_hops = 2;
  check.ttl = 4;
  check.received_from = 5;
  proto_.on_control(net::make_control(net::kBroadcastId, check), 5);
  net::CsiCheckMsg better = check;
  better.csi_hops = 1.0;
  better.received_from = 6;
  proto_.on_control(net::make_control(net::kBroadcastId, better), 6);

  host_.sim().run_until(sim::milliseconds(100));  // close the 40 ms window
  EXPECT_EQ(proto_.source_next_hop(kDst), 6u);
  net::NodeId rupd_to = 0;
  ASSERT_NE(host_.last_sent<net::RupdMsg>(&rupd_to), nullptr);
  EXPECT_EQ(rupd_to, 6u);
  EXPECT_GE(host_.counters["rica.route_switch"], 1u);
}

TEST_F(RicaSourceTest, CheckWindowKeepsCurrentRouteWhenItIsBest) {
  proto_.handle_data(make_data(kSrc, kDst), kSrc);
  proto_.on_control(
      net::make_control(kSrc, net::RrepMsg{kSrc, kDst, 1, 2.0, 2}), 5);
  host_.set_link(5, CsiClass::A);
  net::CsiCheckMsg check;
  check.src = kSrc;
  check.dst = kDst;
  check.bid = 1;
  check.csi_hops = 1.0;
  check.ttl = 4;
  check.received_from = 5;
  proto_.on_control(net::make_control(net::kBroadcastId, check), 5);
  host_.sim().run_until(sim::milliseconds(100));
  EXPECT_EQ(proto_.source_next_hop(kDst), 5u);
  EXPECT_EQ(host_.sent_count<net::RupdMsg>(), 0u);  // no pointless switch
}

TEST_F(RicaSourceTest, ReerFromCurrentDownstreamInvalidates) {
  proto_.handle_data(make_data(kSrc, kDst), kSrc);
  proto_.on_control(
      net::make_control(kSrc, net::RrepMsg{kSrc, kDst, 1, 2.0, 2}), 5);
  ASSERT_TRUE(proto_.source_next_hop(kDst).has_value());
  proto_.on_control(
      net::make_control(kSrc, net::ReerMsg{kSrc, kDst, 5}), 5);
  // No fresh candidates: the source must re-discover.
  EXPECT_FALSE(proto_.source_next_hop(kDst).has_value());
  EXPECT_GE(host_.sent_count<net::RreqMsg>(), 2u);
}

TEST_F(RicaSourceTest, ReerFromStaleNeighborIgnored) {
  proto_.handle_data(make_data(kSrc, kDst), kSrc);
  proto_.on_control(
      net::make_control(kSrc, net::RrepMsg{kSrc, kDst, 1, 2.0, 2}), 5);
  // REER from 7, which is NOT our downstream: §II-D says ignore it.
  proto_.on_control(
      net::make_control(kSrc, net::ReerMsg{kSrc, kDst, 7}), 7);
  EXPECT_EQ(proto_.source_next_hop(kDst), 5u);
}

TEST_F(RicaSourceTest, LinkBreakFallsBackToFreshCandidate) {
  proto_.handle_data(make_data(kSrc, kDst), kSrc);
  proto_.on_control(
      net::make_control(kSrc, net::RrepMsg{kSrc, kDst, 1, 2.0, 2}), 5);
  // A recent check round offered an alternative via 6.
  host_.set_link(5, CsiClass::A);
  host_.set_link(6, CsiClass::B);
  net::CsiCheckMsg check;
  check.src = kSrc;
  check.dst = kDst;
  check.bid = 1;
  check.csi_hops = 1.0;
  check.ttl = 4;
  check.received_from = 5;
  proto_.on_control(net::make_control(net::kBroadcastId, check), 5);
  net::CsiCheckMsg alt = check;
  alt.csi_hops = 1.5;
  alt.received_from = 6;
  proto_.on_control(net::make_control(net::kBroadcastId, alt), 6);
  host_.sim().run_until(sim::milliseconds(100));
  ASSERT_EQ(proto_.source_next_hop(kDst), 5u);

  proto_.on_link_break(5, {make_data(kSrc, kDst, 7)});
  EXPECT_EQ(proto_.source_next_hop(kDst), 6u);
  EXPECT_GE(host_.counters["rica.fallback_switch"], 1u);
  // The stranded packet was discarded.
  ASSERT_EQ(host_.dropped.size(), 1u);
  EXPECT_EQ(host_.dropped[0].second, stats::DropReason::kLinkBreak);
}

// ---------------------------------------------------------------------------
// Relay behaviour
// ---------------------------------------------------------------------------

class RicaRelayTest : public ::testing::Test {
 protected:
  RicaRelayTest() : host_(5), proto_(host_) {
    host_.set_link(kUp, CsiClass::B);
    host_.set_link(kDown, CsiClass::A);
  }
  static constexpr net::NodeId kUp = 4;    // toward the source
  static constexpr net::NodeId kDown = 6;  // toward the destination
  MockHost host_;
  RicaProtocol proto_;
};

TEST_F(RicaRelayTest, RreqAccumulatesCsiHopsAndRebroadcasts) {
  proto_.on_control(
      net::make_control(net::kBroadcastId, net::RreqMsg{kSrc, kDst, 1, 2.0, 1}),
      kUp);
  host_.sim().run_until(sim::milliseconds(50));  // fire the jittered forward
  const auto* fwd = host_.last_sent<net::RreqMsg>();
  ASSERT_NE(fwd, nullptr);
  // Class B adds 250/150 = 1.67 CSI hops.
  EXPECT_NEAR(fwd->csi_hops, 2.0 + 250.0 / 150.0, 1e-9);
  EXPECT_EQ(fwd->topo_hops, 2);
}

TEST_F(RicaRelayTest, DuplicateRreqDiscarded) {
  const auto msg = net::RreqMsg{kSrc, kDst, 1, 2.0, 1};
  proto_.on_control(net::make_control(net::kBroadcastId, msg), kUp);
  proto_.on_control(net::make_control(net::kBroadcastId, msg), kDown);
  host_.sim().run_until(sim::milliseconds(50));
  EXPECT_EQ(host_.sent_count<net::RreqMsg>(), 1u);
}

TEST_F(RicaRelayTest, RrepInstallsEntryAndForwardsUpstream) {
  proto_.on_control(
      net::make_control(net::kBroadcastId, net::RreqMsg{kSrc, kDst, 1, 0.0, 0}),
      kUp);
  host_.sim().run_until(sim::milliseconds(50));
  proto_.on_control(
      net::make_control(5, net::RrepMsg{kSrc, kDst, 1, 4.0, 1}), kDown);
  EXPECT_EQ(proto_.relay_downstream(kFlow), kDown);
  net::NodeId to = 0;
  const auto* rrep = host_.last_sent<net::RrepMsg>(&to);
  ASSERT_NE(rrep, nullptr);
  EXPECT_EQ(to, kUp);
  EXPECT_EQ(rrep->topo_hops, 2);
}

TEST_F(RicaRelayTest, DataFollowsInstalledRoute) {
  proto_.on_control(
      net::make_control(net::kBroadcastId, net::RreqMsg{kSrc, kDst, 1, 0.0, 0}),
      kUp);
  host_.sim().run_until(sim::milliseconds(50));
  proto_.on_control(
      net::make_control(5, net::RrepMsg{kSrc, kDst, 1, 4.0, 1}), kDown);
  proto_.handle_data(make_data(kSrc, kDst), kUp);
  ASSERT_EQ(host_.forwarded.size(), 1u);
  EXPECT_EQ(host_.forwarded[0].next_hop, kDown);
}

TEST_F(RicaRelayTest, CheckRecordsFirstSenderAndDecrementsTtl) {
  net::CsiCheckMsg check;
  check.src = kSrc;
  check.dst = kDst;
  check.bid = 3;
  check.csi_hops = 1.0;
  check.topo_hops = 1;
  check.ttl = 3;
  check.received_from = 7;
  proto_.on_control(net::make_control(net::kBroadcastId, check), kDown);
  EXPECT_EQ(proto_.check_candidate(kFlow), kDown);
  host_.sim().run_until(sim::milliseconds(50));
  const auto* fwd = host_.last_sent<net::CsiCheckMsg>();
  ASSERT_NE(fwd, nullptr);
  EXPECT_EQ(fwd->ttl, 2);
  EXPECT_EQ(fwd->received_from, kDown);
  EXPECT_NEAR(fwd->csi_hops, 1.0 + 1.0, 1e-9);  // class A link adds 1
}

TEST_F(RicaRelayTest, CheckWithExhaustedTtlNotForwarded) {
  net::CsiCheckMsg check;
  check.src = kSrc;
  check.dst = kDst;
  check.bid = 3;
  check.ttl = 1;
  check.received_from = 7;
  proto_.on_control(net::make_control(net::kBroadcastId, check), kDown);
  host_.sim().run_until(sim::milliseconds(50));
  EXPECT_EQ(host_.sent_count<net::CsiCheckMsg>(), 0u);
  // The candidate is still recorded even though the flood stops here.
  EXPECT_EQ(proto_.check_candidate(kFlow), kDown);
}

TEST_F(RicaRelayTest, UpdateFlaggedPacketReanchorsToCheckCandidate) {
  // Old route via kDown; a fresh check came first from 8.
  proto_.on_control(
      net::make_control(net::kBroadcastId, net::RreqMsg{kSrc, kDst, 1, 0.0, 0}),
      kUp);
  host_.sim().run_until(sim::milliseconds(50));
  proto_.on_control(
      net::make_control(5, net::RrepMsg{kSrc, kDst, 1, 4.0, 1}), kDown);

  host_.set_link(8, CsiClass::A);
  net::CsiCheckMsg check;
  check.src = kSrc;
  check.dst = kDst;
  check.bid = 9;
  check.ttl = 4;
  check.received_from = 7;
  proto_.on_control(net::make_control(net::kBroadcastId, check), 8);
  ASSERT_EQ(proto_.check_candidate(kFlow), 8u);

  auto pkt = make_data(kSrc, kDst);
  pkt.route_update = true;
  proto_.handle_data(std::move(pkt), kUp);
  ASSERT_EQ(host_.forwarded.size(), 1u);
  EXPECT_EQ(host_.forwarded[0].next_hop, 8u);
  EXPECT_EQ(proto_.relay_downstream(kFlow), 8u);
}

TEST_F(RicaRelayTest, RupdReanchorsEntry) {
  host_.set_link(8, CsiClass::B);
  net::CsiCheckMsg check;
  check.src = kSrc;
  check.dst = kDst;
  check.bid = 2;
  check.ttl = 4;
  check.received_from = 7;
  proto_.on_control(net::make_control(net::kBroadcastId, check), 8);
  proto_.on_control(net::make_control(5, net::RupdMsg{kSrc, kDst}), kUp);
  EXPECT_EQ(proto_.relay_downstream(kFlow), 8u);
}

TEST_F(RicaRelayTest, DataWithoutEntryOrCandidateDropsNoRoute) {
  proto_.handle_data(make_data(kSrc, kDst), kUp);
  ASSERT_EQ(host_.dropped.size(), 1u);
  EXPECT_EQ(host_.dropped[0].second, stats::DropReason::kNoRoute);
  EXPECT_TRUE(host_.forwarded.empty());
}

TEST_F(RicaRelayTest, DataWithoutEntrySalvagedAlongCheckCandidate) {
  host_.set_link(8, CsiClass::A);
  net::CsiCheckMsg check;
  check.src = kSrc;
  check.dst = kDst;
  check.bid = 2;
  check.ttl = 4;
  check.received_from = 7;
  proto_.on_control(net::make_control(net::kBroadcastId, check), 8);

  proto_.handle_data(make_data(kSrc, kDst), kUp);
  ASSERT_EQ(host_.forwarded.size(), 1u);
  EXPECT_EQ(host_.forwarded[0].next_hop, 8u);
  EXPECT_GE(host_.counters["rica.salvage"], 1u);
}

TEST_F(RicaRelayTest, NeverForwardsBackToSender) {
  // Check candidate points at the very node the data came from: must drop,
  // not bounce.
  host_.set_link(kUp, CsiClass::A);
  net::CsiCheckMsg check;
  check.src = kSrc;
  check.dst = kDst;
  check.bid = 2;
  check.ttl = 4;
  check.received_from = 7;
  proto_.on_control(net::make_control(net::kBroadcastId, check), kUp);
  ASSERT_EQ(proto_.check_candidate(kFlow), kUp);
  proto_.handle_data(make_data(kSrc, kDst), kUp);
  EXPECT_TRUE(host_.forwarded.empty());
  ASSERT_EQ(host_.dropped.size(), 1u);
}

TEST_F(RicaRelayTest, ReerForwardedOnlyFromCurrentDownstream) {
  proto_.on_control(
      net::make_control(net::kBroadcastId, net::RreqMsg{kSrc, kDst, 1, 0.0, 0}),
      kUp);
  host_.sim().run_until(sim::milliseconds(50));
  proto_.on_control(
      net::make_control(5, net::RrepMsg{kSrc, kDst, 1, 4.0, 1}), kDown);

  // From a stale neighbour: ignored.
  proto_.on_control(net::make_control(5, net::ReerMsg{kSrc, kDst, 8}), 8);
  EXPECT_EQ(host_.sent_count<net::ReerMsg>(), 0u);
  EXPECT_TRUE(proto_.relay_downstream(kFlow).has_value());

  // From the real downstream: invalidate and forward upstream.
  proto_.on_control(net::make_control(5, net::ReerMsg{kSrc, kDst, kDown}),
                    kDown);
  EXPECT_FALSE(proto_.relay_downstream(kFlow).has_value());
  net::NodeId to = 0;
  const auto* reer = host_.last_sent<net::ReerMsg>(&to);
  ASSERT_NE(reer, nullptr);
  EXPECT_EQ(to, kUp);
  EXPECT_EQ(reer->reporter, 5u);
}

TEST_F(RicaRelayTest, LinkBreakSendsReerUpstream) {
  proto_.on_control(
      net::make_control(net::kBroadcastId, net::RreqMsg{kSrc, kDst, 1, 0.0, 0}),
      kUp);
  host_.sim().run_until(sim::milliseconds(50));
  proto_.on_control(
      net::make_control(5, net::RrepMsg{kSrc, kDst, 1, 4.0, 1}), kDown);

  proto_.on_link_break(kDown, {make_data(kSrc, kDst, 3)});
  net::NodeId to = 0;
  ASSERT_NE(host_.last_sent<net::ReerMsg>(&to), nullptr);
  EXPECT_EQ(to, kUp);
  ASSERT_EQ(host_.dropped.size(), 1u);
  EXPECT_EQ(host_.dropped[0].second, stats::DropReason::kLinkBreak);
}

// ---------------------------------------------------------------------------
// Destination behaviour
// ---------------------------------------------------------------------------

class RicaDestTest : public ::testing::Test {
 protected:
  RicaDestTest() : host_(kDst), proto_(host_) {
    host_.set_link(7, CsiClass::A);
    host_.set_link(8, CsiClass::C);
  }
  MockHost host_;
  RicaProtocol proto_;
};

TEST_F(RicaDestTest, CollectsRreqsAndRepliesToCsiShortest) {
  proto_.on_control(
      net::make_control(net::kBroadcastId, net::RreqMsg{kSrc, kDst, 1, 6.0, 2}),
      8);
  proto_.on_control(
      net::make_control(net::kBroadcastId, net::RreqMsg{kSrc, kDst, 1, 2.0, 3}),
      7);
  EXPECT_EQ(host_.sent_count<net::RrepMsg>(), 0u);  // window still open
  host_.sim().run_until(sim::milliseconds(100));
  net::NodeId to = 0;
  const auto* rrep = host_.last_sent<net::RrepMsg>(&to);
  ASSERT_NE(rrep, nullptr);
  // Via 7: 2.0 + class A (1.0) = 3.0 beats via 8: 6.0 + class C (3.33).
  EXPECT_EQ(to, 7u);
}

TEST_F(RicaDestTest, DeliveredDataArmsPeriodicChecks) {
  auto pkt = make_data(kSrc, kDst);
  pkt.hops = 3;
  proto_.handle_data(std::move(pkt), 7);
  ASSERT_EQ(host_.delivered.size(), 1u);
  host_.sim().run_until(sim::milliseconds(1100));
  net::NodeId to = 0;
  const auto* check = host_.last_sent<net::CsiCheckMsg>(&to);
  ASSERT_NE(check, nullptr);
  EXPECT_EQ(to, net::kBroadcastId);
  EXPECT_EQ(check->dst, kDst);
  EXPECT_EQ(check->received_from, kDst);
  // TTL covers the observed route length plus slack.
  EXPECT_GE(check->ttl, 3 + 1);
}

TEST_F(RicaDestTest, ChecksStopWhenFlowGoesIdle) {
  proto_.handle_data(make_data(kSrc, kDst), 7);
  host_.sim().run_until(sim::seconds(10));
  const auto count_at_10s = host_.sent_count<net::CsiCheckMsg>();
  // Idle timeout is 3 s: roughly 3-4 checks, not 10.
  EXPECT_LE(count_at_10s, 5u);
  EXPECT_GE(count_at_10s, 2u);
}

TEST_F(RicaDestTest, ChecksKeepFlowingWhileDataArrives) {
  for (int s = 0; s < 8; ++s) {
    proto_.handle_data(make_data(kSrc, kDst, static_cast<std::uint32_t>(s)),
                       7);
    host_.sim().run_until(sim::seconds(s + 1));
  }
  EXPECT_GE(host_.sent_count<net::CsiCheckMsg>(), 6u);
}

TEST_F(RicaDestTest, CheckBroadcastIdsIncrease) {
  proto_.handle_data(make_data(kSrc, kDst), 7);
  host_.sim().run_until(sim::milliseconds(2100));
  std::vector<std::uint32_t> bids;
  for (const auto& s : host_.sent) {
    if (const auto* c = std::get_if<net::CsiCheckMsg>(&s.pkt.payload)) {
      bids.push_back(c->bid);
    }
  }
  ASSERT_GE(bids.size(), 2u);
  EXPECT_LT(bids[0], bids[1]);
}

}  // namespace
}  // namespace rica::core
