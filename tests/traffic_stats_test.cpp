// Traffic generation (Poisson arrivals, pair selection) and metrics
// aggregation (delay/delivery/overhead math, 4-second throughput series).
#include <gtest/gtest.h>

#include <set>

#include "net/network.hpp"
#include "routing/aodv/aodv.hpp"
#include "stats/metrics.hpp"
#include "traffic/poisson.hpp"

namespace rica {
namespace {

TEST(RandomFlows, EndpointsDistinct) {
  sim::RandomStream rng(3);
  const auto flows = traffic::random_flows(10, 50, 10.0, rng);
  ASSERT_EQ(flows.size(), 10u);
  std::set<net::NodeId> used;
  for (const auto& f : flows) {
    EXPECT_NE(f.src, f.dst);
    used.insert(f.src);
    used.insert(f.dst);
  }
  // 10 pairs use 20 distinct terminals (sampling without replacement).
  EXPECT_EQ(used.size(), 20u);
}

TEST(RandomFlows, RespectsRate) {
  sim::RandomStream rng(4);
  const auto flows = traffic::random_flows(3, 20, 20.0, rng);
  for (const auto& f : flows) EXPECT_DOUBLE_EQ(f.pkts_per_s, 20.0);
}

TEST(RandomFlows, DifferentSeedsDifferentPairs) {
  sim::RandomStream a(5);
  sim::RandomStream b(6);
  const auto fa = traffic::random_flows(10, 50, 10.0, a);
  const auto fb = traffic::random_flows(10, 50, 10.0, b);
  bool any_diff = false;
  for (std::size_t i = 0; i < fa.size(); ++i) {
    any_diff |= fa[i].src != fb[i].src || fa[i].dst != fb[i].dst;
  }
  EXPECT_TRUE(any_diff);
}

TEST(PoissonTraffic, GeneratesApproximatelyRateTimesTime) {
  net::NetworkConfig cfg;
  cfg.num_nodes = 4;
  cfg.mobility.field = mobility::Field{100.0, 100.0};
  cfg.mobility.max_speed_mps = 0.0;
  cfg.seed = 7;
  net::Network net(cfg);
  for (net::NodeId id = 0; id < net.size(); ++id) {
    net.node(id).set_protocol(
        std::make_unique<routing::AodvProtocol>(net.node(id)));
  }
  net.start();
  std::vector<traffic::Flow> flows{{0, 0, 3, 10.0}};
  traffic::PoissonTraffic gen(net, flows, 512, sim::seconds(100),
                              net.rng().stream("traffic"));
  gen.start();
  net.simulator().run_until(sim::seconds(100));
  // 10 pkt/s over 100 s: expect ~1000 +- 5 sigma (~sqrt(1000)*5 ~ 160).
  EXPECT_NEAR(static_cast<double>(net.metrics().generated()), 1000.0, 160.0);
}

TEST(PoissonTraffic, StopsAtStopTime) {
  net::NetworkConfig cfg;
  cfg.num_nodes = 4;
  cfg.mobility.field = mobility::Field{100.0, 100.0};
  cfg.mobility.max_speed_mps = 0.0;
  cfg.seed = 8;
  net::Network net(cfg);
  for (net::NodeId id = 0; id < net.size(); ++id) {
    net.node(id).set_protocol(
        std::make_unique<routing::AodvProtocol>(net.node(id)));
  }
  net.start();
  std::vector<traffic::Flow> flows{{0, 0, 3, 50.0}};
  traffic::PoissonTraffic gen(net, flows, 512, sim::seconds(2),
                              net.rng().stream("traffic"));
  gen.start();
  net.simulator().run_until(sim::seconds(10));
  const auto generated = net.metrics().generated();
  EXPECT_NEAR(static_cast<double>(generated), 100.0, 60.0);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

net::DataPacket delivered_pkt(double delay_ms, std::uint16_t hops,
                              double tput_sum) {
  net::DataPacket p;
  p.size_bytes = 512;
  p.gen_time = sim::Time::zero();
  p.hops = hops;
  p.tput_sum_bps = tput_sum;
  (void)delay_ms;
  return p;
}

TEST(Metrics, DeliveryPercentage) {
  stats::MetricsCollector m;
  net::DataPacket p;
  for (int i = 0; i < 4; ++i) m.on_generated(p);
  m.on_delivered(delivered_pkt(10, 2, 300e3), sim::milliseconds(10));
  const auto s = m.finalize(sim::seconds(10));
  EXPECT_EQ(s.generated, 4u);
  EXPECT_EQ(s.delivered, 1u);
  EXPECT_DOUBLE_EQ(s.delivery_pct, 25.0);
}

TEST(Metrics, AverageDelay) {
  stats::MetricsCollector m;
  net::DataPacket p;
  m.on_generated(p);
  m.on_generated(p);
  m.on_delivered(delivered_pkt(0, 1, 250e3), sim::milliseconds(10));
  m.on_delivered(delivered_pkt(0, 1, 250e3), sim::milliseconds(30));
  const auto s = m.finalize(sim::seconds(10));
  EXPECT_DOUBLE_EQ(s.avg_delay_ms, 20.0);
}

TEST(Metrics, LinkThroughputAndHops) {
  stats::MetricsCollector m;
  // Two packets: one 2-hop over (250k, 150k), one 1-hop over 50k.
  m.on_delivered(delivered_pkt(0, 2, 400e3), sim::milliseconds(5));
  m.on_delivered(delivered_pkt(0, 1, 50e3), sim::milliseconds(6));
  const auto s = m.finalize(sim::seconds(1));
  EXPECT_DOUBLE_EQ(s.avg_hops, 1.5);
  EXPECT_NEAR(s.avg_link_tput_kbps, (400e3 + 50e3) / 3.0 / 1e3, 1e-9);
}

TEST(Metrics, OverheadCombinesControlAndAcks) {
  stats::MetricsCollector m;
  m.on_control_tx(1000);
  m.on_control_tx(1000);
  m.on_ack_tx(500);
  const auto s = m.finalize(sim::seconds(1));
  EXPECT_DOUBLE_EQ(s.overhead_kbps, 2.5);
  EXPECT_EQ(s.control_transmissions, 2u);
}

TEST(Metrics, DropsAccumulatePerReason) {
  stats::MetricsCollector m;
  net::DataPacket p;
  m.on_dropped(p, stats::DropReason::kExpired);
  m.on_dropped(p, stats::DropReason::kExpired);
  m.on_dropped(p, stats::DropReason::kLinkBreak);
  EXPECT_EQ(m.dropped(stats::DropReason::kExpired), 2u);
  EXPECT_EQ(m.dropped(stats::DropReason::kLinkBreak), 1u);
  EXPECT_EQ(m.dropped(stats::DropReason::kNoRoute), 0u);
}

TEST(Metrics, NamedCounters) {
  stats::MetricsCollector m;
  m.inc("x");
  m.inc("x", 4);
  EXPECT_EQ(m.counter("x"), 5u);
  EXPECT_EQ(m.counter("y"), 0u);
}

TEST(ThroughputSeries, BucketsBits) {
  stats::ThroughputSeries series(sim::seconds(4));
  series.add_bits(sim::seconds(1), 4096);
  series.add_bits(sim::seconds(3), 4096);
  series.add_bits(sim::seconds(5), 8192);
  const auto kbps = series.kbps();
  ASSERT_EQ(kbps.size(), 2u);
  EXPECT_DOUBLE_EQ(kbps[0], 8192 / 4.0 / 1e3);
  EXPECT_DOUBLE_EQ(kbps[1], 8192 / 4.0 / 1e3);
}

TEST(ThroughputSeries, EmptyIsEmpty) {
  stats::ThroughputSeries series;
  EXPECT_TRUE(series.kbps().empty());
}

TEST(SummaryStats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(stats::mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(stats::mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stats::stddev({2.0, 4.0}), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(stats::stddev({5.0}), 0.0);
}

TEST(DropReasonNames, AllNamed) {
  for (std::size_t i = 0; i < stats::kNumDropReasons; ++i) {
    EXPECT_FALSE(
        stats::to_string(static_cast<stats::DropReason>(i)).empty());
  }
}

}  // namespace
}  // namespace rica
