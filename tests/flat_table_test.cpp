// Model tests for the open-addressing tables (util/flat_table.hpp):
// FlatMap64 and FlatSet64 churned against std::unordered_map/set references,
// plus the guarantees the routing protocols lean on — stable value
// addresses across inserts and rehashes, deterministic iteration, and
// tombstone recycling after erase-heavy workloads.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/random.hpp"
#include "util/flat_table.hpp"

namespace rica::util {
namespace {

TEST(FlatMap64, BasicInsertFindErase) {
  FlatMap64<int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(7), m.end());

  auto [it, inserted] = m.try_emplace(7, 70);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->first, 7u);
  EXPECT_EQ(it->second, 70);
  EXPECT_FALSE(m.try_emplace(7, 71).second);  // no overwrite
  EXPECT_EQ(m.at(7), 70);

  m[9] = 90;  // operator[] default-constructs then assigns
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.erase(7), 1u);
  EXPECT_EQ(m.erase(7), 0u);
  EXPECT_EQ(m.find(7), m.end());
  EXPECT_EQ(m.at(9), 90);
  m.clear();
  EXPECT_TRUE(m.empty());
}

TEST(FlatMap64, ValueAddressesSurviveRehashes) {
  // The protocols hold `auto& e = entries_[k]` across later inserts; the
  // slab must never move a live value.
  FlatMap64<std::string> m;
  std::vector<const std::string*> addr;
  for (std::uint64_t k = 0; k < 500; ++k) {
    addr.push_back(&m.try_emplace(k, std::to_string(k)).first->second);
  }
  for (std::uint64_t k = 0; k < 500; ++k) {
    EXPECT_EQ(&m.at(k), addr[k]);
    EXPECT_EQ(*addr[k], std::to_string(k));
  }
}

TEST(FlatMap64, MoveOnlyAndNonDefaultConstructibleValues) {
  struct NoDefault {
    explicit NoDefault(int x) : v(x) {}
    NoDefault(const NoDefault&) = delete;
    NoDefault& operator=(const NoDefault&) = delete;
    int v;
  };
  FlatMap64<NoDefault> m;
  m.try_emplace(1, 10);
  m.try_emplace(2, 20);
  EXPECT_EQ(m.at(1).v, 10);
  EXPECT_EQ(m.at(2).v, 20);
}

TEST(FlatMap64, IterationIsInsertionOrdered) {
  FlatMap64<int> m;
  const std::uint64_t keys[] = {42, 7, 19, 3, 88};
  for (std::size_t i = 0; i < 5; ++i) {
    m.try_emplace(keys[i], static_cast<int>(i));
  }
  std::size_t pos = 0;
  for (const auto& [k, v] : m) {
    EXPECT_EQ(k, keys[pos]);
    EXPECT_EQ(v, static_cast<int>(pos));
    ++pos;
  }
  EXPECT_EQ(pos, 5u);
}

TEST(FlatMap64, RandomizedChurnMatchesUnorderedMapReference) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    sim::RandomStream rng(seed);
    FlatMap64<std::uint64_t> m;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    for (int op = 0; op < 30000; ++op) {
      // Small key space forces heavy insert/erase/reinsert collisions —
      // the tombstone and node-recycling paths.
      const auto key = static_cast<std::uint64_t>(rng.uniform_int(0, 300));
      const auto roll = rng.uniform_int(0, 99);
      if (roll < 50) {
        const auto val = static_cast<std::uint64_t>(op);
        EXPECT_EQ(m.try_emplace(key, val).second, ref.try_emplace(key, val).second);
      } else if (roll < 75) {
        EXPECT_EQ(m.erase(key), ref.erase(key));
      } else {
        const auto it = m.find(key);
        const auto rit = ref.find(key);
        ASSERT_EQ(it == m.end(), rit == ref.end());
        if (it != m.end()) {
          EXPECT_EQ(it->first, rit->first);
          EXPECT_EQ(it->second, rit->second);
        }
      }
      ASSERT_EQ(m.size(), ref.size());
    }
    // Full-content sweep both ways.
    std::size_t seen = 0;
    for (const auto& [k, v] : m) {
      const auto rit = ref.find(k);
      ASSERT_NE(rit, ref.end());
      EXPECT_EQ(v, rit->second);
      ++seen;
    }
    EXPECT_EQ(seen, ref.size());
    EXPECT_LE(m.load_factor(), 0.76);
  }
}

TEST(FlatSet64, RandomizedChurnMatchesUnorderedSetReference) {
  sim::RandomStream rng(99);
  FlatSet64 s;
  std::unordered_set<std::uint64_t> ref;
  for (int op = 0; op < 20000; ++op) {
    const auto key = static_cast<std::uint64_t>(rng.uniform_int(0, 5000));
    EXPECT_EQ(s.insert(key), ref.insert(key).second);
    const auto probe = static_cast<std::uint64_t>(rng.uniform_int(0, 5000));
    EXPECT_EQ(s.contains(probe), ref.contains(probe));
    ASSERT_EQ(s.size(), ref.size());
  }
  EXPECT_LE(s.load_factor(), 0.76);
  s.clear();
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.contains(1));
  EXPECT_TRUE(s.insert(1));
}

}  // namespace
}  // namespace rica::util
