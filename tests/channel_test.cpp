// Channel model: CSI class mapping, path-loss monotonicity, shadowing
// statistics, temporal correlation, symmetry, and the frozen-when-static
// property the link-state results depend on.
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "channel/channel_model.hpp"
#include "channel/csi.hpp"
#include "mobility/mobility_model.hpp"

namespace rica::channel {
namespace {

TEST(Csi, ThroughputMatchesPaper) {
  EXPECT_DOUBLE_EQ(throughput_bps(CsiClass::A), 250'000.0);
  EXPECT_DOUBLE_EQ(throughput_bps(CsiClass::B), 150'000.0);
  EXPECT_DOUBLE_EQ(throughput_bps(CsiClass::C), 75'000.0);
  EXPECT_DOUBLE_EQ(throughput_bps(CsiClass::D), 50'000.0);
}

TEST(Csi, HopDistanceMatchesPaper) {
  // Paper §II-A: 1, 1.67, 3.33, 5 hops (delay ratios vs class A).
  EXPECT_DOUBLE_EQ(csi_hop_distance(CsiClass::A), 1.0);
  EXPECT_NEAR(csi_hop_distance(CsiClass::B), 1.67, 0.01);
  EXPECT_NEAR(csi_hop_distance(CsiClass::C), 3.33, 0.01);
  EXPECT_DOUBLE_EQ(csi_hop_distance(CsiClass::D), 5.0);
}

TEST(Csi, HopDistanceMonotoneInClass) {
  EXPECT_LT(csi_hop_distance(CsiClass::A), csi_hop_distance(CsiClass::B));
  EXPECT_LT(csi_hop_distance(CsiClass::B), csi_hop_distance(CsiClass::C));
  EXPECT_LT(csi_hop_distance(CsiClass::C), csi_hop_distance(CsiClass::D));
}

TEST(Csi, Names) {
  EXPECT_EQ(to_string(CsiClass::A), "A");
  EXPECT_EQ(to_string(CsiClass::D), "D");
}

/// A fixture with a static two-node layout a configurable distance apart.
class ChannelFixture : public ::testing::Test {
 protected:
  // Nodes do not move (max speed 0); positions are whatever the waypoint
  // draw gives, so distances vary per seed — tests that need controlled
  // distance use many seeds and bin by observed distance.
  static constexpr std::size_t kNodes = 30;

  ChannelFixture()
      : rng_(17),
        mobility_(kNodes, waypoint_config(), rng_),
        channel_(ChannelConfig{}, mobility_, rng_) {}

  static mobility::MobilityConfig waypoint_config() {
    mobility::MobilityConfig cfg;
    cfg.field = mobility::Field{1000.0, 1000.0};
    cfg.max_speed_mps = 0.0;
    return cfg;
  }

  sim::RngManager rng_;
  mobility::MobilityManager mobility_;
  ChannelModel channel_;
};

TEST_F(ChannelFixture, OutOfRangeReturnsNullopt) {
  bool saw_out_of_range = false;
  for (std::uint32_t a = 0; a < kNodes && !saw_out_of_range; ++a) {
    for (std::uint32_t b = a + 1; b < kNodes; ++b) {
      if (mobility_.node_distance(a, b, sim::Time::zero()) > 250.0) {
        EXPECT_FALSE(channel_.sample(a, b, sim::Time::zero()).has_value());
        saw_out_of_range = true;
        break;
      }
    }
  }
  EXPECT_TRUE(saw_out_of_range) << "layout had no far pair; adjust seed";
}

TEST_F(ChannelFixture, InRangeAlwaysYieldsAClass) {
  for (std::uint32_t a = 0; a < kNodes; ++a) {
    for (std::uint32_t b = a + 1; b < kNodes; ++b) {
      if (mobility_.node_distance(a, b, sim::Time::zero()) <= 250.0) {
        const auto s = channel_.sample(a, b, sim::Time::zero());
        ASSERT_TRUE(s.has_value());
      }
    }
  }
}

TEST_F(ChannelFixture, SelfChannelIsInvalid) {
  EXPECT_FALSE(channel_.sample(3, 3, sim::Time::zero()).has_value());
  EXPECT_FALSE(channel_.in_range(3, 3, sim::Time::zero()));
}

TEST_F(ChannelFixture, SymmetricSample) {
  for (std::uint32_t b = 1; b < kNodes; ++b) {
    const auto ab = channel_.sample(0, b, sim::seconds(1));
    const auto ba = channel_.sample(b, 0, sim::seconds(1));
    ASSERT_EQ(ab.has_value(), ba.has_value());
    if (ab) {
      EXPECT_DOUBLE_EQ(ab->snr_db, ba->snr_db);
      EXPECT_EQ(ab->csi, ba->csi);
    }
  }
}

TEST_F(ChannelFixture, FrozenWhenStatic) {
  // With zero mobility the channel must not change over time: this is the
  // property that lets the link-state baseline excel at zero speed.
  for (std::uint32_t b = 1; b < 10; ++b) {
    const auto s1 = channel_.sample(0, b, sim::seconds(1));
    const auto s2 = channel_.sample(0, b, sim::seconds(100));
    ASSERT_EQ(s1.has_value(), s2.has_value());
    if (s1) EXPECT_DOUBLE_EQ(s1->snr_db, s2->snr_db);
  }
}

TEST_F(ChannelFixture, NeighborsMatchRangePredicate) {
  const auto neigh = channel_.neighbors_of(0, sim::Time::zero());
  for (std::uint32_t b = 1; b < kNodes; ++b) {
    const bool in = channel_.in_range(0, b, sim::Time::zero());
    const bool listed =
        std::find(neigh.begin(), neigh.end(), b) != neigh.end();
    EXPECT_EQ(in, listed);
  }
}

TEST(ChannelStatistics, CloserPairsGetBetterClasses) {
  // Average the quantized class (A=0..D=3) over many seeds at two controlled
  // distances by pinning nodes via a tiny field trick: use a degenerate
  // 1x1 field so all nodes sit essentially at one point, then a large field
  // for far pairs.  Instead, directly verify the mean-SNR path-loss model by
  // sampling many independent pairs and regressing class on distance.
  sim::RngManager rng(23);
  mobility::MobilityConfig wp;
  wp.field = mobility::Field{1000.0, 1000.0};
  wp.max_speed_mps = 0.0;
  mobility::MobilityManager mobility(200, wp, rng);
  ChannelModel channel(ChannelConfig{}, mobility, rng);

  double near_sum = 0;
  int near_n = 0;
  double far_sum = 0;
  int far_n = 0;
  for (std::uint32_t a = 0; a < 200; ++a) {
    for (std::uint32_t b = a + 1; b < 200; ++b) {
      const double d = mobility.node_distance(a, b, sim::Time::zero());
      if (d > 250.0) continue;
      const auto s = channel.sample(a, b, sim::Time::zero());
      ASSERT_TRUE(s.has_value());
      const double cls = static_cast<double>(s->csi);
      if (d < 100.0) {
        near_sum += cls;
        ++near_n;
      } else if (d > 200.0) {
        far_sum += cls;
        ++far_n;
      }
    }
  }
  ASSERT_GT(near_n, 20);
  ASSERT_GT(far_n, 20);
  EXPECT_LT(near_sum / near_n, far_sum / far_n);
}

TEST(ChannelStatistics, AllFourClassesOccurInRange) {
  sim::RngManager rng(29);
  mobility::MobilityConfig wp;
  wp.field = mobility::Field{1000.0, 1000.0};
  wp.max_speed_mps = 0.0;
  mobility::MobilityManager mobility(200, wp, rng);
  ChannelModel channel(ChannelConfig{}, mobility, rng);

  std::array<int, 4> histogram{};
  for (std::uint32_t a = 0; a < 200; ++a) {
    for (std::uint32_t b = a + 1; b < 200; ++b) {
      const auto s = channel.sample(a, b, sim::Time::zero());
      if (s) ++histogram[static_cast<std::size_t>(s->csi)];
    }
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GT(histogram[i], 0) << "class " << i << " never appeared";
  }
}

TEST(ChannelDynamics, MovingPairDecorrelates) {
  sim::RngManager rng(31);
  mobility::MobilityConfig wp;
  wp.field = mobility::Field{300.0, 300.0};  // small field: stay in range
  wp.max_speed_mps = 10.0;
  wp.pause = sim::Time::zero();
  mobility::MobilityManager mobility(2, wp, rng);
  ChannelModel channel(ChannelConfig{}, mobility, rng);

  // Sample SNR deviations over time; with motion they must change.
  int distinct = 0;
  std::optional<double> prev;
  for (int t = 0; t < 60; ++t) {
    const auto s = channel.sample(0, 1, sim::seconds(t));
    if (!s) continue;
    if (prev && std::abs(*prev - s->snr_db) > 1e-9) ++distinct;
    prev = s->snr_db;
  }
  EXPECT_GT(distinct, 5);
}

TEST(ChannelDynamics, ShortGapSamplesAreCorrelated) {
  // Consecutive samples 1 ms apart must be nearly identical (AR(1) with a
  // tiny step), while samples 10 s apart at 10 m/s should differ visibly.
  sim::RngManager rng(37);
  mobility::MobilityConfig wp;
  wp.field = mobility::Field{200.0, 200.0};
  wp.max_speed_mps = 10.0;
  wp.pause = sim::Time::zero();
  mobility::MobilityManager mobility(2, wp, rng);
  ChannelModel channel(ChannelConfig{}, mobility, rng);

  const auto s0 = channel.sample(0, 1, sim::milliseconds(1000));
  const auto s1 = channel.sample(0, 1, sim::milliseconds(1001));
  ASSERT_TRUE(s0 && s1);
  EXPECT_LT(std::abs(s0->snr_db - s1->snr_db), 1.5);
}

TEST(ChannelConfigTest, QuantizerThresholds) {
  // White-box: feed SNRs around the thresholds through a 2-node setup by
  // tweaking config so the mean SNR is pinned and disturbances are zero.
  sim::RngManager rng(41);
  mobility::MobilityConfig wp;
  wp.field = mobility::Field{1.0, 1.0};  // both nodes at ~the same point
  wp.max_speed_mps = 0.0;
  mobility::MobilityManager mobility(2, wp, rng);

  ChannelConfig cfg;
  cfg.shadow_sigma_db = 0.0;
  cfg.fading_sigma_db = 0.0;
  cfg.snr0_db = 18.0;  // at d<=1 m the mean SNR equals snr0 exactly
  ChannelModel ch_a(cfg, mobility, rng);
  EXPECT_EQ(ch_a.sample(0, 1, sim::Time::zero())->csi, CsiClass::A);

  cfg.snr0_db = 17.9;
  ChannelModel ch_b(cfg, mobility, rng);
  EXPECT_EQ(ch_b.sample(0, 1, sim::Time::zero())->csi, CsiClass::B);

  cfg.snr0_db = 11.9;
  ChannelModel ch_c(cfg, mobility, rng);
  EXPECT_EQ(ch_c.sample(0, 1, sim::Time::zero())->csi, CsiClass::C);

  cfg.snr0_db = 5.9;
  ChannelModel ch_d(cfg, mobility, rng);
  EXPECT_EQ(ch_d.sample(0, 1, sim::Time::zero())->csi, CsiClass::D);
}

}  // namespace
}  // namespace rica::channel
