// The pluggable traffic subsystem: spec-string parsing and validation, the
// four flow patterns, per-model arrival behavior, closed-loop reqresp
// feedback, per-flow conservation across every model x pattern cell, the
// fairness/percentile metrics, and the sweep's traffic axis determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "obs/histogram.hpp"
#include "net/network.hpp"
#include "routing/aodv/aodv.hpp"
#include "stats/metrics.hpp"
#include "traffic/cbr.hpp"
#include "traffic/poisson.hpp"
#include "traffic/reqresp.hpp"
#include "traffic/traffic_model.hpp"

namespace rica {
namespace {

// ---------------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------------

TEST(TrafficSpec, ModelsAndAliasesParse) {
  using traffic::TrafficKind;
  EXPECT_EQ(traffic::traffic_kind_from_string("poisson"),
            TrafficKind::kPoisson);
  EXPECT_EQ(traffic::traffic_kind_from_string("CBR"), TrafficKind::kCbr);
  EXPECT_EQ(traffic::traffic_kind_from_string("on-off"), TrafficKind::kOnOff);
  EXPECT_EQ(traffic::traffic_kind_from_string("burst"), TrafficKind::kOnOff);
  EXPECT_EQ(traffic::traffic_kind_from_string("pareto"),
            TrafficKind::kPareto);
  EXPECT_EQ(traffic::traffic_kind_from_string("rpc"), TrafficKind::kReqResp);
  for (const auto& name : traffic::known_traffic_models()) {
    EXPECT_EQ(traffic::to_string(traffic::traffic_kind_from_string(name)),
              name);
  }
}

TEST(TrafficSpec, PatternsAndAliasesParse) {
  using traffic::FlowPattern;
  EXPECT_EQ(traffic::flow_pattern_from_string("random"),
            FlowPattern::kRandom);
  EXPECT_EQ(traffic::flow_pattern_from_string("convergecast"),
            FlowPattern::kSink);
  EXPECT_EQ(traffic::flow_pattern_from_string("hotspot"),
            FlowPattern::kHotspot);
  EXPECT_EQ(traffic::flow_pattern_from_string("cycle"), FlowPattern::kRing);
  for (const auto& name : traffic::known_flow_patterns()) {
    EXPECT_EQ(traffic::to_string(traffic::flow_pattern_from_string(name)),
              name);
  }
}

TEST(TrafficSpec, UnknownModelListsTheKnownOnes) {
  try {
    (void)traffic::parse_traffic_spec("warpdrive");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    for (const auto& name : traffic::known_traffic_models()) {
      EXPECT_NE(msg.find(name), std::string::npos) << msg;
    }
  }
}

TEST(TrafficSpec, UnknownPatternListsTheKnownOnes) {
  try {
    (void)traffic::parse_traffic_spec("poisson:pattern=starburst");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    for (const auto& name : traffic::known_flow_patterns()) {
      EXPECT_NE(msg.find(name), std::string::npos) << msg;
    }
  }
}

TEST(TrafficSpec, UnknownKeyListsTheKnownKeys) {
  try {
    (void)traffic::parse_traffic_spec("cbr:rate=5");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("jitter"), std::string::npos) << msg;
    EXPECT_NE(msg.find("pattern"), std::string::npos) << msg;
  }
}

TEST(TrafficSpec, ModelScopedParamsParse) {
  const auto cbr = traffic::parse_traffic_spec("cbr:jitter=0.25");
  EXPECT_DOUBLE_EQ(cbr.cbr_jitter, 0.25);
  const auto onoff = traffic::parse_traffic_spec("onoff:on=0.5,off=2");
  EXPECT_DOUBLE_EQ(onoff.on_mean_s, 0.5);
  EXPECT_DOUBLE_EQ(onoff.off_mean_s, 2.0);
  const auto pareto =
      traffic::parse_traffic_spec("pareto:on=1,off=3,shape=1.4");
  EXPECT_DOUBLE_EQ(pareto.pareto_shape, 1.4);
  const auto rr =
      traffic::parse_traffic_spec("reqresp:think=0.5,timeout=3,req=128");
  EXPECT_DOUBLE_EQ(rr.think_mean_s, 0.5);
  EXPECT_DOUBLE_EQ(rr.timeout_s, 3.0);
  EXPECT_EQ(rr.request_bytes, 128);
  const auto hs =
      traffic::parse_traffic_spec("poisson:pattern=hotspot,hotspots=4");
  EXPECT_EQ(hs.pattern, traffic::FlowPattern::kHotspot);
  EXPECT_EQ(hs.hotspots, 4u);
}

TEST(TrafficSpec, SharedPatternKeyWorksForEveryModel) {
  for (const auto& model : traffic::known_traffic_models()) {
    const auto cfg = traffic::parse_traffic_spec(model + ":pattern=sink");
    EXPECT_EQ(cfg.pattern, traffic::FlowPattern::kSink) << model;
  }
}

TEST(TrafficSpec, OutOfRangeParamsRejected) {
  EXPECT_THROW((void)traffic::parse_traffic_spec("cbr:jitter=1"),
               std::invalid_argument);
  EXPECT_THROW((void)traffic::parse_traffic_spec("cbr:jitter=-0.1"),
               std::invalid_argument);
  EXPECT_THROW((void)traffic::parse_traffic_spec("onoff:on=0"),
               std::invalid_argument);
  EXPECT_THROW((void)traffic::parse_traffic_spec("pareto:shape=1"),
               std::invalid_argument);
  EXPECT_THROW((void)traffic::parse_traffic_spec("reqresp:think=0"),
               std::invalid_argument);
  EXPECT_THROW((void)traffic::parse_traffic_spec("reqresp:req=0"),
               std::invalid_argument);
  EXPECT_THROW((void)traffic::parse_traffic_spec("reqresp:req=70000"),
               std::invalid_argument);
  EXPECT_THROW((void)traffic::parse_traffic_spec("poisson:hotspots=0"),
               std::invalid_argument);
  EXPECT_THROW((void)traffic::parse_traffic_spec("poisson:pattern"),
               std::invalid_argument);  // malformed: no key=value
  EXPECT_THROW((void)traffic::parse_traffic_spec("cbr:jitter=abc"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Flow patterns
// ---------------------------------------------------------------------------

TEST(FlowPatterns, RandomMatchesTheLegacyDraws) {
  // The `random` pattern must reproduce random_flows draw for draw — the
  // bit-identity the pre-subsystem golden hashes ride on.
  sim::RandomStream a(42);
  sim::RandomStream b(42);
  traffic::TrafficConfig cfg;  // pattern defaults to random
  const auto legacy = traffic::random_flows(10, 50, 10.0, a);
  const auto routed = traffic::make_flows(cfg, 10, 50, 10.0, b);
  ASSERT_EQ(legacy.size(), routed.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].src, routed[i].src);
    EXPECT_EQ(legacy[i].dst, routed[i].dst);
    EXPECT_EQ(legacy[i].id, routed[i].id);
  }
}

TEST(FlowPatterns, SinkConvergesOnOneDestination) {
  sim::RandomStream rng(7);
  traffic::TrafficConfig cfg;
  cfg.pattern = traffic::FlowPattern::kSink;
  const auto flows = traffic::make_flows(cfg, 8, 30, 10.0, rng);
  ASSERT_EQ(flows.size(), 8u);
  std::set<net::NodeId> srcs;
  for (const auto& f : flows) {
    EXPECT_EQ(f.dst, flows[0].dst);
    EXPECT_NE(f.src, f.dst);
    srcs.insert(f.src);
  }
  EXPECT_EQ(srcs.size(), 8u);              // sources distinct
  EXPECT_EQ(srcs.count(flows[0].dst), 0u);  // the sink never sends
}

TEST(FlowPatterns, HotspotSharesKDestinationsRoundRobin) {
  sim::RandomStream rng(9);
  traffic::TrafficConfig cfg;
  cfg.pattern = traffic::FlowPattern::kHotspot;
  cfg.hotspots = 3;
  const auto flows = traffic::make_flows(cfg, 7, 40, 10.0, rng);
  ASSERT_EQ(flows.size(), 7u);
  std::set<net::NodeId> dsts;
  std::set<net::NodeId> srcs;
  for (const auto& f : flows) {
    EXPECT_NE(f.src, f.dst);
    dsts.insert(f.dst);
    srcs.insert(f.src);
  }
  EXPECT_EQ(dsts.size(), 3u);  // exactly k hotspots in play
  EXPECT_EQ(srcs.size(), 7u);  // sources distinct...
  for (const auto s : srcs) EXPECT_EQ(dsts.count(s), 0u);  // ...and disjoint
  // Round-robin assignment: flows i and i+k share a destination.
  for (std::size_t i = 0; i + 3 < flows.size(); ++i) {
    EXPECT_EQ(flows[i].dst, flows[i + 3].dst);
  }
}

TEST(FlowPatterns, RingIsOneCycle) {
  sim::RandomStream rng(11);
  traffic::TrafficConfig cfg;
  cfg.pattern = traffic::FlowPattern::kRing;
  const auto flows = traffic::make_flows(cfg, 6, 20, 10.0, rng);
  ASSERT_EQ(flows.size(), 6u);
  std::set<net::NodeId> srcs;
  std::set<net::NodeId> dsts;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_NE(flows[i].src, flows[i].dst);
    // Each terminal's destination is the next terminal's source.
    EXPECT_EQ(flows[i].dst, flows[(i + 1) % flows.size()].src);
    srcs.insert(flows[i].src);
    dsts.insert(flows[i].dst);
  }
  EXPECT_EQ(srcs, dsts);        // every terminal both sends and receives
  EXPECT_EQ(srcs.size(), 6u);   // once each: a single cycle
}

TEST(FlowPatterns, PopulationRequirementsThrow) {
  sim::RandomStream rng(1);
  traffic::TrafficConfig cfg;
  // random: 2*pairs must fit (the promoted Release-build assert).
  EXPECT_THROW((void)traffic::random_flows(26, 50, 10.0, rng),
               std::invalid_argument);
  EXPECT_THROW((void)traffic::make_flows(cfg, 26, 50, 10.0, rng),
               std::invalid_argument);
  // Zero pairs stays a valid control-overhead-only baseline, any pattern.
  EXPECT_TRUE(traffic::make_flows(cfg, 0, 50, 10.0, rng).empty());
  EXPECT_TRUE(traffic::random_flows(0, 50, 10.0, rng).empty());
  cfg.pattern = traffic::FlowPattern::kSink;  // pairs + 1 sink
  EXPECT_THROW((void)traffic::make_flows(cfg, 50, 50, 10.0, rng),
               std::invalid_argument);
  cfg.pattern = traffic::FlowPattern::kHotspot;  // pairs + k hotspots
  cfg.hotspots = 3;
  EXPECT_THROW((void)traffic::make_flows(cfg, 48, 50, 10.0, rng),
               std::invalid_argument);
  cfg.pattern = traffic::FlowPattern::kRing;  // a cycle needs >= 2, <= nodes
  EXPECT_THROW((void)traffic::make_flows(cfg, 1, 50, 10.0, rng),
               std::invalid_argument);
  EXPECT_THROW((void)traffic::make_flows(cfg, 51, 50, 10.0, rng),
               std::invalid_argument);
}

TEST(FlowPatterns, ErrorMessagesCarryTheArithmetic) {
  sim::RandomStream rng(1);
  try {
    (void)traffic::random_flows(26, 50, 10.0, rng);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("random"), std::string::npos) << msg;
    EXPECT_NE(msg.find("26"), std::string::npos) << msg;
    EXPECT_NE(msg.find("50"), std::string::npos) << msg;
  }
}

// ---------------------------------------------------------------------------
// Model behavior on a tiny static network
// ---------------------------------------------------------------------------

/// A 4-node static network where everyone hears everyone (100 m field,
/// 250 m radios), AODV everywhere — the rig the legacy Poisson tests use.
std::unique_ptr<net::Network> tiny_network(std::uint64_t seed) {
  net::NetworkConfig cfg;
  cfg.num_nodes = 4;
  cfg.mobility.field = mobility::Field{100.0, 100.0};
  cfg.mobility.max_speed_mps = 0.0;
  cfg.seed = seed;
  auto net = std::make_unique<net::Network>(cfg);
  for (net::NodeId id = 0; id < net->size(); ++id) {
    net->node(id).set_protocol(
        std::make_unique<routing::AodvProtocol>(net->node(id)));
  }
  net->start();
  return net;
}

TEST(CbrTrafficTest, ZeroJitterTicksAtExactlyTheRate) {
  auto net = tiny_network(7);
  std::vector<traffic::Flow> flows{{0, 0, 3, 10.0}};
  traffic::CbrTraffic gen(*net, flows, 512, sim::seconds(100),
                          net->rng().stream("traffic"), /*jitter=*/0.0);
  gen.start();
  net->simulator().run_until(sim::seconds(100));
  // One random phase offset in [0, 0.1), then a packet every 100 ms: 1000
  // arrivals land inside [phase, 100).
  EXPECT_NEAR(static_cast<double>(net->metrics().generated()), 1000.0, 1.0);
}

TEST(CbrTrafficTest, JitterPreservesTheMeanRate) {
  auto net = tiny_network(8);
  std::vector<traffic::Flow> flows{{0, 0, 3, 10.0}};
  traffic::CbrTraffic gen(*net, flows, 512, sim::seconds(100),
                          net->rng().stream("traffic"), /*jitter=*/0.5);
  gen.start();
  net->simulator().run_until(sim::seconds(100));
  // Gaps are U[0.05, 0.15] s (mean 0.1): ~1000 arrivals, sd ~ sqrt(n)*cv.
  EXPECT_NEAR(static_cast<double>(net->metrics().generated()), 1000.0, 60.0);
}

TEST(OnOffTrafficTest, BurstsPreserveTheOfferedLoad) {
  harness::ScenarioConfig cfg;
  cfg.protocol = harness::ProtocolKind::kAodv;
  cfg.mean_speed_kmh = 0.0;
  cfg.sim_s = 200.0;
  cfg.num_pairs = 4;
  cfg.seed = 5;
  cfg.traffic = "onoff:on=0.5,off=0.5";
  const auto r = harness::run_scenario(cfg);
  // 4 flows x 10 pkt/s x 200 s = 8000 expected; ON/OFF roughly doubles the
  // Poisson variance, so keep a wide 5-sigma-ish band.
  EXPECT_NEAR(static_cast<double>(r.generated), 8000.0, 700.0);
}

TEST(ParetoTrafficTest, HeavyTailsStillPreserveTheOfferedLoad) {
  harness::ScenarioConfig cfg;
  cfg.protocol = harness::ProtocolKind::kAodv;
  cfg.mean_speed_kmh = 0.0;
  cfg.sim_s = 200.0;
  cfg.num_pairs = 4;
  cfg.seed = 6;
  // shape 2.5 keeps the period variance finite so the sample mean settles
  // inside a testable band (shape 1.5 needs far longer runs).
  cfg.traffic = "pareto:on=0.5,off=0.5,shape=2.5";
  const auto r = harness::run_scenario(cfg);
  EXPECT_NEAR(static_cast<double>(r.generated), 8000.0, 1600.0);
}

TEST(ReqRespTrafficTest, ClosesTheLoopAndBothEndpointsOriginate) {
  auto net = tiny_network(9);
  std::vector<traffic::Flow> flows{{0, 0, 3, 10.0}};
  traffic::ReqRespTraffic gen(*net, flows, 512, sim::seconds(60),
                              net->rng().stream("traffic"),
                              /*think_mean_s=*/0.2, /*timeout_s=*/2.0,
                              /*request_bytes=*/64);
  gen.start();
  net->simulator().run_until(sim::seconds(60));
  const auto& m = net->metrics();
  const auto completed = m.counter("traffic_reqresp_completed");
  const auto timeouts = m.counter("traffic_reqresp_timeouts");
  EXPECT_GT(completed, 0u);
  // Closed loop: at most one request outstanding per flow, every request
  // either completes, times out, or is still in flight at the end — and
  // each cycle originates at most one request and one response.
  EXPECT_LE(m.generated(), 2 * (completed + timeouts) + 2);
  EXPECT_GT(m.delivered(), 0u);
}

TEST(ReqRespTrafficTest, LoadAdaptsToWhatTheNetworkDelivers) {
  // On a partitioned pair the open loop would keep pumping; the closed loop
  // sends one request per timeout window instead.
  net::NetworkConfig ncfg;
  ncfg.num_nodes = 2;
  ncfg.mobility.field = mobility::Field{2000.0, 2000.0};
  ncfg.mobility.max_speed_mps = 0.0;
  ncfg.channel.range_m = 1.0;  // nobody hears anybody
  ncfg.seed = 33;
  net::Network net(ncfg);
  for (net::NodeId id = 0; id < net.size(); ++id) {
    net.node(id).set_protocol(
        std::make_unique<routing::AodvProtocol>(net.node(id)));
  }
  net.start();
  std::vector<traffic::Flow> flows{{0, 0, 1, 10.0}};
  traffic::ReqRespTraffic gen(net, flows, 512, sim::seconds(50),
                              net.rng().stream("traffic"),
                              /*think_mean_s=*/0.1, /*timeout_s=*/1.0,
                              /*request_bytes=*/64);
  gen.start();
  net.simulator().run_until(sim::seconds(50));
  // ~1 request per (think + timeout) ~ 45 over 50 s — nowhere near the
  // 500 packets an open-loop 10 pkt/s flow would have pushed.
  EXPECT_LT(net.metrics().generated(), 100u);
  EXPECT_GT(net.metrics().counter("traffic_reqresp_timeouts"), 10u);
  EXPECT_EQ(net.metrics().delivered(), 0u);
}

// ---------------------------------------------------------------------------
// Per-flow conservation across every model x pattern cell
// ---------------------------------------------------------------------------

class Conservation
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(Conservation, PerFlowCountsBalanceAtStop) {
  const auto& [model, pattern] = GetParam();
  harness::ScenarioConfig cfg;
  cfg.protocol = harness::ProtocolKind::kRica;
  cfg.mean_speed_kmh = 36.0;
  cfg.sim_s = 6.0;
  cfg.num_nodes = 30;
  cfg.num_pairs = 4;
  cfg.seed = 0xC0DE;
  // A short think keeps every reqresp flow active inside the 6 s window.
  cfg.traffic = model == "reqresp"
                    ? "reqresp:think=0.2,pattern=" + pattern
                    : model + ":pattern=" + pattern;
  const auto r = harness::run_scenario(cfg);

  ASSERT_FALSE(r.flow_summaries.empty());
  std::uint64_t gen = 0;
  std::uint64_t del = 0;
  std::uint64_t drop = 0;
  for (const auto& fs : r.flow_summaries) {
    SCOPED_TRACE("flow " + std::to_string(fs.flow));
    // generated == delivered + dropped + in-flight, with in-flight >= 0:
    // whatever is neither delivered nor dropped is still buffered or
    // mid-transmission when the clock stops.
    EXPECT_GE(fs.generated, fs.delivered + fs.dropped);
    EXPECT_GT(fs.generated, 0u);
    gen += fs.generated;
    del += fs.delivered;
    drop += fs.dropped;
  }
  // The per-flow table partitions the aggregate counters exactly.
  EXPECT_EQ(gen, r.generated);
  EXPECT_EQ(del, r.delivered);
  std::uint64_t agg_drops = 0;
  for (const auto d : r.drops) agg_drops += d;
  EXPECT_EQ(drop, agg_drops);
  // Kernel observability sanity: every closure in the stack still fits the
  // 128 B inline buffer (the datum behind the sizing decision).
  EXPECT_EQ(r.heap_fallbacks, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsAllPatterns, Conservation,
    ::testing::Combine(::testing::ValuesIn(traffic::known_traffic_models()),
                       ::testing::ValuesIn(traffic::known_flow_patterns())),
    [](const ::testing::TestParamInfo<Conservation::ParamType>& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

// ---------------------------------------------------------------------------
// Poisson-on-random-pairs is bit-identical to the pre-subsystem default
// ---------------------------------------------------------------------------

TEST(TrafficDefault, PoissonSpecIsBitIdenticalToTheDefault) {
  harness::ScenarioConfig cfg;
  cfg.protocol = harness::ProtocolKind::kRica;
  cfg.mean_speed_kmh = 36.0;
  cfg.sim_s = 5.0;
  cfg.seed = 0x90140ULL;
  const auto base = harness::run_scenario(cfg);
  cfg.traffic = "poisson";
  const auto spelled = harness::run_scenario(cfg);
  cfg.traffic = "poisson:pattern=random";
  const auto patterned = harness::run_scenario(cfg);
  EXPECT_EQ(base.stream_hash, spelled.stream_hash);
  EXPECT_EQ(base.stream_hash, patterned.stream_hash);
  EXPECT_EQ(base.generated, patterned.generated);
  EXPECT_EQ(base.events_executed, patterned.events_executed);
}

TEST(TrafficDefault, TrialSeedsIgnoreTheDefaultSpecOnly) {
  harness::ScenarioConfig cfg;
  const auto base = harness::trial_seed(cfg, 0);
  cfg.traffic = "poisson";
  EXPECT_EQ(harness::trial_seed(cfg, 0), base);
  cfg.traffic = "poisson:pattern=random";
  EXPECT_EQ(harness::trial_seed(cfg, 0), base);
  // Departing from the default re-seeds the cell...
  cfg.traffic = "cbr";
  const auto cbr = harness::trial_seed(cfg, 0);
  EXPECT_NE(cbr, base);
  cfg.traffic = "poisson:pattern=sink";
  EXPECT_NE(harness::trial_seed(cfg, 0), base);
  // ...and distinct params give distinct seeds.
  cfg.traffic = "cbr:jitter=0.5";
  EXPECT_NE(harness::trial_seed(cfg, 0), cbr);
}

// ---------------------------------------------------------------------------
// Fairness and percentile metrics
// ---------------------------------------------------------------------------

TEST(FairnessMetrics, JainIndexBoundaryCases) {
  EXPECT_DOUBLE_EQ(stats::jain_index({}), 0.0);
  EXPECT_DOUBLE_EQ(stats::jain_index({5.0, 5.0, 5.0, 5.0}), 1.0);
  EXPECT_DOUBLE_EQ(stats::jain_index({1.0, 0.0, 0.0, 0.0}), 0.25);
  EXPECT_DOUBLE_EQ(stats::jain_index({0.0, 0.0}), 1.0);  // uniformly starved
  EXPECT_NEAR(stats::jain_index({4.0, 2.0}), 0.9, 1e-12);
}

TEST(FairnessMetrics, NearestRankPercentiles) {
  EXPECT_DOUBLE_EQ(stats::percentile({}, 50.0), 0.0);
  const std::vector<double> xs{5.0, 1.0, 4.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 95.0), 5.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::percentile({7.0}, 99.0), 7.0);
}

TEST(FairnessMetrics, SummaryCarriesPerFlowPercentilesAndFairness) {
  stats::MetricsCollector m;
  net::DataPacket p;
  p.size_bytes = 500;
  p.gen_time = sim::Time::zero();
  // Flow 0: delivered at 10, 20, 30 ms.  Flow 1: one delivery at 40 ms,
  // one drop.  Flow 2: generated only.
  for (int i = 0; i < 3; ++i) {
    p.flow = 0;
    m.on_generated(p);
  }
  p.flow = 1;
  m.on_generated(p);
  m.on_generated(p);
  p.flow = 2;
  m.on_generated(p);
  p.flow = 0;
  m.on_delivered(p, sim::milliseconds(10));
  m.on_delivered(p, sim::milliseconds(20));
  m.on_delivered(p, sim::milliseconds(30));
  p.flow = 1;
  m.on_delivered(p, sim::milliseconds(40));
  m.on_dropped(p, stats::DropReason::kExpired);

  const auto s = m.finalize(sim::seconds(10));
  // Delays live in log-bucketed histograms now; a percentile reports the
  // selected bucket's representative (upper edge, <= 1/32 above the value).
  const auto rep_ms = [](std::int64_t ms) {
    return static_cast<double>(obs::LogHistogram::representative(
               sim::milliseconds(ms).nanos())) /
           1e6;
  };
  ASSERT_EQ(s.flow_summaries.size(), 3u);
  EXPECT_EQ(s.flow_summaries[0].flow, 0u);
  EXPECT_EQ(s.flow_summaries[0].generated, 3u);
  EXPECT_EQ(s.flow_summaries[0].delivered, 3u);
  EXPECT_DOUBLE_EQ(s.flow_summaries[0].delay_p50_ms, rep_ms(20));
  EXPECT_DOUBLE_EQ(s.flow_summaries[0].delay_p99_ms, rep_ms(30));
  EXPECT_DOUBLE_EQ(s.flow_summaries[0].tput_kbps, 3 * 500 * 8.0 / 10.0 / 1e3);
  EXPECT_EQ(s.flow_summaries[1].dropped, 1u);
  EXPECT_EQ(s.flow_summaries[2].delivered, 0u);
  EXPECT_DOUBLE_EQ(s.flow_summaries[2].tput_kbps, 0.0);
  // Pooled percentiles span all four deliveries.
  EXPECT_DOUBLE_EQ(s.delay_p50_ms, rep_ms(20));
  EXPECT_DOUBLE_EQ(s.delay_p99_ms, rep_ms(40));
  // Jain over (1.2, 0.4, 0) kbps: (1.6)^2 / (3 * (1.44 + 0.16)).
  EXPECT_NEAR(s.jain_fairness, 1.6 * 1.6 / (3.0 * 1.6), 1e-12);
}

TEST(FairnessMetrics, EpochResetClearsPerFlowState) {
  stats::MetricsCollector m;
  net::DataPacket p;
  p.flow = 0;
  m.on_generated(p);
  m.on_delivered(p, sim::milliseconds(5));
  m.reset_epoch(sim::seconds(1));
  const auto s = m.finalize(sim::seconds(2));
  EXPECT_TRUE(s.flow_summaries.empty());
  EXPECT_DOUBLE_EQ(s.delay_p95_ms, 0.0);
  EXPECT_DOUBLE_EQ(s.jain_fairness, 0.0);
}

TEST(FairnessMetrics, SinkPatternIsLessFairThanRandomPairs) {
  // Convergecast funnels every flow into one receiver's neighborhood; the
  // shared bottleneck should show up as a lower Jain index than disjoint
  // random pairs under the same load.
  harness::ScenarioConfig cfg;
  cfg.protocol = harness::ProtocolKind::kRica;
  cfg.mean_speed_kmh = 36.0;
  cfg.sim_s = 20.0;
  cfg.pkts_per_s = 20.0;
  cfg.seed = 3;
  const auto random = harness::run_scenario(cfg);
  cfg.traffic = "poisson:pattern=sink";
  const auto sink = harness::run_scenario(cfg);
  EXPECT_GT(random.jain_fairness, 0.5);
  EXPECT_LT(sink.jain_fairness, random.jain_fairness + 0.05);
  EXPECT_GT(sink.generated, 0u);
}

// ---------------------------------------------------------------------------
// Sweep traffic axis
// ---------------------------------------------------------------------------

void expect_identical(const harness::ScenarioResult& a,
                      const harness::ScenarioResult& b) {
  EXPECT_EQ(a.stream_hash, b.stream_hash);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.avg_delay_ms, b.avg_delay_ms);
  EXPECT_EQ(a.overhead_kbps, b.overhead_kbps);
  EXPECT_EQ(a.delay_p95_ms, b.delay_p95_ms);
  EXPECT_EQ(a.jain_fairness, b.jain_fairness);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(TrafficSweep, TrafficAxisBitIdenticalToSerial) {
  harness::BenchScale serial{};
  serial.trials = 1;
  serial.sim_s = 2.0;
  serial.seed = 13;
  serial.threads = 1;
  serial.verbose = false;

  harness::BenchScale parallel = serial;
  parallel.threads = 4;

  const std::vector<double> speeds{36.0};
  const std::vector<double> loads{10.0};
  const std::vector<std::string> mobilities{"waypoint"};
  const std::vector<std::string> traffics{"poisson", "cbr",
                                          "onoff:on=0.5,off=0.5"};
  const auto grid_serial =
      harness::run_speed_sweep(speeds, loads, mobilities, traffics, serial);
  const auto grid_parallel =
      harness::run_speed_sweep(speeds, loads, mobilities, traffics, parallel);

  ASSERT_EQ(grid_serial.size(), grid_parallel.size());
  ASSERT_EQ(grid_serial.size(),
            traffics.size() * harness::kAllProtocols.size());
  for (std::size_t i = 0; i < grid_serial.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i) + " (" + grid_serial[i].traffic +
                 ")");
    EXPECT_EQ(grid_serial[i].protocol, grid_parallel[i].protocol);
    EXPECT_EQ(grid_serial[i].traffic, grid_parallel[i].traffic);
    expect_identical(grid_serial[i].result, grid_parallel[i].result);
  }
}

TEST(TrafficSweep, SingleAxisOverloadUsesTheScaleTrafficSpec) {
  harness::BenchScale scale{};
  scale.trials = 1;
  scale.sim_s = 2.0;
  scale.seed = 4;
  scale.threads = 1;
  scale.verbose = false;
  scale.traffic = "cbr";
  const auto grid = harness::run_speed_sweep({36.0}, {10.0}, scale);
  ASSERT_EQ(grid.size(), harness::kAllProtocols.size());
  for (const auto& cell : grid) {
    EXPECT_EQ(cell.traffic, "cbr");
    EXPECT_GT(cell.result.generated, 0u);
  }
}

TEST(TrafficSweep, UnknownTrafficThrowsBeforeRunning) {
  harness::BenchScale scale{};
  scale.trials = 1;
  scale.sim_s = 1.0;
  scale.seed = 1;
  scale.verbose = false;
  EXPECT_THROW(harness::run_speed_sweep({0.0}, {10.0}, {"waypoint"},
                                        {"warpdrive"}, scale),
               std::invalid_argument);
}

}  // namespace
}  // namespace rica
