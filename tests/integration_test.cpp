// Full-stack integration: the harness scenarios the paper's figures are
// built from, at reduced scale.  These check cross-module behaviour — that
// each protocol actually moves traffic through the mobile fading network —
// plus the comparative properties the paper's conclusions rest on.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"

namespace rica::harness {
namespace {

ScenarioConfig quick(ProtocolKind proto, double speed_kmh, double rate,
                     std::uint64_t seed = 1) {
  ScenarioConfig cfg;
  cfg.protocol = proto;
  cfg.mean_speed_kmh = speed_kmh;
  cfg.pkts_per_s = rate;
  cfg.sim_s = 30.0;
  cfg.seed = seed;
  return cfg;
}

TEST(ProtocolNames, RoundTrip) {
  for (const auto kind : kAllProtocols) {
    EXPECT_EQ(protocol_from_string(std::string(to_string(kind))), kind);
  }
  EXPECT_EQ(protocol_from_string("link-state"), ProtocolKind::kLinkState);
  EXPECT_EQ(protocol_from_string("ls"), ProtocolKind::kLinkState);
  EXPECT_THROW(protocol_from_string("ospf"), std::invalid_argument);
}

TEST(Integration, EveryProtocolDeliversUnderMobility) {
  for (const auto kind : kAllProtocols) {
    const auto r = run_scenario(quick(kind, 36.0, 10.0));
    EXPECT_GT(r.delivery_pct, 50.0) << to_string(kind);
    EXPECT_GT(r.avg_delay_ms, 0.0) << to_string(kind);
    EXPECT_GE(r.avg_hops, 1.0) << to_string(kind);
  }
}

TEST(Integration, StaticNetworkDeliversAlmostEverything) {
  // At zero mobility with connected pairs, the channel-adaptive protocols
  // and link state are near-lossless (paper Fig. 3 at speed 0).
  for (const auto kind : {ProtocolKind::kRica, ProtocolKind::kBgca,
                          ProtocolKind::kLinkState}) {
    const auto r = run_scenario(quick(kind, 0.0, 10.0));
    EXPECT_GT(r.delivery_pct, 95.0) << to_string(kind);
  }
}

TEST(Integration, LinkStateIsQuietWhenStatic) {
  // A frozen channel generates no LSUs after t=0: link-state overhead at
  // zero mobility must be far below its mobile overhead (paper Fig. 4).
  const auto still = run_scenario(quick(ProtocolKind::kLinkState, 0.0, 10.0));
  const auto moving =
      run_scenario(quick(ProtocolKind::kLinkState, 72.0, 10.0));
  EXPECT_LT(still.overhead_kbps * 5.0, moving.overhead_kbps);
}

TEST(Integration, LinkStateCollapsesUnderMobility) {
  const auto still = run_scenario(quick(ProtocolKind::kLinkState, 0.0, 10.0));
  const auto moving =
      run_scenario(quick(ProtocolKind::kLinkState, 72.0, 10.0));
  EXPECT_GT(still.delivery_pct, moving.delivery_pct + 10.0);
}

TEST(Integration, RicaBeatsAodvOnDelayAndQuality) {
  // The paper's headline: channel adaptivity shortens delay and picks
  // higher-throughput links.  Average over three seeds to kill noise.
  double rica_delay = 0;
  double aodv_delay = 0;
  double rica_tput = 0;
  double aodv_tput = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto cfg = quick(ProtocolKind::kRica, 54.0, 10.0, seed);
    cfg.sim_s = 60.0;  // long enough to get past the cold-start transient
    const auto r = run_scenario(cfg);
    cfg.protocol = ProtocolKind::kAodv;
    const auto a = run_scenario(cfg);
    rica_delay += r.avg_delay_ms;
    aodv_delay += a.avg_delay_ms;
    rica_tput += r.avg_link_tput_kbps;
    aodv_tput += a.avg_link_tput_kbps;
  }
  EXPECT_LT(rica_delay, aodv_delay);
  EXPECT_GT(rica_tput, aodv_tput);
}

TEST(Integration, ChannelAdaptiveProtocolsPickBetterLinks) {
  const auto rica = run_scenario(quick(ProtocolKind::kRica, 72.0, 10.0));
  const auto abr = run_scenario(quick(ProtocolKind::kAbr, 72.0, 10.0));
  EXPECT_GT(rica.avg_link_tput_kbps, abr.avg_link_tput_kbps);
}

TEST(Integration, RicaOverheadExceedsAodv) {
  // The price of the periodic CSI-checking floods (paper Fig. 4).
  const auto rica = run_scenario(quick(ProtocolKind::kRica, 36.0, 10.0));
  const auto aodv = run_scenario(quick(ProtocolKind::kAodv, 36.0, 10.0));
  EXPECT_GT(rica.overhead_kbps, aodv.overhead_kbps);
}

TEST(Integration, LinkStateOverheadDwarfsEverything) {
  const auto ls = run_scenario(quick(ProtocolKind::kLinkState, 36.0, 10.0));
  const auto rica = run_scenario(quick(ProtocolKind::kRica, 36.0, 10.0));
  EXPECT_GT(ls.overhead_kbps, 3.0 * rica.overhead_kbps);
}

TEST(Integration, DeterministicAcrossRuns) {
  const auto a = run_scenario(quick(ProtocolKind::kRica, 36.0, 10.0, 9));
  const auto b = run_scenario(quick(ProtocolKind::kRica, 36.0, 10.0, 9));
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_DOUBLE_EQ(a.avg_delay_ms, b.avg_delay_ms);
  EXPECT_DOUBLE_EQ(a.overhead_kbps, b.overhead_kbps);
}

TEST(Integration, ThroughputSeriesCoversRun) {
  const auto r = run_scenario(quick(ProtocolKind::kRica, 36.0, 20.0));
  // 30 s in 4 s buckets: at least 7 buckets with data.
  EXPECT_GE(r.tput_kbps_series.size(), 7u);
  double total = 0;
  for (const double kbps : r.tput_kbps_series) total += kbps;
  EXPECT_GT(total, 0.0);
}

TEST(Integration, AverageCombinesTrials) {
  ScenarioResult a;
  a.generated = 100;
  a.delivered = 90;
  a.delivery_pct = 90;
  a.avg_delay_ms = 100;
  a.tput_kbps_series = {10, 20};
  ScenarioResult b;
  b.generated = 100;
  b.delivered = 70;
  b.delivery_pct = 70;
  b.avg_delay_ms = 200;
  b.tput_kbps_series = {30};
  const auto avg = average({a, b});
  EXPECT_EQ(avg.generated, 200u);
  EXPECT_DOUBLE_EQ(avg.delivery_pct, 80.0);
  EXPECT_DOUBLE_EQ(avg.avg_delay_ms, 150.0);
  ASSERT_EQ(avg.tput_kbps_series.size(), 2u);
  EXPECT_DOUBLE_EQ(avg.tput_kbps_series[0], 20.0);
  EXPECT_DOUBLE_EQ(avg.tput_kbps_series[1], 10.0);
}

TEST(Integration, RunTrialsAveragesDistinctSeeds) {
  ScenarioConfig cfg = quick(ProtocolKind::kAodv, 36.0, 10.0);
  cfg.sim_s = 15.0;
  const auto avg = run_trials(cfg, 2);
  const auto one = run_scenario(cfg);
  // Two-trial aggregate counts roughly twice the packets of one run.
  EXPECT_GT(avg.generated, one.generated + one.generated / 2);
}

}  // namespace
}  // namespace rica::harness
