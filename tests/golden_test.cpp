// Golden fixed-seed regression suite: one small run per protocol (plus
// warmup, trace-replay, and traffic-model variants) whose ordered
// generated/delivered/dropped/control event stream is digested into an
// FNV-1a hash (stats::MetricsCollector::stream_hash) and asserted against
// captured reference hashes checked in at tests/data/golden_hashes.txt.
// With the legacy event-queue backend retired, the pinned capture is what
// keeps determinism anchored: a change to event ordering, RNG stream
// layout, packet bookkeeping, or metrics accounting moves the digest and
// fails the suite.
//
// Intentional behavior changes re-record the capture by running this binary
// once with RICA_GOLDEN_UPDATE=1 in the environment (it rewrites
// golden_hashes.txt in the source tree); review the diff like any other
// source change.  Every case also asserts run == rerun, so in-process
// determinism is checked even in update mode.
//
// The captured values depend on the standard library's distribution
// algorithms, so the capture is re-recorded per toolchain family if libc++
// and libstdc++ ever disagree; CI runs a single toolchain, which is the
// configuration the capture pins.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "harness/scenario.hpp"
#include "mobility/mobility_model.hpp"
#include "mobility/trace.hpp"
#include "obs/flight_recorder.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "stats/metrics.hpp"

namespace rica {
namespace {

// ---------------------------------------------------------------------------
// Captured-hash registry: loads tests/data/golden_hashes.txt, checks one
// digest per scenario key, and (in update mode) rewrites the capture.
// ---------------------------------------------------------------------------

class GoldenRegistry {
 public:
  static GoldenRegistry& instance() {
    static GoldenRegistry reg;
    return reg;
  }

  void check(const std::string& key, std::uint64_t hash) {
    if (update_mode_) {
      hashes_[key] = hash;
      flush();
      return;
    }
    const auto it = hashes_.find(key);
    if (it == hashes_.end()) {
      ADD_FAILURE() << "no captured golden hash for key '" << key
                    << "' in " << path()
                    << " — run this binary once with RICA_GOLDEN_UPDATE=1 "
                       "to record it";
      return;
    }
    EXPECT_EQ(hash, it->second)
        << "stream hash for '" << key << "' drifted from the capture in "
        << path()
        << " — if the behavior change is intentional, re-record with "
           "RICA_GOLDEN_UPDATE=1 and review the diff";
  }

 private:
  static std::string path() {
    return std::string(RICA_TEST_DATA_DIR) + "/golden_hashes.txt";
  }

  GoldenRegistry() {
    update_mode_ = std::getenv("RICA_GOLDEN_UPDATE") != nullptr;
    std::ifstream in(path());
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream fields(line);
      std::string key;
      std::string hex;
      if (fields >> key >> hex) {
        hashes_[key] = std::stoull(hex, nullptr, 16);
      }
    }
  }

  void flush() const {
    std::ofstream out(path(), std::ios::trunc);
    out << "# Captured golden stream hashes (FNV-1a over the ordered metrics"
           " event stream).\n"
        << "# Re-record: RICA_GOLDEN_UPDATE=1 ./golden_test\n";
    char buf[32];
    for (const auto& [key, hash] : hashes_) {
      std::snprintf(buf, sizeof(buf), "%016llx",
                    static_cast<unsigned long long>(hash));
      out << key << " " << buf << "\n";
    }
  }

  std::map<std::string, std::uint64_t> hashes_;  // sorted: stable file diffs
  bool update_mode_ = false;
};

harness::ScenarioConfig golden_config(harness::ProtocolKind protocol) {
  harness::ScenarioConfig cfg;
  cfg.protocol = protocol;
  cfg.mean_speed_kmh = 36.0;
  cfg.sim_s = 5.0;
  cfg.seed = 0x90140ULL;  // fixed golden seed
  return cfg;
}

void expect_identical(const harness::ScenarioResult& a,
                      const harness::ScenarioResult& b) {
  EXPECT_EQ(a.stream_hash, b.stream_hash);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.delivery_pct, b.delivery_pct);
  EXPECT_EQ(a.avg_delay_ms, b.avg_delay_ms);
  EXPECT_EQ(a.overhead_kbps, b.overhead_kbps);
  EXPECT_EQ(a.avg_link_tput_kbps, b.avg_link_tput_kbps);
  EXPECT_EQ(a.avg_hops, b.avg_hops);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.control_transmissions, b.control_transmissions);
  EXPECT_EQ(a.control_collisions, b.control_collisions);
  EXPECT_EQ(a.tput_kbps_series, b.tput_kbps_series);
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.measure_start, b.measure_start);
  EXPECT_EQ(a.delay_p50_ms, b.delay_p50_ms);
  EXPECT_EQ(a.delay_p95_ms, b.delay_p95_ms);
  EXPECT_EQ(a.delay_p99_ms, b.delay_p99_ms);
  EXPECT_EQ(a.jain_fairness, b.jain_fairness);
  // Kernel observability must replay bit-identically too: any drift here
  // means the engine or the pooled/flat memory layout behaved differently.
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.batched_fires, b.batched_fires);
  EXPECT_EQ(a.peak_pending_events, b.peak_pending_events);
  EXPECT_EQ(a.slab_high_water, b.slab_high_water);
  EXPECT_EQ(a.pool_high_water, b.pool_high_water);
  EXPECT_EQ(a.table_load, b.table_load);
  ASSERT_EQ(a.flow_summaries.size(), b.flow_summaries.size());
  for (std::size_t i = 0; i < a.flow_summaries.size(); ++i) {
    EXPECT_EQ(a.flow_summaries[i].flow, b.flow_summaries[i].flow);
    EXPECT_EQ(a.flow_summaries[i].generated, b.flow_summaries[i].generated);
    EXPECT_EQ(a.flow_summaries[i].delivered, b.flow_summaries[i].delivered);
    EXPECT_EQ(a.flow_summaries[i].dropped, b.flow_summaries[i].dropped);
    EXPECT_EQ(a.flow_summaries[i].tput_kbps, b.flow_summaries[i].tput_kbps);
    EXPECT_EQ(a.flow_summaries[i].delay_p95_ms,
              b.flow_summaries[i].delay_p95_ms);
  }
}

/// Runs the scenario twice (run == rerun determinism), checks the digest
/// against the capture, and logs it for CI diagnosability.
void run_and_check(const harness::ScenarioConfig& cfg, const std::string& key) {
  const auto first = harness::run_scenario(cfg);
  const auto second = harness::run_scenario(cfg);
  expect_identical(first, second);
  EXPECT_NE(first.stream_hash, stats::kFnvOffsetBasis);
  EXPECT_GT(first.generated, 0u);
  // Every closure the stack schedules must fit the engine's inline buffer;
  // an oversized one silently costs a heap cell per event, so pin it to
  // zero across the whole protocol x traffic matrix.
  EXPECT_EQ(first.heap_fallbacks, 0u)
      << "an event closure outgrew EventEngine::kInlineBytes";
  // A real scenario always has same-tick bursts and queued packets: the
  // batch path and the pools must actually be exercised, not just present.
  EXPECT_GT(first.batched_fires, 0u);
  EXPECT_GT(first.pool_high_water, 0u);
  EXPECT_GT(first.table_load, 0.0);
  GoldenRegistry::instance().check(key, first.stream_hash);
  std::printf("[golden] %-36s stream_hash=%016llx\n", key.c_str(),
              static_cast<unsigned long long>(first.stream_hash));
}

class GoldenRun : public ::testing::TestWithParam<harness::ProtocolKind> {};

TEST_P(GoldenRun, StreamHashMatchesCapture) {
  const auto cfg = golden_config(GetParam());
  run_and_check(cfg, "run:" + std::string(harness::to_string(GetParam())));
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, GoldenRun,
    ::testing::Values(harness::ProtocolKind::kRica,
                      harness::ProtocolKind::kBgca,
                      harness::ProtocolKind::kAbr,
                      harness::ProtocolKind::kAodv,
                      harness::ProtocolKind::kLinkState),
    [](const ::testing::TestParamInfo<harness::ProtocolKind>& info) {
      return std::string(harness::to_string(info.param));
    });

// ---------------------------------------------------------------------------
// Sharded-kernel parallel variants: the kernel commits in global (at, seq)
// order off one shared sequence counter, so the metrics stream — and its
// pinned hash — must be byte-identical for ANY shard/thread count.  Only
// the kernel's *internal* work accounting may differ: staging pre-sorts
// events into the flat batch (inflating batched_fires) and each shard owns
// its own slab (summed slab_high_water exceeds the serial single-slab
// peak), so those two fields are exempt; everything semantic is not.
// ---------------------------------------------------------------------------

void expect_parallel_identical(const harness::ScenarioResult& serial,
                               const harness::ScenarioResult& sharded) {
  EXPECT_EQ(serial.stream_hash, sharded.stream_hash);
  EXPECT_EQ(serial.generated, sharded.generated);
  EXPECT_EQ(serial.delivered, sharded.delivered);
  EXPECT_EQ(serial.delivery_pct, sharded.delivery_pct);
  EXPECT_EQ(serial.avg_delay_ms, sharded.avg_delay_ms);
  EXPECT_EQ(serial.overhead_kbps, sharded.overhead_kbps);
  EXPECT_EQ(serial.avg_link_tput_kbps, sharded.avg_link_tput_kbps);
  EXPECT_EQ(serial.avg_hops, sharded.avg_hops);
  EXPECT_EQ(serial.drops, sharded.drops);
  EXPECT_EQ(serial.control_transmissions, sharded.control_transmissions);
  EXPECT_EQ(serial.control_collisions, sharded.control_collisions);
  EXPECT_EQ(serial.tput_kbps_series, sharded.tput_kbps_series);
  EXPECT_EQ(serial.counters, sharded.counters);
  EXPECT_EQ(serial.delay_p50_ms, sharded.delay_p50_ms);
  EXPECT_EQ(serial.delay_p95_ms, sharded.delay_p95_ms);
  EXPECT_EQ(serial.delay_p99_ms, sharded.delay_p99_ms);
  EXPECT_EQ(serial.jain_fairness, sharded.jain_fairness);
  EXPECT_EQ(serial.events_executed, sharded.events_executed);
  EXPECT_EQ(serial.peak_pending_events, sharded.peak_pending_events);
  EXPECT_EQ(serial.heap_fallbacks, sharded.heap_fallbacks);
  EXPECT_EQ(serial.pool_high_water, sharded.pool_high_water);
  EXPECT_EQ(serial.table_load, sharded.table_load);
}

class GoldenParallel : public ::testing::TestWithParam<harness::ProtocolKind> {
};

TEST_P(GoldenParallel, ShardedKernelMatchesSerialAndCapture) {
  const auto cfg = golden_config(GetParam());
  const auto serial = harness::run_scenario(cfg);
  // The golden field (1 km at 250 m range) holds 4 grid columns, so 2 and
  // 4 shards are the legal parallel points; threads sweep past the shard
  // count to cover the worker-pool idle-slot path.
  for (const auto [shards, threads] :
       {std::pair<std::uint32_t, unsigned>{2, 1}, {2, 2}, {4, 8}}) {
    auto par = cfg;
    par.shards = shards;
    par.threads = threads;
    const auto result = harness::run_scenario(par);
    SCOPED_TRACE("shards=" + std::to_string(shards) +
                 " threads=" + std::to_string(threads));
    expect_parallel_identical(serial, result);
    // The parallel digest must also equal the *pinned* capture, not just
    // this binary's serial run — the same key the serial suite checks.
    GoldenRegistry::instance().check(
        "run:" + std::string(harness::to_string(GetParam())),
        result.stream_hash);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, GoldenParallel,
    ::testing::Values(harness::ProtocolKind::kRica,
                      harness::ProtocolKind::kBgca,
                      harness::ProtocolKind::kAbr,
                      harness::ProtocolKind::kAodv,
                      harness::ProtocolKind::kLinkState),
    [](const ::testing::TestParamInfo<harness::ProtocolKind>& info) {
      return std::string(harness::to_string(info.param));
    });

TEST(GoldenWarmup, WarmupWindowMatchesCapture) {
  // The epoch-reset event must not disturb determinism: the warmed-up
  // digest covers only the post-transient stream and is pinned like the
  // full-run digests.
  auto cfg = golden_config(harness::ProtocolKind::kRica);
  cfg.warmup_s = 2.0;
  const auto result = harness::run_scenario(cfg);
  EXPECT_EQ(result.measure_start, sim::seconds(2));
  run_and_check(cfg, "warmup:rica");
}

// Traffic variants join the determinism envelope: every workload model
// (and the non-default flow patterns) is pinned — including reqresp, whose
// closed-loop feedback schedules events from inside delivery callbacks.
class GoldenTraffic : public ::testing::TestWithParam<const char*> {};

std::string sanitize(const char* spec) {
  std::string name(spec);
  for (auto& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

TEST_P(GoldenTraffic, StreamHashMatchesCapture) {
  auto cfg = golden_config(harness::ProtocolKind::kRica);
  cfg.traffic = GetParam();
  run_and_check(cfg, "traffic:" + sanitize(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    AllTrafficModels, GoldenTraffic,
    ::testing::Values("cbr:jitter=0.2", "onoff:on=0.5,off=0.5",
                      "pareto:on=0.5,off=0.5,shape=1.5",
                      "reqresp:think=0.3,timeout=1",
                      "poisson:pattern=sink",
                      "cbr:pattern=hotspot,hotspots=2",
                      "poisson:pattern=ring"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return sanitize(info.param);
    });

TEST(GoldenInstrumented, FullObservabilityMatchesCapture) {
  // The observability stack — span derivation, the always-on flight
  // recorder, and the anomaly watchdogs — must leave the pinned stream
  // untouched: none of its hooks may fold, reorder, or suppress a metrics
  // event.  The instrumented digest is checked against the SAME key the
  // bare suite pins, so this test fails the moment instrumentation would
  // silently re-record the capture.
  auto cfg = golden_config(harness::ProtocolKind::kRica);
  cfg.trace_filter = "all";  // spans included
  cfg.flight_recorder = obs::FlightRecorder::kDefaultCapacity;
  cfg.flight_dump =
      (std::filesystem::temp_directory_path() / "rica_golden_flight.jsonl")
          .string();
  cfg.watchdogs = true;
  const auto result = harness::run_scenario(cfg);
  GoldenRegistry::instance().check("run:RICA", result.stream_hash);
  // The instrumentation itself must have produced its artifact.
  std::error_code ec;
  EXPECT_GT(std::filesystem::file_size(cfg.flight_dump, ec), 0u);
  std::remove(cfg.flight_dump.c_str());
}

TEST(GoldenTrace, TraceMobilityMatchesCapture) {
  // Replayed mobility joins the determinism envelope: record this golden
  // scenario's own motion, replay it, and pin the digest.
  auto cfg = golden_config(harness::ProtocolKind::kRica);
  cfg.sim_s = 4.0;

  const auto mob = harness::scenario_mobility_config(cfg);
  const sim::RngManager rng(cfg.seed);
  const auto model = mobility::make_mobility_model(cfg.num_nodes, mob, rng);
  const auto path =
      (std::filesystem::temp_directory_path() / "rica_golden_trace.trace")
          .string();
  mobility::write_bonnmotion_trace(*model, sim::seconds_f(cfg.sim_s),
                                   sim::milliseconds(500), path);

  cfg.mobility = "trace:file=" + path;
  run_and_check(cfg, "trace:rica");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rica
