// Golden fixed-seed regression suite: one small run per protocol whose
// ordered generated/delivered/dropped/control event stream is digested into
// an FNV-1a hash (stats::MetricsCollector::stream_hash) and asserted equal
// across both event-queue backends — the soak evidence ROADMAP wants before
// retiring the legacy heap, and a tripwire for any future determinism
// drift: a change to event ordering, RNG stream layout, packet bookkeeping,
// or metrics accounting moves the digest.
//
// The digest is asserted *relative* (wheel == legacy heap, run == rerun),
// not against pinned constants: absolute values depend on the standard
// library's distribution algorithms, so pinning them would couple the suite
// to one toolchain instead of to the simulator's own determinism.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>

#include "harness/scenario.hpp"
#include "mobility/mobility_model.hpp"
#include "mobility/trace.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "stats/metrics.hpp"

namespace rica {
namespace {

harness::ScenarioConfig golden_config(harness::ProtocolKind protocol) {
  harness::ScenarioConfig cfg;
  cfg.protocol = protocol;
  cfg.mean_speed_kmh = 36.0;
  cfg.sim_s = 5.0;
  cfg.seed = 0x90140ULL;  // fixed golden seed
  return cfg;
}

void expect_identical(const harness::ScenarioResult& a,
                      const harness::ScenarioResult& b) {
  EXPECT_EQ(a.stream_hash, b.stream_hash);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.delivery_pct, b.delivery_pct);
  EXPECT_EQ(a.avg_delay_ms, b.avg_delay_ms);
  EXPECT_EQ(a.overhead_kbps, b.overhead_kbps);
  EXPECT_EQ(a.avg_link_tput_kbps, b.avg_link_tput_kbps);
  EXPECT_EQ(a.avg_hops, b.avg_hops);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.control_transmissions, b.control_transmissions);
  EXPECT_EQ(a.control_collisions, b.control_collisions);
  EXPECT_EQ(a.tput_kbps_series, b.tput_kbps_series);
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.measure_start, b.measure_start);
  EXPECT_EQ(a.delay_p50_ms, b.delay_p50_ms);
  EXPECT_EQ(a.delay_p95_ms, b.delay_p95_ms);
  EXPECT_EQ(a.delay_p99_ms, b.delay_p99_ms);
  EXPECT_EQ(a.jain_fairness, b.jain_fairness);
  ASSERT_EQ(a.flow_summaries.size(), b.flow_summaries.size());
  for (std::size_t i = 0; i < a.flow_summaries.size(); ++i) {
    EXPECT_EQ(a.flow_summaries[i].flow, b.flow_summaries[i].flow);
    EXPECT_EQ(a.flow_summaries[i].generated, b.flow_summaries[i].generated);
    EXPECT_EQ(a.flow_summaries[i].delivered, b.flow_summaries[i].delivered);
    EXPECT_EQ(a.flow_summaries[i].dropped, b.flow_summaries[i].dropped);
    EXPECT_EQ(a.flow_summaries[i].tput_kbps, b.flow_summaries[i].tput_kbps);
    EXPECT_EQ(a.flow_summaries[i].delay_p95_ms,
              b.flow_summaries[i].delay_p95_ms);
  }
}

class GoldenRun : public ::testing::TestWithParam<harness::ProtocolKind> {};

TEST_P(GoldenRun, StreamHashAgreesAcrossEventBackends) {
  auto cfg = golden_config(GetParam());
  cfg.event_backend = sim::EngineBackend::kWheel;
  const auto wheel = harness::run_scenario(cfg);
  cfg.event_backend = sim::EngineBackend::kLegacyHeap;
  const auto legacy = harness::run_scenario(cfg);

  // A run must produce a non-trivial stream (otherwise the digest guards
  // nothing), and both backends must digest identically.
  EXPECT_NE(wheel.stream_hash, stats::kFnvOffsetBasis);
  EXPECT_GT(wheel.generated, 0u);
  expect_identical(wheel, legacy);

  // Surface the digest in the test log so drift is diagnosable from CI.
  std::printf("[golden] %-9s stream_hash=%016llx\n",
              std::string(harness::to_string(GetParam())).c_str(),
              static_cast<unsigned long long>(wheel.stream_hash));
}

TEST_P(GoldenRun, StreamHashIsStableAcrossReruns) {
  const auto cfg = golden_config(GetParam());
  const auto first = harness::run_scenario(cfg);
  const auto second = harness::run_scenario(cfg);
  expect_identical(first, second);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, GoldenRun,
    ::testing::Values(harness::ProtocolKind::kRica,
                      harness::ProtocolKind::kBgca,
                      harness::ProtocolKind::kAbr,
                      harness::ProtocolKind::kAodv,
                      harness::ProtocolKind::kLinkState),
    [](const ::testing::TestParamInfo<harness::ProtocolKind>& info) {
      return std::string(harness::to_string(info.param));
    });

TEST(GoldenWarmup, WarmupWindowAgreesAcrossEventBackends) {
  // The epoch-reset event must not disturb cross-backend determinism: the
  // warmed-up digest (which covers only the post-transient stream) agrees
  // between the wheel and the legacy heap.
  auto cfg = golden_config(harness::ProtocolKind::kRica);
  cfg.warmup_s = 2.0;
  cfg.event_backend = sim::EngineBackend::kWheel;
  const auto wheel = harness::run_scenario(cfg);
  cfg.event_backend = sim::EngineBackend::kLegacyHeap;
  const auto legacy = harness::run_scenario(cfg);
  EXPECT_EQ(wheel.measure_start, sim::seconds(2));
  expect_identical(wheel, legacy);
}

// Traffic variants join the determinism envelope: every workload model
// (and the non-default flow patterns) must digest identically across both
// event-queue backends — including reqresp, whose closed-loop feedback
// schedules events from inside delivery callbacks.
class GoldenTraffic : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenTraffic, StreamHashAgreesAcrossEventBackends) {
  auto cfg = golden_config(harness::ProtocolKind::kRica);
  cfg.traffic = GetParam();
  cfg.event_backend = sim::EngineBackend::kWheel;
  const auto wheel = harness::run_scenario(cfg);
  cfg.event_backend = sim::EngineBackend::kLegacyHeap;
  const auto legacy = harness::run_scenario(cfg);
  EXPECT_NE(wheel.stream_hash, stats::kFnvOffsetBasis);
  EXPECT_GT(wheel.generated, 0u);
  expect_identical(wheel, legacy);
  std::printf("[golden] traffic=%-28s stream_hash=%016llx\n", GetParam(),
              static_cast<unsigned long long>(wheel.stream_hash));
}

INSTANTIATE_TEST_SUITE_P(
    AllTrafficModels, GoldenTraffic,
    ::testing::Values("cbr:jitter=0.2", "onoff:on=0.5,off=0.5",
                      "pareto:on=0.5,off=0.5,shape=1.5",
                      "reqresp:think=0.3,timeout=1",
                      "poisson:pattern=sink",
                      "cbr:pattern=hotspot,hotspots=2",
                      "poisson:pattern=ring"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name(info.param);
      for (auto& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(GoldenTrace, TraceMobilityAgreesAcrossEventBackends) {
  // Replayed mobility joins the determinism envelope: record this golden
  // scenario's own motion, rerun both backends on the trace, compare.
  auto cfg = golden_config(harness::ProtocolKind::kRica);
  cfg.sim_s = 4.0;

  const auto mob = harness::scenario_mobility_config(cfg);
  const sim::RngManager rng(cfg.seed);
  const auto model = mobility::make_mobility_model(cfg.num_nodes, mob, rng);
  const auto path =
      (std::filesystem::temp_directory_path() / "rica_golden_trace.trace")
          .string();
  mobility::write_bonnmotion_trace(*model, sim::seconds_f(cfg.sim_s),
                                   sim::milliseconds(500), path);

  cfg.mobility = "trace:file=" + path;
  cfg.event_backend = sim::EngineBackend::kWheel;
  const auto wheel = harness::run_scenario(cfg);
  cfg.event_backend = sim::EngineBackend::kLegacyHeap;
  const auto legacy = harness::run_scenario(cfg);
  EXPECT_GT(wheel.generated, 0u);
  expect_identical(wheel, legacy);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rica
