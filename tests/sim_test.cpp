// Unit tests for the discrete-event kernel: time arithmetic, event ordering,
// FIFO tie-breaking, cancellation, RAII timers, and RNG stream independence.
// EventEngine-specific cases live in event_engine_test.cpp.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "sim/timer.hpp"

namespace rica::sim {
namespace {

TEST(Time, ConversionsRoundTrip) {
  EXPECT_EQ(seconds(3).nanos(), 3'000'000'000);
  EXPECT_EQ(milliseconds(40).nanos(), 40'000'000);
  EXPECT_EQ(microseconds(7).nanos(), 7'000);
  EXPECT_DOUBLE_EQ(seconds(2).seconds(), 2.0);
  EXPECT_DOUBLE_EQ(milliseconds(1500).seconds(), 1.5);
  EXPECT_DOUBLE_EQ(seconds(1).millis(), 1000.0);
}

TEST(Time, FractionalSecondsRoundsToNanos) {
  EXPECT_EQ(seconds_f(0.5).nanos(), 500'000'000);
  EXPECT_EQ(seconds_f(1e-9).nanos(), 1);
  EXPECT_EQ(seconds_f(0.0).nanos(), 0);
}

TEST(Time, ArithmeticAndComparison) {
  const Time a = seconds(1);
  const Time b = milliseconds(500);
  EXPECT_EQ((a + b).nanos(), 1'500'000'000);
  EXPECT_EQ((a - b).nanos(), 500'000'000);
  EXPECT_LT(b, a);
  EXPECT_EQ(a * 3, seconds(3));
  Time c = a;
  c += b;
  EXPECT_EQ(c, a + b);
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  std::vector<std::int64_t> at_times;
  sim.after(milliseconds(10), [&] { at_times.push_back(sim.now().nanos()); });
  sim.after(milliseconds(5), [&] { at_times.push_back(sim.now().nanos()); });
  sim.run_until(seconds(1));
  ASSERT_EQ(at_times.size(), 2u);
  EXPECT_EQ(at_times[0], milliseconds(5).nanos());
  EXPECT_EQ(at_times[1], milliseconds(10).nanos());
  EXPECT_EQ(sim.now(), seconds(1));
}

TEST(Simulator, RunUntilDoesNotExecuteLaterEvents) {
  Simulator sim;
  bool late = false;
  sim.after(seconds(2), [&] { late = true; });
  sim.run_until(seconds(1));
  EXPECT_FALSE(late);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(seconds(3));
  EXPECT_TRUE(late);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int chain = 0;
  sim.after(milliseconds(1), [&] {
    ++chain;
    sim.after(milliseconds(1), [&] {
      ++chain;
      sim.after(milliseconds(1), [&] { ++chain; });
    });
  });
  sim.run_until(seconds(1));
  EXPECT_EQ(chain, 3);
}

TEST(Simulator, CancelledTimerDoesNotFire) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.after(milliseconds(5), [&] { fired = true; });
  sim.after(milliseconds(1), [&] { sim.cancel(id); });
  sim.run_until(seconds(1));
  EXPECT_FALSE(fired);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.after(milliseconds(i), [] {});
  sim.run_until(seconds(1));
  EXPECT_EQ(sim.events_executed(), 7u);
  EXPECT_EQ(sim.peak_pending_events(), 7u);
  EXPECT_GE(sim.slab_high_water(), 7u);
}

TEST(Simulator, ScheduleAfterShortRunUntilStaysExact) {
  // run_until() peeks next_time(), which may harvest wheel buckets far past
  // the run horizon.  Scheduling between the horizon and that harvested
  // tick must still be legal and fire in exact time order (regression:
  // this used to trip the engine's internal monotonicity assert).
  Simulator sim;
  std::vector<int> order;
  sim.after(seconds(1), [&] { order.push_back(2); });
  sim.run_until(milliseconds(1));  // peeks the 1 s event, fires nothing
  EXPECT_TRUE(order.empty());
  sim.after(milliseconds(1), [&] { order.push_back(1); });
  sim.run_until(seconds(2));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, CancelAndPendingRoundTrip) {
  Simulator sim;
  std::vector<int> order;
  sim.after(milliseconds(10), [&] { order.push_back(2); });
  sim.after(milliseconds(5), [&] { order.push_back(1); });
  const EventId id = sim.after(milliseconds(7), [&] { order.push_back(9); });
  EXPECT_TRUE(sim.pending(id));
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.pending(id));
  sim.run_until(seconds(1));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(Timer, FiresWhenArmed) {
  Simulator sim;
  Timer timer;
  int fired = 0;
  timer.arm_after(sim, milliseconds(5), [&] { ++fired; });
  EXPECT_TRUE(timer.armed());
  sim.run_until(seconds(1));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.armed());
}

TEST(Timer, RearmReplacesThePendingEvent) {
  Simulator sim;
  Timer timer;
  std::vector<int> order;
  timer.arm_after(sim, milliseconds(5), [&] { order.push_back(1); });
  timer.arm_after(sim, milliseconds(9), [&] { order.push_back(2); });
  sim.run_until(seconds(1));
  EXPECT_EQ(order, (std::vector<int>{2}));  // the first arm was cancelled
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(Timer, CancelAndDestructionStopTheEvent) {
  Simulator sim;
  int fired = 0;
  Timer cancelled;
  cancelled.arm_after(sim, milliseconds(5), [&] { ++fired; });
  EXPECT_TRUE(cancelled.cancel());
  EXPECT_FALSE(cancelled.cancel());  // second cancel is a no-op
  {
    Timer scoped;
    scoped.arm_after(sim, milliseconds(6), [&] { ++fired; });
  }  // RAII: going out of scope cancels the pending event
  sim.run_until(seconds(1));
  EXPECT_EQ(fired, 0);
}

TEST(Timer, PeriodicRearmFromOwnCallback) {
  Simulator sim;
  Timer timer;
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks < 4) timer.arm_after(sim, milliseconds(10), tick);
  };
  timer.arm_after(sim, milliseconds(10), tick);
  sim.run_until(seconds(1));
  EXPECT_EQ(ticks, 4);
  EXPECT_FALSE(timer.armed());
}

TEST(Timer, MoveTransfersOwnership) {
  Simulator sim;
  int fired = 0;
  Timer a;
  a.arm_after(sim, milliseconds(5), [&] { ++fired; });
  Timer b = std::move(a);
  EXPECT_FALSE(a.armed());  // NOLINT(bugprone-use-after-move): post-move state
  EXPECT_TRUE(b.armed());
  a = std::move(b);  // moving back; destroying b must not cancel
  sim.run_until(seconds(1));
  EXPECT_EQ(fired, 1);
}

TEST(Random, UniformWithinBounds) {
  RandomStream rng(42);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Random, UniformIntCoversRangeInclusive) {
  RandomStream rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Random, ExponentialHasRequestedMean) {
  RandomStream rng(11);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(0.1);
  EXPECT_NEAR(sum / kN, 0.1, 0.005);
}

TEST(Random, StreamsAreDeterministicPerSeed) {
  RngManager a(123);
  RngManager b(123);
  auto s1 = a.stream("traffic", 4);
  auto s2 = b.stream("traffic", 4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(s1.uniform(), s2.uniform());
  }
}

TEST(Random, NamedStreamsAreIndependent) {
  RngManager mgr(99);
  auto s1 = mgr.stream("mobility", 0);
  auto s2 = mgr.stream("mobility", 1);
  auto s3 = mgr.stream("channel", 0);
  // Different streams must not produce identical sequences.
  int same12 = 0;
  int same13 = 0;
  for (int i = 0; i < 50; ++i) {
    const double a = s1.uniform();
    const double b = s2.uniform();
    const double c = s3.uniform();
    same12 += a == b;
    same13 += a == c;
  }
  EXPECT_LT(same12, 5);
  EXPECT_LT(same13, 5);
}

TEST(Random, SplitMixAvalanche) {
  // Single-bit input changes must flip roughly half the output bits.
  const std::uint64_t h1 = splitmix64(0x1234);
  const std::uint64_t h2 = splitmix64(0x1235);
  const int flipped = __builtin_popcountll(h1 ^ h2);
  EXPECT_GT(flipped, 16);
  EXPECT_LT(flipped, 48);
}

}  // namespace
}  // namespace rica::sim
