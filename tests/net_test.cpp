// net layer: packet formats and wire sizes, flow keys, Node <-> MAC glue,
// and full Network assembly.
#include <gtest/gtest.h>

#include "core/rica.hpp"
#include "net/network.hpp"
#include "net/packet.hpp"
#include "net/wire.hpp"
#include "routing/aodv/aodv.hpp"

namespace rica::net {
namespace {

TEST(FlowKey, RoundTrips) {
  const FlowKey k = flow_key(17, 42);
  EXPECT_EQ(flow_src(k), 17u);
  EXPECT_EQ(flow_dst(k), 42u);
  EXPECT_NE(flow_key(17, 42), flow_key(42, 17));
}

TEST(ControlSizes, AllTypesHavePositiveSize) {
  EXPECT_GT(wire::encoded_control_size(RreqMsg{}), 0);
  EXPECT_GT(wire::encoded_control_size(RrepMsg{}), 0);
  EXPECT_GT(wire::encoded_control_size(CsiCheckMsg{}), 0);
  EXPECT_GT(wire::encoded_control_size(RupdMsg{}), 0);
  EXPECT_GT(wire::encoded_control_size(ReerMsg{}), 0);
  EXPECT_GT(wire::encoded_control_size(AbrBeaconMsg{}), 0);
  EXPECT_GT(wire::encoded_control_size(AodvRreqMsg{}), 0);
}

TEST(ControlSizes, BeaconIsSmallest) {
  // Beacons dominate ABR's idle overhead; they must be the cheapest packet
  // (they are also the sharded kernel's lookahead floor, wire.hpp).
  const auto beacon = wire::encoded_control_size(AbrBeaconMsg{});
  EXPECT_EQ(beacon, wire::kMinControlBytes);
  EXPECT_LT(beacon, wire::encoded_control_size(RreqMsg{}));
  EXPECT_LT(beacon, wire::encoded_control_size(LsuMsg{}));
}

TEST(ControlSizes, LsuGrowsWithAdjacency) {
  LsuMsg small;
  small.links = {{1, channel::CsiClass::A}};
  LsuMsg big;
  for (NodeId i = 0; i < 10; ++i) big.links.emplace_back(i, channel::CsiClass::B);
  EXPECT_LT(wire::encoded_control_size(small),
            wire::encoded_control_size(big));
}

TEST(ControlSizes, DenseLsuStaysExactWithinTheWireField) {
  // A 500-terminal row (the large-scale preset's worst case, far past the
  // old uint16 truncation hazard's comfort zone) must size exactly, not
  // wrap: 5 frame header + 10 fixed body + 5 * 500 = 2515 — and it must be
  // the encoder's real output, byte for byte.
  LsuMsg dense;
  for (NodeId i = 0; i < 500; ++i) {
    dense.links.emplace_back(i, channel::CsiClass::D);
  }
  EXPECT_EQ(wire::encoded_control_size(dense), 2515);
  std::vector<std::uint8_t> buf;
  EXPECT_EQ(wire::encode_control(make_control(kBroadcastId, dense), buf),
            2515u);
}

TEST(ControlSizes, OverflowingLsuThrowsInsteadOfClamping) {
  // 13 105+ links push the frame past the u16 wire-size field.  The old
  // Sizer clamped to 0xFFFF behind a Release-vanishing assert (silently
  // under-charging airtime); now it is a hard error in every build mode.
  LsuMsg huge;
  for (NodeId i = 0; i < 13200; ++i) {
    huge.links.emplace_back(i, channel::CsiClass::A);
  }
  EXPECT_THROW(wire::encoded_control_size(ControlPayload{huge}),
               wire::WireError);
  EXPECT_THROW(make_control(kBroadcastId, huge), wire::WireError);
}

TEST(MakeControl, FillsSizeAndTarget) {
  const auto pkt = make_control(7, ReerMsg{1, 2, 3});
  EXPECT_EQ(pkt.to, 7u);
  EXPECT_EQ(pkt.size_bytes, wire::encoded_control_size(ReerMsg{}));
  EXPECT_TRUE(std::holds_alternative<ReerMsg>(pkt.payload));
}

NetworkConfig small_config(std::uint64_t seed = 5) {
  NetworkConfig cfg;
  cfg.num_nodes = 10;
  cfg.mobility.field = mobility::Field{300.0, 300.0};  // dense: all connected
  cfg.mobility.max_speed_mps = 0.0;
  cfg.seed = seed;
  return cfg;
}

TEST(NetworkTest, BuildsAndStarts) {
  Network net(small_config());
  for (NodeId id = 0; id < net.size(); ++id) {
    net.node(id).set_protocol(
        std::make_unique<routing::AodvProtocol>(net.node(id)));
  }
  net.start();
  EXPECT_EQ(net.size(), 10u);
  net.simulator().run_until(sim::seconds(1));
}

TEST(NetworkTest, OriginateCountsGenerated) {
  Network net(small_config());
  for (NodeId id = 0; id < net.size(); ++id) {
    net.node(id).set_protocol(
        std::make_unique<routing::AodvProtocol>(net.node(id)));
  }
  net.start();
  DataPacket pkt;
  pkt.src = 0;
  pkt.dst = 5;
  net.node(0).originate(pkt);
  EXPECT_EQ(net.metrics().generated(), 1u);
}

TEST(NetworkTest, EndToEndDeliveryOverAodv) {
  Network net(small_config());
  for (NodeId id = 0; id < net.size(); ++id) {
    net.node(id).set_protocol(
        std::make_unique<routing::AodvProtocol>(net.node(id)));
  }
  net.start();
  for (std::uint32_t i = 0; i < 20; ++i) {
    net.simulator().after(sim::milliseconds(100 * i), [&net, i] {
      DataPacket pkt;
      pkt.src = 0;
      pkt.dst = 5;
      pkt.seq = i;
      pkt.gen_time = net.simulator().now();
      net.node(0).originate(pkt);
    });
  }
  net.simulator().run_until(sim::seconds(10));
  EXPECT_GT(net.metrics().delivered(), 15u);
}

TEST(NetworkTest, EndToEndDeliveryOverRica) {
  Network net(small_config());
  for (NodeId id = 0; id < net.size(); ++id) {
    net.node(id).set_protocol(
        std::make_unique<core::RicaProtocol>(net.node(id)));
  }
  net.start();
  for (std::uint32_t i = 0; i < 20; ++i) {
    net.simulator().after(sim::milliseconds(100 * i), [&net, i] {
      DataPacket pkt;
      pkt.src = 0;
      pkt.dst = 5;
      pkt.seq = i;
      pkt.gen_time = net.simulator().now();
      net.node(0).originate(pkt);
    });
  }
  net.simulator().run_until(sim::seconds(10));
  EXPECT_GT(net.metrics().delivered(), 15u);
}

TEST(NetworkTest, DeliveredPacketsCarryHopMetadata) {
  Network net(small_config());
  for (NodeId id = 0; id < net.size(); ++id) {
    net.node(id).set_protocol(
        std::make_unique<routing::AodvProtocol>(net.node(id)));
  }
  net.start();
  DataPacket pkt;
  pkt.src = 0;
  pkt.dst = 5;
  net.node(0).originate(pkt);
  net.simulator().run_until(sim::seconds(5));
  const auto s = net.metrics().finalize(sim::seconds(5));
  if (s.delivered > 0) {
    EXPECT_GE(s.avg_hops, 1.0);
    EXPECT_GE(s.avg_link_tput_kbps, 50.0);   // class D floor
    EXPECT_LE(s.avg_link_tput_kbps, 250.0);  // class A ceiling
  }
}

TEST(NetworkTest, IdenticalSeedsGiveIdenticalRuns) {
  auto run = [](std::uint64_t seed) {
    Network net(small_config(seed));
    for (NodeId id = 0; id < net.size(); ++id) {
      net.node(id).set_protocol(
          std::make_unique<core::RicaProtocol>(net.node(id)));
    }
    net.start();
    for (std::uint32_t i = 0; i < 30; ++i) {
      net.simulator().after(sim::milliseconds(50 * i), [&net, i] {
        DataPacket pkt;
        pkt.src = 1;
        pkt.dst = 8;
        pkt.seq = i;
        pkt.gen_time = net.simulator().now();
        net.node(1).originate(pkt);
      });
    }
    net.simulator().run_until(sim::seconds(5));
    const auto s = net.metrics().finalize(sim::seconds(5));
    return std::make_tuple(s.delivered, s.avg_delay_ms, s.overhead_kbps,
                           s.avg_hops);
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(std::get<1>(run(11)), std::get<1>(run(12)));
}

}  // namespace
}  // namespace rica::net
