// MAC layer: common-channel CSMA/CA (airtime, broadcast delivery, carrier
// sense, hidden-terminal collisions, queue bound, unicast retransmission)
// and the per-link CDMA data transmitter (rate by class, ACK accounting,
// buffer bound, residency expiry, retry-then-break).
#include <gtest/gtest.h>

#include <cmath>

#include "mac/common_channel.hpp"
#include "mac/link_transmitter.hpp"
#include "mobility/mobility_model.hpp"
#include "net/packet.hpp"

namespace rica::mac {
namespace {

/// A fixed 5-node world: we pin positions by using a tiny field so nodes are
/// co-located (all in range), or a huge field so they are scattered.
struct World {
  explicit World(double field_side, std::size_t n = 5, std::uint64_t seed = 3)
      : rng(seed),
        mobility(n, waypoint(field_side), rng),
        channel(channel::ChannelConfig{}, mobility, rng) {}

  static mobility::MobilityConfig waypoint(double side) {
    mobility::MobilityConfig cfg;
    cfg.field = mobility::Field{side, side};
    cfg.max_speed_mps = 0.0;  // static
    return cfg;
  }

  sim::RngManager rng;
  mobility::MobilityManager mobility;
  channel::ChannelModel channel;
  sim::Simulator sim;
  stats::MetricsCollector metrics;
};

net::ControlPacket broadcast_pkt() {
  return net::make_control(net::kBroadcastId, net::AbrBeaconMsg{0});
}

TEST(CommonChannel, AirtimeMatchesRate) {
  World w(10.0);
  CommonChannelMac mac(w.sim, w.channel, w.rng, w.metrics, {});
  // 250 bytes at 250 kbps = 8 ms.
  EXPECT_NEAR(mac.airtime(250).seconds(), 0.008, 1e-9);
  EXPECT_NEAR(mac.airtime(25).seconds(), 0.0008, 1e-9);
}

TEST(CommonChannel, BroadcastReachesAllNeighbors) {
  World w(10.0);  // everyone within 250 m
  CommonChannelMac mac(w.sim, w.channel, w.rng, w.metrics, {});
  int received = 0;
  for (net::NodeId id = 0; id < 5; ++id) {
    mac.register_node(id, [&received](const net::ControlPacket&, net::NodeId) {
      ++received;
    });
  }
  mac.send(0, broadcast_pkt());
  w.sim.run_until(sim::milliseconds(100));
  EXPECT_EQ(received, 4);  // everyone but the sender
}

TEST(CommonChannel, UnicastReachesOnlyTarget) {
  World w(10.0);
  CommonChannelMac mac(w.sim, w.channel, w.rng, w.metrics, {});
  std::vector<int> got(5, 0);
  for (net::NodeId id = 0; id < 5; ++id) {
    mac.register_node(id, [&got, id](const net::ControlPacket&, net::NodeId) {
      ++got[id];
    });
  }
  mac.send(0, net::make_control(3, net::AbrBeaconMsg{0}));
  w.sim.run_until(sim::milliseconds(100));
  EXPECT_EQ(got[3], 1);
  EXPECT_EQ(got[1] + got[2] + got[4], 0);
}

TEST(CommonChannel, OutOfRangeHearsNothing) {
  World w(20000.0);  // scattered over 20 km: nobody in range
  CommonChannelMac mac(w.sim, w.channel, w.rng, w.metrics, {});
  int received = 0;
  for (net::NodeId id = 0; id < 5; ++id) {
    mac.register_node(id, [&received](const net::ControlPacket&, net::NodeId) {
      ++received;
    });
  }
  mac.send(0, broadcast_pkt());
  w.sim.run_until(sim::milliseconds(100));
  EXPECT_EQ(received, 0);
}

TEST(CommonChannel, OverheadCountedPerTransmission) {
  World w(10.0);
  CommonChannelMac mac(w.sim, w.channel, w.rng, w.metrics, {});
  for (net::NodeId id = 0; id < 5; ++id) {
    mac.register_node(id, [](const net::ControlPacket&, net::NodeId) {});
  }
  mac.send(0, broadcast_pkt());
  mac.send(1, broadcast_pkt());
  w.sim.run_until(sim::milliseconds(100));
  const auto s = w.metrics.finalize(sim::seconds(1));
  EXPECT_EQ(s.control_transmissions, 2u);
}

TEST(CommonChannel, QueueBoundDropsExcess) {
  World w(10.0);
  CommonChannelConfig cfg;
  cfg.queue_cap = 3;
  CommonChannelMac mac(w.sim, w.channel, w.rng, w.metrics, cfg);
  for (net::NodeId id = 0; id < 5; ++id) {
    mac.register_node(id, [](const net::ControlPacket&, net::NodeId) {});
  }
  for (int i = 0; i < 10; ++i) mac.send(0, broadcast_pkt());
  w.sim.run_until(sim::seconds(1));
  EXPECT_GT(w.metrics.counter("mac.ctrl_queue_drop"), 0u);
}

TEST(CommonChannel, CarrierSenseSerializesNeighbors) {
  // Two co-located senders: the second must defer, so both broadcasts are
  // eventually received collision-free by the third node.
  World w(10.0);
  CommonChannelMac mac(w.sim, w.channel, w.rng, w.metrics, {});
  int received = 0;
  for (net::NodeId id = 0; id < 5; ++id) {
    mac.register_node(id, [&received, id](const net::ControlPacket&,
                                          net::NodeId) {
      if (id == 2) ++received;
    });
  }
  mac.send(0, broadcast_pkt());
  mac.send(1, broadcast_pkt());
  w.sim.run_until(sim::seconds(1));
  EXPECT_EQ(received, 2);
}

TEST(CommonChannel, UnicastRetransmitsUntilDelivered) {
  // Make every node deaf by keeping the target transmitting?  Simpler:
  // verify a unicast toward an out-of-range target gives up after the
  // configured attempts (counted as unicast_fail).
  World w(20000.0);
  CommonChannelConfig cfg;
  cfg.unicast_attempts = 3;
  CommonChannelMac mac(w.sim, w.channel, w.rng, w.metrics, cfg);
  for (net::NodeId id = 0; id < 5; ++id) {
    mac.register_node(id, [](const net::ControlPacket&, net::NodeId) {});
  }
  mac.send(0, net::make_control(1, net::AbrBeaconMsg{0}));
  w.sim.run_until(sim::seconds(1));
  EXPECT_EQ(w.metrics.counter("mac.unicast_fail"), 1u);
  const auto s = w.metrics.finalize(sim::seconds(1));
  EXPECT_EQ(s.control_transmissions, 3u);  // all attempts hit the air
}

// ---------------------------------------------------------------------------
// LinkTransmitter
// ---------------------------------------------------------------------------

struct LinkWorld : World {
  LinkWorld() : World(10.0) {}  // co-located, static, class is whatever the
                                // frozen draw gives (always in range)
};

net::DataPacket data_pkt(std::uint32_t seq = 0) {
  net::DataPacket p;
  p.src = 0;
  p.dst = 4;
  p.seq = seq;
  p.size_bytes = 512;
  return p;
}

TEST(LinkTransmitter, DeliversWithClassRateAndAck) {
  LinkWorld w;
  LinkConfig cfg;
  LinkTransmitter tx(0, w.sim, w.channel, w.metrics, cfg);
  std::vector<net::DataPacket> delivered;
  tx.set_deliver([&delivered](net::DataPacket p, net::NodeId to) {
    EXPECT_EQ(to, 1u);
    delivered.push_back(std::move(p));
  });
  tx.enqueue(data_pkt(), 1);
  w.sim.run_until(sim::seconds(2));
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].hops, 1);
  // tput_sum records the class throughput the hop used.
  const auto cls = w.channel.csi(0, 1, w.sim.now());
  ASSERT_TRUE(cls.has_value());
  EXPECT_DOUBLE_EQ(delivered[0].tput_sum_bps, channel::throughput_bps(*cls));
  const auto s = w.metrics.finalize(sim::seconds(1));
  EXPECT_GT(s.overhead_kbps, 0.0);  // the data ACK was charged
}

TEST(LinkTransmitter, ServesFifo) {
  LinkWorld w;
  LinkTransmitter tx(0, w.sim, w.channel, w.metrics, {});
  std::vector<std::uint32_t> order;
  tx.set_deliver([&order](net::DataPacket p, net::NodeId) {
    order.push_back(p.seq);
  });
  for (std::uint32_t i = 0; i < 5; ++i) tx.enqueue(data_pkt(i), 1);
  w.sim.run_until(sim::seconds(5));
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST(LinkTransmitter, BufferCapDropsOverflow) {
  LinkWorld w;
  LinkConfig cfg;
  cfg.buffer_cap = 10;
  LinkTransmitter tx(0, w.sim, w.channel, w.metrics, cfg);
  int drops = 0;
  tx.set_on_drop([&drops](const net::DataPacket&, stats::DropReason r) {
    EXPECT_EQ(r, stats::DropReason::kBufferOverflow);
    ++drops;
  });
  for (std::uint32_t i = 0; i < 15; ++i) tx.enqueue(data_pkt(i), 1);
  EXPECT_EQ(drops, 5);
  EXPECT_EQ(tx.queue_length(1), 10u);
}

TEST(LinkTransmitter, HopCapDropsLoopers) {
  LinkWorld w;
  LinkConfig cfg;
  cfg.hop_cap = 4;
  LinkTransmitter tx(0, w.sim, w.channel, w.metrics, cfg);
  int drops = 0;
  tx.set_on_drop([&drops](const net::DataPacket&, stats::DropReason r) {
    EXPECT_EQ(r, stats::DropReason::kLoopCap);
    ++drops;
  });
  auto p = data_pkt();
  p.hops = 4;
  tx.enqueue(std::move(p), 1);
  EXPECT_EQ(drops, 1);
}

TEST(LinkTransmitter, ResidencyBoundExpiresStalePackets) {
  // A 512 B packet on a class-D link takes ~82 ms; queue 10 packets and a
  // stale one: with a 100 ms residency bound, most of the queue expires.
  LinkWorld w;
  LinkConfig cfg;
  cfg.buffer_residency = sim::milliseconds(100);
  LinkTransmitter tx(0, w.sim, w.channel, w.metrics, cfg);
  int expired = 0;
  int delivered = 0;
  tx.set_on_drop([&expired](const net::DataPacket&, stats::DropReason r) {
    if (r == stats::DropReason::kExpired) ++expired;
  });
  tx.set_deliver([&delivered](net::DataPacket, net::NodeId) { ++delivered; });
  for (std::uint32_t i = 0; i < 10; ++i) tx.enqueue(data_pkt(i), 1);
  w.sim.run_until(sim::seconds(5));
  EXPECT_GT(expired, 0);
  EXPECT_GT(delivered, 0);
  EXPECT_EQ(expired + delivered, 10);
}

TEST(LinkTransmitter, OutOfRangeRetriesThenBreaks) {
  World w(20000.0);  // target unreachable
  LinkConfig cfg;
  LinkTransmitter tx(0, w.sim, w.channel, w.metrics, cfg);
  bool broke = false;
  std::vector<net::DataPacket> stranded;
  tx.set_on_break([&](net::NodeId neighbor, std::vector<net::DataPacket> s) {
    EXPECT_EQ(neighbor, 1u);
    broke = true;
    stranded = std::move(s);
  });
  tx.enqueue(data_pkt(0), 1);
  tx.enqueue(data_pkt(1), 1);
  w.sim.run_until(sim::seconds(2));
  EXPECT_TRUE(broke);
  EXPECT_EQ(stranded.size(), 2u);
}

TEST(LinkTransmitter, DrainKeepsInFlightHead) {
  LinkWorld w;
  LinkTransmitter tx(0, w.sim, w.channel, w.metrics, {});
  int delivered = 0;
  tx.set_deliver([&delivered](net::DataPacket, net::NodeId) { ++delivered; });
  for (std::uint32_t i = 0; i < 4; ++i) tx.enqueue(data_pkt(i), 1);
  // The head is on the air immediately; drain must spare it.
  const auto drained = tx.drain(1);
  EXPECT_EQ(drained.size(), 3u);
  w.sim.run_until(sim::seconds(2));
  EXPECT_EQ(delivered, 1);
}

TEST(LinkTransmitter, DrainUnknownNeighborIsEmpty) {
  LinkWorld w;
  LinkTransmitter tx(0, w.sim, w.channel, w.metrics, {});
  EXPECT_TRUE(tx.drain(3).empty());
  EXPECT_EQ(tx.buffered(), 0u);
}

TEST(LinkTransmitter, BufferedCountsAllQueues) {
  LinkWorld w;
  LinkTransmitter tx(0, w.sim, w.channel, w.metrics, {});
  tx.enqueue(data_pkt(0), 1);
  tx.enqueue(data_pkt(1), 1);
  tx.enqueue(data_pkt(2), 2);
  EXPECT_EQ(tx.buffered(), 3u);
}

}  // namespace
}  // namespace rica::mac
