// Scale-out core: spatial neighbor-index equivalence with the brute-force
// scan (across every mobility model), batched mobility snapshots, hashed
// per-cell trial seeds, scenario presets, and serial/parallel sweep
// determinism (including the mobility axis).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "channel/channel_model.hpp"
#include "harness/flags.hpp"
#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "mobility/mobility_model.hpp"
#include "mobility/trace.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace rica {
namespace {

// ---------------------------------------------------------------------------
// Mobility snapshots
// ---------------------------------------------------------------------------

TEST(MobilitySnapshot, MatchesLazyPerNodeQueries) {
  mobility::MobilityConfig cfg;
  cfg.field = mobility::Field{800.0, 800.0};
  cfg.max_speed_mps = 15.0;
  // Two managers over the same seed realize identical trajectories, so the
  // batched API can be checked against the lazy one without interference.
  sim::RngManager rng(42);
  mobility::MobilityManager batched(20, cfg, rng);
  mobility::MobilityManager lazy(20, cfg, rng);

  for (int step = 0; step <= 40; ++step) {
    const auto t = sim::seconds_f(0.7 * step);
    const auto snap = batched.snapshot(t);
    ASSERT_EQ(snap.size(), 20u);
    for (std::uint32_t id = 0; id < 20; ++id) {
      EXPECT_EQ(snap[id], lazy.position(id, t))
          << "node " << id << " at t=" << t.seconds();
    }
  }
}

TEST(MobilitySnapshot, ExposesSpeedBound) {
  mobility::MobilityConfig cfg;
  cfg.max_speed_mps = 12.5;
  sim::RngManager rng(1);
  mobility::MobilityManager mgr(5, cfg, rng);
  EXPECT_DOUBLE_EQ(mgr.max_speed_mps(), 12.5);
}

// ---------------------------------------------------------------------------
// Neighbor index == brute force, across models and configurations
// ---------------------------------------------------------------------------

struct IndexCase {
  std::uint64_t seed;
  std::size_t num_nodes;
  double field_m;
  double max_speed_mps;
  double range_m;
  std::string mobility = "waypoint";
};

/// The core index == brute-force property, shared by the parameterized
/// synthetic-model cases and the runtime-generated trace-replay case.
void check_index_equivalence(const IndexCase& p) {
  mobility::MobilityConfig wcfg = mobility::parse_mobility_spec(p.mobility);
  wcfg.field = mobility::Field{p.field_m, p.field_m};
  wcfg.max_speed_mps = p.max_speed_mps;
  sim::RngManager rng(p.seed);
  mobility::MobilityManager mgr(p.num_nodes, wcfg, rng);

  channel::ChannelConfig ccfg;
  ccfg.range_m = p.range_m;
  ASSERT_TRUE(ccfg.use_neighbor_index);
  channel::ChannelModel channel(ccfg, mgr, rng);

  for (int step = 0; step <= 60; ++step) {
    const auto t = sim::seconds_f(0.5 * step);  // crosses many rebuild epochs
    for (std::uint32_t node = 0; node < p.num_nodes; ++node) {
      const auto indexed = channel.neighbors_of(node, t);
      const auto brute = channel.neighbors_of_bruteforce(node, t);
      ASSERT_EQ(indexed, brute)
          << "node " << node << " at t=" << t.seconds() << " (seed " << p.seed
          << ", n=" << p.num_nodes << ", field=" << p.field_m << ", mobility="
          << p.mobility << ")";
    }
  }
  EXPECT_GE(channel.neighbor_index().rebuild_count(), 2u)
      << "the sweep should have crossed rebuild epochs";
}

class NeighborIndexEquivalence : public ::testing::TestWithParam<IndexCase> {};

TEST_P(NeighborIndexEquivalence, GridMatchesBruteForceOverTime) {
  check_index_equivalence(GetParam());
}

TEST(TraceNeighborIndex, GridMatchesBruteForceOverTime) {
  // The trace model's data-derived max_speed_mps() is the exact bound its
  // replayed chord velocities realize, so the index's staleness slack — and
  // with it the index == brute bit-identity — must hold unmodified.
  mobility::MobilityConfig src = mobility::parse_mobility_spec("gauss-markov");
  src.field = mobility::Field{1000.0, 1000.0};
  src.max_speed_mps = 25.0;
  const sim::RngManager rng(61);
  const auto model = mobility::make_mobility_model(60, src, rng);
  const auto path = (std::filesystem::temp_directory_path() /
                     "rica_scale_trace.trace")
                        .string();
  // Cover the 30 s query sweep; a coarse-ish dt leaves real chord motion.
  mobility::write_bonnmotion_trace(*model, sim::seconds(31),
                                   sim::milliseconds(400), path);

  check_index_equivalence(
      IndexCase{67, 60, 1000.0, 25.0, 250.0, "trace:file=" + path});
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedConfigs, NeighborIndexEquivalence,
    ::testing::Values(
        IndexCase{3, 1, 500.0, 10.0, 250.0},     // degenerate single node
        IndexCase{5, 25, 1414.2, 0.0, 250.0},    // static sparse-rural
        IndexCase{7, 60, 1000.0, 25.0, 250.0},   // fast paper-density
        IndexCase{11, 40, 2000.0, 15.0, 100.0},  // short range, big field
        IndexCase{13, 120, 1000.0, 40.0, 250.0}  // dense-urban, very fast
        ));

INSTANTIATE_TEST_SUITE_P(
    AllMobilityModels, NeighborIndexEquivalence,
    ::testing::Values(
        IndexCase{19, 60, 1000.0, 25.0, 250.0, "walk"},
        IndexCase{23, 60, 1000.0, 25.0, 250.0, "gauss-markov"},
        IndexCase{29, 60, 1000.0, 25.0, 250.0, "group"},
        IndexCase{31, 60, 1000.0, 25.0, 250.0, "manhattan"},
        IndexCase{37, 40, 1414.2, 35.0, 150.0, "walk:leg=3"},
        IndexCase{41, 40, 1414.2, 35.0, 150.0,
                  "gauss-markov:alpha=0.2,step=0.4"},
        IndexCase{43, 40, 1414.2, 35.0, 150.0, "group:size=4,radius=120"},
        IndexCase{47, 40, 1414.2, 35.0, 150.0,
                  "manhattan:spacing=150,turn=0.5"},
        IndexCase{53, 30, 800.0, 0.0, 250.0, "group"}  // static group
        ));

class IndexedStackEquivalence
    : public ::testing::TestWithParam<const char*> {};

TEST_P(IndexedStackEquivalence, InRangeAndSampleMatchBruteChannel) {
  // Two full stacks over identical seeds: one indexed, one brute-force.
  // Identical query sequences must observe identical channels — this is
  // what makes the index invisible to every protocol, under every model.
  mobility::MobilityConfig wcfg = mobility::parse_mobility_spec(GetParam());
  wcfg.max_speed_mps = 20.0;
  sim::RngManager rng(99);
  mobility::MobilityManager mgr_a(40, wcfg, rng);
  mobility::MobilityManager mgr_b(40, wcfg, rng);

  channel::ChannelConfig indexed_cfg;
  channel::ChannelConfig brute_cfg;
  brute_cfg.use_neighbor_index = false;
  channel::ChannelModel indexed(indexed_cfg, mgr_a, rng);
  channel::ChannelModel brute(brute_cfg, mgr_b, rng);

  for (int step = 0; step <= 20; ++step) {
    const auto t = sim::seconds_f(0.9 * step);
    for (std::uint32_t a = 0; a < 40; ++a) {
      for (std::uint32_t b = 0; b < 40; ++b) {
        ASSERT_EQ(indexed.in_range(a, b, t), brute.in_range(a, b, t));
        const auto sa = indexed.sample(a, b, t);
        const auto sb = brute.sample(a, b, t);
        ASSERT_EQ(sa.has_value(), sb.has_value());
        if (sa) {
          ASSERT_EQ(sa->snr_db, sb->snr_db);
          ASSERT_EQ(sa->csi, sb->csi);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, IndexedStackEquivalence,
                         ::testing::Values("waypoint", "walk", "gauss-markov",
                                           "group", "manhattan"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           std::string name(i.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Hashed per-cell trial seeds
// ---------------------------------------------------------------------------

TEST(TrialSeed, DeterministicAndCellIndependent) {
  harness::ScenarioConfig cfg;
  EXPECT_EQ(harness::trial_seed(cfg, 0), harness::trial_seed(cfg, 0));
  EXPECT_NE(harness::trial_seed(cfg, 0), harness::trial_seed(cfg, 1));

  // The old seed, seed+1, ... scheme made trial 1 of base seed 1 collide
  // with trial 0 of base seed 2.  The hashed scheme must not.
  harness::ScenarioConfig shifted = cfg;
  shifted.seed = cfg.seed + 1;
  EXPECT_NE(harness::trial_seed(cfg, 1), harness::trial_seed(shifted, 0));

  // Every cell coordinate feeds the hash.
  harness::ScenarioConfig other = cfg;
  other.protocol = harness::ProtocolKind::kAodv;
  EXPECT_NE(harness::trial_seed(cfg, 0), harness::trial_seed(other, 0));
  other = cfg;
  other.mean_speed_kmh += 14.4;
  EXPECT_NE(harness::trial_seed(cfg, 0), harness::trial_seed(other, 0));
  other = cfg;
  other.pkts_per_s *= 2.0;
  EXPECT_NE(harness::trial_seed(cfg, 0), harness::trial_seed(other, 0));
  other = cfg;
  other.num_nodes = 200;
  EXPECT_NE(harness::trial_seed(cfg, 0), harness::trial_seed(other, 0));
  other = cfg;
  other.mobility = "gauss-markov";
  EXPECT_NE(harness::trial_seed(cfg, 0), harness::trial_seed(other, 0));
}

// ---------------------------------------------------------------------------
// Scenario presets
// ---------------------------------------------------------------------------

TEST(Presets, KnownPopulations) {
  EXPECT_EQ(harness::preset_config("paper").num_nodes, 50u);
  EXPECT_EQ(harness::preset_config("dense-urban").num_nodes, 200u);
  EXPECT_EQ(harness::preset_config("sparse-rural").num_nodes, 25u);
  EXPECT_EQ(harness::preset_config("metro").num_nodes, 500u);
  EXPECT_EQ(harness::preset_config("large-scale").num_nodes, 10000u);
  EXPECT_NEAR(harness::preset_config("sparse-rural").field_m, 1414.2, 0.1);
  EXPECT_NEAR(harness::preset_config("metro").field_m, 1732.1, 0.1);
  EXPECT_NEAR(harness::preset_config("large-scale").field_m, 14142.1, 0.1);
  EXPECT_EQ(harness::scenario_presets().size(), 5u);
}

TEST(Presets, UnknownNameThrows) {
  EXPECT_THROW({ auto cfg = harness::preset_config("metropolis"); (void)cfg; },
               std::invalid_argument);
}

TEST(Presets, PairsScaleWithPopulation) {
  EXPECT_EQ(harness::preset_config("paper").num_pairs, 10u);
  EXPECT_EQ(harness::preset_config("dense-urban").num_pairs, 40u);
  EXPECT_EQ(harness::preset_config("large-scale").num_pairs, 2000u);
}

// ---------------------------------------------------------------------------
// Parallel sweep == serial sweep, bit for bit
// ---------------------------------------------------------------------------

void expect_identical(const harness::ScenarioResult& a,
                      const harness::ScenarioResult& b) {
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.delivery_pct, b.delivery_pct);
  EXPECT_EQ(a.avg_delay_ms, b.avg_delay_ms);
  EXPECT_EQ(a.overhead_kbps, b.overhead_kbps);
  EXPECT_EQ(a.avg_link_tput_kbps, b.avg_link_tput_kbps);
  EXPECT_EQ(a.avg_hops, b.avg_hops);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.control_transmissions, b.control_transmissions);
  EXPECT_EQ(a.control_collisions, b.control_collisions);
  EXPECT_EQ(a.tput_kbps_series, b.tput_kbps_series);
  EXPECT_EQ(a.stream_hash, b.stream_hash);
}

TEST(ParallelSweep, BitIdenticalToSerial) {
  harness::BenchScale serial{};
  serial.trials = 2;
  serial.sim_s = 4.0;
  serial.seed = 7;
  serial.threads = 1;
  serial.verbose = false;

  harness::BenchScale parallel = serial;
  parallel.threads = 4;

  const std::vector<double> speeds{0.0, 36.0};
  const std::vector<double> loads{10.0};
  const auto grid_serial = harness::run_speed_sweep(speeds, loads, serial);
  const auto grid_parallel = harness::run_speed_sweep(speeds, loads, parallel);

  ASSERT_EQ(grid_serial.size(), grid_parallel.size());
  ASSERT_EQ(grid_serial.size(),
            speeds.size() * loads.size() * harness::kAllProtocols.size());
  for (std::size_t i = 0; i < grid_serial.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    EXPECT_EQ(grid_serial[i].protocol, grid_parallel[i].protocol);
    EXPECT_EQ(grid_serial[i].mean_speed_kmh, grid_parallel[i].mean_speed_kmh);
    EXPECT_EQ(grid_serial[i].pkts_per_s, grid_parallel[i].pkts_per_s);
    expect_identical(grid_serial[i].result, grid_parallel[i].result);
  }
}

TEST(ParallelSweep, MobilityAxisBitIdenticalToSerial) {
  // The new mobility axis must preserve the determinism guarantee: a
  // parallel sweep over every model equals the serial enumeration.
  harness::BenchScale serial{};
  serial.trials = 1;
  serial.sim_s = 2.0;
  serial.seed = 11;
  serial.threads = 1;
  serial.verbose = false;

  harness::BenchScale parallel = serial;
  parallel.threads = 4;

  const std::vector<double> speeds{36.0};
  const std::vector<double> loads{10.0};
  const auto& models = mobility::known_mobility_models();
  const auto grid_serial =
      harness::run_speed_sweep(speeds, loads, models, serial);
  const auto grid_parallel =
      harness::run_speed_sweep(speeds, loads, models, parallel);

  ASSERT_EQ(grid_serial.size(), grid_parallel.size());
  ASSERT_EQ(grid_serial.size(),
            models.size() * speeds.size() * loads.size() *
                harness::kAllProtocols.size());
  for (std::size_t i = 0; i < grid_serial.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i) + " (" +
                 grid_serial[i].mobility + ")");
    EXPECT_EQ(grid_serial[i].protocol, grid_parallel[i].protocol);
    EXPECT_EQ(grid_serial[i].mobility, grid_parallel[i].mobility);
    expect_identical(grid_serial[i].result, grid_parallel[i].result);
  }
}

TEST(ParallelSweep, UnknownPresetThrowsBeforeRunning) {
  harness::BenchScale scale{};
  scale.trials = 1;
  scale.sim_s = 1.0;
  scale.seed = 1;
  scale.verbose = false;
  scale.preset = "no-such-preset";
  EXPECT_THROW(harness::run_speed_sweep({0.0}, {10.0}, scale),
               std::invalid_argument);
}

TEST(ParallelSweep, UnknownMobilityThrowsBeforeRunning) {
  harness::BenchScale scale{};
  scale.trials = 1;
  scale.sim_s = 1.0;
  scale.seed = 1;
  scale.verbose = false;
  EXPECT_THROW(
      harness::run_speed_sweep({0.0}, {10.0}, {"teleport"}, scale),
      std::invalid_argument);
}

TEST(ParallelSweep, UnreadableTraceThrowsBeforeRunning) {
  // The up-front validation loads trace files, so a bad path aborts the
  // sweep before any (potentially minutes-long) synthetic cell runs.
  harness::BenchScale scale{};
  scale.trials = 1;
  scale.sim_s = 1.0;
  scale.seed = 1;
  scale.verbose = false;
  EXPECT_THROW(
      harness::run_speed_sweep(
          {0.0}, {10.0},
          {"waypoint", "trace:file=/nonexistent/rica-no-such.trace"}, scale),
      std::invalid_argument);
}

}  // namespace
}  // namespace rica
